// Quickstart: publish a handful of soft-state records over an
// in-memory lossy channel and watch the subscriber converge.
//
//	go run ./examples/quickstart
//
// This is the smallest end-to-end SSTP program: one publisher, one
// subscriber, 20% packet loss, NACK-based repair.
package main

import (
	"fmt"
	"log"
	"time"

	"softstate/internal/sstp"
)

func main() {
	// An in-process datagram network with 20% loss from publisher to
	// subscriber. Swap MemNetwork endpoints for net.ListenPacket UDP
	// sockets and this program runs across real machines unchanged.
	nw := sstp.NewMemNetwork(42)
	nw.SetLoss("pub", "sub", 0.20)

	pub, err := sstp.NewSender(sstp.SenderConfig{
		Session: 1, SenderID: 100,
		Conn: nw.Endpoint("pub"), Dest: sstp.MemAddr("sub"),
		TotalRate:       64_000, // 64 kbps session
		SummaryInterval: 100 * time.Millisecond,
		TTL:             10 * time.Second,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer pub.Close()

	sub, err := sstp.NewReceiver(sstp.ReceiverConfig{
		Session: 1, ReceiverID: 200,
		Conn: nw.Endpoint("sub"), FeedbackDest: sstp.MemAddr("pub"),
		OnUpdate: func(key string, value []byte, version uint64, _ float64) {
			fmt.Printf("  received %-16s = %s\n", key, value)
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer sub.Close()

	pub.Start()
	sub.Start()

	fmt.Println("publishing 5 records over a 20%-lossy channel…")
	for i, name := range []string{"alpha", "bravo", "charlie", "delta", "echo"} {
		key := fmt.Sprintf("demo/%s", name)
		if err := pub.Publish(key, []byte(fmt.Sprintf("value-%d", i)), 0); err != nil {
			log.Fatal(err)
		}
	}

	// Convergence is proved by namespace digest equality.
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if pub.RootDigest() == sub.RootDigest() {
			fmt.Println("converged: publisher and subscriber digests match")
			break
		}
		time.Sleep(50 * time.Millisecond)
	}

	// Update a record and watch the new version flow.
	fmt.Println("updating demo/alpha…")
	_ = pub.Publish("demo/alpha", []byte("value-0-revised"), 0)
	time.Sleep(500 * time.Millisecond)

	ss, rs := pub.Stats(), sub.Stats()
	fmt.Printf("\npublisher: %d data sent, %d summaries, %d NACKs heard, %d promotions\n",
		ss.DataSent, ss.SummariesSent, ss.NACKsReceived, ss.KeysPromoted)
	fmt.Printf("subscriber: %d updates, %d duplicates, %d NACKs sent, loss≈%.0f%%\n",
		rs.DataReceived, rs.Duplicates, rs.NACKsSent, 100*rs.LossEstimate)
}
