// Stock ticker: PointCast-style quote dissemination — inherently
// "soft" data where the newest value supersedes the old — published
// over SSTP at high update rates, demonstrating the consistency
// metric converging and the benefit of feedback.
//
// The example runs the same feed twice, once with feedback disabled
// (pure announce/listen) and once with NACK repair, and reports the
// measured replica consistency of each — a live miniature of the
// paper's Figure 9 claim.
//
//	go run ./examples/stockticker
package main

import (
	"bytes"
	"fmt"
	"log"
	"time"

	"softstate/internal/sstp"
	"softstate/internal/workload"
	"softstate/internal/xrand"
)

func main() {
	for _, feedbackOn := range []bool{false, true} {
		during, settled := runFeed(feedbackOn)
		mode := "open-loop (no feedback)"
		if feedbackOn {
			mode = "with NACK feedback   "
		}
		fmt.Printf("%s: consistency %.1f%% during the feed, %.1f%% after 2s settle\n",
			mode, 100*during, 100*settled)
	}
}

// runFeed publishes six seconds of Zipf-skewed quote updates over a
// 30%-lossy channel and returns the fraction of symbols whose replica
// matches the publisher, time-averaged over the second half of the
// feed (where feedback shines — lost updates stay stale until the
// slow cold cycle re-announces them) and once more after a 2 s settle
// (where announce/listen redundancy has caught up for both).
func runFeed(feedback bool) (during, settled float64) {
	nw := sstp.NewMemNetwork(11)
	nw.SetLoss("feed", "desk", 0.50)
	nw.SetLoss("desk", "feed", 0.05)

	pub, err := sstp.NewSender(sstp.SenderConfig{
		Session: 2, SenderID: 1,
		Conn: nw.Endpoint("feed"), Dest: sstp.MemAddr("desk"),
		TotalRate:       20_000,
		HotFraction:     0.95, // cold cycle is slow: repair must come from NACKs
		SummaryInterval: 100 * time.Millisecond,
		TTL:             30 * time.Second,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer pub.Close()
	sub, err := sstp.NewReceiver(sstp.ReceiverConfig{
		Session: 2, ReceiverID: 2,
		Conn: nw.Endpoint("desk"), FeedbackDest: sstp.MemAddr("feed"),
		DisableFeedback: !feedback,
		NACKWindow:      50 * time.Millisecond,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer sub.Close()
	pub.Start()
	sub.Start()

	gen := workload.NewStockTicker(40, 20, 6, xrand.New(5)) // 20 quotes/s for 6 s
	start := time.Now()
	quotes := 0
	var samples []float64
	nextSample := 3 * time.Second
	for {
		ev, ok := gen.Next()
		if !ok {
			break
		}
		if wait := time.Duration(ev.At*float64(time.Second)) - time.Since(start); wait > 0 {
			time.Sleep(wait)
		}
		if time.Since(start) >= nextSample {
			samples = append(samples, compare(pub, sub))
			nextSample += 250 * time.Millisecond
		}
		if err := pub.Publish(ev.Key, ev.Value, 0); err == nil {
			quotes++
		}
	}
	for _, v := range samples {
		during += v
	}
	if len(samples) > 0 {
		during /= float64(len(samples))
	}
	// Let repair (or cold cycling) settle briefly after the burst.
	time.Sleep(2 * time.Second)
	settled = compare(pub, sub)

	st := sub.Stats()
	fmt.Printf("  published %d quotes across %d symbols; receiver saw %d updates, sent %d NACKs, loss≈%.0f%%\n",
		quotes, len(pub.Snapshot()), st.DataReceived, st.NACKsSent, 100*st.LossEstimate)
	return during, settled
}

// compare returns the fraction of publisher records whose replica
// value matches byte-for-byte.
func compare(pub *sstp.Sender, sub *sstp.Receiver) float64 {
	pubSnap := pub.Snapshot()
	subSnap := sub.Snapshot()
	if len(pubSnap) == 0 {
		return 0
	}
	match := 0
	for k, v := range pubSnap {
		if bytes.Equal(subSnap[k], v) {
			match++
		}
	}
	return float64(match) / float64(len(pubSnap))
}
