// Routing table: RIP-style route advertisements as soft state — the
// original setting in which Clark coined the term. A router announces
// its routing table over SSTP; a neighbor holds each route only while
// refreshes keep arriving. When the announcing router "crashes", the
// neighbor's routes time out by themselves (no teardown protocol), and
// when the router comes back the table re-establishes through normal
// announcements — the paper's "survivability in the face of failure".
//
//	go run ./examples/routingtable
package main

import (
	"fmt"
	"log"
	"sort"
	"sync"
	"time"

	"softstate/internal/sstp"
	"softstate/internal/workload"
	"softstate/internal/xrand"
)

func main() {
	nw := sstp.NewMemNetwork(23)
	nw.SetLoss("routerA", "routerB", 0.05)

	var mu sync.Mutex
	installed := map[string]string{}

	neighbor, err := sstp.NewReceiver(sstp.ReceiverConfig{
		Session: 520, ReceiverID: 2, // RIP's port
		Conn: nw.Endpoint("routerB"), FeedbackDest: sstp.MemAddr("routerA"),
		OnUpdate: func(key string, value []byte, version uint64, _ float64) {
			mu.Lock()
			installed[key] = string(value)
			mu.Unlock()
		},
		OnExpire: func(key string) {
			mu.Lock()
			delete(installed, key)
			mu.Unlock()
			fmt.Printf("  route timed out: %s\n", key)
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer neighbor.Close()
	neighbor.Start()

	count := func() int { mu.Lock(); defer mu.Unlock(); return len(installed) }

	runRouter := func(label string, changes int) *sstp.Sender {
		router, err := sstp.NewSender(sstp.SenderConfig{
			Session: 520, SenderID: 1,
			Conn: nw.Endpoint("routerA"), Dest: sstp.MemAddr("routerB"),
			TotalRate:       64_000,
			SummaryInterval: 100 * time.Millisecond,
			TTL:             2 * time.Second, // routes expire 2 s after refreshes stop
		})
		if err != nil {
			log.Fatal(err)
		}
		router.Start()
		rt := workload.NewRoutingTable(32, 4, 0.15, 1e9, xrand.New(9))
		for _, ev := range rt.InitialEvents() {
			_ = router.Publish(ev.Key, ev.Value, 0)
		}
		for i := 0; i < changes; i++ {
			ev, _ := rt.Next()
			switch ev.Op {
			case workload.OpPut:
				_ = router.Publish(ev.Key, ev.Value, 0)
			case workload.OpDelete:
				router.Delete(ev.Key)
			}
		}
		fmt.Printf("%s: announcing %d routes\n", label, router.Len())
		return router
	}

	router := runRouter("routerA up", 10)
	waitUntil(10*time.Second, func() bool { return count() == router.Len() })
	fmt.Printf("neighbor installed %d routes\n", count())
	printSample(installed, &mu)

	// Crash the router: no goodbye reaches anyone in a real crash, so
	// just stop refreshing. Soft state cleans itself up.
	fmt.Println("\nrouterA crashes (refreshes stop)…")
	nw.SetLoss("routerA", "routerB", 1) // crash: nothing gets out
	router.Close()
	waitUntil(10*time.Second, func() bool { return count() == 0 })
	fmt.Printf("neighbor's table drained to %d routes, with no teardown protocol\n", count())

	// Reboot: announcements simply resume and state re-forms.
	fmt.Println("\nrouterA reboots…")
	nw.SetLoss("routerA", "routerB", 0.05)
	router2 := runRouter("routerA up again", 0)
	defer router2.Close()
	waitUntil(15*time.Second, func() bool { return count() == router2.Len() })
	fmt.Printf("neighbor re-installed %d routes through normal protocol operation\n", count())
}

func waitUntil(d time.Duration, cond func() bool) {
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(50 * time.Millisecond)
	}
}

func printSample(installed map[string]string, mu *sync.Mutex) {
	mu.Lock()
	defer mu.Unlock()
	var keys []string
	for k := range installed {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for i, k := range keys {
		if i == 3 {
			fmt.Printf("  … and %d more\n", len(keys)-3)
			break
		}
		fmt.Printf("  %s -> %s\n", k, installed[k])
	}
}
