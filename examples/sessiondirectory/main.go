// Session directory: an sdr/SAP-style MBone conference directory —
// the application that motivated announce/listen — served over SSTP
// to three subscribers on a lossy multicast group, one of which
// suffers a temporary partition and recovers purely through normal
// protocol operation (the paper's "light-weight sessions" robustness
// story).
//
//	go run ./examples/sessiondirectory
package main

import (
	"fmt"
	"log"
	"time"

	"softstate/internal/sstp"
	"softstate/internal/workload"
	"softstate/internal/xrand"
)

func main() {
	nw := sstp.NewMemNetwork(7)
	group := sstp.MemAddr("224.2.127.254") // the real sdr group, in spirit
	nw.Join(group, "announcer")
	nw.SetDefaultLoss(0.10)

	pub, err := sstp.NewSender(sstp.SenderConfig{
		Session: 9875, SenderID: 1, // sdr's port number as session id
		Conn: nw.Endpoint("announcer"), Dest: group,
		TotalRate:       32_000,
		SummaryInterval: 150 * time.Millisecond,
		TTL:             5 * time.Second,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer pub.Close()
	pub.Start()

	var subs []*sstp.Receiver
	for i := 0; i < 3; i++ {
		name := sstp.MemAddr(fmt.Sprintf("host%d", i))
		nw.Join(group, name)
		r, err := sstp.NewReceiver(sstp.ReceiverConfig{
			Session: 9875, ReceiverID: uint64(10 + i),
			Conn: nw.Endpoint(name), FeedbackDest: group,
			NACKWindow: 200 * time.Millisecond, // multicast: damp shared losses
			Seed:       int64(i),
		})
		if err != nil {
			log.Fatal(err)
		}
		defer r.Close()
		r.Start()
		subs = append(subs, r)
	}

	// Announce conferences from the sdr-like workload generator.
	gen := workload.NewSessionDirectory(2, 60, 0.05, 5, xrand.New(3))
	n := 0
	for {
		ev, ok := gen.Next()
		if !ok {
			break
		}
		life := time.Duration(ev.Lifetime * float64(time.Second))
		if err := pub.Publish(ev.Key, ev.Value, life); err == nil {
			n++
		}
	}
	fmt.Printf("announced %d conference sessions to the group\n", n)

	waitConverged(pub, subs, 15*time.Second)
	fmt.Printf("all %d hosts converged: %d sessions each\n", len(subs), subs[0].Len())

	// Partition host2: it misses everything for a while.
	fmt.Println("partitioning host2…")
	nw.SetLoss("announcer", "host2", 1)
	_ = pub.Publish("sessions/conf-during-partition", []byte("v=0\ns=added while host2 dark\n"), 0)
	time.Sleep(1 * time.Second)
	if _, ok := subs[2].Get("sessions/conf-during-partition"); ok {
		fmt.Println("unexpected: partitioned host saw the new session")
	} else {
		fmt.Println("host2 (partitioned) is missing the new session, as expected")
	}

	// Heal: announce/listen + summary repair recovers with no special
	// reconciliation code.
	fmt.Println("healing the partition…")
	nw.SetLoss("announcer", "host2", 0.10)
	waitConverged(pub, subs, 20*time.Second)
	fmt.Println("host2 caught up through normal protocol operation")

	for i, r := range subs {
		st := r.Stats()
		fmt.Printf("host%d: %d sessions, %d updates, %d NACKs sent, %d suppressed (damping)\n",
			i, r.Len(), st.DataReceived, st.NACKsSent, st.NACKsSuppressed)
	}
}

func waitConverged(pub *sstp.Sender, subs []*sstp.Receiver, d time.Duration) {
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		ok := true
		for _, r := range subs {
			if pub.RootDigest() != r.RootDigest() {
				ok = false
				break
			}
		}
		if ok {
			return
		}
		time.Sleep(100 * time.Millisecond)
	}
	log.Println("warning: convergence deadline passed")
}
