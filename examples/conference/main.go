// Conference: a light-weight-sessions conferencing control channel —
// the application family (vat/vic/wb) whose announce/listen design the
// paper generalizes — publishing three classes of soft state with
// Figure-12 hierarchical bandwidth allocation:
//
//	membership/  (who is in the session)        55% of data bandwidth
//	media/       (stream descriptions, codecs)  30%
//	whiteboard/  (drawing-op summaries, bulky)  15%
//
// The example saturates all three classes over a lossy link, then
// shows (a) the realized per-class announcement shares honour the
// tree, and (b) a participant's membership entry disappears by itself
// after they crash — no teardown protocol.
//
//	go run ./examples/conference
package main

import (
	"bytes"
	"fmt"
	"log"
	"time"

	"softstate/internal/sstp"
)

func main() {
	nw := sstp.NewMemNetwork(17)
	nw.SetLoss("mixer", "member", 0.15)

	mixer, err := sstp.NewSender(sstp.SenderConfig{
		Session: 5004, SenderID: 1,
		Conn: nw.Endpoint("mixer"), Dest: sstp.MemAddr("member"),
		TotalRate:       128_000,
		SummaryInterval: 150 * time.Millisecond,
		TTL:             10 * time.Second, // must exceed the slowest refresh lap
		Classes: []sstp.Class{
			{Name: "membership", Weight: 0.55},
			{Name: "media", Weight: 0.30},
			{Name: "whiteboard", Weight: 0.15},
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer mixer.Close()

	member, err := sstp.NewReceiver(sstp.ReceiverConfig{
		Session: 5004, ReceiverID: 2,
		Conn: nw.Endpoint("member"), FeedbackDest: sstp.MemAddr("mixer"),
		OnExpire: func(key string) {
			fmt.Printf("  timed out: %s\n", key)
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer member.Close()

	mixer.Start()
	member.Start()

	// Publish the session state: members, media descriptions, and a
	// batch of (bulky) whiteboard page summaries.
	names := []string{"ada", "grace", "edsger", "barbara", "donald"}
	for _, n := range names {
		_ = mixer.Publish("membership/"+n, []byte("cname="+n+"@example.net"), 0)
	}
	_ = mixer.Publish("media/audio", []byte("pcmu/8000, 64 kb/s"), 0)
	_ = mixer.Publish("media/video", []byte("h261/90000, qcif"), 0)
	for p := 0; p < 12; p++ {
		page := bytes.Repeat([]byte("stroke;"), 100)
		_ = mixer.Publish(fmt.Sprintf("whiteboard/page%02d", p), page, 0)
	}

	// Let the session run; refreshes cycle continuously.
	deadline := time.Now().Add(8 * time.Second)
	for time.Now().Before(deadline) {
		if mixer.RootDigest() == member.RootDigest() {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	fmt.Printf("member synced: %d entries\n", member.Len())

	time.Sleep(2 * time.Second) // steady-state refresh cycling
	st := mixer.Stats()
	total := 0
	for _, n := range st.BytesByClass {
		total += n
	}
	fmt.Println("bandwidth shares by class (weights 0.55/0.30/0.15):")
	for _, cl := range []string{"membership", "media", "whiteboard"} {
		fmt.Printf("  %-11s %4d announcements, %6d bytes (%.0f%% of bytes)\n",
			cl, st.SentByClass[cl], st.BytesByClass[cl],
			100*float64(st.BytesByClass[cl])/float64(total))
	}

	// ada's machine crashes: her membership record is deleted at the
	// mixer (it would expire on its own there too), and the member's
	// replica times out through the normal soft-state machinery.
	fmt.Println("\nada crashes; her membership state expires everywhere…")
	mixer.Delete("membership/ada")
	time.Sleep(1 * time.Second)
	if _, ok := member.Get("membership/ada"); ok {
		fmt.Println("  (still propagating…)")
		time.Sleep(3 * time.Second)
	}
	if _, ok := member.Get("membership/ada"); !ok {
		fmt.Println("member no longer lists ada — with no teardown round-trip")
	}
	fmt.Printf("remaining entries: %d\n", member.Len())
}
