GO ?= go

.PHONY: check build vet fmt test race bench benchfast benchjson loadsmoke relaysmoke gossipsmoke scalesmoke fuzzsmoke obssmoke fabricsmoke transportsmoke crosssmoke staticcheck

## check: the extended tier-1 gate — everything a PR must keep green.
check: fmt vet build race bench loadsmoke relaysmoke gossipsmoke fuzzsmoke obssmoke scalesmoke fabricsmoke transportsmoke crosssmoke

## transportsmoke: the pluggable-wire gate — an in-process relay
## bridging a 5%-lossy UDP leg to a framed-TCP leg must converge (the
## repair machinery covering the datagram leg, the stream framing
## preserving datagram boundaries), then a verified-TLS handshake
## smoke with a generated self-signed pair.
transportsmoke:
	$(GO) run ./cmd/ssload -transport-smoke

## fabricsmoke: 64 tenant sessions multiplexed over one shared socket,
## with one 10x-bursty tenant; fails unless every tenant converges
## under fair queueing and the non-bursty tenants' p99 stays within 2x
## of the equal-load baseline (the FIFO comparison phase documents the
## starvation the scheduler removes).
fabricsmoke:
	$(GO) run ./cmd/ssload -sessions 64 -quick

## crosssmoke: cross-compile gate for the non-Linux fallbacks (the
## batched-syscall layer is Linux-only and must stub cleanly).
crosssmoke:
	GOOS=darwin GOARCH=arm64 $(GO) build ./...
	GOOS=windows GOARCH=amd64 $(GO) build ./...

## loadsmoke: drive the live stack end-to-end under ssload's quick
## profile; fails unless every receiver's replica converges.
loadsmoke:
	$(GO) run ./cmd/ssload -quick

## scalesmoke: quick striped+batched scaling smoke — a 4-stripe
## coalescing sender converging against a 1-stripe receiver at
## GOMAXPROCS 1 and 2; fails unless every trial reaches digest
## equality (the combined-root identity gate).
scalesmoke:
	GOMAXPROCS=2 $(GO) run ./cmd/ssload -scale -quick

## gossipsmoke: 8-node anti-entropy mesh over a 2%-lossy memconn
## network; fails unless every replica converges to one digest and a
## node killed mid-run re-converges (and is evicted then rejoined by
## the survivors) after restarting empty on the same address.
gossipsmoke:
	$(GO) run ./cmd/ssgossip -quick

## relaysmoke: publisher → relay → 4 leaves over a lossy memconn
## network; fails unless the tree converges, repair stays local, and
## the publisher's Goodbye flushes every hop.
relaysmoke:
	$(GO) run ./cmd/ssrelay -quick

## obssmoke: start an in-process sender + receiver with the admin
## endpoint, scrape /metrics and /stats.json over HTTP, and fail
## unless the consistency section (staleness, t-visibility, E[c(t)])
## is present and non-empty and /trace shows node-stamped lifecycle
## events.
obssmoke:
	$(GO) run ./cmd/sstpd -obssmoke

## staticcheck: run honnef.co/go/tools if the binary is on PATH
## (CI installs it; locally this is a no-op with a hint).
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"; \
	fi

## fuzzsmoke: a short coverage-guided run of the wire-codec fuzz
## target pinning AppendEncode byte-identical to Encode across the
## header scope field and every message type.
fuzzsmoke:
	$(GO) test -run='^$$' -fuzz=FuzzAppendEncode -fuzztime=10s ./internal/protocol

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

## bench: smoke-run the benchmarks (one iteration each) so they keep
## compiling and running; full numbers come from `go test -bench=.`.
bench:
	$(GO) test -run=^$$ -bench=. -benchtime=1x ./...

## benchfast: real numbers for the substrate micro-benchmarks only —
## the allocation-sensitive hot paths (event scheduling, namespace
## digests, scheduler picks, channel services, codec, table expiry
## heap, live sender path) with -benchmem.
benchfast:
	$(GO) test -run=^$$ -benchmem -benchtime=200ms \
		-bench='Eventsim|Namespace|Scheduler|Channel|Protocol|EngineEventsPerSec' .
	$(GO) test -run=^$$ -benchmem -benchtime=200ms \
		-bench='Publisher|Subscriber' ./internal/table/
	$(GO) test -run=^$$ -benchmem -benchtime=200ms \
		-bench='SenderNextAnnouncement|SenderEncodeSend' ./internal/sstp/
	$(GO) test -run=^$$ -benchmem -benchtime=200ms \
		-bench='ProtocolBatch|ProtocolDecoder' ./internal/protocol/
	$(GO) test -run=^$$ -benchmem -benchtime=200ms \
		-bench='NamespaceForest' ./internal/namespace/

## benchjson: regenerate BENCH_ssbench.json (per-experiment wall-time
## + headline-metric trajectory), BENCH_ssload.json (live-stack
## load/allocation record), BENCH_ssrelay.json (relay overlay tree
## convergence + per-hop repair latency), BENCH_ssvis.json (a
## visibility-focused tree run: per-hop t-visibility quantiles plus
## the leaves' online consistency snapshot), and BENCH_ssscale.json
## (GOMAXPROCS sweep over the striped/coalescing hot path plus the
## million-record convergence run), and BENCH_ssfabric.json (1024
## tenant sessions over one shared link: per-tenant fair-queueing
## isolation vs the FIFO baseline), and BENCH_sstransport.json (the
## quick profile over udp vs tcp vs tls with identical injected loss:
## t_rec quantiles plus datagrams/bytes per record); formats
## documented in EXPERIMENTS.md.
benchjson:
	$(GO) run ./cmd/ssbench -quick -all -json > BENCH_ssbench.json
	$(GO) run ./cmd/ssload -records 512 -receivers 4 -duration 5s -loss 0.02 -json > BENCH_ssload.json
	$(GO) run ./cmd/ssload -relay-depth 2 -relay-fanout 4 -loss 0.05 -json > BENCH_ssrelay.json
	$(GO) run ./cmd/ssload -relay-depth 2 -relay-fanout 2 -records 256 -duration 8s -loss 0.05 -jitter 5ms -json > BENCH_ssvis.json
	$(GO) run ./cmd/ssload -scale -json > BENCH_ssscale.json
	$(GO) run ./cmd/ssload -sessions 1024 -duration 2s -loss 0.02 -json > BENCH_ssfabric.json
	$(GO) run ./cmd/ssload -transport-compare -json > BENCH_sstransport.json
	$(GO) run ./cmd/ssload -gossip-peers 16 -records 128 -loss 0.02 -churn -json > BENCH_ssgossip.json
