GO ?= go

.PHONY: check build vet fmt test race bench benchfast benchjson

## check: the extended tier-1 gate — everything a PR must keep green.
check: fmt vet build race bench

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

## bench: smoke-run the benchmarks (one iteration each) so they keep
## compiling and running; full numbers come from `go test -bench=.`.
bench:
	$(GO) test -run=^$$ -bench=. -benchtime=1x ./...

## benchfast: real numbers for the substrate micro-benchmarks only —
## the allocation-sensitive hot paths (event scheduling, namespace
## digests, scheduler picks, channel services, codec) with -benchmem.
benchfast:
	$(GO) test -run=^$$ -benchmem -benchtime=200ms \
		-bench='Eventsim|Namespace|Scheduler|Channel|Protocol|EngineEventsPerSec' .

## benchjson: regenerate BENCH_ssbench.json (the per-experiment
## wall-time + headline-metric trajectory record; see EXPERIMENTS.md).
benchjson:
	$(GO) run ./cmd/ssbench -quick -all -json > BENCH_ssbench.json
