// Benchmarks regenerating every table and figure of the paper's
// evaluation (one benchmark per table/figure, backed by
// internal/experiments), the §8 summary, ablation benches for the
// design choices called out in DESIGN.md, and micro-benchmarks of the
// hot substrates.
//
//	go test -bench=. -benchmem
//
// The experiment benches report the headline quantity of their figure
// as a custom metric so the paper's numbers fall directly out of the
// bench run.
package softstate

import (
	"fmt"
	"testing"

	"softstate/internal/core"
	"softstate/internal/eventsim"
	"softstate/internal/experiments"
	"softstate/internal/namespace"
	"softstate/internal/netsim"
	"softstate/internal/protocol"
	"softstate/internal/sched"
	"softstate/internal/xrand"
)

var quick = experiments.Opts{Quick: true, Seed: 1}

// benchExperiment runs one figure/table per iteration and reports its
// headline metric (the same quantity ssbench -json records).
func benchExperiment(b *testing.B, id string, opts experiments.Opts) {
	b.Helper()
	b.ReportAllocs()
	var name string
	var last float64
	for i := 0; i < b.N; i++ {
		exp, err := experiments.Run(id, opts)
		if err != nil {
			b.Fatal(err)
		}
		name, last = exp.Headline()
	}
	b.ReportMetric(last, name)
}

func BenchmarkTable1(b *testing.B)    { benchExperiment(b, "table1", quick) }
func BenchmarkFig3(b *testing.B)      { benchExperiment(b, "fig3", quick) }
func BenchmarkFig4(b *testing.B)      { benchExperiment(b, "fig4", quick) }
func BenchmarkFig5(b *testing.B)      { benchExperiment(b, "fig5", quick) }
func BenchmarkFig6(b *testing.B)      { benchExperiment(b, "fig6", quick) }
func BenchmarkFig8(b *testing.B)      { benchExperiment(b, "fig8", quick) }
func BenchmarkFig9(b *testing.B)      { benchExperiment(b, "fig9", quick) }
func BenchmarkFig10(b *testing.B)     { benchExperiment(b, "fig10", quick) }
func BenchmarkFig11(b *testing.B)     { benchExperiment(b, "fig11", quick) }
func BenchmarkSummary(b *testing.B)   { benchExperiment(b, "summary", quick) }
func BenchmarkExtTimers(b *testing.B) { benchExperiment(b, "ext-timers", quick) }

// BenchmarkSweepWorkers runs the three heaviest sweeps serially and on
// a full worker pool. On a multi-core machine the parallel variants
// show the sweep-runner speedup; the outputs are byte-identical either
// way (TestParallelMatchesSerial).
func BenchmarkSweepWorkers(b *testing.B) {
	for _, id := range []string{"fig3", "fig11", "ext-timers"} {
		for _, tc := range []struct {
			name  string
			procs int
		}{{"serial", 1}, {"parallel", 0}} {
			b.Run(id+"/"+tc.name, func(b *testing.B) {
				opts := quick
				opts.Procs = tc.procs
				benchExperiment(b, id, opts)
			})
		}
	}
}

// --- Ablations (design choices called out in DESIGN.md) ---

func ablationEngine(b *testing.B, cfg core.Config) float64 {
	b.Helper()
	b.ReportAllocs()
	var last float64
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i + 1)
		e, err := core.NewEngine(cfg)
		if err != nil {
			b.Fatal(err)
		}
		last = e.Run(400).Consistency
	}
	b.ReportMetric(last, "consistency")
	return last
}

// BenchmarkAblationScheduler compares proportional-share policies for
// the two-queue sender.
func BenchmarkAblationScheduler(b *testing.B) {
	for _, k := range []core.SchedulerKind{core.SchedStride, core.SchedLottery, core.SchedWFQ, core.SchedDRR} {
		b.Run(k.String(), func(b *testing.B) {
			ablationEngine(b, core.Config{
				Mode:   core.ModeTwoQueue,
				Lambda: 15_000, MuData: 38_000, Lifetime: 30,
				LossRate: 0.2, MuHot: 0.6, MuCold: 0.4,
				Scheduler: k, Warmup: 100,
			})
		})
	}
}

// BenchmarkAblationLossModel tests the paper's claim that the metric
// depends only on the mean loss rate: Bernoulli vs bursty
// Gilbert–Elliott at the same mean.
func BenchmarkAblationLossModel(b *testing.B) {
	base := core.Config{
		Mode:   core.ModeOpenLoop,
		Lambda: 20_000, MuData: 128_000, Pd: 0.25, LossRate: 0.2,
		Warmup: 100,
	}
	b.Run("bernoulli", func(b *testing.B) { ablationEngine(b, base) })
	bursty := base
	bursty.BurstLen = 8
	b.Run("gilbert-elliott", func(b *testing.B) { ablationEngine(b, bursty) })
}

// BenchmarkAblationServiceDist compares exponential (M/M/1, the
// analysis) with deterministic (M/D/1) packet sizes.
func BenchmarkAblationServiceDist(b *testing.B) {
	base := core.Config{
		Mode:   core.ModeOpenLoop,
		Lambda: 20_000, MuData: 128_000, Pd: 0.25, LossRate: 0.2,
		Warmup: 100,
	}
	b.Run("exponential", func(b *testing.B) { ablationEngine(b, base) })
	det := base
	det.DetService = true
	b.Run("deterministic", func(b *testing.B) { ablationEngine(b, det) })
}

// BenchmarkAblationStrictShare compares work-conserving proportional
// sharing against strict per-queue rate limits.
func BenchmarkAblationStrictShare(b *testing.B) {
	b.Run("work-conserving", func(b *testing.B) {
		ablationEngine(b, core.Config{
			Mode:   core.ModeTwoQueue,
			Lambda: 15_000, MuData: 36_000, Lifetime: 30,
			LossRate: 0.25, MuHot: 0.5, MuCold: 0.5, Warmup: 100,
		})
	})
	b.Run("strict", func(b *testing.B) {
		ablationEngine(b, core.Config{
			Mode: core.ModeTwoQueue, StrictShare: true,
			Lambda: 15_000, Lifetime: 30,
			LossRate: 0.25, MuHot: 18_000, MuCold: 18_000, Warmup: 100,
		})
	})
}

// BenchmarkAblationNamespaceHash compares digest hash choices.
func BenchmarkAblationNamespaceHash(b *testing.B) {
	for _, tc := range []struct {
		name string
		kind namespace.HashKind
	}{{"sha256", namespace.HashSHA256}, {"md5", namespace.HashMD5}} {
		b.Run(tc.name, func(b *testing.B) {
			tr := namespace.New(tc.kind)
			for i := 0; i < 256; i++ {
				tr.Put(fmt.Sprintf("g%d/k%d", i%16, i), []byte("value"), uint64(i))
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tr.Put("g0/k0", []byte(fmt.Sprintf("v%d", i)), uint64(i+1000))
				_ = tr.RootDigest()
			}
		})
	}
}

// --- Substrate micro-benchmarks ---

func BenchmarkEventsimScheduling(b *testing.B) {
	s := eventsim.New()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.At(eventsim.Time(i), func() {})
		s.Step()
	}
}

func BenchmarkEngineEventsPerSec(b *testing.B) {
	// Simulated seconds per wall benchmark iteration: a 100 s run of
	// the feedback engine at the Fig-10 operating point.
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e, err := core.NewEngine(core.Config{
			Mode: core.ModeFeedback, Seed: int64(i + 1),
			Lambda: 15_000, MuData: 38_000, Lifetime: 30,
			LossRate: 0.1, MuHot: 0.6, MuCold: 0.4, MuFb: 7_000,
		})
		if err != nil {
			b.Fatal(err)
		}
		e.Run(100)
	}
}

func BenchmarkProtocolEncodeData(b *testing.B) {
	msg := &protocol.Data{Key: "sessions/audio/42", Ver: 9, TTLms: 30000, Value: make([]byte, 512)}
	hdr := protocol.Header{Session: 1, Sender: 2, Seq: 3}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = protocol.Encode(hdr, msg)
	}
}

func BenchmarkProtocolAppendEncodeData(b *testing.B) {
	msg := &protocol.Data{Key: "sessions/audio/42", Ver: 9, TTLms: 30000, Value: make([]byte, 512)}
	hdr := protocol.Header{Session: 1, Sender: 2, Seq: 3}
	buf := make([]byte, 0, 1024)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = protocol.AppendEncode(buf[:0], hdr, msg)
	}
}

func BenchmarkProtocolDecodeData(b *testing.B) {
	buf := protocol.Encode(protocol.Header{Session: 1, Sender: 2, Seq: 3},
		&protocol.Data{Key: "sessions/audio/42", Ver: 9, TTLms: 30000, Value: make([]byte, 512)})
	b.ReportAllocs()
	b.SetBytes(int64(len(buf)))
	for i := 0; i < b.N; i++ {
		if _, _, err := protocol.Decode(buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkNamespaceDigest1k(b *testing.B) {
	tr := namespace.New(namespace.HashSHA256)
	for i := 0; i < 1024; i++ {
		tr.Put(fmt.Sprintf("g%d/k%d", i%32, i), []byte("0123456789abcdef"), uint64(i))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Put("g0/k0", []byte(fmt.Sprintf("v%d", i)), uint64(i+2000))
		_ = tr.RootDigest() // incremental: only the dirty path rehashes
	}
}

func BenchmarkSchedulerPick(b *testing.B) {
	for _, tc := range []struct {
		name string
		s    sched.Scheduler
	}{
		{"stride", sched.NewStride()},
		{"wfq", sched.NewWFQ()},
		{"lottery", sched.NewLottery(xrand.New(1))},
		{"drr", sched.NewDRR(1000)},
	} {
		b.Run(tc.name, func(b *testing.B) {
			tc.s.Add(0.7)
			tc.s.Add(0.3)
			ready := func(int) bool { return true }
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				id, _ := tc.s.Pick(ready)
				tc.s.Charge(id, 1000)
			}
		})
	}
}

func BenchmarkChannelTransmit(b *testing.B) {
	sim := eventsim.New()
	ch := netsim.NewChannel(sim, 1e9)
	ch.AddReceiver(netsim.NewBernoulliLoss(0.1, xrand.New(1)), 0)
	n := 0
	ch.OnIdle = func() {
		if n < b.N {
			n++
			ch.Transmit(1000, nil)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	ch.Transmit(1000, nil)
	sim.Run()
}
