// Command ssgossip is a peer-to-peer anti-entropy daemon: one member
// of a gossip mesh in which every node holds a full soft-state replica
// and reconciles with one random peer per round (see README "Gossip
// mesh"). Where ssrelay scales a single origin through a tree, ssgossip
// has no origin at all — any node may publish, any node repairs any
// other, and the mesh survives the loss of every node but one.
//
// Usage:
//
//	ssgossip -laddr 127.0.0.1:8801 \
//	         -peers 127.0.0.1:8802,127.0.0.1:8803
//
// Addresses are URL-style link specs: bare host:port inherits
// -transport (default udp); an explicit scheme (udp://, tcp://,
// tls://) wins, so one mesh can span transports.
//
// With -admin ADDR, an HTTP endpoint serves /metrics (the
// sstp_gossip_* catalog), /stats.json, /trace, and /debug/pprof.
// -quick runs an in-process 8-node churn smoke test and exits non-zero
// on failure.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"strings"
	"time"

	"softstate/internal/gossip"
	"softstate/internal/obs"
	"softstate/internal/staleness"
	"softstate/internal/trace"
	"softstate/internal/transport"
)

// kvFlag accumulates -announce values: the flag is repeatable, and
// each occurrence may itself carry a comma-separated list (a plain
// flag.String would silently keep only the last occurrence).
type kvFlag []string

func (f *kvFlag) String() string { return strings.Join(*f, ",") }

func (f *kvFlag) Set(s string) error {
	for _, kv := range strings.Split(s, ",") {
		if kv = strings.TrimSpace(kv); kv != "" {
			*f = append(*f, kv)
		}
	}
	return nil
}

func main() {
	laddr := flag.String("laddr", "127.0.0.1:8801", "local mesh endpoint (bare host:port or scheme://host:port)")
	peers := flag.String("peers", "", "comma-separated peer addresses seeding the membership view")
	transportName := flag.String("transport", "udp", "default wire transport for bare addresses: udp, tcp, or tls")
	tlsCert := flag.String("tlscert", "", "TLS certificate PEM (tls links; empty generates self-signed)")
	tlsKey := flag.String("tlskey", "", "TLS private key PEM")
	tlsCA := flag.String("tlsca", "", "CA PEM: verify dialed peers and require client certs (mTLS)")
	tlsName := flag.String("tlsname", "", "expected server name on dialed TLS peers")
	session := flag.Uint64("session", 1, "session id")
	nodeID := flag.Uint64("id", uint64(os.Getpid()), "node id (must be unique in the mesh)")
	interval := flag.Duration("interval", 100*time.Millisecond, "anti-entropy round cadence (jittered ±25%)")
	rate := flag.Float64("rate", 0, "outbound bandwidth cap in bits/s (0 = unlimited)")
	suspect := flag.Int("suspect", 3, "missed exchanges before a peer is suspected")
	evict := flag.Int("evict", 8, "missed exchanges before a peer is evicted")
	tombTTL := flag.Duration("tombttl", 60*time.Second, "death-certificate retention (keep above record TTLs)")
	maxPull := flag.Int("maxpull", 512, "max leaves pulled per round (spreads restart catch-up)")
	var announce kvFlag
	flag.Var(&announce, "announce", "key=value record to publish at startup (repeatable; comma-separable)")
	announceTTL := flag.Duration("announcettl", 0, "lifetime of -announce records (0 = immortal)")
	admin := flag.String("admin", "", "serve /metrics, /stats.json, /trace, /debug/pprof on this address")
	statsEvery := flag.Duration("statsevery", 0, "log a one-line stats summary at this interval")
	traceCap := flag.Int("tracecap", 4096, "protocol event ring capacity (0 disables)")
	seed := flag.Int64("seed", 1, "peer-selection and jitter seed")
	quick := flag.Bool("quick", false, "run the in-process gossip churn smoke test and exit")
	flag.Parse()

	if *quick {
		if err := quickSmoke(); err != nil {
			log.Fatalf("ssgossip -quick: %v", err)
		}
		fmt.Println("ssgossip -quick: ok")
		return
	}
	if *peers == "" {
		log.Fatal("ssgossip: -peers needs at least one address")
	}

	topts, err := transport.TLSOptions(*tlsCert, *tlsKey, *tlsCA, *tlsName)
	if err != nil {
		log.Fatal(err)
	}
	tr, conn, err := transport.Bind(*laddr, *transportName, topts)
	if err != nil {
		log.Fatalf("listen %s: %v", *laddr, err)
	}
	var peerAddrs []net.Addr
	for _, p := range strings.Split(*peers, ",") {
		p = strings.TrimSpace(p)
		if p == "" {
			continue
		}
		a, err := transport.Resolve(tr, p)
		if err != nil {
			log.Fatalf("resolve peer %s: %v", p, err)
		}
		peerAddrs = append(peerAddrs, a)
	}

	reg := obs.New("ssgossip")
	var ring *trace.Ring
	if *traceCap > 0 {
		ring = trace.NewSafe(*traceCap)
	}
	est := staleness.NewEstimator(time.Minute)
	node, err := gossip.New(gossip.Config{
		Session:         *session,
		NodeID:          *nodeID,
		Conn:            conn,
		Peers:           peerAddrs,
		Interval:        *interval,
		RateBps:         *rate,
		SuspectAfter:    *suspect,
		EvictAfter:      *evict,
		TombstoneTTL:    *tombTTL,
		MaxPullPerRound: *maxPull,
		Obs:             reg,
		Trace:           ring,
		Consistency:     est,
		Seed:            *seed,
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, kv := range announce {
		k, v, ok := strings.Cut(kv, "=")
		if !ok {
			log.Fatalf("ssgossip: -announce element %q is not key=value", kv)
		}
		if err := node.Publish(k, []byte(v), *announceTTL); err != nil {
			log.Fatalf("announce %s: %v", k, err)
		}
	}
	node.Start()
	defer node.Close()
	log.Printf("ssgossip: session %d node %d on %s, %d seed peer(s), round %s",
		*session, *nodeID, *laddr, len(peerAddrs), *interval)

	if *admin != "" {
		srv, addr, err := obs.ServeAdmin(*admin, reg, ring,
			obs.Section{Name: "gossip", Get: func() any { return node.Stats() }},
			obs.Section{Name: "peers", Get: func() any { return node.Peers() }},
			obs.Section{Name: "consistency", Get: func() any { return est.Snapshot() }})
		if err != nil {
			log.Fatalf("admin: %v", err)
		}
		defer srv.Close()
		log.Printf("ssgossip: admin endpoint on http://%s/", addr)
	}
	if *statsEvery > 0 {
		tick := time.NewTicker(*statsEvery)
		defer tick.Stop()
		go func() {
			for range tick.C {
				st := node.Stats()
				log.Printf("ssgossip: rounds=%d agree=%d diverge=%d applied=%d served=%d peers=%d/%d/%d tx=%dB rx=%dB",
					st.Rounds, st.Agreements, st.Divergences,
					st.RecordsApplied, st.RecordsServed,
					st.PeersLive, st.PeersSuspect, st.PeersEvicted,
					st.BytesSent, st.BytesReceived)
			}
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
}

// quickSmoke builds an 8-node mesh over a 2%-lossy in-process network,
// publishes at one node, and checks the two mesh invariants: every
// replica converges to the same digest, and a node killed mid-run
// re-converges after restarting empty on the same address.
func quickSmoke() error {
	const (
		nodes   = 8
		records = 32
	)
	nw := transport.NewMemNetwork(42)
	nw.SetDefaultLoss(0.02)
	addr := func(i int) transport.MemAddr {
		return transport.MemAddr(fmt.Sprintf("gossip/%d", i))
	}
	var peerAddrs []net.Addr
	for i := 0; i < nodes; i++ {
		peerAddrs = append(peerAddrs, addr(i))
	}
	mk := func(i int) (*gossip.Node, error) {
		return gossip.New(gossip.Config{
			Session: 7, NodeID: uint64(i + 1),
			Conn:  nw.Endpoint(addr(i)),
			Peers: peerAddrs,
			// Fast rounds and a short failure detector keep the smoke
			// under a second per phase.
			Interval:     15 * time.Millisecond,
			SuspectAfter: 2, EvictAfter: 4,
			Seed: int64(100 + i),
		})
	}
	mesh := make([]*gossip.Node, nodes)
	for i := range mesh {
		n, err := mk(i)
		if err != nil {
			return err
		}
		mesh[i] = n
		defer n.Close()
		n.Start()
	}
	for i := 0; i < records; i++ {
		if err := mesh[0].Publish(fmt.Sprintf("smoke/%02d", i), []byte("v"), 0); err != nil {
			return err
		}
	}
	converged := func(members []*gossip.Node) func() bool {
		return func() bool {
			want := members[0].RootDigest()
			for _, n := range members[1:] {
				if n.RootDigest() != want || n.Len() != members[0].Len() {
					return false
				}
			}
			return members[0].Len() == records
		}
	}
	if err := waitFor(15*time.Second, "mesh convergence", converged(mesh)); err != nil {
		return err
	}

	// Kill node 7: close its loops and endpoint so the mesh sees pure
	// silence, then wait for a survivor's failure detector to notice.
	mesh[7].Close()
	nw.Endpoint(addr(7)).Close()
	survivors := mesh[:7]
	if err := waitFor(15*time.Second, "eviction of the dead node", func() bool {
		for _, n := range survivors {
			if n.Stats().Evictions > 0 {
				return true
			}
		}
		return false
	}); err != nil {
		return err
	}

	// Restart empty on the same address: the node must pull the whole
	// replica back from the mesh and the survivors must rejoin it.
	restarted, err := mk(7)
	if err != nil {
		return err
	}
	defer restarted.Close()
	restarted.Start()
	mesh[7] = restarted
	if err := waitFor(15*time.Second, "restarted node to re-converge", converged(mesh)); err != nil {
		return err
	}
	return waitFor(15*time.Second, "a survivor to rejoin the restarted node", func() bool {
		for _, n := range survivors {
			if n.Stats().Rejoins > 0 {
				return true
			}
		}
		return false
	})
}

func waitFor(d time.Duration, what string, cond func() bool) error {
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return nil
		}
		time.Sleep(10 * time.Millisecond)
	}
	return fmt.Errorf("timed out waiting for %s", what)
}
