// Command sssim runs the soft-state protocol simulator directly with
// custom parameters — the tool for exploring operating points beyond
// the paper's figures.
//
// Examples:
//
//	sssim -mode open-loop -lambda 20000 -mu 128000 -pd 0.2 -loss 0.1
//	sssim -mode feedback -lambda 15000 -mu 38000 -mufb 7000 \
//	      -lifetime 30 -hot 0.6 -loss 0.1 -dur 2000
//	sssim -mode two-queue -lambda 15000 -mu 45000 -lifetime 30 \
//	      -sweep loss=0.05:0.5:0.05
//
// The -sweep flag varies one parameter (loss, hot, mufb, pd, lambda,
// or mu) over from:to:step and prints one TSV row per point;
// otherwise a single run is reported in full, alongside the analytic
// closed forms when the configuration is the open-loop model.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"softstate/internal/core"
	"softstate/internal/obs"
	"softstate/internal/queueing"
)

func main() {
	var (
		mode     = flag.String("mode", "open-loop", "open-loop, two-queue, or feedback")
		lambda   = flag.Float64("lambda", 20_000, "new-record arrival rate λ (bits/s)")
		mu       = flag.Float64("mu", 128_000, "data bandwidth μ_data (bits/s)")
		muFb     = flag.Float64("mufb", 0, "feedback bandwidth (bits/s, feedback mode)")
		pd       = flag.Float64("pd", 0, "per-service death probability")
		lifetime = flag.Float64("lifetime", 0, "mean record lifetime (s); 0 = use -pd")
		loss     = flag.Float64("loss", 0.1, "channel loss probability")
		hot      = flag.Float64("hot", 0.9, "hot share of data bandwidth")
		strict   = flag.Bool("strict", false, "strict (non-work-conserving) hot/cold sharing")
		updates  = flag.Float64("updates", 0, "value updates per second across the live set")
		rcvs     = flag.Int("receivers", 1, "number of subscribers")
		burst    = flag.Float64("burst", 0, ">1: Gilbert–Elliott mean loss-burst length")
		schedKd  = flag.String("sched", "stride", "stride, lottery, wfq, or drr")
		dur      = flag.Float64("dur", 2000, "simulated seconds")
		warmup   = flag.Float64("warmup", 300, "warmup seconds excluded from metrics")
		seed     = flag.Int64("seed", 1, "RNG seed")
		sweep    = flag.String("sweep", "", "vary one parameter: name=from:to:step")
		traceN   = flag.Int("trace", 0, "print the last N protocol events (single-run mode)")
		metrics  = flag.Bool("metrics", false, "print the final metrics snapshot (single-run mode); same series names as the live stack")
	)
	flag.Parse()

	baseCfg := func() core.Config {
		cfg := core.Config{
			Seed:       *seed,
			Lambda:     *lambda,
			MuData:     *mu,
			Pd:         *pd,
			Lifetime:   *lifetime,
			LossRate:   *loss,
			UpdateRate: *updates,
			Receivers:  *rcvs,
			BurstLen:   *burst,
			Warmup:     *warmup,
		}
		switch strings.ToLower(*mode) {
		case "open-loop", "openloop", "open":
			cfg.Mode = core.ModeOpenLoop
		case "two-queue", "twoqueue", "aging":
			cfg.Mode = core.ModeTwoQueue
			cfg.MuHot, cfg.MuCold = *hot, 1-*hot
			cfg.StrictShare = *strict
			if *strict {
				cfg.MuHot, cfg.MuCold = *hot**mu, (1-*hot)**mu
			}
		case "feedback", "nack":
			cfg.Mode = core.ModeFeedback
			cfg.MuHot, cfg.MuCold = *hot, 1-*hot
			cfg.MuFb = *muFb
		default:
			fatalf("unknown mode %q", *mode)
		}
		switch strings.ToLower(*schedKd) {
		case "stride":
			cfg.Scheduler = core.SchedStride
		case "lottery":
			cfg.Scheduler = core.SchedLottery
		case "wfq":
			cfg.Scheduler = core.SchedWFQ
		case "drr":
			cfg.Scheduler = core.SchedDRR
		default:
			fatalf("unknown scheduler %q", *schedKd)
		}
		if cfg.Pd == 0 && cfg.Lifetime == 0 {
			cfg.Pd = 0.2 // a sensible default death process
		}
		return cfg
	}

	if *sweep == "" {
		cfg := baseCfg()
		cfg.TraceCapacity = *traceN
		if *metrics {
			cfg.Obs = obs.New("sssim")
		}
		e, err := core.NewEngine(cfg)
		if err != nil {
			fatalf("%v", err)
		}
		res := e.Run(*dur)
		report(cfg, res)
		if cfg.Obs != nil {
			fmt.Printf("\nfinal metrics snapshot:\n%s", cfg.Obs.RenderText())
		}
		if tr := e.Trace(); tr != nil {
			fmt.Printf("\nlast %d protocol events:\n%s", tr.Len(), tr.Dump())
		}
		return
	}

	name, from, to, step, err := parseSweep(*sweep)
	if err != nil {
		fatalf("%v", err)
	}
	fmt.Printf("%s\tconsistency\tE[c] w/empty\tT_rec\tdeliv_ratio\tredundant\tnacks\n", name)
	for v := from; v <= to+1e-9; v += step {
		cfg := baseCfg()
		if err := applySweep(&cfg, name, v, *mu); err != nil {
			fatalf("%v", err)
		}
		res := runOne(cfg, *dur)
		fmt.Printf("%.4g\t%.4f\t%.4f\t%.4f\t%.4f\t%.4f\t%d\n",
			v, res.Consistency, res.ConsistencyWithEmpty, res.MeanLatency,
			res.DeliveryRatio, res.RedundantFraction, res.NACKsSent)
	}
}

func runOne(cfg core.Config, dur float64) core.Result {
	e, err := core.NewEngine(cfg)
	if err != nil {
		fatalf("%v", err)
	}
	return e.Run(dur)
}

func parseSweep(s string) (name string, from, to, step float64, err error) {
	eq := strings.SplitN(s, "=", 2)
	if len(eq) != 2 {
		return "", 0, 0, 0, fmt.Errorf("sweep %q: want name=from:to:step", s)
	}
	parts := strings.Split(eq[1], ":")
	if len(parts) != 3 {
		return "", 0, 0, 0, fmt.Errorf("sweep %q: want name=from:to:step", s)
	}
	vals := make([]float64, 3)
	for i, p := range parts {
		v, perr := strconv.ParseFloat(p, 64)
		if perr != nil {
			return "", 0, 0, 0, fmt.Errorf("sweep %q: %v", s, perr)
		}
		vals[i] = v
	}
	if vals[2] <= 0 || vals[1] < vals[0] {
		return "", 0, 0, 0, fmt.Errorf("sweep %q: need from <= to and step > 0", s)
	}
	return eq[0], vals[0], vals[1], vals[2], nil
}

func applySweep(cfg *core.Config, name string, v, mu float64) error {
	switch strings.ToLower(name) {
	case "loss":
		cfg.LossRate = v
	case "hot":
		cfg.MuHot, cfg.MuCold = v, 1-v
		if cfg.StrictShare {
			cfg.MuHot, cfg.MuCold = v*mu, (1-v)*mu
		}
	case "mufb":
		cfg.MuFb = v
	case "pd":
		cfg.Pd, cfg.Lifetime = v, 0
	case "lambda":
		cfg.Lambda = v
	case "mu":
		cfg.MuData = v
	default:
		return fmt.Errorf("cannot sweep %q (try loss, hot, mufb, pd, lambda, mu)", name)
	}
	return nil
}

func report(cfg core.Config, res core.Result) {
	fmt.Printf("mode            %v\n", res.Mode)
	fmt.Printf("duration        %.0f s (warmup %.0f s excluded)\n", res.Duration, cfg.Warmup)
	fmt.Printf("consistency     %.4f  (live-set time average)\n", res.Consistency)
	fmt.Printf("E[c(t)]         %.4f  (empty live set counts as 0)\n", res.ConsistencyWithEmpty)
	fmt.Printf("busy fraction   %.4f\n", res.BusyFraction)
	fmt.Printf("T_rec mean/p95  %.4f / %.4f s\n", res.MeanLatency, res.P95Latency)
	fmt.Printf("delivery ratio  %.4f\n", res.DeliveryRatio)
	fmt.Printf("redundant frac  %.4f\n", res.RedundantFraction)
	fmt.Printf("arrivals/deaths %d / %d   transmissions %d\n", res.Arrivals, res.Deaths, res.Transmissions)
	if res.Mode == core.ModeFeedback {
		fmt.Printf("NACKs sent/recv/dropped  %d / %d / %d   promotions %d\n",
			res.NACKsSent, res.NACKsRecv, res.NACKsDropped, res.Promotions)
	}
	if res.Mode == core.ModeOpenLoop && cfg.Pd > 0 {
		m := queueing.OpenLoop{Lambda: cfg.Lambda, MuCh: cfg.MuData, Pc: cfg.LossRate, Pd: cfg.Pd}
		if m.Stable() {
			fmt.Printf("analytic        q=%.4f  ρ·q=%.4f  ρ=%.4f  redundant=%.4f\n",
				m.BusyConsistency(), m.Consistency(), m.Rho(), m.RedundantFraction())
		} else {
			fmt.Printf("analytic        UNSTABLE (ρ=%.3f ≥ 1; need p_d > λ/μ = %.3f)\n", m.Rho(), cfg.Lambda/cfg.MuData)
		}
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}
