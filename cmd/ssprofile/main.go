// Command ssprofile derives a consistency profile — the stored table
// the paper's profile-driven allocator (Figure 12) consults — by
// sweeping the protocol simulator over (loss rate × feedback share)
// for a given workload, and writes it as JSON for sstpd or any
// profile.Allocator user.
//
// Usage:
//
//	ssprofile -lambda 15000 -mutot 45000 -lifetime 30 \
//	          -losses 0,0.1,0.2,0.3,0.4,0.5 \
//	          -fbfracs 0,0.05,0.1,0.2,0.3,0.4 \
//	          -o profile.json
//
// The resulting file feeds `sstpd -profile profile.json -target 0.95`.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"softstate/internal/core"
	"softstate/internal/profile"
)

func main() {
	var (
		lambda   = flag.Float64("lambda", 15_000, "application data rate λ (bits/s)")
		muTot    = flag.Float64("mutot", 45_000, "total session bandwidth (bits/s)")
		lifetime = flag.Float64("lifetime", 30, "mean record lifetime (s)")
		hot      = flag.Float64("hot", 0.9, "hot share of data bandwidth")
		losses   = flag.String("losses", "0,0.1,0.2,0.3,0.4,0.5", "loss-rate grid (ascending)")
		fbFracs  = flag.String("fbfracs", "0.001,0.05,0.1,0.2,0.3,0.4,0.5", "feedback-share grid (ascending)")
		dur      = flag.Float64("dur", 800, "simulated seconds per grid point")
		seed     = flag.Int64("seed", 1, "RNG seed")
		out      = flag.String("o", "", "output file (default stdout)")
	)
	flag.Parse()

	lossGrid, err := parseGrid(*losses)
	if err != nil {
		fatalf("-losses: %v", err)
	}
	fbGrid, err := parseGrid(*fbFracs)
	if err != nil {
		fatalf("-fbfracs: %v", err)
	}

	start := time.Now()
	points := 0
	grid, err := profile.BuildGrid(lossGrid, fbGrid, func(loss, fb float64) float64 {
		points++
		cfg := core.Config{
			Seed:     *seed + int64(points),
			Lambda:   *lambda,
			Lifetime: *lifetime,
			LossRate: loss,
			MuHot:    *hot, MuCold: 1 - *hot,
			Warmup: *dur / 5,
		}
		if fb*(*muTot) >= 100 { // enough bandwidth for at least some NACKs
			cfg.Mode = core.ModeFeedback
			cfg.MuFb = fb * (*muTot)
			cfg.MuData = (1 - fb) * (*muTot)
			cfg.NACKBits = 200
		} else {
			cfg.Mode = core.ModeTwoQueue
			cfg.MuData = *muTot
		}
		e, err := core.NewEngine(cfg)
		if err != nil {
			fatalf("grid point (loss=%v, fb=%v): %v", loss, fb, err)
		}
		res := e.Run(*dur)
		fmt.Fprintf(os.Stderr, "loss=%.2f fb=%.3f -> consistency %.4f\n", loss, fb, res.Consistency)
		return res.Consistency
	})
	if err != nil {
		fatalf("%v", err)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatalf("%v", err)
		}
		defer f.Close()
		w = f
	}
	desc := fmt.Sprintf("λ=%.0f bps, μ_tot=%.0f bps, lifetime=%.0f s, hot=%.2f, %d points, %v",
		*lambda, *muTot, *lifetime, *hot, points, time.Since(start).Round(time.Millisecond))
	if err := grid.WriteJSON(w, desc); err != nil {
		fatalf("%v", err)
	}
}

func parseGrid(s string) ([]float64, error) {
	parts := strings.Split(s, ",")
	out := make([]float64, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty grid")
	}
	return out, nil
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}
