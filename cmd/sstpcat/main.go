// Command sstpcat subscribes to an SSTP session and prints every
// table update and expiry as it happens — a soft-state analogue of
// netcat.
//
// Usage:
//
//	sstpcat -laddr 127.0.0.1:8702 -sender 127.0.0.1:8701 -session 1
//	sstpcat -transport tcp -laddr :8702 -sender tcp://pub:8701
//
// Addresses are URL-style link specs: bare host:port inherits
// -transport (default udp), an explicit scheme wins.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"time"

	"softstate/internal/sstp"
	"softstate/internal/transport"
)

func main() {
	laddr := flag.String("laddr", "127.0.0.1:8702", "local address (bare host:port or scheme://host:port)")
	sender := flag.String("sender", "127.0.0.1:8701", "publisher address for feedback")
	session := flag.Uint64("session", 1, "session id")
	openLoop := flag.Bool("open-loop", false, "disable feedback (pure announce/listen)")
	statsEvery := flag.Duration("stats", 10*time.Second, "stats print interval (0 disables)")
	transportName := flag.String("transport", "udp", "wire transport for bare addresses: udp, tcp, or tls")
	tlsCert := flag.String("tlscert", "", "TLS certificate PEM (tls transport; empty generates self-signed)")
	tlsKey := flag.String("tlskey", "", "TLS private key PEM")
	tlsCA := flag.String("tlsca", "", "CA PEM: verify dialed peers and require client certs (mTLS)")
	tlsName := flag.String("tlsname", "", "expected server name on dialed TLS peers")
	flag.Parse()

	topts, err := transport.TLSOptions(*tlsCert, *tlsKey, *tlsCA, *tlsName)
	if err != nil {
		log.Fatal(err)
	}
	tr, conn, err := transport.Bind(*laddr, *transportName, topts)
	if err != nil {
		log.Fatalf("listen: %v", err)
	}
	senderAddr, err := transport.Resolve(tr, *sender)
	if err != nil {
		log.Fatalf("resolve sender: %v", err)
	}
	r, err := sstp.NewReceiver(sstp.ReceiverConfig{
		Session:         *session,
		ReceiverID:      uint64(os.Getpid()),
		Conn:            conn,
		FeedbackDest:    senderAddr,
		DisableFeedback: *openLoop,
		OnUpdate: func(key string, value []byte, version uint64, born float64) {
			fmt.Printf("%s UPDATE %s = %q (v%d)\n", stamp(), key, value, version)
		},
		OnExpire: func(key string) {
			fmt.Printf("%s EXPIRE %s\n", stamp(), key)
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	r.Start()
	defer r.Close()
	log.Printf("sstpcat: listening on %s for session %d (feedback to %s)", *laddr, *session, *sender)

	if *statsEvery > 0 {
		go func() {
			for range time.Tick(*statsEvery) {
				st := r.Stats()
				log.Printf("stats: %d records, loss≈%.1f%%, %d updates, %d nacks, %d queries, %d expired",
					r.Len(), 100*st.LossEstimate, st.DataReceived, st.NACKsSent, st.QueriesSent, st.Expired)
			}
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
}

func stamp() string { return time.Now().Format("15:04:05.000") }
