// Command ssbench regenerates the tables and figures of Raman &
// McCanne's soft-state paper from this repository's simulator and
// analytic models, printing each as TSV.
//
// Usage:
//
//	ssbench -fig 3            # one figure (3, 4, 5, 6, 8, 9, 10, 11)
//	ssbench -table 1          # Table 1
//	ssbench -summary          # regenerate the §8 headline comparison
//	ssbench -all              # everything, in paper order
//	ssbench -quick            # 5x shorter simulations
//	ssbench -seed 7           # change the RNG seed
//	ssbench -procs 4          # sweep worker pool size (0 = GOMAXPROCS)
//	ssbench -json             # emit a benchmark record instead of TSV
//
// Sweep points derive their seeds from their parameters alone, so
// -procs changes wall-clock time only: the output is byte-identical
// for every worker count (see internal/par).
//
// With -json, ssbench suppresses TSV and instead emits one JSON object
// on stdout recording per-experiment wall time and headline metric —
// the format of BENCH_ssbench.json, documented in EXPERIMENTS.md.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"softstate/internal/experiments"
	"softstate/internal/runmeta"
)

// record is the -json output: one benchmark trajectory point. Meta
// pins the environment (toolchain, host shape, VCS revision) so
// records are comparable across machines and commits.
type record struct {
	Seed        int64        `json:"seed"`
	Quick       bool         `json:"quick"`
	Procs       int          `json:"procs"`
	GOMAXPROCS  int          `json:"gomaxprocs"`
	Meta        runmeta.Meta `json:"meta"`
	TotalMillis float64      `json:"total_ms"`
	Experiments []expRecord  `json:"experiments"`
}

type expRecord struct {
	ID       string  `json:"id"`
	Millis   float64 `json:"ms"`
	Headline string  `json:"headline"`
	Value    float64 `json:"value"`
}

func main() {
	fig := flag.Int("fig", 0, "figure number to regenerate (3-6, 8-11)")
	tbl := flag.Int("table", 0, "table number to regenerate (1)")
	summary := flag.Bool("summary", false, "regenerate the §8 summary comparison")
	all := flag.Bool("all", false, "regenerate every table and figure")
	quick := flag.Bool("quick", false, "run 5x shorter simulations")
	seed := flag.Int64("seed", 1, "simulation seed")
	procs := flag.Int("procs", 0, "sweep worker pool size; 0 means GOMAXPROCS, 1 is serial")
	jsonOut := flag.Bool("json", false, "emit a JSON benchmark record instead of TSV")
	flag.Parse()

	opts := experiments.Opts{Quick: *quick, Seed: *seed, Procs: *procs}

	var ids []string
	switch {
	case *all:
		ids = experiments.All()
	case *fig != 0:
		ids = []string{fmt.Sprintf("fig%d", *fig)}
	case *tbl != 0:
		ids = []string{fmt.Sprintf("table%d", *tbl)}
	case *summary:
		ids = []string{"summary"}
	default:
		flag.Usage()
		os.Exit(2)
	}

	rec := record{Seed: *seed, Quick: *quick, Procs: *procs, GOMAXPROCS: runtime.GOMAXPROCS(0), Meta: runmeta.Collect()}
	tsvOut := io.Writer(os.Stdout)
	if *jsonOut {
		tsvOut = io.Discard
	}
	total := time.Now()
	for _, id := range ids {
		start := time.Now()
		exp, err := experiments.Run(id, opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		elapsed := time.Since(start)
		exp.WriteTSV(tsvOut)
		name, v := exp.Headline()
		rec.Experiments = append(rec.Experiments, expRecord{
			ID: id, Millis: float64(elapsed.Microseconds()) / 1000,
			Headline: name, Value: v,
		})
		fmt.Fprintf(os.Stderr, "[%s done in %v]\n", id, elapsed.Round(time.Millisecond))
		if !*jsonOut {
			fmt.Println()
		}
	}
	rec.TotalMillis = float64(time.Since(total).Microseconds()) / 1000
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rec); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
}
