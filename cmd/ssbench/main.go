// Command ssbench regenerates the tables and figures of Raman &
// McCanne's soft-state paper from this repository's simulator and
// analytic models, printing each as TSV.
//
// Usage:
//
//	ssbench -fig 3            # one figure (3, 4, 5, 6, 8, 9, 10, 11)
//	ssbench -table 1          # Table 1
//	ssbench -summary          # the §8 headline comparison
//	ssbench -all              # everything, in paper order
//	ssbench -quick            # 5x shorter simulations
//	ssbench -seed 7           # change the RNG seed
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"softstate/internal/experiments"
)

func main() {
	fig := flag.Int("fig", 0, "figure number to regenerate (3-6, 8-11)")
	tbl := flag.Int("table", 0, "table number to regenerate (1)")
	summary := flag.Bool("summary", false, "regenerate the §8 summary comparison")
	all := flag.Bool("all", false, "regenerate every table and figure")
	quick := flag.Bool("quick", false, "run 5x shorter simulations")
	seed := flag.Int64("seed", 1, "simulation seed")
	flag.Parse()

	opts := experiments.Opts{Quick: *quick, Seed: *seed}

	var ids []string
	switch {
	case *all:
		ids = experiments.All()
	case *fig != 0:
		ids = []string{fmt.Sprintf("fig%d", *fig)}
	case *tbl != 0:
		ids = []string{fmt.Sprintf("table%d", *tbl)}
	case *summary:
		ids = []string{"summary"}
	default:
		flag.Usage()
		os.Exit(2)
	}

	for _, id := range ids {
		start := time.Now()
		exp, err := experiments.Run(id, opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		exp.WriteTSV(os.Stdout)
		fmt.Fprintf(os.Stderr, "[%s done in %v]\n", id, time.Since(start).Round(time.Millisecond))
		fmt.Println()
	}
}
