// Command sdird is a small session-directory tool in the spirit of
// sdr, built on the sdir application layer: in -announce mode it
// publishes conference sessions read from stdin; in -browse mode it
// prints the live catalogue as it evolves (including sessions that
// vanish when their announcer dies — no teardown protocol).
//
// Announce:
//
//	sdird -announce -laddr 127.0.0.1:9875 -dest 127.0.0.1:9876
//	stdin: ADD <name> <tool> <duration> [description…]
//	       DEL <name>
//	       LIST
//
// Browse:
//
//	sdird -browse -laddr 127.0.0.1:9876 -sender 127.0.0.1:9875
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"strings"
	"time"

	"softstate/internal/obs"
	"softstate/internal/sdir"
	"softstate/internal/sstp"
	"softstate/internal/trace"
	"softstate/internal/transport"
)

func main() {
	announce := flag.Bool("announce", false, "run as announcer")
	browse := flag.Bool("browse", false, "run as browser")
	laddr := flag.String("laddr", "127.0.0.1:9875", "local address (bare host:port or scheme://host:port)")
	peer := flag.String("dest", "127.0.0.1:9876", "announcer: destination address")
	sender := flag.String("sender", "127.0.0.1:9875", "browser: announcer address for feedback")
	session := flag.Uint64("session", 9875, "SSTP session id")
	rate := flag.Float64("rate", 64_000, "session bandwidth (bits/s)")
	admin := flag.String("admin", "", "serve /metrics, /stats.json, /trace, /debug/pprof on this address")
	transportName := flag.String("transport", "udp", "wire transport for bare addresses: udp, tcp, or tls")
	tlsCert := flag.String("tlscert", "", "TLS certificate PEM (tls transport; empty generates self-signed)")
	tlsKey := flag.String("tlskey", "", "TLS private key PEM")
	tlsCA := flag.String("tlsca", "", "CA PEM: verify dialed peers and require client certs (mTLS)")
	tlsName := flag.String("tlsname", "", "expected server name on dialed TLS peers")
	flag.Parse()

	topts, err := transport.TLSOptions(*tlsCert, *tlsKey, *tlsCA, *tlsName)
	if err != nil {
		log.Fatal(err)
	}
	bind := func(la, dst string) (transport.Conn, net.Addr) {
		tr, conn, err := transport.Bind(la, *transportName, topts)
		if err != nil {
			log.Fatal(err)
		}
		addr, err := transport.Resolve(tr, dst)
		if err != nil {
			log.Fatal(err)
		}
		return conn, addr
	}

	reg := obs.New("sdird")
	ring := trace.NewSafe(4096)
	if *admin != "" {
		srv, addr, err := obs.ServeAdmin(*admin, reg, ring)
		if err != nil {
			log.Fatalf("admin: %v", err)
		}
		defer srv.Close()
		log.Printf("sdird: admin endpoint on http://%s/", addr)
	}

	switch {
	case *announce:
		conn, dst := bind(*laddr, *peer)
		runAnnouncer(conn, dst, *laddr, *peer, *session, *rate, reg, ring)
	case *browse:
		conn, dst := bind(*laddr, *sender)
		runBrowser(conn, dst, *laddr, *session, reg, ring)
	default:
		fmt.Fprintln(os.Stderr, "need -announce or -browse")
		os.Exit(2)
	}
}

func runAnnouncer(conn transport.Conn, dst net.Addr, laddr, dest string, session uint64, rate float64, reg *obs.Registry, ring *trace.Ring) {
	sndr, err := sstp.NewSender(sstp.SenderConfig{
		Session: session, SenderID: uint64(time.Now().UnixNano()),
		Conn: conn, Dest: dst, TotalRate: rate,
		Obs: reg, Trace: ring,
	})
	if err != nil {
		log.Fatal(err)
	}
	dir := sdir.NewDirectory(sndr)
	sndr.Start()
	defer sndr.Close()
	log.Printf("sdird: announcing session directory %d from %s to %s", session, laddr, dest)

	go func() {
		sc := bufio.NewScanner(os.Stdin)
		for sc.Scan() {
			fields := strings.Fields(sc.Text())
			if len(fields) == 0 {
				continue
			}
			switch strings.ToUpper(fields[0]) {
			case "ADD":
				if len(fields) < 4 {
					fmt.Println("usage: ADD <name> <tool> <duration> [description…]")
					continue
				}
				d, err := time.ParseDuration(fields[3])
				if err != nil {
					fmt.Println("bad duration:", err)
					continue
				}
				s := sdir.Session{
					Name:        fields[1],
					Tool:        fields[2],
					Ends:        time.Now().Add(d),
					Description: strings.Join(fields[4:], " "),
				}
				if err := dir.Announce(s); err != nil {
					fmt.Println("error:", err)
				}
			case "DEL":
				if len(fields) != 2 {
					fmt.Println("usage: DEL <name>")
					continue
				}
				if !dir.Withdraw(fields[1]) {
					fmt.Println("no such session")
				}
			case "LIST":
				fmt.Printf("%d live announcements\n", dir.Len())
			default:
				fmt.Println("commands: ADD, DEL, LIST")
			}
		}
	}()

	waitForInterrupt()
}

func runBrowser(conn transport.Conn, dst net.Addr, laddr string, session uint64, reg *obs.Registry, ring *trace.Ring) {
	browser, rcv, err := sdir.NewBrowser(sstp.ReceiverConfig{
		Session: session, ReceiverID: uint64(os.Getpid()),
		Conn: conn, FeedbackDest: dst,
		Obs: reg, Trace: ring,
	})
	if err != nil {
		log.Fatal(err)
	}
	browser.OnNew = func(s sdir.Session) {
		fmt.Printf("%s NEW     %-20s %-6s %s\n", stamp(), s.Name, s.Tool, s.Description)
	}
	browser.OnChange = func(s sdir.Session) {
		fmt.Printf("%s CHANGED %-20s %-6s %s\n", stamp(), s.Name, s.Tool, s.Description)
	}
	browser.OnGone = func(name string) {
		fmt.Printf("%s GONE    %s\n", stamp(), name)
	}
	rcv.Start()
	defer rcv.Close()
	log.Printf("sdird: browsing session directory %d on %s", session, laddr)
	waitForInterrupt()
}

func stamp() string { return time.Now().Format("15:04:05") }

func waitForInterrupt() {
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
}
