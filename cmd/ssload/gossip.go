package main

import (
	"encoding/json"
	"fmt"
	"net"
	"os"
	"sort"
	"time"

	"softstate/internal/gossip"
	"softstate/internal/obs"
	"softstate/internal/relay"
	"softstate/internal/runmeta"
	"softstate/internal/sstp"
	"softstate/internal/staleness"
	"softstate/internal/transport"
)

// gossipOpts parameterize the -gossip-peers mesh mode.
type gossipOpts struct {
	nodes    int
	records  int
	rate     float64
	valueLen int
	loss     float64
	interval time.Duration
	churn    bool
	seed     int64
	jsonOut  bool
	admin    string
	quick    bool
}

// gossipResult is the -gossip-peers -json output, the format of
// BENCH_ssgossip.json (see EXPERIMENTS.md): the tree-vs-gossip
// head-to-head at equal per-link bandwidth.
type gossipResult struct {
	Seed       int64   `json:"seed"`
	Quick      bool    `json:"quick"`
	Nodes      int     `json:"nodes"`
	Records    int     `json:"records"`
	RateBps    float64 `json:"rate_bps"`
	ValueBytes int     `json:"value_bytes"`
	Loss       float64 `json:"loss"`
	IntervalMs float64 `json:"interval_ms"`
	Churn      bool    `json:"churn"`

	Meta runmeta.Meta `json:"meta"`

	// Spread is the headline convergence measurement: a batch published
	// at one mesh node, timed until every replica digest matches, in
	// anti-entropy rounds against the analytic epidemic recurrence
	// (gossip.SpreadRounds).
	Spread spreadResult `json:"spread"`

	// Tree is the same batch over a relay tree with the same number of
	// leaf replicas and the same per-link bandwidth.
	Tree treeSideResult `json:"tree"`

	// ChurnGossip / ChurnTree report the single-node-kill experiment:
	// the mesh re-converges with its repair bytes spread across peers;
	// the tree repairs its killed leaf with zero origin traffic.
	ChurnGossip *gossipChurnResult `json:"churn_gossip,omitempty"`
	ChurnTree   *treeChurnResult   `json:"churn_tree,omitempty"`
}

type spreadResult struct {
	AnalyticRounds99 int     `json:"analytic_rounds_99"`
	MeasuredRounds   float64 `json:"measured_rounds"`
	RoundsRatio      float64 `json:"rounds_ratio"`
	ConvergeMs       float64 `json:"converge_ms"`
	Converged        int     `json:"converged"`

	Consistency staleness.Snapshot `json:"consistency"`
}

type treeSideResult struct {
	Relays             int     `json:"relays"`
	Leaves             int     `json:"leaves"`
	Converged          int     `json:"converged"`
	ConvergeMs         float64 `json:"converge_ms"`
	RootQueriesServed  int     `json:"root_queries_served"`
	RootNACKs          int     `json:"root_nacks"`
	RelayQueriesServed int     `json:"relay_queries_served"`
	RelayNACKs         int     `json:"relay_nacks"`
}

type gossipChurnResult struct {
	EvictMs      float64 `json:"evict_ms"`
	ReconvergeMs float64 `json:"reconverge_ms"`

	// RepairBytes is each surviving node's outbound byte count between
	// the restart and re-convergence (index = node): the serving side
	// of the repair. Locality criterion: no serving node exceeds 2x
	// the median — the permutation-cycle peer selection spreads the
	// budgeted catch-up pulls near-evenly instead of slamming one
	// peer. The restarted node's own outbound chatter (openers,
	// queries, NACKs) is CatchupBytes, reported separately because it
	// is the request side of the repair, not served repair traffic.
	RepairBytes       []int64 `json:"repair_bytes"`
	MedianRepairBytes int64   `json:"median_repair_bytes"`
	MaxRepairBytes    int64   `json:"max_repair_bytes"`
	MaxOverMedian     float64 `json:"max_over_median"`
	CatchupBytes      int64   `json:"catchup_bytes"`

	Evictions int `json:"evictions"`
	Rejoins   int `json:"rejoins"`
}

type treeChurnResult struct {
	ReconvergeMs float64 `json:"reconverge_ms"`

	// Counter deltas from kill to re-convergence. Scoped-recovery
	// criterion: the origin columns stay zero — the restarted leaf is
	// repaired entirely by its relay.
	RootQueriesServed  int `json:"root_queries_served"`
	RootNACKs          int `json:"root_nacks"`
	RelayQueriesServed int `json:"relay_queries_served"`
	RelayNACKs         int `json:"relay_nacks"`
}

// runGossipMesh drives the headline experiment of the gossip overlay:
// the same record batch through a peer-to-peer mesh and through a
// relay tree at equal per-link bandwidth, then (with -churn) a
// single-node kill in each.
func runGossipMesh(o gossipOpts) {
	if o.nodes < 2 {
		fmt.Fprintln(os.Stderr, "ssload: -gossip-peers must be >= 2")
		os.Exit(2)
	}
	res := gossipResult{
		Seed: o.seed, Quick: o.quick, Nodes: o.nodes, Records: o.records,
		RateBps: o.rate, ValueBytes: o.valueLen, Loss: o.loss,
		IntervalMs: float64(o.interval.Microseconds()) / 1000,
		Churn:      o.churn,
		Meta:       runmeta.Collect(),
	}
	value := make([]byte, o.valueLen)
	for i := range value {
		value[i] = byte('a' + i%26)
	}

	// --- gossip side ---

	nw := transport.NewMemNetwork(o.seed)
	nw.SetDefaultLoss(o.loss)
	gaddr := func(i int) transport.MemAddr {
		return transport.MemAddr(fmt.Sprintf("gossip/%d", i))
	}
	var peerAddrs []net.Addr
	for i := 0; i < o.nodes; i++ {
		peerAddrs = append(peerAddrs, gaddr(i))
	}
	reg := obs.New("ssload-gossip")
	est := staleness.NewEstimator(0)
	mkNode := func(i, maxPull int) *gossip.Node {
		n, err := gossip.New(gossip.Config{
			Session: 44, NodeID: uint64(i + 1),
			Conn: nw.Endpoint(gaddr(i)), Peers: peerAddrs,
			Interval: o.interval, RateBps: o.rate,
			SuspectAfter: 2, EvictAfter: 4,
			MaxPullPerRound: maxPull,
			Obs:             reg, Consistency: est,
			Seed: o.seed + int64(100+i),
		})
		must(err)
		return n
	}
	mesh := make([]*gossip.Node, o.nodes)
	for i := range mesh {
		mesh[i] = mkNode(i, 0) // default budget: spread is unthrottled
		mesh[i].Start()
	}
	if o.admin != "" {
		srv, addr, err := obs.ServeAdmin(o.admin, reg, nil,
			obs.Section{Name: "consistency", Get: func() any { return est.Snapshot() }})
		must(err)
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "ssload: admin endpoint on http://%s/\n", addr)
	}

	// Let the empty mesh settle into agreement so the measured window
	// contains only the spread itself.
	time.Sleep(10 * o.interval)
	rounds0 := make([]int, o.nodes)
	for i, n := range mesh {
		rounds0[i] = n.Stats().Rounds
	}
	for i := 0; i < o.records; i++ {
		must(mesh[0].Publish(key(i), value, 0))
	}
	spreadStart := time.Now()
	meshConverged := func(members []*gossip.Node) int {
		want := mesh[0].RootDigest()
		c := 0
		for _, n := range members {
			if n != nil && n.RootDigest() == want {
				c++
			}
		}
		return c
	}
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if meshConverged(mesh) == o.nodes {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	res.Spread.ConvergeMs = float64(time.Since(spreadStart).Microseconds()) / 1000
	res.Spread.Converged = meshConverged(mesh)
	var roundsSum float64
	for i, n := range mesh {
		roundsSum += float64(n.Stats().Rounds - rounds0[i])
	}
	res.Spread.MeasuredRounds = roundsSum / float64(o.nodes)
	res.Spread.AnalyticRounds99 = gossip.SpreadRounds(o.nodes, 0.99)
	if res.Spread.AnalyticRounds99 > 0 {
		res.Spread.RoundsRatio = res.Spread.MeasuredRounds / float64(res.Spread.AnalyticRounds99)
	}
	res.Spread.Consistency = est.Snapshot()

	// --- tree side: same replica count, same per-link bandwidth ---

	const fanout = 4
	relays := (o.nodes + fanout - 1) / fanout
	tnw := sstp.NewMemNetwork(o.seed + 1)
	pc := tnw.Endpoint("pub")
	tnw.Join("grp/root", "pub")
	pub, err := sstp.NewSender(sstp.SenderConfig{
		Session: 45, SenderID: 1, Conn: pc, Dest: sstp.MemAddr("grp/root"),
		TotalRate: o.rate, SummaryInterval: o.interval,
		TTL: 60 * time.Second, Seed: o.seed,
	})
	must(err)
	var treeRelays []*relay.Relay
	for k := 0; k < relays; k++ {
		up := tnw.Endpoint(sstp.MemAddr(fmt.Sprintf("up/%d", k)))
		tnw.Join("grp/root", sstp.MemAddr(fmt.Sprintf("up/%d", k)))
		dn := tnw.Endpoint(sstp.MemAddr(fmt.Sprintf("dn/%d", k)))
		tnw.Join(sstp.MemAddr(fmt.Sprintf("grp/%d", k)), sstp.MemAddr(fmt.Sprintf("dn/%d", k)))
		r, err := relay.New(relay.Config{
			Session: 45, RelayID: uint64(100 * (k + 1)),
			UpstreamConn:     up,
			UpstreamFeedback: sstp.MemAddr("grp/root"),
			Downstreams: []relay.Downstream{{
				Conn: dn, Dest: sstp.MemAddr(fmt.Sprintf("grp/%d", k)), Rate: o.rate,
			}},
			TTL: 60 * time.Second, SummaryInterval: o.interval,
			NACKWindow: o.interval / 2,
			Seed:       o.seed + int64(500+k),
		})
		must(err)
		treeRelays = append(treeRelays, r)
	}
	mkLeaf := func(j int) *sstp.Receiver {
		grp := sstp.MemAddr(fmt.Sprintf("grp/%d", j/fanout))
		name := sstp.MemAddr(fmt.Sprintf("leaf/%d", j))
		lc := tnw.Endpoint(name)
		tnw.Join(grp, name)
		// Loss lives on the edge hop only, so every leaf repair must be
		// answered by its relay — origin counters stay zero.
		tnw.SetLoss(sstp.MemAddr(fmt.Sprintf("dn/%d", j/fanout)), name, o.loss)
		leaf, err := sstp.NewReceiver(sstp.ReceiverConfig{
			Session: 45, ReceiverID: uint64(10_000 + j), Conn: lc,
			FeedbackDest: grp,
			NACKWindow:   o.interval / 2,
			Seed:         o.seed + int64(2000+j),
		})
		must(err)
		return leaf
	}
	leaves := make([]*sstp.Receiver, o.nodes)
	for j := range leaves {
		leaves[j] = mkLeaf(j)
	}
	res.Tree.Relays = relays
	res.Tree.Leaves = o.nodes

	pub.Start()
	for _, r := range treeRelays {
		r.Start()
	}
	for _, l := range leaves {
		l.Start()
	}
	for i := 0; i < o.records; i++ {
		must(pub.Publish(key(i), value, 0))
	}
	treeStart := time.Now()
	treeConverged := func(members []*sstp.Receiver) int {
		want := pub.RootDigest()
		c := 0
		for _, r := range treeRelays {
			if r.RootDigest() == want {
				c++
			}
		}
		for _, l := range members {
			if l != nil && l.RootDigest() == want {
				c++
			}
		}
		return c
	}
	deadline = time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if treeConverged(leaves) == relays+o.nodes {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	res.Tree.ConvergeMs = float64(time.Since(treeStart).Microseconds()) / 1000
	res.Tree.Converged = treeConverged(leaves)
	pst := pub.Stats()
	res.Tree.RootQueriesServed = pst.QueriesServed
	res.Tree.RootNACKs = pst.NACKsReceived
	for _, r := range treeRelays {
		st := r.Stats()
		res.Tree.RelayQueriesServed += st.QueriesServed
		res.Tree.RelayNACKs += st.NACKsHeard
	}

	if o.churn {
		res.ChurnGossip = runGossipChurn(nw, mesh, mkNode, gaddr, o)
		res.ChurnTree = runTreeChurn(tnw, pub, treeRelays, leaves, mkLeaf, o)
	}

	for _, l := range leaves {
		if l != nil {
			l.Close()
		}
	}
	for _, r := range treeRelays {
		r.Close()
	}
	pub.Close()
	for _, n := range mesh {
		if n != nil {
			n.Close()
		}
	}

	report(res, o)
}

// runGossipChurn kills the last mesh node, waits for the failure
// detector, restarts it empty on the same address with a throttled
// pull budget, and measures how the repair bytes distribute across the
// serving peers.
func runGossipChurn(nw *transport.MemNetwork, mesh []*gossip.Node,
	mkNode func(i, maxPull int) *gossip.Node,
	gaddr func(i int) transport.MemAddr, o gossipOpts) *gossipChurnResult {

	out := &gossipChurnResult{}
	victim := o.nodes - 1
	mesh[victim].Close()
	nw.Endpoint(gaddr(victim)).Close()
	mesh[victim] = nil
	survivors := mesh[:victim]

	killAt := time.Now()
	waitUntil(30*time.Second, func() bool {
		for _, n := range survivors {
			if n.Stats().Evictions > 0 {
				return true
			}
		}
		return false
	})
	out.EvictMs = float64(time.Since(killAt).Microseconds()) / 1000

	// Restart empty. The catch-up budget caps each round's pull at a
	// slice of the replica, so successive rounds (hitting random peers)
	// spread the serving load — the locality half of the experiment.
	maxPull := o.records / 16
	if maxPull < 4 {
		maxPull = 4
	}
	base := make([]int64, o.nodes)
	for i, n := range survivors {
		base[i] = n.Stats().BytesSent
	}
	restarted := mkNode(victim, maxPull)
	mesh[victim] = restarted
	restarted.Start()
	restartAt := time.Now()
	want := mesh[0].RootDigest()
	waitUntil(30*time.Second, func() bool {
		return restarted.RootDigest() == want
	})
	out.ReconvergeMs = float64(time.Since(restartAt).Microseconds()) / 1000

	out.RepairBytes = make([]int64, len(survivors))
	for i, n := range survivors {
		out.RepairBytes[i] = n.Stats().BytesSent - base[i]
	}
	out.CatchupBytes = restarted.Stats().BytesSent
	sorted := append([]int64(nil), out.RepairBytes...)
	sort.Slice(sorted, func(a, b int) bool { return sorted[a] < sorted[b] })
	out.MedianRepairBytes = sorted[len(sorted)/2]
	out.MaxRepairBytes = sorted[len(sorted)-1]
	if out.MedianRepairBytes > 0 {
		out.MaxOverMedian = float64(out.MaxRepairBytes) / float64(out.MedianRepairBytes)
	}
	for _, n := range survivors {
		st := n.Stats()
		out.Evictions += st.Evictions
		out.Rejoins += st.Rejoins
	}
	return out
}

// runTreeChurn kills one leaf and restarts it empty: the relay overlay
// must repair it with zero origin traffic (counter deltas from the
// kill), the scoped-recovery property of section 5.
func runTreeChurn(tnw *sstp.MemNetwork, pub *sstp.Sender,
	treeRelays []*relay.Relay, leaves []*sstp.Receiver,
	mkLeaf func(j int) *sstp.Receiver, o gossipOpts) *treeChurnResult {

	out := &treeChurnResult{}
	victim := o.nodes - 1
	leaves[victim].Close()
	tnw.Endpoint(sstp.MemAddr(fmt.Sprintf("leaf/%d", victim))).Close()

	pst0 := pub.Stats()
	var relayQ0, relayN0 int
	for _, r := range treeRelays {
		st := r.Stats()
		relayQ0 += st.QueriesServed
		relayN0 += st.NACKsHeard
	}

	restarted := mkLeaf(victim)
	leaves[victim] = restarted
	restarted.Start()
	restartAt := time.Now()
	waitUntil(30*time.Second, func() bool {
		return restarted.RootDigest() == pub.RootDigest()
	})
	out.ReconvergeMs = float64(time.Since(restartAt).Microseconds()) / 1000

	pst := pub.Stats()
	out.RootQueriesServed = pst.QueriesServed - pst0.QueriesServed
	out.RootNACKs = pst.NACKsReceived - pst0.NACKsReceived
	for _, r := range treeRelays {
		st := r.Stats()
		out.RelayQueriesServed += st.QueriesServed
		out.RelayNACKs += st.NACKsHeard
	}
	out.RelayQueriesServed -= relayQ0
	out.RelayNACKs -= relayN0
	return out
}

func waitUntil(d time.Duration, cond func() bool) bool {
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return true
		}
		time.Sleep(5 * time.Millisecond)
	}
	return false
}

func report(res gossipResult, o gossipOpts) {
	if o.jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		must(enc.Encode(res))
	} else {
		fmt.Printf("ssload: gossip mesh %d nodes vs relay tree (%d relays, %d leaves), %d records @ %.0f bps, loss %.2f, round %s\n",
			res.Nodes, res.Tree.Relays, res.Tree.Leaves, res.Records, res.RateBps, res.Loss, o.interval)
		fmt.Printf("  spread: converged %d/%d in %.0f ms = %.1f rounds (analytic 99%% = %d rounds, ratio %.2f)\n",
			res.Spread.Converged, res.Nodes, res.Spread.ConvergeMs,
			res.Spread.MeasuredRounds, res.Spread.AnalyticRounds99, res.Spread.RoundsRatio)
		fmt.Printf("  spread: E[c(t)]=%.4f over %d digest samples\n",
			res.Spread.Consistency.Consistency, res.Spread.Consistency.AgreementSamples)
		fmt.Printf("  tree:   converged %d/%d in %.0f ms; repair root %dq/%dn relay %dq/%dn\n",
			res.Tree.Converged, res.Tree.Relays+res.Tree.Leaves, res.Tree.ConvergeMs,
			res.Tree.RootQueriesServed, res.Tree.RootNACKs,
			res.Tree.RelayQueriesServed, res.Tree.RelayNACKs)
		if res.ChurnGossip != nil {
			g := res.ChurnGossip
			fmt.Printf("  churn gossip: evicted in %.0f ms, re-converged in %.0f ms; repair bytes median=%d max=%d (%.2fx), catch-up tx %dB, %d evictions, %d rejoins\n",
				g.EvictMs, g.ReconvergeMs, g.MedianRepairBytes, g.MaxRepairBytes, g.MaxOverMedian,
				g.CatchupBytes, g.Evictions, g.Rejoins)
		}
		if res.ChurnTree != nil {
			t := res.ChurnTree
			fmt.Printf("  churn tree:   re-converged in %.0f ms; repair root %dq/%dn relay %dq/%dn\n",
				t.ReconvergeMs, t.RootQueriesServed, t.RootNACKs,
				t.RelayQueriesServed, t.RelayNACKs)
		}
	}

	if o.quick {
		fail := func(f string, a ...any) {
			fmt.Fprintf(os.Stderr, "ssload: gossip quick smoke FAILED: "+f+"\n", a...)
			os.Exit(1)
		}
		if res.Spread.Converged != res.Nodes {
			fail("%d/%d mesh nodes converged", res.Spread.Converged, res.Nodes)
		}
		if res.Tree.Converged != res.Tree.Relays+res.Tree.Leaves {
			fail("%d/%d tree replicas converged", res.Tree.Converged, res.Tree.Relays+res.Tree.Leaves)
		}
		if res.Spread.RoundsRatio > 2 {
			fail("spread took %.1f rounds, over 2x the analytic %d", res.Spread.MeasuredRounds, res.Spread.AnalyticRounds99)
		}
		if g := res.ChurnGossip; g != nil && g.MedianRepairBytes > 0 && g.MaxOverMedian > 2 {
			fail("gossip repair bytes max %d is %.2fx the median %d", g.MaxRepairBytes, g.MaxOverMedian, g.MedianRepairBytes)
		}
		if t := res.ChurnTree; t != nil && (t.RootQueriesServed > 0 || t.RootNACKs > 0) {
			fail("tree leaf repair leaked to the origin: %d queries, %d NACKs", t.RootQueriesServed, t.RootNACKs)
		}
	}
}
