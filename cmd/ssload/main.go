// Command ssload drives a live SSTP sender and a fleet of receivers
// at load and reports throughput, allocation behaviour, repair
// latency, and replica consistency — the hot-path companion to
// ssbench's simulator sweeps.
//
// Usage:
//
//	ssload                      # 512 records x 4 receivers over memconn, 5 s
//	ssload -records 4096 -receivers 16 -rate 4e6
//	ssload -loss 0.05           # 5% loss on every link (memconn only)
//	ssload -transport udp       # loopback fan-out over real sockets
//	ssload -transport tls -quick# same smoke over framed TLS streams
//	ssload -transport-smoke     # udp→tcp bridging relay + TLS gate
//	ssload -transport-compare   # udp vs tcp vs tls; BENCH_sstransport.json
//	ssload -quick               # small smoke run; exit 1 unless converged
//	ssload -json                # emit a BENCH_ssload.json record on stdout
//	ssload -admin 127.0.0.1:0   # live /metrics + /stats.json during the run
//	ssload -relay-depth 2 -relay-fanout 4 -loss 0.05 -json
//	                            # relay overlay tree; BENCH_ssrelay.json format
//	ssload -stripes 8 -batch 32 # shard the tables, coalesce announcements
//	ssload -scale -json         # GOMAXPROCS sweep + 1M-record run; BENCH_ssscale.json
//
// By default the session runs over the in-process MemNetwork with the
// sender and every receiver joined to one multicast group, so NACK
// suppression and peer damping behave as on a real multicast tree.
// With -transport udp|tcp|tls (-udp is shorthand for udp) each
// receiver binds its own loopback conn and the sender fans
// announcements out by unicast; receivers then cannot overhear each
// other's NACKs, so suppression counts drop to zero. The loss/jitter
// knobs are memconn-only — the real-socket runs inject loss where
// they need it (-transport-smoke, -transport-compare).
//
// The JSON record (see EXPERIMENTS.md) carries the live measurements
// plus a "micro" section of single-threaded probes and the pinned
// seed-commit baselines for trend comparison.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"os"
	"runtime"
	"runtime/pprof"
	"testing"
	"time"

	"softstate/internal/obs"
	"softstate/internal/protocol"
	"softstate/internal/runmeta"
	"softstate/internal/sstp"
	"softstate/internal/staleness"
	"softstate/internal/table"
	"softstate/internal/transport"
)

// result is the -json output, the format of BENCH_ssload.json.
type result struct {
	Seed       int64   `json:"seed"`
	Quick      bool    `json:"quick"`
	Transport  string  `json:"transport"`
	Records    int     `json:"records"`
	Receivers  int     `json:"receivers"`
	Stripes    int     `json:"stripes"`
	Batch      int     `json:"batch"`
	RateBps    float64 `json:"rate_bps"`
	ValueBytes int     `json:"value_bytes"`
	Loss       float64 `json:"loss"`
	JitterMs   float64 `json:"jitter_ms"`
	DurationMs float64 `json:"duration_ms"`

	// Meta records the environment the run was produced in (toolchain,
	// host shape, VCS revision) so records are comparable across
	// machines and commits.
	Meta runmeta.Meta `json:"meta"`

	DataSent          int     `json:"data_sent"`
	DataDatagramsSent int     `json:"data_datagrams_sent"`
	RecordsPerDgm     float64 `json:"records_per_datagram"`
	SummariesSent     int     `json:"summaries_sent"`
	MsgsPerSec        float64 `json:"msgs_per_sec"`
	Deliveries        int     `json:"deliveries"`
	Duplicates        int     `json:"duplicates"`
	NACKsSent         int     `json:"nacks_sent"`
	NACKsSuppressed   int     `json:"nacks_suppressed"`
	AllocsPerDatagram float64 `json:"allocs_per_datagram"`
	Converged         int     `json:"converged"`
	ConvergeMs        float64 `json:"converge_ms"`

	TRec quantiles `json:"t_rec_seconds"`

	// TVis is origin-publish → receiver-delivery lag (t-visibility)
	// aggregated over every receiver; Consistency is the shared online
	// estimator's end-of-run snapshot (windowed quantiles, per-key
	// staleness age, and the digest-agreement E[c(t)]).
	TVis        quantiles          `json:"t_vis_seconds"`
	Consistency staleness.Snapshot `json:"consistency"`

	Micro micro `json:"micro"`

	// Baseline pins the pre-optimisation numbers measured at the seed
	// commit (952b9bd) on the same probes, so any run of ssload shows
	// the trend without digging through git history.
	Baseline baseline `json:"baseline_952b9bd"`
}

type quantiles struct {
	Count uint64  `json:"count"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
}

// micro holds single-threaded probes of the two optimised paths:
// wire encoding and table expiration.
type micro struct {
	EncodeAllocs       float64 `json:"encode_allocs_per_op"`
	AppendEncodeAllocs float64 `json:"append_encode_allocs_per_op"`
	SweepIdleNs        float64 `json:"sweep_idle_ns_16k"`
	NextExpiryNs       float64 `json:"next_expiry_ns_16k"`
}

type baseline struct {
	EncodeAllocs     float64 `json:"encode_allocs_per_op"`
	SweepIdleNs      float64 `json:"sweep_idle_ns_16k"`
	NextExpiryNs     float64 `json:"next_expiry_ns_16k"`
	SendPathAllocs   float64 `json:"encode_send_allocs_per_op"`
	AnnouncePickNs   float64 `json:"next_announcement_ns_16k"`
	AnnouncePickAllo float64 `json:"next_announcement_allocs"`
}

// seedBaseline was measured at commit 952b9bd with the same probes
// (go test -bench, Xeon 2.10GHz): Encode allocated 2/op, the idle
// publisher Sweep full-scanned 16k records in ~387µs, NextExpiry
// scanned in ~393µs with 239 allocs, and one announcement pick+send
// cost 8 allocs and ~409µs of scan at 16k records.
var seedBaseline = baseline{
	EncodeAllocs:     2,
	SweepIdleNs:      387141,
	NextExpiryNs:     392711,
	SendPathAllocs:   9,
	AnnouncePickNs:   409295,
	AnnouncePickAllo: 8,
}

func main() {
	records := flag.Int("records", 512, "records published by the sender")
	nRecv := flag.Int("receivers", 4, "number of receivers")
	rate := flag.Float64("rate", 1_000_000, "session bandwidth, bits/s")
	valueLen := flag.Int("value", 64, "value size in bytes")
	duration := flag.Duration("duration", 5*time.Second, "load phase length")
	loss := flag.Float64("loss", 0, "per-link loss probability (memconn only)")
	jitter := flag.Duration("jitter", 0, "per-link delivery jitter (memconn only)")
	updates := flag.Float64("update", 50, "value updates per second during load")
	transportName := flag.String("transport", "mem", "wire transport: mem, udp, tcp, or tls (loopback fan-out for the real ones)")
	udp := flag.Bool("udp", false, "shorthand for -transport udp")
	tSmoke := flag.Bool("transport-smoke", false, "run the udp-to-tcp bridging relay + TLS handshake smoke and exit")
	tCompare := flag.Bool("transport-compare", false, "run the quick profile over udp, tcp, and tls; emits a BENCH_sstransport.json record")
	quick := flag.Bool("quick", false, "small smoke run; exit 1 unless all receivers converge")
	jsonOut := flag.Bool("json", false, "emit a BENCH_ssload.json record on stdout")
	seed := flag.Int64("seed", 1, "suppression-slotting seed")
	admin := flag.String("admin", "", "serve /metrics, /stats.json, /debug/pprof on this address during the run")
	relayDepth := flag.Int("relay-depth", 0, "relay overlay mode: tree depth in hops (0 disables)")
	relayFanout := flag.Int("relay-fanout", 4, "relay overlay mode: children per node")
	gossipPeers := flag.Int("gossip-peers", 0, "gossip mesh mode: number of anti-entropy peers (0 disables); emits a BENCH_ssgossip.json record with -json")
	gossipInterval := flag.Duration("gossip-interval", 25*time.Millisecond, "gossip mesh mode: anti-entropy round cadence")
	churn := flag.Bool("churn", false, "gossip mesh mode: kill and restart one node in each overlay mid-run")
	stripes := flag.Int("stripes", table.NormalizeStripes(runtime.NumCPU()),
		"table/digest stripes on sender and receivers (rounded up to a power of two)")
	batch := flag.Int("batch", 32, "records coalesced per datagram (MTU still caps the frame)")
	scale := flag.Bool("scale", false, "per-core scaling sweep mode; emits a BENCH_ssscale.json record")
	sessions := flag.Int("sessions", 0, "fabric mode: multiplex this many tenant sessions over one shared socket (0 disables)")
	tenantWeights := flag.String("tenant-weights", "1", "fabric mode: comma-separated weights, cycled across tenants")
	bursty := flag.Float64("bursty", 10, "fabric mode: tenant 0's burst multiplier in the burst phases")
	fabricFIFO := flag.Bool("fabric-fifo", false, "fabric mode: run only the FIFO baseline phases")
	linkRate := flag.Float64("link-rate", 0, "fabric mode: shared link rate in bits/s (default sessions x -rate)")
	memProfile := flag.String("memprofile", "", "write an allocation profile of the load phase to this file")
	flag.Parse()
	*stripes = table.NormalizeStripes(*stripes)
	if *batch < 1 {
		*batch = 1
	}
	if *udp {
		*transportName = "udp"
	}
	switch *transportName {
	case "mem", "udp", "tcp", "tls":
	default:
		fmt.Fprintf(os.Stderr, "ssload: unknown -transport %q (want mem, udp, tcp, or tls)\n", *transportName)
		os.Exit(2)
	}

	if *tSmoke {
		if err := runTransportSmoke(); err != nil {
			fmt.Fprintln(os.Stderr, "ssload: transport smoke FAILED:", err)
			os.Exit(1)
		}
		fmt.Println("ssload -transport-smoke: ok")
		return
	}
	if *tCompare {
		runTransportCompare(transportCompareOpts{
			records: *records, receivers: *nRecv, rate: *rate,
			valueLen: *valueLen, updates: *updates, duration: *duration,
			seed: *seed, jsonOut: *jsonOut, quick: *quick,
		})
		return
	}

	if *scale {
		runScale(scaleOpts{
			stripes: *stripes, batch: *batch,
			seed: *seed, jsonOut: *jsonOut, quick: *quick,
		})
		return
	}

	if *sessions > 0 {
		if *transportName != "mem" {
			fmt.Fprintln(os.Stderr, "ssload: -sessions requires the mem transport")
			os.Exit(2)
		}
		o := fabricOpts{
			sessions: *sessions, weights: *tenantWeights,
			burst: *bursty, fifoOnly: *fabricFIFO,
			records: *records, rate: *rate, linkRate: *linkRate,
			valueLen: *valueLen, loss: *loss,
			updates: *updates, duration: *duration,
			seed: *seed, jsonOut: *jsonOut, admin: *admin, quick: *quick,
		}
		if *quick {
			o.sessions = minInt(*sessions, 64)
			o.records = 8
			o.rate = 128_000
			o.updates = 200
			o.duration = 1200 * time.Millisecond
		} else {
			// Scale per-tenant load down with the tenant count so a
			// 1k-session run stays a bench, not a furnace.
			if o.records > 2048/o.sessions && o.sessions > 4 {
				o.records = maxInt(8, 2048/o.sessions)
			}
			o.rate = minF(o.rate, 256_000)
		}
		runFabric(o)
		return
	}

	if *gossipPeers > 0 {
		if *transportName != "mem" {
			fmt.Fprintln(os.Stderr, "ssload: -gossip-peers requires the mem transport")
			os.Exit(2)
		}
		g := gossipOpts{
			nodes: *gossipPeers, records: *records,
			rate: *rate, valueLen: *valueLen, loss: *loss,
			interval: *gossipInterval, churn: *churn,
			seed: *seed, jsonOut: *jsonOut, admin: *admin, quick: *quick,
		}
		if *quick {
			g.nodes = minInt(g.nodes, 8)
			g.records = minInt(g.records, 48)
			g.interval = 15 * time.Millisecond
			g.churn = true
		}
		runGossipMesh(g)
		return
	}

	if *quick {
		*records, *nRecv = 64, 2
		*duration = 1 * time.Second
		*updates = 20
	}
	if (*loss > 0 || *jitter > 0) && *transportName != "mem" {
		fmt.Fprintln(os.Stderr, "ssload: -loss and -jitter require the mem transport")
		os.Exit(2)
	}
	if *relayDepth > 0 {
		if *transportName != "mem" {
			fmt.Fprintln(os.Stderr, "ssload: -relay-depth requires the mem transport")
			os.Exit(2)
		}
		runRelayTree(relayOpts{
			depth: *relayDepth, fanout: *relayFanout,
			records: *records, rate: *rate, valueLen: *valueLen,
			loss: *loss, jitter: *jitter, updates: *updates, duration: *duration,
			seed: *seed, jsonOut: *jsonOut, admin: *admin, quick: *quick,
		})
		return
	}

	res := result{
		Seed: *seed, Quick: *quick, Records: *records, Receivers: *nRecv,
		Stripes: *stripes, Batch: *batch,
		RateBps: *rate, ValueBytes: *valueLen, Loss: *loss,
		JitterMs:  float64(jitter.Microseconds()) / 1000,
		Transport: "memconn", Baseline: seedBaseline,
		Meta: runmeta.Collect(),
	}
	if *transportName != "mem" {
		res.Transport = *transportName
	}

	reg := obs.New("ssload") // shared: receiver series aggregate
	est := staleness.NewEstimator(0)
	if *admin != "" {
		srv, addr, err := obs.ServeAdmin(*admin, reg, nil,
			obs.Section{Name: "consistency", Get: func() any { return est.Snapshot() }})
		if err != nil {
			fmt.Fprintln(os.Stderr, "ssload: admin:", err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "ssload: admin endpoint on http://%s/\n", addr)
	}
	senderConn, receiverConns, dest, feedback, err := buildTransport(*transportName, *nRecv, *loss, *jitter, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ssload:", err)
		os.Exit(1)
	}

	s, err := sstp.NewSender(sstp.SenderConfig{
		Session: 42, SenderID: 1,
		Conn: senderConn, Dest: dest,
		TotalRate:       *rate,
		SummaryInterval: 200 * time.Millisecond,
		TTL:             10 * time.Second,
		Stripes:         *stripes,
		CoalesceRecords: *batch,
		BatchDatagrams:  batchDatagramsFor(*batch),
		Seed:            *seed,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "ssload:", err)
		os.Exit(1)
	}
	var rcvs []*sstp.Receiver
	for i := 0; i < *nRecv; i++ {
		r, err := sstp.NewReceiver(sstp.ReceiverConfig{
			Session: 42, ReceiverID: uint64(100 + i),
			Conn: receiverConns[i], FeedbackDest: feedback,
			NACKWindow:  50 * time.Millisecond,
			Stripes:     *stripes,
			Obs:         reg,
			Consistency: est, // shared: per-receiver keys stay distinct by ReceiverID
			Seed:        *seed + int64(i),
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "ssload:", err)
			os.Exit(1)
		}
		rcvs = append(rcvs, r)
	}

	value := make([]byte, *valueLen)
	for i := range value {
		value[i] = byte('a' + i%26)
	}
	for i := 0; i < *records; i++ {
		must(s.Publish(key(i), value, 0))
	}
	s.Start()
	for _, r := range rcvs {
		r.Start()
	}

	// Load phase: steady announcements plus a value-update churn.
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	tick := time.NewTicker(time.Duration(float64(time.Second) / maxf(*updates, 1)))
	upd := 0
	for time.Since(start) < *duration {
		<-tick.C
		if *updates > 0 {
			must(s.Publish(key(upd%*records), value, 0))
			upd++
		}
	}
	tick.Stop()
	loadElapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		must(err)
		runtime.GC()
		must(pprof.Lookup("allocs").WriteTo(f, 0))
		must(f.Close())
	}

	// Convergence phase: stop churning, wait for every replica digest
	// to match the sender's.
	convStart := time.Now()
	convDeadline := convStart.Add(15 * time.Second)
	for time.Now().Before(convDeadline) {
		if convergedCount(s, rcvs) == len(rcvs) {
			break
		}
		time.Sleep(25 * time.Millisecond)
	}
	res.ConvergeMs = float64(time.Since(convStart).Microseconds()) / 1000
	res.Converged = convergedCount(s, rcvs)

	st := s.Stats()
	res.DataSent = st.DataSent
	res.DataDatagramsSent = st.DatagramsSent
	if st.DatagramsSent > 0 {
		res.RecordsPerDgm = float64(st.DataSent) / float64(st.DatagramsSent)
	}
	res.SummariesSent = st.SummariesSent
	res.DurationMs = float64(loadElapsed.Microseconds()) / 1000
	res.MsgsPerSec = float64(st.DataSent) / loadElapsed.Seconds()
	for _, r := range rcvs {
		rs := r.Stats()
		res.Deliveries += rs.DataReceived
		res.Duplicates += rs.Duplicates
		res.NACKsSent += rs.NACKsSent
		res.NACKsSuppressed += rs.NACKsSuppressed
	}
	datagrams := st.DatagramsSent + st.SummariesSent + st.DigestsSent + st.HeartbeatsSent
	if datagrams > 0 {
		res.AllocsPerDatagram = float64(after.Mallocs-before.Mallocs) / float64(datagrams)
	}
	for _, sm := range reg.Snapshot() {
		switch sm.Name {
		case "sstp_t_rec_seconds":
			res.TRec = quantiles{Count: sm.Count, P50: sm.P50, P95: sm.P95, P99: sm.P99}
		case "sstp_tvis_seconds":
			res.TVis = quantiles{Count: sm.Count, P50: sm.P50, P95: sm.P95, P99: sm.P99}
		}
	}
	res.Consistency = est.Snapshot()
	res.Micro = runMicro()

	s.Close()
	for _, r := range rcvs {
		r.Close()
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		must(enc.Encode(res))
	} else {
		fmt.Printf("ssload: %s %d records x %d receivers @ %.0f bps, %.1fs load\n",
			res.Transport, res.Records, res.Receivers, res.RateBps, loadElapsed.Seconds())
		fmt.Printf("  sent %d data in %d datagrams (%.1f records/datagram) + %d summaries (%.0f msgs/s), %d deliveries, %d dups\n",
			res.DataSent, res.DataDatagramsSent, res.RecordsPerDgm,
			res.SummariesSent, res.MsgsPerSec, res.Deliveries, res.Duplicates)
		fmt.Printf("  nacks %d sent / %d suppressed, t_rec p50=%.3fs p99=%.3fs (n=%d)\n",
			res.NACKsSent, res.NACKsSuppressed, res.TRec.P50, res.TRec.P99, res.TRec.Count)
		fmt.Printf("  t_vis p50=%.3fs p95=%.3fs p99=%.3fs (n=%d), E[c(t)]=%.4f over %d digest samples\n",
			res.TVis.P50, res.TVis.P95, res.TVis.P99, res.TVis.Count,
			res.Consistency.Consistency, res.Consistency.AgreementSamples)
		fmt.Printf("  %.1f allocs/datagram (whole stack; seed path was %.0f on encode+send alone)\n",
			res.AllocsPerDatagram, res.Baseline.SendPathAllocs)
		fmt.Printf("  converged %d/%d in %.0f ms\n", res.Converged, res.Receivers, res.ConvergeMs)
		fmt.Printf("  micro: encode %.0f allocs, append-encode %.0f; sweep-idle %.0fns, next-expiry %.0fns @16k (seed: %.0fns, %.0fns)\n",
			res.Micro.EncodeAllocs, res.Micro.AppendEncodeAllocs,
			res.Micro.SweepIdleNs, res.Micro.NextExpiryNs,
			res.Baseline.SweepIdleNs, res.Baseline.NextExpiryNs)
	}
	if *quick && res.Converged != res.Receivers {
		fmt.Fprintf(os.Stderr, "ssload: quick smoke FAILED: %d/%d receivers converged\n",
			res.Converged, res.Receivers)
		os.Exit(1)
	}
}

func key(i int) string { return fmt.Sprintf("load/%03d/%d", i%32, i) }

// batchDatagramsFor sizes the sendmmsg batch from the coalescing
// factor: coalescing already amortizes encode cost, so a modest
// datagram batch (capped at 16) is enough to amortize the syscall.
func batchDatagramsFor(batch int) int {
	if batch <= 1 {
		return 1
	}
	if batch > 16 {
		return 16
	}
	return batch
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

func minF(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func must(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "ssload:", err)
		os.Exit(1)
	}
}

func convergedCount(s *sstp.Sender, rcvs []*sstp.Receiver) int {
	want := s.RootDigest()
	n := 0
	for _, r := range rcvs {
		if r.RootDigest() == want {
			n++
		}
	}
	return n
}

// buildTransport wires the load topology over the named transport:
// the in-process multicast MemNetwork, or a loopback unicast fan-out
// over udp, tcp, or tls. It returns the sender conn, one conn per
// receiver, the sender's announce destination, and the receivers'
// feedback destination.
func buildTransport(scheme string, nRecv int, loss float64, jitter time.Duration, seed int64) (net.PacketConn, []net.PacketConn, net.Addr, net.Addr, error) {
	if scheme == "mem" {
		nw := sstp.NewMemNetwork(seed)
		nw.SetDefaultLoss(loss)
		nw.SetDefaultJitter(jitter)
		group := sstp.MemAddr("group")
		sc := nw.Endpoint("sender")
		nw.Join(group, "sender") // sender overhears NACKs via the group
		conns := make([]net.PacketConn, nRecv)
		for i := 0; i < nRecv; i++ {
			addr := sstp.MemAddr(fmt.Sprintf("rcv%d", i))
			conns[i] = nw.Endpoint(addr)
			nw.Join(group, addr)
		}
		return sc, conns, group, group, nil
	}
	tr, err := transport.New(scheme, transport.Options{})
	if err != nil {
		return nil, nil, nil, nil, err
	}
	sc, err := tr.Listen("127.0.0.1:0")
	if err != nil {
		return nil, nil, nil, nil, err
	}
	conns := make([]net.PacketConn, nRecv)
	addrs := make([]net.Addr, nRecv)
	for i := 0; i < nRecv; i++ {
		c, err := tr.Listen("127.0.0.1:0")
		if err != nil {
			return nil, nil, nil, nil, err
		}
		conns[i] = c
		addrs[i], err = tr.Resolve(c.LocalAddr().String())
		if err != nil {
			return nil, nil, nil, nil, err
		}
	}
	feedback, err := tr.Resolve(sc.LocalAddr().String())
	if err != nil {
		return nil, nil, nil, nil, err
	}
	fan := &fanoutConn{PacketConn: sc, dests: addrs}
	return fan, conns, addrs[0], feedback, nil
}

// fanoutConn emulates multicast over unicast UDP: every WriteTo is
// duplicated to each receiver, whatever destination the sender names.
type fanoutConn struct {
	net.PacketConn
	dests []net.Addr
}

func (f *fanoutConn) WriteTo(b []byte, _ net.Addr) (int, error) {
	var n int
	var err error
	for _, d := range f.dests {
		n, err = f.PacketConn.WriteTo(b, d)
	}
	return n, err
}

// runMicro probes the optimised primitives directly, single-threaded,
// for comparison against the pinned seed baselines.
func runMicro() micro {
	var m micro
	hdr := protocol.Header{Session: 42, Sender: 1, Seq: 9}
	msg := &protocol.Data{Key: "load/000/0", Ver: 3, TTLms: 10000, Value: make([]byte, 64)}
	m.EncodeAllocs = testing.AllocsPerRun(200, func() {
		_ = protocol.Encode(hdr, msg)
	})
	buf := make([]byte, 0, 256)
	m.AppendEncodeAllocs = testing.AllocsPerRun(200, func() {
		buf = protocol.AppendEncode(buf[:0], hdr, msg)
	})

	p := table.NewPublisher()
	now := 0.0
	for i := 0; i < 16384; i++ {
		p.Put(table.Key(key(i)), []byte("x"), now, 3600)
	}
	const iters = 5000
	t0 := time.Now()
	for i := 0; i < iters; i++ {
		p.Sweep(now + float64(i)*1e-9)
	}
	m.SweepIdleNs = float64(time.Since(t0).Nanoseconds()) / iters
	t0 = time.Now()
	for i := 0; i < iters; i++ {
		_, _ = p.NextExpiry(now)
	}
	m.NextExpiryNs = float64(time.Since(t0).Nanoseconds()) / iters
	return m
}
