// Scale mode: per-core scaling sweep over the striped, coalescing hot
// path, plus a million-record convergence run — the BENCH_ssscale.json
// producer.
//
// Each sweep trial pins GOMAXPROCS, publishes the record set from that
// many goroutines in parallel (the striped-table contention probe),
// then starts the sender against one receiver over memconn and times
// digest convergence (the coalesced encode/decode drain probe). The
// million-record run is the capacity proof: it must end with the
// receiver's combined root digest byte-identical to the sender's.
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sync"
	"time"

	"softstate/internal/runmeta"
	"softstate/internal/sstp"
)

type scaleOpts struct {
	stripes int
	batch   int
	seed    int64
	jsonOut bool
	quick   bool
}

// scaleTrial is one sweep row of BENCH_ssscale.json.
type scaleTrial struct {
	GOMAXPROCS int `json:"gomaxprocs"`
	Records    int `json:"records"`
	Stripes    int `json:"stripes"`
	Batch      int `json:"batch"`

	// Publish phase: GOMAXPROCS goroutines writing disjoint key ranges.
	PublishMs     float64 `json:"publish_ms"`
	PublishPerSec float64 `json:"publish_per_sec"`

	// Drain phase: announcement pipeline until digest convergence.
	ConvergeMs    float64 `json:"converge_ms"`
	DrainPerSec   float64 `json:"drain_records_per_sec"`
	DataSent      int     `json:"data_datagrams_sent"`
	RecordsPerDgm float64 `json:"records_per_datagram"`
	Deliveries    int     `json:"deliveries"`
	Converged     bool    `json:"converged"`
}

// scaleResult is the BENCH_ssscale.json format (see EXPERIMENTS.md).
type scaleResult struct {
	Seed       int64        `json:"seed"`
	Quick      bool         `json:"quick"`
	Transport  string       `json:"transport"`
	Stripes    int          `json:"stripes"`
	Batch      int          `json:"batch"`
	ValueBytes int          `json:"value_bytes"`
	Meta       runmeta.Meta `json:"meta"`

	Sweep []scaleTrial `json:"sweep"`

	// PublishSpeedup4 is publish throughput at GOMAXPROCS=4 over
	// GOMAXPROCS=1 (0 when the sweep lacks either point). On a
	// single-core host this is honest ~1.0: see meta.num_cpu.
	PublishSpeedup4 float64 `json:"publish_speedup_4_vs_1"`

	// Million is the 1M-record convergence run (omitted with -quick).
	Million *scaleTrial `json:"million,omitempty"`
}

// scaleKey spreads keys over 256 top-level components so every stripe
// count up to 256 gets an even shard (the default ssload key space puts
// every key under "load/", which would collapse to one stripe).
func scaleKey(i int) string {
	return fmt.Sprintf("g%03d/m%02d/k%d", i%256, (i/256)%16, i)
}

func runScale(o scaleOpts) {
	res := scaleResult{
		Seed: o.seed, Quick: o.quick, Transport: "memconn",
		Stripes: o.stripes, Batch: o.batch, ValueBytes: 32,
		Meta: runmeta.Collect(),
	}
	sweepRecords := 262144
	procs := []int{1, 2, 4, 8}
	senderStripes, recvStripes := o.stripes, o.stripes
	if o.quick {
		// Smoke shape: small set, two sweep points, and the
		// mixed-stripe gate — a 4-stripe sender must converge against
		// a 1-stripe receiver (their roots combine identically).
		sweepRecords = 8192
		procs = []int{1, 2}
		senderStripes, recvStripes = 4, 1
	}
	ok := true
	for _, g := range procs {
		tr := scaleTrialRun(g, sweepRecords, senderStripes, recvStripes, o.batch, o.seed,
			2*time.Minute, 120*time.Second)
		res.Sweep = append(res.Sweep, tr)
		ok = ok && tr.Converged
		if !o.jsonOut {
			printTrial("sweep", tr)
		}
	}
	var p1, p4 float64
	for _, tr := range res.Sweep {
		switch tr.GOMAXPROCS {
		case 1:
			p1 = tr.PublishPerSec
		case 4:
			p4 = tr.PublishPerSec
		}
	}
	if p1 > 0 && p4 > 0 {
		res.PublishSpeedup4 = p4 / p1
	}
	if !o.quick {
		tr := scaleTrialRun(runtime.NumCPU(), 1_000_000, o.stripes, o.stripes, o.batch, o.seed,
			10*time.Minute, 600*time.Second)
		res.Million = &tr
		ok = ok && tr.Converged
		if !o.jsonOut {
			printTrial("million", tr)
		}
	}

	if o.jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		must(enc.Encode(res))
	} else if res.PublishSpeedup4 > 0 {
		fmt.Printf("ssscale: publish speedup 4x/1x = %.2f (num_cpu=%d)\n",
			res.PublishSpeedup4, runtime.NumCPU())
	}
	if !ok {
		fmt.Fprintln(os.Stderr, "ssload: scale run FAILED: a trial did not converge")
		os.Exit(1)
	}
}

func printTrial(label string, tr scaleTrial) {
	fmt.Printf("ssscale %s: GOMAXPROCS=%d %d records, stripes=%d batch=%d\n",
		label, tr.GOMAXPROCS, tr.Records, tr.Stripes, tr.Batch)
	fmt.Printf("  publish %.0f ms (%.0f rec/s), converge %.0f ms (%.0f rec/s), %d datagrams (%.1f rec/dgm), converged=%v\n",
		tr.PublishMs, tr.PublishPerSec, tr.ConvergeMs, tr.DrainPerSec,
		tr.DataSent, tr.RecordsPerDgm, tr.Converged)
}

// scaleTrialRun publishes records from g goroutines into a striped
// sender, then drains to one receiver until the root digests agree.
func scaleTrialRun(g, records, senderStripes, recvStripes, batch int, seed int64, ttl, timeout time.Duration) scaleTrial {
	prev := runtime.GOMAXPROCS(g)
	defer runtime.GOMAXPROCS(prev)
	tr := scaleTrial{GOMAXPROCS: g, Records: records, Stripes: senderStripes, Batch: batch}

	nw := sstp.NewMemNetwork(seed)
	sc := nw.Endpoint("sender")
	rc := nw.Endpoint("rcv")
	summary := 500 * time.Millisecond
	if records >= 1_000_000 {
		summary = 2 * time.Second // a root refresh over 1M leaves is not free
	}
	s, err := sstp.NewSender(sstp.SenderConfig{
		Session: 77, SenderID: 1,
		Conn: sc, Dest: sstp.MemAddr("rcv"),
		TotalRate:       400_000_000,
		SummaryInterval: summary,
		TTL:             ttl,
		Stripes:         senderStripes,
		CoalesceRecords: batch,
		BatchDatagrams:  batchDatagramsFor(batch),
		Seed:            seed,
	})
	must(err)
	r, err := sstp.NewReceiver(sstp.ReceiverConfig{
		Session: 77, ReceiverID: 2,
		Conn: rc, FeedbackDest: sstp.MemAddr("sender"),
		NACKWindow:         50 * time.Millisecond,
		Stripes:            recvStripes,
		DisableConsistency: true, // a confirmation clock per key dwarfs the replica at 1M
		Seed:               seed + 1,
	})
	must(err)

	value := make([]byte, 32)
	for i := range value {
		value[i] = byte('a' + i%26)
	}
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < g; w++ {
		lo := records * w / g
		hi := records * (w + 1) / g
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				must(s.Publish(scaleKey(i), value, ttl))
			}
		}(lo, hi)
	}
	wg.Wait()
	tr.PublishMs = float64(time.Since(start).Microseconds()) / 1000
	tr.PublishPerSec = float64(records) / time.Since(start).Seconds()

	s.Start()
	r.Start()
	convStart := time.Now()
	deadline := convStart.Add(timeout)
	for time.Now().Before(deadline) {
		if r.Len() == records && r.RootDigest() == s.RootDigest() {
			tr.Converged = true
			break
		}
		time.Sleep(100 * time.Millisecond)
	}
	tr.ConvergeMs = float64(time.Since(convStart).Microseconds()) / 1000
	if tr.Converged && tr.ConvergeMs > 0 {
		tr.DrainPerSec = float64(records) / (tr.ConvergeMs / 1000)
	}
	st := s.Stats()
	tr.DataSent = st.DatagramsSent
	if st.DatagramsSent > 0 {
		tr.RecordsPerDgm = float64(st.DataSent) / float64(st.DatagramsSent)
	}
	tr.Deliveries = r.Stats().DataReceived
	s.Close()
	r.Close()
	return tr
}
