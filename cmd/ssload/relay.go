package main

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"softstate/internal/obs"
	"softstate/internal/relay"
	"softstate/internal/runmeta"
	"softstate/internal/sstp"
	"softstate/internal/staleness"
)

// relayOpts parameterize the -relay-depth tree mode.
type relayOpts struct {
	depth    int
	fanout   int
	records  int
	rate     float64
	valueLen int
	loss     float64
	jitter   time.Duration
	updates  float64
	duration time.Duration
	seed     int64
	jsonOut  bool
	admin    string
	quick    bool
}

// relayResult is the -relay-depth -json output, the format of
// BENCH_ssrelay.json (see EXPERIMENTS.md).
type relayResult struct {
	Seed       int64   `json:"seed"`
	Quick      bool    `json:"quick"`
	Records    int     `json:"records"`
	Depth      int     `json:"depth"`
	Fanout     int     `json:"fanout"`
	Relays     int     `json:"relays"`
	Leaves     int     `json:"leaves"`
	RateBps    float64 `json:"rate_bps"`
	ValueBytes int     `json:"value_bytes"`
	Loss       float64 `json:"loss"`
	JitterMs   float64 `json:"jitter_ms"`
	DurationMs float64 `json:"duration_ms"`

	Meta runmeta.Meta `json:"meta"`

	Forwarded       int     `json:"forwarded"`
	Tombstoned      int     `json:"tombstoned"`
	ConvergedRelays int     `json:"converged_relays"`
	ConvergedLeaves int     `json:"converged_leaves"`
	ConvergeMs      float64 `json:"converge_ms"`

	// Scoped recovery split: repair requests answered by the origin
	// publisher versus by interior relays. On a healthy tree with loss
	// on the lower hops the root column stays at zero.
	RootQueriesServed  int `json:"root_queries_served"`
	RootNACKs          int `json:"root_nacks"`
	RelayQueriesServed int `json:"relay_queries_served"`
	RelayNACKs         int `json:"relay_nacks"`

	// PerHop carries the sstp_t_rec_seconds quantiles per tree level
	// (level 1 = relays one hop from the publisher, the last level =
	// the leaves).
	PerHop []hopQuantiles `json:"per_hop_t_rec_seconds"`

	// PerHopVis is the visibility lag per tree level: origin publish →
	// delivery at that level's receivers (end-to-end, carried in the
	// wire-level born timestamp, not hop-local). Deeper levels should
	// show strictly larger medians — the cost of each relay hop.
	PerHopVis []hopQuantiles `json:"per_hop_t_vis_seconds"`

	// PerHopTx is the transmit-side coalescing report per sending
	// level: level 0 is the origin publisher, levels 1..depth-1 sum
	// each relay level's downstream senders. Flat and scale modes
	// report the same two fields for their single sender.
	PerHopTx []hopTx `json:"per_hop_tx"`

	// Consistency is the leaves' shared online estimator at the end of
	// the run: windowed t-visibility quantiles, per-key staleness age,
	// and the digest-agreement E[c(t)].
	Consistency staleness.Snapshot `json:"consistency"`
}

type hopQuantiles struct {
	Level int     `json:"level"`
	Count uint64  `json:"count"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
}

type hopTx struct {
	Level         int     `json:"level"`
	DataSent      int     `json:"data_sent"`
	DataDatagrams int     `json:"data_datagrams_sent"`
	RecordsPerDgm float64 `json:"records_per_datagram"`
}

// runRelayTree drives a complete fanout^depth overlay over memconn:
// relays at levels 1..depth-1, leaf receivers at level depth, loss on
// every link. Each level gets its own obs registry so repair latency
// is reported per hop.
func runRelayTree(o relayOpts) {
	if o.depth < 1 || o.fanout < 1 {
		fmt.Fprintln(os.Stderr, "ssload: -relay-depth and -relay-fanout must be >= 1")
		os.Exit(2)
	}
	res := relayResult{
		Seed: o.seed, Quick: o.quick, Records: o.records,
		Depth: o.depth, Fanout: o.fanout,
		RateBps: o.rate, ValueBytes: o.valueLen, Loss: o.loss,
		JitterMs: float64(o.jitter.Microseconds()) / 1000,
		Meta:     runmeta.Collect(),
	}

	nw := sstp.NewMemNetwork(o.seed)
	nw.SetDefaultLoss(o.loss)
	nw.SetDefaultJitter(o.jitter)

	// regs[l] aggregates the sstp_* series of every node at level l;
	// level 0 is the publisher.
	regs := make([]*obs.Registry, o.depth+1)
	for l := range regs {
		regs[l] = obs.New(fmt.Sprintf("level%d", l))
	}

	pc := nw.Endpoint("pub")
	nw.Join("grp/root", "pub")
	pub, err := sstp.NewSender(sstp.SenderConfig{
		Session: 43, SenderID: 1, Conn: pc, Dest: sstp.MemAddr("grp/root"),
		TotalRate:       o.rate,
		SummaryInterval: 200 * time.Millisecond,
		TTL:             60 * time.Second,
		Obs:             regs[0],
		Seed:            o.seed,
	})
	must(err)

	var relays []*relay.Relay
	relayLevels := make([][]*relay.Relay, o.depth) // [level] -> relays at that level
	parentGroups := []string{"grp/root"}
	k := 0
	for level := 1; level < o.depth; level++ {
		var next []string
		for j := 0; j < intPow(o.fanout, level); j++ {
			parent := parentGroups[j/o.fanout]
			upName := sstp.MemAddr(fmt.Sprintf("up/%d", k))
			dnName := sstp.MemAddr(fmt.Sprintf("dn/%d", k))
			group := fmt.Sprintf("grp/%d", k)
			up := nw.Endpoint(upName)
			nw.Join(sstp.MemAddr(parent), upName)
			dn := nw.Endpoint(dnName)
			nw.Join(sstp.MemAddr(group), dnName)
			r, err := relay.New(relay.Config{
				Session: 43, RelayID: uint64(100 * (k + 1)),
				UpstreamConn: up, UpstreamFeedback: sstp.MemAddr(parent),
				Downstreams: []relay.Downstream{{
					Conn: dn, Dest: sstp.MemAddr(group), Rate: o.rate,
				}},
				TTL:             60 * time.Second,
				SummaryInterval: 200 * time.Millisecond,
				NACKWindow:      50 * time.Millisecond,
				Obs:             regs[level],
				Seed:            o.seed + int64(1000+k),
			})
			must(err)
			relays = append(relays, r)
			relayLevels[level] = append(relayLevels[level], r)
			next = append(next, group)
			k++
		}
		parentGroups = next
	}

	var leaves []*sstp.Receiver
	est := staleness.NewEstimator(0) // shared by every leaf
	for j := 0; j < intPow(o.fanout, o.depth); j++ {
		parent := parentGroups[j/o.fanout]
		name := sstp.MemAddr(fmt.Sprintf("leaf/%d", j))
		lc := nw.Endpoint(name)
		nw.Join(sstp.MemAddr(parent), name)
		leaf, err := sstp.NewReceiver(sstp.ReceiverConfig{
			Session: 43, ReceiverID: uint64(10_000 + j), Conn: lc,
			FeedbackDest:   sstp.MemAddr(parent),
			NACKWindow:     50 * time.Millisecond,
			FlushOnGoodbye: true,
			Obs:            regs[o.depth],
			Consistency:    est,
			Seed:           o.seed + int64(2000+j),
		})
		must(err)
		leaves = append(leaves, leaf)
	}
	res.Relays = len(relays)
	res.Leaves = len(leaves)

	if o.admin != "" {
		// The leaf-level registry carries the end-to-end repair
		// latency, the most useful live view of a tree run.
		srv, addr, err := obs.ServeAdmin(o.admin, regs[o.depth], nil,
			obs.Section{Name: "consistency", Get: func() any { return est.Snapshot() }})
		must(err)
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "ssload: admin endpoint on http://%s/ (leaf level)\n", addr)
	}

	value := make([]byte, o.valueLen)
	for i := range value {
		value[i] = byte('a' + i%26)
	}
	for i := 0; i < o.records; i++ {
		must(pub.Publish(key(i), value, 0))
	}
	pub.Start()
	for _, r := range relays {
		r.Start()
	}
	for _, l := range leaves {
		l.Start()
	}

	// Load phase: value-update churn rides on the initial flood.
	start := time.Now()
	tick := time.NewTicker(time.Duration(float64(time.Second) / maxf(o.updates, 1)))
	upd := 0
	for time.Since(start) < o.duration {
		<-tick.C
		if o.updates > 0 {
			must(pub.Publish(key(upd%o.records), value, 0))
			upd++
		}
	}
	tick.Stop()
	res.DurationMs = float64(time.Since(start).Microseconds()) / 1000

	// Convergence phase: every replica digest must reach the
	// publisher's, leaves last.
	convStart := time.Now()
	convDeadline := convStart.Add(30 * time.Second)
	count := func() (nr, nl int) {
		want := pub.RootDigest()
		for _, r := range relays {
			if r.RootDigest() == want {
				nr++
			}
		}
		for _, l := range leaves {
			if l.RootDigest() == want {
				nl++
			}
		}
		return nr, nl
	}
	for time.Now().Before(convDeadline) {
		if nr, nl := count(); nr == len(relays) && nl == len(leaves) {
			break
		}
		time.Sleep(25 * time.Millisecond)
	}
	res.ConvergeMs = float64(time.Since(convStart).Microseconds()) / 1000
	res.ConvergedRelays, res.ConvergedLeaves = count()

	pst := pub.Stats()
	res.RootQueriesServed = pst.QueriesServed
	res.RootNACKs = pst.NACKsReceived
	for _, r := range relays {
		st := r.Stats()
		res.Forwarded += st.Forwarded
		res.Tombstoned += st.Tombstoned
		res.RelayQueriesServed += st.QueriesServed
		res.RelayNACKs += st.NACKsHeard
	}
	for l := 1; l <= o.depth; l++ {
		hq := hopQuantiles{Level: l}
		hv := hopQuantiles{Level: l}
		for _, sm := range regs[l].Snapshot() {
			switch sm.Name {
			case "sstp_t_rec_seconds":
				hq.Count, hq.P50, hq.P95, hq.P99 = sm.Count, sm.P50, sm.P95, sm.P99
			case "sstp_tvis_seconds":
				hv.Count, hv.P50, hv.P95, hv.P99 = sm.Count, sm.P50, sm.P95, sm.P99
			}
		}
		res.PerHop = append(res.PerHop, hq)
		res.PerHopVis = append(res.PerHopVis, hv)
	}
	rootTx := hopTx{Level: 0, DataSent: pst.DataSent, DataDatagrams: pst.DatagramsSent}
	if rootTx.DataDatagrams > 0 {
		rootTx.RecordsPerDgm = float64(rootTx.DataSent) / float64(rootTx.DataDatagrams)
	}
	res.PerHopTx = append(res.PerHopTx, rootTx)
	for level := 1; level < o.depth; level++ {
		ht := hopTx{Level: level}
		for _, r := range relayLevels[level] {
			for i := 0; i < r.NumDownstreams(); i++ {
				ds := r.DownstreamSender(i).Stats()
				ht.DataSent += ds.DataSent
				ht.DataDatagrams += ds.DatagramsSent
			}
		}
		if ht.DataDatagrams > 0 {
			ht.RecordsPerDgm = float64(ht.DataSent) / float64(ht.DataDatagrams)
		}
		res.PerHopTx = append(res.PerHopTx, ht)
	}
	res.Consistency = est.Snapshot()

	for _, l := range leaves {
		l.Close()
	}
	for _, r := range relays {
		r.Close()
	}
	pub.Close()

	if o.jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		must(enc.Encode(res))
	} else {
		fmt.Printf("ssload: relay tree depth %d fanout %d (%d relays, %d leaves), %d records @ %.0f bps, loss %.2f\n",
			res.Depth, res.Fanout, res.Relays, res.Leaves, res.Records, res.RateBps, res.Loss)
		fmt.Printf("  forwarded %d, tombstoned %d; converged %d/%d relays, %d/%d leaves in %.0f ms\n",
			res.Forwarded, res.Tombstoned, res.ConvergedRelays, res.Relays,
			res.ConvergedLeaves, res.Leaves, res.ConvergeMs)
		fmt.Printf("  repair: root served %d queries / %d nacks, relays served %d / %d\n",
			res.RootQueriesServed, res.RootNACKs, res.RelayQueriesServed, res.RelayNACKs)
		for i, hq := range res.PerHop {
			hv := res.PerHopVis[i]
			fmt.Printf("  hop %d t_rec p50=%.3fs p95=%.3fs p99=%.3fs (n=%d); t_vis p50=%.3fs p95=%.3fs p99=%.3fs (n=%d)\n",
				hq.Level, hq.P50, hq.P95, hq.P99, hq.Count,
				hv.P50, hv.P95, hv.P99, hv.Count)
		}
		for _, ht := range res.PerHopTx {
			fmt.Printf("  tx level %d: %d records in %d datagrams (%.1f records/datagram)\n",
				ht.Level, ht.DataSent, ht.DataDatagrams, ht.RecordsPerDgm)
		}
		fmt.Printf("  leaves: E[c(t)]=%.4f over %d digest samples, %d tracked keys, staleness p95=%.3fs\n",
			res.Consistency.Consistency, res.Consistency.AgreementSamples,
			res.Consistency.TrackedKeys, res.Consistency.Staleness.P95)
	}
	if o.quick && (res.ConvergedLeaves != res.Leaves || res.ConvergedRelays != res.Relays) {
		fmt.Fprintf(os.Stderr, "ssload: relay quick smoke FAILED: %d/%d leaves converged\n",
			res.ConvergedLeaves, res.Leaves)
		os.Exit(1)
	}
}

func intPow(b, e int) int {
	n := 1
	for i := 0; i < e; i++ {
		n *= b
	}
	return n
}
