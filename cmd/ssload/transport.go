package main

// Transport modes of ssload:
//
//   - -transport-smoke: the CI gate for the pluggable wire. A relay
//     bridges a 5%-lossy UDP "datacenter" leg to a framed-TCP "WAN"
//     leg and the far side must still converge (loss repaired by NACK
//     over udp, datagram boundaries preserved over tcp); then a real
//     TLS handshake smoke with a generated self-signed pair, verified
//     by the client against the pinned certificate.
//
//   - -transport-compare: the quick profile run over udp, tcp, and
//     tls back-to-back with identical injected sender-side loss, so
//     t_rec and datagram overhead are comparable across wires — the
//     BENCH_sstransport.json record.

import (
	"crypto/tls"
	"crypto/x509"
	"encoding/json"
	"fmt"
	"net"
	"os"
	"time"

	"softstate/internal/obs"
	"softstate/internal/relay"
	"softstate/internal/runmeta"
	"softstate/internal/sstp"
	"softstate/internal/transport"
	"softstate/internal/xrand"
)

// lossyConn drops a Bernoulli fraction of WriteTo datagrams before
// they reach the wire — deterministic injected loss for transports
// whose real links (loopback) never drop. The sstp layer sees a
// successful send, exactly like a router dropping in flight.
type lossyConn struct {
	net.PacketConn
	p   float64
	rnd *xrand.Rand
}

func (l *lossyConn) WriteTo(b []byte, addr net.Addr) (int, error) {
	if l.rnd.Bernoulli(l.p) {
		return len(b), nil
	}
	return l.PacketConn.WriteTo(b, addr)
}

func runTransportSmoke() error {
	if err := smokeBridge(); err != nil {
		return fmt.Errorf("udp->tcp bridge: %w", err)
	}
	if err := smokeTLS(); err != nil {
		return fmt.Errorf("tls handshake: %w", err)
	}
	return nil
}

// smokeBridge runs publisher --udp(5% loss)--> relay --tcp--> leaf and
// requires the leaf to converge to the publisher's digest: the relay
// is a transport bridge, and the soft-state repair machinery covers
// the lossy datagram leg while the framed stream leg carries the very
// same protocol bytes.
func smokeBridge() error {
	const records = 64

	udpT := transport.UDP{}
	tcpT, err := transport.New("tcp", transport.Options{})
	if err != nil {
		return err
	}

	pubConn, err := udpT.Listen("127.0.0.1:0")
	if err != nil {
		return fmt.Errorf("listen udp: %w", err)
	}
	defer pubConn.Close()
	upConn, err := udpT.Listen("127.0.0.1:0")
	if err != nil {
		return err
	}
	defer upConn.Close()
	dnConn, err := tcpT.Listen("127.0.0.1:0")
	if err != nil {
		return fmt.Errorf("listen tcp: %w", err)
	}
	defer dnConn.Close()
	leafConn, err := tcpT.Listen("127.0.0.1:0")
	if err != nil {
		return err
	}
	defer leafConn.Close()

	leafDest, err := tcpT.Resolve(leafConn.LocalAddr().String())
	if err != nil {
		return err
	}
	dnAddr, err := tcpT.Resolve(dnConn.LocalAddr().String())
	if err != nil {
		return err
	}

	pub, err := sstp.NewSender(sstp.SenderConfig{
		Session: 9, SenderID: 1,
		Conn:      &lossyConn{PacketConn: pubConn, p: 0.05, rnd: xrand.New(7)},
		Dest:      upConn.LocalAddr(),
		TotalRate: 1_000_000, SummaryInterval: 100 * time.Millisecond,
		TTL: 30 * time.Second, Seed: 1,
	})
	if err != nil {
		return err
	}
	defer pub.Close()

	r, err := relay.New(relay.Config{
		Session: 9, RelayID: 100,
		UpstreamConn: upConn, UpstreamFeedback: pubConn.LocalAddr(),
		Downstreams: []relay.Downstream{{
			Conn: dnConn, Dest: leafDest, Rate: 1_000_000,
		}},
		SummaryInterval: 100 * time.Millisecond,
		NACKWindow:      30 * time.Millisecond,
		Seed:            2,
	})
	if err != nil {
		return err
	}
	defer r.Close()

	leaf, err := sstp.NewReceiver(sstp.ReceiverConfig{
		Session: 9, ReceiverID: 1000, Conn: leafConn,
		FeedbackDest: dnAddr,
		NACKWindow:   30 * time.Millisecond,
		Seed:         3,
	})
	if err != nil {
		return err
	}
	defer leaf.Close()

	pub.Start()
	r.Start()
	leaf.Start()
	for i := 0; i < records; i++ {
		if err := pub.Publish(fmt.Sprintf("bridge/%02d", i), []byte("datacenter-to-wan"), 0); err != nil {
			return err
		}
	}

	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		want := pub.RootDigest()
		if r.Len() == records && r.RootDigest() == want &&
			leaf.Len() == records && leaf.RootDigest() == want {
			return nil
		}
		time.Sleep(25 * time.Millisecond)
	}
	return fmt.Errorf("no convergence: relay %d/%d records, leaf %d/%d",
		r.Len(), records, leaf.Len(), records)
}

// smokeTLS converges a small session over verified TLS: the server
// side presents a freshly generated self-signed pair and the client
// side pins it as its root, so the handshake is a real certificate
// verification, not InsecureSkipVerify.
func smokeTLS() error {
	const records = 16

	cert, certPEM, err := transport.GenerateSelfSigned("softstate-smoke")
	if err != nil {
		return err
	}
	pool := x509.NewCertPool()
	if !pool.AppendCertsFromPEM(certPEM) {
		return fmt.Errorf("generated certificate did not parse")
	}
	opts := transport.Options{
		TLSServer: &transport.TLSConfig{Certificates: []tls.Certificate{cert}},
		TLSClient: &transport.TLSConfig{RootCAs: pool, ServerName: "localhost"},
	}
	tlsT, err := transport.New("tls", opts)
	if err != nil {
		return err
	}
	sc, err := tlsT.Listen("127.0.0.1:0")
	if err != nil {
		return fmt.Errorf("listen tls: %w", err)
	}
	defer sc.Close()
	rc, err := tlsT.Listen("127.0.0.1:0")
	if err != nil {
		return err
	}
	defer rc.Close()
	dest, err := tlsT.Resolve(rc.LocalAddr().String())
	if err != nil {
		return err
	}
	feedback, err := tlsT.Resolve(sc.LocalAddr().String())
	if err != nil {
		return err
	}

	s, err := sstp.NewSender(sstp.SenderConfig{
		Session: 10, SenderID: 1, Conn: sc, Dest: dest,
		TotalRate: 1_000_000, SummaryInterval: 100 * time.Millisecond,
		TTL: 30 * time.Second, Seed: 1,
	})
	if err != nil {
		return err
	}
	defer s.Close()
	r, err := sstp.NewReceiver(sstp.ReceiverConfig{
		Session: 10, ReceiverID: 2000, Conn: rc, FeedbackDest: feedback,
		NACKWindow: 30 * time.Millisecond, Seed: 2,
	})
	if err != nil {
		return err
	}
	defer r.Close()

	s.Start()
	r.Start()
	for i := 0; i < records; i++ {
		if err := s.Publish(fmt.Sprintf("tls/%02d", i), []byte("over the handshake"), 0); err != nil {
			return err
		}
	}
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		if r.Len() == records && r.RootDigest() == s.RootDigest() {
			return nil
		}
		time.Sleep(20 * time.Millisecond)
	}
	return fmt.Errorf("no convergence over tls: %d/%d records", r.Len(), records)
}

// transportCompareOpts parameterizes the udp/tcp/tls comparison.
type transportCompareOpts struct {
	records, receivers int
	rate               float64
	valueLen           int
	updates            float64
	duration           time.Duration
	seed               int64
	jsonOut, quick     bool
}

// transportResult is the -transport-compare JSON output, the format of
// BENCH_sstransport.json.
type transportResult struct {
	Seed       int64        `json:"seed"`
	Records    int          `json:"records"`
	Receivers  int          `json:"receivers"`
	RateBps    float64      `json:"rate_bps"`
	ValueBytes int          `json:"value_bytes"`
	Loss       float64      `json:"injected_loss"`
	DurationMs float64      `json:"duration_ms"`
	Meta       runmeta.Meta `json:"meta"`

	Runs []transportRun `json:"runs"`
}

// transportRun is one transport's quick-profile measurement.
type transportRun struct {
	Transport         string    `json:"transport"`
	DataSent          int       `json:"data_sent"`
	DataDatagramsSent int       `json:"data_datagrams_sent"`
	BytesSent         int       `json:"bytes_sent"`
	DgmsPerRecord     float64   `json:"datagrams_per_record"`
	BytesPerRecord    float64   `json:"bytes_per_record"`
	Deliveries        int       `json:"deliveries"`
	NACKsSent         int       `json:"nacks_sent"`
	Converged         int       `json:"converged"`
	ConvergeMs        float64   `json:"converge_ms"`
	TRec              quantiles `json:"t_rec_seconds"`
}

// runTransportCompare runs the quick profile over udp, tcp, and tls
// with identical sender-side injected loss (so the repair path — and
// therefore t_rec — is exercised on every wire, loopback never
// dropping anything on its own).
func runTransportCompare(o transportCompareOpts) {
	const injectedLoss = 0.02
	// The comparison is a fixed quick profile unless the caller sized
	// it explicitly; keep runs short, the quantity compared is
	// per-record overhead and repair latency, not throughput.
	if o.quick || o.records > 128 {
		o.records = 64
	}
	if o.receivers > 4 {
		o.receivers = 2
	}
	if o.duration > 2*time.Second || o.quick {
		o.duration = 1500 * time.Millisecond
	}

	res := transportResult{
		Seed: o.seed, Records: o.records, Receivers: o.receivers,
		RateBps: o.rate, ValueBytes: o.valueLen, Loss: injectedLoss,
		Meta: runmeta.Collect(),
	}
	start := time.Now()
	ok := true
	for _, scheme := range []string{"udp", "tcp", "tls"} {
		run, err := compareOne(scheme, o, injectedLoss)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ssload: %s: %v\n", scheme, err)
			ok = false
			continue
		}
		if run.Converged != o.receivers {
			ok = false
		}
		res.Runs = append(res.Runs, run)
	}
	res.DurationMs = float64(time.Since(start).Microseconds()) / 1000

	if o.jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		must(enc.Encode(res))
	} else {
		fmt.Printf("ssload: transport comparison, %d records x %d receivers @ %.0f bps, %.0f%% injected loss\n",
			o.records, o.receivers, o.rate, 100*injectedLoss)
		for _, r := range res.Runs {
			fmt.Printf("  %-4s %5.2f datagrams/record %7.1f bytes/record  t_rec p50=%.3fs p99=%.3fs (n=%d)  converged %d/%d in %.0f ms\n",
				r.Transport, r.DgmsPerRecord, r.BytesPerRecord,
				r.TRec.P50, r.TRec.P99, r.TRec.Count,
				r.Converged, o.receivers, r.ConvergeMs)
		}
	}
	if !ok {
		fmt.Fprintln(os.Stderr, "ssload: transport comparison FAILED: not every transport converged")
		os.Exit(1)
	}
}

// compareOne runs the profile once over one transport and collects
// that run's overhead and repair-latency numbers from a private
// registry.
func compareOne(scheme string, o transportCompareOpts, loss float64) (transportRun, error) {
	run := transportRun{Transport: scheme}
	senderConn, rcvConns, dest, feedback, err := buildTransport(scheme, o.receivers, 0, 0, o.seed)
	if err != nil {
		return run, err
	}
	senderConn = &lossyConn{PacketConn: senderConn, p: loss, rnd: xrand.New(o.seed + 99)}

	reg := obs.New("ssload-" + scheme)
	s, err := sstp.NewSender(sstp.SenderConfig{
		Session: 42, SenderID: 1,
		Conn: senderConn, Dest: dest,
		TotalRate:       o.rate,
		SummaryInterval: 150 * time.Millisecond,
		TTL:             10 * time.Second,
		Seed:            o.seed,
	})
	if err != nil {
		return run, err
	}
	defer s.Close()
	var rcvs []*sstp.Receiver
	for i := 0; i < o.receivers; i++ {
		r, err := sstp.NewReceiver(sstp.ReceiverConfig{
			Session: 42, ReceiverID: uint64(100 + i),
			Conn: rcvConns[i], FeedbackDest: feedback,
			NACKWindow: 50 * time.Millisecond,
			Obs:        reg,
			Seed:       o.seed + int64(i),
		})
		if err != nil {
			return run, err
		}
		defer r.Close()
		rcvs = append(rcvs, r)
	}

	value := make([]byte, o.valueLen)
	for i := range value {
		value[i] = byte('a' + i%26)
	}
	for i := 0; i < o.records; i++ {
		if err := s.Publish(key(i), value, 0); err != nil {
			return run, err
		}
	}
	s.Start()
	for _, r := range rcvs {
		r.Start()
	}

	tick := time.NewTicker(time.Duration(float64(time.Second) / maxf(o.updates, 1)))
	startLoad := time.Now()
	upd := 0
	for time.Since(startLoad) < o.duration {
		<-tick.C
		if o.updates > 0 {
			if err := s.Publish(key(upd%o.records), value, 0); err != nil {
				tick.Stop()
				return run, err
			}
			upd++
		}
	}
	tick.Stop()

	convStart := time.Now()
	deadline := convStart.Add(20 * time.Second)
	for time.Now().Before(deadline) {
		if convergedCount(s, rcvs) == len(rcvs) {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	run.ConvergeMs = float64(time.Since(convStart).Microseconds()) / 1000
	run.Converged = convergedCount(s, rcvs)

	st := s.Stats()
	run.DataSent = st.DataSent
	run.DataDatagramsSent = st.DatagramsSent
	run.BytesSent = st.BytesSent
	published := o.records + upd
	if published > 0 {
		run.DgmsPerRecord = float64(st.DatagramsSent) / float64(published)
		run.BytesPerRecord = float64(st.BytesSent) / float64(published)
	}
	for _, r := range rcvs {
		rs := r.Stats()
		run.Deliveries += rs.DataReceived
		run.NACKsSent += rs.NACKsSent
	}
	for _, sm := range reg.Snapshot() {
		if sm.Name == "sstp_t_rec_seconds" {
			run.TRec = quantiles{Count: sm.Count, P50: sm.P50, P95: sm.P95, P99: sm.P99}
		}
	}
	return run, nil
}
