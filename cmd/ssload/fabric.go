package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"sync"
	"time"

	"softstate/internal/fabric"
	"softstate/internal/obs"
	"softstate/internal/runmeta"
	"softstate/internal/sstp"
)

// fabricOpts parameterize the -sessions fabric mode.
type fabricOpts struct {
	sessions int
	weights  string
	burst    float64
	fifoOnly bool
	records  int // per tenant
	rate     float64
	linkRate float64
	valueLen int
	loss     float64
	updates  float64
	duration time.Duration
	seed     int64
	jsonOut  bool
	admin    string
	quick    bool
}

// fabricResult is the -sessions -json output, the format of
// BENCH_ssfabric.json (see EXPERIMENTS.md).
type fabricResult struct {
	Seed             int64   `json:"seed"`
	Quick            bool    `json:"quick"`
	Sessions         int     `json:"sessions"`
	WeightsSpec      string  `json:"tenant_weights"`
	Burst            float64 `json:"bursty"`
	RateBps          float64 `json:"tenant_rate_bps"`
	LinkRateBps      float64 `json:"link_rate_bps"`
	RecordsPerTenant int     `json:"records_per_tenant"`
	ValueBytes       int     `json:"value_bytes"`
	Loss             float64 `json:"loss"`
	PhaseMs          float64 `json:"phase_duration_ms"`

	Meta runmeta.Meta `json:"meta"`

	// Phases: the equal-load fair-queueing baseline, the same load
	// with tenant 0 bursting, and the burst replayed under the FIFO
	// baseline scheduler that shows the starvation FQ removes.
	Phases []fabricPhase `json:"phases"`

	// Isolation is the cross-phase comparison the smoke gate asserts
	// on: how much a 10x bursty tenant degrades everyone else's p99
	// under each policy.
	Isolation fabricIsolation `json:"isolation"`
}

type fabricPhase struct {
	Name   string  `json:"name"`
	Policy string  `json:"policy"` // "fq" or "fifo"
	Burst  float64 `json:"burst"`

	Converged  int     `json:"converged"`
	Tenants    int     `json:"tenants"`
	ConvergeMs float64 `json:"converge_ms"`

	Datagrams     uint64 `json:"fabric_datagrams"`
	TxBytes       uint64 `json:"fabric_tx_bytes"`
	DemuxUnknown  uint64 `json:"demux_unknown_drops"`
	DemuxOverflow uint64 `json:"demux_overflow_drops"`

	// Bursty is tenant 0's latency view; Others pools every other
	// tenant's receiver samples (one shared registry, so quantiles
	// are over the union of samples, not an average of averages).
	Bursty tenantLatency `json:"bursty_tenant"`
	Others tenantLatency `json:"other_tenants"`

	// TopTenants lists the scheduler rows for tenant 0 plus the
	// heaviest 16 others by bytes served; with a thousand tenants the
	// full table would dwarf the record.
	TopTenants []fabricTenantRow `json:"top_tenants"`
}

type tenantLatency struct {
	TRec       quantiles `json:"t_rec_seconds"`
	TVis       quantiles `json:"t_vis_seconds"`
	Deliveries int       `json:"deliveries"`
	NACKs      int       `json:"nacks_sent"`
}

type fabricTenantRow struct {
	Session   uint64  `json:"session"`
	Weight    float64 `json:"weight"`
	Bytes     uint64  `json:"bytes"`
	Datagrams uint64  `json:"datagrams"`
	Converged bool    `json:"converged"`
}

type fabricIsolation struct {
	EqualOthersP99TVis float64 `json:"equal_fq_others_p99_t_vis"`
	FQOthersP99TVis    float64 `json:"burst_fq_others_p99_t_vis"`
	FIFOOthersP99TVis  float64 `json:"burst_fifo_others_p99_t_vis"`
	EqualOthersP99TRec float64 `json:"equal_fq_others_p99_t_rec"`
	FQOthersP99TRec    float64 `json:"burst_fq_others_p99_t_rec"`
	FIFOOthersP99TRec  float64 `json:"burst_fifo_others_p99_t_rec"`

	// Degradation ratios: burst-phase p99 over equal-phase p99 for
	// the non-bursty tenants (t_rec when both phases have enough
	// repair samples, else t_vis). FQ should hold near 1; FIFO is
	// the measured cost of no isolation.
	FQDegradation   float64 `json:"fq_degradation"`
	FIFODegradation float64 `json:"fifo_degradation"`
	Metric          string  `json:"metric"`
}

// runFabricPhase drives one full fabric run: n tenants over one
// shared memconn socket, each with its own receiver, tenant 0
// publishing burst-times the per-tenant churn in periodic spikes.
func runFabricPhase(o fabricOpts, name, policy string, burst float64, weights []float64, fabReg *obs.Registry) fabricPhase {
	ph := fabricPhase{Name: name, Policy: policy, Burst: burst, Tenants: o.sessions}

	nw := sstp.NewMemNetwork(o.seed)
	nw.SetDefaultLoss(o.loss)
	shared := nw.Endpoint("fab")
	f, err := fabric.New(fabric.Config{
		Conn:     shared,
		LinkRate: o.linkRate,
		FIFO:     policy == "fifo",
		Obs:      fabReg,
	})
	must(err)

	regBursty := obs.New("bursty")
	regOthers := obs.New("others")
	senders := make([]*sstp.Sender, o.sessions)
	receivers := make([]*sstp.Receiver, o.sessions)
	value := make([]byte, o.valueLen)
	for i := range value {
		value[i] = byte('a' + i%26)
	}
	for i := 0; i < o.sessions; i++ {
		session := uint64(1000 + i)
		rname := sstp.MemAddr(fmt.Sprintf("r%d", i))
		rconn := nw.Endpoint(rname)
		tenantRate := o.rate
		if i == 0 {
			// The bursty tenant is provisioned (and behaves) like
			// burst normal tenants rolled into one.
			tenantRate = o.rate * burst
		}
		s, err := f.AddSender(sstp.SenderConfig{
			Session: session, SenderID: 1,
			Dest:            rname,
			TotalRate:       tenantRate,
			SummaryInterval: 200 * time.Millisecond,
			TTL:             60 * time.Second,
			Seed:            o.seed + int64(i),
		}, weights[i])
		must(err)
		senders[i] = s
		reg := regOthers
		if i == 0 {
			reg = regBursty
		}
		r, err := sstp.NewReceiver(sstp.ReceiverConfig{
			Session: session, ReceiverID: 2,
			Conn: rconn, FeedbackDest: sstp.MemAddr("fab"),
			NACKWindow: 50 * time.Millisecond,
			Obs:        reg,
			Seed:       o.seed + int64(10_000+i),
		})
		must(err)
		receivers[i] = r
		for k := 0; k < o.records; k++ {
			must(s.Publish(fabricKey(i, k), value, 0))
		}
	}
	f.Start()
	for _, r := range receivers {
		r.Start()
	}

	// Load phase: round-robin update churn across all tenants, plus
	// periodic publish spikes on tenant 0 scaled by the burst factor
	// — time-concentrated overload, the pattern FIFO handles worst.
	start := time.Now()
	tick := time.NewTicker(time.Duration(float64(time.Second) / maxf(o.updates, 1)))
	spike := time.NewTicker(250 * time.Millisecond)
	spikeBatch := 0
	if burst > 1 {
		// Per spike: the churn tenant 0 would have gotten anyway
		// times (burst-1), so total tenant-0 publish rate ~= burst
		// times one tenant's share.
		perTenantPerSec := o.updates / float64(o.sessions)
		spikeBatch = int(perTenantPerSec * 0.25 * (burst - 1))
		if spikeBatch < 1 {
			spikeBatch = int(burst)
		}
	}
	upd := 0
	for time.Since(start) < o.duration {
		select {
		case <-tick.C:
			if o.updates > 0 {
				i := upd % o.sessions
				must(senders[i].Publish(fabricKey(i, upd%o.records), value, 0))
				upd++
			}
		case <-spike.C:
			for b := 0; b < spikeBatch; b++ {
				must(senders[0].Publish(fabricKey(0, b%o.records), value, 0))
			}
		}
	}
	tick.Stop()
	spike.Stop()

	// Convergence: every tenant's replica must match its sender. The
	// FIFO baseline is *expected* to starve tenants past any deadline
	// — its wait is capped tighter so the bench's wall clock goes to
	// the phases whose convergence the gate asserts on.
	convWait := 30 * time.Second
	if o.quick {
		convWait = 10 * time.Second
	}
	if policy == "fifo" {
		convWait = 5 * time.Second
	}
	convStart := time.Now()
	convDeadline := convStart.Add(convWait)
	convergedAt := make([]bool, o.sessions)
	count := func() int {
		n := 0
		for i := range senders {
			if convergedAt[i] {
				n++
				continue
			}
			if senders[i].RootDigest() == receivers[i].RootDigest() {
				convergedAt[i] = true
				n++
			}
		}
		return n
	}
	for time.Now().Before(convDeadline) {
		if count() == o.sessions {
			break
		}
		time.Sleep(25 * time.Millisecond)
	}
	ph.ConvergeMs = float64(time.Since(convStart).Microseconds()) / 1000
	ph.Converged = count()

	collect := func(reg *obs.Registry) tenantLatency {
		var tl tenantLatency
		for _, sm := range reg.Snapshot() {
			switch sm.Name {
			case "sstp_t_rec_seconds":
				tl.TRec = quantiles{Count: sm.Count, P50: sm.P50, P95: sm.P95, P99: sm.P99}
			case "sstp_tvis_seconds":
				tl.TVis = quantiles{Count: sm.Count, P50: sm.P50, P95: sm.P95, P99: sm.P99}
			}
		}
		return tl
	}
	ph.Bursty = collect(regBursty)
	ph.Others = collect(regOthers)
	for i, r := range receivers {
		rs := r.Stats()
		if i == 0 {
			ph.Bursty.Deliveries = rs.DataReceived
			ph.Bursty.NACKs = rs.NACKsSent
		} else {
			ph.Others.Deliveries += rs.DataReceived
			ph.Others.NACKs += rs.NACKsSent
		}
	}

	stats := f.TenantStats()
	rows := make([]fabricTenantRow, 0, len(stats))
	for _, st := range stats {
		i := int(st.Session - 1000)
		rows = append(rows, fabricTenantRow{
			Session: st.Session, Weight: st.Weight,
			Bytes: st.Bytes, Datagrams: st.Packets,
			Converged: convergedAt[i],
		})
		ph.Datagrams += st.Packets
		ph.TxBytes += st.Bytes
	}
	sort.Slice(rows, func(a, b int) bool {
		if (rows[a].Session == 1000) != (rows[b].Session == 1000) {
			return rows[a].Session == 1000 // bursty tenant first
		}
		if rows[a].Bytes != rows[b].Bytes {
			return rows[a].Bytes > rows[b].Bytes
		}
		return rows[a].Session < rows[b].Session
	})
	if len(rows) > 17 {
		rows = rows[:17] // bursty + heaviest 16
	}
	ph.TopTenants = rows
	ph.DemuxUnknown, ph.DemuxOverflow, _ = f.Drops()

	f.Close()
	var closers sync.WaitGroup
	for _, r := range receivers {
		closers.Add(1)
		go func(r *sstp.Receiver) {
			defer closers.Done()
			r.Close()
		}(r)
	}
	closers.Wait()
	return ph
}

func fabricKey(tenant, k int) string { return fmt.Sprintf("t%d/key/%03d", tenant, k) }

// runFabric drives the -sessions fabric bench: three phases over the
// same topology — equal load under FQ, a 10x bursty tenant under FQ,
// and the same burst under the FIFO baseline — and reports how much
// the burst degraded everyone else under each policy.
func runFabric(o fabricOpts) {
	if o.sessions < 2 {
		fmt.Fprintln(os.Stderr, "ssload: -sessions needs at least 2 tenants")
		os.Exit(2)
	}
	if o.quick && o.loss == 0 {
		o.loss = 0.02 // repair samples need loss
	}
	if o.linkRate <= 0 {
		// Fits the nominal aggregate, not the burst: the burst phase
		// contends for the link, which is the point.
		o.linkRate = float64(o.sessions) * o.rate
	}
	weights, err := fabric.ParseWeights(o.weights, o.sessions)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ssload:", err)
		os.Exit(2)
	}
	res := fabricResult{
		Seed: o.seed, Quick: o.quick, Sessions: o.sessions,
		WeightsSpec: o.weights, Burst: o.burst,
		RateBps: o.rate, LinkRateBps: o.linkRate,
		RecordsPerTenant: o.records, ValueBytes: o.valueLen,
		Loss:    o.loss,
		PhaseMs: float64(o.duration.Microseconds()) / 1000,
		Meta:    runmeta.Collect(),
	}

	// One registry across phases so a live admin endpoint shows the
	// whole bench; per-phase totals come from the scheduler stats.
	fabReg := obs.New("ssfabric")
	if o.admin != "" {
		srv, addr, err := obs.ServeAdmin(o.admin, fabReg, nil)
		must(err)
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "ssload: admin endpoint on http://%s/\n", addr)
	}

	type phaseSpec struct {
		name, policy string
		burst        float64
	}
	specs := []phaseSpec{
		{"equal_fq", "fq", 1},
		{"burst_fq", "fq", o.burst},
		{"burst_fifo", "fifo", o.burst},
	}
	if o.fifoOnly {
		specs = []phaseSpec{{"equal_fifo", "fifo", 1}, {"burst_fifo", "fifo", o.burst}}
	}
	for _, sp := range specs {
		fmt.Fprintf(os.Stderr, "ssload: fabric phase %s (%d sessions, burst %.0fx, %s)...\n",
			sp.name, o.sessions, sp.burst, sp.policy)
		res.Phases = append(res.Phases, runFabricPhase(o, sp.name, sp.policy, sp.burst, weights, fabReg))
	}

	byName := map[string]*fabricPhase{}
	for i := range res.Phases {
		byName[res.Phases[i].Name] = &res.Phases[i]
	}
	iso := &res.Isolation
	if eq, fq, fifo := byName["equal_fq"], byName["burst_fq"], byName["burst_fifo"]; eq != nil && fq != nil {
		iso.EqualOthersP99TVis = eq.Others.TVis.P99
		iso.FQOthersP99TVis = fq.Others.TVis.P99
		iso.EqualOthersP99TRec = eq.Others.TRec.P99
		iso.FQOthersP99TRec = fq.Others.TRec.P99
		if fifo != nil {
			iso.FIFOOthersP99TVis = censoredP99(fifo)
			iso.FIFOOthersP99TRec = fifo.Others.TRec.P99
		}
		// t_rec needs repair samples in both phases to be meaningful,
		// and it is right-censored in any phase that ended with
		// unconverged tenants: pending repairs never sample, so only
		// the fast ones count and the quantiles flatter the loser.
		// t_vis (every delivery samples it) is the fallback.
		const minSamples = 20
		allConverged := eq.Converged == eq.Tenants && fq.Converged == fq.Tenants &&
			(fifo == nil || fifo.Converged == fifo.Tenants)
		if allConverged && eq.Others.TRec.Count >= minSamples && fq.Others.TRec.Count >= minSamples {
			iso.Metric = "t_rec"
			iso.FQDegradation = ratio(fq.Others.TRec.P99, eq.Others.TRec.P99)
			if fifo != nil {
				iso.FIFODegradation = ratio(fifo.Others.TRec.P99, eq.Others.TRec.P99)
			}
		} else {
			iso.Metric = "t_vis"
			iso.FQDegradation = ratio(fq.Others.TVis.P99, eq.Others.TVis.P99)
			if fifo != nil {
				iso.FIFODegradation = ratio(iso.FIFOOthersP99TVis, eq.Others.TVis.P99)
			}
		}
	}

	if o.jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		must(enc.Encode(res))
	} else {
		fmt.Printf("ssload: fabric %d sessions @ %.0f bps each (link %.0f bps), weights %q, burst %.0fx\n",
			res.Sessions, res.RateBps, res.LinkRateBps, res.WeightsSpec, res.Burst)
		for _, ph := range res.Phases {
			fmt.Printf("  %-10s [%s]: converged %d/%d in %.0f ms; %d datagrams, %.1f MB; others t_vis p99=%.3fs (n=%d) t_rec p99=%.3fs (n=%d)\n",
				ph.Name, ph.Policy, ph.Converged, ph.Tenants, ph.ConvergeMs,
				ph.Datagrams, float64(ph.TxBytes)/1e6,
				ph.Others.TVis.P99, ph.Others.TVis.Count,
				ph.Others.TRec.P99, ph.Others.TRec.Count)
		}
		fmt.Printf("  isolation (%s p99, others): fq degradation %.2fx, fifo %.2fx\n",
			res.Isolation.Metric, res.Isolation.FQDegradation, res.Isolation.FIFODegradation)
	}

	if o.quick {
		fail := func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "ssload: fabric quick smoke FAILED: "+format+"\n", args...)
			os.Exit(1)
		}
		for _, ph := range res.Phases {
			if ph.Policy == "fq" && ph.Converged != ph.Tenants {
				fail("phase %s converged %d/%d tenants", ph.Name, ph.Converged, ph.Tenants)
			}
		}
		// The isolation gate: a bursting tenant must not degrade the
		// others' p99 beyond 2x the equal-load baseline (plus a small
		// absolute floor so microsecond-scale baselines don't flap).
		const floor = 0.25 // seconds
		eq, fq := byName["equal_fq"], byName["burst_fq"]
		if eq == nil || fq == nil {
			fail("missing fq phases for the isolation gate")
		}
		var base, burst float64
		if res.Isolation.Metric == "t_rec" {
			base, burst = eq.Others.TRec.P99, fq.Others.TRec.P99
		} else {
			base, burst = eq.Others.TVis.P99, fq.Others.TVis.P99
		}
		if burst > 2*base+floor {
			fail("others' %s p99 %.3fs under burst vs %.3fs baseline (> 2x + %.2fs floor)",
				res.Isolation.Metric, burst, base, floor)
		}
	}
}

func ratio(num, den float64) float64 {
	if den <= 0 {
		return 0
	}
	return num / den
}

// censoredP99 reports the non-bursty pool's t_vis p99 for a phase,
// corrected for right-censoring: t_vis only samples on delivery, so a
// phase that ends with tenants still unconverged (a starved FIFO
// phase) understates its own tail — the starved records never sample
// at all. When more than 1% of the tenants failed to converge, the
// true p99 is at least the phase's elapsed time — report that lower
// bound instead of the survivors-only quantile.
func censoredP99(ph *fabricPhase) float64 {
	p99 := ph.Others.TVis.P99
	unconverged := ph.Tenants - ph.Converged
	if unconverged*100 > ph.Tenants {
		if bound := ph.ConvergeMs / 1000; bound > p99 {
			return bound
		}
	}
	return p99
}
