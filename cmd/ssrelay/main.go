// Command ssrelay is an SSTP relay daemon: one interior node of an
// application-level multicast tree. It joins an upstream session as a
// receiver and re-publishes the replica as a full SSTP sender on each
// downstream link, so repair traffic is always answered by the nearest
// hop (see README "Relay overlay").
//
// Usage:
//
//	ssrelay -laddr 127.0.0.1:8702 -upstream 127.0.0.1:8701 \
//	        -down 127.0.0.1:8710=239.0.0.2:8711,127.0.0.1:8720=239.0.0.3:8721
//
// Each -down element is LADDR=DEST: the local socket the downstream
// sender binds and the address (usually a multicast group) its subtree
// listens on. Every address is a URL-style link spec — bare host:port
// inherits -transport (default udp), an explicit scheme (udp://,
// tcp://, tls://) wins — and each link picks its transport
// independently, so a relay bridges transports: UDP multicast inside
// the datacenter upstream, framed TCP/TLS streams across the WAN
// downstream (or the reverse):
//
//	ssrelay -laddr 127.0.0.1:8702 -upstream 127.0.0.1:8701 \
//	        -down tls://0.0.0.0:8710=tls://wan-peer:8711
//
// With -admin ADDR, an HTTP endpoint serves /metrics,
// /stats.json, /trace, and /debug/pprof covering both the relay_* and
// sstp_* series. -quick runs an in-process depth-2 smoke test over a
// lossy memconn network and exits non-zero on failure.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"time"

	"softstate/internal/obs"
	"softstate/internal/relay"
	"softstate/internal/sstp"
	"softstate/internal/trace"
	"softstate/internal/transport"
)

func main() {
	laddr := flag.String("laddr", "127.0.0.1:8702", "local address of the upstream receiver (bare host:port or scheme://host:port)")
	upstream := flag.String("upstream", "127.0.0.1:8701", "upstream feedback address (parent sender or its group)")
	down := flag.String("down", "", "comma-separated downstream links, each LADDR=DEST (per-link scheme:// selects that link's transport)")
	transportName := flag.String("transport", "udp", "default wire transport for bare addresses: udp, tcp, or tls")
	tlsCert := flag.String("tlscert", "", "TLS certificate PEM (tls links; empty generates self-signed)")
	tlsKey := flag.String("tlskey", "", "TLS private key PEM")
	tlsCA := flag.String("tlsca", "", "CA PEM: verify dialed peers and require client certs (mTLS)")
	tlsName := flag.String("tlsname", "", "expected server name on dialed TLS peers")
	session := flag.Uint64("session", 1, "session id")
	relayID := flag.Uint64("relayid", uint64(os.Getpid()), "relay id (downstream senders use relayid+1+i)")
	rate := flag.Float64("rate", 128_000, "per-downstream-link bandwidth in bits/s")
	minRate := flag.Float64("minrate", 0, "AIMD floor in bits/s (0 disables AIMD)")
	maxRate := flag.Float64("maxrate", 0, "AIMD ceiling in bits/s")
	ttl := flag.Duration("ttl", 30*time.Second, "receiver-side TTL announced downstream")
	summaryEvery := flag.Duration("summaryevery", time.Second, "digest summary interval on downstream links")
	nackWindow := flag.Duration("nackwindow", 100*time.Millisecond, "upstream NACK slotting window")
	scope := flag.Uint("scope", 0, "force the downstream hop budget (0 derives upstream scope minus one)")
	admin := flag.String("admin", "", "serve /metrics, /stats.json, /trace, /debug/pprof on this address")
	statsEvery := flag.Duration("statsevery", 0, "log a one-line stats summary at this interval")
	traceCap := flag.Int("tracecap", 4096, "protocol event ring capacity (0 disables)")
	seed := flag.Int64("seed", 1, "repair-timer seed")
	quick := flag.Bool("quick", false, "run the in-process relay smoke test and exit")
	flag.Parse()

	if *quick {
		if err := quickSmoke(); err != nil {
			log.Fatalf("ssrelay -quick: %v", err)
		}
		fmt.Println("ssrelay -quick: ok")
		return
	}
	if *scope > 255 {
		log.Fatalf("-scope %d out of range [0,255]", *scope)
	}

	topts, err := transport.TLSOptions(*tlsCert, *tlsKey, *tlsCA, *tlsName)
	if err != nil {
		log.Fatal(err)
	}

	links := strings.Split(*down, ",")
	if *down == "" {
		log.Fatal("ssrelay: -down needs at least one LADDR=DEST link")
	}
	var downs []relay.Downstream
	for _, l := range links {
		la, dest, ok := strings.Cut(strings.TrimSpace(l), "=")
		if !ok {
			log.Fatalf("ssrelay: -down element %q is not LADDR=DEST", l)
		}
		tr, conn, err := transport.Bind(la, *transportName, topts)
		if err != nil {
			log.Fatalf("listen %s: %v", la, err)
		}
		destAddr, err := transport.Resolve(tr, dest)
		if err != nil {
			log.Fatalf("resolve %s: %v", dest, err)
		}
		downs = append(downs, relay.Downstream{
			Conn: conn, Dest: destAddr,
			Rate: *rate, MinRate: *minRate, MaxRate: *maxRate,
		})
	}

	upTr, upConn, err := transport.Bind(*laddr, *transportName, topts)
	if err != nil {
		log.Fatalf("listen %s: %v", *laddr, err)
	}
	upAddr, err := transport.Resolve(upTr, *upstream)
	if err != nil {
		log.Fatalf("resolve upstream %s: %v", *upstream, err)
	}

	reg := obs.New("ssrelay")
	var ring *trace.Ring
	if *traceCap > 0 {
		ring = trace.NewSafe(*traceCap)
	}
	r, err := relay.New(relay.Config{
		Session:          *session,
		RelayID:          *relayID,
		UpstreamConn:     upConn,
		UpstreamFeedback: upAddr,
		Downstreams:      downs,
		TTL:              *ttl,
		SummaryInterval:  *summaryEvery,
		NACKWindow:       *nackWindow,
		Scope:            uint8(*scope),
		Obs:              reg,
		Trace:            ring,
		Seed:             *seed,
	})
	if err != nil {
		log.Fatal(err)
	}
	r.Start()
	defer r.Close()
	log.Printf("ssrelay: session %d upstream %s feedback %s, %d downstream link(s) at %.0f bps",
		*session, *laddr, *upstream, len(downs), *rate)

	if *admin != "" {
		// The consistency section reports the upstream receiver's
		// online estimator: how stale this hop's replica is relative
		// to its parent, and the digest-agreement E[c(t)].
		est := r.Upstream().Consistency()
		srv, addr, err := obs.ServeAdmin(*admin, reg, ring,
			obs.Section{Name: "consistency", Get: func() any { return est.Snapshot() }})
		if err != nil {
			log.Fatalf("admin: %v", err)
		}
		defer srv.Close()
		log.Printf("ssrelay: admin endpoint on http://%s/", addr)
	}
	if *statsEvery > 0 {
		tick := time.NewTicker(*statsEvery)
		defer tick.Stop()
		go func() {
			for range tick.C {
				log.Println("ssrelay:", reg.OneLine(
					"relay_records", "relay_forwarded_total",
					"relay_tombstones_total", "relay_scope_drops_total",
					"sstp_queries_served_total", "sstp_nacks_received_total",
					"sstp_consistency_estimate", "sstp_tvis_seconds"))
			}
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
}

// quickSmoke builds publisher → relay → 4 leaves over a 5%-lossy
// in-process network and checks the two relay invariants: every leaf
// digest converges to the publisher's, and the publisher's Goodbye
// flushes the whole subtree. Loss is confined to the downstream hop,
// so any leaf repair must be answered by the relay — a repair request
// reaching the publisher fails the smoke.
func quickSmoke() error {
	const (
		records = 25
		fanout  = 4
	)
	nw := sstp.NewMemNetwork(42)
	pc := nw.Endpoint("pub")
	nw.Join("grp/root", "pub")
	pub, err := sstp.NewSender(sstp.SenderConfig{
		Session: 7, SenderID: 1, Conn: pc, Dest: sstp.MemAddr("grp/root"),
		TotalRate: 1_000_000, SummaryInterval: 50 * time.Millisecond,
		TTL: 60 * time.Second, Seed: 1,
	})
	if err != nil {
		return err
	}
	defer pub.Close()

	up := nw.Endpoint("relay/up")
	nw.Join("grp/root", "relay/up")
	dn := nw.Endpoint("relay/dn")
	nw.Join("grp/sub", "relay/dn")
	r, err := relay.New(relay.Config{
		Session: 7, RelayID: 100,
		UpstreamConn: up, UpstreamFeedback: sstp.MemAddr("grp/root"),
		Downstreams: []relay.Downstream{{
			Conn: dn, Dest: sstp.MemAddr("grp/sub"), Rate: 1_000_000,
		}},
		SummaryInterval: 50 * time.Millisecond,
		NACKWindow:      30 * time.Millisecond,
		Seed:            2,
	})
	if err != nil {
		return err
	}
	defer r.Close()

	var leaves []*sstp.Receiver
	for i := 0; i < fanout; i++ {
		name := sstp.MemAddr(fmt.Sprintf("leaf/%d", i))
		lc := nw.Endpoint(name)
		nw.Join("grp/sub", name)
		nw.SetLoss("relay/dn", name, 0.05)
		leaf, err := sstp.NewReceiver(sstp.ReceiverConfig{
			Session: 7, ReceiverID: uint64(1000 + i), Conn: lc,
			FeedbackDest:   sstp.MemAddr("grp/sub"),
			NACKWindow:     30 * time.Millisecond,
			FlushOnGoodbye: true,
			Seed:           int64(10 + i),
		})
		if err != nil {
			return err
		}
		defer leaf.Close()
		leaves = append(leaves, leaf)
	}

	pub.Start()
	r.Start()
	for _, l := range leaves {
		l.Start()
	}
	for i := 0; i < records; i++ {
		if err := pub.Publish(fmt.Sprintf("smoke/%d", i), []byte("v"), 0); err != nil {
			return err
		}
	}

	converged := func() bool {
		want := pub.RootDigest()
		if r.Len() != records || r.RootDigest() != want {
			return false
		}
		for _, l := range leaves {
			if l.Len() != records || l.RootDigest() != want {
				return false
			}
		}
		return true
	}
	if err := waitFor(15*time.Second, "tree convergence", converged); err != nil {
		return err
	}
	if st := pub.Stats(); st.QueriesServed != 0 || st.NACKsReceived != 0 {
		return fmt.Errorf("repair leaked upstream: publisher served %d queries, heard %d NACKs",
			st.QueriesServed, st.NACKsReceived)
	}

	pub.Close() // the final Goodbye must flush every hop
	return waitFor(15*time.Second, "goodbye flush", func() bool {
		if r.Len() != 0 {
			return false
		}
		for _, l := range leaves {
			if l.Len() != 0 {
				return false
			}
		}
		return true
	})
}

func waitFor(d time.Duration, what string, cond func() bool) error {
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return nil
		}
		time.Sleep(10 * time.Millisecond)
	}
	return fmt.Errorf("timed out waiting for %s", what)
}
