// Command sstpd is an SSTP publisher daemon: it announces a soft-state
// table over any transport (UDP by default, framed TCP or TLS
// streams), accepting table operations on stdin and optionally
// driving itself from a built-in demo workload.
//
// Usage:
//
//	sstpd -laddr 127.0.0.1:8701 -dest 127.0.0.1:8702 -session 1 -rate 128000
//	sstpd -transport tls -laddr :8701 -dest tls://peer:8702   # framed TLS
//
// Addresses are URL-style link specs: bare host:port inherits
// -transport (default udp), an explicit scheme (udp://, tcp://,
// tls://) wins. See README "Transports".
//
// Stdin commands (one per line):
//
//	PUT <key> <value> [ttl-seconds]
//	DEL <key>
//	STATS
//
// With -demo {ticker|routes|sdr}, a workload generator publishes
// continuously instead. With -sessions N, the daemon becomes a
// session fabric: N tenant sessions share the one UDP socket under a
// weighted fair-queueing send loop (-tenant-weights, -link-rate), and
// per-tenant sstp_fabric_* series appear in /stats.json alongside the
// sstp_* catalog. With -admin ADDR, an HTTP endpoint serves
// /metrics (Prometheus), /stats.json, /trace (JSONL event ring), and
// /debug/pprof. -statsevery D logs a one-line summary every D.
// -obssmoke runs a self-contained observability check (in-process
// sender + receiver + admin endpoint scraped over HTTP) and exits
// non-zero if the consistency surface is missing or empty.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"time"

	"softstate/internal/fabric"
	"softstate/internal/obs"
	"softstate/internal/profile"
	"softstate/internal/sstp"
	"softstate/internal/trace"
	"softstate/internal/transport"
	"softstate/internal/workload"
	"softstate/internal/xrand"
)

func main() {
	laddr := flag.String("laddr", "127.0.0.1:8701", "local address (bare host:port or scheme://host:port)")
	dest := flag.String("dest", "127.0.0.1:8702", "destination address (receiver or multicast group)")
	transportName := flag.String("transport", "udp", "wire transport for bare addresses: udp, tcp, or tls")
	tlsCert := flag.String("tlscert", "", "TLS certificate PEM (tls transport; empty generates self-signed)")
	tlsKey := flag.String("tlskey", "", "TLS private key PEM")
	tlsCA := flag.String("tlsca", "", "CA PEM: verify dialed peers and require client certs (mTLS)")
	tlsName := flag.String("tlsname", "", "expected server name on dialed TLS peers")
	session := flag.Uint64("session", 1, "session id")
	rate := flag.Float64("rate", 128_000, "session bandwidth in bits/s")
	ttl := flag.Duration("ttl", 30*time.Second, "announced receiver-side TTL")
	demo := flag.String("demo", "", "demo workload: ticker, routes, or sdr")
	seed := flag.Int64("seed", 1, "workload seed")
	profPath := flag.String("profile", "", "consistency profile JSON (from ssprofile) for adaptive allocation")
	target := flag.Float64("target", 0.9, "consistency target when -profile is set")
	admin := flag.String("admin", "", "serve /metrics, /stats.json, /trace, /debug/pprof on this address")
	statsEvery := flag.Duration("statsevery", 0, "log a one-line stats summary at this interval")
	traceCap := flag.Int("tracecap", 4096, "protocol event ring capacity (0 disables)")
	smoke := flag.Bool("obssmoke", false, "run the self-contained observability smoke test and exit")
	sessions := flag.Int("sessions", 1, "multiplex this many tenant sessions (ids session..session+N-1) over the one UDP socket")
	tenantWeights := flag.String("tenant-weights", "1", "comma-separated fabric weights, cycled across tenants")
	linkRate := flag.Float64("link-rate", 0, "shared link rate in bits/s for fabric mode (default sessions x -rate)")
	flag.Parse()

	if *smoke {
		if err := obsSmoke(); err != nil {
			log.Fatalf("sstpd -obssmoke: %v", err)
		}
		fmt.Println("sstpd -obssmoke: ok")
		return
	}

	reg := obs.New("sstpd")
	var ring *trace.Ring
	if *traceCap > 0 {
		ring = trace.NewSafe(*traceCap)
	}

	var alloc *profile.Allocator
	if *profPath != "" {
		f, err := os.Open(*profPath)
		if err != nil {
			log.Fatalf("profile: %v", err)
		}
		grid, err := profile.ReadGridJSON(f)
		f.Close()
		if err != nil {
			log.Fatalf("profile: %v", err)
		}
		alloc = &profile.Allocator{Consistency: grid, Target: *target}
		log.Printf("sstpd: profile-driven allocation on (target %.0f%%)", 100**target)
	}

	topts, err := transport.TLSOptions(*tlsCert, *tlsKey, *tlsCA, *tlsName)
	if err != nil {
		log.Fatal(err)
	}
	tr, conn, err := transport.Bind(*laddr, *transportName, topts)
	if err != nil {
		log.Fatalf("listen: %v", err)
	}
	destAddr, err := transport.Resolve(tr, *dest)
	if err != nil {
		log.Fatalf("resolve dest: %v", err)
	}
	mkConfig := func(id uint64) sstp.SenderConfig {
		return sstp.SenderConfig{
			Session:   id,
			SenderID:  uint64(os.Getpid()),
			Conn:      conn,
			Dest:      destAddr,
			TotalRate: *rate,
			TTL:       *ttl,
			Allocator: alloc,
			Obs:       reg,
			Trace:     ring,
			OnRateLimit: func(max float64) {
				log.Printf("allocator: publish rate exceeds μ_hot; max sustainable ≈ %.0f bps", max)
			},
		}
	}
	var s *sstp.Sender
	if *sessions > 1 {
		// Fabric mode: N tenant sessions share the one UDP socket,
		// arbitrated by the weighted fair-queueing send loop; stdin
		// commands and the demo workload drive the first tenant, the
		// rest idle at heartbeats. Per-tenant sstp_fabric_* series
		// land in the same registry as the sstp_* catalog, so
		// /stats.json shows both.
		weights, err := fabric.ParseWeights(*tenantWeights, *sessions)
		if err != nil {
			log.Fatal(err)
		}
		lr := *linkRate
		if lr <= 0 {
			lr = float64(*sessions) * *rate
		}
		f, err := fabric.New(fabric.Config{Conn: conn, LinkRate: lr, Obs: reg})
		if err != nil {
			log.Fatal(err)
		}
		for i := 0; i < *sessions; i++ {
			cfg := mkConfig(*session + uint64(i))
			cfg.Conn = nil // the fabric wires each tenant to its demux port
			ts, err := f.AddSender(cfg, weights[i])
			if err != nil {
				log.Fatal(err)
			}
			if i == 0 {
				s = ts
			}
		}
		f.Start()
		defer f.Close()
		log.Printf("sstpd: fabric of %d sessions (%d..%d) from %s to %s, link %.0f bps, weights %s",
			*sessions, *session, *session+uint64(*sessions-1), *laddr, *dest, lr, *tenantWeights)
	} else {
		var err error
		s, err = sstp.NewSender(mkConfig(*session))
		if err != nil {
			log.Fatal(err)
		}
		s.Start()
		defer s.Close()
		log.Printf("sstpd: announcing session %d from %s to %s at %.0f bps", *session, *laddr, *dest, *rate)
	}

	if *admin != "" {
		srv, addr, err := obs.ServeAdmin(*admin, reg, ring)
		if err != nil {
			log.Fatalf("admin: %v", err)
		}
		defer srv.Close()
		log.Printf("sstpd: admin endpoint on http://%s/", addr)
	}
	if *statsEvery > 0 {
		tick := time.NewTicker(*statsEvery)
		defer tick.Stop()
		go func() {
			for range tick.C {
				log.Println("sstpd:", reg.OneLine(
					"sstp_records_live", "sstp_publishes_total",
					"sstp_announcements_total", "sstp_tx_bits_total",
					"sstp_nacks_received_total", "sstp_send_rate_bps"))
			}
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)

	if *demo != "" {
		go runDemo(s, *demo, *seed)
		<-sig
		return
	}

	go func() {
		sc := bufio.NewScanner(os.Stdin)
		for sc.Scan() {
			handleLine(s, reg, sc.Text())
		}
	}()
	<-sig
}

func handleLine(s *sstp.Sender, reg *obs.Registry, line string) {
	fields := strings.Fields(line)
	if len(fields) == 0 {
		return
	}
	switch strings.ToUpper(fields[0]) {
	case "PUT":
		if len(fields) < 3 {
			fmt.Println("usage: PUT <key> <value> [ttl-seconds]")
			return
		}
		var life time.Duration
		if len(fields) >= 4 {
			if secs, err := strconv.ParseFloat(fields[3], 64); err == nil {
				life = time.Duration(secs * float64(time.Second))
			}
		}
		if err := s.Publish(fields[1], []byte(fields[2]), life); err != nil {
			fmt.Println("error:", err)
		}
	case "DEL":
		if len(fields) != 2 {
			fmt.Println("usage: DEL <key>")
			return
		}
		if !s.Delete(fields[1]) {
			fmt.Println("no such key")
		}
	case "STATS":
		fmt.Print(reg.RenderText())
	default:
		fmt.Println("commands: PUT, DEL, STATS")
	}
}

// runDemo replays a workload generator in real time.
func runDemo(s *sstp.Sender, kind string, seed int64) {
	rnd := xrand.New(seed)
	var gen workload.Generator
	const horizon = 24 * 3600
	switch kind {
	case "ticker":
		gen = workload.NewStockTicker(50, 5, horizon, rnd)
	case "routes":
		rt := workload.NewRoutingTable(64, 1, 0.1, horizon, rnd)
		for _, ev := range rt.InitialEvents() {
			apply(s, ev)
		}
		gen = rt
	case "sdr":
		gen = workload.NewSessionDirectory(0.2, 300, 0.01, horizon, rnd)
	default:
		log.Fatalf("unknown demo %q (want ticker, routes, or sdr)", kind)
	}
	start := time.Now()
	for {
		ev, ok := gen.Next()
		if !ok {
			return
		}
		wait := time.Duration(ev.At*float64(time.Second)) - time.Since(start)
		if wait > 0 {
			time.Sleep(wait)
		}
		apply(s, ev)
	}
}

func apply(s *sstp.Sender, ev workload.Event) {
	switch ev.Op {
	case workload.OpPut:
		life := time.Duration(ev.Lifetime * float64(time.Second))
		if err := s.Publish(ev.Key, ev.Value, life); err != nil {
			log.Printf("publish %s: %v", ev.Key, err)
		}
	case workload.OpDelete:
		s.Delete(ev.Key)
	}
}
