package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"softstate/internal/obs"
	"softstate/internal/sstp"
	"softstate/internal/trace"
)

// obsSmoke is the -obssmoke self-check: it wires a publisher and a
// receiver over an in-process memconn link, serves the receiver's
// admin endpoint on a loopback port, and scrapes it over real HTTP the
// way a monitoring stack would — /metrics must expose the consistency
// gauges, /stats.json must carry a non-empty "consistency" section,
// and /trace must show node-stamped lifecycle events. It returns an
// error (non-zero exit) on any missing piece, so `make obssmoke` and
// CI catch a regression in the observability surface itself.
func obsSmoke() error {
	const records = 16

	nw := sstp.NewMemNetwork(1)
	pc := nw.Endpoint("pub")
	nw.Join("grp", "pub")
	rc := nw.Endpoint("rcv")
	nw.Join("grp", "rcv")

	ring := trace.NewSafe(4096)
	reg := obs.New("obssmoke")
	pub, err := sstp.NewSender(sstp.SenderConfig{
		Session: 5, SenderID: 1, Conn: pc, Dest: sstp.MemAddr("grp"),
		TotalRate: 1_000_000, SummaryInterval: 100 * time.Millisecond,
		TTL: 30 * time.Second, Trace: ring, Seed: 1,
	})
	if err != nil {
		return err
	}
	defer pub.Close()
	rcv, err := sstp.NewReceiver(sstp.ReceiverConfig{
		Session: 5, ReceiverID: 100, Conn: rc,
		FeedbackDest: sstp.MemAddr("grp"),
		Obs:          reg, Trace: ring, Seed: 2,
	})
	if err != nil {
		return err
	}
	defer rcv.Close()

	est := rcv.Consistency()
	srv, addr, err := obs.ServeAdmin("127.0.0.1:0", reg, ring,
		obs.Section{Name: "consistency", Get: func() any { return est.Snapshot() }})
	if err != nil {
		return err
	}
	defer srv.Close()
	base := "http://" + addr.String()

	pub.Start()
	rcv.Start()
	for i := 0; i < records; i++ {
		if err := pub.Publish(fmt.Sprintf("smoke/%d", i), []byte("v"), 0); err != nil {
			return err
		}
	}

	// Converged and at least one digest-agreement sample taken.
	deadline := time.Now().Add(15 * time.Second)
	for {
		s := est.Snapshot()
		if rcv.Len() == records && rcv.RootDigest() == pub.RootDigest() &&
			s.AgreementSamples >= 1 && s.TrackedKeys == records {
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("no convergence: %d/%d records, %d agreement samples",
				rcv.Len(), records, s.AgreementSamples)
		}
		time.Sleep(25 * time.Millisecond)
	}

	metrics, err := get(base + "/metrics")
	if err != nil {
		return err
	}
	for _, name := range []string{
		"sstp_consistency_estimate", "sstp_tvis_seconds",
		"sstp_staleness_age_seconds", "sstp_tvis_window_seconds",
	} {
		if !strings.Contains(metrics, name) {
			return fmt.Errorf("/metrics missing %s", name)
		}
	}

	statsDoc, err := get(base + "/stats.json")
	if err != nil {
		return err
	}
	var stats struct {
		Consistency struct {
			TrackedKeys      int     `json:"tracked_keys"`
			Consistency      float64 `json:"consistency_estimate"`
			AgreementSamples uint64  `json:"agreement_samples"`
		} `json:"consistency"`
	}
	if err := json.Unmarshal([]byte(statsDoc), &stats); err != nil {
		return fmt.Errorf("/stats.json: %w", err)
	}
	c := stats.Consistency
	if c.TrackedKeys == 0 || c.AgreementSamples == 0 {
		return fmt.Errorf("/stats.json consistency section empty: %+v", c)
	}
	if c.Consistency <= 0 || c.Consistency > 1 {
		return fmt.Errorf("consistency estimate %v out of (0,1]", c.Consistency)
	}

	traceDoc, err := get(base + "/trace?key=smoke/0")
	if err != nil {
		return err
	}
	for _, kind := range []string{"ARRIVE", "TX", "DELIVER"} {
		if !strings.Contains(traceDoc, `"kind":"`+kind+`"`) {
			return fmt.Errorf("/trace missing lifecycle kind %s for smoke/0", kind)
		}
	}
	if !strings.Contains(traceDoc, `"node":`) {
		return fmt.Errorf("/trace events carry no node stamps")
	}
	return nil
}

func get(url string) (string, error) {
	resp, err := http.Get(url)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("%s: %s", url, resp.Status)
	}
	return string(b), nil
}
