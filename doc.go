// Package softstate is a from-scratch Go reproduction of "A Model,
// Analysis, and Protocol Framework for Soft State-based
// Communication" (Raman & McCanne, SIGCOMM 1999): a formal model of
// announce/listen soft-state communication with a probabilistic
// consistency metric, queueing analysis and a deterministic simulator
// for the open-loop, two-queue, and receiver-feedback protocol
// variants, and SSTP — a soft-state transport protocol with
// hierarchical namespace repair and profile-driven bandwidth
// allocation — running over UDP.
//
// See README.md for the layout, DESIGN.md for the system inventory,
// and EXPERIMENTS.md for the paper-versus-measured record of every
// table and figure.
package softstate
