// Package workload generates the application workloads the paper
// motivates soft-state transport with: MBone session-directory
// announcements (sdr/SAP), routing-table advertisements (RIP/BGP-like
// periodically changing state), stock-quote dissemination
// (PointCast-style information feeds), and the plain Poisson
// record-arrival process of the analytic model.
//
// A workload is a deterministic stream of timestamped table operations
// that examples and experiments replay into a publisher.
package workload

import (
	"fmt"
	"math"

	"softstate/internal/xrand"
)

// Op is a table operation kind.
type Op int

// Operation kinds.
const (
	OpPut Op = iota
	OpDelete
)

// Event is one timestamped operation on the publisher's table.
type Event struct {
	At       float64 // seconds from stream start
	Op       Op
	Key      string
	Value    []byte
	Lifetime float64 // record lifetime in seconds (0 = immortal)
}

// Generator produces a time-ordered stream of events. Next returns
// ok=false when the stream is exhausted.
type Generator interface {
	Next() (Event, bool)
}

// Drain collects up to max events from g (all of them if max <= 0).
func Drain(g Generator, max int) []Event {
	var out []Event
	for {
		ev, ok := g.Next()
		if !ok {
			return out
		}
		out = append(out, ev)
		if max > 0 && len(out) >= max {
			return out
		}
	}
}

// --- Poisson ---

// Poisson emits new unique records as a Poisson process, each with an
// exponential lifetime — the workload of the paper's model (§2).
type Poisson struct {
	rnd       *xrand.Rand
	rate      float64 // records per second
	meanLife  float64 // mean lifetime (0 = immortal records)
	fixedLife bool
	valueLen  int
	horizon   float64
	now       float64
	seq       int
}

// NewPoisson returns a Poisson workload emitting `rate` records/s with
// the given mean lifetime and value size until the horizon.
func NewPoisson(rate, meanLife float64, valueLen int, horizon float64, rnd *xrand.Rand) *Poisson {
	if rate <= 0 || horizon <= 0 || valueLen < 0 || meanLife < 0 {
		panic(fmt.Sprintf("workload: bad Poisson params rate=%v life=%v len=%d horizon=%v",
			rate, meanLife, valueLen, horizon))
	}
	if rnd == nil {
		panic("workload: nil rand")
	}
	return &Poisson{rnd: rnd, rate: rate, meanLife: meanLife, valueLen: valueLen, horizon: horizon}
}

// Next implements Generator.
func (p *Poisson) Next() (Event, bool) {
	p.now += p.rnd.Exp(p.rate)
	if p.now > p.horizon {
		return Event{}, false
	}
	p.seq++
	life := p.meanLife
	if life > 0 && !p.fixedLife {
		life = p.rnd.Exp(1 / p.meanLife)
	}
	val := make([]byte, p.valueLen)
	for i := range val {
		val[i] = byte('a' + p.rnd.Intn(26))
	}
	return Event{
		At:       p.now,
		Op:       OpPut,
		Key:      fmt.Sprintf("records/r%08d", p.seq),
		Value:    val,
		Lifetime: life,
	}, true
}

// --- Session directory ---

// SessionDirectory models sdr-style MBone conference announcements:
// sessions are created with SDP-like descriptions and bounded
// durations; while live they are occasionally re-described (tool or
// address changes).
type SessionDirectory struct {
	rnd         *xrand.Rand
	newRate     float64 // new sessions per second
	meanLife    float64 // mean session duration
	updateRate  float64 // description changes per live session per second
	horizon     float64
	now         float64
	seq         int
	live        []sdrSession
	pendingUpds []Event
}

type sdrSession struct {
	key  string
	name string
	ends float64
}

// NewSessionDirectory returns an sdr-like workload.
func NewSessionDirectory(newRate, meanLife, updateRate, horizon float64, rnd *xrand.Rand) *SessionDirectory {
	if newRate <= 0 || meanLife <= 0 || updateRate < 0 || horizon <= 0 {
		panic("workload: bad session-directory params")
	}
	return &SessionDirectory{rnd: rnd, newRate: newRate, meanLife: meanLife, updateRate: updateRate, horizon: horizon}
}

var sdrTools = []string{"vat", "vic", "wb", "nte", "rat"}

func (s *SessionDirectory) describe(name string, ver int) []byte {
	tool := sdrTools[s.rnd.Intn(len(sdrTools))]
	addr := fmt.Sprintf("224.2.%d.%d/%d", s.rnd.Intn(256), s.rnd.Intn(256), 16384+2*s.rnd.Intn(8192))
	return []byte(fmt.Sprintf("v=0\ns=%s\nm=%s %s\na=rev:%d\n", name, tool, addr, ver))
}

// Next implements Generator.
func (s *SessionDirectory) Next() (Event, bool) {
	if len(s.pendingUpds) > 0 {
		ev := s.pendingUpds[0]
		s.pendingUpds = s.pendingUpds[1:]
		return ev, true
	}
	for {
		dt := s.rnd.Exp(s.newRate)
		next := s.now + dt
		if next > s.horizon {
			return Event{}, false
		}
		// Emit updates for live sessions that fall before the next
		// session creation (thinned per-session update processes).
		if s.updateRate > 0 && len(s.live) > 0 {
			mean := s.updateRate * float64(len(s.live)) * dt
			n := s.rnd.Poisson(mean)
			for i := 0; i < n && i < 16; i++ {
				sess := s.live[s.rnd.Intn(len(s.live))]
				at := s.now + s.rnd.Uniform(0, dt)
				if at < sess.ends && at <= s.horizon {
					s.pendingUpds = append(s.pendingUpds, Event{
						At: at, Op: OpPut, Key: sess.key,
						Value:    s.describe(sess.name, i+2),
						Lifetime: sess.ends - at,
					})
				}
			}
		}
		s.now = next
		// Retire ended sessions from the live list.
		alive := s.live[:0]
		for _, l := range s.live {
			if l.ends > s.now {
				alive = append(alive, l)
			}
		}
		s.live = alive

		s.seq++
		name := fmt.Sprintf("conf-%04d", s.seq)
		key := "sessions/" + name
		life := s.rnd.Exp(1 / s.meanLife)
		s.live = append(s.live, sdrSession{key: key, name: name, ends: s.now + life})
		ev := Event{
			At: s.now, Op: OpPut, Key: key,
			Value:    s.describe(name, 1),
			Lifetime: life,
		}
		if len(s.pendingUpds) > 0 && s.pendingUpds[0].At < ev.At {
			s.pendingUpds = append(s.pendingUpds, ev)
			first := s.pendingUpds[0]
			s.pendingUpds = s.pendingUpds[1:]
			return first, true
		}
		return ev, true
	}
}

// --- Routing table ---

// RoutingTable models RIP-like route advertisements: a fixed set of
// prefixes whose metrics drift, with occasional withdrawals (delete)
// and re-announcements.
type RoutingTable struct {
	rnd          *xrand.Rand
	prefixes     []string
	metrics      []int
	withdrawn    []bool
	changeRate   float64 // metric changes per second across the table
	withdrawProb float64 // probability a change is a withdrawal/restore
	horizon      float64
	now          float64
}

// NewRoutingTable returns a routing workload over n prefixes.
func NewRoutingTable(n int, changeRate, withdrawProb, horizon float64, rnd *xrand.Rand) *RoutingTable {
	if n <= 0 || changeRate <= 0 || withdrawProb < 0 || withdrawProb > 1 || horizon <= 0 {
		panic("workload: bad routing params")
	}
	rt := &RoutingTable{
		rnd: rnd, changeRate: changeRate, withdrawProb: withdrawProb, horizon: horizon,
		metrics: make([]int, n), withdrawn: make([]bool, n),
	}
	for i := 0; i < n; i++ {
		rt.prefixes = append(rt.prefixes, fmt.Sprintf("routes/10.%d.%d.0-24", i/256, i%256))
		rt.metrics[i] = 1 + rnd.Intn(15)
	}
	return rt
}

// Prefixes returns the full prefix key set (for seeding the table).
func (rt *RoutingTable) Prefixes() []string {
	out := make([]string, len(rt.prefixes))
	copy(out, rt.prefixes)
	return out
}

// InitialEvents returns Put events at t=0 announcing every prefix.
func (rt *RoutingTable) InitialEvents() []Event {
	out := make([]Event, 0, len(rt.prefixes))
	for i, p := range rt.prefixes {
		out = append(out, Event{At: 0, Op: OpPut, Key: p, Value: rt.value(i)})
	}
	return out
}

func (rt *RoutingTable) value(i int) []byte {
	return []byte(fmt.Sprintf("metric=%d nexthop=192.168.0.%d", rt.metrics[i], 1+i%250))
}

// Next implements Generator.
func (rt *RoutingTable) Next() (Event, bool) {
	rt.now += rt.rnd.Exp(rt.changeRate)
	if rt.now > rt.horizon {
		return Event{}, false
	}
	i := rt.rnd.Intn(len(rt.prefixes))
	if rt.rnd.Bernoulli(rt.withdrawProb) {
		if rt.withdrawn[i] {
			rt.withdrawn[i] = false
			rt.metrics[i] = 1 + rt.rnd.Intn(15)
			return Event{At: rt.now, Op: OpPut, Key: rt.prefixes[i], Value: rt.value(i)}, true
		}
		rt.withdrawn[i] = true
		return Event{At: rt.now, Op: OpDelete, Key: rt.prefixes[i]}, true
	}
	if rt.withdrawn[i] {
		rt.withdrawn[i] = false
	}
	delta := rt.rnd.Intn(3) - 1
	rt.metrics[i] += delta
	if rt.metrics[i] < 1 {
		rt.metrics[i] = 1
	}
	if rt.metrics[i] > 15 {
		rt.metrics[i] = 15
	}
	return Event{At: rt.now, Op: OpPut, Key: rt.prefixes[i], Value: rt.value(i)}, true
}

// --- Stock ticker ---

// StockTicker models a quote-dissemination feed: a fixed symbol set
// whose prices follow geometric random walks; update frequency is
// Zipf-skewed across symbols (a few hot names dominate).
type StockTicker struct {
	rnd     *xrand.Rand
	symbols []string
	prices  []float64
	zipf    func() int
	rate    float64
	horizon float64
	now     float64
}

// NewStockTicker returns a ticker over n symbols updating at `rate`
// quotes per second until the horizon.
func NewStockTicker(n int, rate, horizon float64, rnd *xrand.Rand) *StockTicker {
	if n <= 0 || rate <= 0 || horizon <= 0 {
		panic("workload: bad ticker params")
	}
	st := &StockTicker{rnd: rnd, rate: rate, horizon: horizon}
	for i := 0; i < n; i++ {
		st.symbols = append(st.symbols, fmt.Sprintf("quotes/SYM%03d", i))
		st.prices = append(st.prices, 20+rnd.Float64()*480)
	}
	z := rnd.Zipf(1.2, uint64(n))
	st.zipf = func() int { return int(z.Uint64()) % n }
	return st
}

// Symbols returns the symbol key set.
func (st *StockTicker) Symbols() []string {
	out := make([]string, len(st.symbols))
	copy(out, st.symbols)
	return out
}

// Next implements Generator.
func (st *StockTicker) Next() (Event, bool) {
	st.now += st.rnd.Exp(st.rate)
	if st.now > st.horizon {
		return Event{}, false
	}
	i := st.zipf()
	st.prices[i] *= math.Exp(st.rnd.Normal(0, 0.002))
	if st.prices[i] < 0.01 {
		st.prices[i] = 0.01
	}
	return Event{
		At: st.now, Op: OpPut, Key: st.symbols[i],
		Value: []byte(fmt.Sprintf("price=%.2f", st.prices[i])),
	}, true
}
