package workload

import (
	"math"
	"sort"
	"strings"
	"testing"

	"softstate/internal/xrand"
)

func ordered(evs []Event) bool {
	return sort.SliceIsSorted(evs, func(i, j int) bool { return evs[i].At < evs[j].At })
}

func TestPoissonRateAndHorizon(t *testing.T) {
	g := NewPoisson(10, 30, 64, 1000, xrand.New(1))
	evs := Drain(g, 0)
	// Expect ~10000 events; allow 5% slack.
	if math.Abs(float64(len(evs))-10000) > 500 {
		t.Errorf("got %d events, want ~10000", len(evs))
	}
	if !ordered(evs) {
		t.Error("events out of order")
	}
	for _, ev := range evs {
		if ev.At <= 0 || ev.At > 1000 {
			t.Fatalf("event at %v outside horizon", ev.At)
		}
		if ev.Op != OpPut || len(ev.Value) != 64 || ev.Lifetime <= 0 {
			t.Fatalf("bad event: %+v", ev)
		}
		if !strings.HasPrefix(ev.Key, "records/") {
			t.Fatalf("bad key %q", ev.Key)
		}
	}
}

func TestPoissonUniqueKeys(t *testing.T) {
	evs := Drain(NewPoisson(50, 10, 8, 100, xrand.New(2)), 0)
	seen := map[string]bool{}
	for _, ev := range evs {
		if seen[ev.Key] {
			t.Fatalf("duplicate key %q", ev.Key)
		}
		seen[ev.Key] = true
	}
}

func TestPoissonLifetimeMean(t *testing.T) {
	evs := Drain(NewPoisson(100, 25, 0, 500, xrand.New(3)), 0)
	sum := 0.0
	for _, ev := range evs {
		sum += ev.Lifetime
	}
	mean := sum / float64(len(evs))
	if math.Abs(mean-25)/25 > 0.05 {
		t.Errorf("mean lifetime %v, want ~25", mean)
	}
}

func TestPoissonDeterminism(t *testing.T) {
	a := Drain(NewPoisson(20, 10, 16, 100, xrand.New(7)), 0)
	b := Drain(NewPoisson(20, 10, 16, 100, xrand.New(7)), 0)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].At != b[i].At || a[i].Key != b[i].Key || string(a[i].Value) != string(b[i].Value) {
			t.Fatalf("event %d differs", i)
		}
	}
}

func TestPoissonValidation(t *testing.T) {
	for _, fn := range []func(){
		func() { NewPoisson(0, 1, 1, 1, xrand.New(1)) },
		func() { NewPoisson(1, 1, 1, 0, xrand.New(1)) },
		func() { NewPoisson(1, -1, 1, 1, xrand.New(1)) },
		func() { NewPoisson(1, 1, 1, 1, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("bad Poisson accepted")
				}
			}()
			fn()
		}()
	}
}

func TestSessionDirectoryShape(t *testing.T) {
	g := NewSessionDirectory(0.05, 600, 0.002, 20000, xrand.New(4))
	evs := Drain(g, 0)
	if len(evs) < 500 {
		t.Fatalf("only %d events", len(evs))
	}
	creations, updates := 0, 0
	seen := map[string]bool{}
	for _, ev := range evs {
		if ev.Op != OpPut {
			t.Fatalf("sdr emitted %v", ev.Op)
		}
		if !strings.HasPrefix(ev.Key, "sessions/conf-") {
			t.Fatalf("bad key %q", ev.Key)
		}
		if !strings.Contains(string(ev.Value), "v=0") || !strings.Contains(string(ev.Value), "m=") {
			t.Fatalf("value not SDP-like: %q", ev.Value)
		}
		if ev.Lifetime <= 0 {
			t.Fatalf("non-positive lifetime: %+v", ev)
		}
		if seen[ev.Key] {
			updates++
		} else {
			seen[ev.Key] = true
			creations++
		}
	}
	if creations < 800 || creations > 1200 {
		t.Errorf("creations = %d, want ~1000", creations)
	}
	if updates == 0 {
		t.Error("no description updates generated")
	}
}

func TestRoutingTableShape(t *testing.T) {
	rt := NewRoutingTable(64, 2, 0.2, 2000, xrand.New(5))
	init := rt.InitialEvents()
	if len(init) != 64 {
		t.Fatalf("initial events = %d", len(init))
	}
	for _, ev := range init {
		if ev.Op != OpPut || !strings.Contains(string(ev.Value), "metric=") {
			t.Fatalf("bad initial event %+v", ev)
		}
	}
	evs := Drain(rt, 0)
	if math.Abs(float64(len(evs))-4000) > 300 {
		t.Errorf("got %d change events, want ~4000", len(evs))
	}
	dels, puts := 0, 0
	prefixes := map[string]bool{}
	for _, p := range rt.Prefixes() {
		prefixes[p] = true
	}
	withdrawn := map[string]bool{}
	for _, ev := range evs {
		if !prefixes[ev.Key] {
			t.Fatalf("unknown prefix %q", ev.Key)
		}
		switch ev.Op {
		case OpDelete:
			if withdrawn[ev.Key] {
				t.Fatal("double withdrawal without re-announce")
			}
			withdrawn[ev.Key] = true
			dels++
		case OpPut:
			withdrawn[ev.Key] = false
			puts++
			m := string(ev.Value)
			if !strings.Contains(m, "metric=") {
				t.Fatalf("bad value %q", m)
			}
		}
	}
	if dels == 0 {
		t.Error("no withdrawals generated")
	}
	if puts <= dels {
		t.Errorf("puts=%d dels=%d", puts, dels)
	}
}

func TestRoutingMetricsBounded(t *testing.T) {
	rt := NewRoutingTable(8, 10, 0, 2000, xrand.New(6))
	for _, ev := range Drain(rt, 0) {
		m, ok := parseMetric(string(ev.Value))
		if !ok {
			t.Fatalf("unparseable value %q", ev.Value)
		}
		if m < 1 || m > 15 {
			t.Fatalf("metric %d out of RIP range", m)
		}
	}
}

// parseMetric extracts the metric=N field.
func parseMetric(s string) (int, bool) {
	idx := strings.Index(s, "metric=")
	if idx < 0 {
		return 0, false
	}
	n := 0
	i := idx + len("metric=")
	for i < len(s) && s[i] >= '0' && s[i] <= '9' {
		n = n*10 + int(s[i]-'0')
		i++
	}
	return n, true
}

func TestStockTickerZipfSkew(t *testing.T) {
	st := NewStockTicker(100, 50, 1000, xrand.New(8))
	counts := map[string]int{}
	for _, ev := range Drain(st, 0) {
		counts[ev.Key]++
		if !strings.HasPrefix(string(ev.Value), "price=") {
			t.Fatalf("bad quote %q", ev.Value)
		}
	}
	// Hot symbols should dominate cold ones.
	var freq []int
	for _, c := range counts {
		freq = append(freq, c)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(freq)))
	if len(freq) < 10 || freq[0] < 5*freq[len(freq)-1] {
		t.Errorf("ticker not Zipf-skewed: top=%d bottom=%d", freq[0], freq[len(freq)-1])
	}
}

func TestStockTickerPricesPositive(t *testing.T) {
	st := NewStockTicker(10, 100, 500, xrand.New(9))
	for _, ev := range Drain(st, 0) {
		s := strings.TrimPrefix(string(ev.Value), "price=")
		if strings.HasPrefix(s, "-") || s == "0.00" {
			t.Fatalf("non-positive price %q", ev.Value)
		}
	}
}

func TestDrainMax(t *testing.T) {
	g := NewPoisson(100, 10, 4, 1000, xrand.New(10))
	evs := Drain(g, 5)
	if len(evs) != 5 {
		t.Errorf("Drain(5) = %d events", len(evs))
	}
}
