package staleness

import (
	"fmt"
	"sync"
	"testing"
)

// TestTrackerConcurrentConfirmForget drives the Tracker the way a
// goodbye-flush cascade does in the live stack: receiver dispatchers
// keep confirming keys while the flush path forgets whole sources, and
// the stats endpoint reads quantiles throughout. Run under -race (the
// `make check` tier always does), this pins the Tracker's lock
// discipline; without the lock it also fails fast on the concurrent
// map mutation.
func TestTrackerConcurrentConfirmForget(t *testing.T) {
	tr := NewTracker()
	const (
		sources = 4
		keys    = 64
		rounds  = 200
	)
	var wg sync.WaitGroup

	// Confirm loops: one per source, re-confirming its key set.
	for s := 0; s < sources; s++ {
		wg.Add(1)
		go func(src uint64) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				for k := 0; k < keys; k++ {
					tr.ConfirmAt(src, fmt.Sprintf("key/%03d", k), float64(r))
				}
			}
		}(uint64(s))
	}

	// Flush cascade: repeatedly forget every key of every source, the
	// access pattern of FlushOnGoodbye tearing a relay tree down while
	// upstream refreshes are still in flight.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for r := 0; r < rounds; r++ {
			for s := 0; s < sources; s++ {
				for k := 0; k < keys; k++ {
					tr.Forget(uint64(s), fmt.Sprintf("key/%03d", k))
				}
			}
		}
	}()

	// Stats reader: Len and AgesAt poll concurrently, like the admin
	// endpoint during the cascade.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for r := 0; r < rounds; r++ {
			_ = tr.Len()
			_ = tr.AgesAt(float64(r) + 0.5)
		}
	}()

	wg.Wait()

	// Deterministic end state: one final confirm must be visible, and a
	// final forget must empty the tracker again.
	tr.ConfirmAt(1, "key/000", 1000)
	if got := tr.Len(); got != 1 {
		t.Fatalf("Len after final confirm = %d, want 1", got)
	}
	q := tr.AgesAt(1001)
	if q.Count != 1 || q.Max != 1 {
		t.Fatalf("AgesAt = %+v, want count 1 max 1", q)
	}
	tr.Forget(1, "key/000")
	if got := tr.Len(); got != 0 {
		t.Fatalf("Len after final forget = %d, want 0", got)
	}
}
