// Package staleness provides online consistency estimation for the
// live SSTP stack: sliding-window quantiles of visibility lag
// ("t-visibility" in the PBS sense — how long after an origin publish
// a replica saw the write), per-key age-of-last-confirmed-version
// tracking, and a windowed E[c(t)] estimate derived from
// namespace-digest agreement with the upstream publisher.
//
// The paper (section 6) derives consistency profiles E[c(t)] offline
// from the model parameters; this package measures the same quantities
// online so a controller can close the loop (ROADMAP item 3).
//
// All types are race-clean (mutex-guarded) and bounded-memory: window
// state lives in a fixed ring of time slices that decay as the window
// advances, so a long-running receiver never accumulates unbounded
// sample history. Like the instruments in internal/obs, every method
// is nil-safe — a nil *Window, *Tracker, *Agreement, or *Estimator is
// a no-op — so callers can wire estimation unconditionally.
//
// Methods come in explicit-time (ObserveAt, QuantileAt, ...) and
// wall-clock convenience forms; explicit time keeps tests
// deterministic and lets the simulator reuse the estimators.
package staleness

import (
	"math"
	"sort"
	"sync"
	"time"
)

// DefaultWindow is the horizon over which windowed estimates decay.
const DefaultWindow = 30 * time.Second

// defaultSlices is the number of time slices a window is divided
// into; finer slicing smooths decay at slightly more memory.
const defaultSlices = 15

// defaultBounds are the histogram bucket upper bounds (seconds) used
// by Window: exponential from 1ms to ~16s, then +Inf. Visibility lags
// beyond that are operationally "very stale" and land in the tail.
func defaultBounds() []float64 {
	bounds := make([]float64, 0, 15)
	for b := 0.001; b < 17; b *= 2 {
		bounds = append(bounds, b)
	}
	return bounds
}

// Quantiles is a point-in-time summary of a windowed distribution.
// Field order is the JSON rendering order in /stats.json.
type Quantiles struct {
	Count uint64  `json:"count"`
	Mean  float64 `json:"mean"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
	Max   float64 `json:"max"`
}

// windowSlice is one time slice of a Window: a bucketed histogram of
// the samples observed during that slice.
type windowSlice struct {
	epoch  int64 // slice index since t=0; -1 = never used
	counts []uint64
	count  uint64
	sum    float64
	max    float64
}

// Window is a sliding-window quantile estimator: a ring of
// defaultSlices bucketed histograms, each covering window/defaultSlices
// seconds. Observations older than the window fall out when their
// slice is reused, so memory is O(slices × buckets) regardless of
// sample rate. Quantile attribution matches internal/obs.Histogram:
// the reported value is the upper bound of the bucket containing the
// requested rank, so estimates are conservative (never understate).
type Window struct {
	mu     sync.Mutex
	bounds []float64 // bucket upper bounds; len(counts) == len(bounds)+1
	width  float64   // seconds covered by one slice
	slices []windowSlice
}

// NewWindow returns a sliding-window estimator covering roughly the
// given horizon (snapped up to a whole number of slices).
func NewWindow(window time.Duration) *Window {
	if window <= 0 {
		window = DefaultWindow
	}
	bounds := defaultBounds()
	w := &Window{
		bounds: bounds,
		width:  window.Seconds() / defaultSlices,
		slices: make([]windowSlice, defaultSlices),
	}
	for i := range w.slices {
		w.slices[i].epoch = -1
		w.slices[i].counts = make([]uint64, len(bounds)+1)
	}
	return w
}

// ObserveAt records a sample (seconds) at explicit time now.
func (w *Window) ObserveAt(now, v float64) {
	if w == nil {
		return
	}
	if v < 0 || math.IsNaN(v) {
		v = 0
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	s := w.sliceFor(now)
	i := sort.SearchFloat64s(w.bounds, v)
	s.counts[i]++
	s.count++
	s.sum += v
	if v > s.max {
		s.max = v
	}
}

// Observe records a sample at the current wall-clock time.
func (w *Window) Observe(v float64) { w.ObserveAt(wallSeconds(), v) }

// sliceFor returns the slice covering time now, resetting it if it
// last covered an older epoch. Caller holds the lock.
func (w *Window) sliceFor(now float64) *windowSlice {
	epoch := int64(now / w.width)
	s := &w.slices[int(epoch%int64(len(w.slices)))]
	if s.epoch != epoch {
		s.epoch = epoch
		for i := range s.counts {
			s.counts[i] = 0
		}
		s.count, s.sum, s.max = 0, 0, 0
	}
	return s
}

// SummaryAt returns the windowed quantile summary as of time now.
func (w *Window) SummaryAt(now float64) Quantiles {
	if w == nil {
		return Quantiles{}
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	minEpoch := int64(now/w.width) - int64(len(w.slices)) + 1
	var q Quantiles
	agg := make([]uint64, len(w.bounds)+1)
	for i := range w.slices {
		s := &w.slices[i]
		if s.epoch < minEpoch || s.count == 0 {
			continue
		}
		for j, c := range s.counts {
			agg[j] += c
		}
		q.Count += s.count
		q.Mean += s.sum // holds the sum until divided below
		if s.max > q.Max {
			q.Max = s.max
		}
	}
	if q.Count == 0 {
		return Quantiles{}
	}
	q.Mean /= float64(q.Count)
	q.P50 = w.rank(agg, q.Count, 0.50)
	q.P95 = w.rank(agg, q.Count, 0.95)
	q.P99 = w.rank(agg, q.Count, 0.99)
	return q
}

// Summary returns the windowed summary as of the current wall clock.
func (w *Window) Summary() Quantiles { return w.SummaryAt(wallSeconds()) }

// rank returns the value at quantile q given aggregated bucket counts,
// attributing each bucket's samples to its upper bound (the overflow
// bucket reports the last finite bound).
func (w *Window) rank(agg []uint64, total uint64, q float64) float64 {
	target := uint64(math.Ceil(q * float64(total)))
	if target == 0 {
		target = 1
	}
	var cum uint64
	for i, c := range agg {
		cum += c
		if cum >= target {
			if i < len(w.bounds) {
				return w.bounds[i]
			}
			return w.bounds[len(w.bounds)-1]
		}
	}
	return w.bounds[len(w.bounds)-1]
}

// Tracker records, per (source, key), the time the local replica last
// confirmed it holds the source's current version — either by
// delivering a new value or by hearing a refresh announcement for the
// version already held. The age distribution over tracked keys is the
// per-key staleness exposed in /stats.json.
type Tracker struct {
	mu   sync.Mutex
	last map[uint64]map[string]float64 // source -> key -> last confirm time
}

// NewTracker returns an empty tracker.
func NewTracker() *Tracker {
	return &Tracker{last: make(map[uint64]map[string]float64)}
}

// ConfirmAt records that key from source was confirmed current at now.
func (t *Tracker) ConfirmAt(source uint64, key string, now float64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	m := t.last[source]
	if m == nil {
		m = make(map[string]float64)
		t.last[source] = m
	}
	m[key] = now
}

// Forget drops a key (on replica expiry, tombstone, or goodbye flush)
// so dead records stop contributing to the staleness distribution.
func (t *Tracker) Forget(source uint64, key string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if m := t.last[source]; m != nil {
		delete(m, key)
		if len(m) == 0 {
			delete(t.last, source)
		}
	}
}

// Len returns the number of tracked keys across all sources.
func (t *Tracker) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	n := 0
	for _, m := range t.last {
		n += len(m)
	}
	return n
}

// AgesAt returns the exact staleness-age quantiles (now minus last
// confirmation) over all tracked keys. Cost is O(n log n) in tracked
// keys; callers poll at stats cadence, not per packet.
func (t *Tracker) AgesAt(now float64) Quantiles {
	if t == nil {
		return Quantiles{}
	}
	t.mu.Lock()
	ages := make([]float64, 0, 64)
	var sum float64
	for _, m := range t.last {
		for _, when := range m {
			age := now - when
			if age < 0 {
				age = 0
			}
			ages = append(ages, age)
			sum += age
		}
	}
	t.mu.Unlock()
	if len(ages) == 0 {
		return Quantiles{}
	}
	sort.Float64s(ages)
	at := func(q float64) float64 {
		i := int(math.Ceil(q*float64(len(ages)))) - 1
		if i < 0 {
			i = 0
		}
		return ages[i]
	}
	return Quantiles{
		Count: uint64(len(ages)),
		Mean:  sum / float64(len(ages)),
		P50:   at(0.50),
		P95:   at(0.95),
		P99:   at(0.99),
		Max:   ages[len(ages)-1],
	}
}

// agreeSlice is one time slice of agreement samples.
type agreeSlice struct {
	epoch int64
	agree uint64
	total uint64
}

// Agreement estimates E[c(t)] online from digest-agreement samples:
// each time the receiver hears the publisher's root namespace digest
// it samples agree=true when the replica's digest matches (the replica
// is provably identical to the live set) and false otherwise. The
// windowed agreement fraction is an unbiased estimate of the
// probability a random observation finds the replica consistent —
// the paper's E[c(t)] under the announcement-sampled measure.
type Agreement struct {
	mu     sync.Mutex
	width  float64
	slices []agreeSlice
}

// NewAgreement returns a windowed agreement estimator.
func NewAgreement(window time.Duration) *Agreement {
	if window <= 0 {
		window = DefaultWindow
	}
	a := &Agreement{
		width:  window.Seconds() / defaultSlices,
		slices: make([]agreeSlice, defaultSlices),
	}
	for i := range a.slices {
		a.slices[i].epoch = -1
	}
	return a
}

// SampleAt records one agreement observation at explicit time now.
func (a *Agreement) SampleAt(now float64, agree bool) {
	if a == nil {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	epoch := int64(now / a.width)
	s := &a.slices[int(epoch%int64(len(a.slices)))]
	if s.epoch != epoch {
		s.epoch, s.agree, s.total = epoch, 0, 0
	}
	s.total++
	if agree {
		s.agree++
	}
}

// Sample records one agreement observation at the current wall clock.
func (a *Agreement) Sample(agree bool) { a.SampleAt(wallSeconds(), agree) }

// EstimateAt returns the windowed agreement fraction as of now and the
// number of samples it is based on. With no samples in the window the
// estimate is reported as 1 (vacuously consistent) with samples == 0
// so callers can distinguish "measured perfect" from "unmeasured".
func (a *Agreement) EstimateAt(now float64) (estimate float64, samples uint64) {
	if a == nil {
		return 1, 0
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	minEpoch := int64(now/a.width) - int64(len(a.slices)) + 1
	var agree, total uint64
	for i := range a.slices {
		s := &a.slices[i]
		if s.epoch < minEpoch {
			continue
		}
		agree += s.agree
		total += s.total
	}
	if total == 0 {
		return 1, 0
	}
	return float64(agree) / float64(total), total
}

// Snapshot is the consistency section served under /stats.json.
// Field order here is the rendered JSON order.
type Snapshot struct {
	WindowSeconds    float64   `json:"window_seconds"`
	TVis             Quantiles `json:"t_visibility_seconds"`
	Staleness        Quantiles `json:"staleness_age_seconds"`
	TrackedKeys      int       `json:"tracked_keys"`
	Consistency      float64   `json:"consistency_estimate"`
	AgreementSamples uint64    `json:"agreement_samples"`
}

// Estimator bundles the three consistency estimators a receiver
// maintains. Like obs.Registry it may be shared by several receivers
// (e.g. every leaf of a load-test tree) — all methods are race-clean.
type Estimator struct {
	window time.Duration
	tvis   *Window
	ages   *Tracker
	agree  *Agreement
}

// NewEstimator returns an estimator with the given decay window
// (DefaultWindow when <= 0).
func NewEstimator(window time.Duration) *Estimator {
	if window <= 0 {
		window = DefaultWindow
	}
	return &Estimator{
		window: window,
		tvis:   NewWindow(window),
		ages:   NewTracker(),
		agree:  NewAgreement(window),
	}
}

// ObserveTVisAt records one visibility-lag sample (seconds from origin
// publish to local delivery) at explicit time now.
func (e *Estimator) ObserveTVisAt(now, lag float64) {
	if e == nil {
		return
	}
	e.tvis.ObserveAt(now, lag)
}

// ConfirmAt records that key from source was confirmed current at now.
func (e *Estimator) ConfirmAt(source uint64, key string, now float64) {
	if e == nil {
		return
	}
	e.ages.ConfirmAt(source, key, now)
}

// Forget drops a key from staleness tracking.
func (e *Estimator) Forget(source uint64, key string) {
	if e == nil {
		return
	}
	e.ages.Forget(source, key)
}

// SampleAgreementAt records one digest-agreement observation.
func (e *Estimator) SampleAgreementAt(now float64, agree bool) {
	if e == nil {
		return
	}
	e.agree.SampleAt(now, agree)
}

// SnapshotAt returns the consistency section as of explicit time now.
func (e *Estimator) SnapshotAt(now float64) Snapshot {
	if e == nil {
		return Snapshot{Consistency: 1}
	}
	est, samples := e.agree.EstimateAt(now)
	return Snapshot{
		WindowSeconds:    e.window.Seconds(),
		TVis:             e.tvis.SummaryAt(now),
		Staleness:        e.ages.AgesAt(now),
		TrackedKeys:      e.ages.Len(),
		Consistency:      est,
		AgreementSamples: samples,
	}
}

// Snapshot returns the consistency section at the current wall clock.
func (e *Estimator) Snapshot() Snapshot { return e.SnapshotAt(wallSeconds()) }

// wallSeconds is the wall clock as float seconds, matching the time
// base the live SSTP stack feeds the time-agnostic tables.
func wallSeconds() float64 { return float64(time.Now().UnixNano()) / 1e9 }
