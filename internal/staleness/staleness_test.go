package staleness

import (
	"sync"
	"testing"
	"time"
)

func TestWindowQuantiles(t *testing.T) {
	w := NewWindow(30 * time.Second)
	now := 100.0
	// 90 fast samples at ~2ms, 10 slow at ~1s.
	for i := 0; i < 90; i++ {
		w.ObserveAt(now, 0.0015)
	}
	for i := 0; i < 10; i++ {
		w.ObserveAt(now, 0.9)
	}
	q := w.SummaryAt(now)
	if q.Count != 100 {
		t.Fatalf("count = %d, want 100", q.Count)
	}
	// 0.0015 lands in the (0.001, 0.002] bucket -> attributed 0.002.
	if q.P50 != 0.002 {
		t.Errorf("p50 = %v, want 0.002", q.P50)
	}
	// p95 and p99 fall among the slow samples: (0.512, 1.024] -> 1.024.
	if q.P95 != 1.024 || q.P99 != 1.024 {
		t.Errorf("p95, p99 = %v, %v, want 1.024, 1.024", q.P95, q.P99)
	}
	if q.Max != 0.9 {
		t.Errorf("max = %v, want 0.9", q.Max)
	}
	if q.Mean <= 0 || q.Mean >= 0.9 {
		t.Errorf("mean = %v out of range", q.Mean)
	}
}

func TestWindowDecay(t *testing.T) {
	w := NewWindow(10 * time.Second)
	w.ObserveAt(100, 5.0)
	if q := w.SummaryAt(100); q.Count != 1 {
		t.Fatalf("fresh sample not visible: %+v", q)
	}
	// Well past the window the sample must have decayed out.
	if q := w.SummaryAt(200); q.Count != 0 {
		t.Errorf("stale sample still visible after window: %+v", q)
	}
	// An empty window renders zeros, not garbage.
	if q := w.SummaryAt(200); q.P99 != 0 || q.Max != 0 {
		t.Errorf("empty window quantiles non-zero: %+v", q)
	}
}

func TestWindowSliceReuse(t *testing.T) {
	w := NewWindow(10 * time.Second)
	// Fill a slice, advance far enough that the ring wraps onto it,
	// and check the old contents were reset rather than merged.
	w.ObserveAt(1, 1.0)
	w.ObserveAt(1000, 2.0)
	q := w.SummaryAt(1000)
	if q.Count != 1 || q.Max != 2.0 {
		t.Errorf("slice reuse leaked old samples: %+v", q)
	}
}

func TestTrackerAges(t *testing.T) {
	tr := NewTracker()
	tr.ConfirmAt(1, "a", 10)
	tr.ConfirmAt(1, "b", 18)
	tr.ConfirmAt(2, "a", 19) // same key, different source: tracked apart
	if tr.Len() != 3 {
		t.Fatalf("len = %d, want 3", tr.Len())
	}
	q := tr.AgesAt(20)
	if q.Count != 3 {
		t.Fatalf("count = %d, want 3", q.Count)
	}
	if q.Max != 10 { // key "a" from source 1 is 10s old
		t.Errorf("max = %v, want 10", q.Max)
	}
	if q.P50 != 2 {
		t.Errorf("p50 = %v, want 2", q.P50)
	}
	tr.Forget(1, "a")
	if q := tr.AgesAt(20); q.Max != 2 || q.Count != 2 {
		t.Errorf("after forget: %+v", q)
	}
	tr.Forget(1, "b")
	tr.Forget(2, "a")
	if tr.Len() != 0 {
		t.Errorf("len = %d after forgetting all, want 0", tr.Len())
	}
	// Re-confirming is fresher than before: age clamps at >= 0 even if
	// clocks skew.
	tr.ConfirmAt(1, "c", 30)
	if q := tr.AgesAt(25); q.Max != 0 {
		t.Errorf("negative age not clamped: %+v", q)
	}
}

func TestAgreementDropAndReconverge(t *testing.T) {
	a := NewAgreement(10 * time.Second)
	// Phase 1: all digests agree.
	for i := 0; i < 20; i++ {
		a.SampleAt(100+float64(i)*0.1, true)
	}
	if est, n := a.EstimateAt(102); est != 1 || n != 20 {
		t.Fatalf("phase 1: est=%v n=%d, want 1, 20", est, n)
	}
	// Phase 2: a loss regime change makes every sample disagree.
	for i := 0; i < 20; i++ {
		a.SampleAt(103+float64(i)*0.1, false)
	}
	if est, _ := a.EstimateAt(105); est >= 0.6 {
		t.Fatalf("phase 2: est=%v did not drop", est)
	}
	// Phase 3: agreement returns; once the window rolls past the bad
	// phase the estimate re-converges to 1.
	for i := 0; i < 20; i++ {
		a.SampleAt(120+float64(i)*0.1, true)
	}
	if est, n := a.EstimateAt(122); est != 1 || n == 0 {
		t.Fatalf("phase 3: est=%v n=%d, want 1 with samples", est, n)
	}
}

func TestAgreementEmpty(t *testing.T) {
	a := NewAgreement(10 * time.Second)
	est, n := a.EstimateAt(50)
	if est != 1 || n != 0 {
		t.Errorf("empty estimate = %v, %d; want 1, 0", est, n)
	}
}

func TestEstimatorSnapshot(t *testing.T) {
	e := NewEstimator(20 * time.Second)
	e.ObserveTVisAt(100, 0.010)
	e.ObserveTVisAt(100, 0.030)
	e.ConfirmAt(7, "k1", 99)
	e.ConfirmAt(7, "k2", 100)
	e.SampleAgreementAt(100, true)
	e.SampleAgreementAt(100, false)
	s := e.SnapshotAt(101)
	if s.WindowSeconds != 20 {
		t.Errorf("window = %v", s.WindowSeconds)
	}
	if s.TVis.Count != 2 {
		t.Errorf("tvis count = %d", s.TVis.Count)
	}
	if s.TrackedKeys != 2 || s.Staleness.Count != 2 {
		t.Errorf("tracked = %d, staleness = %+v", s.TrackedKeys, s.Staleness)
	}
	if s.Consistency != 0.5 || s.AgreementSamples != 2 {
		t.Errorf("consistency = %v over %d samples", s.Consistency, s.AgreementSamples)
	}
	e.Forget(7, "k1")
	if s := e.SnapshotAt(101); s.TrackedKeys != 1 {
		t.Errorf("tracked after forget = %d", s.TrackedKeys)
	}
}

// TestNilSafe checks every method on nil receivers: estimation must be
// wireable unconditionally, like the obs instruments.
func TestNilSafe(t *testing.T) {
	var w *Window
	w.ObserveAt(1, 1)
	w.Observe(1)
	if q := w.SummaryAt(1); q.Count != 0 {
		t.Error("nil window summary non-zero")
	}
	_ = w.Summary()

	var tr *Tracker
	tr.ConfirmAt(1, "k", 1)
	tr.Forget(1, "k")
	if tr.Len() != 0 {
		t.Error("nil tracker len non-zero")
	}
	if q := tr.AgesAt(1); q.Count != 0 {
		t.Error("nil tracker ages non-zero")
	}

	var a *Agreement
	a.SampleAt(1, true)
	a.Sample(true)
	if est, n := a.EstimateAt(1); est != 1 || n != 0 {
		t.Error("nil agreement estimate wrong")
	}

	var e *Estimator
	e.ObserveTVisAt(1, 1)
	e.ConfirmAt(1, "k", 1)
	e.Forget(1, "k")
	e.SampleAgreementAt(1, true)
	if s := e.SnapshotAt(1); s.Consistency != 1 {
		t.Error("nil estimator snapshot wrong")
	}
	_ = e.Snapshot()
}

// TestEstimatorConcurrent hammers one shared estimator from many
// goroutines while snapshots are taken — the shape a load-test tree
// uses (all leaf receivers share one estimator). Run under -race.
func TestEstimatorConcurrent(t *testing.T) {
	e := NewEstimator(5 * time.Second)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			keys := []string{"a", "b", "c", "d"}
			for i := 0; i < 2000; i++ {
				now := float64(i) * 0.00001
				e.ObserveTVisAt(now, float64(i%50)*0.001)
				e.ConfirmAt(uint64(g), keys[i%len(keys)], now)
				e.SampleAgreementAt(now, i%3 != 0)
				if i%17 == 0 {
					e.Forget(uint64(g), keys[i%len(keys)])
				}
			}
		}(g)
	}
	for i := 0; i < 50; i++ {
		_ = e.SnapshotAt(float64(i) * 0.001)
	}
	wg.Wait()
	s := e.SnapshotAt(0.05)
	if s.TVis.Count == 0 || s.AgreementSamples == 0 {
		t.Errorf("concurrent samples lost: %+v", s)
	}
}
