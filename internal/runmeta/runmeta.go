// Package runmeta collects the environment a benchmark record was
// produced in — toolchain, host shape, and the VCS revision baked into
// the binary — so every BENCH_*.json line is reproducible without the
// shell history that generated it. Collect reads only process-local
// state (runtime and debug.ReadBuildInfo); it never shells out to git,
// so it works in stripped containers and `go run` alike.
package runmeta

import (
	"runtime"
	"runtime/debug"
)

// Meta is the run-environment block embedded in benchmark records.
// GitRevision is empty when the binary was built without VCS stamping
// (e.g. `go run` on a dirty checkout of a test build); GitDirty
// reports whether the work tree had local modifications at build time.
type Meta struct {
	GitRevision string `json:"git_revision,omitempty"`
	GitDirty    bool   `json:"git_dirty,omitempty"`
	GoVersion   string `json:"go_version"`
	OS          string `json:"os"`
	Arch        string `json:"arch"`
	GOMAXPROCS  int    `json:"gomaxprocs"`
	NumCPU      int    `json:"num_cpu"`
}

// Collect snapshots the current process's build and host environment.
func Collect() Meta {
	m := Meta{
		GoVersion:  runtime.Version(),
		OS:         runtime.GOOS,
		Arch:       runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
	}
	if bi, ok := debug.ReadBuildInfo(); ok {
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				m.GitRevision = s.Value
			case "vcs.modified":
				m.GitDirty = s.Value == "true"
			}
		}
	}
	return m
}
