package runmeta

import (
	"encoding/json"
	"runtime"
	"testing"
)

func TestCollect(t *testing.T) {
	m := Collect()
	if m.GoVersion != runtime.Version() {
		t.Errorf("GoVersion = %q, want %q", m.GoVersion, runtime.Version())
	}
	if m.OS != runtime.GOOS || m.Arch != runtime.GOARCH {
		t.Errorf("OS/Arch = %s/%s, want %s/%s", m.OS, m.Arch, runtime.GOOS, runtime.GOARCH)
	}
	if m.GOMAXPROCS < 1 || m.NumCPU < 1 {
		t.Errorf("GOMAXPROCS=%d NumCPU=%d, want >= 1", m.GOMAXPROCS, m.NumCPU)
	}
	// The block must marshal cleanly — it is embedded verbatim in
	// BENCH records.
	if _, err := json.Marshal(m); err != nil {
		t.Fatalf("marshal: %v", err)
	}
}
