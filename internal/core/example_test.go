package core_test

import (
	"fmt"

	"softstate/internal/core"
	"softstate/internal/queueing"
)

// Example runs the open-loop model and compares the simulated
// consistency with the section-3 closed form.
func Example() {
	cfg := core.Config{
		Mode: core.ModeOpenLoop, Seed: 1,
		Lambda: 20_000, MuData: 128_000, Pd: 0.20, LossRate: 0.10,
		Warmup: 200,
	}
	engine, err := core.NewEngine(cfg)
	if err != nil {
		panic(err)
	}
	res := engine.Run(4000)
	analytic := queueing.OpenLoop{Lambda: 20_000, MuCh: 128_000, Pc: 0.10, Pd: 0.20}
	fmt.Printf("analytic q %.4f\n", analytic.BusyConsistency())
	fmt.Printf("within 2%%  %v\n", res.Consistency > analytic.BusyConsistency()-0.02 &&
		res.Consistency < analytic.BusyConsistency()+0.02)
	// Output:
	// analytic q 0.7826
	// within 2%  true
}
