package core

import (
	"math"
	"testing"
	"testing/quick"

	"softstate/internal/queueing"
	"softstate/internal/trace"
)

func mustRun(t *testing.T, cfg Config, dur float64) Result {
	t.Helper()
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return e.Run(dur)
}

// TestOpenLoopMatchesClosedForm validates the simulator against the
// section-3 Jackson analysis across a grid of parameters: the measured
// live-set consistency must match q = (1-p_c)(1-p_d)/(1-p_c(1-p_d)),
// the empty-counts-as-zero average must match ρ·q, and the redundant
// transmission fraction must match λ̂_C/λ̂.
func TestOpenLoopMatchesClosedForm(t *testing.T) {
	cases := []struct {
		lambda, mu, pc, pd float64
	}{
		{20000, 128000, 0.10, 0.20},
		{20000, 128000, 0.30, 0.25},
		{20000, 128000, 0.05, 0.40},
		{5000, 64000, 0.50, 0.15},
		{10000, 40000, 0.00, 0.30},
	}
	for _, tc := range cases {
		m := queueing.OpenLoop{Lambda: tc.lambda, MuCh: tc.mu, Pc: tc.pc, Pd: tc.pd}
		if !m.Stable() {
			t.Fatalf("test case %+v is not stable", tc)
		}
		res := mustRun(t, Config{
			Mode: ModeOpenLoop, Seed: 1,
			Lambda: tc.lambda, MuData: tc.mu, Pd: tc.pd, LossRate: tc.pc,
			Warmup: 200,
		}, 4000)
		if math.Abs(res.Consistency-m.BusyConsistency()) > 0.02 {
			t.Errorf("%+v: sim consistency %.4f, closed form %.4f", tc, res.Consistency, m.BusyConsistency())
		}
		if math.Abs(res.ConsistencyWithEmpty-m.Consistency()) > 0.03 {
			t.Errorf("%+v: sim E[c] %.4f, closed form ρ·q %.4f", tc, res.ConsistencyWithEmpty, m.Consistency())
		}
		if math.Abs(res.RedundantFraction-m.RedundantFraction()) > 0.02 {
			t.Errorf("%+v: sim redundancy %.4f, closed form %.4f", tc, res.RedundantFraction, m.RedundantFraction())
		}
		if math.Abs(res.BusyFraction-m.Rho()) > 0.03 {
			t.Errorf("%+v: sim busy fraction %.4f, ρ %.4f", tc, res.BusyFraction, m.Rho())
		}
	}
}

// TestOpenLoopTable1 checks the empirical state-change probabilities
// against the paper's Table 1.
func TestOpenLoopTable1(t *testing.T) {
	pc, pd := 0.25, 0.2
	res := mustRun(t, Config{
		Mode: ModeOpenLoop, Seed: 3,
		Lambda: 20000, MuData: 128000, Pd: pd, LossRate: pc,
		Warmup: 100,
	}, 3000)
	want := queueing.OpenLoop{Lambda: 1, MuCh: 10, Pc: pc, Pd: pd}.Table1()
	got := res.TransitionProbabilities()
	for j := 0; j < 3; j++ {
		if math.Abs(got[0][j]-want.IEnter[j]) > 0.02 {
			t.Errorf("I-enter exit %d: sim %.3f, want %.3f", j, got[0][j], want.IEnter[j])
		}
		if math.Abs(got[1][j]-want.CEnter[j]) > 0.02 {
			t.Errorf("C-enter exit %d: sim %.3f, want %.3f", j, got[1][j], want.CEnter[j])
		}
	}
	if got[1][0] != 0 {
		t.Errorf("consistent records must never exit inconsistent (got %.4f)", got[1][0])
	}
}

func TestDeterminism(t *testing.T) {
	cfg := Config{
		Mode: ModeFeedback, Seed: 99,
		Lambda: 10000, MuData: 40000, Lifetime: 20,
		LossRate: 0.3, MuHot: 0.8, MuCold: 0.2, MuFb: 5000,
	}
	a := mustRun(t, cfg, 500)
	b := mustRun(t, cfg, 500)
	if a.Consistency != b.Consistency || a.Arrivals != b.Arrivals ||
		a.Transmissions != b.Transmissions || a.NACKsSent != b.NACKsSent ||
		a.MeanLatency != b.MeanLatency {
		t.Errorf("same seed diverged: %+v vs %+v", a, b)
	}
	cfg.Seed = 100
	c := mustRun(t, cfg, 500)
	if c.Arrivals == a.Arrivals && c.Transmissions == a.Transmissions && c.Consistency == a.Consistency {
		t.Error("different seeds produced identical runs")
	}
}

// TestTableCrossCheck verifies that the engine's incremental
// consistency counters agree with a full comparison of the mirrored
// publisher/subscriber tables — i.e. the counters really measure
// Pr[P.val(k) = Q.val(k)] over actual bytes.
func TestTableCrossCheck(t *testing.T) {
	cfg := Config{
		Mode: ModeTwoQueue, Seed: 5,
		Lambda: 10000, MuData: 50000, Pd: 0.2, UpdateRate: 3,
		LossRate: 0.3, MuHot: 0.7, MuCold: 0.3,
		Receivers: 3, TrackTables: true,
	}
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	e.Run(300)
	fromTables, ok := e.TableConsistency()
	if !ok {
		t.Fatal("tables not tracked")
	}
	fromCounters := e.CounterConsistency()
	for i := range fromTables {
		if fromTables[i] != fromCounters[i] {
			t.Errorf("receiver %d: tables say %v, counters say %v", i, fromTables[i], fromCounters[i])
		}
	}
	if fromCounters[0][1] != e.LiveRecords() {
		t.Errorf("live mismatch: %d vs %d", fromCounters[0][1], e.LiveRecords())
	}
}

// TestTwoQueueKnee reproduces the qualitative content of Figures 5 and
// 10: consistency is poor while μ_hot < λ and saturates once
// μ_hot > λ, with little further gain.
func TestTwoQueueKnee(t *testing.T) {
	run := func(hotFrac float64) float64 {
		return mustRun(t, Config{
			Mode: ModeTwoQueue, Seed: 42,
			Lambda: 15000, MuData: 38000, Lifetime: 30,
			LossRate: 0.10, MuHot: hotFrac, MuCold: 1 - hotFrac,
			Warmup: 200,
		}, 1500).Consistency
	}
	lambdaFrac := 15000.0 / 38000.0 // ≈ 0.395
	below := run(0.15)
	atKnee := run(lambdaFrac + 0.08)
	above := run(0.9)
	if below > 0.5 {
		t.Errorf("below knee: consistency %.3f, want low", below)
	}
	if atKnee < 0.85 {
		t.Errorf("just above knee: consistency %.3f, want high", atKnee)
	}
	if math.Abs(above-atKnee) > 0.05 {
		t.Errorf("beyond knee should be flat: %.3f vs %.3f", above, atKnee)
	}
}

// TestFeedbackImproves reproduces the headline of section 5: at 40%
// loss, adding NACK feedback lifts consistency from ~80% to ~99%
// without increasing total bandwidth.
func TestFeedbackImproves(t *testing.T) {
	muTot := 45000.0
	open := mustRun(t, Config{
		Mode: ModeTwoQueue, Seed: 7,
		Lambda: 15000, MuData: muTot, Lifetime: 30,
		LossRate: 0.40, MuHot: 0.9, MuCold: 0.1, Warmup: 200,
	}, 1500)
	fb := mustRun(t, Config{
		Mode: ModeFeedback, Seed: 7,
		Lambda: 15000, MuData: 0.8 * muTot, Lifetime: 30,
		LossRate: 0.40, MuHot: 0.9, MuCold: 0.1,
		MuFb: 0.2 * muTot, NACKBits: 200, Warmup: 200,
	}, 1500)
	if open.Consistency < 0.7 || open.Consistency > 0.9 {
		t.Errorf("open-loop consistency %.3f, want ~0.8", open.Consistency)
	}
	if fb.Consistency < 0.97 {
		t.Errorf("feedback consistency %.3f, want ≥0.97", fb.Consistency)
	}
	if fb.NACKsSent == 0 || fb.Promotions == 0 {
		t.Error("feedback run generated no NACKs/promotions")
	}
}

// TestFeedbackCollapse reproduces Figure 8's collapse: when feedback
// takes so much bandwidth that μ_data < λ/(1-p_c), consistency falls
// below the open-loop level.
func TestFeedbackCollapse(t *testing.T) {
	muTot := 45000.0
	fbFrac := 0.7
	res := mustRun(t, Config{
		Mode: ModeFeedback, Seed: 7,
		Lambda: 15000, MuData: (1 - fbFrac) * muTot, Lifetime: 30,
		LossRate: 0.40, MuHot: 0.9, MuCold: 0.1,
		MuFb: fbFrac * muTot, NACKBits: 200, Warmup: 200,
	}, 1500)
	if res.Consistency > 0.6 {
		t.Errorf("collapse regime consistency %.3f, want < 0.6", res.Consistency)
	}
}

// TestStrictShareLatencyAnchor checks Figure 6's analytic anchor: with
// negligible cold bandwidth, T_rec over successful first-shot
// deliveries approximates the M/M/1 sojourn 1/(μ_hot − λ).
func TestStrictShareLatencyAnchor(t *testing.T) {
	lambda, muHot := 15000.0, 18000.0
	res := mustRun(t, Config{
		Mode: ModeTwoQueue, Seed: 11, StrictShare: true,
		Lambda: lambda, Lifetime: 60, LossRate: 0.25,
		MuHot: muHot, MuCold: 0.001 * muHot, Warmup: 200,
	}, 3000)
	want := queueing.MM1{Lambda: lambda / 1000, Mu: muHot / 1000}.MeanSojourn()
	if res.MeanLatency < 0.5*want || res.MeanLatency > 2.5*want {
		t.Errorf("T_rec %.3f, want within 2.5x of M/M/1 %.3f", res.MeanLatency, want)
	}
	// Without retransmission bandwidth, ~p_c of items never arrive.
	if res.DeliveryRatio > 0.85 {
		t.Errorf("delivery ratio %.3f, want ≈ 1-p_c", res.DeliveryRatio)
	}
}

// TestStrictShareLatencyShape checks the rise-then-fall of Figure 6.
func TestStrictShareLatencyShape(t *testing.T) {
	run := func(ratio float64) Result {
		return mustRun(t, Config{
			Mode: ModeTwoQueue, Seed: 11, StrictShare: true,
			Lambda: 15000, Lifetime: 60, LossRate: 0.25,
			MuHot: 18000, MuCold: ratio * 18000, Warmup: 200,
		}, 2500)
	}
	low := run(0.001)
	mid := run(0.4)
	high := run(3.0)
	if !(mid.MeanLatency > low.MeanLatency) {
		t.Errorf("latency should rise as cold retransmissions enter the average: low=%.3f mid=%.3f", low.MeanLatency, mid.MeanLatency)
	}
	if !(high.MeanLatency < mid.MeanLatency) {
		t.Errorf("latency should fall with ample cold bandwidth: mid=%.3f high=%.3f", mid.MeanLatency, high.MeanLatency)
	}
	if !(high.DeliveryRatio > low.DeliveryRatio) {
		t.Errorf("delivery ratio should improve with cold bandwidth: %.3f vs %.3f", high.DeliveryRatio, low.DeliveryRatio)
	}
}

func TestZeroLossFullConsistencyWithFeedback(t *testing.T) {
	res := mustRun(t, Config{
		Mode: ModeFeedback, Seed: 2,
		Lambda: 5000, MuData: 40000, Lifetime: 30, LossRate: 0,
		MuHot: 0.8, MuCold: 0.2, MuFb: 4000, Warmup: 100,
	}, 800)
	if res.Consistency < 0.98 {
		t.Errorf("lossless consistency %.3f, want ≈1", res.Consistency)
	}
	if res.NACKsSent != 0 {
		t.Errorf("lossless run sent %d NACKs", res.NACKsSent)
	}
}

func TestMultiReceiver(t *testing.T) {
	res := mustRun(t, Config{
		Mode: ModeOpenLoop, Seed: 4,
		Lambda: 10000, MuData: 64000, Pd: 0.25, LossRate: 0.2,
		Receivers: 5, Warmup: 100,
	}, 1500)
	if len(res.PerReceiver) != 5 {
		t.Fatalf("PerReceiver has %d entries", len(res.PerReceiver))
	}
	m := queueing.OpenLoop{Lambda: 10000, MuCh: 64000, Pc: 0.2, Pd: 0.25}
	for i, c := range res.PerReceiver {
		if math.Abs(c-m.BusyConsistency()) > 0.04 {
			t.Errorf("receiver %d consistency %.3f, want ≈%.3f", i, c, m.BusyConsistency())
		}
	}
}

func TestUpdatesReduceConsistency(t *testing.T) {
	base := Config{
		Mode: ModeTwoQueue, Seed: 6,
		Lambda: 5000, MuData: 30000, Lifetime: 40, LossRate: 0.1,
		MuHot: 0.7, MuCold: 0.3, Warmup: 200,
	}
	noUpd := mustRun(t, base, 1500)
	base.UpdateRate = 20 // 20 value changes/s across the live set
	withUpd := mustRun(t, base, 1500)
	if withUpd.Updates == 0 {
		t.Fatal("no updates happened")
	}
	if withUpd.Consistency >= noUpd.Consistency {
		t.Errorf("updates should depress consistency: %.3f vs %.3f", withUpd.Consistency, noUpd.Consistency)
	}
}

func TestInitialRecordsStaticInput(t *testing.T) {
	// The paper's "static input" case: with no arrivals and no
	// death, open-loop cycling eventually delivers everything.
	res := mustRun(t, Config{
		Mode: ModeOpenLoop, Seed: 8,
		Lambda: 0, MuData: 50000, Pd: 0.0001, LossRate: 0.5,
		InitialRecords: 50,
	}, 200)
	if res.Consistency < 0.9 {
		t.Errorf("static input consistency %.3f, want ≈1 (eventual consistency)", res.Consistency)
	}
	if res.Arrivals != 50 {
		t.Errorf("arrivals = %d, want 50", res.Arrivals)
	}
}

func TestSeriesSampling(t *testing.T) {
	res := mustRun(t, Config{
		Mode: ModeOpenLoop, Seed: 9,
		Lambda: 10000, MuData: 64000, Pd: 0.3, LossRate: 0.2,
		SampleInterval: 1,
	}, 100)
	if res.Series == nil {
		t.Fatal("no series recorded")
	}
	if res.Series.Len() < 95 || res.Series.Len() > 101 {
		t.Errorf("series has %d samples, want ≈100", res.Series.Len())
	}
	for _, p := range res.Series.Points {
		if p.V < 0 || p.V > 1 {
			t.Fatalf("sample out of range: %+v", p)
		}
	}
}

func TestGilbertElliottSameMeanSimilarConsistency(t *testing.T) {
	// The paper argues the metric depends only on the mean loss rate;
	// bursty loss at the same mean should land close to Bernoulli.
	base := Config{
		Mode: ModeOpenLoop, Seed: 10,
		Lambda: 20000, MuData: 128000, Pd: 0.25, LossRate: 0.2,
		Warmup: 300,
	}
	bern := mustRun(t, base, 4000)
	base.BurstLen = 8
	ge := mustRun(t, base, 4000)
	if math.Abs(bern.Consistency-ge.Consistency) > 0.05 {
		t.Errorf("burstiness moved consistency: bernoulli %.3f vs GE %.3f", bern.Consistency, ge.Consistency)
	}
}

func TestNACKQueueOverflowCounted(t *testing.T) {
	res := mustRun(t, Config{
		Mode: ModeFeedback, Seed: 12,
		Lambda: 15000, MuData: 40000, Lifetime: 30, LossRate: 0.5,
		MuHot: 0.9, MuCold: 0.1,
		MuFb: 100, NACKBits: 400, NACKQueueCap: 5, // starved feedback
	}, 500)
	if res.NACKsDropped == 0 {
		t.Error("starved feedback link dropped no NACKs")
	}
	if res.NACKsRecv >= res.NACKsSent {
		t.Errorf("NACKs received %d not < sent %d", res.NACKsRecv, res.NACKsSent)
	}
}

func TestReceiverTTLExpiry(t *testing.T) {
	// With a short receiver TTL and scarce refreshes, replicas expire
	// and consistency falls below the no-TTL baseline.
	base := Config{
		Mode: ModeTwoQueue, Seed: 13,
		Lambda: 2000, MuData: 6000, Lifetime: 120, LossRate: 0.1,
		MuHot: 0.5, MuCold: 0.5, TrackTables: true, Warmup: 100,
	}
	noTTL := mustRun(t, base, 1000)
	_ = noTTL
	base.ReceiverTTL = 5
	e, err := NewEngine(base)
	if err != nil {
		t.Fatal(err)
	}
	e.Run(1000)
	tc, _ := e.TableConsistency()
	cc := e.CounterConsistency()
	// Table-based consistency (which honours TTL expiry) must not
	// exceed the counter-based one (which does not).
	if tc[0][0] > cc[0][0] {
		t.Errorf("TTL-expired table consistency %v above counters %v", tc[0], cc[0])
	}
}

func TestSchedulerVariantsAgree(t *testing.T) {
	// Stride, WFQ, DRR and lottery should produce statistically
	// similar consistency for the same two-queue configuration.
	var got []float64
	for _, k := range []SchedulerKind{SchedStride, SchedWFQ, SchedDRR, SchedLottery} {
		res := mustRun(t, Config{
			Mode: ModeTwoQueue, Seed: 21,
			Lambda: 15000, MuData: 38000, Lifetime: 30, LossRate: 0.1,
			MuHot: 0.6, MuCold: 0.4, Scheduler: k, Warmup: 200,
		}, 1200)
		got = append(got, res.Consistency)
	}
	for i := 1; i < len(got); i++ {
		if math.Abs(got[i]-got[0]) > 0.05 {
			t.Errorf("scheduler %d consistency %.3f vs stride %.3f", i, got[i], got[0])
		}
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{},                                // no rates at all
		{Lambda: -1, MuData: 10, Pd: 0.5}, // negative λ
		{Lambda: 1, MuData: 10},           // no death process
		{Lambda: 1, MuData: 10, Pd: 2},    // pd > 1
		{Lambda: 1, MuData: 10, Pd: 0.5, LossRate: 1.0},                            // p_c = 1
		{Mode: ModeTwoQueue, Lambda: 1, MuData: 10, Pd: 0.5},                       // no weights
		{Mode: ModeFeedback, Lambda: 1, MuData: 10, Pd: 0.5, MuHot: 1},             // no MuFb
		{Mode: ModeTwoQueue, Lambda: 1, MuData: 10, Pd: 0.5, MuHot: -1, MuCold: 1}, // negative weight
		{Lambda: 1, MuData: 10, Pd: 0.5, Receivers: -2},                            // bad receivers
		{Mode: ModeTwoQueue, StrictShare: true, Lambda: 1, Pd: 0.5, MuCold: 5},     // strict without MuHot
	}
	for i, cfg := range bad {
		if _, err := NewEngine(cfg); err == nil {
			t.Errorf("bad config %d accepted: %+v", i, cfg)
		}
	}
	if _, err := NewEngine(Config{Lambda: 1000, MuData: 10000, Pd: 0.5}); err != nil {
		t.Errorf("valid minimal config rejected: %v", err)
	}
}

func TestModeStrings(t *testing.T) {
	if ModeOpenLoop.String() != "open-loop" || ModeTwoQueue.String() != "two-queue" ||
		ModeFeedback.String() != "feedback" {
		t.Error("mode names wrong")
	}
	if Mode(99).String() == "" || SchedulerKind(99).String() == "" {
		t.Error("unknown enum should still stringify")
	}
	for _, k := range []SchedulerKind{SchedStride, SchedLottery, SchedWFQ, SchedDRR} {
		if k.String() == "" {
			t.Error("scheduler kind name empty")
		}
	}
}

func TestRunPanicsOnBadDuration(t *testing.T) {
	e, err := NewEngine(Config{Lambda: 1000, MuData: 10000, Pd: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Run(0) did not panic")
		}
	}()
	e.Run(0)
}

// TestTraceTimelines runs a traced simulation and checks that every
// record's event timeline is causally ordered: ARRIVE first, DIE last,
// no DELIVER/LOSE without a preceding TX.
func TestTraceTimelines(t *testing.T) {
	e, err := NewEngine(Config{
		Mode: ModeFeedback, Seed: 19,
		Lambda: 8000, MuData: 30000, Lifetime: 10, LossRate: 0.3,
		MuHot: 0.8, MuCold: 0.2, MuFb: 4000,
		TraceCapacity: 100000,
	})
	if err != nil {
		t.Fatal(err)
	}
	e.Run(60)
	tr := e.Trace()
	if tr == nil || tr.Len() == 0 {
		t.Fatal("no trace recorded")
	}
	byKey := map[string][]trace.Event{}
	for _, ev := range tr.Events() {
		byKey[ev.Key] = append(byKey[ev.Key], ev)
	}
	checked := 0
	for key, tl := range byKey {
		if tl[0].Kind != trace.Arrive {
			continue // ring may have evicted the start of old records
		}
		checked++
		txSeen := false
		for i, ev := range tl {
			if i > 0 && ev.T < tl[i-1].T {
				t.Fatalf("%s: time went backwards: %+v", key, tl)
			}
			switch ev.Kind {
			case trace.Transmit:
				txSeen = true
			case trace.Deliver, trace.Lose:
				if !txSeen {
					t.Fatalf("%s: %v before any TX: %+v", key, ev.Kind, tl)
				}
			case trace.Die:
				if i != len(tl)-1 {
					t.Fatalf("%s: events after DIE: %+v", key, tl)
				}
			}
		}
	}
	if checked < 10 {
		t.Fatalf("only %d complete timelines checked", checked)
	}
}

// TestConsistencyCI checks the batch-means confidence interval:
// positive for a stochastic run, containing the closed form, and
// shrinking with run length.
func TestConsistencyCI(t *testing.T) {
	cfg := Config{
		Mode: ModeOpenLoop, Seed: 17,
		Lambda: 20000, MuData: 128000, Pd: 0.25, LossRate: 0.2,
		Warmup: 100,
	}
	short := mustRun(t, cfg, 600)
	long := mustRun(t, cfg, 6000)
	if short.ConsistencyCI <= 0 || long.ConsistencyCI <= 0 {
		t.Fatalf("CIs not positive: %v, %v", short.ConsistencyCI, long.ConsistencyCI)
	}
	if long.ConsistencyCI >= short.ConsistencyCI {
		t.Errorf("CI did not shrink: short %v, long %v", short.ConsistencyCI, long.ConsistencyCI)
	}
	want := queueing.OpenLoop{Lambda: 20000, MuCh: 128000, Pc: 0.2, Pd: 0.25}.BusyConsistency()
	if math.Abs(long.Consistency-want) > 3*long.ConsistencyCI+0.01 {
		t.Errorf("closed form %v outside measured %v ± %v", want, long.Consistency, long.ConsistencyCI)
	}
}

// TestHeterogeneousReceivers gives each receiver a different loss rate
// and checks the per-receiver consistencies match their own closed
// forms (the metric is per-path, so receivers are independent).
func TestHeterogeneousReceivers(t *testing.T) {
	losses := []float64{0.05, 0.3, 0.6}
	res := mustRun(t, Config{
		Mode: ModeOpenLoop, Seed: 15,
		Lambda: 15000, MuData: 96000, Pd: 0.25,
		Receivers: 3, LossRates: losses,
		Warmup: 200,
	}, 3000)
	for i, pc := range losses {
		want := queueing.OpenLoop{Lambda: 15000, MuCh: 96000, Pc: pc, Pd: 0.25}.BusyConsistency()
		if math.Abs(res.PerReceiver[i]-want) > 0.03 {
			t.Errorf("receiver %d (loss %.2f): consistency %.4f, want ≈%.4f",
				i, pc, res.PerReceiver[i], want)
		}
	}
	if !(res.PerReceiver[0] > res.PerReceiver[1] && res.PerReceiver[1] > res.PerReceiver[2]) {
		t.Errorf("consistency not ordered by path loss: %v", res.PerReceiver)
	}
}

func TestLossRatesValidation(t *testing.T) {
	if _, err := NewEngine(Config{
		Lambda: 1000, MuData: 10000, Pd: 0.5,
		Receivers: 2, LossRates: []float64{0.1},
	}); err == nil {
		t.Error("length-mismatched LossRates accepted")
	}
	if _, err := NewEngine(Config{
		Lambda: 1000, MuData: 10000, Pd: 0.5,
		Receivers: 1, LossRates: []float64{1.0},
	}); err == nil {
		t.Error("LossRates=1 accepted")
	}
}

// TestPropertyEngineBounds drives the engine across randomized valid
// configurations: it must never panic, all reported fractions must lie
// in [0, 1], and the incremental counters must agree with the mirrored
// tables at the end of every run.
func TestPropertyEngineBounds(t *testing.T) {
	f := func(seed int64, mode8, loss8, pd8, hot8, upd8 uint8) bool {
		cfg := Config{
			Mode:        Mode(int(mode8) % 3),
			Seed:        seed,
			Lambda:      5000 + math.Abs(float64(seed%7))*2000,
			MuData:      40000,
			LossRate:    float64(loss8%80) / 100,
			MuHot:       0.1 + float64(hot8%90)/100,
			UpdateRate:  float64(upd8 % 10),
			TrackTables: true,
			Receivers:   1 + int(mode8)%3,
		}
		cfg.MuCold = 1 - cfg.MuHot
		if pd8%2 == 0 {
			cfg.Pd = 0.35 + float64(pd8%50)/100
		} else {
			cfg.Lifetime = 5 + float64(pd8%40)
		}
		if cfg.Mode == ModeFeedback {
			cfg.MuFb = 4000
		}
		e, err := NewEngine(cfg)
		if err != nil {
			t.Fatalf("config rejected: %v (%+v)", err, cfg)
		}
		res := e.Run(120)
		for _, v := range []float64{res.Consistency, res.ConsistencyWithEmpty,
			res.BusyFraction, res.RedundantFraction, res.WastedFraction, res.DeliveryRatio} {
			if v < 0 || v > 1+1e-9 {
				t.Fatalf("fraction out of range: %v (%+v)", v, res)
			}
		}
		if res.MeanLatency < 0 {
			t.Fatalf("negative latency: %v", res.MeanLatency)
		}
		tc, _ := e.TableConsistency()
		cc := e.CounterConsistency()
		for i := range tc {
			if tc[i] != cc[i] {
				t.Fatalf("tables %v != counters %v (receiver %d, %+v)", tc[i], cc[i], i, cfg)
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestDetServiceMode(t *testing.T) {
	// M/D/1 service still yields the same flow-balance consistency q
	// (q depends only on rates), though occupancy differs.
	m := queueing.OpenLoop{Lambda: 20000, MuCh: 128000, Pc: 0.2, Pd: 0.25}
	res := mustRun(t, Config{
		Mode: ModeOpenLoop, Seed: 14, DetService: true,
		Lambda: 20000, MuData: 128000, Pd: 0.25, LossRate: 0.2,
		Warmup: 200,
	}, 3000)
	if math.Abs(res.Consistency-m.BusyConsistency()) > 0.03 {
		t.Errorf("M/D/1 consistency %.4f, want ≈%.4f", res.Consistency, m.BusyConsistency())
	}
}
