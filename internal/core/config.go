// Package core implements the paper's soft-state protocol model: an
// announce/listen publisher whose scheduler transmits {key, value}
// records over a lossy finite-capacity channel to one or more
// subscribers, instrumented with the probabilistic consistency metric
// of section 2.1.
//
// Three protocol variants are provided, matching sections 3–5:
//
//   - ModeOpenLoop: a single FIFO transmission queue; every record
//     cycles through it until it dies (per-service death probability
//     p_d). This is the variant analyzed in closed form by the
//     multi-class Jackson model in internal/queueing.
//   - ModeTwoQueue: "hot" (new/changed) and "cold" (previously
//     transmitted) queues sharing the data bandwidth proportionally
//     via a pluggable scheduler (lottery, stride, WFQ, …).
//   - ModeFeedback: the two-queue sender plus receiver NACKs on a
//     finite-rate feedback link; a NACK promotes the requested record
//     from the cold queue back to the tail of the hot queue (the
//     H→C→H transitions of the paper's Figure 7).
//
// All variants run on the deterministic discrete-event engine in
// internal/eventsim, so every experiment is reproducible from a seed.
package core

import (
	"fmt"

	"softstate/internal/obs"
	"softstate/internal/sched"
	"softstate/internal/xrand"
)

// Mode selects the protocol variant.
type Mode int

// Protocol variants.
const (
	ModeOpenLoop Mode = iota // §3: single FIFO queue, no feedback
	ModeTwoQueue             // §4: hot/cold queues, no feedback
	ModeFeedback             // §5: hot/cold queues + receiver NACKs
)

// String returns the variant's name.
func (m Mode) String() string {
	switch m {
	case ModeOpenLoop:
		return "open-loop"
	case ModeTwoQueue:
		return "two-queue"
	case ModeFeedback:
		return "feedback"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// SchedulerKind selects the proportional-share policy for the
// hot/cold split.
type SchedulerKind int

// Scheduler policies for the two-queue variants.
const (
	SchedStride SchedulerKind = iota
	SchedLottery
	SchedWFQ
	SchedDRR
)

// String returns the policy name.
func (k SchedulerKind) String() string {
	switch k {
	case SchedStride:
		return "stride"
	case SchedLottery:
		return "lottery"
	case SchedWFQ:
		return "wfq"
	case SchedDRR:
		return "drr"
	default:
		return fmt.Sprintf("SchedulerKind(%d)", int(k))
	}
}

func (k SchedulerKind) build(rnd *xrand.Rand, quantum float64) sched.Scheduler {
	switch k {
	case SchedLottery:
		return sched.NewLottery(rnd)
	case SchedWFQ:
		return sched.NewWFQ()
	case SchedDRR:
		return sched.NewDRR(quantum)
	default:
		return sched.NewStride()
	}
}

// Config parameterizes a protocol run. Bandwidths and the arrival rate
// are in bits per second, matching the paper's kbps figures; sizes are
// in bits.
type Config struct {
	Mode Mode
	Seed int64

	// Workload.
	Lambda     float64 // new-record arrival rate λ (bits/s of new data)
	UpdateRate float64 // optional: value updates to live records (updates/s)
	PacketBits float64 // announcement size (bits); default 1000

	// Death process. The paper's section-2 data model attaches a
	// lifetime to each record; the section-3 analysis approximates it
	// with an independent per-service death probability p_d. Both are
	// supported: set Pd for the analytic regime (validated against
	// the closed forms) and/or Lifetime for the age-based regime used
	// in the two-queue and feedback experiments. At least one must be
	// positive.
	Pd            float64 // per-service death probability p_d
	Lifetime      float64 // mean record lifetime in seconds (0 = off)
	FixedLifetime bool    // lifetimes are exactly Lifetime, not Exp(1/Lifetime)

	// Channel.
	MuData    float64 // data bandwidth μ_data (bps). Open loop: μ_ch.
	LossRate  float64 // per-receiver Bernoulli loss probability p_c
	Receivers int     // number of subscribers; default 1
	BurstLen  float64 // >1: use Gilbert–Elliott loss with this mean burst length

	// LossRates, if non-empty, gives each receiver its own loss rate
	// (heterogeneous paths; overrides LossRate per receiver). Its
	// length must equal Receivers.
	LossRates []float64

	// Two-queue split μ_hot/μ_cold. In the default work-conserving
	// mode these are proportional-share weights over MuData (only the
	// ratio matters; idle hot bandwidth flows to cold and vice versa,
	// as the paper prescribes for its consistency experiments). With
	// StrictShare they are absolute rates in bps and each queue is
	// served by its own rate-limited server — the regime of the
	// paper's Figure 6, where "when μ_cold ≈ 0, data items are never
	// retransmitted".
	MuHot, MuCold float64
	StrictShare   bool
	Scheduler     SchedulerKind

	// Feedback (ModeFeedback only).
	MuFb         float64 // feedback link bandwidth (bps)
	NACKBits     float64 // NACK size (bits); default 100
	NACKQueueCap int     // feedback queue cap (messages); default 1000
	FbLossRate   float64 // loss on the feedback path

	// Receiver-side soft-state timer: if positive, subscriber entries
	// expire this many seconds after the last heard announcement
	// (an extension knob; the paper's core model keeps replicas until
	// global death).
	ReceiverTTL float64

	// InitialRecords seeds the table with this many records at t=0
	// (the paper's "static input" case when Lambda is 0).
	InitialRecords int

	// DetService uses fixed-size packets (M/D/1 service). The default
	// (false) draws exponential packet sizes with mean PacketBits,
	// matching the M/M/1 assumptions of the paper's Jackson analysis.
	DetService bool

	// Measurement.
	Warmup         float64 // discard metrics before this time
	SampleInterval float64 // >0: record a consistency time series
	TrackTables    bool    // mirror state into table.Publisher/Subscriber
	TraceCapacity  int     // >0: retain the last N protocol events (Engine.Trace)

	// Obs, if non-nil, publishes the run's counters under the same
	// sstp_* series names the live stack (internal/sstp) uses, so a
	// simulator prediction and a production run are directly
	// comparable. Channel and event-loop internals appear under
	// netsim_* and eventsim_*.
	Obs *obs.Registry
}

// withDefaults fills zero fields with defaults and validates.
func (c Config) withDefaults() (Config, error) {
	if c.PacketBits == 0 {
		c.PacketBits = 1000
	}
	if c.Receivers == 0 {
		c.Receivers = 1
	}
	if c.NACKBits == 0 {
		c.NACKBits = 100
	}
	if c.NACKQueueCap == 0 {
		c.NACKQueueCap = 1000
	}
	if c.Mode == ModeOpenLoop {
		c.MuHot, c.MuCold = 1, 0 // single queue
		c.StrictShare = false
	} else if c.MuHot == 0 && c.MuCold == 0 {
		return c, fmt.Errorf("core: %v mode needs MuHot/MuCold weights", c.Mode)
	}
	if c.StrictShare {
		if c.MuHot <= 0 {
			return c, fmt.Errorf("core: StrictShare needs MuHot > 0 in bps")
		}
		if c.MuData == 0 {
			c.MuData = c.MuHot + c.MuCold
		}
	}
	if c.Lambda < 0 || c.MuData <= 0 {
		return c, fmt.Errorf("core: need Lambda >= 0 and MuData > 0 (got %v, %v)", c.Lambda, c.MuData)
	}
	if c.Pd < 0 || c.Pd > 1 {
		return c, fmt.Errorf("core: Pd %v out of [0,1]", c.Pd)
	}
	if c.Lifetime < 0 {
		return c, fmt.Errorf("core: negative Lifetime %v", c.Lifetime)
	}
	if c.Pd == 0 && c.Lifetime == 0 {
		return c, fmt.Errorf("core: need a death process (Pd > 0 and/or Lifetime > 0)")
	}
	if c.LossRate < 0 || c.LossRate >= 1 {
		return c, fmt.Errorf("core: LossRate %v out of [0,1)", c.LossRate)
	}
	if len(c.LossRates) > 0 {
		if len(c.LossRates) != c.Receivers {
			return c, fmt.Errorf("core: %d LossRates for %d receivers", len(c.LossRates), c.Receivers)
		}
		for i, p := range c.LossRates {
			if p < 0 || p >= 1 {
				return c, fmt.Errorf("core: LossRates[%d]=%v out of [0,1)", i, p)
			}
		}
	}
	if c.FbLossRate < 0 || c.FbLossRate >= 1 {
		return c, fmt.Errorf("core: FbLossRate %v out of [0,1)", c.FbLossRate)
	}
	if c.PacketBits <= 0 || c.NACKBits <= 0 {
		return c, fmt.Errorf("core: packet sizes must be positive")
	}
	if c.Mode == ModeFeedback && c.MuFb <= 0 {
		return c, fmt.Errorf("core: ModeFeedback needs MuFb > 0")
	}
	if c.Receivers < 1 {
		return c, fmt.Errorf("core: Receivers %d < 1", c.Receivers)
	}
	if c.MuHot < 0 || c.MuCold < 0 {
		return c, fmt.Errorf("core: negative queue weights")
	}
	return c, nil
}
