package core

import (
	"testing"

	"softstate/internal/obs"
)

// TestEngineSharedMetricNames runs the feedback-mode simulator with a
// registry attached and asserts it emits the live stack's series names
// with values matching the engine's own result counters.
func TestEngineSharedMetricNames(t *testing.T) {
	reg := obs.New("sim")
	e, err := NewEngine(Config{
		Mode: ModeFeedback, Seed: 3,
		Lambda: 15_000, MuData: 38_000, MuFb: 7_000,
		Lifetime: 30, MuHot: 0.6, MuCold: 0.4,
		LossRate: 0.1,
		Obs:      reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	res := e.Run(200)

	// With no warmup the registry counters equal the result's.
	if got := reg.Get("sstp_publishes_total"); got != float64(res.Arrivals) {
		t.Errorf("sstp_publishes_total = %v, want %d", got, res.Arrivals)
	}
	if got := reg.Get("sstp_deletes_total"); got != float64(res.Deaths) {
		t.Errorf("sstp_deletes_total = %v, want %d", got, res.Deaths)
	}
	if got := reg.Get("sstp_nacks_sent_total"); got != float64(res.NACKsSent) {
		t.Errorf("sstp_nacks_sent_total = %v, want %d", got, res.NACKsSent)
	}
	if got := reg.Get("sstp_nacks_received_total"); got != float64(res.NACKsRecv) {
		t.Errorf("sstp_nacks_received_total = %v, want %d", got, res.NACKsRecv)
	}
	if got := reg.Get("sstp_promotions_total"); got != float64(res.Promotions) {
		t.Errorf("sstp_promotions_total = %v, want %d", got, res.Promotions)
	}
	// Announcements are counted at service start, Transmissions at
	// completion, so one record may still be in flight at the deadline.
	hot := reg.Get("sstp_announcements_total", "queue", "hot")
	cold := reg.Get("sstp_announcements_total", "queue", "cold")
	if sum := int(hot + cold); hot == 0 || cold == 0 || sum < res.Transmissions || sum > res.Transmissions+1 {
		t.Errorf("announcements hot=%v cold=%v, want sum %d (+ at most 1 in flight)", hot, cold, res.Transmissions)
	}
	if reg.Get("sstp_deliveries_total") == 0 || reg.Get("sstp_losses_total") == 0 {
		t.Errorf("deliveries=%v losses=%v, want both > 0",
			reg.Get("sstp_deliveries_total"), reg.Get("sstp_losses_total"))
	}
	if reg.Get("sstp_t_rec_seconds") == 0 {
		t.Error("sstp_t_rec_seconds histogram is empty")
	}
	// Simulator-substrate series.
	if got := reg.Get("netsim_transmissions_total", "link", "data"); int(got) != res.Transmissions {
		t.Errorf("netsim_transmissions_total = %v, want %d", got, res.Transmissions)
	}
	if reg.Get("eventsim_events_fired_total") == 0 {
		t.Error("eventsim_events_fired_total = 0")
	}

	// Every sstp_* series the simulator emits must be part of the live
	// stack's catalog (internal/sstp), keeping the namespaces in sync.
	liveCatalog := map[string]bool{
		"sstp_publishes_total": true, "sstp_updates_total": true,
		"sstp_deletes_total": true, "sstp_announcements_total": true,
		"sstp_tx_bits_total": true, "sstp_nacks_sent_total": true,
		"sstp_nacks_received_total": true, "sstp_promotions_total": true,
		"sstp_deliveries_total": true, "sstp_duplicates_total": true,
		"sstp_losses_total": true, "sstp_records_live": true,
		"sstp_send_rate_bps": true, "sstp_t_rec_seconds": true,
	}
	for _, s := range reg.Snapshot() {
		if len(s.Name) >= 5 && s.Name[:5] == "sstp_" && !liveCatalog[s.Name] {
			t.Errorf("simulator emits %s, absent from the live catalog", s.Name)
		}
	}
}
