package core

import "softstate/internal/obs"

// engineMetrics mirrors the live stack's catalog (internal/sstp) so a
// simulator run and a production run expose the same sstp_* series and
// are directly comparable. Simulator-only context (channel service,
// feedback queue, event counts) lives under netsim_* / eventsim_*.
//
// Receiver-side series — deliveries, duplicates, losses, the T_rec
// histogram — follow receiver 0, mirroring a single live receiver;
// NACK counts cover all receivers, matching Result.NACKsSent.
type engineMetrics struct {
	publishes  *obs.Counter // sstp_publishes_total
	updates    *obs.Counter // sstp_updates_total
	deletes    *obs.Counter // sstp_deletes_total
	annHot     *obs.Counter // sstp_announcements_total{queue="hot"}
	annCold    *obs.Counter // sstp_announcements_total{queue="cold"}
	txBits     *obs.Counter // sstp_tx_bits_total
	nacksSent  *obs.Counter // sstp_nacks_sent_total
	nacksRecv  *obs.Counter // sstp_nacks_received_total
	promotions *obs.Counter // sstp_promotions_total
	deliveries *obs.Counter // sstp_deliveries_total
	duplicates *obs.Counter // sstp_duplicates_total
	losses     *obs.Counter // sstp_losses_total

	live *obs.Gauge     // sstp_records_live
	rate *obs.Gauge     // sstp_send_rate_bps
	tRec *obs.Histogram // sstp_t_rec_seconds (born → first delivery)
}

func newEngineMetrics(reg *obs.Registry) engineMetrics {
	return engineMetrics{
		publishes:  reg.Counter("sstp_publishes_total"),
		updates:    reg.Counter("sstp_updates_total"),
		deletes:    reg.Counter("sstp_deletes_total"),
		annHot:     reg.Counter("sstp_announcements_total", "queue", "hot"),
		annCold:    reg.Counter("sstp_announcements_total", "queue", "cold"),
		txBits:     reg.Counter("sstp_tx_bits_total"),
		nacksSent:  reg.Counter("sstp_nacks_sent_total"),
		nacksRecv:  reg.Counter("sstp_nacks_received_total"),
		promotions: reg.Counter("sstp_promotions_total"),
		deliveries: reg.Counter("sstp_deliveries_total"),
		duplicates: reg.Counter("sstp_duplicates_total"),
		losses:     reg.Counter("sstp_losses_total"),
		live:       reg.Gauge("sstp_records_live"),
		rate:       reg.Gauge("sstp_send_rate_bps"),
		tRec:       reg.Histogram("sstp_t_rec_seconds"),
	}
}
