package core

import (
	"container/list"
	"fmt"

	"softstate/internal/eventsim"
	"softstate/internal/metric"
	"softstate/internal/netsim"
	"softstate/internal/sched"
	"softstate/internal/table"
	"softstate/internal/trace"
	"softstate/internal/xrand"
)

const (
	qHot  = 0
	qCold = 1
	qNone = -1
)

// record is the engine's view of one live {key, value} pair.
type record struct {
	key     table.Key
	version uint64
	born    float64 // introduction time of the current version

	idx   int // position in engine.live (swap-remove index)
	queue int // qHot, qCold, or qNone (in service / nowhere)
	elem  *list.Element

	inService  bool
	dirty      bool   // updated while in service
	txVersion  uint64 // version captured at transmit time
	alive      bool
	consistent []bool // per receiver: holds the current version
	latPending bool   // receiver 0 has not yet received this version
}

// Engine simulates one announce/listen publisher and its subscribers.
type Engine struct {
	cfg Config
	sim *eventsim.Sim

	rndArrive *xrand.Rand
	rndDeath  *xrand.Rand
	rndUpdate *xrand.Rand
	rndSvc    *xrand.Rand

	ch        *netsim.Channel    // work-conserving mode: shared channel
	chq       [2]*netsim.Channel // strict mode: per-queue channels
	fb        *netsim.FeedbackLink
	scheduler sched.Scheduler
	queues    [2]*list.List
	ready     func(q int) bool // persistent Pick predicate (no per-pump closure)
	slot      *txSlot          // shared-channel in-flight state
	slotQ     [2]*txSlot       // strict-mode per-channel in-flight state

	records map[table.Key]*record
	live    []*record // for uniform update sampling
	nCons   []int     // per receiver: live records they hold

	meters      []*metric.ConsistencyMeter
	batch       *metric.BatchMeans // receiver-0 batch-means CI
	lat         *metric.LatencyTracker
	bw          *metric.BandwidthAccountant
	series      *metric.Series
	transitions [2][3]int // [enter I/C][exit I/C/D], receiver 0

	pub  *table.Publisher
	subs []*table.Subscriber
	tr   *trace.Ring
	m    engineMetrics

	keySeq    uint64
	arrivals  int
	deaths    int
	updates   int
	nacksGen  int
	nacksRecv int
	promoted  int
}

// txSlot holds the in-flight transmission state for one channel plus a
// persistent deliver callback reading it, so transmit does not allocate
// a closure per packet. Exactly one transmission is in flight per
// channel (propagation delay is zero in this model), so the slot is
// safely overwritten only when the channel next accepts a Transmit.
type txSlot struct {
	e         *Engine
	rec       *record
	bits      float64
	enterCons bool
	deliver   func(rcv int, delivered bool)
}

func newTxSlot(e *Engine) *txSlot {
	s := &txSlot{e: e}
	s.deliver = func(rcv int, delivered bool) {
		s.e.deliver(s.rec, s.bits, rcv, delivered, s.enterCons)
	}
	return s
}

// NewEngine builds an engine from cfg; see Config for parameters.
func NewEngine(cfg Config) (*Engine, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	root := xrand.New(cfg.Seed)
	e := &Engine{
		cfg:       cfg,
		sim:       eventsim.New(),
		rndArrive: root.Split(),
		rndDeath:  root.Split(),
		rndUpdate: root.Split(),
		rndSvc:    root.Split(),
		records:   make(map[table.Key]*record),
		nCons:     make([]int, cfg.Receivers),
		lat:       metric.NewLatencyTracker(),
		bw:        &metric.BandwidthAccountant{},
		m:         newEngineMetrics(cfg.Obs),
	}
	e.sim.Instrument(cfg.Obs)
	e.m.rate.Set(cfg.MuData)
	lossRnd := root.Split()
	mkLoss := func(rcv int) netsim.LossModel {
		p := cfg.LossRate
		if len(cfg.LossRates) > 0 {
			p = cfg.LossRates[rcv]
		}
		switch {
		case p == 0:
			return netsim.NoLoss{}
		case cfg.BurstLen > 1:
			return netsim.NewGilbertElliottWithMean(p, cfg.BurstLen, lossRnd.Split())
		default:
			return netsim.NewBernoulliLoss(p, lossRnd.Split())
		}
	}
	if cfg.StrictShare {
		// Each queue is its own rate-limited server; a zero-rate
		// queue is simply never served.
		for q, rate := range [2]float64{cfg.MuHot, cfg.MuCold} {
			if rate <= 0 {
				continue
			}
			q := q
			ch := netsim.NewChannel(e.sim, rate)
			for i := 0; i < cfg.Receivers; i++ {
				ch.AddReceiver(mkLoss(i), 0)
			}
			ch.OnIdle = func() { e.pumpStrict(q) }
			ch.Instrument(cfg.Obs, "link", [2]string{"hot", "cold"}[q])
			e.chq[q] = ch
			e.slotQ[q] = newTxSlot(e)
		}
	} else {
		e.ch = netsim.NewChannel(e.sim, cfg.MuData)
		for i := 0; i < cfg.Receivers; i++ {
			e.ch.AddReceiver(mkLoss(i), 0)
		}
		e.ch.OnIdle = e.pump
		e.ch.Instrument(cfg.Obs, "link", "data")
		e.slot = newTxSlot(e)
	}
	e.ready = func(q int) bool { return e.queues[q].Len() > 0 }
	for i := 0; i < cfg.Receivers; i++ {
		e.meters = append(e.meters, metric.NewConsistencyMeter(0))
	}

	e.scheduler = cfg.Scheduler.build(root.Split(), cfg.PacketBits)
	e.scheduler.Add(cfg.MuHot)  // qHot
	e.scheduler.Add(cfg.MuCold) // qCold
	e.queues[qHot] = list.New()
	e.queues[qCold] = list.New()

	if cfg.Mode == ModeFeedback {
		var fbLoss netsim.LossModel = netsim.NoLoss{}
		if cfg.FbLossRate > 0 {
			fbLoss = netsim.NewBernoulliLoss(cfg.FbLossRate, lossRnd.Split())
		}
		e.fb = netsim.NewFeedbackLink(e.sim, cfg.MuFb, fbLoss, 0, cfg.NACKQueueCap)
		e.fb.OnDeliver = func(p any) { e.onNACK(p.(*record)) }
		e.fb.Instrument(cfg.Obs)
	}

	if cfg.TrackTables {
		e.pub = table.NewPublisher()
		for i := 0; i < cfg.Receivers; i++ {
			e.subs = append(e.subs, table.NewSubscriber())
		}
	}
	if cfg.SampleInterval > 0 {
		e.series = &metric.Series{Name: "consistency"}
	}
	if cfg.TraceCapacity > 0 {
		e.tr = trace.New(cfg.TraceCapacity)
	}
	return e, nil
}

// Trace returns the protocol event ring (nil unless
// Config.TraceCapacity was set).
func (e *Engine) Trace() *trace.Ring { return e.tr }

// record adds a trace event if tracing is on.
func (e *Engine) record(k trace.Kind, key table.Key, receiver int) {
	if e.tr != nil {
		e.tr.Record(e.Now(), k, string(key), receiver)
	}
}

// Now returns the engine's simulated clock.
func (e *Engine) Now() float64 { return float64(e.sim.Now()) }

// pktArrivalRate converts λ (bps) to records per second.
func (e *Engine) pktArrivalRate() float64 { return e.cfg.Lambda / e.cfg.PacketBits }

// instantaneous returns the current mean-over-receivers consistency of
// the live set (1 when the live set is empty, for time-series plots).
func (e *Engine) instantaneous() float64 {
	n := len(e.live)
	if n == 0 {
		return 1
	}
	sum := 0.0
	for _, c := range e.nCons {
		sum += float64(c) / float64(n)
	}
	return sum / float64(len(e.nCons))
}

func (e *Engine) observe() {
	now := e.Now()
	n := len(e.live)
	for i, m := range e.meters {
		m.Observe(now, e.nCons[i], n)
	}
	if e.batch != nil {
		e.batch.Observe(now, e.nCons[0], n)
	}
}

// insert creates a brand-new record.
func (e *Engine) insert() *record {
	e.keySeq++
	e.arrivals++
	rec := &record{
		key:        table.Key(fmt.Sprintf("r%08d", e.keySeq)),
		version:    1,
		born:       e.Now(),
		queue:      qNone,
		alive:      true,
		consistent: make([]bool, e.cfg.Receivers),
		latPending: true,
	}
	rec.idx = len(e.live)
	e.live = append(e.live, rec)
	e.records[rec.key] = rec
	if e.pub != nil {
		e.pub.Put(rec.key, e.valueBytes(rec), e.Now(), 0)
	}
	if e.cfg.Lifetime > 0 {
		life := e.cfg.Lifetime
		if !e.cfg.FixedLifetime {
			life = e.rndDeath.Exp(1 / e.cfg.Lifetime)
		}
		e.sim.After(life, func() {
			if rec.alive {
				e.kill(rec)
			}
		})
	}
	e.enqueue(rec, qHot)
	e.m.publishes.Inc()
	e.m.live.Set(float64(len(e.live)))
	e.record(trace.Arrive, rec.key, -1)
	e.observe()
	return rec
}

// valueBytes encodes the record's current version as its value, so
// table-based consistency compares real bytes.
func (e *Engine) valueBytes(rec *record) []byte {
	return []byte(fmt.Sprintf("%s@%d", rec.key, rec.version))
}

func (e *Engine) enqueue(rec *record, q int) {
	if rec.queue != qNone {
		panic("core: record already queued")
	}
	rec.queue = q
	rec.elem = e.queues[q].PushBack(rec)
}

func (e *Engine) dequeue(rec *record) {
	if rec.queue == qNone {
		panic("core: record not queued")
	}
	e.queues[rec.queue].Remove(rec.elem)
	rec.queue = qNone
	rec.elem = nil
}

// kill removes a record from the whole system (the death process).
func (e *Engine) kill(rec *record) {
	rec.alive = false
	e.deaths++
	if rec.queue != qNone {
		e.dequeue(rec)
	}
	// Swap-remove from the live slice.
	last := len(e.live) - 1
	e.live[rec.idx] = e.live[last]
	e.live[rec.idx].idx = rec.idx
	e.live = e.live[:last]
	for i := range e.nCons {
		if rec.consistent[i] {
			e.nCons[i]--
		}
	}
	delete(e.records, rec.key)
	if rec.latPending {
		e.lat.ObserveDeath()
		rec.latPending = false
	}
	if e.pub != nil {
		e.pub.Delete(rec.key)
		for _, s := range e.subs {
			s.Drop(rec.key)
		}
	}
	e.m.deletes.Inc()
	e.m.live.Set(float64(len(e.live)))
	e.record(trace.Die, rec.key, -1)
	e.observe()
}

// update bumps a uniformly chosen live record to a new version,
// making it inconsistent everywhere (the "update" arrow of the data
// model in Figure 1).
func (e *Engine) update() {
	if len(e.live) == 0 {
		return
	}
	rec := e.live[e.rndUpdate.Intn(len(e.live))]
	rec.version++
	rec.born = e.Now()
	e.updates++
	e.m.updates.Inc()
	if rec.latPending {
		// Previous version never arrived; it is now superseded.
		e.lat.ObserveDeath()
	}
	rec.latPending = true
	for i := range rec.consistent {
		if rec.consistent[i] {
			rec.consistent[i] = false
			e.nCons[i]--
		}
	}
	if e.pub != nil {
		e.pub.Put(rec.key, e.valueBytes(rec), e.Now(), 0)
	}
	e.record(trace.Update, rec.key, -1)
	switch {
	case rec.inService:
		rec.dirty = true
	case rec.queue == qCold:
		// The sender knows this is new data: promote to hot.
		e.dequeue(rec)
		e.enqueue(rec, qHot)
	}
	e.observe()
	e.pump()
}

// pump starts the next transmission on whichever server is idle.
func (e *Engine) pump() {
	if e.cfg.StrictShare {
		e.pumpStrict(qHot)
		e.pumpStrict(qCold)
		return
	}
	if e.ch.Busy() {
		return
	}
	id, ok := e.scheduler.Pick(e.ready)
	if !ok {
		return
	}
	rec := e.pop(id)
	bits := e.drawBits()
	e.scheduler.Charge(id, bits)
	e.transmit(e.ch, e.slot, rec, bits)
}

// pumpStrict serves queue q on its dedicated rate-limited channel.
func (e *Engine) pumpStrict(q int) {
	ch := e.chq[q]
	if ch == nil || ch.Busy() || e.queues[q].Len() == 0 {
		return
	}
	rec := e.pop(q)
	e.transmit(ch, e.slotQ[q], rec, e.drawBits())
}

func (e *Engine) pop(q int) *record {
	rec := e.queues[q].Front().Value.(*record)
	e.dequeue(rec)
	rec.inService = true
	rec.txVersion = rec.version
	if q == qHot {
		e.m.annHot.Inc()
	} else {
		e.m.annCold.Inc()
	}
	return rec
}

func (e *Engine) drawBits() float64 {
	if e.cfg.DetService {
		return e.cfg.PacketBits
	}
	bits := e.rndSvc.Exp(1 / e.cfg.PacketBits)
	if bits <= 0 {
		bits = 1
	}
	return bits
}

func (e *Engine) transmit(ch *netsim.Channel, slot *txSlot, rec *record, bits float64) {
	slot.rec, slot.bits, slot.enterCons = rec, bits, rec.consistent[0]
	e.m.txBits.Add(uint64(bits))
	e.record(trace.Transmit, rec.key, -1)
	ch.Transmit(bits, slot.deliver)
}

// deliver handles one receiver's outcome of a completed service; the
// channel then invokes finalize via OnIdle (wired in NewEngine through
// pump — see serviceDone below, scheduled as the last delivery).
func (e *Engine) deliver(rec *record, bits float64, rcv int, delivered bool, enterCons bool) {
	if !rec.alive {
		// The record's lifetime lapsed mid-service; the in-flight
		// announcement is moot. Account the bits and move on.
		if rcv == 0 {
			e.bw.Lost(bits)
		}
		if rcv == e.cfg.Receivers-1 {
			rec.inService = false
			e.pump()
		}
		return
	}
	stale := rec.txVersion != rec.version // updated mid-service
	if delivered && !stale {
		e.record(trace.Deliver, rec.key, rcv)
		if !rec.consistent[rcv] {
			rec.consistent[rcv] = true
			e.nCons[rcv]++
			if rcv == 0 {
				e.bw.Useful(bits)
				e.m.deliveries.Inc()
				if rec.latPending {
					e.lat.ObserveDelivery(e.Now() - rec.born)
					e.m.tRec.Observe(e.Now() - rec.born)
					rec.latPending = false
				}
			}
			if e.subs != nil {
				e.subs[rcv].Apply(rec.key, e.valueBytes(rec), rec.version, e.Now(), e.receiverTTL())
			}
			e.observe()
		} else {
			if rcv == 0 {
				e.bw.Redundant(bits)
				e.m.duplicates.Inc()
			}
			if e.subs != nil {
				e.subs[rcv].Apply(rec.key, e.valueBytes(rec), rec.version, e.Now(), e.receiverTTL())
			}
		}
	} else {
		e.record(trace.Lose, rec.key, rcv)
		if rcv == 0 {
			e.bw.Lost(bits)
			e.m.losses.Inc()
		}
		if e.cfg.Mode == ModeFeedback && !rec.consistent[rcv] {
			// The receiver detects the loss (ADU gap) and NACKs.
			e.record(trace.NACK, rec.key, rcv)
			e.nacksGen++
			e.m.nacksSent.Inc()
			e.bw.Feedback(e.cfg.NACKBits)
			e.fb.SendPayload(e.cfg.NACKBits, rec)
		}
	}
	if rcv == e.cfg.Receivers-1 {
		// Last receiver outcome processed: finalize the service.
		e.finalize(rec, enterCons)
	}
}

func (e *Engine) receiverTTL() float64 {
	if e.cfg.ReceiverTTL > 0 {
		return e.cfg.ReceiverTTL
	}
	return 1e18 // effectively immortal; death is global in the model
}

// finalize applies the death coin and re-queues survivors.
func (e *Engine) finalize(rec *record, enterCons bool) {
	rec.inService = false
	dead := e.rndDeath.Bernoulli(e.cfg.Pd)
	enter := 0
	if enterCons {
		enter = 1
	}
	switch {
	case dead:
		e.transitions[enter][2]++
		e.kill(rec)
	case rec.consistent[0]:
		e.transitions[enter][1]++
	default:
		e.transitions[enter][0]++
	}
	if !dead {
		switch {
		case e.cfg.Mode == ModeOpenLoop:
			e.enqueue(rec, qHot) // single queue
		case rec.dirty:
			rec.dirty = false
			e.enqueue(rec, qHot)
		default:
			e.enqueue(rec, qCold)
		}
	}
	// The completing channel fires OnIdle right after the deliveries;
	// pump explicitly too so that a record re-queued onto the *other*
	// strict-mode server starts service immediately.
	e.pump()
}

// onNACK processes a NACK arriving at the sender: promote the record
// from the cold queue to the tail of the hot queue (Figure 7's C→H
// transition).
func (e *Engine) onNACK(rec *record) {
	e.nacksRecv++
	e.m.nacksRecv.Inc()
	if !rec.alive {
		return // stale NACK for a dead record
	}
	if rec.queue == qCold {
		e.dequeue(rec)
		e.enqueue(rec, qHot)
		e.record(trace.Promote, rec.key, -1)
		e.promoted++
		e.m.promotions.Inc()
		e.pump()
	}
}

func (e *Engine) resetMetrics() {
	now := e.Now()
	for i := range e.meters {
		m := metric.NewConsistencyMeter(now)
		m.Observe(now, e.nCons[i], len(e.live))
		e.meters[i] = m
	}
	e.lat = metric.NewLatencyTracker()
	e.bw = &metric.BandwidthAccountant{}
	e.transitions = [2][3]int{}
	e.arrivals, e.deaths, e.updates = 0, 0, 0
	e.nacksGen, e.nacksRecv, e.promoted = 0, 0, 0
}

// Run simulates until the given time (seconds) and returns the
// measured results. Run may be called once per engine.
func (e *Engine) Run(duration float64) Result {
	if duration <= 0 {
		panic(fmt.Sprintf("core: non-positive duration %v", duration))
	}
	// Seed initial records.
	for i := 0; i < e.cfg.InitialRecords; i++ {
		e.insert()
	}
	e.pump()
	// Arrival process.
	if e.cfg.Lambda > 0 {
		var arrive func()
		arrive = func() {
			e.insert()
			e.pump()
			e.sim.After(e.rndArrive.Exp(e.pktArrivalRate()), arrive)
		}
		e.sim.After(e.rndArrive.Exp(e.pktArrivalRate()), arrive)
	}
	// Update process.
	if e.cfg.UpdateRate > 0 {
		var upd func()
		upd = func() {
			e.update()
			e.sim.After(e.rndUpdate.Exp(e.cfg.UpdateRate), upd)
		}
		e.sim.After(e.rndUpdate.Exp(e.cfg.UpdateRate), upd)
	}
	// Receiver-side expiry sweeps (extension knob).
	if e.cfg.ReceiverTTL > 0 && e.subs != nil {
		e.sim.Ticker(e.cfg.ReceiverTTL/4, func() {
			for _, s := range e.subs {
				s.Sweep(e.Now())
			}
		})
	}
	// Time-series sampling.
	if e.series != nil {
		e.sim.Ticker(e.cfg.SampleInterval, func() {
			e.series.Add(e.Now(), e.instantaneous())
		})
	}
	// Warmup reset, plus batch-means CI estimation over the
	// measurement window (10 batches).
	measured := duration - e.cfg.Warmup
	startBatch := func() {
		e.batch = metric.NewBatchMeans(e.Now(), measured/10)
		e.batch.Observe(e.Now(), e.nCons[0], len(e.live))
	}
	if e.cfg.Warmup > 0 && e.cfg.Warmup < duration {
		e.sim.At(eventsim.Time(e.cfg.Warmup), func() {
			e.resetMetrics()
			startBatch()
		})
	} else {
		startBatch()
	}
	e.sim.RunUntil(eventsim.Time(duration))
	for _, m := range e.meters {
		m.Finish(duration)
	}
	if e.batch != nil {
		e.batch.Finish(duration)
	}
	return e.result(duration)
}
