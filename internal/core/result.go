package core

import (
	"softstate/internal/metric"
	"softstate/internal/table"
)

// Result is the measurement summary of one protocol run.
type Result struct {
	Mode     Mode
	Duration float64

	// Consistency is the time-averaged system consistency E[c(t)]
	// over the live set (empty-set intervals excluded), averaged
	// across receivers — the quantity the paper's simulations plot.
	Consistency float64
	// ConsistencyWithEmpty counts empty-live-set intervals as zero
	// consistency, matching the occupied-state sum of the paper's
	// closed form E[c(t)] = ρ·q.
	ConsistencyWithEmpty float64
	// BusyFraction is the fraction of time the live set was non-empty
	// (the empirical utilization ρ).
	BusyFraction float64

	// ConsistencyCI is a 95% confidence half-width for Consistency
	// (receiver 0), from the method of batch means over 10 batches of
	// the measurement window.
	ConsistencyCI float64

	// PerReceiver holds each receiver's busy-average consistency.
	PerReceiver []float64

	// Receive latency T_rec (receiver 0, successful deliveries only).
	MeanLatency   float64
	P50Latency    float64
	P95Latency    float64
	DeliveryRatio float64 // delivered / (delivered + died-undelivered)

	// Bandwidth accounting (receiver-0 perspective for data classes).
	RedundantFraction float64 // of delivered data transmissions
	WastedFraction    float64 // redundant + lost, of all data bits
	DataBits          float64
	FeedbackBits      float64

	// Counters.
	Arrivals      int
	Deaths        int
	Updates       int
	Transmissions int
	NACKsSent     int // generated at receivers
	NACKsRecv     int // delivered to the sender
	NACKsDropped  int // dropped at the feedback queue
	Promotions    int // cold→hot promotions caused by NACKs

	// Transitions is the empirical Table 1: [enter I=0/C=1] ×
	// [exit I=0/C=1/D=2] service-completion counts for receiver 0.
	Transitions [2][3]int

	// Series is the sampled consistency time series (nil unless
	// Config.SampleInterval > 0).
	Series *metric.Series
}

// TransitionProbabilities normalizes the Table 1 counts into empirical
// probabilities; rows with no observations return zeros.
func (r Result) TransitionProbabilities() [2][3]float64 {
	var out [2][3]float64
	for i := 0; i < 2; i++ {
		total := 0
		for j := 0; j < 3; j++ {
			total += r.Transitions[i][j]
		}
		if total == 0 {
			continue
		}
		for j := 0; j < 3; j++ {
			out[i][j] = float64(r.Transitions[i][j]) / float64(total)
		}
	}
	return out
}

func (e *Engine) result(duration float64) Result {
	res := Result{
		Mode:          e.cfg.Mode,
		Duration:      duration,
		MeanLatency:   e.lat.Mean(),
		P50Latency:    e.lat.Quantile(0.5),
		P95Latency:    e.lat.Quantile(0.95),
		DeliveryRatio: e.lat.DeliveryRatio(),

		RedundantFraction: e.bw.RedundantFraction(),
		WastedFraction:    e.bw.WastedFraction(),
		DataBits:          e.bw.DataBits(),
		FeedbackBits:      e.bw.FeedbackBits,

		Arrivals:      e.arrivals,
		Deaths:        e.deaths,
		Updates:       e.updates,
		Transmissions: e.transmissions(),
		NACKsSent:     e.nacksGen,
		NACKsRecv:     e.nacksRecv,
		Promotions:    e.promoted,
		Transitions:   e.transitions,
		Series:        e.series,
	}
	if e.fb != nil {
		res.NACKsDropped = e.fb.Dropped()
	}
	sumBusy, sumAvg := 0.0, 0.0
	for _, m := range e.meters {
		res.PerReceiver = append(res.PerReceiver, m.BusyAverage())
		sumBusy += m.BusyAverage()
		sumAvg += m.Average()
	}
	n := float64(len(e.meters))
	res.Consistency = sumBusy / n
	res.ConsistencyWithEmpty = sumAvg / n
	res.BusyFraction = e.meters[0].BusyFraction()
	if e.batch != nil {
		res.ConsistencyCI = e.batch.CI95()
	}
	return res
}

// transmissions sums completed services across all data servers.
func (e *Engine) transmissions() int {
	if e.ch != nil {
		return e.ch.Transmissions()
	}
	n := 0
	for _, ch := range e.chq {
		if ch != nil {
			n += ch.Transmissions()
		}
	}
	return n
}

// TableConsistency cross-checks the engine's incremental counters
// against a full comparison of the mirrored publisher/subscriber
// tables (requires Config.TrackTables). It returns, for each receiver,
// (consistent, live) at the current instant.
func (e *Engine) TableConsistency() ([][2]int, bool) {
	if e.pub == nil {
		return nil, false
	}
	out := make([][2]int, len(e.subs))
	for i, s := range e.subs {
		c, l := table.Consistency(e.pub, s, e.Now())
		out[i] = [2]int{c, l}
	}
	return out, true
}

// CounterConsistency returns the engine's incremental
// (consistent, live) counters per receiver, for cross-checking.
func (e *Engine) CounterConsistency() [][2]int {
	out := make([][2]int, len(e.nCons))
	for i, c := range e.nCons {
		out[i] = [2]int{c, len(e.live)}
	}
	return out
}

// LiveRecords returns the current number of live records.
func (e *Engine) LiveRecords() int { return len(e.live) }

// QueueLens returns the hot and cold queue lengths.
func (e *Engine) QueueLens() (hot, cold int) {
	return e.queues[qHot].Len(), e.queues[qCold].Len()
}
