package congestion

import (
	"math"
	"testing"
)

func TestTokenBucketBasics(t *testing.T) {
	b := NewTokenBucket(1000, 500) // 1000 bits/s, 500-bit bucket
	if !b.Allow(0, 500) {
		t.Fatal("full bucket denied its burst")
	}
	if b.Allow(0, 1) {
		t.Fatal("empty bucket allowed a send")
	}
	// After 0.25 s, 250 tokens refilled.
	if !b.Allow(0.25, 250) {
		t.Fatal("refill not credited")
	}
	if b.Allow(0.25, 1) {
		t.Fatal("over-credit after refill")
	}
}

func TestTokenBucketBurstCap(t *testing.T) {
	b := NewTokenBucket(1000, 500)
	b.Allow(0, 500)
	// A long idle period must not accumulate beyond the bucket depth.
	if b.Allow(100, 501) {
		t.Fatal("bucket exceeded its depth")
	}
	if !b.Allow(100, 500) {
		t.Fatal("bucket did not refill to depth")
	}
}

func TestTokenBucketTimeUntil(t *testing.T) {
	b := NewTokenBucket(1000, 500)
	b.Allow(0, 500)
	if got := b.TimeUntil(0, 300); math.Abs(got-0.3) > 1e-9 {
		t.Errorf("TimeUntil = %v, want 0.3", got)
	}
	if got := b.TimeUntil(1, 300); got != 0 {
		t.Errorf("TimeUntil after refill = %v, want 0", got)
	}
}

func TestTokenBucketRateChange(t *testing.T) {
	b := NewTokenBucket(1000, 1000)
	b.Allow(0, 1000)
	b.SetRate(2000)
	if b.Rate() != 2000 {
		t.Errorf("Rate = %v", b.Rate())
	}
	if !b.Allow(0.5, 1000) {
		t.Error("doubled rate did not refill accordingly")
	}
}

func TestTokenBucketEnforcesLongRunRate(t *testing.T) {
	b := NewTokenBucket(1000, 100)
	sent := 0.0
	for now := 0.0; now < 10; now += 0.01 {
		if b.Allow(now, 50) {
			sent += 50
		}
	}
	// Long-run throughput ≈ rate × time (+ one burst).
	if sent > 1000*10+100+1 || sent < 1000*10*0.95 {
		t.Errorf("sent %v bits in 10 s at 1000 bps", sent)
	}
}

func TestTokenBucketValidation(t *testing.T) {
	for _, fn := range []func(){
		func() { NewTokenBucket(0, 1) },
		func() { NewTokenBucket(1, 0) },
		func() { NewTokenBucket(1, 1).Allow(0, 0) },
		func() { NewTokenBucket(1, 1).SetRate(-1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid token bucket usage accepted")
				}
			}()
			fn()
		}()
	}
}

func TestAIMDIncreaseOnCleanReports(t *testing.T) {
	a := NewAIMD(10000, 1000, 100000)
	r0 := a.Rate()
	for i := 0; i < 10; i++ {
		a.OnReport(0)
	}
	if a.Rate() <= r0 {
		t.Errorf("rate did not increase: %v -> %v", r0, a.Rate())
	}
	inc, dec := a.Stats()
	if inc != 10 || dec != 0 {
		t.Errorf("stats = (%d, %d)", inc, dec)
	}
}

func TestAIMDDecreaseOnLoss(t *testing.T) {
	a := NewAIMD(10000, 1000, 100000)
	got := a.OnReport(0.3)
	if math.Abs(got-5000) > 1e-9 {
		t.Errorf("rate after loss = %v, want 5000", got)
	}
}

func TestAIMDBounds(t *testing.T) {
	a := NewAIMD(2000, 1000, 3000)
	for i := 0; i < 20; i++ {
		a.OnReport(0.5)
	}
	if a.Rate() != 1000 {
		t.Errorf("rate below min: %v", a.Rate())
	}
	for i := 0; i < 1000; i++ {
		a.OnReport(0)
	}
	if a.Rate() != 3000 {
		t.Errorf("rate above max: %v", a.Rate())
	}
}

func TestAIMDToleranceBoundary(t *testing.T) {
	a := NewAIMD(10000, 1000, 100000)
	a.OnReport(a.Tolerance) // exactly at tolerance: not congestion
	inc, dec := a.Stats()
	if inc != 1 || dec != 0 {
		t.Errorf("tolerance-boundary report treated as loss: (%d, %d)", inc, dec)
	}
	a.OnReport(-0.5) // negative loss clamps to 0
	inc, _ = a.Stats()
	if inc != 2 {
		t.Error("negative loss not clamped")
	}
}

func TestAIMDValidation(t *testing.T) {
	for _, fn := range []func(){
		func() { NewAIMD(5, 0, 10) },
		func() { NewAIMD(5, 10, 1) },
		func() { NewAIMD(0.5, 1, 10) },
		func() { NewAIMD(20, 1, 10) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid AIMD accepted")
				}
			}()
			fn()
		}()
	}
}

// AIMD sawtooth: under periodic loss the long-run rate oscillates in a
// bounded band rather than diverging or collapsing.
func TestAIMDSawtooth(t *testing.T) {
	a := NewAIMD(50000, 1000, 1000000)
	var min, max float64 = math.Inf(1), 0
	for cycle := 0; cycle < 200; cycle++ {
		for i := 0; i < 9; i++ {
			a.OnReport(0)
		}
		a.OnReport(0.1)
		if cycle > 50 { // after convergence
			min = math.Min(min, a.Rate())
			max = math.Max(max, a.Rate())
		}
	}
	if max > 2*min+10*a.Increase {
		t.Errorf("sawtooth band too wide: [%v, %v]", min, max)
	}
	if min < 1000 || max > 1000000 {
		t.Errorf("sawtooth out of bounds: [%v, %v]", min, max)
	}
}

func TestTokenBucketBalanceTake(t *testing.T) {
	b := NewTokenBucket(1000, 100)
	if got := b.Balance(0); got != 100 {
		t.Fatalf("fresh balance %v, want full burst 100", got)
	}
	// Take may overdraw; the debt is repaid out of future refill.
	b.Take(0, 350)
	if got := b.Balance(0); got != -250 {
		t.Fatalf("balance after overdraft %v, want -250", got)
	}
	if got := b.Balance(0.25); got != 0 {
		t.Fatalf("balance after 0.25 s refill %v, want 0", got)
	}
	if got := b.Balance(1); got != 100 {
		t.Fatalf("balance should cap at burst, got %v", got)
	}
}

func TestTokenBucketTakeEnforcesLongRunRate(t *testing.T) {
	// Gate-on-positive-balance + exact Take is how driven senders
	// pace; it must hold the same long-run rate Allow does.
	b := NewTokenBucket(1000, 100)
	sent := 0.0
	for now := 0.0; now < 10; now += 0.001 {
		if b.Balance(now) > 0 {
			b.Take(now, 170) // "true size" learned after the gate
			sent += 170
		}
	}
	if sent > 1000*10+100+170 || sent < 1000*10*0.95 {
		t.Errorf("sent %v bits in 10 s at 1000 bps", sent)
	}
}

func TestTokenBucketTakeValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Take(now, 0) should panic")
		}
	}()
	NewTokenBucket(1, 1).Take(0, 0)
}
