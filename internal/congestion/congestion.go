// Package congestion provides the small congestion-management
// substrate SSTP delegates to (the paper explicitly leaves total-rate
// determination to an external module like the CM): a token-bucket
// pacer that enforces a byte rate on outgoing datagrams, and an AIMD
// rate controller driven by receiver-report loss estimates. SSTP asks
// this module "what is my session bandwidth", then divides that
// bandwidth with the profile-driven allocator.
package congestion

import (
	"fmt"

	"softstate/internal/obs"
)

// TokenBucket enforces an average rate with bounded burst. All
// methods take explicit timestamps in seconds (simulated or wall
// clock).
type TokenBucket struct {
	rate   float64 // tokens (e.g. bits) per second
	burst  float64 // bucket depth
	tokens float64
	last   float64
}

// NewTokenBucket returns a full bucket with the given rate and depth.
func NewTokenBucket(rate, burst float64) *TokenBucket {
	if rate <= 0 || burst <= 0 {
		panic(fmt.Sprintf("congestion: rate %v and burst %v must be positive", rate, burst))
	}
	return &TokenBucket{rate: rate, burst: burst, tokens: burst}
}

func (b *TokenBucket) refill(now float64) {
	if now > b.last {
		b.tokens += (now - b.last) * b.rate
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
		b.last = now
	}
}

// Allow consumes cost tokens if available at time now, reporting
// whether the send may proceed.
func (b *TokenBucket) Allow(now, cost float64) bool {
	if cost <= 0 {
		panic(fmt.Sprintf("congestion: non-positive cost %v", cost))
	}
	b.refill(now)
	if b.tokens < cost {
		return false
	}
	b.tokens -= cost
	return true
}

// TimeUntil returns how long after now the bucket will hold cost
// tokens (0 if it already does).
func (b *TokenBucket) TimeUntil(now, cost float64) float64 {
	b.refill(now)
	if b.tokens >= cost {
		return 0
	}
	return (cost - b.tokens) / b.rate
}

// Balance returns the token balance after refilling to time now. A
// driven sender (one paced by an external scheduler rather than its
// own send loop) gates on a positive balance before building a
// datagram, then charges the true size with Take.
func (b *TokenBucket) Balance(now float64) float64 {
	b.refill(now)
	return b.tokens
}

// Take unconditionally consumes cost tokens at time now, letting the
// balance go negative. Callers that only learn a send's true cost
// after committing to it charge exactly and repay any overdraft out
// of future refill, so the long-run rate still holds.
func (b *TokenBucket) Take(now, cost float64) {
	if cost <= 0 {
		panic(fmt.Sprintf("congestion: non-positive cost %v", cost))
	}
	b.refill(now)
	b.tokens -= cost
}

// Rate returns the current token rate.
func (b *TokenBucket) Rate() float64 { return b.rate }

// SetRate changes the refill rate (e.g. when AIMD adapts).
func (b *TokenBucket) SetRate(rate float64) {
	if rate <= 0 {
		panic(fmt.Sprintf("congestion: rate %v must be positive", rate))
	}
	b.rate = rate
}

// AIMD is a loss-driven additive-increase / multiplicative-decrease
// rate controller: each receiver-report interval with loss at or below
// the tolerance adds Increase bps; an interval above it multiplies the
// rate by Decrease.
type AIMD struct {
	rate     float64
	min, max float64

	// Increase is the additive step in rate units per report.
	Increase float64
	// Decrease is the multiplicative backoff factor in (0, 1).
	Decrease float64
	// Tolerance is the loss fraction considered congestion-free.
	Tolerance float64

	increases int
	decreases int

	incC  *obs.Counter
	decC  *obs.Counter
	rateG *obs.Gauge
}

// Instrument publishes the controller's rate decisions to reg:
// sstp_rate_changes_total{dir="up"|"down"} and the sstp_send_rate_bps
// gauge. Safe with a nil registry.
func (a *AIMD) Instrument(reg *obs.Registry) {
	a.incC = reg.Counter("sstp_rate_changes_total", "dir", "up")
	a.decC = reg.Counter("sstp_rate_changes_total", "dir", "down")
	a.rateG = reg.Gauge("sstp_send_rate_bps")
	a.rateG.Set(a.rate)
}

// NewAIMD returns a controller starting at initial, bounded to
// [min, max], with conventional defaults (increase 5% of min per
// report, decrease 0.5, tolerance 2%).
func NewAIMD(initial, min, max float64) *AIMD {
	if min <= 0 || max < min || initial < min || initial > max {
		panic(fmt.Sprintf("congestion: bad AIMD bounds initial=%v min=%v max=%v", initial, min, max))
	}
	return &AIMD{
		rate: initial, min: min, max: max,
		Increase: 0.05 * min, Decrease: 0.5, Tolerance: 0.02,
	}
}

// Rate returns the current sending rate.
func (a *AIMD) Rate() float64 { return a.rate }

// OnReport folds one receiver-report loss estimate into the rate and
// returns the new rate.
func (a *AIMD) OnReport(loss float64) float64 {
	if loss < 0 {
		loss = 0
	}
	if loss > a.Tolerance {
		a.rate *= a.Decrease
		a.decreases++
		a.decC.Inc()
	} else {
		a.rate += a.Increase
		a.increases++
		a.incC.Inc()
	}
	if a.rate < a.min {
		a.rate = a.min
	}
	if a.rate > a.max {
		a.rate = a.max
	}
	a.rateG.Set(a.rate)
	return a.rate
}

// Stats returns the number of increase and decrease steps taken.
func (a *AIMD) Stats() (increases, decreases int) { return a.increases, a.decreases }
