package routed

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"softstate/internal/sstp"
)

func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestRouteValidate(t *testing.T) {
	good := Route{Prefix: "10.0.0.0/8", NextHop: "192.168.0.1", Metric: 3}
	if err := good.Validate(); err != nil {
		t.Errorf("valid route rejected: %v", err)
	}
	bad := []Route{
		{},
		{Prefix: "10.0.0.0/8"},             // no metric
		{Prefix: "10.0.0.0/8", Metric: 17}, // beyond infinity
		{Prefix: "a b", Metric: 1},         // space in prefix
		{Prefix: "a//b", Metric: 1},        // empty path component
		{Prefix: "x", Metric: 1, NextHop: "bad hop"}, // space in nexthop
	}
	for i, r := range bad {
		if err := r.Validate(); err == nil {
			t.Errorf("bad route %d accepted: %+v", i, r)
		}
	}
}

func TestRouteMarshalRoundTrip(t *testing.T) {
	in := Route{Prefix: "10.1.0.0/16", NextHop: "gw1", Metric: 7, Origin: "r1"}
	out, err := unmarshalRoute(in.Prefix, in.Origin, in.marshal())
	if err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Errorf("round trip: %+v != %+v", out, in)
	}
	if _, err := unmarshalRoute("p", "o", []byte("garbage")); err == nil {
		t.Error("garbage value accepted")
	}
	if _, err := unmarshalRoute("p", "o", []byte("nexthop=x")); err == nil {
		t.Error("metric-less value accepted")
	}
}

func TestBetterOrdering(t *testing.T) {
	a := Route{Metric: 2, Origin: "zeta"}
	b := Route{Metric: 3, Origin: "alpha"}
	if !better(a, b) {
		t.Error("lower metric should win")
	}
	c := Route{Metric: 2, Origin: "alpha"}
	if !better(c, a) {
		t.Error("ties should break by origin name")
	}
}

// twoRouterSetup builds routers r1 and r2 adjacent to one RIB over a
// shared in-memory network, each on its own SSTP session.
func twoRouterSetup(t *testing.T) (*Router, *Router, *RIB, *sstp.MemNetwork, func()) {
	t.Helper()
	nw := sstp.NewMemNetwork(41)
	rib := NewRIB()
	var closers []func()

	mkRouter := func(name string, session uint64) *Router {
		sc := nw.Endpoint(sstp.MemAddr(name))
		s, err := sstp.NewSender(sstp.SenderConfig{
			Session: session, SenderID: 1,
			Conn: sc, Dest: sstp.MemAddr("rib-" + name),
			TotalRate: 128_000, SummaryInterval: 60 * time.Millisecond,
			TTL: 1500 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		s.Start()
		closers = append(closers, func() { s.Close() })
		_, err = rib.AddAdjacency(name, sstp.ReceiverConfig{
			Session: session, ReceiverID: 2,
			Conn:         nw.Endpoint(sstp.MemAddr("rib-" + name)),
			FeedbackDest: sstp.MemAddr(name),
			NACKWindow:   30 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		return NewRouter(name, s)
	}
	r1 := mkRouter("r1", 101)
	r2 := mkRouter("r2", 102)
	cleanup := func() {
		for _, c := range closers {
			c()
		}
		rib.Close()
	}
	return r1, r2, rib, nw, cleanup
}

func TestBestPathSelection(t *testing.T) {
	r1, r2, rib, _, cleanup := twoRouterSetup(t)
	defer cleanup()

	// Both routers advertise the same prefix; r2 has the better path.
	if err := r1.Advertise(Route{Prefix: "10.1.0.0/16", NextHop: "via-r1", Metric: 5}); err != nil {
		t.Fatal(err)
	}
	if err := r2.Advertise(Route{Prefix: "10.1.0.0/16", NextHop: "via-r2", Metric: 2}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 10*time.Second, "best = r2", func() bool {
		b, ok := rib.Best("10.1.0.0/16")
		return ok && b.Origin == "r2"
	})
	alts := rib.Alternates("10.1.0.0/16")
	if len(alts) != 2 || alts[0].Origin != "r2" || alts[1].Origin != "r1" {
		t.Errorf("alternates = %+v", alts)
	}
	if rib.Len() != 1 {
		t.Errorf("Len = %d", rib.Len())
	}
}

func TestFailoverOnRouterCrash(t *testing.T) {
	r1, r2, rib, nw, cleanup := twoRouterSetup(t)
	defer cleanup()

	r1.Advertise(Route{Prefix: "10.2.0.0/16", NextHop: "via-r1", Metric: 1})
	r2.Advertise(Route{Prefix: "10.2.0.0/16", NextHop: "via-r2", Metric: 4})
	waitFor(t, 10*time.Second, "best = r1", func() bool {
		b, ok := rib.Best("10.2.0.0/16")
		return ok && b.Origin == "r1"
	})

	var events []string
	var mu sync.Mutex
	rib.OnBestChange = func(prefix string, best Route, ok bool) {
		mu.Lock()
		events = append(events, fmt.Sprintf("%s->%s(%v)", prefix, best.Origin, ok))
		mu.Unlock()
	}

	// r1 crashes: its refreshes stop, the replica expires, and the RIB
	// fails over to r2 with no withdrawal message ever sent.
	nw.SetLoss("r1", "rib-r1", 1)
	waitFor(t, 10*time.Second, "failover to r2", func() bool {
		b, ok := rib.Best("10.2.0.0/16")
		return ok && b.Origin == "r2"
	})
	mu.Lock()
	defer mu.Unlock()
	if len(events) == 0 {
		t.Error("no OnBestChange events during failover")
	}
}

func TestPoisonedRouteWithdraws(t *testing.T) {
	r1, _, rib, _, cleanup := twoRouterSetup(t)
	defer cleanup()
	r1.Advertise(Route{Prefix: "10.3.0.0/16", NextHop: "gw", Metric: 3})
	waitFor(t, 10*time.Second, "installed", func() bool {
		_, ok := rib.Best("10.3.0.0/16")
		return ok
	})
	// Metric 16 = unreachable: advertised as a withdrawal.
	if err := r1.Advertise(Route{Prefix: "10.3.0.0/16", NextHop: "gw", Metric: Infinity}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 10*time.Second, "withdrawn", func() bool {
		_, ok := rib.Best("10.3.0.0/16")
		return !ok
	})
}

func TestTableSorted(t *testing.T) {
	r1, _, rib, _, cleanup := twoRouterSetup(t)
	defer cleanup()
	for _, p := range []string{"10.9.0.0/16", "10.1.0.0/16", "10.5.0.0/16"} {
		r1.Advertise(Route{Prefix: p, NextHop: "gw", Metric: 1})
	}
	waitFor(t, 10*time.Second, "three routes", func() bool { return rib.Len() == 3 })
	tbl := rib.Table()
	if tbl[0].Prefix != "10.1.0.0/16" || tbl[2].Prefix != "10.9.0.0/16" {
		t.Errorf("table not sorted: %+v", tbl)
	}
}

func TestAdjacencyValidation(t *testing.T) {
	rib := NewRIB()
	if _, err := rib.AddAdjacency("", sstp.ReceiverConfig{}); err == nil {
		t.Error("empty origin accepted")
	}
	if _, err := rib.AddAdjacency("x", sstp.ReceiverConfig{}); err == nil {
		t.Error("invalid receiver config accepted")
	}
}

func TestRouterPanicsOnBadArgs(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewRouter with nil sender did not panic")
		}
	}()
	NewRouter("x", nil)
}
