// Package routed is a RIP-flavoured routing application built on SSTP
// — route advertisements as soft state, the setting in which Clark
// coined the term: a router announces its routes periodically; a
// neighbor holds each route only while refreshes keep arriving, so a
// crashed router's routes drain from the network by themselves, and a
// recomputed path re-establishes through normal announcements.
//
// A Router wraps an SSTP sender (one adjacency per neighbor group); a
// RIB merges the replicas of any number of adjacencies — one SSTP
// receiver per neighbor — and runs best-path selection (lowest metric,
// ties by origin name) with change notifications.
package routed

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"

	"softstate/internal/sstp"
)

// Infinity is the RIP unreachable metric; routes at or above it are
// treated as withdrawn.
const Infinity = 16

// Route is one advertised path.
type Route struct {
	Prefix  string // e.g. "10.1.2.0/24"
	NextHop string
	Metric  int    // 1..15; >= Infinity means unreachable
	Origin  string // advertising router's name
}

// Validate checks advertisability.
func (r Route) Validate() error {
	if r.Prefix == "" || strings.ContainsAny(r.Prefix, " \n") {
		return fmt.Errorf("routed: bad prefix %q", r.Prefix)
	}
	if strings.Contains(r.Prefix, "//") {
		return fmt.Errorf("routed: bad prefix %q", r.Prefix)
	}
	if r.Metric < 1 || r.Metric > Infinity {
		return fmt.Errorf("routed: metric %d out of [1, %d]", r.Metric, Infinity)
	}
	if strings.ContainsAny(r.NextHop, " \n") {
		return fmt.Errorf("routed: bad next hop %q", r.NextHop)
	}
	return nil
}

// marshal encodes a route value (prefix and origin live in the key).
func (r Route) marshal() []byte {
	return []byte(fmt.Sprintf("metric=%d nexthop=%s", r.Metric, r.NextHop))
}

func unmarshalRoute(prefix, origin string, value []byte) (Route, error) {
	r := Route{Prefix: prefix, Origin: origin}
	for _, f := range strings.Fields(string(value)) {
		kv := strings.SplitN(f, "=", 2)
		if len(kv) != 2 {
			return r, fmt.Errorf("routed: malformed field %q", f)
		}
		switch kv[0] {
		case "metric":
			m, err := strconv.Atoi(kv[1])
			if err != nil {
				return r, fmt.Errorf("routed: bad metric %q", kv[1])
			}
			r.Metric = m
		case "nexthop":
			r.NextHop = kv[1]
		}
	}
	if r.Metric == 0 {
		return r, fmt.Errorf("routed: missing metric")
	}
	return r, nil
}

// keyFor encodes a route key; prefixes may contain '/', which the
// namespace treats as hierarchy — convenient, since descent repair
// then recovers whole address blocks together.
func keyFor(prefix string) string { return "routes/" + prefix }

func prefixOf(key string) (string, bool) {
	if !strings.HasPrefix(key, "routes/") {
		return "", false
	}
	return strings.TrimPrefix(key, "routes/"), true
}

// Router is the advertising side of one adjacency.
type Router struct {
	name   string
	sender *sstp.Sender
}

// NewRouter wraps a started-or-startable SSTP sender; name identifies
// this router to its neighbors' RIBs.
func NewRouter(name string, sender *sstp.Sender) *Router {
	if name == "" || sender == nil {
		panic("routed: router needs a name and a sender")
	}
	return &Router{name: name, sender: sender}
}

// Name returns the router's name.
func (rt *Router) Name() string { return rt.name }

// Advertise announces or updates a route. A metric >= Infinity
// withdraws it (poisoned-route semantics).
func (rt *Router) Advertise(r Route) error {
	r.Origin = rt.name
	if r.Metric >= Infinity {
		rt.Withdraw(r.Prefix)
		return nil
	}
	if err := r.Validate(); err != nil {
		return err
	}
	return rt.sender.Publish(keyFor(r.Prefix), r.marshal(), 0)
}

// Withdraw removes a route advertisement.
func (rt *Router) Withdraw(prefix string) bool {
	return rt.sender.Delete(keyFor(prefix))
}

// Len returns the number of advertised routes.
func (rt *Router) Len() int { return rt.sender.Len() }

// RIB merges route replicas from any number of adjacencies and keeps
// the best path per prefix.
type RIB struct {
	mu     sync.Mutex
	routes map[string]map[string]Route // prefix -> origin -> route
	best   map[string]Route
	rcvs   []*sstp.Receiver

	// OnBestChange fires when a prefix's best route changes or
	// disappears (ok=false).
	OnBestChange func(prefix string, best Route, ok bool)
}

// NewRIB returns an empty routing information base.
func NewRIB() *RIB {
	return &RIB{
		routes: make(map[string]map[string]Route),
		best:   make(map[string]Route),
	}
}

// AddAdjacency creates an SSTP receiver from cfg that feeds this RIB,
// attributing routes to the named origin router. The receiver is
// started; Close the RIB to stop all adjacencies.
func (rib *RIB) AddAdjacency(origin string, cfg sstp.ReceiverConfig) (*sstp.Receiver, error) {
	if origin == "" {
		return nil, fmt.Errorf("routed: adjacency needs an origin name")
	}
	userUpdate, userExpire := cfg.OnUpdate, cfg.OnExpire
	cfg.OnUpdate = func(key string, value []byte, version uint64, born float64) {
		rib.apply(origin, key, value)
		if userUpdate != nil {
			userUpdate(key, value, version, born)
		}
	}
	cfg.OnExpire = func(key string) {
		rib.remove(origin, key)
		if userExpire != nil {
			userExpire(key)
		}
	}
	r, err := sstp.NewReceiver(cfg)
	if err != nil {
		return nil, err
	}
	rib.mu.Lock()
	rib.rcvs = append(rib.rcvs, r)
	rib.mu.Unlock()
	r.Start()
	return r, nil
}

// Close stops every adjacency receiver.
func (rib *RIB) Close() {
	rib.mu.Lock()
	rcvs := append([]*sstp.Receiver(nil), rib.rcvs...)
	rib.mu.Unlock()
	for _, r := range rcvs {
		r.Close()
	}
}

func (rib *RIB) apply(origin, key string, value []byte) {
	prefix, ok := prefixOf(key)
	if !ok {
		return
	}
	route, err := unmarshalRoute(prefix, origin, value)
	if err != nil || route.Metric >= Infinity {
		rib.remove(origin, key)
		return
	}
	rib.mu.Lock()
	byOrigin := rib.routes[prefix]
	if byOrigin == nil {
		byOrigin = make(map[string]Route)
		rib.routes[prefix] = byOrigin
	}
	byOrigin[origin] = route
	changed, best, ok := rib.reselect(prefix)
	cb := rib.OnBestChange
	rib.mu.Unlock()
	if changed && cb != nil {
		cb(prefix, best, ok)
	}
}

func (rib *RIB) remove(origin, key string) {
	prefix, ok := prefixOf(key)
	if !ok {
		return
	}
	rib.mu.Lock()
	if byOrigin := rib.routes[prefix]; byOrigin != nil {
		delete(byOrigin, origin)
		if len(byOrigin) == 0 {
			delete(rib.routes, prefix)
		}
	}
	changed, best, okBest := rib.reselect(prefix)
	cb := rib.OnBestChange
	rib.mu.Unlock()
	if changed && cb != nil {
		cb(prefix, best, okBest)
	}
}

// reselect recomputes the best route for prefix. Caller holds rib.mu.
// It reports whether the best changed.
func (rib *RIB) reselect(prefix string) (changed bool, best Route, ok bool) {
	prev, had := rib.best[prefix]
	byOrigin := rib.routes[prefix]
	if len(byOrigin) == 0 {
		delete(rib.best, prefix)
		return had, Route{}, false
	}
	first := true
	for _, r := range byOrigin {
		if first || better(r, best) {
			best = r
			first = false
		}
	}
	rib.best[prefix] = best
	return !had || prev != best, best, true
}

// better orders routes: lower metric wins; ties break by origin name
// for determinism.
func better(a, b Route) bool {
	if a.Metric != b.Metric {
		return a.Metric < b.Metric
	}
	return a.Origin < b.Origin
}

// Best returns the selected route for prefix.
func (rib *RIB) Best(prefix string) (Route, bool) {
	rib.mu.Lock()
	defer rib.mu.Unlock()
	r, ok := rib.best[prefix]
	return r, ok
}

// Table returns the best route per prefix, sorted by prefix.
func (rib *RIB) Table() []Route {
	rib.mu.Lock()
	defer rib.mu.Unlock()
	out := make([]Route, 0, len(rib.best))
	for _, r := range rib.best {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Prefix < out[j].Prefix })
	return out
}

// Alternates returns every known route for prefix (all origins),
// best first.
func (rib *RIB) Alternates(prefix string) []Route {
	rib.mu.Lock()
	defer rib.mu.Unlock()
	out := make([]Route, 0, len(rib.routes[prefix]))
	for _, r := range rib.routes[prefix] {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return better(out[i], out[j]) })
	return out
}

// Len returns the number of prefixes with a selected route.
func (rib *RIB) Len() int {
	rib.mu.Lock()
	defer rib.mu.Unlock()
	return len(rib.best)
}
