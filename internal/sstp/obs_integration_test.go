package sstp

import (
	"strings"
	"testing"
	"time"

	"softstate/internal/obs"
	"softstate/internal/trace"
)

// TestObservabilityEndToEnd drives an instrumented sender/receiver
// pair over a lossy in-memory network and asserts the shared registry
// and event ring reflect the session: announcements split by queue,
// deliveries, reports, and a renderable Prometheus page.
func TestObservabilityEndToEnd(t *testing.T) {
	reg := obs.New("test")
	ring := trace.NewSafe(512)
	nw := NewMemNetwork(42)
	sc := nw.Endpoint("sender")
	rc := nw.Endpoint("rcv")
	nw.SetLoss("sender", "rcv", 0.2)
	s, err := NewSender(SenderConfig{
		Session: 7, SenderID: 1,
		Conn: sc, Dest: MemAddr("rcv"),
		TotalRate:       512_000,
		SummaryInterval: 80 * time.Millisecond,
		TTL:             5 * time.Second,
		Seed:            1,
		Obs:             reg,
		Trace:           ring,
	})
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewReceiver(ReceiverConfig{
		Session: 7, ReceiverID: 2,
		Conn: rc, FeedbackDest: MemAddr("sender"),
		ReportInterval: 150 * time.Millisecond,
		NACKWindow:     30 * time.Millisecond,
		Seed:           2,
		Obs:            reg,
		Trace:          ring,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close(); r.Close() })
	s.Start()
	r.Start()

	keys := []string{"a/x", "a/y", "b/x", "b/y", "c/z"}
	for _, k := range keys {
		if err := s.Publish(k, []byte("v-"+k), 0); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, 15*time.Second, "convergence", func() bool { return converged(s, r) })
	waitFor(t, 5*time.Second, "a receiver report", func() bool {
		return reg.Get("sstp_reports_sent_total") > 0
	})

	if got := reg.Get("sstp_publishes_total"); got != float64(len(keys)) {
		t.Errorf("sstp_publishes_total = %v, want %d", got, len(keys))
	}
	if reg.Get("sstp_announcements_total", "queue", "hot") == 0 {
		t.Error("no hot announcements recorded")
	}
	if reg.Get("sstp_deliveries_total") != float64(len(keys)) {
		t.Errorf("sstp_deliveries_total = %v, want %d", reg.Get("sstp_deliveries_total"), len(keys))
	}
	if reg.Get("sstp_tx_bits_total") == 0 || reg.Get("sstp_records_live") != float64(len(keys)) {
		t.Errorf("tx_bits=%v records_live=%v", reg.Get("sstp_tx_bits_total"), reg.Get("sstp_records_live"))
	}
	// Sender and receiver agree on one namespace: the receiver's
	// replica gauge tracks the sender's live gauge.
	if reg.Get("sstp_replica_records") != float64(len(keys)) {
		t.Errorf("sstp_replica_records = %v", reg.Get("sstp_replica_records"))
	}

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	page := b.String()
	for _, want := range []string{
		`sstp_announcements_total{queue="hot"}`,
		`sstp_announcements_total{queue="cold"}`,
		"# TYPE sstp_t_rec_seconds histogram",
		"sstp_deliveries_total 5",
	} {
		if !strings.Contains(page, want) {
			t.Errorf("Prometheus page missing %q", want)
		}
	}

	if ring.Total() == 0 {
		t.Error("trace ring recorded no events")
	}
	deliveries := ring.Filter(func(ev trace.Event) bool { return ev.Kind == trace.Deliver })
	if len(deliveries) == 0 {
		t.Error("trace ring has no DELIVER events")
	}
}
