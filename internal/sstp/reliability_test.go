package sstp

import (
	"bytes"
	"fmt"
	"testing"
	"time"
)

func TestReliabilityStrings(t *testing.T) {
	for _, r := range []Reliability{BestEffort, AnnounceListen, Repair, Reliable} {
		if r.String() == "" || r.String()[0] == 'R' {
			t.Errorf("level %d unnamed: %q", r, r.String())
		}
	}
	if Reliability(9).String() != "Reliability(9)" {
		t.Error("unknown level should stringify numerically")
	}
	if err := Reliability(9).Apply(nil, nil); err == nil {
		t.Error("unknown level applied")
	}
}

func TestReliabilityApplyKnobs(t *testing.T) {
	var sc SenderConfig
	var rc ReceiverConfig
	if err := BestEffort.Apply(&sc, &rc); err != nil {
		t.Fatal(err)
	}
	if !rc.DisableFeedback || sc.SummaryInterval < time.Hour {
		t.Errorf("best-effort knobs wrong: %+v %+v", sc, rc)
	}
	rc = ReceiverConfig{}
	if err := Repair.Apply(nil, &rc); err != nil {
		t.Fatal(err)
	}
	if rc.DisableFeedback || rc.ReportInterval >= 0 {
		t.Errorf("repair knobs wrong: %+v", rc)
	}
	if err := Reliable.Apply(nil, &rc); err != nil {
		t.Fatal(err)
	}
	if rc.ReportInterval != 0 {
		t.Errorf("reliable should restore default reports: %+v", rc)
	}
}

// TestReliabilitySpectrum runs the same lossy workload at each level
// and checks the ordering the paper promises: stronger levels reach
// (weakly) higher replica consistency within a fixed deadline.
func TestReliabilitySpectrum(t *testing.T) {
	measure := func(level Reliability) float64 {
		nw := NewMemNetwork(51)
		nw.SetLoss("s", "r", 0.4)
		sc := SenderConfig{
			Session: 1, SenderID: 1,
			Conn: nw.Endpoint("s"), Dest: MemAddr("r"),
			TotalRate: 48_000, HotFraction: 0.95,
			SummaryInterval: 80 * time.Millisecond,
			TTL:             60 * time.Second,
		}
		rc := ReceiverConfig{
			Session: 1, ReceiverID: 2,
			Conn: nw.Endpoint("r"), FeedbackDest: MemAddr("s"),
			NACKWindow: 30 * time.Millisecond,
		}
		if err := level.Apply(&sc, &rc); err != nil {
			t.Fatal(err)
		}
		s, err := NewSender(sc)
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		r, err := NewReceiver(rc)
		if err != nil {
			t.Fatal(err)
		}
		defer r.Close()
		s.Start()
		r.Start()
		val := bytes.Repeat([]byte("x"), 256)
		for i := 0; i < 12; i++ {
			s.Publish(fmt.Sprintf("k/%02d", i), val, 0)
		}
		time.Sleep(6 * time.Second)
		pub, sub := s.Snapshot(), r.Snapshot()
		match := 0
		for k, v := range pub {
			if bytes.Equal(sub[k], v) {
				match++
			}
		}
		return float64(match) / float64(len(pub))
	}
	be := measure(BestEffort)
	al := measure(AnnounceListen)
	rp := measure(Repair)
	t.Logf("best-effort %.2f, announce/listen %.2f, repair %.2f", be, al, rp)
	if rp < al-0.05 || al < be-0.05 {
		t.Errorf("spectrum out of order: best-effort %.2f, announce/listen %.2f, repair %.2f", be, al, rp)
	}
	if rp < 0.9 {
		t.Errorf("repair level only reached %.2f", rp)
	}
	if be > 0.9 {
		t.Errorf("best-effort unexpectedly reached %.2f at 40%% loss", be)
	}
}
