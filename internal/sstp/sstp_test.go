package sstp

import (
	"bytes"
	"fmt"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"softstate/internal/profile"
)

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func newPair(t *testing.T, loss float64) (*Sender, *Receiver, *MemNetwork) {
	t.Helper()
	nw := NewMemNetwork(1)
	sc := nw.Endpoint("sender")
	rc := nw.Endpoint("rcv")
	nw.SetLoss("sender", "rcv", loss)
	s, err := NewSender(SenderConfig{
		Session: 7, SenderID: 1,
		Conn: sc, Dest: MemAddr("rcv"),
		TotalRate:       512_000,
		SummaryInterval: 80 * time.Millisecond,
		TTL:             5 * time.Second,
		Seed:            1,
	})
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewReceiver(ReceiverConfig{
		Session: 7, ReceiverID: 2,
		Conn: rc, FeedbackDest: MemAddr("sender"),
		ReportInterval: 150 * time.Millisecond,
		NACKWindow:     30 * time.Millisecond,
		Seed:           2,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close(); r.Close() })
	return s, r, nw
}

func converged(s *Sender, r *Receiver) bool { return s.RootDigest() == r.RootDigest() }

func TestMemNetworkBasics(t *testing.T) {
	nw := NewMemNetwork(3)
	a := nw.Endpoint("a")
	b := nw.Endpoint("b")
	if _, err := a.WriteTo([]byte("hello"), MemAddr("b")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 64)
	_ = b.SetReadDeadline(time.Now().Add(time.Second))
	n, from, err := b.ReadFrom(buf)
	if err != nil || string(buf[:n]) != "hello" || from.String() != "a" {
		t.Fatalf("ReadFrom = (%q, %v, %v)", buf[:n], from, err)
	}
	// Deadline expiry produces a timeout error.
	_ = b.SetReadDeadline(time.Now().Add(30 * time.Millisecond))
	if _, _, err := b.ReadFrom(buf); err == nil {
		t.Fatal("expected timeout")
	} else if ne, ok := err.(net.Error); !ok || !ne.Timeout() {
		t.Fatalf("err %v is not a timeout", err)
	}
}

func TestMemNetworkGroups(t *testing.T) {
	nw := NewMemNetwork(4)
	s := nw.Endpoint("s")
	r1 := nw.Endpoint("r1")
	r2 := nw.Endpoint("r2")
	nw.Join("g", "s")
	nw.Join("g", "r1")
	nw.Join("g", "r2")
	if _, err := s.WriteTo([]byte("x"), MemAddr("g")); err != nil {
		t.Fatal(err)
	}
	for _, c := range []*MemConn{r1, r2} {
		buf := make([]byte, 8)
		_ = c.SetReadDeadline(time.Now().Add(time.Second))
		if _, _, err := c.ReadFrom(buf); err != nil {
			t.Fatalf("group member did not receive: %v", err)
		}
	}
	// The writer must not hear its own group traffic.
	buf := make([]byte, 8)
	_ = s.SetReadDeadline(time.Now().Add(50 * time.Millisecond))
	if _, _, err := s.ReadFrom(buf); err == nil {
		t.Fatal("sender heard its own multicast")
	}
}

func TestMemNetworkLoss(t *testing.T) {
	nw := NewMemNetwork(5)
	a := nw.Endpoint("a")
	b := nw.Endpoint("b")
	nw.SetLoss("a", "b", 1)
	a.WriteTo([]byte("x"), MemAddr("b"))
	buf := make([]byte, 8)
	_ = b.SetReadDeadline(time.Now().Add(50 * time.Millisecond))
	if _, _, err := b.ReadFrom(buf); err == nil {
		t.Fatal("p=1 path delivered")
	}
	if _, err := a.WriteTo([]byte("x"), strAddr("foreign")); err == nil {
		t.Fatal("foreign addr type accepted")
	}
}

type strAddr string

func (s strAddr) Network() string { return "str" }
func (s strAddr) String() string  { return string(s) }

func TestMemConnClosed(t *testing.T) {
	nw := NewMemNetwork(6)
	a := nw.Endpoint("a")
	a.Close()
	if _, err := a.WriteTo([]byte("x"), MemAddr("b")); err == nil {
		t.Fatal("write on closed conn succeeded")
	}
	if err := a.Close(); err != nil {
		t.Fatal("double close errored")
	}
}

func TestLosslessConvergence(t *testing.T) {
	s, r, _ := newPair(t, 0)
	s.Start()
	r.Start()
	want := map[string][]byte{}
	for i := 0; i < 20; i++ {
		key := fmt.Sprintf("recs/k%02d", i)
		val := []byte(fmt.Sprintf("value-%d", i))
		want[key] = val
		if err := s.Publish(key, val, 0); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, 10*time.Second, "convergence", func() bool { return converged(s, r) })
	got := r.Snapshot()
	if len(got) != len(want) {
		t.Fatalf("replica has %d keys, want %d", len(got), len(want))
	}
	for k, v := range want {
		if !bytes.Equal(got[k], v) {
			t.Errorf("key %q = %q, want %q", k, got[k], v)
		}
	}
}

func TestLossyConvergenceViaRepair(t *testing.T) {
	// Slow link + large values: the cold announce/listen cycle takes
	// tens of seconds per lap, so convergence within the deadline can
	// only come from summary-driven NACK repair.
	nw := NewMemNetwork(8)
	sc := nw.Endpoint("s")
	rc := nw.Endpoint("r")
	nw.SetLoss("s", "r", 0.3)
	s, err := NewSender(SenderConfig{
		Session: 7, SenderID: 1, Conn: sc, Dest: MemAddr("r"),
		TotalRate: 64_000, HotFraction: 0.95,
		SummaryInterval: 80 * time.Millisecond, TTL: 60 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewReceiver(ReceiverConfig{
		Session: 7, ReceiverID: 2, Conn: rc, FeedbackDest: MemAddr("s"),
		ReportInterval: 150 * time.Millisecond, NACKWindow: 30 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	defer r.Close()
	s.Start()
	r.Start()
	val := bytes.Repeat([]byte("x"), 512)
	for i := 0; i < 20; i++ {
		s.Publish(fmt.Sprintf("recs/k%02d", i), val, 0)
	}
	waitFor(t, 20*time.Second, "lossy convergence", func() bool { return converged(s, r) })
	rs := r.Stats()
	ss := s.Stats()
	if rs.DataReceived < 20 {
		t.Errorf("DataReceived = %d", rs.DataReceived)
	}
	// At 30% loss the repair machinery must have engaged.
	if rs.QueriesSent == 0 && rs.NACKsSent == 0 {
		t.Error("no repair traffic despite loss")
	}
	if ss.NACKsReceived != 0 && ss.KeysPromoted == 0 {
		t.Error("NACKs received but nothing promoted")
	}
}

func TestOpenLoopListenerConverges(t *testing.T) {
	// With feedback disabled, cold-queue cycling alone must converge
	// (the announce/listen end of the reliability spectrum).
	nw := NewMemNetwork(9)
	sc := nw.Endpoint("s")
	rc := nw.Endpoint("r")
	nw.SetLoss("s", "r", 0.3)
	s, err := NewSender(SenderConfig{
		Session: 1, SenderID: 1, Conn: sc, Dest: MemAddr("r"),
		TotalRate: 512_000, SummaryInterval: 100 * time.Millisecond,
		TTL: 5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewReceiver(ReceiverConfig{
		Session: 1, ReceiverID: 2, Conn: rc, DisableFeedback: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	defer r.Close()
	s.Start()
	r.Start()
	for i := 0; i < 15; i++ {
		s.Publish(fmt.Sprintf("k/%d", i), []byte("v"), 0)
	}
	waitFor(t, 15*time.Second, "open-loop convergence", func() bool { return converged(s, r) })
	if st := r.Stats(); st.NACKsSent != 0 || st.QueriesSent != 0 || st.ReportsSent != 0 {
		t.Errorf("open-loop receiver sent feedback: %+v", st)
	}
}

func TestUpdatePropagation(t *testing.T) {
	s, r, _ := newPair(t, 0.2)
	s.Start()
	r.Start()
	s.Publish("cfg/x", []byte("v1"), 0)
	waitFor(t, 10*time.Second, "v1", func() bool {
		v, ok := r.Get("cfg/x")
		return ok && string(v) == "v1"
	})
	s.Publish("cfg/x", []byte("v2"), 0)
	waitFor(t, 10*time.Second, "v2", func() bool {
		v, ok := r.Get("cfg/x")
		return ok && string(v) == "v2"
	})
}

func TestDeletePropagation(t *testing.T) {
	s, r, _ := newPair(t, 0)
	s.Start()
	r.Start()
	s.Publish("a/x", []byte("v"), 0)
	s.Publish("a/y", []byte("w"), 0)
	waitFor(t, 10*time.Second, "initial sync", func() bool { return converged(s, r) })
	if !s.Delete("a/x") {
		t.Fatal("Delete returned false")
	}
	if s.Delete("a/x") {
		t.Fatal("double Delete returned true")
	}
	waitFor(t, 10*time.Second, "tombstone applied", func() bool {
		_, ok := r.Get("a/x")
		return !ok && converged(s, r)
	})
	if _, ok := r.Get("a/y"); !ok {
		t.Error("unrelated key vanished")
	}
}

func TestSoftStateExpiryWhenSenderDies(t *testing.T) {
	nw := NewMemNetwork(11)
	sc := nw.Endpoint("s")
	rc := nw.Endpoint("r")
	s, err := NewSender(SenderConfig{
		Session: 2, SenderID: 1, Conn: sc, Dest: MemAddr("r"),
		TotalRate: 256_000, TTL: 700 * time.Millisecond,
		SummaryInterval: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewReceiver(ReceiverConfig{
		Session: 2, ReceiverID: 2, Conn: rc, FeedbackDest: MemAddr("s"),
		NACKWindow: 30 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	s.Start()
	r.Start()
	s.Publish("k", []byte("v"), 0)
	waitFor(t, 5*time.Second, "delivery", func() bool {
		_, ok := r.Get("k")
		return ok
	})
	// Kill the publisher: refreshes stop, so the replica must expire
	// on its own — the defining soft-state behaviour.
	s.Close()
	waitFor(t, 5*time.Second, "expiry", func() bool {
		_, ok := r.Get("k")
		return !ok
	})
	// The sweep loop (250 ms tick) fires OnExpire shortly after.
	waitFor(t, 5*time.Second, "expiry counted", func() bool {
		return r.Stats().Expired > 0
	})
}

func TestRecordLifetimeExpiresEverywhere(t *testing.T) {
	s, r, _ := newPair(t, 0)
	s.Start()
	r.Start()
	s.Publish("ephemeral", []byte("v"), 600*time.Millisecond)
	waitFor(t, 5*time.Second, "delivery", func() bool {
		_, ok := r.Get("ephemeral")
		return ok
	})
	waitFor(t, 6*time.Second, "lifetime expiry", func() bool {
		_, okR := r.Get("ephemeral")
		return !okR && s.Len() == 0
	})
}

func TestReceiverReportsDriveSender(t *testing.T) {
	nw := NewMemNetwork(12)
	sc := nw.Endpoint("s")
	rc := nw.Endpoint("r")
	nw.SetLoss("s", "r", 0.4)
	s, err := NewSender(SenderConfig{
		Session: 3, SenderID: 1, Conn: sc, Dest: MemAddr("r"),
		TotalRate: 400_000, MinRate: 50_000, MaxRate: 400_000,
		SummaryInterval: 50 * time.Millisecond, TTL: 5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewReceiver(ReceiverConfig{
		Session: 3, ReceiverID: 2, Conn: rc, FeedbackDest: MemAddr("s"),
		ReportInterval: 100 * time.Millisecond, NACKWindow: 30 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	defer r.Close()
	s.Start()
	r.Start()
	for i := 0; i < 50; i++ {
		s.Publish(fmt.Sprintf("k/%02d", i), bytes.Repeat([]byte("x"), 200), 0)
	}
	waitFor(t, 10*time.Second, "reports heard", func() bool {
		st := s.Stats()
		return st.ReportsHeard >= 3 && st.LossEstimate > 0.1
	})
	// Sustained 40% loss must push AIMD below the initial rate.
	waitFor(t, 10*time.Second, "AIMD backoff", func() bool {
		return s.Stats().Rate < 400_000
	})
}

func TestMulticastConvergenceAndSuppression(t *testing.T) {
	nw := NewMemNetwork(13)
	group := MemAddr("g")
	sc := nw.Endpoint("s")
	nw.Join(group, "s")
	var rcvs []*Receiver
	for i := 0; i < 3; i++ {
		name := MemAddr(fmt.Sprintf("r%d", i))
		c := nw.Endpoint(name)
		nw.Join(group, name)
		// Block all data initially so every receiver misses the same
		// records, forcing overlapping NACK interest.
		nw.SetLoss("s", name, 1)
		r, err := NewReceiver(ReceiverConfig{
			Session: 4, ReceiverID: uint64(10 + i), Conn: c, FeedbackDest: group,
			NACKWindow: 400 * time.Millisecond, Seed: int64(i),
			ReportInterval: -1,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer r.Close()
		r.Start()
		rcvs = append(rcvs, r)
	}
	s, err := NewSender(SenderConfig{
		Session: 4, SenderID: 1, Conn: sc, Dest: group,
		TotalRate: 48_000, HotFraction: 0.95,
		SummaryInterval: 60 * time.Millisecond,
		TTL:             60 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.Start()
	big := bytes.Repeat([]byte("v"), 1024)
	for i := 0; i < 10; i++ {
		s.Publish(fmt.Sprintf("m/%d", i), big, 0)
	}
	time.Sleep(400 * time.Millisecond) // all initial data lost
	for i := range rcvs {
		nw.SetLoss("s", MemAddr(fmt.Sprintf("r%d", i)), 0) // heal
	}
	waitFor(t, 20*time.Second, "multicast convergence", func() bool {
		for _, r := range rcvs {
			if s.RootDigest() != r.RootDigest() {
				return false
			}
		}
		return true
	})
	totalSuppressed := 0
	for _, r := range rcvs {
		totalSuppressed += r.Stats().NACKsSuppressed
	}
	if totalSuppressed == 0 {
		t.Error("no NACK/query suppression despite shared losses on a multicast group")
	}
}

// TestPeerRepairSurvivesSenderDeath exercises the paper's "the sender
// (or any participant in a multicast session) responds": a receiver
// that never heard the publisher catches up entirely from its peers
// after the publisher dies, driven by peer session summaries.
func TestPeerRepairSurvivesSenderDeath(t *testing.T) {
	nw := NewMemNetwork(31)
	group := MemAddr("g")
	sc := nw.Endpoint("s")
	nw.Join(group, "s")
	mkRcv := func(i int) *Receiver {
		name := MemAddr(fmt.Sprintf("r%d", i))
		nw.Join(group, name)
		r, err := NewReceiver(ReceiverConfig{
			Session: 8, ReceiverID: uint64(20 + i),
			Conn: nw.Endpoint(name), FeedbackDest: group,
			PeerRepair:          true,
			PeerSummaryInterval: 100 * time.Millisecond,
			NACKWindow:          50 * time.Millisecond,
			ReportInterval:      -1,
			Seed:                int64(i),
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { r.Close() })
		r.Start()
		return r
	}
	r0 := mkRcv(0)
	r1 := mkRcv(1)
	r2 := mkRcv(2)
	nw.SetLoss("s", "r2", 1) // r2 never hears the publisher

	s, err := NewSender(SenderConfig{
		Session: 8, SenderID: 1, Conn: sc, Dest: group,
		TotalRate: 256_000, SummaryInterval: 60 * time.Millisecond,
		TTL: 120 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	for i := 0; i < 8; i++ {
		s.Publish(fmt.Sprintf("p/%d", i), []byte(fmt.Sprintf("v%d", i)), 0)
	}
	want := s.RootDigest()
	waitFor(t, 10*time.Second, "r0/r1 sync", func() bool {
		return r0.RootDigest() == want && r1.RootDigest() == want
	})
	if r2.Len() != 0 {
		t.Fatalf("r2 heard the publisher through a p=1 path")
	}
	// The publisher dies. r2 must now converge purely peer-to-peer.
	s.Close()
	waitFor(t, 20*time.Second, "peer-to-peer catch-up", func() bool {
		return r2.RootDigest() == want
	})
	if v, ok := r2.Get("p/3"); !ok || string(v) != "v3" {
		t.Errorf("r2 p/3 = (%q, %v)", v, ok)
	}
	repairs := r0.Stats().PeerDataSent + r1.Stats().PeerDataSent
	digests := r0.Stats().PeerDigestsSent + r1.Stats().PeerDigestsSent
	if repairs == 0 {
		t.Error("no peer data repairs sent")
	}
	if digests == 0 {
		t.Error("no peer digest responses sent")
	}
}

func TestInterestFiltering(t *testing.T) {
	nw := NewMemNetwork(14)
	sc := nw.Endpoint("s")
	rc := nw.Endpoint("r")
	nw.SetLoss("s", "r", 1) // force repair-only delivery
	s, err := NewSender(SenderConfig{
		Session: 5, SenderID: 1, Conn: sc, Dest: MemAddr("r"),
		TotalRate: 512_000, SummaryInterval: 60 * time.Millisecond, TTL: 10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewReceiver(ReceiverConfig{
		Session: 5, ReceiverID: 2, Conn: rc, FeedbackDest: MemAddr("s"),
		NACKWindow: 30 * time.Millisecond,
		Interest: func(path string) bool {
			return path != "img" && !hasPrefix(path, "img/")
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	defer r.Close()
	s.Start()
	r.Start()
	s.Publish("txt/a", []byte("text"), 0)
	s.Publish("img/big", bytes.Repeat([]byte("i"), 4096), 0)
	time.Sleep(300 * time.Millisecond)
	nw.SetLoss("s", "r", 0.2)
	waitFor(t, 15*time.Second, "interesting branch", func() bool {
		_, ok := r.Get("txt/a")
		return ok
	})
	// The uninteresting branch must never be NACK-repaired; give the
	// repair machinery time to (not) act.
	time.Sleep(1 * time.Second)
	// The img leaf may still arrive via the cold cycle; what matters
	// is that no repair was requested for it. Check stats indirectly:
	// roots never converge because img is pruned, yet no NACK storm.
	if _, ok := r.Get("img/big"); ok {
		// Possible via cold cycling at 20% loss — acceptable.
		t.Log("img arrived via announce/listen (allowed)")
	}
}

func hasPrefix(s, p string) bool { return len(s) >= len(p) && s[:len(p)] == p }

func TestUDPLoopback(t *testing.T) {
	sconn, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("no UDP loopback: %v", err)
	}
	rconn, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("no UDP loopback: %v", err)
	}
	s, err := NewSender(SenderConfig{
		Session: 6, SenderID: 1, Conn: sconn, Dest: rconn.LocalAddr(),
		TotalRate: 1_000_000, SummaryInterval: 50 * time.Millisecond, TTL: 5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewReceiver(ReceiverConfig{
		Session: 6, ReceiverID: 2, Conn: rconn, FeedbackDest: sconn.LocalAddr(),
		NACKWindow: 30 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	defer r.Close()
	s.Start()
	r.Start()
	for i := 0; i < 10; i++ {
		s.Publish(fmt.Sprintf("udp/%d", i), []byte("payload"), 0)
	}
	waitFor(t, 10*time.Second, "UDP convergence", func() bool { return converged(s, r) })
}

// TestClassBasedSharing exercises the Figure-12 hierarchy: two
// application classes splitting the data bandwidth 4:1, each with its
// own hot/cold queues; under saturation the announcement counts must
// honour the class weights.
func TestClassBasedSharing(t *testing.T) {
	nw := NewMemNetwork(33)
	sc := nw.Endpoint("s")
	s, err := NewSender(SenderConfig{
		Session: 10, SenderID: 1, Conn: sc, Dest: MemAddr("r"),
		TotalRate: 256_000, TTL: 60 * time.Second,
		SummaryInterval: time.Hour, // isolate data traffic
		Classes: []Class{
			{Name: "audio", Weight: 0.8},
			{Name: "bulk", Weight: 0.2},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	// Saturate both classes with records so every pick has a choice.
	val := bytes.Repeat([]byte("x"), 500)
	for i := 0; i < 40; i++ {
		if err := s.Publish(fmt.Sprintf("audio/a%02d", i), val, 0); err != nil {
			t.Fatal(err)
		}
		if err := s.Publish(fmt.Sprintf("bulk/b%02d", i), val, 0); err != nil {
			t.Fatal(err)
		}
	}
	s.Start()
	waitFor(t, 20*time.Second, "enough announcements", func() bool {
		return s.Stats().DataSent >= 300
	})
	st := s.Stats()
	audio, bulk := st.SentByClass["audio"], st.SentByClass["bulk"]
	share := float64(audio) / float64(audio+bulk)
	if share < 0.7 || share > 0.9 {
		t.Errorf("audio share = %.3f (audio=%d bulk=%d), want ≈0.8", share, audio, bulk)
	}
}

// TestClassValidation checks class config errors.
func TestClassValidation(t *testing.T) {
	nw := NewMemNetwork(34)
	base := SenderConfig{
		Session: 11, SenderID: 1, Conn: nw.Endpoint("s"), Dest: MemAddr("r"), TotalRate: 1000,
	}
	bad := base
	bad.Classes = []Class{{Name: "", Weight: 1}}
	if _, err := NewSender(bad); err == nil {
		t.Error("unnamed class accepted")
	}
	bad = base
	bad.Classes = []Class{{Name: "a", Weight: 0}}
	if _, err := NewSender(bad); err == nil {
		t.Error("zero-weight class accepted")
	}
	bad = base
	bad.Classes = []Class{{Name: "a", Weight: 1}, {Name: "a", Weight: 1}}
	if _, err := NewSender(bad); err == nil {
		t.Error("duplicate class accepted")
	}
}

// TestClassifyDefault checks the path-prefix classifier and fallback.
func TestClassifyDefault(t *testing.T) {
	nw := NewMemNetwork(35)
	s, err := NewSender(SenderConfig{
		Session: 12, SenderID: 1, Conn: nw.Endpoint("s"), Dest: MemAddr("r"), TotalRate: 1000,
		Classes: []Class{{Name: "x", Weight: 1}, {Name: "y", Weight: 1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.Publish("y/k", nil, 0)
	s.Publish("z/k", nil, 0) // unknown prefix falls back to class 0
	s.mu.Lock()
	if got := s.entries["y/k"].class; got != 1 {
		t.Errorf("y/k class = %d, want 1", got)
	}
	if got := s.entries["z/k"].class; got != 0 {
		t.Errorf("z/k class = %d, want 0 (fallback)", got)
	}
	s.mu.Unlock()
}

// TestProfileDrivenAllocation wires a consistency profile into the
// sender (Figure 12's profile-driven scheduler): receiver reports of
// heavy loss must make the allocator carve out feedback bandwidth and
// notify the application when its publish rate exceeds μ_hot.
func TestProfileDrivenAllocation(t *testing.T) {
	grid, err := profile.BuildGrid(
		[]float64{0, 0.2, 0.4, 0.6},
		[]float64{0, 0.1, 0.2, 0.3},
		func(loss, fb float64) float64 {
			// Synthetic but shaped like the measured profiles: feedback
			// buys consistency back under loss.
			return 1 - loss*(1-2*fb)
		})
	if err != nil {
		t.Fatal(err)
	}
	nw := NewMemNetwork(36)
	sc := nw.Endpoint("s")
	rc := nw.Endpoint("r")
	nw.SetLoss("s", "r", 0.4)
	var limited atomic.Bool
	s, err := NewSender(SenderConfig{
		Session: 13, SenderID: 1, Conn: sc, Dest: MemAddr("r"),
		TotalRate: 64_000, TTL: 30 * time.Second,
		SummaryInterval: 50 * time.Millisecond,
		HotFraction:     0.5,
		Allocator: &profile.Allocator{
			Consistency: grid,
			Target:      0.95,
			HotFraction: 0.5,
		},
		OnRateLimit: func(max float64) { limited.Store(true) },
	})
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewReceiver(ReceiverConfig{
		Session: 13, ReceiverID: 2, Conn: rc, FeedbackDest: MemAddr("s"),
		ReportInterval: 100 * time.Millisecond, NACKWindow: 30 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	defer r.Close()
	s.Start()
	r.Start()
	// Publish hard: well above what μ_hot can sustain.
	stopPub := make(chan struct{})
	go func() {
		i := 0
		for {
			select {
			case <-stopPub:
				return
			case <-time.After(10 * time.Millisecond):
				i++
				s.Publish(fmt.Sprintf("flood/k%04d", i), bytes.Repeat([]byte("x"), 256), 10*time.Second)
			}
		}
	}()
	defer close(stopPub)

	waitFor(t, 15*time.Second, "allocator engaged", func() bool {
		st := s.Stats()
		// The allocator must have carved data bandwidth below the
		// session total (feedback share > 0 at 40% loss under this
		// profile) once reports arrive.
		return st.ReportsHeard >= 3 && st.Rate < 64_000 && st.LossEstimate > 0.2
	})
	waitFor(t, 15*time.Second, "rate-limit notification", func() bool {
		return limited.Load()
	})
}

// TestHostileTraffic floods both endpoints with garbage, truncated,
// mutated, and wrong-session datagrams while a normal session runs:
// nothing may panic, and the session must still converge.
func TestHostileTraffic(t *testing.T) {
	nw := NewMemNetwork(61)
	sc := nw.Endpoint("s")
	rc := nw.Endpoint("r")
	attacker := nw.Endpoint("evil")
	s, err := NewSender(SenderConfig{
		Session: 77, SenderID: 1, Conn: sc, Dest: MemAddr("r"),
		TotalRate: 256_000, SummaryInterval: 60 * time.Millisecond,
		TTL: 30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewReceiver(ReceiverConfig{
		Session: 77, ReceiverID: 2, Conn: rc, FeedbackDest: MemAddr("s"),
		NACKWindow: 30 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	defer r.Close()
	s.Start()
	r.Start()

	valid := protocolEncodeForTest()
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		rnd := uint32(1)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			var pkt []byte
			switch i % 4 {
			case 0: // pure garbage
				pkt = make([]byte, 1+int(rnd%700))
				for j := range pkt {
					rnd = rnd*1664525 + 1013904223
					pkt[j] = byte(rnd)
				}
			case 1: // truncated valid message
				rnd = rnd*1664525 + 1013904223
				pkt = valid[:int(rnd)%len(valid)]
			case 2: // header-mutated valid message (bad magic/type/etc).
				// Payload mutations are deliberately not injected: an
				// attacker who can forge valid in-session datagrams can
				// always corrupt an unauthenticated 1999-style protocol;
				// that threat needs signatures, not parsing rigor.
				pkt = append([]byte(nil), valid...)
				rnd = rnd*1664525 + 1013904223
				pkt[int(rnd)%6] ^= 0xFF
			case 3: // well-formed but wrong session
				pkt = append([]byte(nil), valid...)
				pkt[13] ^= 0x01 // flip a session byte
			}
			attacker.WriteTo(pkt, MemAddr("s"))
			attacker.WriteTo(pkt, MemAddr("r"))
			time.Sleep(200 * time.Microsecond)
		}
	}()

	for i := 0; i < 10; i++ {
		s.Publish(fmt.Sprintf("h/%d", i), []byte("v"), 0)
	}
	waitFor(t, 15*time.Second, "convergence under attack", func() bool { return converged(s, r) })
	if got, ok := r.Get("h/3"); !ok || string(got) != "v" {
		t.Errorf("h/3 = (%q, %v)", got, ok)
	}
}

// protocolEncodeForTest builds one valid session-77 datagram used as
// mutation fodder.
func protocolEncodeForTest() []byte {
	nw := NewMemNetwork(62)
	s, err := NewSender(SenderConfig{
		Session: 77, SenderID: 9, Conn: nw.Endpoint("x"), Dest: MemAddr("y"), TotalRate: 1000,
	})
	if err != nil {
		panic(err)
	}
	defer s.Close()
	s.Publish("h/0", []byte("v"), 0)
	buf, ok := s.nextDatagram()
	if !ok {
		panic("no announcement")
	}
	return buf
}

func TestSenderConfigValidation(t *testing.T) {
	nw := NewMemNetwork(15)
	c := nw.Endpoint("x")
	bad := []SenderConfig{
		{},
		{Conn: c},
		{Conn: c, Dest: MemAddr("y")},
		{Conn: c, Dest: MemAddr("y"), TotalRate: 100, MinRate: 200, MaxRate: 300},
		{Conn: c, Dest: MemAddr("y"), TotalRate: 100, SummaryInterval: -time.Second},
	}
	for i, cfg := range bad {
		if _, err := NewSender(cfg); err == nil {
			t.Errorf("bad sender config %d accepted", i)
		}
	}
}

func TestReceiverConfigValidation(t *testing.T) {
	nw := NewMemNetwork(16)
	c := nw.Endpoint("x")
	if _, err := NewReceiver(ReceiverConfig{}); err == nil {
		t.Error("empty receiver config accepted")
	}
	if _, err := NewReceiver(ReceiverConfig{Conn: c}); err == nil {
		t.Error("receiver without feedback dest accepted")
	}
	if _, err := NewReceiver(ReceiverConfig{Conn: c, DisableFeedback: true}); err != nil {
		t.Errorf("open-loop receiver rejected: %v", err)
	}
}

func TestPublishValidation(t *testing.T) {
	nw := NewMemNetwork(17)
	s, err := NewSender(SenderConfig{
		Session: 9, SenderID: 1, Conn: nw.Endpoint("s"), Dest: MemAddr("r"), TotalRate: 1000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Publish("", nil, 0); err == nil {
		t.Error("empty key accepted")
	}
	if err := s.Publish("a//b", nil, 0); err == nil {
		t.Error("malformed path accepted")
	}
	if err := s.Publish("a/b", []byte("v"), 0); err != nil {
		t.Errorf("valid publish rejected: %v", err)
	}
	// A key cannot shadow an interior node.
	if err := s.Publish("a", []byte("v"), 0); err == nil {
		t.Error("leaf over interior accepted")
	}
	s.Close()
}
