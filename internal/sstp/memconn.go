// Package sstp implements the Soft State Transport Protocol sketched
// in section 6 of the paper: an ALF-framed, announce/listen transport
// in which a sender transmits original data plus periodic namespace
// summaries, receivers detect divergence by digest comparison and
// repair it with recursive namespace queries and NACKs, and RTCP-style
// receiver reports drive a profile-based bandwidth allocator. SSTP
// provides "a parameterized spectrum of reliability semantics" — from
// pure open-loop announce/listen (no feedback) to NACK-based reliable
// transport — over any internal/transport wire: real UDP sockets,
// framed TCP/TLS streams, or the in-memory lossy network.
package sstp

import (
	"time"

	"softstate/internal/transport"
)

// The in-process lossy datagram network lives in internal/transport
// (it is just another Transport now); these aliases keep the sstp API,
// which long predates the transport package, stable for the dozens of
// tests and tools built on it.

// MemAddr is the address of an in-memory endpoint or group.
type MemAddr = transport.MemAddr

// MemNetwork is transport's in-process datagram network with per-path
// Bernoulli loss, delay, and jitter.
type MemNetwork = transport.MemNetwork

// MemConn is one endpoint of a MemNetwork; it implements
// net.PacketConn.
type MemConn = transport.MemConn

// NewMemNetwork returns an empty network with the given RNG seed.
func NewMemNetwork(seed int64) *MemNetwork { return transport.NewMemNetwork(seed) }

// nowSeconds converts wall time to the float seconds used by the
// time-agnostic substrates.
func nowSeconds() float64 { return float64(time.Now().UnixNano()) / 1e9 }
