package sstp

import (
	"fmt"
	"testing"
	"time"
)

// TestHeartbeatsWhenEmpty: a publisher with an empty table must keep
// the session alive with heartbeats so receivers can estimate loss and
// detect the session.
func TestHeartbeatsWhenEmpty(t *testing.T) {
	nw := NewMemNetwork(71)
	s, err := NewSender(SenderConfig{
		Session: 1, SenderID: 1,
		Conn: nw.Endpoint("s"), Dest: MemAddr("r"),
		TotalRate: 64_000, SummaryInterval: 40 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.Start()
	waitFor(t, 5*time.Second, "heartbeats", func() bool {
		return s.Stats().HeartbeatsSent >= 3
	})
	if s.Stats().SummariesSent != 0 {
		t.Errorf("empty table sent %d summaries", s.Stats().SummariesSent)
	}
}

// TestSummariesResumeAfterFirstPublish: heartbeats switch to summaries
// once there is data.
func TestSummariesResumeAfterFirstPublish(t *testing.T) {
	nw := NewMemNetwork(72)
	s, err := NewSender(SenderConfig{
		Session: 1, SenderID: 1,
		Conn: nw.Endpoint("s"), Dest: MemAddr("r"),
		TotalRate: 64_000, SummaryInterval: 40 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.Start()
	s.Publish("k", []byte("v"), 0)
	waitFor(t, 5*time.Second, "summaries", func() bool {
		return s.Stats().SummariesSent >= 3
	})
}

// TestLateJoinerCatchesUp: a receiver that joins after the table is
// fully announced converges purely from cold retransmissions and
// summaries — the paper's late-joiner benefit.
func TestLateJoinerCatchesUp(t *testing.T) {
	nw := NewMemNetwork(73)
	s, err := NewSender(SenderConfig{
		Session: 2, SenderID: 1,
		Conn: nw.Endpoint("s"), Dest: MemAddr("r"),
		TotalRate: 256_000, SummaryInterval: 60 * time.Millisecond,
		TTL: 30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.Start()
	for i := 0; i < 15; i++ {
		s.Publish(fmt.Sprintf("old/%d", i), []byte("v"), 0)
	}
	time.Sleep(500 * time.Millisecond) // announced before the joiner exists

	r, err := NewReceiver(ReceiverConfig{
		Session: 2, ReceiverID: 2,
		Conn: nw.Endpoint("r"), FeedbackDest: MemAddr("s"),
		NACKWindow: 30 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	r.Start()
	waitFor(t, 10*time.Second, "late joiner catch-up", func() bool { return converged(s, r) })
	if r.Len() != 15 {
		t.Errorf("joiner has %d records, want 15", r.Len())
	}
}

// TestSessionIsolation: two sessions on the same endpoints must not
// leak records into each other.
func TestSessionIsolation(t *testing.T) {
	nw := NewMemNetwork(74)
	mk := func(session uint64, sndName, rcvName string) (*Sender, *Receiver) {
		s, err := NewSender(SenderConfig{
			Session: session, SenderID: session * 10,
			Conn: nw.Endpoint(MemAddr(sndName)), Dest: MemAddr(rcvName),
			TotalRate: 128_000, SummaryInterval: 60 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		r, err := NewReceiver(ReceiverConfig{
			Session: session, ReceiverID: session*10 + 1,
			Conn: nw.Endpoint(MemAddr(rcvName)), FeedbackDest: MemAddr(sndName),
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { s.Close(); r.Close() })
		s.Start()
		r.Start()
		return s, r
	}
	// Both sessions share the receiving endpoint: datagrams from both
	// senders arrive at both receivers' sockets.
	s1, r1 := mk(100, "snd1", "shared")
	s2, r2 := mk(200, "snd2", "shared")
	// The shared endpoint means only one Receiver actually drains the
	// conn... MemNetwork gives each name one conn, so use distinct
	// receive endpoints but cross-send to both to simulate leakage.
	_ = r2
	s1.Publish("one/a", []byte("v1"), 0)
	s2.Publish("two/b", []byte("v2"), 0)
	waitFor(t, 10*time.Second, "session-100 sync", func() bool {
		_, ok := r1.Get("one/a")
		return ok
	})
	if _, ok := r1.Get("two/b"); ok {
		t.Error("record leaked across sessions")
	}
}

// TestDuplicateDeliveryCounted: redundant announcements are counted as
// duplicates, not updates.
func TestDuplicateDeliveryCounted(t *testing.T) {
	s, r, _ := newPair(t, 0)
	s.Start()
	r.Start()
	s.Publish("dup/k", []byte("v"), 0)
	waitFor(t, 5*time.Second, "first delivery", func() bool {
		_, ok := r.Get("dup/k")
		return ok
	})
	// The cold cycle re-announces the same version continuously.
	waitFor(t, 5*time.Second, "duplicates", func() bool {
		return r.Stats().Duplicates >= 3
	})
	if got := r.Stats().DataReceived; got != 1 {
		t.Errorf("DataReceived = %d, want 1 (duplicates excluded)", got)
	}
}

// TestOversizedPublishRejected: values beyond the wire limit must be
// rejected at Publish, not break the send loop.
func TestOversizedPublishRejected(t *testing.T) {
	nw := NewMemNetwork(75)
	s, err := NewSender(SenderConfig{
		Session: 1, SenderID: 1, Conn: nw.Endpoint("s"), Dest: MemAddr("r"), TotalRate: 1000,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	big := make([]byte, 70_000)
	if err := s.Publish("big", big, 0); err == nil {
		t.Error("oversized value accepted")
	}
}
