package sstp

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestCallbackDispatcherOrdering hammers the receiver with rapid
// version updates, short-lived records, and deletions, and checks the
// dispatcher contract: per key, OnUpdate versions arrive strictly
// increasing, an OnExpire is never followed by a stale update for a
// version the expiry superseded, and no callback of any kind starts
// after Close returns. Run under -race this also exercises the
// queue-swap path against the dispatch/sweep/timer goroutines.
func TestCallbackDispatcherOrdering(t *testing.T) {
	nw := NewMemNetwork(61)
	sc := nw.Endpoint("sender")
	rc := nw.Endpoint("rcv")

	type event struct {
		expire  bool
		key     string
		version uint64
	}
	var (
		mu     sync.Mutex
		events []event
		closed atomic.Bool
	)
	s, err := NewSender(SenderConfig{
		Session: 7, SenderID: 1,
		Conn: sc, Dest: MemAddr("rcv"),
		TotalRate:       2_000_000,
		SummaryInterval: 40 * time.Millisecond,
		TTL:             250 * time.Millisecond,
		Seed:            1,
	})
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewReceiver(ReceiverConfig{
		Session: 7, ReceiverID: 2,
		Conn: rc, FeedbackDest: MemAddr("sender"),
		ReportInterval: 100 * time.Millisecond,
		NACKWindow:     20 * time.Millisecond,
		Seed:           2,
		OnUpdate: func(key string, value []byte, version uint64, _ float64) {
			if closed.Load() {
				t.Error("OnUpdate after Close returned")
			}
			mu.Lock()
			events = append(events, event{key: key, version: version})
			mu.Unlock()
		},
		OnExpire: func(key string) {
			if closed.Load() {
				t.Error("OnExpire after Close returned")
			}
			mu.Lock()
			events = append(events, event{expire: true, key: key})
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	r.Start()

	// Churn: updates racing refreshes, deletions racing expirations.
	deadline := time.Now().Add(1200 * time.Millisecond)
	for i := 0; time.Now().Before(deadline); i++ {
		key := fmt.Sprintf("k%d", i%8)
		s.Publish(key, []byte(fmt.Sprintf("v%d", i)), 0)
		if i%5 == 4 {
			s.Delete(key)
		}
		time.Sleep(2 * time.Millisecond)
	}
	waitFor(t, 3*time.Second, "some callbacks", func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(events) > 50
	})

	s.Close()
	r.Close()
	closed.Store(true)
	// The dispatcher is part of Close's waitgroup: anything still
	// running would have fired before Close returned. Give a grace
	// period so a stray goroutine (the bug this replaces) would trip
	// the closed check above.
	time.Sleep(100 * time.Millisecond)

	mu.Lock()
	defer mu.Unlock()
	last := make(map[string]uint64)
	for i, ev := range events {
		if ev.expire {
			delete(last, ev.key)
			continue
		}
		if prev, ok := last[ev.key]; ok && ev.version <= prev {
			t.Fatalf("event %d: key %s version %d not after %d (out-of-order dispatch)",
				i, ev.key, ev.version, prev)
		}
		last[ev.key] = ev.version
	}
	if len(events) == 0 {
		t.Fatal("no callbacks observed")
	}
}

// TestCallbackAfterCloseExpiry arms many near-simultaneous expirations
// and closes the receiver mid-storm: expirations queued but not yet
// dispatched must be dropped, not delivered after Close.
func TestCallbackAfterCloseExpiry(t *testing.T) {
	nw := NewMemNetwork(62)
	sc := nw.Endpoint("sender")
	rc := nw.Endpoint("rcv")
	var closed atomic.Bool
	r, err := NewReceiver(ReceiverConfig{
		Session: 7, ReceiverID: 2,
		Conn: rc, FeedbackDest: MemAddr("sender"),
		Seed: 2,
		OnExpire: func(key string) {
			if closed.Load() {
				t.Error("OnExpire after Close returned")
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSender(SenderConfig{
		Session: 7, SenderID: 1,
		Conn: sc, Dest: MemAddr("rcv"),
		TotalRate:       2_000_000,
		SummaryInterval: 40 * time.Millisecond,
		TTL:             300 * time.Millisecond,
		Seed:            1,
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	r.Start()
	for i := 0; i < 64; i++ {
		s.Publish(fmt.Sprintf("e%d", i), []byte("x"), 0)
	}
	waitFor(t, 3*time.Second, "replica populated", func() bool { return r.Len() > 16 })
	s.Close() // stop refreshes; everything expires at once ~TTL later
	time.Sleep(350 * time.Millisecond)
	r.Close()
	closed.Store(true)
	time.Sleep(100 * time.Millisecond)
}
