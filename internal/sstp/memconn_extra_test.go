package sstp

import (
	"testing"
	"time"
)

func TestMemNetworkLeave(t *testing.T) {
	nw := NewMemNetwork(81)
	a := nw.Endpoint("a")
	b := nw.Endpoint("b")
	nw.Join("g", "a")
	nw.Join("g", "b")
	nw.Leave("g", "b")
	a.WriteTo([]byte("x"), MemAddr("g"))
	buf := make([]byte, 8)
	_ = b.SetReadDeadline(time.Now().Add(50 * time.Millisecond))
	if _, _, err := b.ReadFrom(buf); err == nil {
		t.Fatal("left member still received group traffic")
	}
	// Leaving a group you never joined is a no-op.
	nw.Leave("nonexistent", "a")
}

func TestMemNetworkDelay(t *testing.T) {
	nw := NewMemNetwork(82)
	a := nw.Endpoint("a")
	b := nw.Endpoint("b")
	nw.SetDelay("a", "b", 120*time.Millisecond)
	start := time.Now()
	a.WriteTo([]byte("x"), MemAddr("b"))
	buf := make([]byte, 8)
	_ = b.SetReadDeadline(time.Now().Add(time.Second))
	if _, _, err := b.ReadFrom(buf); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 100*time.Millisecond {
		t.Errorf("delivered after %v, want ≥ 120ms", elapsed)
	}
}

// TestMemNetworkPerLinkLatencyOrdering models two links with distinct
// propagation delays and checks that one multicast write reaches the
// near member before the far member — the property relay-tree tests
// lean on to assert per-hop latency ordering.
func TestMemNetworkPerLinkLatencyOrdering(t *testing.T) {
	nw := NewMemNetwork(87)
	src := nw.Endpoint("src")
	near := nw.Endpoint("near")
	far := nw.Endpoint("far")
	nw.Join("g", "near")
	nw.Join("g", "far")
	nw.SetDelay("src", "near", 5*time.Millisecond)
	nw.SetDelay("src", "far", 60*time.Millisecond)

	start := time.Now()
	src.WriteTo([]byte("x"), MemAddr("g"))
	buf := make([]byte, 8)
	_ = near.SetReadDeadline(start.Add(time.Second))
	if _, _, err := near.ReadFrom(buf); err != nil {
		t.Fatal(err)
	}
	nearAt := time.Since(start)
	_ = far.SetReadDeadline(start.Add(time.Second))
	if _, _, err := far.ReadFrom(buf); err != nil {
		t.Fatal(err)
	}
	farAt := time.Since(start)
	if nearAt >= farAt {
		t.Errorf("near arrived at %v, far at %v: per-hop ordering violated", nearAt, farAt)
	}
	if farAt < 50*time.Millisecond {
		t.Errorf("far arrived after %v, want ≥ 60ms propagation", farAt)
	}
}

// TestMemNetworkJitterDeterministic pins the jitter contract: the
// extra delay is bounded by the configured jitter, and two networks
// built from the same seed delay the same packet sequence identically
// (jitter draws come from the shared seeded RNG).
func TestMemNetworkJitterDeterministic(t *testing.T) {
	deliverTimes := func(seed int64) []time.Duration {
		nw := NewMemNetwork(seed)
		a := nw.Endpoint("a")
		b := nw.Endpoint("b")
		nw.SetDelay("a", "b", 10*time.Millisecond)
		nw.SetJitter("a", "b", 40*time.Millisecond)
		var out []time.Duration
		buf := make([]byte, 8)
		for i := 0; i < 5; i++ {
			start := time.Now()
			a.WriteTo([]byte{byte(i)}, MemAddr("b"))
			_ = b.SetReadDeadline(start.Add(time.Second))
			if _, _, err := b.ReadFrom(buf); err != nil {
				t.Fatal(err)
			}
			out = append(out, time.Since(start))
		}
		return out
	}
	got := deliverTimes(91)
	again := deliverTimes(91)
	for i, d := range got {
		if d < 10*time.Millisecond {
			t.Errorf("packet %d delivered after %v, below the 10ms base delay", i, d)
		}
		if d > 120*time.Millisecond {
			t.Errorf("packet %d delivered after %v, far beyond base+jitter", i, d)
		}
		// Scheduling noise makes exact equality impossible; same-seed
		// runs must agree to well under the jitter bound.
		if diff := (d - again[i]); diff < -25*time.Millisecond || diff > 25*time.Millisecond {
			t.Errorf("packet %d: seed-91 runs delivered at %v vs %v", i, d, again[i])
		}
	}
}

func TestMemNetworkDefaultLoss(t *testing.T) {
	nw := NewMemNetwork(83)
	nw.SetDefaultLoss(1)
	a := nw.Endpoint("a")
	b := nw.Endpoint("b")
	a.WriteTo([]byte("x"), MemAddr("b"))
	buf := make([]byte, 8)
	_ = b.SetReadDeadline(time.Now().Add(50 * time.Millisecond))
	if _, _, err := b.ReadFrom(buf); err == nil {
		t.Fatal("default loss 1 still delivered")
	}
	// A per-path override beats the default.
	nw.SetLoss("a", "b", 0)
	a.WriteTo([]byte("y"), MemAddr("b"))
	_ = b.SetReadDeadline(time.Now().Add(time.Second))
	if _, _, err := b.ReadFrom(buf); err != nil {
		t.Fatalf("override did not apply: %v", err)
	}
}

func TestMemNetworkLossValidation(t *testing.T) {
	nw := NewMemNetwork(84)
	defer func() {
		if recover() == nil {
			t.Fatal("loss > 1 accepted")
		}
	}()
	nw.SetLoss("a", "b", 1.5)
}

func TestMemConnReadAfterClose(t *testing.T) {
	nw := NewMemNetwork(85)
	a := nw.Endpoint("a")
	a.Close()
	buf := make([]byte, 8)
	if _, _, err := a.ReadFrom(buf); err == nil {
		t.Fatal("read on closed conn succeeded")
	}
	// Endpoint() after close returns a fresh conn under the same name.
	a2 := nw.Endpoint("a")
	if a2 == a {
		t.Fatal("closed endpoint reused")
	}
	nw.Endpoint("b").WriteTo([]byte("x"), MemAddr("a"))
	_ = a2.SetReadDeadline(time.Now().Add(time.Second))
	if _, _, err := a2.ReadFrom(buf); err != nil {
		t.Fatalf("fresh endpoint not reachable: %v", err)
	}
}

func TestMemConnTruncatingRead(t *testing.T) {
	nw := NewMemNetwork(86)
	a := nw.Endpoint("a")
	b := nw.Endpoint("b")
	a.WriteTo([]byte("0123456789"), MemAddr("b"))
	small := make([]byte, 4)
	_ = b.SetReadDeadline(time.Now().Add(time.Second))
	n, _, err := b.ReadFrom(small)
	if err != nil || n != 4 || string(small) != "0123" {
		t.Fatalf("truncating read = (%d, %q, %v)", n, small, err)
	}
}
