package sstp

import (
	"testing"
	"time"
)

func TestMemNetworkLeave(t *testing.T) {
	nw := NewMemNetwork(81)
	a := nw.Endpoint("a")
	b := nw.Endpoint("b")
	nw.Join("g", "a")
	nw.Join("g", "b")
	nw.Leave("g", "b")
	a.WriteTo([]byte("x"), MemAddr("g"))
	buf := make([]byte, 8)
	_ = b.SetReadDeadline(time.Now().Add(50 * time.Millisecond))
	if _, _, err := b.ReadFrom(buf); err == nil {
		t.Fatal("left member still received group traffic")
	}
	// Leaving a group you never joined is a no-op.
	nw.Leave("nonexistent", "a")
}

func TestMemNetworkDelay(t *testing.T) {
	nw := NewMemNetwork(82)
	a := nw.Endpoint("a")
	b := nw.Endpoint("b")
	nw.SetDelay("a", "b", 120*time.Millisecond)
	start := time.Now()
	a.WriteTo([]byte("x"), MemAddr("b"))
	buf := make([]byte, 8)
	_ = b.SetReadDeadline(time.Now().Add(time.Second))
	if _, _, err := b.ReadFrom(buf); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 100*time.Millisecond {
		t.Errorf("delivered after %v, want ≥ 120ms", elapsed)
	}
}

func TestMemNetworkDefaultLoss(t *testing.T) {
	nw := NewMemNetwork(83)
	nw.SetDefaultLoss(1)
	a := nw.Endpoint("a")
	b := nw.Endpoint("b")
	a.WriteTo([]byte("x"), MemAddr("b"))
	buf := make([]byte, 8)
	_ = b.SetReadDeadline(time.Now().Add(50 * time.Millisecond))
	if _, _, err := b.ReadFrom(buf); err == nil {
		t.Fatal("default loss 1 still delivered")
	}
	// A per-path override beats the default.
	nw.SetLoss("a", "b", 0)
	a.WriteTo([]byte("y"), MemAddr("b"))
	_ = b.SetReadDeadline(time.Now().Add(time.Second))
	if _, _, err := b.ReadFrom(buf); err != nil {
		t.Fatalf("override did not apply: %v", err)
	}
}

func TestMemNetworkLossValidation(t *testing.T) {
	nw := NewMemNetwork(84)
	defer func() {
		if recover() == nil {
			t.Fatal("loss > 1 accepted")
		}
	}()
	nw.SetLoss("a", "b", 1.5)
}

func TestMemConnReadAfterClose(t *testing.T) {
	nw := NewMemNetwork(85)
	a := nw.Endpoint("a")
	a.Close()
	buf := make([]byte, 8)
	if _, _, err := a.ReadFrom(buf); err == nil {
		t.Fatal("read on closed conn succeeded")
	}
	// Endpoint() after close returns a fresh conn under the same name.
	a2 := nw.Endpoint("a")
	if a2 == a {
		t.Fatal("closed endpoint reused")
	}
	nw.Endpoint("b").WriteTo([]byte("x"), MemAddr("a"))
	_ = a2.SetReadDeadline(time.Now().Add(time.Second))
	if _, _, err := a2.ReadFrom(buf); err != nil {
		t.Fatalf("fresh endpoint not reachable: %v", err)
	}
}

func TestMemConnTruncatingRead(t *testing.T) {
	nw := NewMemNetwork(86)
	a := nw.Endpoint("a")
	b := nw.Endpoint("b")
	a.WriteTo([]byte("0123456789"), MemAddr("b"))
	small := make([]byte, 4)
	_ = b.SetReadDeadline(time.Now().Add(time.Second))
	n, _, err := b.ReadFrom(small)
	if err != nil || n != 4 || string(small) != "0123" {
		t.Fatalf("truncating read = (%d, %q, %v)", n, small, err)
	}
}
