package sstp

import (
	"softstate/internal/obs"
	"softstate/internal/staleness"
	"softstate/internal/trace"
)

// Metric catalog shared between the live stack and the simulators
// (internal/core emits the same names), so a simulator prediction and
// a production run are directly comparable. See README
// "Observability" for the full catalog.
//
// All instruments are nil-safe: with no registry configured the
// increments below cost a nil check and nothing else.

// senderMetrics are the publisher-side series.
type senderMetrics struct {
	publishes  *obs.Counter // sstp_publishes_total
	updates    *obs.Counter // sstp_updates_total
	deletes    *obs.Counter // sstp_deletes_total
	annHot     *obs.Counter // sstp_announcements_total{queue="hot"}
	annCold    *obs.Counter // sstp_announcements_total{queue="cold"}
	txBits     *obs.Counter // sstp_tx_bits_total
	summaries  *obs.Counter // sstp_summaries_total
	heartbeats *obs.Counter // sstp_heartbeats_total
	digests    *obs.Counter // sstp_digests_total
	nacksRecv  *obs.Counter // sstp_nacks_received_total
	promotions *obs.Counter // sstp_promotions_total
	queries    *obs.Counter // sstp_queries_served_total
	reports    *obs.Counter // sstp_reports_heard_total
	allocOK    *obs.Counter // sstp_alloc_decisions_total{outcome="ok"}
	allocLim   *obs.Counter // sstp_alloc_decisions_total{outcome="rate_limited"}
	allocErr   *obs.Counter // sstp_alloc_decisions_total{outcome="error"}

	rate    *obs.Gauge // sstp_send_rate_bps
	loss    *obs.Gauge // sstp_loss_estimate
	live    *obs.Gauge // sstp_records_live
	pubRate *obs.EWMA  // sstp_publish_bps

	byClassSent []*obs.Counter // sstp_class_sent_total{class=...}
	byClassBits []*obs.Counter // sstp_class_bits_total{class=...}
}

func newSenderMetrics(reg *obs.Registry, classes []Class) senderMetrics {
	m := senderMetrics{
		publishes:  reg.Counter("sstp_publishes_total"),
		updates:    reg.Counter("sstp_updates_total"),
		deletes:    reg.Counter("sstp_deletes_total"),
		annHot:     reg.Counter("sstp_announcements_total", "queue", "hot"),
		annCold:    reg.Counter("sstp_announcements_total", "queue", "cold"),
		txBits:     reg.Counter("sstp_tx_bits_total"),
		summaries:  reg.Counter("sstp_summaries_total"),
		heartbeats: reg.Counter("sstp_heartbeats_total"),
		digests:    reg.Counter("sstp_digests_total"),
		nacksRecv:  reg.Counter("sstp_nacks_received_total"),
		promotions: reg.Counter("sstp_promotions_total"),
		queries:    reg.Counter("sstp_queries_served_total"),
		reports:    reg.Counter("sstp_reports_heard_total"),
		allocOK:    reg.Counter("sstp_alloc_decisions_total", "outcome", "ok"),
		allocLim:   reg.Counter("sstp_alloc_decisions_total", "outcome", "rate_limited"),
		allocErr:   reg.Counter("sstp_alloc_decisions_total", "outcome", "error"),
		rate:       reg.Gauge("sstp_send_rate_bps"),
		loss:       reg.Gauge("sstp_loss_estimate"),
		live:       reg.Gauge("sstp_records_live"),
		pubRate:    reg.Rate("sstp_publish_bps"),
	}
	for _, cl := range classes {
		m.byClassSent = append(m.byClassSent, reg.Counter("sstp_class_sent_total", "class", cl.Name))
		m.byClassBits = append(m.byClassBits, reg.Counter("sstp_class_bits_total", "class", cl.Name))
	}
	return m
}

// receiverMetrics are the subscriber-side series.
type receiverMetrics struct {
	deliveries  *obs.Counter // sstp_deliveries_total
	duplicates  *obs.Counter // sstp_duplicates_total
	losses      *obs.Counter // sstp_losses_total (inferred from seq gaps)
	nacksSent   *obs.Counter // sstp_nacks_sent_total
	suppressed  *obs.Counter // sstp_nacks_suppressed_total
	queriesSent *obs.Counter // sstp_queries_sent_total
	reportsSent *obs.Counter // sstp_reports_sent_total
	expired     *obs.Counter // sstp_expirations_total
	peerData    *obs.Counter // sstp_repairs_total
	peerDigests *obs.Counter // sstp_peer_digests_total
	mismatches  *obs.Counter // sstp_summary_mismatches_total
	goodbyes    *obs.Counter // sstp_goodbyes_total

	replica *obs.Gauge // sstp_replica_records
	loss    *obs.Gauge // sstp_loss_estimate

	tRec *obs.Histogram // sstp_t_rec_seconds
	tvis *obs.Histogram // sstp_tvis_seconds (origin publish -> local delivery)

	// Windowed consistency gauges, refreshed from the staleness
	// estimator at sweep cadence (sstp_tvis_* / sstp_staleness_* /
	// sstp_consistency_*).
	tvisQ       [3]*obs.Gauge // sstp_tvis_window_seconds{q="p50"|"p95"|"p99"}
	staleQ      [4]*obs.Gauge // sstp_staleness_age_seconds{q="p50"|"p95"|"p99"|"max"}
	staleKeys   *obs.Gauge    // sstp_staleness_tracked_keys
	consistency *obs.Gauge    // sstp_consistency_estimate (windowed E[c(t)])
	consSamples *obs.Gauge    // sstp_consistency_samples
}

func newReceiverMetrics(reg *obs.Registry) receiverMetrics {
	return receiverMetrics{
		deliveries:  reg.Counter("sstp_deliveries_total"),
		duplicates:  reg.Counter("sstp_duplicates_total"),
		losses:      reg.Counter("sstp_losses_total"),
		nacksSent:   reg.Counter("sstp_nacks_sent_total"),
		suppressed:  reg.Counter("sstp_nacks_suppressed_total"),
		queriesSent: reg.Counter("sstp_queries_sent_total"),
		reportsSent: reg.Counter("sstp_reports_sent_total"),
		expired:     reg.Counter("sstp_expirations_total"),
		peerData:    reg.Counter("sstp_repairs_total"),
		peerDigests: reg.Counter("sstp_peer_digests_total"),
		mismatches:  reg.Counter("sstp_summary_mismatches_total"),
		goodbyes:    reg.Counter("sstp_goodbyes_total"),
		replica:     reg.Gauge("sstp_replica_records"),
		loss:        reg.Gauge("sstp_loss_estimate"),
		tRec:        reg.Histogram("sstp_t_rec_seconds"),
		tvis:        reg.Histogram("sstp_tvis_seconds"),
		tvisQ: [3]*obs.Gauge{
			reg.Gauge("sstp_tvis_window_seconds", "q", "p50"),
			reg.Gauge("sstp_tvis_window_seconds", "q", "p95"),
			reg.Gauge("sstp_tvis_window_seconds", "q", "p99"),
		},
		staleQ: [4]*obs.Gauge{
			reg.Gauge("sstp_staleness_age_seconds", "q", "p50"),
			reg.Gauge("sstp_staleness_age_seconds", "q", "p95"),
			reg.Gauge("sstp_staleness_age_seconds", "q", "p99"),
			reg.Gauge("sstp_staleness_age_seconds", "q", "max"),
		},
		staleKeys:   reg.Gauge("sstp_staleness_tracked_keys"),
		consistency: reg.Gauge("sstp_consistency_estimate"),
		consSamples: reg.Gauge("sstp_consistency_samples"),
	}
}

// setConsistency publishes one estimator snapshot to the gauges.
func (m *receiverMetrics) setConsistency(s staleness.Snapshot) {
	m.tvisQ[0].Set(s.TVis.P50)
	m.tvisQ[1].Set(s.TVis.P95)
	m.tvisQ[2].Set(s.TVis.P99)
	m.staleQ[0].Set(s.Staleness.P50)
	m.staleQ[1].Set(s.Staleness.P95)
	m.staleQ[2].Set(s.Staleness.P99)
	m.staleQ[3].Set(s.Staleness.Max)
	m.staleKeys.Set(float64(s.TrackedKeys))
	m.consistency.Set(s.Consistency)
	m.consSamples.Set(float64(s.AgreementSamples))
}

// traceRecord appends to an optional event ring (nil-safe), stamping
// which protocol node the event happened at.
func traceRecord(r *trace.Ring, node string, k trace.Kind, key string) {
	if r != nil {
		r.RecordNode(nowSeconds(), k, key, node)
	}
}
