package sstp

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"softstate/internal/staleness"
)

// TestConsistencyLossRegimeChange is the online-estimator acceptance
// test: a publisher churns values through a memconn link while the
// receiver's digest-agreement estimator runs over a short decay
// window. Mid-run the link switches from lossless to heavily lossy —
// the windowed E[c(t)] must fall — and then heals, after which the
// estimate must re-converge toward 1. Run under -race: the churn
// goroutine, the receiver's loops, and the test's snapshot polling all
// touch the shared estimator concurrently.
func TestConsistencyLossRegimeChange(t *testing.T) {
	const records = 32

	nw := NewMemNetwork(7)
	pc := nw.Endpoint("pub")
	nw.Join("grp", "pub")
	rc := nw.Endpoint("rcv")
	nw.Join("grp", "rcv")

	pub, err := NewSender(SenderConfig{
		Session: 3, SenderID: 1, Conn: pc, Dest: MemAddr("grp"),
		TotalRate: 2_000_000, SummaryInterval: 50 * time.Millisecond,
		TTL: 60 * time.Second, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	est := staleness.NewEstimator(2 * time.Second)
	rcv, err := NewReceiver(ReceiverConfig{
		Session: 3, ReceiverID: 100, Conn: rc,
		FeedbackDest: MemAddr("grp"),
		NACKWindow:   30 * time.Millisecond,
		Consistency:  est,
		Seed:         2,
	})
	if err != nil {
		t.Fatal(err)
	}
	pub.Start()
	rcv.Start()
	defer func() {
		rcv.Close()
		pub.Close()
	}()

	for i := 0; i < records; i++ {
		if err := pub.Publish(fmt.Sprintf("c/%d", i), []byte("v0"), 0); err != nil {
			t.Fatal(err)
		}
	}

	// Churn one value every 20 ms until the test ends, so a lossy link
	// keeps the replica genuinely behind the live set.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		tick := time.NewTicker(20 * time.Millisecond)
		defer tick.Stop()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			case <-tick.C:
				_ = pub.Publish(fmt.Sprintf("c/%d", i%records), []byte(fmt.Sprintf("v%d", i)), 0)
			}
		}
	}()
	defer func() {
		close(stop)
		wg.Wait()
	}()

	waitEstimate := func(phase string, d time.Duration, ok func(staleness.Snapshot) bool) staleness.Snapshot {
		t.Helper()
		deadline := time.Now().Add(d)
		var s staleness.Snapshot
		for time.Now().Before(deadline) {
			s = est.Snapshot()
			if ok(s) {
				return s
			}
			time.Sleep(25 * time.Millisecond)
		}
		t.Fatalf("%s: estimator stuck at E[c(t)]=%.3f (%d samples, %d keys)",
			phase, s.Consistency, s.AgreementSamples, s.TrackedKeys)
		return s
	}

	// Phase 1 — lossless: the windowed estimate must reach ~1 with a
	// meaningful sample base (churn makes transient disagreement
	// possible, so demand 0.9, not exactly 1).
	waitEstimate("lossless warm-up", 15*time.Second, func(s staleness.Snapshot) bool {
		return s.AgreementSamples >= 10 && s.Consistency >= 0.9
	})

	// Phase 2 — regime change: drop 60% of datagrams in both
	// directions. Lost Data keeps the replica stale, so the publisher
	// summaries that do get through mostly disagree; the 2 s window
	// must let the estimate fall well below the warm-up level.
	nw.SetDefaultLoss(0.6)
	waitEstimate("lossy regime", 20*time.Second, func(s staleness.Snapshot) bool {
		return s.Consistency <= 0.6
	})

	// Phase 3 — heal: estimate must climb back as old disagreement
	// samples decay out of the window and repair catches the replica
	// up with the ongoing churn.
	nw.SetDefaultLoss(0)
	waitEstimate("re-convergence", 20*time.Second, func(s staleness.Snapshot) bool {
		return s.Consistency >= 0.9
	})
}
