package sstp_test

import (
	"fmt"
	"time"

	"softstate/internal/sstp"
)

// Example demonstrates the smallest SSTP program: one publisher and
// one subscriber on an in-memory network, converging by digest
// equality.
func Example() {
	nw := sstp.NewMemNetwork(1)
	pub, err := sstp.NewSender(sstp.SenderConfig{
		Session: 1, SenderID: 1,
		Conn: nw.Endpoint("pub"), Dest: sstp.MemAddr("sub"),
		TotalRate: 512_000, SummaryInterval: 50 * time.Millisecond,
	})
	if err != nil {
		panic(err)
	}
	defer pub.Close()
	sub, err := sstp.NewReceiver(sstp.ReceiverConfig{
		Session: 1, ReceiverID: 2,
		Conn: nw.Endpoint("sub"), FeedbackDest: sstp.MemAddr("pub"),
	})
	if err != nil {
		panic(err)
	}
	defer sub.Close()
	pub.Start()
	sub.Start()

	_ = pub.Publish("greetings/hello", []byte("world"), 0)

	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && pub.RootDigest() != sub.RootDigest() {
		time.Sleep(10 * time.Millisecond)
	}
	v, ok := sub.Get("greetings/hello")
	fmt.Printf("%s %v\n", v, ok)
	// Output: world true
}

// ExampleSenderConfig_classes shows Figure-12 style application data
// classes: bandwidth divides 3:1 between telemetry and logs.
func ExampleSenderConfig_classes() {
	nw := sstp.NewMemNetwork(2)
	pub, err := sstp.NewSender(sstp.SenderConfig{
		Session: 1, SenderID: 1,
		Conn: nw.Endpoint("p"), Dest: sstp.MemAddr("s"),
		TotalRate: 256_000,
		Classes: []sstp.Class{
			{Name: "telemetry", Weight: 0.75},
			{Name: "logs", Weight: 0.25},
		},
	})
	if err != nil {
		panic(err)
	}
	defer pub.Close()
	// Keys route to classes by their first path component.
	fmt.Println(pub.Publish("telemetry/cpu", []byte("42%"), 0))
	fmt.Println(pub.Publish("logs/boot", []byte("ok"), time.Minute))
	// Output:
	// <nil>
	// <nil>
}
