package sstp

import (
	"fmt"
	"testing"
	"time"
)

// benchSender builds a publisher with n live records and no running
// loops, so the announcement hot path can be driven synchronously.
func benchSender(b *testing.B, n int) *Sender {
	b.Helper()
	nw := NewMemNetwork(1)
	sc := nw.Endpoint("sender")
	s, err := NewSender(SenderConfig{
		Session: 1, SenderID: 1,
		Conn: sc, Dest: MemAddr("sink"),
		TotalRate: 1e9,
		TTL:       time.Hour,
	})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("g%d/k%d", i%64, i)
		if err := s.Publish(key, benchValue, 0); err != nil {
			b.Fatal(err)
		}
	}
	return s
}

var benchValue = make([]byte, 512)

// BenchmarkSenderNextAnnouncement is the sender's per-datagram hot
// path: sweep, scheduler pick, wire encode. The announcement cycles
// hot -> cold so every iteration does real work.
func BenchmarkSenderNextAnnouncement(b *testing.B) {
	for _, n := range []int{1024, 16384} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			s := benchSender(b, n)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				buf, ok := s.nextDatagram()
				if !ok || len(buf) == 0 {
					b.Fatal("no announcement")
				}
			}
		})
	}
}

// BenchmarkSenderEncodeSend is the full encode -> socket write path
// over the in-memory network (the WriteTo copy is the datagram fan-out
// cost a UDP kernel write would also pay).
func BenchmarkSenderEncodeSend(b *testing.B) {
	s := benchSender(b, 1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf, ok := s.nextDatagram()
		if !ok {
			b.Fatal("no announcement")
		}
		if _, err := s.cfg.Conn.WriteTo(buf, s.cfg.Dest); err != nil {
			b.Fatal(err)
		}
	}
}
