package sstp

// timerEntry is one pending receiver timer — a suppression-slotted
// NACK, query, or peer-repair response. Entries sit in timerHeap
// ordered by fire time and are indexed by slot key in
// Receiver.timerByKey, so re-arming an existing slot is an O(log n)
// in-place fix instead of a Stop + fresh time.AfterFunc (the
// receiver previously allocated one runtime timer per pending slot).
type timerEntry struct {
	key    string
	fireAt float64
	fn     func()
	idx    int
}

// timerHeap is a binary min-heap on fireAt with stored indices. A
// single goroutine (Receiver.timerLoop) sleeps until the earliest
// entry and fires everything due, replacing the per-key runtime
// timers with one.
type timerHeap struct {
	items []*timerEntry
}

func (h *timerHeap) len() int { return len(h.items) }

func (h *timerHeap) peek() *timerEntry { return h.items[0] }

func (h *timerHeap) push(e *timerEntry) {
	e.idx = len(h.items)
	h.items = append(h.items, e)
	h.up(e.idx)
}

// fix restores heap order after e.fireAt changed in place.
func (h *timerHeap) fix(e *timerEntry) {
	if !h.down(e.idx) {
		h.up(e.idx)
	}
}

func (h *timerHeap) pop() *timerEntry {
	e := h.items[0]
	n := len(h.items) - 1
	h.swap(0, n)
	h.items[n] = nil
	h.items = h.items[:n]
	if n > 0 {
		h.down(0)
	}
	e.idx = -1
	return e
}

func (h *timerHeap) swap(i, j int) {
	h.items[i], h.items[j] = h.items[j], h.items[i]
	h.items[i].idx = i
	h.items[j].idx = j
}

func (h *timerHeap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if h.items[parent].fireAt <= h.items[i].fireAt {
			return
		}
		h.swap(i, parent)
		i = parent
	}
}

func (h *timerHeap) down(i int) bool {
	moved := false
	n := len(h.items)
	for {
		l := 2*i + 1
		if l >= n {
			return moved
		}
		min := l
		if rt := l + 1; rt < n && h.items[rt].fireAt < h.items[l].fireAt {
			min = rt
		}
		if h.items[i].fireAt <= h.items[min].fireAt {
			return moved
		}
		h.swap(i, min)
		i = min
		moved = true
	}
}
