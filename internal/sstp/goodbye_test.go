package sstp

import (
	"sync/atomic"
	"testing"
	"time"
)

// TestGoodbyeFlushOptIn pins the two Goodbye behaviours side by side:
// a FlushOnGoodbye receiver drops its whole replica the moment the
// publisher leaves (firing OnExpire per key and OnGoodbye after), while
// a default receiver keeps its soft state and lets it age out by TTL.
func TestGoodbyeFlushOptIn(t *testing.T) {
	nw := NewMemNetwork(71)
	sc := nw.Endpoint("sender")
	nw.Join("g", "sender")
	fc := nw.Endpoint("flush")
	nw.Join("g", "flush")
	kc := nw.Endpoint("keep")
	nw.Join("g", "keep")

	s, err := NewSender(SenderConfig{
		Session: 3, SenderID: 1, Conn: sc, Dest: MemAddr("g"),
		TotalRate: 512_000, SummaryInterval: 50 * time.Millisecond,
		TTL: 60 * time.Second, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	var expired, saidGoodbye atomic.Int32
	flush, err := NewReceiver(ReceiverConfig{
		Session: 3, ReceiverID: 2, Conn: fc, FeedbackDest: MemAddr("g"),
		NACKWindow: 30 * time.Millisecond, Seed: 2,
		FlushOnGoodbye: true,
		OnExpire:       func(string) { expired.Add(1) },
		OnGoodbye:      func() { saidGoodbye.Add(1) },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer flush.Close()
	keep, err := NewReceiver(ReceiverConfig{
		Session: 3, ReceiverID: 4, Conn: kc, FeedbackDest: MemAddr("g"),
		NACKWindow: 30 * time.Millisecond, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer keep.Close()

	s.Start()
	flush.Start()
	keep.Start()
	for _, k := range []string{"a/1", "a/2", "b/1"} {
		if err := s.Publish(k, []byte("v"), 0); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, 5*time.Second, "both replicas populated", func() bool {
		return flush.Len() == 3 && keep.Len() == 3
	})

	s.Close() // sends the Goodbye
	waitFor(t, 5*time.Second, "flush receiver emptied", func() bool {
		return flush.Len() == 0
	})
	waitFor(t, 5*time.Second, "flush callbacks delivered", func() bool {
		return expired.Load() == 3 && saidGoodbye.Load() == 1
	})
	if st := flush.Stats(); st.GoodbyesHeard != 1 || st.Expired != 3 {
		t.Errorf("flush stats = %+v, want 1 goodbye / 3 expired", st)
	}
	// The default receiver heard the same Goodbye but keeps its state:
	// soft-state decay, not an explicit teardown, empties it.
	if keep.Len() != 3 {
		t.Errorf("default receiver flushed on Goodbye: len = %d", keep.Len())
	}
	if st := keep.Stats(); st.GoodbyesHeard != 1 {
		t.Errorf("default receiver GoodbyesHeard = %d, want 1", st.GoodbyesHeard)
	}
}

// TestSenderGoodbyeKeepsRunning pins Sender.Goodbye as non-terminal:
// it flushes the table and announces the departure, but the sender can
// publish again afterwards and receivers re-learn it.
func TestSenderGoodbyeKeepsRunning(t *testing.T) {
	nw := NewMemNetwork(72)
	sc := nw.Endpoint("sender")
	rc := nw.Endpoint("rcv")
	s, err := NewSender(SenderConfig{
		Session: 3, SenderID: 1, Conn: sc, Dest: MemAddr("rcv"),
		TotalRate: 512_000, SummaryInterval: 50 * time.Millisecond,
		TTL: 60 * time.Second, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	r, err := NewReceiver(ReceiverConfig{
		Session: 3, ReceiverID: 2, Conn: rc, FeedbackDest: MemAddr("sender"),
		NACKWindow: 30 * time.Millisecond, Seed: 2,
		FlushOnGoodbye: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	s.Start()
	r.Start()

	if err := s.Publish("gen/1", []byte("old"), 0); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, "first generation delivered", func() bool {
		_, ok := r.Get("gen/1")
		return ok
	})
	s.Goodbye()
	if s.Len() != 0 {
		t.Fatalf("sender table not flushed: %d records", s.Len())
	}
	waitFor(t, 5*time.Second, "replica flushed", func() bool { return r.Len() == 0 })

	// Second generation after the Goodbye: the same sender publishes
	// fresh state and the receiver converges on it again.
	if err := s.Publish("gen/2", []byte("new"), 0); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, "second generation delivered", func() bool {
		v, ok := r.Get("gen/2")
		return ok && string(v) == "new"
	})
	if _, ok := r.Get("gen/1"); ok {
		t.Error("flushed key survived into the next generation")
	}
}
