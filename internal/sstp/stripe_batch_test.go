package sstp

import (
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"softstate/internal/protocol"
)

// TestCoalescedDeliverySequencePin pins the batching equivalence the
// wire format promises: a run of records coalesced into DataBatch
// datagrams produces exactly the delivery sequence (keys, versions,
// values, in order) that the same records produce as one-record
// datagrams.
func TestCoalescedDeliverySequencePin(t *testing.T) {
	records := make([]protocol.Data, 12)
	for i := range records {
		records[i] = protocol.Data{
			Key:   fmt.Sprintf("g%d/k%02d", i%3, i),
			Ver:   uint64(i + 1),
			TTLms: 10_000,
			Value: []byte(fmt.Sprintf("value-%02d", i)),
		}
	}
	type delivery struct {
		key string
		ver uint64
		val string
	}
	run := func(batched bool) []delivery {
		nw := NewMemNetwork(11)
		tx := nw.Endpoint("tx")
		rx := nw.Endpoint("rx")
		var mu sync.Mutex
		var got []delivery
		r, err := NewReceiver(ReceiverConfig{
			Session: 9, ReceiverID: 2,
			Conn: rx, DisableFeedback: true,
			Stripes: 4,
			OnUpdate: func(key string, value []byte, ver uint64, _ float64) {
				mu.Lock()
				got = append(got, delivery{key, ver, string(value)})
				mu.Unlock()
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		r.Start()
		defer r.Close()
		hdr := protocol.Header{Session: 9, Sender: 1, Scope: 8}
		if batched {
			const per = 4
			for i := 0; i < len(records); i += per {
				hdr.Seq++
				var frames []byte
				n := 0
				for j := i; j < i+per && j < len(records); j++ {
					frames = protocol.AppendBatchRecord(frames, &records[j])
					n++
				}
				pkt := protocol.AppendBatchDatagram(nil, hdr, n, frames)
				if _, err := tx.WriteTo(pkt, MemAddr("rx")); err != nil {
					t.Fatal(err)
				}
			}
		} else {
			for i := range records {
				hdr.Seq++
				pkt := protocol.AppendEncode(nil, hdr, &records[i])
				if _, err := tx.WriteTo(pkt, MemAddr("rx")); err != nil {
					t.Fatal(err)
				}
			}
		}
		waitFor(t, 3*time.Second, "all deliveries", func() bool {
			mu.Lock()
			defer mu.Unlock()
			return len(got) >= len(records)
		})
		mu.Lock()
		defer mu.Unlock()
		return append([]delivery(nil), got...)
	}
	single := run(false)
	coalesced := run(true)
	if !reflect.DeepEqual(single, coalesced) {
		t.Fatalf("delivery sequences diverge:\nsingle:    %v\ncoalesced: %v", single, coalesced)
	}
	for i, d := range single {
		want := delivery{records[i].Key, records[i].Ver, string(records[i].Value)}
		if d != want {
			t.Fatalf("delivery %d = %v, want %v", i, d, want)
		}
	}
}

// TestStripedSenderReceiverConvergence runs a 4-stripe coalescing
// sender against a 1-stripe receiver and pins two properties: the
// striped sender's live root digest is byte-identical to an unsharded
// sender holding the same records, and the mismatched-stripe pair
// still converges to digest equality over the wire.
func TestStripedSenderReceiverConvergence(t *testing.T) {
	nw := NewMemNetwork(21)
	sc := nw.Endpoint("sender")
	rc := nw.Endpoint("rcv")
	s, err := NewSender(SenderConfig{
		Session: 7, SenderID: 1,
		Conn: sc, Dest: MemAddr("rcv"),
		TotalRate:       2_000_000,
		SummaryInterval: 60 * time.Millisecond,
		TTL:             30 * time.Second,
		Seed:            1,
		Stripes:         4,
		CoalesceRecords: 8,
		BatchDatagrams:  4,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Unsharded reference: never started, only holds the same records.
	refNW := NewMemNetwork(22)
	ref, err := NewSender(SenderConfig{
		Session: 7, SenderID: 1,
		Conn: refNW.Endpoint("ref"), Dest: MemAddr("nowhere"),
		TotalRate: 2_000_000,
		TTL:       30 * time.Second,
		Seed:      1,
		Stripes:   1,
	})
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewReceiver(ReceiverConfig{
		Session: 7, ReceiverID: 2,
		Conn: rc, FeedbackDest: MemAddr("sender"),
		ReportInterval: 150 * time.Millisecond,
		NACKWindow:     30 * time.Millisecond,
		Stripes:        1,
		Seed:           2,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close(); r.Close(); ref.Close() })

	const n = 120
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("t%d/m%d/k%02d", i%7, i%3, i)
		val := []byte(fmt.Sprintf("payload-%03d", i))
		if err := s.Publish(key, val, 30*time.Second); err != nil {
			t.Fatal(err)
		}
		if err := ref.Publish(key, val, 30*time.Second); err != nil {
			t.Fatal(err)
		}
	}
	if got, want := s.RootDigest(), ref.RootDigest(); got != want {
		t.Fatalf("striped sender root %x != unsharded root %x", got, want)
	}
	if s.Len() != n {
		t.Fatalf("striped sender Len = %d, want %d", s.Len(), n)
	}

	s.Start()
	r.Start()
	waitFor(t, 10*time.Second, "striped convergence", func() bool { return converged(s, r) })
	if r.Len() != n {
		t.Fatalf("receiver Len = %d, want %d", r.Len(), n)
	}
	if got, want := r.RootDigest(), ref.RootDigest(); got != want {
		t.Fatalf("receiver root %x != unsharded root %x", got, want)
	}
	st := s.Stats()
	if st.DataSent < n {
		t.Fatalf("sender DataSent = %d, want >= %d", st.DataSent, n)
	}
}

// TestStripedReceiverAgainstUnshardedSender flips the mismatch: a
// default (unsharded, uncoalesced) sender against a 4-stripe receiver
// must converge to the same root digest.
func TestStripedReceiverAgainstUnshardedSender(t *testing.T) {
	nw := NewMemNetwork(31)
	sc := nw.Endpoint("sender")
	rc := nw.Endpoint("rcv")
	s, err := NewSender(SenderConfig{
		Session: 7, SenderID: 1,
		Conn: sc, Dest: MemAddr("rcv"),
		TotalRate:       1_000_000,
		SummaryInterval: 60 * time.Millisecond,
		TTL:             30 * time.Second,
		Seed:            3,
	})
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewReceiver(ReceiverConfig{
		Session: 7, ReceiverID: 2,
		Conn: rc, FeedbackDest: MemAddr("sender"),
		ReportInterval: 150 * time.Millisecond,
		NACKWindow:     30 * time.Millisecond,
		Stripes:        4,
		Seed:           4,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close(); r.Close() })
	for i := 0; i < 60; i++ {
		key := fmt.Sprintf("a%d/k%02d", i%5, i)
		if err := s.Publish(key, []byte(fmt.Sprintf("v%d", i)), 30*time.Second); err != nil {
			t.Fatal(err)
		}
	}
	s.Start()
	r.Start()
	waitFor(t, 10*time.Second, "mixed-stripe convergence", func() bool { return converged(s, r) })
	if r.Len() != 60 {
		t.Fatalf("receiver Len = %d, want 60", r.Len())
	}
}
