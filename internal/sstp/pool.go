package sstp

import "sync"

// pktPool recycles wire-encode buffers for the control paths (NACKs,
// queries, digests, reports, summaries), which are sent from several
// goroutines. The announcement hot path does not use the pool — the
// sender owns a dedicated buffer there.
var pktPool = sync.Pool{New: func() any {
	b := make([]byte, 0, 2048)
	return &b
}}

// readBufPool recycles the 64 KiB datagram read buffers used by the
// sender and receiver read loops, so short-lived endpoints (load
// harnesses, per-session receivers) do not each burn a fresh 64 KiB
// allocation.
var readBufPool = sync.Pool{New: func() any {
	b := make([]byte, 65536)
	return &b
}}
