package sstp

import (
	"fmt"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"softstate/internal/congestion"
	"softstate/internal/namespace"
	"softstate/internal/netio"
	"softstate/internal/obs"
	"softstate/internal/profile"
	"softstate/internal/protocol"
	"softstate/internal/sched"
	"softstate/internal/table"
	"softstate/internal/trace"
	"softstate/internal/transport"
)

// coalesceMTU is the datagram size announcements are coalesced up to;
// conservatively under the common 1500-byte path MTU. Records whose
// single frame exceeds it are still sent whole in their own datagram
// (IP fragments them, as before coalescing existed).
const coalesceMTU = 1400

// SenderConfig parameterizes an SSTP publisher.
type SenderConfig struct {
	Session  uint64
	SenderID uint64

	// Conn is the session's wire — any transport.Conn: a UDP socket,
	// a framed TCP/TLS stream conn, or a MemConn. Dest is where
	// announcements go (a unicast peer, a multicast group, or a
	// MemNetwork group).
	Conn transport.Conn
	Dest net.Addr

	// TotalRate is the initial session bandwidth in bits/second. If
	// MinRate and MaxRate are set, an AIMD controller driven by
	// receiver reports adapts within [MinRate, MaxRate]; otherwise
	// the rate is fixed.
	TotalRate float64
	MinRate   float64
	MaxRate   float64

	// HotFraction is the hot queue's share of data bandwidth when no
	// Allocator is given (default 0.9).
	HotFraction float64

	// Classes divides the data bandwidth among application data
	// classes, each with its own hot/cold queue pair under a
	// hierarchical link-sharing scheduler — the paper's Figure 12
	// ("the application flexibly controls the amount of bandwidth
	// allocated to its different data classes"). Empty means a single
	// class holding all keys.
	Classes []Class

	// Classify maps a key to a class name. The default uses the
	// key's first path component when it names a class and falls
	// back to the first class otherwise.
	Classify func(key string) string

	// Allocator, if non-nil, re-divides bandwidth from measured loss
	// after each receiver report (profile-driven allocation, §6.1).
	Allocator *profile.Allocator

	// TTL is the receiver-side expiry announced with each record
	// (default 30 s). Records are re-announced well within it as long
	// as cold bandwidth is available.
	TTL time.Duration

	// SummaryInterval is the period of root-digest summary
	// announcements (default 1 s; 0 disables summaries, reducing SSTP
	// to pure announce/listen).
	SummaryInterval time.Duration

	// NoRetransmit sends each record version exactly once (no cold
	// cycling) — the best-effort end of the reliability spectrum.
	NoRetransmit bool

	// TombstoneRepeats is how many times a deletion is announced
	// (default 3).
	TombstoneRepeats int

	// Scope is the relay hop budget stamped on every datagram (default
	// protocol.DefaultScope). A relay tree sets it to its upstream
	// scope minus one at each level, bounding forwarding loops and the
	// reach of repair traffic.
	Scope uint8

	// Stripes shards the publisher table and the namespace digest tree
	// by key hash (first '/'-path component), giving each stripe its
	// own lock and expiry heap so concurrent Publish calls contend per
	// stripe, not per sender. Rounded up to a power of two; default 1
	// (unsharded). Summaries carry the combined root digest, which is
	// byte-identical to the unsharded tree's for the same contents.
	Stripes int

	// CoalesceRecords caps how many record announcements are packed
	// into one DataBatch datagram (up to the MTU budget; at most
	// protocol.MaxBatch). 0 or 1 sends one record per datagram.
	CoalesceRecords int

	// BatchDatagrams is how many announcement datagrams are handed to
	// the socket per send operation (one sendmmsg on Linux). Default 1.
	BatchDatagrams int

	// OnRateLimit, if non-nil, is invoked when the allocator detects
	// the application's publish rate exceeds μ_hot — the paper's
	// notification "to refrain from injecting new records".
	OnRateLimit func(maxRate float64)

	// Obs, if non-nil, receives the sender's runtime metrics (the
	// sstp_* catalog in the README); the simulators emit the same
	// names, so sim and live runs are directly comparable.
	Obs *obs.Registry

	// Trace, if non-nil, records protocol events (publishes,
	// announcements, promotions, deletions). The sender writes from
	// its own goroutines — use trace.NewSafe.
	Trace *trace.Ring

	// TraceNode names this sender in trace events (default
	// "s<SenderID>"). Relay trees set distinctive names per link so a
	// record's multi-hop journey is reconstructible from one JSONL
	// dump.
	TraceNode string

	Seed int64
}

func (c SenderConfig) withDefaults() (SenderConfig, error) {
	if c.Conn == nil || c.Dest == nil {
		return c, fmt.Errorf("sstp: sender needs Conn and Dest")
	}
	if c.TotalRate <= 0 {
		return c, fmt.Errorf("sstp: TotalRate %v must be positive", c.TotalRate)
	}
	if c.MinRate != 0 || c.MaxRate != 0 {
		if c.MinRate <= 0 || c.MaxRate < c.MinRate || c.TotalRate < c.MinRate || c.TotalRate > c.MaxRate {
			return c, fmt.Errorf("sstp: bad AIMD bounds min=%v max=%v total=%v", c.MinRate, c.MaxRate, c.TotalRate)
		}
	}
	if c.HotFraction <= 0 || c.HotFraction >= 1 {
		c.HotFraction = 0.9
	}
	if c.TTL <= 0 {
		c.TTL = 30 * time.Second
	}
	if c.SummaryInterval < 0 {
		return c, fmt.Errorf("sstp: negative SummaryInterval")
	}
	if c.SummaryInterval == 0 {
		c.SummaryInterval = time.Second
	}
	if c.TombstoneRepeats <= 0 {
		c.TombstoneRepeats = 3
	}
	if c.Scope == 0 {
		c.Scope = protocol.DefaultScope
	}
	if c.TraceNode == "" {
		c.TraceNode = fmt.Sprintf("s%d", c.SenderID)
	}
	c.Stripes = table.NormalizeStripes(c.Stripes)
	if c.CoalesceRecords < 1 {
		c.CoalesceRecords = 1
	}
	if c.CoalesceRecords > protocol.MaxBatch {
		c.CoalesceRecords = protocol.MaxBatch
	}
	if c.BatchDatagrams < 1 {
		c.BatchDatagrams = 1
	}
	if c.BatchDatagrams > 256 {
		c.BatchDatagrams = 256
	}
	if len(c.Classes) == 0 {
		c.Classes = []Class{{Name: "data", Weight: 1}}
	}
	seen := make(map[string]bool, len(c.Classes))
	for _, cl := range c.Classes {
		if cl.Name == "" || cl.Weight <= 0 {
			return c, fmt.Errorf("sstp: class %+v needs a name and positive weight", cl)
		}
		if seen[cl.Name] {
			return c, fmt.Errorf("sstp: duplicate class %q", cl.Name)
		}
		seen[cl.Name] = true
	}
	return c, nil
}

// SenderStats are cumulative counters, safe to read via Sender.Stats.
type SenderStats struct {
	DataSent       int // record announcements (frames), not datagrams
	DatagramsSent  int // data datagrams; < DataSent when coalescing
	SummariesSent  int
	DigestsSent    int
	HeartbeatsSent int
	BytesSent      int
	NACKsReceived  int
	KeysPromoted   int
	QueriesServed  int
	ReportsHeard   int
	LossEstimate   float64 // latest smoothed report loss
	Rate           float64 // current total session rate

	// SentByClass counts data announcements per application class;
	// BytesByClass counts their payload bytes (the quantity the
	// hierarchical scheduler actually divides).
	SentByClass  map[string]int
	BytesByClass map[string]int
}

const (
	sqHot  = 0
	sqCold = 1
)

// Class is one application data class in the Figure-12 sharing tree.
type Class struct {
	Name   string
	Weight float64
	// HotFraction overrides the sender-wide hot share for this class
	// when positive.
	HotFraction float64
}

type senderClass struct {
	name   string
	queues [2]entryList
	leaf   [2]int // hierarchy leaf ids for {hot, cold}
}

type sendEntry struct {
	key        string
	class      int
	queue      int
	prev, next *sendEntry // intrusive FIFO links (no per-move allocation)
	tombstone  int        // >0: remaining deletion announcements
}

// entryList is an intrusive FIFO of sendEntries. Unlike
// container/list it allocates nothing per push — the links live in
// the entry itself, which is moved between the hot and cold queues on
// every announcement.
type entryList struct {
	head, tail *sendEntry
	n          int
}

func (l *entryList) Len() int { return l.n }

func (l *entryList) pushBack(e *sendEntry) {
	e.prev, e.next = l.tail, nil
	if l.tail != nil {
		l.tail.next = e
	} else {
		l.head = e
	}
	l.tail = e
	l.n++
}

func (l *entryList) remove(e *sendEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		l.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		l.tail = e.prev
	}
	e.prev, e.next = nil, nil
	l.n--
}

// senderStripe is one shard of the publisher table plus its slice of
// the namespace digest tree. Keys are striped by their first path
// component, so entire top-level subtrees live in one stripe and the
// combined root digest is byte-identical to an unsharded tree's.
//
// Lock order: s.mu may be held while taking a stripe lock (the pick
// path), but a stripe lock must never be held while taking s.mu —
// stripe-side callbacks park work in `expired` instead.
type senderStripe struct {
	mu      sync.Mutex
	pub     *table.Publisher
	ns      *namespace.Tree
	expired []string // keys evicted while the stripe lock was held
}

// Sender is an SSTP publisher.
type Sender struct {
	cfg   SenderConfig
	bconn *netio.BatchConn

	stripes []*senderStripe
	liveN   atomic.Int64  // live records across stripes
	verN    atomic.Uint64 // sender-global version counter (see publish)

	mu          sync.Mutex
	scope       uint8
	share       *sched.Hierarchy
	classes     []*senderClass
	classByName map[string]int
	leafOwner   [][2]int // leaf id -> {class index, queue}
	entries     map[string]*sendEntry
	bucket      *congestion.TokenBucket
	aimd        *congestion.AIMD
	seq         uint32
	stats       SenderStats
	m           senderMetrics
	started     float64 // publish-rate estimation window start
	pubBits     float64 // bits published in the window

	// Hot-path reuse: the announcement datagram buffer, the frame
	// accumulator, and the Data message are owned by sendLoop (via
	// nextDatagram), the wait timer by sendLoop's throttle/idle
	// sleeps. Zero allocations per announcement in steady state.
	encBuf       []byte
	frameBuf     []byte   // coalesced record frames for the datagram being built
	pending      []byte   // frame that overflowed the previous datagram's budget
	pendingBig   bool     // pending frame alone exceeds the MTU budget
	sweepScratch []string // sendLoop-owned copy of a stripe's expired keys
	dataMsg      protocol.Data
	waitTimer    *time.Timer
	readyFn      func(id int) bool // persistent scheduler-ready predicate

	// Query-path reuse, owned by recvLoop: the child listing scratch
	// and the Digests reply are recycled across queries (send encodes
	// synchronously, so the reply struct is free again on return).
	qKids []namespace.Child
	qResp protocol.Digests

	// goodbyePending asks the send loop to emit a Goodbye datagram;
	// deferring it keeps the Goodbye strictly after any announcement
	// the loop has already picked. Guarded by mu.
	goodbyePending bool

	// Driven mode (StartDriven/NextWire): the fields below are owned
	// by the single driving goroutine, mirroring sendLoop's locals.
	driven      bool
	nextSummary time.Time
	lastSweep   float64
	ctlBuf      []byte // control datagrams built by NextWire

	done chan struct{}
	wg   sync.WaitGroup
	once sync.Once
}

// NewSender constructs a publisher; call Start to begin announcing.
func NewSender(cfg SenderConfig) (*Sender, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	// The bucket burst must admit a full batch of MTU-sized datagrams,
	// or batched sends would starve behind their own rate limiter.
	burst := 4
	if 4*cfg.BatchDatagrams > burst {
		burst = 4 * cfg.BatchDatagrams
	}
	s := &Sender{
		cfg:         cfg,
		bconn:       netio.Wrap(cfg.Conn),
		entries:     make(map[string]*sendEntry),
		classByName: make(map[string]int),
		bucket:      congestion.NewTokenBucket(cfg.TotalRate, float64(burst*8*1500)),
		done:        make(chan struct{}),
		started:     nowSeconds(),
		m:           newSenderMetrics(cfg.Obs, cfg.Classes),
	}
	s.scope = cfg.Scope
	s.stripes = make([]*senderStripe, cfg.Stripes)
	for i := range s.stripes {
		st := &senderStripe{}
		s.wireStripe(st)
		s.stripes[i] = st
	}
	// Build the Figure-12 sharing tree: root -> class -> {hot, cold}.
	s.share = sched.NewHierarchy(func() sched.Scheduler { return sched.NewStride() })
	for i, cl := range cfg.Classes {
		node := s.share.AddNode(s.share.Root(), cl.Name, cl.Weight)
		hotFrac := cl.HotFraction
		if hotFrac <= 0 || hotFrac >= 1 {
			hotFrac = cfg.HotFraction
		}
		sc := &senderClass{name: cl.Name}
		hot := s.share.AddLeaf(node, cl.Name+"/hot", hotFrac)
		cold := s.share.AddLeaf(node, cl.Name+"/cold", 1-hotFrac)
		sc.leaf[sqHot] = hot.LeafID()
		sc.leaf[sqCold] = cold.LeafID()
		s.classes = append(s.classes, sc)
		s.classByName[cl.Name] = i
		s.leafOwner = append(s.leafOwner, [2]int{i, sqHot}, [2]int{i, sqCold})
	}
	s.readyFn = func(id int) bool {
		owner := s.leafOwner[id]
		return s.classes[owner[0]].queues[owner[1]].Len() > 0
	}
	if cfg.MinRate > 0 {
		s.aimd = congestion.NewAIMD(cfg.TotalRate, cfg.MinRate, cfg.MaxRate)
		s.aimd.Instrument(cfg.Obs)
	}
	s.share.Instrument(cfg.Obs)
	s.stats.Rate = cfg.TotalRate
	s.m.rate.Set(cfg.TotalRate)
	return s, nil
}

// wireStripe installs fresh tables on a stripe. Lifetime expiry
// (fired under the stripe lock, from Sweep or Delete) removes the key
// from the stripe's namespace slice and parks it in st.expired; the
// queue-side cleanup runs later under s.mu via dropExpired, because a
// stripe lock must never be held while taking s.mu.
func (s *Sender) wireStripe(st *senderStripe) {
	st.pub = table.NewPublisher()
	st.ns = namespace.New(namespace.HashSHA256)
	st.pub.OnExpire = func(r *table.Record) {
		key := string(r.Key)
		st.ns.Delete(key)
		st.expired = append(st.expired, key)
		s.liveN.Add(-1)
	}
}

// stripeFor returns the stripe owning key (or any namespace path —
// both hash their first '/'-component).
func (s *Sender) stripeFor(key string) *senderStripe {
	return s.stripes[table.StripeIndex(table.Key(key), len(s.stripes))]
}

// dropExpired reconciles the transmission queues with keys a stripe's
// expiry heap evicted. Caller must NOT hold any stripe lock.
func (s *Sender) dropExpired(keys []string) {
	if len(keys) == 0 {
		return
	}
	s.mu.Lock()
	for _, key := range keys {
		if e := s.entries[key]; e != nil && e.tombstone == 0 {
			s.removeEntry(e)
		}
		s.m.deletes.Inc()
		traceRecord(s.cfg.Trace, s.cfg.TraceNode, trace.Die, key)
	}
	s.m.live.Set(float64(s.liveN.Load()))
	s.mu.Unlock()
}

// sweep expires lapsed records stripe by stripe (O(1) per stripe when
// nothing is due). Only sendLoop calls it.
func (s *Sender) sweep(now float64) {
	for _, st := range s.stripes {
		st.mu.Lock()
		st.expired = st.expired[:0]
		st.pub.Sweep(now)
		s.sweepScratch = append(s.sweepScratch[:0], st.expired...)
		st.mu.Unlock()
		s.dropExpired(s.sweepScratch)
	}
}

// Start launches the announcement and control loops.
func (s *Sender) Start() {
	if s.driven {
		panic("sstp: Start after StartDriven")
	}
	s.wg.Add(2)
	go s.sendLoop()
	go s.recvLoop()
}

// StartDriven launches only the feedback loop: announcement datagrams
// are pulled by an external driver (the session fabric) via NextWire
// instead of pushed by an owned send loop, so thousands of sessions
// share one writer goroutine and one socket. The sender's own token
// bucket still meters this session's demand — NextWire reports "not
// ready" when the session is out of tokens — so per-session rate
// configuration keeps meaning under a shared link. Use either Start
// or StartDriven, never both.
func (s *Sender) StartDriven() {
	s.driven = true
	s.nextSummary = time.Now().Add(s.cfg.SummaryInterval)
	s.wg.Add(1)
	go s.recvLoop()
}

// NextWire returns the sender's next wire-ready datagram: a pending
// Goodbye, a due summary (or heartbeat), or the next coalesced
// announcement, in that priority order. ok=false means the session
// has nothing to send right now — nothing queued, or its token bucket
// is drained. The returned buffer is owned by the sender and valid
// only until the next NextWire call; drivers copy it out. Only the
// single driving goroutine may call NextWire, and only on a sender
// started with StartDriven.
func (s *Sender) NextWire() ([]byte, bool) {
	s.mu.Lock()
	goodbye := s.goodbyePending
	s.goodbyePending = false
	s.mu.Unlock()
	if goodbye {
		return s.encodeControl(&protocol.Goodbye{}), true
	}
	if now := time.Now(); now.After(s.nextSummary) {
		s.nextSummary = now.Add(s.cfg.SummaryInterval)
		return s.summaryWire(), true
	}
	now := nowSeconds()
	if now-s.lastSweep > 0.05 {
		s.lastSweep = now
		s.sweep(now)
	}
	s.mu.Lock()
	ready := s.bucket.Balance(now) > 0
	s.mu.Unlock()
	if !ready {
		return nil, false
	}
	buf, ok := s.nextDatagram()
	if !ok {
		return nil, false
	}
	s.mu.Lock()
	s.bucket.Take(nowSeconds(), float64(8*len(buf)))
	s.mu.Unlock()
	return buf, true
}

// summaryWire is sendSummary for driven senders: it builds the
// summary (or heartbeat) datagram instead of transmitting it, and
// leaves pacing to the driver.
func (s *Sender) summaryWire() []byte {
	digest, count := s.rootSummary()
	var msg protocol.Message
	if count == 0 {
		msg = &protocol.Heartbeat{}
		s.mu.Lock()
		s.stats.HeartbeatsSent++
		s.mu.Unlock()
		s.m.heartbeats.Inc()
	} else {
		sum := &protocol.Summary{Count: uint32(count)}
		copy(sum.Digest[:], digest[:])
		msg = sum
		s.mu.Lock()
		s.stats.SummariesSent++
		s.mu.Unlock()
		s.m.summaries.Inc()
	}
	return s.encodeControl(msg)
}

// encodeControl seals one control message into the driven sender's
// control buffer (valid until the next NextWire call), charging the
// session bucket the true datagram size.
func (s *Sender) encodeControl(msg protocol.Message) []byte {
	s.mu.Lock()
	s.seq++
	hdr := protocol.Header{Session: s.cfg.Session, Sender: s.cfg.SenderID, Seq: s.seq, Scope: s.scope}
	s.ctlBuf = protocol.AppendEncode(s.ctlBuf[:0], hdr, msg)
	s.stats.BytesSent += len(s.ctlBuf)
	s.m.txBits.Add(uint64(8 * len(s.ctlBuf)))
	s.bucket.Take(nowSeconds(), float64(8*len(s.ctlBuf)))
	s.mu.Unlock()
	return s.ctlBuf
}

// Close stops the sender and sends a final Goodbye. The Goodbye goes
// out only after the send loop has exited, so it is guaranteed to be
// the last datagram on the session — a Data announcement arriving
// after it would silently repopulate receivers that flushed on it.
// Safe to call twice.
func (s *Sender) Close() error {
	s.once.Do(func() {
		close(s.done)
		// Unblock the reader.
		_ = s.cfg.Conn.SetReadDeadline(time.Now())
		s.wg.Wait()
		s.send(&protocol.Goodbye{})
	})
	s.wg.Wait()
	return nil
}

// SetScope changes the hop budget stamped on subsequent datagrams. A
// relay calls it once it learns its upstream scope.
func (s *Sender) SetScope(scope uint8) {
	s.mu.Lock()
	s.scope = scope
	s.mu.Unlock()
}

// Goodbye flushes every record and announces the departure without
// stopping the sender: relays use it to propagate an upstream Goodbye
// downstream while staying alive for a future publisher. The Goodbye
// datagram itself is emitted by the send loop, after any announcement
// it had already picked — a Data datagram arriving after the Goodbye
// would silently repopulate receivers that flushed on it. Close still
// sends a final Goodbye of its own.
func (s *Sender) Goodbye() {
	for _, st := range s.stripes {
		st.mu.Lock()
		s.wireStripe(st)
		st.expired = st.expired[:0]
		st.mu.Unlock()
	}
	s.liveN.Store(0)
	s.verN.Store(0) // fresh tables restart version assignment, as before sharding
	s.mu.Lock()
	for _, e := range s.entries {
		if e.queue >= 0 {
			s.classes[e.class].queues[e.queue].remove(e)
			e.queue = -1
		}
	}
	s.entries = make(map[string]*sendEntry)
	s.m.live.Set(0)
	s.goodbyePending = true
	s.mu.Unlock()
}

// Publish inserts or updates a record. Lifetime 0 means the record
// lives until Delete.
func (s *Sender) Publish(key string, value []byte, lifetime time.Duration) error {
	return s.publish(key, value, 0, false, 0, lifetime)
}

// Republish is Publish with a caller-supplied record version and
// origin publish time (Unix seconds; 0 = unknown). Relays use it to
// forward upstream records verbatim: the namespace digest covers
// versions, so only version-preserving forwarding lets every replica
// in an overlay tree hash to the origin publisher's digest — and
// preserving the origin time keeps downstream visibility lag measured
// end-to-end rather than per hop.
func (s *Sender) Republish(key string, value []byte, version uint64, born float64, lifetime time.Duration) error {
	return s.publish(key, value, version, true, born, lifetime)
}

func (s *Sender) publish(key string, value []byte, version uint64, haveVersion bool, born float64, lifetime time.Duration) error {
	if _, err := namespace.SplitPath(key); err != nil {
		return err
	}
	if key == "" {
		return fmt.Errorf("sstp: empty key")
	}
	if len(key) > protocol.MaxKeyLen {
		return fmt.Errorf("sstp: key length %d exceeds %d", len(key), protocol.MaxKeyLen)
	}
	if len(value) > protocol.MaxValueLen {
		return fmt.Errorf("sstp: value length %d exceeds %d", len(value), protocol.MaxValueLen)
	}
	// Stripe phase: the table insert and the digest-tree insert are
	// atomic under one stripe lock — a summary computed between them
	// would advertise a digest no repair can ever converge to.
	// Versions are assigned from a sender-global counter, not the
	// per-stripe table counter: the namespace digest covers versions,
	// so a striped sender must assign the same versions an unsharded
	// one would for the same publish sequence (pinned by test).
	if !haveVersion {
		version = s.verN.Add(1)
	} else {
		for {
			cur := s.verN.Load()
			if version <= cur || s.verN.CompareAndSwap(cur, version) {
				break
			}
		}
	}
	st := s.stripeFor(key)
	st.mu.Lock()
	now := nowSeconds()
	existed := st.pub.Get(table.Key(key)) != nil
	if !haveVersion {
		born = now
	}
	rec := st.pub.PutVersionBorn(table.Key(key), value, version, born, now, lifetime.Seconds())
	if !existed {
		s.liveN.Add(1)
	}
	err := st.ns.Put(key, value, rec.Version)
	var rollback []string
	if err != nil {
		st.expired = st.expired[:0]
		st.pub.Delete(table.Key(key)) // fires OnExpire: ns cleanup + liveN
		rollback = append(rollback, st.expired...)
	}
	st.mu.Unlock()
	if err != nil {
		s.dropExpired(rollback)
		return err
	}

	// Global phase: queue bookkeeping under s.mu, stripe lock released.
	s.mu.Lock()
	defer s.mu.Unlock()
	s.pubBits += float64(8 * (len(value) + len(key)))
	s.m.pubRate.Add(float64(8 * (len(value) + len(key))))
	e := s.entries[key]
	if e == nil {
		e = &sendEntry{key: key, class: s.classify(key), queue: -1}
		s.entries[key] = e
		s.m.publishes.Inc()
		traceRecord(s.cfg.Trace, s.cfg.TraceNode, trace.Arrive, key)
	} else {
		s.m.updates.Inc()
		traceRecord(s.cfg.Trace, s.cfg.TraceNode, trace.Update, key)
	}
	e.tombstone = 0
	s.moveTo(e, sqHot)
	s.m.live.Set(float64(s.liveN.Load()))
	return nil
}

// classify maps a key to its class index. Caller holds s.mu.
func (s *Sender) classify(key string) int {
	name := ""
	if s.cfg.Classify != nil {
		name = s.cfg.Classify(key)
	} else if i := strings.IndexByte(key, '/'); i > 0 {
		name = key[:i]
	} else {
		name = key
	}
	if idx, ok := s.classByName[name]; ok {
		return idx
	}
	return 0
}

// Delete removes a record and schedules tombstone announcements.
func (s *Sender) Delete(key string) bool {
	st := s.stripeFor(key)
	st.mu.Lock()
	st.expired = st.expired[:0]
	ok := st.pub.Delete(table.Key(key)) // fires OnExpire: ns cleanup + liveN
	st.mu.Unlock()
	if !ok {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	e := s.entries[key]
	if e == nil {
		e = &sendEntry{key: key, class: s.classify(key), queue: -1}
		s.entries[key] = e
	}
	e.tombstone = s.cfg.TombstoneRepeats
	s.moveTo(e, sqHot)
	s.m.deletes.Inc()
	s.m.live.Set(float64(s.liveN.Load()))
	traceRecord(s.cfg.Trace, s.cfg.TraceNode, trace.Die, key)
	return true
}

// moveTo places an entry at the tail of its class's queue q (removing
// it from its current queue if needed). Caller holds s.mu.
func (s *Sender) moveTo(e *sendEntry, q int) {
	if e.queue == q {
		return
	}
	cl := s.classes[e.class]
	if e.queue >= 0 {
		cl.queues[e.queue].remove(e)
	}
	e.queue = q
	cl.queues[q].pushBack(e)
}

func (s *Sender) removeEntry(e *sendEntry) {
	if e.queue >= 0 {
		s.classes[e.class].queues[e.queue].remove(e)
		e.queue = -1
	}
	delete(s.entries, e.key)
}

// Stats returns a copy of the current counters.
func (s *Sender) Stats() SenderStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	if s.stats.SentByClass != nil {
		st.SentByClass = make(map[string]int, len(s.stats.SentByClass))
		for k, v := range s.stats.SentByClass {
			st.SentByClass[k] = v
		}
	}
	if s.stats.BytesByClass != nil {
		st.BytesByClass = make(map[string]int, len(s.stats.BytesByClass))
		for k, v := range s.stats.BytesByClass {
			st.BytesByClass[k] = v
		}
	}
	return st
}

// Len returns the number of live records.
func (s *Sender) Len() int {
	n := 0
	for _, st := range s.stripes {
		st.mu.Lock()
		n += st.pub.Len()
		st.mu.Unlock()
	}
	return n
}

// RootDigest returns the namespace root digest (for convergence
// checks). With multiple stripes it is the combined root —
// byte-identical to the digest an unsharded tree computes over the
// same records.
func (s *Sender) RootDigest() namespace.Digest {
	d, _ := s.rootSummary()
	return d
}

// rootSummary combines the per-stripe namespace slices into the root
// digest plus the total leaf count. Keys are striped by first path
// component, so each stripe holds whole top-level subtrees and the
// merged child list reproduces the unsharded root preimage exactly.
func (s *Sender) rootSummary() (namespace.Digest, int) {
	if len(s.stripes) == 1 {
		st := s.stripes[0]
		st.mu.Lock()
		defer st.mu.Unlock()
		return st.ns.RootDigest(), st.ns.Len()
	}
	groups := make([][]namespace.Child, 0, len(s.stripes))
	count := 0
	for _, st := range s.stripes {
		st.mu.Lock()
		kids, _ := st.ns.Children("")
		count += st.ns.Len()
		st.mu.Unlock()
		if len(kids) > 0 {
			groups = append(groups, kids)
		}
	}
	return namespace.CombineRoot(namespace.HashSHA256, namespace.CombineChildren(groups...)), count
}

// Snapshot returns a copy of the live {key, value} table.
func (s *Sender) Snapshot() map[string][]byte {
	out := make(map[string][]byte)
	now := nowSeconds()
	for _, st := range s.stripes {
		st.mu.Lock()
		for _, r := range st.pub.LiveRecords(now) {
			out[string(r.Key)] = append([]byte(nil), r.Value...)
		}
		st.mu.Unlock()
	}
	return out
}

// send encodes and transmits one message, charging no bucket (control
// path). Caller must NOT hold s.mu... it takes it for seq/stat fields.
func (s *Sender) send(msg protocol.Message) {
	bp := pktPool.Get().(*[]byte)
	s.mu.Lock()
	s.seq++
	hdr := protocol.Header{Session: s.cfg.Session, Sender: s.cfg.SenderID, Seq: s.seq, Scope: s.scope}
	*bp = protocol.AppendEncode((*bp)[:0], hdr, msg)
	s.stats.BytesSent += len(*bp)
	s.m.txBits.Add(uint64(8 * len(*bp)))
	s.mu.Unlock()
	_, _ = s.cfg.Conn.WriteTo(*bp, s.cfg.Dest)
	pktPool.Put(bp)
}

// sendLoop is the announcement scheduler: it picks hot/cold records
// under the token bucket, coalesces them into MTU-sized datagrams,
// hands up to BatchDatagrams of them to the socket at once (one
// sendmmsg on Linux), and interleaves periodic summaries.
func (s *Sender) sendLoop() {
	defer s.wg.Done()
	nextSummary := time.Now().Add(s.cfg.SummaryInterval)
	nb := s.cfg.BatchDatagrams
	txStore := make([][]byte, nb) // persistent per-slot buffers
	txBufs := make([][]byte, 0, nb)
	for {
		select {
		case <-s.done:
			return
		default:
		}
		s.mu.Lock()
		goodbye := s.goodbyePending
		s.goodbyePending = false
		s.mu.Unlock()
		if goodbye {
			s.send(&protocol.Goodbye{})
		}
		if time.Now().After(nextSummary) {
			s.sendSummary()
			nextSummary = time.Now().Add(s.cfg.SummaryInterval)
			continue
		}
		s.sweep(nowSeconds())
		txBufs = txBufs[:0]
		bits := 0.0
		for i := 0; i < nb; i++ {
			buf, ok := s.nextDatagram()
			if !ok {
				break
			}
			// nextDatagram reuses its buffer; park a copy in this
			// slot's persistent storage so the batch can accumulate.
			txStore[i] = append(txStore[i][:0], buf...)
			txBufs = append(txBufs, txStore[i])
			bits += float64(8 * len(buf))
		}
		if len(txBufs) == 0 {
			// Idle: heartbeat keeps the sequence space alive so
			// receivers can estimate loss, then nap briefly.
			s.idleWait(&nextSummary)
			continue
		}
		if !s.throttle(bits) {
			return // closed while waiting
		}
		_, _ = s.bconn.WriteBatch(s.cfg.Dest, txBufs)
	}
}

// sleep waits for d (or until Close) reusing one timer across calls
// instead of allocating a time.After per wait. Only sendLoop may call
// it. It returns false if the sender closed while waiting.
func (s *Sender) sleep(d time.Duration) bool {
	if s.waitTimer == nil {
		s.waitTimer = time.NewTimer(d)
	} else {
		s.waitTimer.Reset(d)
	}
	select {
	case <-s.done:
		if !s.waitTimer.Stop() {
			<-s.waitTimer.C
		}
		return false
	case <-s.waitTimer.C:
		return true
	}
}

// idleWait sleeps briefly when there is nothing to announce.
func (s *Sender) idleWait(nextSummary *time.Time) {
	d := 20 * time.Millisecond
	if until := time.Until(*nextSummary); until < d {
		d = until
		if d < 0 {
			d = 0
		}
	}
	s.sleep(d)
}

// throttle blocks until the token bucket admits a send of the given
// size; it returns false if the sender closed while waiting.
func (s *Sender) throttle(bits float64) bool {
	for {
		s.mu.Lock()
		now := nowSeconds()
		okNow := s.bucket.Allow(now, bits)
		var wait float64
		if !okNow {
			wait = s.bucket.TimeUntil(now, bits)
		}
		s.mu.Unlock()
		if okNow {
			return true
		}
		if !s.sleep(time.Duration(wait * float64(time.Second))) {
			return false
		}
	}
}

// nextDatagram builds the next announcement datagram, coalescing up
// to CoalesceRecords record frames within the MTU budget. One record
// still travels as a plain Data datagram (byte-identical to the
// pre-coalescing wire format); two or more become a DataBatch whose
// records decode in pick order, so the delivery sequence matches
// one-record datagrams exactly. The returned buffer is owned by the
// sender and valid until the next call; steady state allocates
// nothing — frames, pending carry-over, and the wire buffer are all
// reused.
func (s *Sender) nextDatagram() ([]byte, bool) {
	budget := coalesceMTU - protocol.HeaderLen - 2
	s.mu.Lock()
	defer s.mu.Unlock()
	s.frameBuf = s.frameBuf[:0]
	count := 0
	if len(s.pending) > 0 {
		// A frame that overflowed the previous datagram goes first.
		if s.pendingBig {
			// Too large for any MTU budget: send whole in its own
			// datagram (IP fragments it, as before coalescing).
			buf := s.emitLocked(s.pending, 1)
			s.pending = s.pending[:0]
			s.pendingBig = false
			return buf, true
		}
		s.frameBuf = append(s.frameBuf, s.pending...)
		s.pending = s.pending[:0]
		count = 1
	}
	for count < s.cfg.CoalesceRecords {
		mark := len(s.frameBuf)
		var ok bool
		s.frameBuf, ok = s.pickFrame(s.frameBuf)
		if !ok {
			break
		}
		if count > 0 && len(s.frameBuf) > budget {
			// Doesn't fit: carry the frame into the next datagram.
			s.pending = append(s.pending[:0], s.frameBuf[mark:]...)
			s.pendingBig = len(s.frameBuf)-mark > budget
			s.frameBuf = s.frameBuf[:mark]
			break
		}
		count++
		if len(s.frameBuf) >= budget {
			break
		}
	}
	if count == 0 {
		return nil, false
	}
	return s.emitLocked(s.frameBuf, count), true
}

// emitLocked seals count record frames into a datagram: plain Data
// for one record, DataBatch for several. Caller holds s.mu.
func (s *Sender) emitLocked(frames []byte, count int) []byte {
	s.seq++
	hdr := protocol.Header{Session: s.cfg.Session, Sender: s.cfg.SenderID, Seq: s.seq, Scope: s.scope}
	if count == 1 {
		s.encBuf = protocol.AppendDataDatagram(s.encBuf[:0], hdr, frames[2:])
	} else {
		s.encBuf = protocol.AppendBatchDatagram(s.encBuf[:0], hdr, count, frames)
	}
	s.stats.DatagramsSent++
	s.stats.BytesSent += len(s.encBuf)
	s.m.txBits.Add(uint64(8 * len(s.encBuf)))
	s.m.live.Set(float64(s.liveN.Load()))
	return s.encBuf
}

// pickFrame pops the next record per the hot/cold schedule and
// appends its batch frame (2-byte length prefix + Data body) to dst.
// Caller holds s.mu; the record value is copied out under its stripe
// lock, never pinned.
func (s *Sender) pickFrame(dst []byte) ([]byte, bool) {
	for {
		leaf, ok := s.share.Pick(s.readyFn)
		if !ok {
			return dst, false
		}
		owner := s.leafOwner[leaf]
		q := &s.classes[owner[0]].queues[owner[1]]
		e := q.head
		q.remove(e)
		e.queue = -1
		if owner[1] == sqHot {
			s.m.annHot.Inc()
		} else {
			s.m.annCold.Inc()
		}
		mark := len(dst)
		if e.tombstone > 0 {
			e.tombstone--
			s.dataMsg = protocol.Data{Key: e.key, Deleted: true}
			dst = protocol.AppendBatchRecord(dst, &s.dataMsg)
			if e.tombstone > 0 {
				s.moveTo(e, sqCold)
			} else {
				s.removeEntry(e)
			}
		} else {
			st := s.stripeFor(e.key)
			st.mu.Lock()
			rec := st.pub.Get(table.Key(e.key))
			if rec == nil || !rec.Live(nowSeconds()) {
				st.mu.Unlock()
				s.removeEntry(e)
				continue // dead entry; keep picking
			}
			s.dataMsg = protocol.Data{
				Key:    e.key,
				Ver:    rec.Version,
				TTLms:  uint32(s.cfg.TTL.Milliseconds()),
				BornMs: uint64(rec.Born * 1000),
				Value:  rec.Value,
			}
			dst = protocol.AppendBatchRecord(dst, &s.dataMsg)
			st.mu.Unlock()
			s.dataMsg.Value = nil // do not pin the record's value buffer
			if !s.cfg.NoRetransmit {
				s.moveTo(e, sqCold)
			}
			s.stats.DataSent++
			if s.stats.SentByClass == nil {
				s.stats.SentByClass = make(map[string]int)
			}
			s.stats.SentByClass[s.classes[e.class].name]++
			if e.class < len(s.m.byClassSent) {
				s.m.byClassSent[e.class].Inc()
			}
		}
		frameLen := len(dst) - mark
		if s.stats.BytesByClass == nil {
			s.stats.BytesByClass = make(map[string]int)
		}
		s.stats.BytesByClass[s.classes[e.class].name] += frameLen
		if e.class < len(s.m.byClassBits) {
			s.m.byClassBits[e.class].Add(uint64(8 * frameLen))
		}
		traceRecord(s.cfg.Trace, s.cfg.TraceNode, trace.Transmit, e.key)
		s.share.Charge(leaf, float64(8*frameLen))
		return dst, true
	}
}

func (s *Sender) sendSummary() {
	digest, count := s.rootSummary()
	var msg protocol.Message
	if count == 0 {
		msg = &protocol.Heartbeat{}
		s.mu.Lock()
		s.stats.HeartbeatsSent++
		s.mu.Unlock()
		s.m.heartbeats.Inc()
	} else {
		sum := &protocol.Summary{Count: uint32(count)}
		copy(sum.Digest[:], digest[:])
		msg = sum
		s.mu.Lock()
		s.stats.SummariesSent++
		s.mu.Unlock()
		s.m.summaries.Inc()
	}
	if !s.throttle(800) {
		return
	}
	s.send(msg)
}

// recvLoop handles feedback: NACKs, namespace queries, and receiver
// reports.
func (s *Sender) recvLoop() {
	defer s.wg.Done()
	bp := readBufPool.Get().(*[]byte)
	defer readBufPool.Put(bp)
	buf := *bp
	dec := protocol.NewDecoder()
	for {
		select {
		case <-s.done:
			return
		default:
		}
		_ = s.cfg.Conn.SetReadDeadline(time.Now().Add(200 * time.Millisecond))
		n, _, err := s.cfg.Conn.ReadFrom(buf)
		if err != nil {
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				continue
			}
			return
		}
		hdr, msg, err := dec.Decode(buf[:n])
		if err != nil || hdr.Session != s.cfg.Session {
			continue
		}
		if hdr.Sender == s.cfg.SenderID {
			continue // our own multicast loopback
		}
		switch m := msg.(type) {
		case *protocol.NACK:
			s.onNACK(m)
		case *protocol.Query:
			s.onQuery(m)
		case *protocol.Report:
			s.onReport(m)
		}
	}
}

func (s *Sender) onNACK(m *protocol.NACK) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stats.NACKsReceived++
	s.m.nacksRecv.Inc()
	for _, key := range m.Keys {
		e, ok := s.entries[key]
		if !ok {
			continue // dead or unknown key; the next summary resolves it
		}
		if e.queue == sqCold {
			s.moveTo(e, sqHot)
			s.stats.KeysPromoted++
			s.m.promotions.Inc()
			traceRecord(s.cfg.Trace, s.cfg.TraceNode, trace.Promote, key)
		}
	}
}

func (s *Sender) onQuery(m *protocol.Query) {
	kids, ok := s.childrenAt(m.Path)
	if !ok {
		return
	}
	s.mu.Lock()
	s.stats.QueriesServed++
	s.m.queries.Inc()
	s.mu.Unlock()
	resp := &s.qResp
	resp.Path = m.Path
	resp.Children = resp.Children[:0]
	for _, k := range kids {
		if len(resp.Children) == protocol.MaxBatch {
			break
		}
		cd := protocol.ChildDigest{Name: k.Name, Leaf: k.Leaf}
		copy(cd.Digest[:], k.Digest[:])
		resp.Children = append(resp.Children, cd)
	}
	s.mu.Lock()
	s.stats.DigestsSent++
	s.m.digests.Inc()
	s.mu.Unlock()
	s.send(resp)
}

// childrenAt lists the namespace children under path, merging the
// per-stripe trees' top-level children when the root is asked for.
// Deeper paths live wholly inside the stripe their first component
// hashes to.
func (s *Sender) childrenAt(path string) ([]namespace.Child, bool) {
	if path == "" && len(s.stripes) > 1 {
		groups := make([][]namespace.Child, 0, len(s.stripes))
		for _, st := range s.stripes {
			st.mu.Lock()
			kids, err := st.ns.Children("")
			st.mu.Unlock()
			if err == nil && len(kids) > 0 {
				groups = append(groups, kids)
			}
		}
		return namespace.CombineChildren(groups...), true
	}
	st := s.stripeFor(path)
	st.mu.Lock()
	kids, err := st.ns.AppendChildren(s.qKids[:0], path)
	st.mu.Unlock()
	s.qKids = kids[:0]
	if err != nil {
		return nil, false
	}
	return kids, true
}

func (s *Sender) onReport(m *protocol.Report) {
	s.mu.Lock()
	s.stats.ReportsHeard++
	s.stats.LossEstimate = m.Loss()
	s.m.reports.Inc()
	s.m.loss.Set(m.Loss())
	var newRate float64
	if s.aimd != nil {
		newRate = s.aimd.OnReport(m.Loss())
		s.bucket.SetRate(newRate)
		s.stats.Rate = newRate
	} else {
		newRate = s.cfg.TotalRate
	}
	// Profile-driven reallocation (§6.1).
	var alloc profile.Allocation
	var allocErr error
	if s.cfg.Allocator != nil {
		elapsed := nowSeconds() - s.started
		appRate := 0.0
		if elapsed > 0 {
			appRate = s.pubBits / elapsed
		}
		alloc, allocErr = s.cfg.Allocator.Allocate(newRate, m.Loss(), appRate)
		switch {
		case allocErr != nil:
			s.m.allocErr.Inc()
		case alloc.RateLimited:
			s.m.allocLim.Inc()
		default:
			s.m.allocOK.Inc()
		}
		if allocErr == nil {
			total := alloc.MuHot + alloc.MuCold
			if total > 0 {
				// Re-split every class's hot/cold share per the
				// profile-driven allocation.
				for _, cl := range s.classes {
					s.share.SetWeight(cl.leaf[sqHot], alloc.MuHot/total)
					s.share.SetWeight(cl.leaf[sqCold], alloc.MuCold/total)
				}
			}
			if alloc.MuData > 0 {
				s.bucket.SetRate(alloc.MuData)
				s.stats.Rate = alloc.MuData
			}
		}
	}
	limited := allocErr == nil && alloc.RateLimited
	cb := s.cfg.OnRateLimit
	maxRate := alloc.MaxAppRate
	s.mu.Unlock()
	if limited && cb != nil {
		cb(maxRate)
	}
}
