package sstp

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"softstate/internal/feedback"
	"softstate/internal/namespace"
	"softstate/internal/netio"
	"softstate/internal/obs"
	"softstate/internal/protocol"
	"softstate/internal/staleness"
	"softstate/internal/table"
	"softstate/internal/trace"
	"softstate/internal/transport"
	"softstate/internal/xrand"
)

// ReceiverConfig parameterizes an SSTP subscriber.
type ReceiverConfig struct {
	Session    uint64
	ReceiverID uint64

	// Conn is the session's wire — any transport.Conn. FeedbackDest
	// is where NACKs, queries, and reports are sent — the sender's
	// address, or the multicast group so that other receivers overhear
	// NACKs and damp their own (slotting and damping).
	Conn         transport.Conn
	FeedbackDest net.Addr

	// DisableFeedback turns the receiver into a pure announce/listen
	// listener (the open-loop end of SSTP's reliability spectrum).
	DisableFeedback bool

	// ReportInterval is the receiver-report period (default 2 s;
	// negative disables reports).
	ReportInterval time.Duration

	// NACKWindow is the slotting window for NACK suppression (default
	// 100 ms; grows by backoff up to 16× on repeated losses).
	NACKWindow time.Duration

	// Interest, if non-nil, prunes namespace repair: branches for
	// which Interest(path) is false are never queried or NACKed (the
	// paper's receiver-interest filtering, e.g. a PDA skipping
	// high-resolution images).
	Interest func(path string) bool

	// PeerRepair lets this receiver answer other members' queries and
	// NACKs from its own replica — the paper's "the sender (or any
	// participant in a multicast session) responds", in the style of
	// SRM local recovery. Responses are slotted and damped like NACKs
	// so that one member answers, not all. Only meaningful when
	// FeedbackDest is a multicast group.
	PeerRepair bool

	// PeerSummaryInterval, with PeerRepair, makes this receiver
	// announce its own root digest periodically (SRM-style session
	// messages), so members can detect divergence — and catch up from
	// each other — even after the publisher dies. 0 disables.
	PeerSummaryInterval time.Duration

	// OnUpdate fires when a record's value changes; born is the origin
	// publish time of the delivered version (Unix seconds, 0 when the
	// announcement did not carry one). OnExpire fires when a record
	// times out or is deleted. Both run on a single dispatcher
	// goroutine in the order the events occurred, and never after
	// Close returns. Handlers may call Get/Snapshot/Stats but must not
	// call Close (Close waits for the dispatcher to drain). The value
	// slice is pooled and reused after the handler returns — a handler
	// that retains it past the call must copy it first.
	OnUpdate func(key string, value []byte, version uint64, born float64)
	OnExpire func(key string)

	// FlushOnGoodbye makes a publisher Goodbye drop the whole replica
	// immediately (firing OnExpire per key) instead of letting records
	// age out by TTL. Relays enable it on their upstream link so a root
	// Goodbye tears the tree down hop by hop; plain receivers keep the
	// paper's soft-state default — state persists and expires on its
	// own, which also lets peers catch up from each other after the
	// publisher dies.
	FlushOnGoodbye bool

	// OnGoodbye fires on the dispatcher goroutine (after the flush
	// expirations when FlushOnGoodbye is set) when the learned
	// publisher announces departure.
	OnGoodbye func()

	// Obs, if non-nil, publishes receiver metrics (deliveries, losses,
	// NACKs, repairs, the T_rec repair-latency histogram, ...) to the
	// registry. Trace, if non-nil, records per-record lifecycle events;
	// use trace.NewSafe for a ring shared with other goroutines.
	Obs   *obs.Registry
	Trace *trace.Ring

	// TraceNode names this receiver in trace events (default
	// "r<ReceiverID>"); relay trees set distinctive names per hop.
	TraceNode string

	// Consistency, if non-nil, receives this receiver's online
	// consistency samples (visibility lag, per-key confirmation age,
	// digest agreement). Like Obs it may be shared across receivers —
	// a load-test tree pools all leaves of a level into one estimator.
	// When nil, the receiver creates a private estimator; read it via
	// Consistency().
	Consistency *staleness.Estimator

	// DisableConsistency skips online consistency estimation entirely
	// (no per-key confirmation tracking). Million-record load tests
	// enable it: tracking a confirmation clock per replica key costs
	// more than the replica itself.
	DisableConsistency bool

	// Stripes shards the replica table and the namespace digest tree
	// by key hash (first '/'-path component), mirroring the sender's
	// sharding. Rounded up to a power of two; default 1. The combined
	// root digest is byte-identical to an unsharded tree's, so a
	// striped receiver converges against any sender and vice versa.
	Stripes int

	Seed int64
}

func (c ReceiverConfig) withDefaults() (ReceiverConfig, error) {
	if c.Conn == nil {
		return c, fmt.Errorf("sstp: receiver needs Conn")
	}
	if !c.DisableFeedback && c.FeedbackDest == nil {
		return c, fmt.Errorf("sstp: receiver needs FeedbackDest (or DisableFeedback)")
	}
	if c.ReportInterval == 0 {
		c.ReportInterval = 2 * time.Second
	}
	if c.NACKWindow <= 0 {
		c.NACKWindow = 100 * time.Millisecond
	}
	if c.TraceNode == "" {
		c.TraceNode = fmt.Sprintf("r%d", c.ReceiverID)
	}
	if c.Consistency == nil && !c.DisableConsistency {
		c.Consistency = staleness.NewEstimator(0)
	}
	c.Stripes = table.NormalizeStripes(c.Stripes)
	return c, nil
}

// ReceiverStats are cumulative counters.
type ReceiverStats struct {
	DataReceived    int
	Duplicates      int
	SummariesHeard  int
	MismatchedRoots int
	QueriesSent     int
	NACKsSent       int
	NACKsSuppressed int
	ReportsSent     int
	Expired         int
	PeerDataSent    int // repairs answered from this replica
	PeerDigestsSent int // digest responses answered from this replica
	GoodbyesHeard   int // publisher departures observed
	LossEstimate    float64
}

// recvStripe is one shard of the replica table plus its slice of the
// namespace digest tree, striped by the key's first path component
// exactly like the sender side.
//
// Lock order: a stripe lock may be held while taking r.mu (handlers
// enqueue callbacks under both, preserving per-key causal order), but
// r.mu must never be held while taking a stripe lock.
type recvStripe struct {
	mu  sync.Mutex
	sub *table.Subscriber
	ns  *namespace.Tree
}

// Receiver is an SSTP subscriber.
type Receiver struct {
	cfg ReceiverConfig

	stripes []*recvStripe

	// replicaN counts live replica entries across stripes; atomic so
	// stripe-locked paths can maintain it without touching r.mu.
	replicaN atomic.Int64

	// fbDest is where repair/report traffic goes. It starts as
	// cfg.FeedbackDest and can be swapped at runtime by
	// SetFeedbackDest (relay re-parenting); atomic because sendControl
	// runs on several goroutines with varying lock state.
	fbDest atomic.Pointer[net.Addr]

	mu        sync.Mutex
	est       *feedback.LossEstimator
	sup       *feedback.Suppressor
	pubID     uint64 // learned publisher sender-id
	pubSeen   bool
	pubScope  uint8 // hop budget on the latest publisher datagram
	lastSeq   uint32
	lastHeard float64 // wall time of the last publisher datagram
	stats     ReceiverStats
	m         receiverMetrics
	repairT   map[string]float64 // key -> when its first NACK was scheduled

	// Pending repair timers: one heap + one goroutine (timerLoop)
	// instead of a runtime timer per slot. timerKick wakes the loop
	// when an earlier deadline is armed.
	timerByKey map[string]*timerEntry
	theap      timerHeap
	timerKick  chan struct{}

	// Application callbacks are queued here (under mu) and drained in
	// order by a single dispatcher goroutine (callbackLoop), so
	// OnUpdate/OnExpire see events in causal order and the receiver
	// never spawns an unbounded goroutine per event. cbFree is the
	// previously-drained queue, recycled so steady state reuses both
	// the slice and each slot's value buffer.
	cbs    []appCallback
	cbFree []appCallback
	cbKick chan struct{}

	// Digest-diff reuse, owned by recvLoop (onDigests runs there and
	// nowhere else): the remote child listing, the name→leaf index,
	// and the NACK key accumulator are recycled across datagrams.
	dRemote []namespace.Child
	dLeaf   map[string]bool
	dNacks  []string

	done chan struct{}
	wg   sync.WaitGroup
	once sync.Once
}

// appCallback is one queued OnUpdate/OnExpire/OnGoodbye delivery.
type appCallback struct {
	expire  bool
	goodbye bool
	key     string
	value   []byte
	version uint64
	born    float64 // origin publish time for OnUpdate (0 = unknown)
}

// NewReceiver constructs a subscriber; call Start to begin listening.
func NewReceiver(cfg ReceiverConfig) (*Receiver, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	r := &Receiver{
		cfg:        cfg,
		est:        feedback.NewLossEstimator(0.25),
		sup:        feedback.NewSuppressor(cfg.NACKWindow.Seconds(), 16*cfg.NACKWindow.Seconds(), xrand.New(cfg.Seed)),
		m:          newReceiverMetrics(cfg.Obs),
		repairT:    make(map[string]float64),
		timerByKey: make(map[string]*timerEntry),
		timerKick:  make(chan struct{}, 1),
		cbKick:     make(chan struct{}, 1),
		done:       make(chan struct{}),
	}
	r.fbDest.Store(&cfg.FeedbackDest)
	r.stripes = make([]*recvStripe, cfg.Stripes)
	for i := range r.stripes {
		st := &recvStripe{sub: table.NewSubscriber(), ns: namespace.New(namespace.HashSHA256)}
		st.sub.OnExpire = func(e *table.Entry) {
			// Called with the stripe lock held (Sweep or flush); r.mu is
			// taken nested for the global bookkeeping — the allowed order.
			key := string(e.Key)
			st.ns.Delete(key)
			r.replicaN.Add(-1)
			r.cfg.Consistency.Forget(r.cfg.ReceiverID, key)
			traceRecord(cfg.Trace, cfg.TraceNode, trace.Expire, key)
			r.mu.Lock()
			r.stats.Expired++
			r.m.expired.Inc()
			if cfg.OnExpire != nil {
				r.enqueueExpire(key)
			}
			r.mu.Unlock()
		}
		r.stripes[i] = st
	}
	return r, nil
}

// stripeFor returns the stripe owning key (or any namespace path).
func (r *Receiver) stripeFor(key string) *recvStripe {
	return r.stripes[table.StripeIndex(table.Key(key), len(r.stripes))]
}

// Consistency returns the receiver's online consistency estimator;
// its Snapshot is the `consistency` section served by the admin
// endpoint. Nil when DisableConsistency was set (every Estimator
// method is nil-safe, so callers may still chain through it).
func (r *Receiver) Consistency() *staleness.Estimator { return r.cfg.Consistency }

// Start launches the listen, sweep, timer, dispatch, and report loops.
func (r *Receiver) Start() {
	r.wg.Add(4)
	go r.recvLoop()
	go r.sweepLoop()
	go r.timerLoop()
	go r.callbackLoop()
	if !r.cfg.DisableFeedback && r.cfg.ReportInterval > 0 {
		r.wg.Add(1)
		go r.reportLoop()
	}
	if r.cfg.PeerRepair && r.cfg.PeerSummaryInterval > 0 {
		r.wg.Add(1)
		go r.peerSummaryLoop()
	}
}

// peerSummaryLoop announces this replica's root digest as a session
// message so that divergence is detectable peer-to-peer.
func (r *Receiver) peerSummaryLoop() {
	defer r.wg.Done()
	tick := time.NewTicker(r.cfg.PeerSummaryInterval)
	defer tick.Stop()
	for {
		select {
		case <-r.done:
			return
		case <-tick.C:
			digest, count := r.rootSummary()
			if count == 0 {
				continue // nothing to advertise yet
			}
			sum := &protocol.Summary{Count: uint32(count)}
			copy(sum.Digest[:], digest[:])
			r.sendControl(sum)
		}
	}
}

// Close stops the receiver.
func (r *Receiver) Close() error {
	r.once.Do(func() {
		close(r.done)
		_ = r.cfg.Conn.SetReadDeadline(time.Now())
	})
	r.wg.Wait()
	return nil
}

// Stats returns a copy of the counters.
func (r *Receiver) Stats() ReceiverStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	st := r.stats
	st.LossEstimate = r.est.Smoothed()
	return st
}

// Get returns the current value for key, if present and unexpired.
func (r *Receiver) Get(key string) ([]byte, bool) {
	st := r.stripeFor(key)
	st.mu.Lock()
	defer st.mu.Unlock()
	e, ok := st.sub.Get(table.Key(key), nowSeconds())
	if !ok {
		return nil, false
	}
	return append([]byte(nil), e.Value...), true
}

// Snapshot returns a copy of the unexpired {key, value} replica.
func (r *Receiver) Snapshot() map[string][]byte {
	now := nowSeconds()
	out := make(map[string][]byte)
	for _, st := range r.stripes {
		st.mu.Lock()
		for _, k := range st.sub.Keys(now) {
			if e, ok := st.sub.Get(k, now); ok {
				out[string(k)] = append([]byte(nil), e.Value...)
			}
		}
		st.mu.Unlock()
	}
	return out
}

// RootDigest returns the replica's namespace digest; equality with the
// sender's digest proves convergence. With multiple stripes it is the
// combined root, byte-identical to an unsharded tree's.
func (r *Receiver) RootDigest() namespace.Digest {
	d, _ := r.rootSummary()
	return d
}

// rootSummary combines the per-stripe namespace slices into the root
// digest plus the total leaf count (see Sender.rootSummary).
func (r *Receiver) rootSummary() (namespace.Digest, int) {
	if len(r.stripes) == 1 {
		st := r.stripes[0]
		st.mu.Lock()
		defer st.mu.Unlock()
		return st.ns.RootDigest(), st.ns.Len()
	}
	groups := make([][]namespace.Child, 0, len(r.stripes))
	count := 0
	for _, st := range r.stripes {
		st.mu.Lock()
		kids, _ := st.ns.Children("")
		count += st.ns.Len()
		st.mu.Unlock()
		if len(kids) > 0 {
			groups = append(groups, kids)
		}
	}
	return namespace.CombineRoot(namespace.HashSHA256, namespace.CombineChildren(groups...)), count
}

// Len returns the number of replica entries.
func (r *Receiver) Len() int {
	n := 0
	for _, st := range r.stripes {
		st.mu.Lock()
		n += st.sub.Len()
		st.mu.Unlock()
	}
	return n
}

// PublisherScope returns the hop budget stamped on the most recent
// datagram heard from the learned publisher; ok is false until a
// publisher has been learned. Relays use it to derive the scope of
// their downstream links.
func (r *Receiver) PublisherScope() (scope uint8, ok bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.pubScope, r.pubSeen
}

func (r *Receiver) interested(path string) bool {
	return r.cfg.Interest == nil || r.cfg.Interest(path)
}

// recvBatch is how many datagrams one ReadBatch call can surface
// (one recvmmsg on Linux; the fallback reads one at a time).
const recvBatch = 8

func (r *Receiver) recvLoop() {
	defer r.wg.Done()
	bc := netio.Wrap(r.cfg.Conn)
	var bps [recvBatch]*[]byte
	bufs := make([][]byte, recvBatch)
	for i := range bufs {
		bps[i] = readBufPool.Get().(*[]byte)
		bufs[i] = *bps[i]
	}
	defer func() {
		for _, bp := range bps {
			readBufPool.Put(bp)
		}
	}()
	sizes := make([]int, recvBatch)
	addrs := make([]net.Addr, recvBatch)
	dec := protocol.NewDecoder()
	for {
		select {
		case <-r.done:
			return
		default:
		}
		_ = r.cfg.Conn.SetReadDeadline(time.Now().Add(200 * time.Millisecond))
		n, err := bc.ReadBatch(bufs, sizes, addrs)
		if err != nil {
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				continue
			}
			return
		}
		for i := 0; i < n; i++ {
			hdr, msg, err := dec.Decode(bufs[i][:sizes[i]])
			if err != nil || hdr.Session != r.cfg.Session || hdr.Sender == r.cfg.ReceiverID {
				continue
			}
			r.dispatch(hdr, msg)
		}
	}
}

func (r *Receiver) dispatch(hdr protocol.Header, msg protocol.Message) {
	r.mu.Lock()
	// Learn the publisher: the first Data/Summary/Heartbeat sender
	// with a live sequence number (receivers' peer-repair messages
	// carry Seq 0, so they are never mistaken for the publisher).
	switch msg.(type) {
	case *protocol.Data, *protocol.DataBatch, *protocol.Summary, *protocol.Digests, *protocol.Heartbeat, *protocol.Goodbye:
		if !r.pubSeen && hdr.Seq > 0 {
			r.pubSeen = true
			r.pubID = hdr.Sender
			r.lastSeq = hdr.Seq
		}
		if hdr.Sender == r.pubID {
			r.pubScope = hdr.Scope
			r.lastHeard = nowSeconds()
			r.est.Observe(hdr.Seq)
			// Gap-triggered repair: a hole in the sequence space means
			// something was just lost; start the namespace descent now
			// instead of waiting for the next summary.
			if gap := int32(hdr.Seq - r.lastSeq); gap > 1 {
				r.m.losses.Add(uint64(gap - 1))
				if !r.cfg.DisableFeedback {
					r.scheduleQuery("")
				}
			}
			if int32(hdr.Seq-r.lastSeq) > 0 {
				r.lastSeq = hdr.Seq
			}
		}
	}
	fromPub := r.pubSeen && hdr.Sender == r.pubID
	r.mu.Unlock()
	switch m := msg.(type) {
	case *protocol.Data:
		r.onData(m)
	case *protocol.DataBatch:
		// Records unpack in encode order, so the delivery sequence is
		// identical to the same records in single-record datagrams
		// (pinned by test).
		for i := range m.Records {
			r.onData(&m.Records[i])
		}
	case *protocol.Summary:
		r.onSummary(hdr, m)
	case *protocol.Digests:
		r.onDigests(m)
	case *protocol.Goodbye:
		if fromPub {
			r.onGoodbye()
		}
	case *protocol.Heartbeat:
		// A heartbeat means the publisher's table is empty. A tracking
		// receiver holding state is therefore stale and flushes it —
		// this also covers a lost Goodbye datagram, and an announcement
		// that raced past one in flight.
		if r.cfg.FlushOnGoodbye && fromPub && r.Len() > 0 {
			r.flushReplica()
		}
	case *protocol.NACK:
		// Another receiver's NACK: damp ours, and — with peer repair
		// on — offer to answer it from our replica.
		r.mu.Lock()
		for _, k := range m.Keys {
			if r.sup.Heard(k) {
				r.stats.NACKsSuppressed++
				r.m.suppressed.Inc()
			}
		}
		r.mu.Unlock()
		if r.cfg.PeerRepair {
			for _, k := range m.Keys {
				r.schedulePeerData(k)
			}
		}
	case *protocol.Query:
		// Another receiver queried the same path: damp ours, and
		// offer a digest response from our replica.
		r.mu.Lock()
		if r.sup.Heard("?" + m.Path) {
			r.stats.NACKsSuppressed++
			r.m.suppressed.Inc()
		}
		r.mu.Unlock()
		if r.cfg.PeerRepair {
			r.schedulePeerDigests(m.Path)
		}
	}
}

// schedulePeerData slots a repair response for key from this replica.
// Caller must hold no locks.
func (r *Receiver) schedulePeerData(key string) {
	st := r.stripeFor(key)
	st.mu.Lock()
	e, ok := st.sub.Get(table.Key(key), nowSeconds())
	var ver uint64
	if ok {
		ver = e.Version
	}
	st.mu.Unlock()
	if !ok {
		return // we do not hold it either
	}
	skey := "!d:" + key
	r.mu.Lock()
	defer r.mu.Unlock()
	fireAt, fresh := r.sup.Schedule(skey, nowSeconds())
	if !fresh {
		return
	}
	r.armTimerLocked(skey, fireAt, func() {
		r.mu.Lock()
		if !r.sup.Fire(skey, nowSeconds()) {
			r.mu.Unlock()
			return // someone else (sender or peer) repaired it first
		}
		r.sup.Repaired(skey)
		r.mu.Unlock()
		st.mu.Lock()
		cur, ok := st.sub.Get(table.Key(key), nowSeconds())
		if !ok || cur.Version != ver {
			st.mu.Unlock()
			return // expired or changed since the NACK
		}
		msg := &protocol.Data{
			Key: key, Ver: cur.Version,
			TTLms: uint32((cur.Deadline - nowSeconds()) * 1000),
			Value: append([]byte(nil), cur.Value...),
		}
		st.mu.Unlock()
		if msg.TTLms == 0 {
			msg.TTLms = 1000
		}
		r.mu.Lock()
		r.stats.PeerDataSent++
		r.m.peerData.Inc()
		r.mu.Unlock()
		traceRecord(r.cfg.Trace, r.cfg.TraceNode, trace.Repair, key)
		r.sendControl(msg)
	})
}

// childrenAt lists the replica's namespace children under path,
// merging the per-stripe trees' top-level children at the root.
func (r *Receiver) childrenAt(path string) ([]namespace.Child, bool) {
	if path == "" && len(r.stripes) > 1 {
		groups := make([][]namespace.Child, 0, len(r.stripes))
		for _, st := range r.stripes {
			st.mu.Lock()
			kids, err := st.ns.Children("")
			st.mu.Unlock()
			if err == nil && len(kids) > 0 {
				groups = append(groups, kids)
			}
		}
		return namespace.CombineChildren(groups...), true
	}
	st := r.stripeFor(path)
	st.mu.Lock()
	kids, err := st.ns.Children(path)
	st.mu.Unlock()
	if err != nil {
		return nil, false
	}
	return kids, true
}

// schedulePeerDigests slots a digest response for path from this
// replica. Caller must hold no locks.
func (r *Receiver) schedulePeerDigests(path string) {
	if kids, ok := r.childrenAt(path); !ok || len(kids) == 0 {
		return
	}
	skey := "!q:" + path
	r.mu.Lock()
	defer r.mu.Unlock()
	fireAt, fresh := r.sup.Schedule(skey, nowSeconds())
	if !fresh {
		return
	}
	r.armTimerLocked(skey, fireAt, func() {
		r.mu.Lock()
		if !r.sup.Fire(skey, nowSeconds()) {
			r.mu.Unlock()
			return
		}
		r.sup.Repaired(skey)
		r.mu.Unlock()
		kids, ok := r.childrenAt(path)
		if !ok {
			return
		}
		resp := &protocol.Digests{Path: path}
		for _, k := range kids {
			if len(resp.Children) == protocol.MaxBatch {
				break
			}
			cd := protocol.ChildDigest{Name: k.Name, Leaf: k.Leaf}
			copy(cd.Digest[:], k.Digest[:])
			resp.Children = append(resp.Children, cd)
		}
		r.mu.Lock()
		r.stats.PeerDigestsSent++
		r.m.peerDigests.Inc()
		r.mu.Unlock()
		r.sendControl(resp)
	})
}

func (r *Receiver) onData(m *protocol.Data) {
	now := nowSeconds()
	st := r.stripeFor(m.Key)
	if m.Deleted {
		st.mu.Lock()
		dropped := st.sub.Drop(table.Key(m.Key))
		if dropped {
			st.ns.Delete(m.Key)
			r.replicaN.Add(-1)
			traceRecord(r.cfg.Trace, r.cfg.TraceNode, trace.Tombstone, m.Key)
		}
		r.cfg.Consistency.Forget(r.cfg.ReceiverID, m.Key)
		r.mu.Lock()
		if dropped && r.cfg.OnExpire != nil {
			r.enqueueExpire(m.Key)
		}
		r.sup.Repaired(m.Key)
		r.mu.Unlock()
		st.mu.Unlock()
		return
	}
	ttl := float64(m.TTLms) / 1000
	if ttl <= 0 {
		ttl = 30
	}
	born := float64(m.BornMs) / 1000
	// The stripe lock covers the table+namespace mutation and, nested,
	// the r.mu bookkeeping — so a sweep on the same stripe cannot
	// interleave an expiry callback between a delivery and its
	// OnUpdate enqueue.
	st.mu.Lock()
	prev, had := st.sub.Get(table.Key(m.Key), now)
	var prevVer uint64
	if had {
		prevVer = prev.Version
	}
	isDup := had && prevVer >= m.Ver
	changed := st.sub.ApplyBorn(table.Key(m.Key), m.Value, m.Ver, now, ttl, born)
	delivered := false
	if changed {
		if !had {
			r.replicaN.Add(1)
		}
		delivered = st.ns.Put(m.Key, m.Value, m.Ver) == nil
	}
	r.mu.Lock()
	if delivered {
		r.stats.DataReceived++
		r.m.deliveries.Inc()
		traceRecord(r.cfg.Trace, r.cfg.TraceNode, trace.Deliver, m.Key)
		// T_rec here is repair latency: first-NACK-scheduled to
		// delivery. t_vis is the end-to-end quantity: origin publish
		// (stamped on the wire, preserved across relay hops) to
		// local delivery.
		if t0, ok := r.repairT[m.Key]; ok {
			r.m.tRec.Observe(now - t0)
			delete(r.repairT, m.Key)
		}
		if m.BornMs > 0 {
			lag := now - born
			if lag < 0 {
				lag = 0 // clock skew between origin and replica
			}
			r.m.tvis.Observe(lag)
			r.cfg.Consistency.ObserveTVisAt(now, lag)
		}
		r.m.replica.Set(float64(r.replicaN.Load()))
		if r.cfg.OnUpdate != nil {
			r.enqueueUpdate(m.Key, m.Value, m.Ver, born)
		}
	} else if isDup {
		r.stats.Duplicates++
		r.m.duplicates.Inc()
	}
	r.sup.Repaired(m.Key)
	if r.cfg.PeerRepair {
		// A repair answered by anyone damps our pending peer response.
		// (Without peer repair no "!d:" slot can exist — skipping the
		// lookup also skips the per-record string concatenation.)
		r.sup.Heard("!d:" + m.Key)
	}
	r.mu.Unlock()
	if changed || (had && prevVer == m.Ver) {
		// Delivering a new version, or hearing a refresh for exactly
		// the version we hold, confirms the record is current — the
		// per-key staleness clock resets. An announcement older than
		// the replica proves nothing and is excluded.
		r.cfg.Consistency.ConfirmAt(r.cfg.ReceiverID, m.Key, now)
	}
	st.mu.Unlock()
}

// onGoodbye handles a publisher departure: count it, forget the
// learned publisher (a successor may take over the session), and —
// with FlushOnGoodbye — drop the whole replica at once, firing the
// usual expiry callbacks. Caller must hold no locks.
func (r *Receiver) onGoodbye() {
	r.mu.Lock()
	r.stats.GoodbyesHeard++
	r.m.goodbyes.Inc()
	r.pubSeen = false
	r.lastSeq = 0
	r.mu.Unlock()
	if r.cfg.FlushOnGoodbye {
		r.flushReplica()
	}
	if r.cfg.OnGoodbye != nil {
		r.mu.Lock()
		r.enqueueGoodbye()
		r.mu.Unlock()
	}
}

// flushReplica drops every replica entry through the normal expiry
// path, stripe by stripe. Caller must hold no locks.
func (r *Receiver) flushReplica() {
	now := nowSeconds()
	for _, st := range r.stripes {
		st.mu.Lock()
		st.sub.Sweep(now) // fire regular expiry for already-lapsed keys
		for _, k := range st.sub.Keys(now) {
			key := string(k)
			st.sub.Drop(k)
			st.ns.Delete(key)
			r.replicaN.Add(-1)
			r.cfg.Consistency.Forget(r.cfg.ReceiverID, key)
			traceRecord(r.cfg.Trace, r.cfg.TraceNode, trace.Expire, key)
			r.mu.Lock()
			r.stats.Expired++
			r.m.expired.Inc()
			if r.cfg.OnExpire != nil {
				r.enqueueExpire(key)
			}
			r.mu.Unlock()
		}
		st.mu.Unlock()
	}
	r.m.replica.Set(float64(r.replicaN.Load()))
}

// onSummary compares the announced root digest against the replica's
// and, on mismatch, schedules a namespace query (suppression-slotted).
// Caller must hold no locks.
func (r *Receiver) onSummary(hdr protocol.Header, m *protocol.Summary) {
	var local namespace.Digest
	var err error
	if m.Path == "" {
		local, _ = r.rootSummary()
	} else {
		st := r.stripeFor(m.Path)
		st.mu.Lock()
		local, err = st.ns.Digest(m.Path)
		st.mu.Unlock()
	}
	agree := err == nil && local == namespace.Digest(m.Digest)
	r.mu.Lock()
	defer r.mu.Unlock()
	r.stats.SummariesHeard++
	// Every publisher root summary is one Bernoulli observation of the
	// paper's c(t): digest equality proves the replica identical to
	// the live set at this instant. Peer summaries (Seq 0) are not
	// sampled — they compare replicas, not replica-vs-publisher.
	if m.Path == "" && r.pubSeen && hdr.Sender == r.pubID && hdr.Seq > 0 {
		r.cfg.Consistency.SampleAgreementAt(nowSeconds(), agree)
		if agree {
			traceRecord(r.cfg.Trace, r.cfg.TraceNode, trace.Confirm, "")
		}
	}
	if agree {
		r.sup.Repaired("?" + m.Path)
		return
	}
	r.stats.MismatchedRoots++
	r.m.mismatches.Inc()
	if r.cfg.DisableFeedback || !r.interested(m.Path) {
		return
	}
	r.scheduleQuery(m.Path)
}

// onDigests diffs the sender's child digests against the replica and
// recurses: mismatching interior children get queries, mismatching or
// missing leaves get NACKs. Caller must hold no locks.
func (r *Receiver) onDigests(m *protocol.Digests) {
	r.mu.Lock()
	r.sup.Repaired("?" + m.Path)
	// Someone else answered this path: damp our pending response.
	r.sup.Heard("!q:" + m.Path)
	r.mu.Unlock()
	if r.cfg.DisableFeedback {
		return
	}
	remote := r.dRemote[:0]
	if r.dLeaf == nil {
		r.dLeaf = make(map[string]bool, len(m.Children))
	} else {
		clear(r.dLeaf)
	}
	leafByName := r.dLeaf
	for _, c := range m.Children {
		remote = append(remote, namespace.Child{Name: c.Name, Leaf: c.Leaf, Digest: namespace.Digest(c.Digest)})
		leafByName[c.Name] = c.Leaf
	}
	r.dRemote = remote[:0]
	differ, missing, ok := r.diffChildren(m.Path, remote)
	if !ok {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	nacks := r.dNacks[:0]
	defer func() { r.dNacks = nacks[:0] }()
	recurse := func(names []string) {
		for _, name := range names {
			child := name
			if m.Path != "" {
				child = m.Path + "/" + name
			}
			if !r.interested(child) {
				continue
			}
			if leafByName[name] {
				nacks = append(nacks, child)
			} else {
				r.scheduleQuery(child)
			}
		}
	}
	recurse(differ)
	recurse(missing)
	for _, key := range nacks {
		r.scheduleNACK(key)
	}
}

// diffChildren diffs remote child digests against the replica's,
// merging the per-stripe trees' top-level children at the root. The
// semantics match namespace.Tree.DiffChildren: differ lists children
// both sides hold with unequal digests, missing lists children the
// replica lacks entirely.
func (r *Receiver) diffChildren(path string, remote []namespace.Child) (differ, missing []string, ok bool) {
	if path == "" && len(r.stripes) > 1 {
		local := make(map[string]namespace.Digest)
		for _, st := range r.stripes {
			st.mu.Lock()
			kids, err := st.ns.Children("")
			st.mu.Unlock()
			if err != nil {
				continue
			}
			for _, k := range kids {
				local[k.Name] = k.Digest
			}
		}
		for _, rc := range remote {
			d, have := local[rc.Name]
			switch {
			case !have:
				missing = append(missing, rc.Name)
			case d != rc.Digest:
				differ = append(differ, rc.Name)
			}
		}
		return differ, missing, true
	}
	st := r.stripeFor(path)
	st.mu.Lock()
	d, ms, err := st.ns.DiffChildren(path, remote)
	st.mu.Unlock()
	if err != nil {
		return nil, nil, false
	}
	return d, ms, true
}

// scheduleQuery slots a namespace query through the suppressor.
// Caller holds r.mu.
func (r *Receiver) scheduleQuery(path string) {
	key := "?" + path
	fireAt, fresh := r.sup.Schedule(key, nowSeconds())
	if !fresh {
		return
	}
	var fire func()
	fire = func() {
		r.mu.Lock()
		if !r.sup.Fire(key, nowSeconds()) {
			r.mu.Unlock()
			return // suppressed (another member queried) or repaired
		}
		r.stats.QueriesSent++
		r.m.queriesSent.Inc()
		// Retry with backoff until a Digests response repairs the
		// pending state — a lost response must not stall the descent.
		next := r.sup.Reschedule(key, nowSeconds())
		r.armTimerLocked(key, next, fire)
		r.mu.Unlock()
		r.sendControl(&protocol.Query{Path: path})
	}
	r.armTimerLocked(key, fireAt, fire)
}

// scheduleNACK slots a repair request through the suppressor, with
// backoff-driven retries until the data arrives. Caller holds r.mu.
func (r *Receiver) scheduleNACK(key string) {
	now := nowSeconds()
	fireAt, fresh := r.sup.Schedule(key, now)
	if !fresh {
		return
	}
	if _, ok := r.repairT[key]; !ok {
		r.repairT[key] = now // T_rec clock starts at first repair intent
	}
	var fire func()
	fire = func() {
		r.mu.Lock()
		if !r.sup.Fire(key, nowSeconds()) {
			r.mu.Unlock()
			return // suppressed or repaired
		}
		r.stats.NACKsSent++
		r.m.nacksSent.Inc()
		traceRecord(r.cfg.Trace, r.cfg.TraceNode, trace.NACK, key)
		next := r.sup.Reschedule(key, nowSeconds())
		r.armTimerLocked(key, next, fire)
		r.mu.Unlock()
		r.sendControl(&protocol.NACK{Keys: []string{key}})
	}
	r.armTimerLocked(key, fireAt, fire)
}

// armTimerLocked schedules (or re-schedules) the slot's timer in the
// shared heap and wakes timerLoop; caller holds r.mu.
func (r *Receiver) armTimerLocked(key string, fireAt float64, fn func()) {
	if e, ok := r.timerByKey[key]; ok {
		e.fireAt = fireAt
		e.fn = fn
		r.theap.fix(e)
	} else {
		e = &timerEntry{key: key, fireAt: fireAt, fn: fn}
		r.timerByKey[key] = e
		r.theap.push(e)
	}
	select {
	case r.timerKick <- struct{}{}:
	default:
	}
}

// timerLoop runs every armed repair timer from a single goroutine:
// sleep until the earliest heap deadline (or a kick arms an earlier
// one), pop everything due, and run the callbacks outside r.mu — the
// callbacks take the lock themselves, exactly as the per-key
// time.AfterFunc bodies used to.
func (r *Receiver) timerLoop() {
	defer r.wg.Done()
	timer := time.NewTimer(time.Hour)
	if !timer.Stop() {
		<-timer.C
	}
	defer timer.Stop()
	var due []*timerEntry // scratch, reused across rounds
	for {
		r.mu.Lock()
		now := nowSeconds()
		due = due[:0]
		for r.theap.len() > 0 && r.theap.peek().fireAt <= now {
			e := r.theap.pop()
			delete(r.timerByKey, e.key)
			due = append(due, e)
		}
		wait := time.Duration(-1)
		if r.theap.len() > 0 {
			wait = time.Duration((r.theap.peek().fireAt - now) * float64(time.Second))
			if wait < 0 {
				wait = 0
			}
		}
		r.mu.Unlock()
		if len(due) > 0 {
			for i, e := range due {
				select {
				case <-r.done:
					return
				default:
				}
				e.fn()
				due[i] = nil
			}
			continue // callbacks may have re-armed; recompute the deadline
		}
		if wait < 0 {
			// Heap empty: sleep until something is armed.
			select {
			case <-r.done:
				return
			case <-r.timerKick:
			}
			continue
		}
		timer.Reset(wait)
		select {
		case <-r.done:
			if !timer.Stop() {
				<-timer.C
			}
			return
		case <-r.timerKick:
			if !timer.Stop() {
				<-timer.C
			}
		case <-timer.C:
		}
	}
}

// enqueueSlot appends one queue slot for the dispatcher, reusing the
// slot's storage (including its value buffer) from a previous drain.
// Caller holds r.mu.
func (r *Receiver) enqueueSlot() *appCallback {
	n := len(r.cbs)
	if n < cap(r.cbs) {
		r.cbs = r.cbs[:n+1]
	} else {
		r.cbs = append(r.cbs, appCallback{})
	}
	cb := &r.cbs[n]
	cb.expire, cb.goodbye = false, false
	cb.key = ""
	cb.value = cb.value[:0]
	cb.version, cb.born = 0, 0
	select {
	case r.cbKick <- struct{}{}:
	default:
	}
	return cb
}

// enqueueUpdate queues an OnUpdate delivery; caller holds r.mu. The
// value is copied into the slot's reusable buffer.
func (r *Receiver) enqueueUpdate(key string, value []byte, version uint64, born float64) {
	cb := r.enqueueSlot()
	cb.key = key
	cb.value = append(cb.value, value...)
	cb.version = version
	cb.born = born
}

// enqueueExpire queues an OnExpire delivery; caller holds r.mu.
func (r *Receiver) enqueueExpire(key string) {
	cb := r.enqueueSlot()
	cb.expire = true
	cb.key = key
}

// enqueueGoodbye queues an OnGoodbye delivery; caller holds r.mu.
func (r *Receiver) enqueueGoodbye() {
	cb := r.enqueueSlot()
	cb.goodbye = true
}

// callbackLoop delivers OnUpdate/OnExpire from one goroutine in queue
// order. The queue is swapped out under r.mu and drained lock-free, so
// handlers may call Get/Snapshot/Stats without deadlock; the drained
// queue is recycled, so steady state allocates nothing per event. No
// callback starts after Close is observed.
func (r *Receiver) callbackLoop() {
	defer r.wg.Done()
	for {
		select {
		case <-r.done:
			return
		case <-r.cbKick:
		}
		for {
			r.mu.Lock()
			batch := r.cbs
			r.cbs = r.cbFree[:0]
			r.cbFree = nil
			r.mu.Unlock()
			if len(batch) == 0 {
				r.mu.Lock()
				r.cbFree = batch[:0]
				r.mu.Unlock()
				break
			}
			for i := range batch {
				select {
				case <-r.done:
					return
				default:
				}
				cb := &batch[i]
				if cb.goodbye {
					if r.cfg.OnGoodbye != nil {
						r.cfg.OnGoodbye()
					}
				} else if cb.expire {
					if r.cfg.OnExpire != nil {
						r.cfg.OnExpire(cb.key)
					}
				} else if r.cfg.OnUpdate != nil {
					r.cfg.OnUpdate(cb.key, cb.value, cb.version, cb.born)
				}
				if cap(cb.value) > 4096 {
					cb.value = nil // do not pin oversized values in the pool
				}
			}
			r.mu.Lock()
			r.cbFree = batch[:0]
			r.mu.Unlock()
		}
	}
}

func (r *Receiver) sendControl(msg protocol.Message) {
	if r.cfg.DisableFeedback {
		return
	}
	dest := *r.fbDest.Load()
	if dest == nil {
		return
	}
	// Scope 1: repair and report traffic is for the nearest replica
	// only and must never be forwarded past it.
	hdr := protocol.Header{Session: r.cfg.Session, Sender: r.cfg.ReceiverID, Scope: 1}
	bp := pktPool.Get().(*[]byte)
	*bp = protocol.AppendEncode((*bp)[:0], hdr, msg)
	// Both MemConn and UDP copy the datagram before WriteTo returns,
	// so the buffer can be pooled immediately.
	_, _ = r.cfg.Conn.WriteTo(*bp, dest)
	pktPool.Put(bp)
}

// SetFeedbackDest re-targets repair and report traffic to dest and
// forgets the learned publisher, so the next live sender heard on the
// conn is adopted fresh — the re-parenting primitive an orphaned relay
// uses to redial a fallback parent. Safe while the receiver runs; the
// replica itself is untouched (the new parent republishes with origin
// versions, so held records refresh rather than conflict).
func (r *Receiver) SetFeedbackDest(dest net.Addr) {
	r.fbDest.Store(&dest)
	r.mu.Lock()
	r.pubSeen = false
	r.pubID = 0
	r.lastSeq = 0
	r.lastHeard = 0
	// A fresh loss estimator: the new parent's sequence space is
	// unrelated to the old one's.
	r.est = feedback.NewLossEstimator(0.25)
	r.mu.Unlock()
}

// FeedbackDest returns where repair and report traffic currently goes.
func (r *Receiver) FeedbackDest() net.Addr { return *r.fbDest.Load() }

// LastHeard returns the wall-clock time (seconds, the table time base)
// of the most recent datagram from the learned publisher, and whether
// a publisher has been heard at all since Start (or since the last
// SetFeedbackDest). Watchdogs use it to detect a dead upstream.
func (r *Receiver) LastHeard() (float64, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.lastHeard, r.pubSeen
}

func (r *Receiver) sweepLoop() {
	defer r.wg.Done()
	tick := time.NewTicker(250 * time.Millisecond)
	defer tick.Stop()
	ticks := 0
	for {
		select {
		case <-r.done:
			return
		case <-tick.C:
			now := nowSeconds()
			for _, st := range r.stripes {
				st.mu.Lock()
				st.sub.Sweep(now) // OnExpire fires under the stripe lock
				st.mu.Unlock()
			}
			r.m.replica.Set(float64(r.replicaN.Load()))
			r.mu.Lock()
			for key, t0 := range r.repairT {
				if now-t0 > 120 {
					delete(r.repairT, key) // repair abandoned
				}
			}
			r.mu.Unlock()
			// Refresh the windowed consistency gauges at a gentler
			// cadence: the staleness-age quantiles sort all tracked
			// keys, which is too dear to redo every 250ms.
			if ticks++; r.cfg.Consistency != nil && ticks%8 == 0 {
				r.m.setConsistency(r.cfg.Consistency.SnapshotAt(now))
			}
		}
	}
}

func (r *Receiver) reportLoop() {
	defer r.wg.Done()
	tick := time.NewTicker(r.cfg.ReportInterval)
	defer tick.Stop()
	for {
		select {
		case <-r.done:
			return
		case <-tick.C:
			r.mu.Lock()
			r.est.IntervalLoss()
			rep := &protocol.Report{}
			recv, exp := r.est.Counts()
			rep.Received = uint32(recv)
			rep.Expected = uint32(exp)
			rep.SetLoss(r.est.Smoothed())
			rep.Timestamp = uint64(time.Now().UnixMilli())
			r.stats.ReportsSent++
			r.m.reportsSent.Inc()
			r.m.loss.Set(r.est.Smoothed())
			r.mu.Unlock()
			r.sendControl(rep)
		}
	}
}
