package sstp

import (
	"fmt"
	"time"
)

// Reliability names a point on SSTP's "continuum of reliability
// levels" (paper §6): the same protocol machinery configured from pure
// best-effort dissemination up to report-driven adaptive reliability.
// Apply writes the corresponding knobs into a sender/receiver config
// pair; everything remains individually overridable afterwards.
type Reliability int

// The spectrum, weakest to strongest.
const (
	// BestEffort sends each record through the hot queue and barely
	// ever again: no summaries, no feedback. Receivers still expire
	// state (it stays soft), but loss is not repaired.
	BestEffort Reliability = iota
	// AnnounceListen is the paper's open-loop protocol: hot + cold
	// cycling and periodic summaries, no receiver feedback. Eventually
	// consistent for live records.
	AnnounceListen
	// Repair adds receiver feedback: summary-driven namespace descent
	// and NACKs, with slotting/damping. Converges in a few RTTs under
	// loss.
	Repair
	// Reliable additionally sends receiver reports, enabling AIMD
	// rate adaptation and profile-driven allocation at the sender.
	Reliable
)

// String names the level.
func (r Reliability) String() string {
	switch r {
	case BestEffort:
		return "best-effort"
	case AnnounceListen:
		return "announce-listen"
	case Repair:
		return "repair"
	case Reliable:
		return "reliable"
	default:
		return fmt.Sprintf("Reliability(%d)", int(r))
	}
}

// Apply configures the sender/receiver config pair for the level.
// Either pointer may be nil when only one side is being built.
func (r Reliability) Apply(sc *SenderConfig, rc *ReceiverConfig) error {
	switch r {
	case BestEffort:
		if sc != nil {
			sc.NoRetransmit = true
			sc.SummaryInterval = 24 * time.Hour // effectively off
		}
		if rc != nil {
			rc.DisableFeedback = true
		}
	case AnnounceListen:
		if rc != nil {
			rc.DisableFeedback = true
		}
	case Repair:
		if rc != nil {
			rc.DisableFeedback = false
			rc.ReportInterval = -1 // NACK repair without reports
		}
	case Reliable:
		if rc != nil {
			rc.DisableFeedback = false
			if rc.ReportInterval < 0 {
				rc.ReportInterval = 0 // restore the default
			}
		}
	default:
		return fmt.Errorf("sstp: unknown reliability level %d", int(r))
	}
	return nil
}
