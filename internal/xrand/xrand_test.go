package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Float64() != b.Float64() {
			t.Fatalf("streams diverged at draw %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Float64() == b.Float64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("seeds 1 and 2 produced %d/100 identical draws", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	c1 := parent.Split()
	c2 := parent.Split()
	if c1.Float64() == c2.Float64() {
		// A single collision is possible but astronomically unlikely.
		if c1.Float64() == c2.Float64() {
			t.Fatal("split children appear correlated")
		}
	}
}

func TestBernoulliEdges(t *testing.T) {
	r := New(1)
	for i := 0; i < 100; i++ {
		if r.Bernoulli(0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !r.Bernoulli(1) {
			t.Fatal("Bernoulli(1) returned false")
		}
		if r.Bernoulli(-0.5) {
			t.Fatal("Bernoulli(-0.5) returned true")
		}
		if !r.Bernoulli(1.5) {
			t.Fatal("Bernoulli(1.5) returned false")
		}
	}
}

func TestBernoulliMean(t *testing.T) {
	r := New(3)
	const n = 200000
	for _, p := range []float64{0.1, 0.4, 0.9} {
		hits := 0
		for i := 0; i < n; i++ {
			if r.Bernoulli(p) {
				hits++
			}
		}
		got := float64(hits) / n
		if math.Abs(got-p) > 0.01 {
			t.Errorf("Bernoulli(%v) mean = %v", p, got)
		}
	}
}

func TestExpMean(t *testing.T) {
	r := New(4)
	const n = 200000
	for _, rate := range []float64{0.5, 2, 10} {
		sum := 0.0
		for i := 0; i < n; i++ {
			sum += r.Exp(rate)
		}
		got := sum / n
		want := 1 / rate
		if math.Abs(got-want)/want > 0.02 {
			t.Errorf("Exp(%v) mean = %v, want ~%v", rate, got, want)
		}
	}
}

func TestExpPanicsOnBadRate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Exp(0) did not panic")
		}
	}()
	New(1).Exp(0)
}

func TestPoissonMean(t *testing.T) {
	r := New(5)
	const n = 100000
	for _, mean := range []float64{0.5, 3, 12, 80} {
		sum := 0
		for i := 0; i < n; i++ {
			sum += r.Poisson(mean)
		}
		got := float64(sum) / n
		if math.Abs(got-mean)/mean > 0.03 {
			t.Errorf("Poisson(%v) mean = %v", mean, got)
		}
	}
	if r.Poisson(0) != 0 || r.Poisson(-1) != 0 {
		t.Error("Poisson of non-positive mean should be 0")
	}
}

func TestGeometricMean(t *testing.T) {
	r := New(6)
	const n = 200000
	p := 0.25
	sum := 0
	for i := 0; i < n; i++ {
		sum += r.Geometric(p)
	}
	got := float64(sum) / n
	want := (1 - p) / p // mean failures before success
	if math.Abs(got-want)/want > 0.03 {
		t.Errorf("Geometric(%v) mean = %v, want ~%v", p, got, want)
	}
	if r.Geometric(1) != 0 {
		t.Error("Geometric(1) must be 0")
	}
}

func TestGeometricPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Geometric(0) did not panic")
		}
	}()
	New(1).Geometric(0)
}

func TestUniformRange(t *testing.T) {
	r := New(8)
	if err := quick.Check(func(seed int64) bool {
		v := r.Uniform(3, 7)
		return v >= 3 && v < 7
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestZipfSkew(t *testing.T) {
	r := New(9)
	z := r.Zipf(1.2, 1000)
	counts := make(map[uint64]int)
	for i := 0; i < 50000; i++ {
		counts[z.Uint64()]++
	}
	if counts[0] <= counts[10] {
		t.Errorf("Zipf not skewed: count(0)=%d count(10)=%d", counts[0], counts[10])
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(10)
	p := r.Perm(50)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("invalid permutation %v", p)
		}
		seen[v] = true
	}
}

func TestNormalMoments(t *testing.T) {
	r := New(11)
	const n = 200000
	sum, sumsq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := r.Normal(5, 2)
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean-5) > 0.05 {
		t.Errorf("Normal mean = %v", mean)
	}
	if math.Abs(variance-4) > 0.15 {
		t.Errorf("Normal variance = %v", variance)
	}
}
