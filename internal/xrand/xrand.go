// Package xrand provides a seedable random source with the
// distributions used throughout the soft-state model: exponential
// inter-arrival times, Bernoulli trials (packet loss, record death),
// Poisson counts, and Zipf-distributed key popularity.
//
// Every simulation component in this repository draws randomness
// through an *xrand.Rand so that experiments are reproducible from a
// single seed. The zero value is not usable; construct with New.
package xrand

import (
	"math"
	"math/rand"
)

// Rand is a deterministic random source. It wraps math/rand with the
// distribution helpers the soft-state model needs. It is not safe for
// concurrent use; give each simulation its own instance (the
// discrete-event engine is single-threaded, so this is natural).
type Rand struct {
	src *rand.Rand
}

// New returns a Rand seeded with seed. Equal seeds yield identical
// streams.
func New(seed int64) *Rand {
	return &Rand{src: rand.New(rand.NewSource(seed))}
}

// Split derives a new independent-looking stream from r. It is used
// to give each subsystem (arrivals, loss, death, scheduling) its own
// stream so that changing one parameter sweep does not perturb the
// random draws of another.
func (r *Rand) Split() *Rand {
	// Derive the child seed from the parent stream. The golden-ratio
	// increment decorrelates consecutive children.
	const gamma = 0x9e3779b97f4a7c15
	return New(int64(r.src.Uint64() ^ gamma))
}

// Float64 returns a uniform value in [0, 1).
func (r *Rand) Float64() float64 { return r.src.Float64() }

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int { return r.src.Intn(n) }

// Int63 returns a non-negative uniform 63-bit integer.
func (r *Rand) Int63() int64 { return r.src.Int63() }

// Uint64 returns a uniform 64-bit value.
func (r *Rand) Uint64() uint64 { return r.src.Uint64() }

// Perm returns a random permutation of [0, n).
func (r *Rand) Perm(n int) []int { return r.src.Perm(n) }

// Bernoulli reports true with probability p. Values of p outside
// [0, 1] are clamped.
func (r *Rand) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.src.Float64() < p
}

// Exp returns an exponentially distributed value with the given rate
// (mean 1/rate). It panics if rate <= 0.
func (r *Rand) Exp(rate float64) float64 {
	if rate <= 0 {
		panic("xrand: Exp rate must be positive")
	}
	return r.src.ExpFloat64() / rate
}

// Uniform returns a uniform value in [lo, hi).
func (r *Rand) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*r.src.Float64()
}

// Normal returns a normally distributed value with the given mean and
// standard deviation.
func (r *Rand) Normal(mean, stddev float64) float64 {
	return mean + stddev*r.src.NormFloat64()
}

// Poisson returns a Poisson-distributed count with the given mean,
// using inversion for small means and the PTRS transformed-rejection
// method's simple fallback (normal approximation) for large means.
func (r *Rand) Poisson(mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean < 30 {
		// Knuth inversion.
		l := math.Exp(-mean)
		k := 0
		p := 1.0
		for {
			p *= r.src.Float64()
			if p <= l {
				return k
			}
			k++
		}
	}
	// Normal approximation with continuity correction is adequate for
	// the workload generators (mean counts per interval).
	n := int(math.Round(r.Normal(mean, math.Sqrt(mean))))
	if n < 0 {
		n = 0
	}
	return n
}

// Geometric returns the number of failures before the first success
// in Bernoulli(p) trials. It panics if p <= 0 or p > 1.
func (r *Rand) Geometric(p float64) int {
	if p <= 0 || p > 1 {
		panic("xrand: Geometric p must be in (0, 1]")
	}
	if p == 1 {
		return 0
	}
	// Inversion: floor(ln(U) / ln(1-p)).
	u := r.src.Float64()
	for u == 0 {
		u = r.src.Float64()
	}
	return int(math.Log(u) / math.Log(1-p))
}

// Zipf returns a generator of Zipf-distributed values in [0, n) with
// exponent s > 1 is not required; s >= 0. Used to model skewed key
// popularity in workload generators.
func (r *Rand) Zipf(s float64, n uint64) *rand.Zipf {
	if s <= 1 {
		s = 1.0000001
	}
	return rand.NewZipf(r.src, s, 1, n-1)
}

// Shuffle pseudo-randomizes the order of n elements using swap.
func (r *Rand) Shuffle(n int, swap func(i, j int)) {
	r.src.Shuffle(n, swap)
}
