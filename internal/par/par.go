// Package par runs embarrassingly parallel simulation sweeps on a
// bounded worker pool with deterministic, in-order result assembly.
//
// The experiment sweeps (internal/experiments) are Monte-Carlo
// parameter grids: every point is an independent, seeded simulation,
// so the only requirements for exact reproducibility are that each
// point derives all of its randomness from its own parameters and
// that results are assembled in input order regardless of completion
// order. Map guarantees the latter; the experiment code guarantees the
// former by seeding every engine from the point's parameters alone.
// Consequently the output is byte-identical for every worker count,
// including one — a property the golden determinism test in
// internal/experiments pins for every experiment ID.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"

	"softstate/internal/obs"
)

// Pool bounds a sweep's fan-out and optionally publishes its progress.
// The zero Pool is valid: it uses GOMAXPROCS workers and records
// nothing.
type Pool struct {
	// Procs is the maximum number of concurrent workers; <= 0 means
	// runtime.GOMAXPROCS(0). Procs == 1 runs the sweep inline on the
	// calling goroutine.
	Procs int

	// Busy, if non-nil, tracks the number of workers currently
	// executing a point (sweep_workers_busy).
	Busy *obs.Gauge
	// Done, if non-nil, counts completed points
	// (sweep_points_completed_total).
	Done *obs.Counter
}

// workers resolves the effective worker count for n items.
func (p Pool) workers(n int) int {
	w := p.Procs
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Map applies f to every item and returns the results in input order.
// Items are claimed by an atomic cursor, so up to p.workers(len(items))
// calls to f run concurrently; f must therefore be safe to call
// concurrently for distinct items. A panic in any worker is re-raised
// on the calling goroutine after the pool drains, preserving the
// serial failure behaviour of the sweeps.
func Map[T, R any](p Pool, items []T, f func(i int, item T) R) []R {
	if len(items) == 0 {
		return nil
	}
	out := make([]R, len(items))
	w := p.workers(len(items))
	if w == 1 {
		for i := range items {
			p.Busy.Add(1)
			out[i] = f(i, items[i])
			p.Busy.Add(-1)
			p.Done.Inc()
		}
		return out
	}
	var (
		next     atomic.Int64
		panicked atomic.Value // first worker panic, re-raised below
		wg       sync.WaitGroup
	)
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(items) {
					return
				}
				func() {
					defer func() {
						if r := recover(); r != nil {
							if panicked.CompareAndSwap(nil, r) {
								// Stop claiming further points.
								next.Store(int64(len(items)))
							}
						}
					}()
					p.Busy.Add(1)
					out[i] = f(i, items[i])
					p.Busy.Add(-1)
					p.Done.Inc()
				}()
			}
		}()
	}
	wg.Wait()
	if r := panicked.Load(); r != nil {
		panic(r)
	}
	return out
}
