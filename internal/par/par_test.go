package par

import (
	"runtime"
	"sync/atomic"
	"testing"

	"softstate/internal/obs"
)

func TestMapOrdering(t *testing.T) {
	in := make([]int, 257)
	for i := range in {
		in[i] = i
	}
	for _, procs := range []int{0, 1, 2, 7, 64} {
		out := Map(Pool{Procs: procs}, in, func(i, v int) int { return v * v })
		for i, v := range out {
			if v != i*i {
				t.Fatalf("procs=%d: out[%d] = %d, want %d", procs, i, v, i*i)
			}
		}
	}
}

func TestMapEmpty(t *testing.T) {
	if out := Map(Pool{}, nil, func(i, v int) int { return v }); out != nil {
		t.Errorf("Map(nil) = %v, want nil", out)
	}
}

func TestMapConcurrencyBound(t *testing.T) {
	const procs = 3
	var inFlight, peak atomic.Int64
	in := make([]int, 100)
	Map(Pool{Procs: procs}, in, func(i, v int) int {
		n := inFlight.Add(1)
		for {
			p := peak.Load()
			if n <= p || peak.CompareAndSwap(p, n) {
				break
			}
		}
		runtime.Gosched()
		inFlight.Add(-1)
		return 0
	})
	if p := peak.Load(); p > procs {
		t.Errorf("peak concurrency %d exceeds procs %d", p, procs)
	}
}

func TestMapInstruments(t *testing.T) {
	reg := obs.New("test")
	pool := Pool{
		Procs: 4,
		Busy:  reg.Gauge("sweep_workers_busy"),
		Done:  reg.Counter("sweep_points_completed_total"),
	}
	in := make([]int, 41)
	Map(pool, in, func(i, v int) int { return v })
	if got := pool.Done.Value(); got != 41 {
		t.Errorf("completed counter = %d, want 41", got)
	}
	if busy := pool.Busy.Value(); busy != 0 {
		t.Errorf("busy gauge = %v after drain, want 0", busy)
	}
}

func TestMapPanicPropagates(t *testing.T) {
	for _, procs := range []int{1, 4} {
		func() {
			defer func() {
				if r := recover(); r == nil {
					t.Errorf("procs=%d: worker panic did not propagate", procs)
				}
			}()
			Map(Pool{Procs: procs}, make([]int, 16), func(i, v int) int {
				if i == 7 {
					panic("boom")
				}
				return v
			})
		}()
	}
}

func TestWorkersResolution(t *testing.T) {
	if w := (Pool{Procs: 8}).workers(3); w != 3 {
		t.Errorf("workers capped at items: got %d", w)
	}
	if w := (Pool{Procs: -1}).workers(100); w != runtime.GOMAXPROCS(0) {
		t.Errorf("default workers = %d, want GOMAXPROCS", w)
	}
	if w := (Pool{Procs: 2}).workers(100); w != 2 {
		t.Errorf("workers = %d, want 2", w)
	}
}
