// Package experiments regenerates every table and figure of the
// paper's evaluation. Each function returns a structured Experiment
// (labelled series of x/y points) that cmd/ssbench prints as TSV and
// bench_test.go exercises as testing.B benchmarks.
//
// Every experiment is a parameter sweep whose points are independent,
// seeded simulations; the points fan out across a worker pool
// (internal/par) and are reassembled in input order, so the output is
// byte-identical for every worker count — Opts.Procs trades wall-clock
// time only, never numbers. The golden test in golden_test.go pins
// this for every experiment ID.
//
// Parameter notes (documented per experiment in EXPERIMENTS.md):
// where the paper's captions are internally inconsistent or OCR-
// damaged, parameters are chosen to reproduce the *shape* and the
// quantitative claims made in the prose, and the deviations are
// recorded in the experiment's Notes field.
package experiments

import (
	"fmt"
	"io"
	"math"
	"strings"

	"softstate/internal/core"
	"softstate/internal/obs"
	"softstate/internal/par"
	"softstate/internal/queueing"
	"softstate/internal/refresh"
)

// Series is one labelled curve.
type Series struct {
	Label string
	X     []float64
	Y     []float64
}

// Experiment is a regenerated table or figure.
type Experiment struct {
	ID     string
	Title  string
	XLabel string
	YLabel string
	Series []Series
	Notes  string
}

// WriteTSV renders the experiment as tab-separated values.
func (e Experiment) WriteTSV(w io.Writer) {
	fmt.Fprintf(w, "# %s: %s\n", e.ID, e.Title)
	if e.Notes != "" {
		for _, line := range strings.Split(e.Notes, "\n") {
			fmt.Fprintf(w, "# %s\n", line)
		}
	}
	fmt.Fprintf(w, "%s", e.XLabel)
	for _, s := range e.Series {
		fmt.Fprintf(w, "\t%s", s.Label)
	}
	fmt.Fprintln(w)
	// All series share the X grid by construction; use the longest.
	var xs []float64
	for _, s := range e.Series {
		if len(s.X) > len(xs) {
			xs = s.X
		}
	}
	for i, x := range xs {
		fmt.Fprintf(w, "%.4g", x)
		for _, s := range e.Series {
			if i < len(s.Y) {
				fmt.Fprintf(w, "\t%.4f", s.Y[i])
			} else {
				fmt.Fprintf(w, "\t")
			}
		}
		fmt.Fprintln(w)
	}
}

// Headline returns the experiment's headline metric as a (name, value)
// pair — the same quantity the bench suite reports, suitable as the
// trajectory point of a BENCH_*.json record.
func (e Experiment) Headline() (string, float64) {
	switch e.ID {
	case "table1":
		return "pd_empirical", lastY(e, 1) // simulated I-enter death probability
	case "fig3":
		return "consistency_at_0loss", firstY(e, 1) // simulated pd=0.20 at zero loss
	case "fig4":
		return "redundant_frac_lowloss", firstY(e, 2)
	case "fig5":
		return "consistency_above_knee", lastY(e, 0)
	case "fig6":
		return "t_rec_high_cold", lastY(e, 0)
	case "fig8":
		return "consistency_fb30pct", tailMean(e.Series[2])
	case "fig9":
		return "consistency_50loss_fbmax", lastY(e, 2)
	case "fig10":
		return "consistency_above_knee", lastY(e, 0)
	case "fig11":
		return "consistency_50loss_ceiling", lastY(e, 4)
	case "summary":
		// aging+feedback minus open-loop at 40% loss (x index 3).
		return "feedback_gain_at_40loss", e.Series[2].Y[3] - e.Series[0].Y[3]
	case "ext-timers":
		// K=3 static series, loss=0.3 (index 2).
		return "false_expiry_k3_p30", e.Series[4].Y[2]
	case "ext-catchup":
		return "catchup_s_50loss", lastY(e, 1)
	default:
		return "", math.NaN()
	}
}

func lastY(e Experiment, series int) float64 {
	s := e.Series[series]
	return s.Y[len(s.Y)-1]
}

func firstY(e Experiment, series int) float64 {
	return e.Series[series].Y[0]
}

// tailMean averages the steady-state half of a time series.
func tailMean(s Series) float64 {
	n := len(s.Y)
	sum := 0.0
	for _, v := range s.Y[n/2:] {
		sum += v
	}
	return sum / float64(n-n/2)
}

// Opts controls experiment fidelity and sweep parallelism.
type Opts struct {
	// Quick shortens simulations (for unit tests and CI smoke runs);
	// the full durations match EXPERIMENTS.md.
	Quick bool
	Seed  int64

	// Procs bounds the sweep worker pool; <= 0 means GOMAXPROCS.
	// Every simulation point derives its seed from the point's
	// parameters and Seed alone, so the results are identical for any
	// Procs value — 1 gives the reference serial execution.
	Procs int

	// Obs, if non-nil, receives sweep progress instruments:
	// sweep_workers_busy and sweep_points_completed_total.
	Obs *obs.Registry
}

func (o Opts) dur(full float64) float64 {
	if o.Quick {
		return full / 5
	}
	return full
}

func (o Opts) warm(full float64) float64 {
	if o.Quick {
		return full / 5
	}
	return full
}

// pool builds the sweep worker pool (nil-registry safe).
func (o Opts) pool() par.Pool {
	return par.Pool{
		Procs: o.Procs,
		Busy:  o.Obs.Gauge("sweep_workers_busy"),
		Done:  o.Obs.Counter("sweep_points_completed_total"),
	}
}

func run(cfg core.Config, dur float64) core.Result {
	e, err := core.NewEngine(cfg)
	if err != nil {
		panic(fmt.Sprintf("experiments: %v", err))
	}
	return e.Run(dur)
}

// runPar runs one independent seeded engine per config on the sweep
// pool, returning results in config order.
func runPar(o Opts, cfgs []core.Config, dur float64) []core.Result {
	return par.Map(o.pool(), cfgs, func(_ int, cfg core.Config) core.Result {
		return run(cfg, dur)
	})
}

// Table1 compares the empirical state-change probabilities against the
// paper's Table 1 closed forms.
func Table1(o Opts) Experiment {
	pc, pd := 0.25, 0.20
	res := runPar(o, []core.Config{{
		Mode: core.ModeOpenLoop, Seed: o.Seed + 1,
		Lambda: 20_000, MuData: 128_000, Pd: pd, LossRate: pc,
		Warmup: o.warm(200),
	}}, o.dur(3000))[0]
	want := queueing.OpenLoop{Lambda: 1, MuCh: 10, Pc: pc, Pd: pd}.Table1()
	got := res.TransitionProbabilities()
	mk := func(label string, vals [3]float64, sim [3]float64) (Series, Series) {
		return Series{Label: label + " analytic", X: []float64{0, 1, 2}, Y: vals[:]},
			Series{Label: label + " simulated", X: []float64{0, 1, 2}, Y: sim[:]}
	}
	ia, is := mk("I-enter", want.IEnter, got[0])
	ca, cs := mk("C-enter", want.CEnter, got[1])
	return Experiment{
		ID:     "table1",
		Title:  "State change probabilities on leaving the server (exit I=0, C=1, D=2)",
		XLabel: "exit_state",
		YLabel: "probability",
		Series: []Series{ia, is, ca, cs},
		Notes:  fmt.Sprintf("p_c=%.2f p_d=%.2f; analytic rows: {p_c(1-p_d), (1-p_c)(1-p_d), p_d} and {0, 1-p_d, p_d}", pc, pd),
	}
}

// Fig3 reproduces Figure 3: open-loop consistency vs channel loss rate
// for several death rates, analytic and simulated.
func Fig3(o Opts) Experiment {
	lambda, mu := 20_000.0, 128_000.0
	deathRates := []float64{0.20, 0.25, 0.30, 0.40}
	losses := seq(0, 0.9, 0.1)
	cfgs := make([]core.Config, 0, len(deathRates)*len(losses))
	for _, pd := range deathRates {
		for _, pc := range losses {
			cfgs = append(cfgs, core.Config{
				Mode: core.ModeOpenLoop, Seed: o.Seed + int64(pd*100) + int64(pc*1000),
				Lambda: lambda, MuData: mu, Pd: pd, LossRate: pc,
				Warmup: o.warm(200),
			})
		}
	}
	results := runPar(o, cfgs, o.dur(2000))
	var series []Series
	for di, pd := range deathRates {
		ana := Series{Label: fmt.Sprintf("pd=%.2f analytic", pd)}
		sim := Series{Label: fmt.Sprintf("pd=%.2f simulated", pd)}
		for li, pc := range losses {
			m := queueing.OpenLoop{Lambda: lambda, MuCh: mu, Pc: pc, Pd: pd}
			ana.X = append(ana.X, pc)
			ana.Y = append(ana.Y, m.BusyConsistency())
			sim.X = append(sim.X, pc)
			sim.Y = append(sim.Y, results[di*len(losses)+li].Consistency)
		}
		series = append(series, ana, sim)
	}
	return Experiment{
		ID:     "fig3",
		Title:  "Open-loop consistency vs loss rate, per announcement death rate",
		XLabel: "loss_rate",
		YLabel: "E[c(t)] over live set",
		Series: series,
		Notes: "λ=20 kbps, μ_ch=128 kbps. The paper's caption lists p_d down to 0.10,\n" +
			"which violates its own stability condition p_d > λ/μ_ch ≈ 0.156 at these\n" +
			"rates; we sweep stable death rates. Shape: consistency falls with loss and\n" +
			"with death rate, matching the paper.",
	}
}

// Fig4 reproduces Figure 4: the fraction of bandwidth consumed by
// redundant transmissions vs loss rate.
func Fig4(o Opts) Experiment {
	lambda, mu := 20_000.0, 128_000.0
	pd := 0.20
	losses := seq(0, 0.9, 0.1)
	cfgs := make([]core.Config, 0, len(losses))
	for _, pc := range losses {
		cfgs = append(cfgs, core.Config{
			Mode: core.ModeOpenLoop, Seed: o.Seed + int64(pc*1000),
			Lambda: lambda, MuData: mu, Pd: pd, LossRate: pc,
			Warmup: o.warm(200),
		})
	}
	results := runPar(o, cfgs, o.dur(2000))
	ana := Series{Label: "analytic λ̂_C/λ̂"}
	anaTen := Series{Label: "analytic pd=0.10"}
	sim := Series{Label: "simulated"}
	for i, pc := range losses {
		m := queueing.OpenLoop{Lambda: lambda, MuCh: mu, Pc: pc, Pd: pd}
		ana.X = append(ana.X, pc)
		ana.Y = append(ana.Y, m.RedundantFraction())
		m10 := queueing.OpenLoop{Lambda: lambda, MuCh: mu, Pc: pc, Pd: 0.10}
		anaTen.X = append(anaTen.X, pc)
		anaTen.Y = append(anaTen.Y, m10.RedundantFraction())
		sim.X = append(sim.X, pc)
		sim.Y = append(sim.Y, results[i].RedundantFraction)
	}
	return Experiment{
		ID:     "fig4",
		Title:  "Bandwidth wasted on redundant transmissions vs loss rate",
		XLabel: "loss_rate",
		YLabel: "redundant fraction of delivered transmissions",
		Series: []Series{ana, anaTen, sim},
		Notes: "At p_d=0.10 and low loss ≈90% of transmissions are redundant —\n" +
			"the paper's headline waste figure (simulated at p_d=0.20 for stability).",
	}
}

// Fig5 reproduces Figure 5: two-queue consistency vs hot bandwidth for
// several loss rates; the knee sits at μ_hot ≈ λ.
func Fig5(o Opts) Experiment {
	lambda, muData := 15_000.0, 45_000.0
	pcs := []float64{0.10, 0.30, 0.50}
	hotFracs := seq(0.1, 0.9, 0.1)
	cfgs := make([]core.Config, 0, len(pcs)*len(hotFracs))
	for _, pc := range pcs {
		for _, hotFrac := range hotFracs {
			cfgs = append(cfgs, core.Config{
				Mode: core.ModeTwoQueue, Seed: o.Seed + int64(pc*100) + int64(hotFrac*10),
				Lambda: lambda, MuData: muData, Lifetime: 30,
				LossRate: pc, MuHot: hotFrac, MuCold: 1 - hotFrac,
				Warmup: o.warm(300),
			})
		}
	}
	results := runPar(o, cfgs, o.dur(1500))
	var series []Series
	for pi, pc := range pcs {
		s := Series{Label: fmt.Sprintf("loss=%.0f%%", pc*100)}
		for hi, hotFrac := range hotFracs {
			s.X = append(s.X, hotFrac*muData/1000) // μ_hot in kbps
			s.Y = append(s.Y, results[pi*len(hotFracs)+hi].Consistency)
		}
		series = append(series, s)
	}
	return Experiment{
		ID:     "fig5",
		Title:  "Two-queue consistency vs μ_hot (μ_data=45 kbps, λ=15 kbps)",
		XLabel: "mu_hot_kbps",
		YLabel: "consistency",
		Series: series,
		Notes: "Knee at μ_hot ≈ λ = 15 kbps; beyond it more hot bandwidth does not\n" +
			"help. Death is lifetime-based (mean 30 s) as in the paper's §4 workload.",
	}
}

// Fig6 reproduces Figure 6: receive latency vs μ_cold/μ_hot under
// strict sharing; T_rec rises (slow retransmissions enter the average)
// then falls (retransmissions get faster).
func Fig6(o Opts) Experiment {
	lambda, muHot := 15_000.0, 18_000.0
	ratios := []float64{0.001, 0.01, 0.05, 0.1, 0.2, 0.3, 0.5, 0.75, 1, 1.5, 2, 3}
	cfgs := make([]core.Config, 0, len(ratios))
	for _, ratio := range ratios {
		cfgs = append(cfgs, core.Config{
			Mode: core.ModeTwoQueue, Seed: o.Seed + int64(ratio*1000), StrictShare: true,
			Lambda: lambda, Lifetime: 60, LossRate: 0.25,
			MuHot: muHot, MuCold: ratio * muHot,
			Warmup: o.warm(300),
		})
	}
	results := runPar(o, cfgs, o.dur(2500))
	lat := Series{Label: "T_rec (s)"}
	deliv := Series{Label: "delivery ratio"}
	for i, ratio := range ratios {
		lat.X = append(lat.X, ratio)
		lat.Y = append(lat.Y, results[i].MeanLatency)
		deliv.X = append(deliv.X, ratio)
		deliv.Y = append(deliv.Y, results[i].DeliveryRatio)
	}
	mm1 := queueing.MM1{Lambda: lambda / 1000, Mu: muHot / 1000}
	return Experiment{
		ID:     "fig6",
		Title:  "Receive latency vs μ_cold/μ_hot (strict sharing)",
		XLabel: "mu_cold_over_mu_hot",
		YLabel: "seconds",
		Series: []Series{lat, deliv},
		Notes: fmt.Sprintf("At ratio→0 the system is the M/M/1 of the paper's aside: 1/(μ−λ) = %.3f s\n"+
			"over first-shot deliveries only; latency first rises as slow cold\n"+
			"retransmissions join the average, then falls as cold bandwidth grows.", mm1.MeanSojourn()),
	}
}

// Fig8 reproduces Figure 8: consistency over time for several feedback
// bandwidth shares at 40% loss.
func Fig8(o Opts) Experiment {
	lambda, muTot := 15_000.0, 45_000.0
	fbFracs := []float64{0, 0.1, 0.3, 0.5, 0.7}
	cfgs := make([]core.Config, 0, len(fbFracs))
	for _, fbFrac := range fbFracs {
		cfg := core.Config{
			Mode: core.ModeFeedback, Seed: o.Seed + int64(fbFrac*100),
			Lambda: lambda, MuData: (1 - fbFrac) * muTot, Lifetime: 30,
			LossRate: 0.40, MuHot: 0.9, MuCold: 0.1, NACKBits: 200,
			MuFb:           fbFrac * muTot,
			SampleInterval: 10,
		}
		if fbFrac == 0 {
			cfg.Mode = core.ModeTwoQueue
			cfg.MuData = muTot
		}
		cfgs = append(cfgs, cfg)
	}
	results := runPar(o, cfgs, o.dur(2000))
	var series []Series
	for i, fbFrac := range fbFracs {
		s := Series{Label: fmt.Sprintf("fb/tot=%.0f%%", fbFrac*100)}
		for _, p := range results[i].Series.Points {
			s.X = append(s.X, p.T)
			s.Y = append(s.Y, p.V)
		}
		series = append(series, s)
	}
	return Experiment{
		ID:     "fig8",
		Title:  "Consistency over time per feedback share (λ=15 kbps, μ_tot=45 kbps, loss=40%)",
		XLabel: "time_s",
		YLabel: "consistency",
		Series: series,
		Notes: "Open loop ≈80%; moderate feedback ≈99%; collapse once\n" +
			"μ_data < λ/(1-p_c) = 25 kbps, i.e. fb share > ~44%.",
	}
}

// Fig9 reproduces Figure 9: consistency vs feedback/data bandwidth
// ratio for several loss rates (data bandwidth held fixed).
func Fig9(o Opts) Experiment {
	lambda, muData := 1_500.0, 30_000.0
	pcs := []float64{0.10, 0.30, 0.50, 0.70}
	fbRatios := []float64{0.001, 0.005, 0.01, 0.02, 0.05, 0.1, 0.2, 0.4, 0.7, 1.0}
	cfgs := make([]core.Config, 0, len(pcs)*len(fbRatios)+len(pcs))
	for _, pc := range pcs {
		for _, fbRatio := range fbRatios {
			cfgs = append(cfgs, core.Config{
				Mode: core.ModeFeedback, Seed: o.Seed + int64(pc*100) + int64(fbRatio*1000),
				Lambda: lambda, MuData: muData, Lifetime: 30,
				LossRate: pc, MuHot: 0.9, MuCold: 0.1, NACKBits: 200,
				MuFb:   fbRatio * muData,
				Warmup: o.warm(300),
			})
		}
	}
	// Open-loop baselines at each loss rate for the improvement claim.
	for i, pc := range pcs {
		cfgs = append(cfgs, core.Config{
			Mode: core.ModeTwoQueue, Seed: o.Seed + 999 + int64(i),
			Lambda: lambda, MuData: muData, Lifetime: 30,
			LossRate: pc, MuHot: 0.9, MuCold: 0.1,
			Warmup: o.warm(300),
		})
	}
	results := runPar(o, cfgs, o.dur(1500))
	var series []Series
	for pi, pc := range pcs {
		s := Series{Label: fmt.Sprintf("loss=%.0f%%", pc*100)}
		for fi, fbRatio := range fbRatios {
			s.X = append(s.X, fbRatio*100)
			s.Y = append(s.Y, results[pi*len(fbRatios)+fi].Consistency)
		}
		series = append(series, s)
	}
	base := Series{Label: "open-loop baseline (vs loss idx)"}
	for i := range pcs {
		base.X = append(base.X, float64(i))
		base.Y = append(base.Y, results[len(pcs)*len(fbRatios)+i].Consistency)
	}
	series = append(series, base)
	return Experiment{
		ID:     "fig9",
		Title:  "Consistency vs μ_fb/μ_data per loss rate (λ=1.5 kbps, μ_data=30 kbps)",
		XLabel: "fb_over_data_pct",
		YLabel: "consistency",
		Series: series,
		Notes: "Adding feedback bandwidth (data bandwidth fixed) lifts consistency to a\n" +
			"plateau; the gain grows with loss rate (≈+10% at 10% loss, ≈+50% at ≥50%).",
	}
}

// Fig10 reproduces Figure 10: consistency vs μ_hot with feedback; low
// while λ > μ_hot, then a sharp rise to ≈100%.
func Fig10(o Opts) Experiment {
	lambda, muData, muFb := 15_000.0, 38_000.0, 7_000.0
	hotFracs := seq(0.1, 0.9, 0.08)
	cfgs := make([]core.Config, 0, len(hotFracs))
	for _, hotFrac := range hotFracs {
		cfgs = append(cfgs, core.Config{
			Mode: core.ModeFeedback, Seed: o.Seed + int64(hotFrac*100),
			Lambda: lambda, MuData: muData, Lifetime: 30,
			LossRate: 0.10, MuHot: hotFrac, MuCold: 1 - hotFrac, NACKBits: 200,
			MuFb:   muFb,
			Warmup: o.warm(300),
		})
	}
	results := runPar(o, cfgs, o.dur(1500))
	s := Series{Label: "loss=10%"}
	for i, hotFrac := range hotFracs {
		s.X = append(s.X, hotFrac*100)
		s.Y = append(s.Y, results[i].Consistency)
	}
	return Experiment{
		ID:     "fig10",
		Title:  "Consistency vs μ_hot/μ_data with feedback (μ_data=38 kbps, μ_fb=7 kbps, loss=10%)",
		XLabel: "hot_pct_of_data",
		YLabel: "consistency",
		Series: []Series{s},
		Notes:  "λ/μ_data ≈ 39%: consistency is poor below that knee and ≈100% above it.",
	}
}

// Fig11 reproduces Figure 11: the loss rate caps attainable
// consistency; the hot/cold split barely matters once μ_hot > λ.
func Fig11(o Opts) Experiment {
	lambda, muData, muFb := 15_000.0, 38_000.0, 7_000.0
	pcs := []float64{0.01, 0.20, 0.30, 0.40, 0.50}
	hotFracs := seq(0.1, 0.9, 0.08)
	cfgs := make([]core.Config, 0, len(pcs)*len(hotFracs))
	for _, pc := range pcs {
		for _, hotFrac := range hotFracs {
			cfgs = append(cfgs, core.Config{
				Mode: core.ModeFeedback, Seed: o.Seed + int64(pc*100) + int64(hotFrac*100),
				Lambda: lambda, MuData: muData, Lifetime: 30,
				LossRate: pc, MuHot: hotFrac, MuCold: 1 - hotFrac, NACKBits: 200,
				MuFb:   muFb,
				Warmup: o.warm(300),
			})
		}
	}
	results := runPar(o, cfgs, o.dur(1500))
	var series []Series
	for pi, pc := range pcs {
		s := Series{Label: fmt.Sprintf("loss=%.0f%%", pc*100)}
		for hi, hotFrac := range hotFracs {
			s.X = append(s.X, hotFrac*100)
			s.Y = append(s.Y, results[pi*len(hotFracs)+hi].Consistency)
		}
		series = append(series, s)
	}
	return Experiment{
		ID:     "fig11",
		Title:  "Consistency vs hot/cold split per loss rate (μ_data=38 kbps, μ_fb=7 kbps)",
		XLabel: "hot_pct_of_data",
		YLabel: "consistency",
		Series: series,
		Notes:  "Above the knee the curves flatten at a loss-rate-determined ceiling.",
	}
}

// Summary reproduces the paper's §8 quantitative claims: aging
// (two-queue) improves consistency by 10–40%; aging plus feedback by
// 12–50%, at fixed total bandwidth.
func Summary(o Opts) Experiment {
	lambda, muTot := 15_000.0, 45_000.0
	losses := []float64{0.10, 0.20, 0.30, 0.40, 0.50}
	cfgs := make([]core.Config, 0, 3*len(losses))
	for _, pc := range losses {
		seed := o.Seed + int64(pc*100)
		// Open loop: a single FIFO queue through which all records
		// cycle, with the same lifetime-based death for comparability.
		cfgs = append(cfgs,
			core.Config{
				Mode: core.ModeOpenLoop, Seed: seed,
				Lambda: lambda, MuData: muTot, Lifetime: 30, Pd: 0,
				LossRate: pc, Warmup: o.warm(300),
			},
			core.Config{
				Mode: core.ModeTwoQueue, Seed: seed,
				Lambda: lambda, MuData: muTot, Lifetime: 30,
				LossRate: pc, MuHot: 0.9, MuCold: 0.1,
				Warmup: o.warm(300),
			},
			core.Config{
				Mode: core.ModeFeedback, Seed: seed,
				Lambda: lambda, MuData: 0.8 * muTot, Lifetime: 30,
				LossRate: pc, MuHot: 0.9, MuCold: 0.1, NACKBits: 200,
				MuFb:   0.2 * muTot,
				Warmup: o.warm(300),
			})
	}
	results := runPar(o, cfgs, o.dur(1500))
	open := Series{Label: "open-loop (FIFO)"}
	aged := Series{Label: "two-queue aging"}
	fb := Series{Label: "aging+feedback"}
	for i, pc := range losses {
		open.X = append(open.X, pc)
		open.Y = append(open.Y, results[3*i].Consistency)
		aged.X = append(aged.X, pc)
		aged.Y = append(aged.Y, results[3*i+1].Consistency)
		fb.X = append(fb.X, pc)
		fb.Y = append(fb.Y, results[3*i+2].Consistency)
	}
	return Experiment{
		ID:     "summary",
		Title:  "§8 headline: open-loop vs aging vs aging+feedback at fixed μ_tot=45 kbps",
		XLabel: "loss_rate",
		YLabel: "consistency",
		Series: []Series{open, aged, fb},
		Notes:  "Paper: aging +10–40%; aging+feedback +12–50% over open loop.",
	}
}

// ExtTimers is an extension experiment beyond the paper's figures:
// the timer-driven announce/listen variant (RSVP/SAP-style periodic
// refresh with receiver timeout K·T), measuring the false-expiry rate
// against the analytic p^K and the adaptive (scalable-timers)
// estimator, across loss rates.
func ExtTimers(o Opts) Experiment {
	losses := []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6}
	ks := []float64{2, 3, 4}
	type point struct{ k, p float64 }
	type outcome struct{ static, adaptive refresh.Result }
	pts := make([]point, 0, len(ks)*len(losses))
	for _, k := range ks {
		for _, p := range losses {
			pts = append(pts, point{k: k, p: p})
		}
	}
	results := par.Map(o.pool(), pts, func(_ int, pt point) outcome {
		cfg := refresh.Config{
			Seed: o.Seed, Records: 200, Period: 2, K: pt.k, LossRate: pt.p,
			Jitter: 0.05,
		}
		res, err := refresh.Run(cfg, o.dur(4000))
		if err != nil {
			panic(err)
		}
		cfg.Adaptive = true
		resAd, err := refresh.Run(cfg, o.dur(4000))
		if err != nil {
			panic(err)
		}
		return outcome{static: res, adaptive: resAd}
	})
	var series []Series
	for ki, k := range ks {
		ana := Series{Label: fmt.Sprintf("K=%.0f analytic p^K", k)}
		sim := Series{Label: fmt.Sprintf("K=%.0f static", k)}
		ad := Series{Label: fmt.Sprintf("K=%.0f adaptive", k)}
		for li, p := range losses {
			out := results[ki*len(losses)+li]
			ana.X = append(ana.X, p)
			ana.Y = append(ana.Y, out.static.AnalyticRate)
			sim.X = append(sim.X, p)
			sim.Y = append(sim.Y, out.static.FalseExpiryRate)
			ad.X = append(ad.X, p)
			ad.Y = append(ad.Y, out.adaptive.FalseExpiryRate)
		}
		series = append(series, ana, sim, ad)
	}
	return Experiment{
		ID:     "ext-timers",
		Title:  "Extension: false-expiry rate of timer-driven announce/listen vs loss, per timeout multiple K",
		XLabel: "loss_rate",
		YLabel: "false expiries per refresh",
		Series: series,
		Notes: "Beyond the paper: the deployed-protocol refresh-timer model\n" +
			"(timeout = K·T), validated against the analytic p^K, plus the\n" +
			"scalable-timers adaptive estimator of Sharma et al. [46].",
	}
}

// ExtCatchup is an extension experiment quantifying a claim the paper
// makes in prose but never plots: "periodic source-based
// retransmissions … benefit late joiners in an ongoing multicast
// session by reducing the delay such receivers experience in catching
// up". A receiver joins a session with a 200-record table already
// live and we measure the time until its replica reaches 95%
// consistency, as a function of loss rate, with and without feedback.
func ExtCatchup(o Opts) Experiment {
	const (
		records = 200
		target  = 0.95
		muTot   = 45_000.0
	)
	type point struct {
		mode core.Mode
		pc   float64
	}
	pcs := []float64{0.05, 0.1, 0.2, 0.3, 0.4, 0.5}
	pts := make([]point, 0, 2*len(pcs))
	for _, pc := range pcs {
		pts = append(pts, point{mode: core.ModeTwoQueue, pc: pc}, point{mode: core.ModeFeedback, pc: pc})
	}
	results := par.Map(o.pool(), pts, func(_ int, pt point) float64 {
		cfg := core.Config{
			Mode: pt.mode, Seed: o.Seed + int64(pt.pc*100),
			Lambda: 0, InitialRecords: records, Lifetime: 1e6, // static table
			MuData: muTot, LossRate: pt.pc,
			MuHot: 0.5, MuCold: 0.5, SampleInterval: 0.25,
		}
		if pt.mode == core.ModeFeedback {
			cfg.MuData = 0.85 * muTot
			cfg.MuFb = 0.15 * muTot
			cfg.NACKBits = 200
		}
		res := run(cfg, o.dur(500))
		for _, p := range res.Series.Points {
			if p.V >= target {
				return p.T
			}
		}
		return res.Duration // never reached: report the horizon
	})
	open := Series{Label: "announce/listen"}
	fb := Series{Label: "with feedback"}
	for i, pc := range pcs {
		open.X = append(open.X, pc)
		open.Y = append(open.Y, results[2*i])
		fb.X = append(fb.X, pc)
		fb.Y = append(fb.Y, results[2*i+1])
	}
	return Experiment{
		ID:     "ext-catchup",
		Title:  "Extension: late-joiner catch-up time to 95% consistency (200 records, μ_tot=45 kbps)",
		XLabel: "loss_rate",
		YLabel: "seconds",
		Series: []Series{open, fb},
		Notes: "Beyond the paper's figures: the prose claim that cold\n" +
			"retransmissions let late joiners catch up; feedback shortens the tail\n" +
			"because the joiner NACKs exactly what it is missing.",
	}
}

// Run dispatches an experiment by id.
func Run(id string, o Opts) (Experiment, error) {
	switch strings.ToLower(id) {
	case "table1", "1":
		return Table1(o), nil
	case "fig3", "3":
		return Fig3(o), nil
	case "fig4", "4":
		return Fig4(o), nil
	case "fig5", "5":
		return Fig5(o), nil
	case "fig6", "6":
		return Fig6(o), nil
	case "fig8", "8":
		return Fig8(o), nil
	case "fig9", "9":
		return Fig9(o), nil
	case "fig10", "10":
		return Fig10(o), nil
	case "fig11", "11":
		return Fig11(o), nil
	case "summary":
		return Summary(o), nil
	case "ext-timers", "timers":
		return ExtTimers(o), nil
	case "ext-catchup", "catchup":
		return ExtCatchup(o), nil
	default:
		return Experiment{}, fmt.Errorf("experiments: unknown id %q (try table1, fig3-6, fig8-11, summary, ext-timers, ext-catchup)", id)
	}
}

// All returns every experiment id in paper order.
func All() []string {
	return []string{"table1", "fig3", "fig4", "fig5", "fig6", "fig8", "fig9", "fig10", "fig11", "summary", "ext-timers", "ext-catchup"}
}

// seq returns the inclusive grid {from, from+step, …, to}. Each point
// is computed as from + i·step rather than by accumulation, so
// rounding error does not compound across long sweeps and the
// endpoint is included exactly.
func seq(from, to, step float64) []float64 {
	n := int(math.Floor((to-from)/step+1e-9)) + 1
	out := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, from+float64(i)*step)
	}
	return out
}
