// Package experiments regenerates every table and figure of the
// paper's evaluation. Each function returns a structured Experiment
// (labelled series of x/y points) that cmd/ssbench prints as TSV and
// bench_test.go exercises as testing.B benchmarks.
//
// Parameter notes (documented per experiment in EXPERIMENTS.md):
// where the paper's captions are internally inconsistent or OCR-
// damaged, parameters are chosen to reproduce the *shape* and the
// quantitative claims made in the prose, and the deviations are
// recorded in the experiment's Notes field.
package experiments

import (
	"fmt"
	"io"
	"strings"

	"softstate/internal/core"
	"softstate/internal/queueing"
	"softstate/internal/refresh"
)

// Series is one labelled curve.
type Series struct {
	Label string
	X     []float64
	Y     []float64
}

// Experiment is a regenerated table or figure.
type Experiment struct {
	ID     string
	Title  string
	XLabel string
	YLabel string
	Series []Series
	Notes  string
}

// WriteTSV renders the experiment as tab-separated values.
func (e Experiment) WriteTSV(w io.Writer) {
	fmt.Fprintf(w, "# %s: %s\n", e.ID, e.Title)
	if e.Notes != "" {
		for _, line := range strings.Split(e.Notes, "\n") {
			fmt.Fprintf(w, "# %s\n", line)
		}
	}
	fmt.Fprintf(w, "%s", e.XLabel)
	for _, s := range e.Series {
		fmt.Fprintf(w, "\t%s", s.Label)
	}
	fmt.Fprintln(w)
	// All series share the X grid by construction; use the longest.
	var xs []float64
	for _, s := range e.Series {
		if len(s.X) > len(xs) {
			xs = s.X
		}
	}
	for i, x := range xs {
		fmt.Fprintf(w, "%.4g", x)
		for _, s := range e.Series {
			if i < len(s.Y) {
				fmt.Fprintf(w, "\t%.4f", s.Y[i])
			} else {
				fmt.Fprintf(w, "\t")
			}
		}
		fmt.Fprintln(w)
	}
}

// Opts controls experiment fidelity.
type Opts struct {
	// Quick shortens simulations (for unit tests and CI smoke runs);
	// the full durations match EXPERIMENTS.md.
	Quick bool
	Seed  int64
}

func (o Opts) dur(full float64) float64 {
	if o.Quick {
		return full / 5
	}
	return full
}

func (o Opts) warm(full float64) float64 {
	if o.Quick {
		return full / 5
	}
	return full
}

func run(cfg core.Config, dur float64) core.Result {
	e, err := core.NewEngine(cfg)
	if err != nil {
		panic(fmt.Sprintf("experiments: %v", err))
	}
	return e.Run(dur)
}

// Table1 compares the empirical state-change probabilities against the
// paper's Table 1 closed forms.
func Table1(o Opts) Experiment {
	pc, pd := 0.25, 0.20
	res := run(core.Config{
		Mode: core.ModeOpenLoop, Seed: o.Seed + 1,
		Lambda: 20_000, MuData: 128_000, Pd: pd, LossRate: pc,
		Warmup: o.warm(200),
	}, o.dur(3000))
	want := queueing.OpenLoop{Lambda: 1, MuCh: 10, Pc: pc, Pd: pd}.Table1()
	got := res.TransitionProbabilities()
	mk := func(label string, vals [3]float64, sim [3]float64) (Series, Series) {
		return Series{Label: label + " analytic", X: []float64{0, 1, 2}, Y: vals[:]},
			Series{Label: label + " simulated", X: []float64{0, 1, 2}, Y: sim[:]}
	}
	ia, is := mk("I-enter", want.IEnter, got[0])
	ca, cs := mk("C-enter", want.CEnter, got[1])
	return Experiment{
		ID:     "table1",
		Title:  "State change probabilities on leaving the server (exit I=0, C=1, D=2)",
		XLabel: "exit_state",
		YLabel: "probability",
		Series: []Series{ia, is, ca, cs},
		Notes:  fmt.Sprintf("p_c=%.2f p_d=%.2f; analytic rows: {p_c(1-p_d), (1-p_c)(1-p_d), p_d} and {0, 1-p_d, p_d}", pc, pd),
	}
}

// Fig3 reproduces Figure 3: open-loop consistency vs channel loss rate
// for several death rates, analytic and simulated.
func Fig3(o Opts) Experiment {
	lambda, mu := 20_000.0, 128_000.0
	deathRates := []float64{0.20, 0.25, 0.30, 0.40}
	losses := seq(0, 0.9, 0.1)
	var series []Series
	for _, pd := range deathRates {
		ana := Series{Label: fmt.Sprintf("pd=%.2f analytic", pd)}
		sim := Series{Label: fmt.Sprintf("pd=%.2f simulated", pd)}
		for _, pc := range losses {
			m := queueing.OpenLoop{Lambda: lambda, MuCh: mu, Pc: pc, Pd: pd}
			ana.X = append(ana.X, pc)
			ana.Y = append(ana.Y, m.BusyConsistency())
			res := run(core.Config{
				Mode: core.ModeOpenLoop, Seed: o.Seed + int64(pd*100) + int64(pc*1000),
				Lambda: lambda, MuData: mu, Pd: pd, LossRate: pc,
				Warmup: o.warm(200),
			}, o.dur(2000))
			sim.X = append(sim.X, pc)
			sim.Y = append(sim.Y, res.Consistency)
		}
		series = append(series, ana, sim)
	}
	return Experiment{
		ID:     "fig3",
		Title:  "Open-loop consistency vs loss rate, per announcement death rate",
		XLabel: "loss_rate",
		YLabel: "E[c(t)] over live set",
		Series: series,
		Notes: "λ=20 kbps, μ_ch=128 kbps. The paper's caption lists p_d down to 0.10,\n" +
			"which violates its own stability condition p_d > λ/μ_ch ≈ 0.156 at these\n" +
			"rates; we sweep stable death rates. Shape: consistency falls with loss and\n" +
			"with death rate, matching the paper.",
	}
}

// Fig4 reproduces Figure 4: the fraction of bandwidth consumed by
// redundant transmissions vs loss rate.
func Fig4(o Opts) Experiment {
	lambda, mu := 20_000.0, 128_000.0
	pd := 0.20
	losses := seq(0, 0.9, 0.1)
	ana := Series{Label: "analytic λ̂_C/λ̂"}
	anaTen := Series{Label: "analytic pd=0.10"}
	sim := Series{Label: "simulated"}
	for _, pc := range losses {
		m := queueing.OpenLoop{Lambda: lambda, MuCh: mu, Pc: pc, Pd: pd}
		ana.X = append(ana.X, pc)
		ana.Y = append(ana.Y, m.RedundantFraction())
		m10 := queueing.OpenLoop{Lambda: lambda, MuCh: mu, Pc: pc, Pd: 0.10}
		anaTen.X = append(anaTen.X, pc)
		anaTen.Y = append(anaTen.Y, m10.RedundantFraction())
		res := run(core.Config{
			Mode: core.ModeOpenLoop, Seed: o.Seed + int64(pc*1000),
			Lambda: lambda, MuData: mu, Pd: pd, LossRate: pc,
			Warmup: o.warm(200),
		}, o.dur(2000))
		sim.X = append(sim.X, pc)
		sim.Y = append(sim.Y, res.RedundantFraction)
	}
	return Experiment{
		ID:     "fig4",
		Title:  "Bandwidth wasted on redundant transmissions vs loss rate",
		XLabel: "loss_rate",
		YLabel: "redundant fraction of delivered transmissions",
		Series: []Series{ana, anaTen, sim},
		Notes: "At p_d=0.10 and low loss ≈90% of transmissions are redundant —\n" +
			"the paper's headline waste figure (simulated at p_d=0.20 for stability).",
	}
}

// Fig5 reproduces Figure 5: two-queue consistency vs hot bandwidth for
// several loss rates; the knee sits at μ_hot ≈ λ.
func Fig5(o Opts) Experiment {
	lambda, muData := 15_000.0, 45_000.0
	var series []Series
	for _, pc := range []float64{0.10, 0.30, 0.50} {
		s := Series{Label: fmt.Sprintf("loss=%.0f%%", pc*100)}
		for _, hotFrac := range seq(0.1, 0.9, 0.1) {
			res := run(core.Config{
				Mode: core.ModeTwoQueue, Seed: o.Seed + int64(pc*100) + int64(hotFrac*10),
				Lambda: lambda, MuData: muData, Lifetime: 30,
				LossRate: pc, MuHot: hotFrac, MuCold: 1 - hotFrac,
				Warmup: o.warm(300),
			}, o.dur(1500))
			s.X = append(s.X, hotFrac*muData/1000) // μ_hot in kbps
			s.Y = append(s.Y, res.Consistency)
		}
		series = append(series, s)
	}
	return Experiment{
		ID:     "fig5",
		Title:  "Two-queue consistency vs μ_hot (μ_data=45 kbps, λ=15 kbps)",
		XLabel: "mu_hot_kbps",
		YLabel: "consistency",
		Series: series,
		Notes: "Knee at μ_hot ≈ λ = 15 kbps; beyond it more hot bandwidth does not\n" +
			"help. Death is lifetime-based (mean 30 s) as in the paper's §4 workload.",
	}
}

// Fig6 reproduces Figure 6: receive latency vs μ_cold/μ_hot under
// strict sharing; T_rec rises (slow retransmissions enter the average)
// then falls (retransmissions get faster).
func Fig6(o Opts) Experiment {
	lambda, muHot := 15_000.0, 18_000.0
	lat := Series{Label: "T_rec (s)"}
	deliv := Series{Label: "delivery ratio"}
	for _, ratio := range []float64{0.001, 0.01, 0.05, 0.1, 0.2, 0.3, 0.5, 0.75, 1, 1.5, 2, 3} {
		res := run(core.Config{
			Mode: core.ModeTwoQueue, Seed: o.Seed + int64(ratio*1000), StrictShare: true,
			Lambda: lambda, Lifetime: 60, LossRate: 0.25,
			MuHot: muHot, MuCold: ratio * muHot,
			Warmup: o.warm(300),
		}, o.dur(2500))
		lat.X = append(lat.X, ratio)
		lat.Y = append(lat.Y, res.MeanLatency)
		deliv.X = append(deliv.X, ratio)
		deliv.Y = append(deliv.Y, res.DeliveryRatio)
	}
	mm1 := queueing.MM1{Lambda: lambda / 1000, Mu: muHot / 1000}
	return Experiment{
		ID:     "fig6",
		Title:  "Receive latency vs μ_cold/μ_hot (strict sharing)",
		XLabel: "mu_cold_over_mu_hot",
		YLabel: "seconds",
		Series: []Series{lat, deliv},
		Notes: fmt.Sprintf("At ratio→0 the system is the M/M/1 of the paper's aside: 1/(μ−λ) = %.3f s\n"+
			"over first-shot deliveries only; latency first rises as slow cold\n"+
			"retransmissions join the average, then falls as cold bandwidth grows.", mm1.MeanSojourn()),
	}
}

// Fig8 reproduces Figure 8: consistency over time for several feedback
// bandwidth shares at 40% loss.
func Fig8(o Opts) Experiment {
	lambda, muTot := 15_000.0, 45_000.0
	var series []Series
	for _, fbFrac := range []float64{0, 0.1, 0.3, 0.5, 0.7} {
		cfg := core.Config{
			Mode: core.ModeFeedback, Seed: o.Seed + int64(fbFrac*100),
			Lambda: lambda, MuData: (1 - fbFrac) * muTot, Lifetime: 30,
			LossRate: 0.40, MuHot: 0.9, MuCold: 0.1, NACKBits: 200,
			MuFb:           fbFrac * muTot,
			SampleInterval: 10,
		}
		if fbFrac == 0 {
			cfg.Mode = core.ModeTwoQueue
			cfg.MuData = muTot
		}
		res := run(cfg, o.dur(2000))
		s := Series{Label: fmt.Sprintf("fb/tot=%.0f%%", fbFrac*100)}
		for _, p := range res.Series.Points {
			s.X = append(s.X, p.T)
			s.Y = append(s.Y, p.V)
		}
		series = append(series, s)
	}
	return Experiment{
		ID:     "fig8",
		Title:  "Consistency over time per feedback share (λ=15 kbps, μ_tot=45 kbps, loss=40%)",
		XLabel: "time_s",
		YLabel: "consistency",
		Series: series,
		Notes: "Open loop ≈80%; moderate feedback ≈99%; collapse once\n" +
			"μ_data < λ/(1-p_c) = 25 kbps, i.e. fb share > ~44%.",
	}
}

// Fig9 reproduces Figure 9: consistency vs feedback/data bandwidth
// ratio for several loss rates (data bandwidth held fixed).
func Fig9(o Opts) Experiment {
	lambda, muData := 1_500.0, 30_000.0
	var series []Series
	for _, pc := range []float64{0.10, 0.30, 0.50, 0.70} {
		s := Series{Label: fmt.Sprintf("loss=%.0f%%", pc*100)}
		for _, fbRatio := range []float64{0.001, 0.005, 0.01, 0.02, 0.05, 0.1, 0.2, 0.4, 0.7, 1.0} {
			res := run(core.Config{
				Mode: core.ModeFeedback, Seed: o.Seed + int64(pc*100) + int64(fbRatio*1000),
				Lambda: lambda, MuData: muData, Lifetime: 30,
				LossRate: pc, MuHot: 0.9, MuCold: 0.1, NACKBits: 200,
				MuFb:   fbRatio * muData,
				Warmup: o.warm(300),
			}, o.dur(1500))
			s.X = append(s.X, fbRatio*100)
			s.Y = append(s.Y, res.Consistency)
		}
		series = append(series, s)
	}
	// Open-loop baselines at each loss rate for the improvement claim.
	base := Series{Label: "open-loop baseline (vs loss idx)"}
	for i, pc := range []float64{0.10, 0.30, 0.50, 0.70} {
		res := run(core.Config{
			Mode: core.ModeTwoQueue, Seed: o.Seed + 999 + int64(i),
			Lambda: lambda, MuData: muData, Lifetime: 30,
			LossRate: pc, MuHot: 0.9, MuCold: 0.1,
			Warmup: o.warm(300),
		}, o.dur(1500))
		base.X = append(base.X, float64(i))
		base.Y = append(base.Y, res.Consistency)
	}
	series = append(series, base)
	return Experiment{
		ID:     "fig9",
		Title:  "Consistency vs μ_fb/μ_data per loss rate (λ=1.5 kbps, μ_data=30 kbps)",
		XLabel: "fb_over_data_pct",
		YLabel: "consistency",
		Series: series,
		Notes: "Adding feedback bandwidth (data bandwidth fixed) lifts consistency to a\n" +
			"plateau; the gain grows with loss rate (≈+10% at 10% loss, ≈+50% at ≥50%).",
	}
}

// Fig10 reproduces Figure 10: consistency vs μ_hot with feedback; low
// while λ > μ_hot, then a sharp rise to ≈100%.
func Fig10(o Opts) Experiment {
	lambda, muData, muFb := 15_000.0, 38_000.0, 7_000.0
	s := Series{Label: "loss=10%"}
	for _, hotFrac := range seq(0.1, 0.9, 0.08) {
		res := run(core.Config{
			Mode: core.ModeFeedback, Seed: o.Seed + int64(hotFrac*100),
			Lambda: lambda, MuData: muData, Lifetime: 30,
			LossRate: 0.10, MuHot: hotFrac, MuCold: 1 - hotFrac, NACKBits: 200,
			MuFb:   muFb,
			Warmup: o.warm(300),
		}, o.dur(1500))
		s.X = append(s.X, hotFrac*100)
		s.Y = append(s.Y, res.Consistency)
	}
	return Experiment{
		ID:     "fig10",
		Title:  "Consistency vs μ_hot/μ_data with feedback (μ_data=38 kbps, μ_fb=7 kbps, loss=10%)",
		XLabel: "hot_pct_of_data",
		YLabel: "consistency",
		Series: []Series{s},
		Notes:  "λ/μ_data ≈ 39%: consistency is poor below that knee and ≈100% above it.",
	}
}

// Fig11 reproduces Figure 11: the loss rate caps attainable
// consistency; the hot/cold split barely matters once μ_hot > λ.
func Fig11(o Opts) Experiment {
	lambda, muData, muFb := 15_000.0, 38_000.0, 7_000.0
	var series []Series
	for _, pc := range []float64{0.01, 0.20, 0.30, 0.40, 0.50} {
		s := Series{Label: fmt.Sprintf("loss=%.0f%%", pc*100)}
		for _, hotFrac := range seq(0.1, 0.9, 0.08) {
			res := run(core.Config{
				Mode: core.ModeFeedback, Seed: o.Seed + int64(pc*100) + int64(hotFrac*100),
				Lambda: lambda, MuData: muData, Lifetime: 30,
				LossRate: pc, MuHot: hotFrac, MuCold: 1 - hotFrac, NACKBits: 200,
				MuFb:   muFb,
				Warmup: o.warm(300),
			}, o.dur(1500))
			s.X = append(s.X, hotFrac*100)
			s.Y = append(s.Y, res.Consistency)
		}
		series = append(series, s)
	}
	return Experiment{
		ID:     "fig11",
		Title:  "Consistency vs hot/cold split per loss rate (μ_data=38 kbps, μ_fb=7 kbps)",
		XLabel: "hot_pct_of_data",
		YLabel: "consistency",
		Series: series,
		Notes:  "Above the knee the curves flatten at a loss-rate-determined ceiling.",
	}
}

// Summary reproduces the paper's §8 quantitative claims: aging
// (two-queue) improves consistency by 10–40%; aging plus feedback by
// 12–50%, at fixed total bandwidth.
func Summary(o Opts) Experiment {
	lambda, muTot := 15_000.0, 45_000.0
	losses := []float64{0.10, 0.20, 0.30, 0.40, 0.50}
	open := Series{Label: "open-loop (FIFO)"}
	aged := Series{Label: "two-queue aging"}
	fb := Series{Label: "aging+feedback"}
	for _, pc := range losses {
		seed := o.Seed + int64(pc*100)
		// Open loop: a single FIFO queue through which all records
		// cycle, with the same lifetime-based death for comparability.
		openRes := run(core.Config{
			Mode: core.ModeOpenLoop, Seed: seed,
			Lambda: lambda, MuData: muTot, Lifetime: 30, Pd: 0,
			LossRate: pc, Warmup: o.warm(300),
		}, o.dur(1500))
		ra := run(core.Config{
			Mode: core.ModeTwoQueue, Seed: seed,
			Lambda: lambda, MuData: muTot, Lifetime: 30,
			LossRate: pc, MuHot: 0.9, MuCold: 0.1,
			Warmup: o.warm(300),
		}, o.dur(1500))
		rf := run(core.Config{
			Mode: core.ModeFeedback, Seed: seed,
			Lambda: lambda, MuData: 0.8 * muTot, Lifetime: 30,
			LossRate: pc, MuHot: 0.9, MuCold: 0.1, NACKBits: 200,
			MuFb:   0.2 * muTot,
			Warmup: o.warm(300),
		}, o.dur(1500))
		open.X = append(open.X, pc)
		open.Y = append(open.Y, openRes.Consistency)
		aged.X = append(aged.X, pc)
		aged.Y = append(aged.Y, ra.Consistency)
		fb.X = append(fb.X, pc)
		fb.Y = append(fb.Y, rf.Consistency)
	}
	return Experiment{
		ID:     "summary",
		Title:  "§8 headline: open-loop vs aging vs aging+feedback at fixed μ_tot=45 kbps",
		XLabel: "loss_rate",
		YLabel: "consistency",
		Series: []Series{open, aged, fb},
		Notes:  "Paper: aging +10–40%; aging+feedback +12–50% over open loop.",
	}
}

// ExtTimers is an extension experiment beyond the paper's figures:
// the timer-driven announce/listen variant (RSVP/SAP-style periodic
// refresh with receiver timeout K·T), measuring the false-expiry rate
// against the analytic p^K and the adaptive (scalable-timers)
// estimator, across loss rates.
func ExtTimers(o Opts) Experiment {
	losses := []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6}
	var series []Series
	for _, k := range []float64{2, 3, 4} {
		ana := Series{Label: fmt.Sprintf("K=%.0f analytic p^K", k)}
		sim := Series{Label: fmt.Sprintf("K=%.0f static", k)}
		ad := Series{Label: fmt.Sprintf("K=%.0f adaptive", k)}
		for _, p := range losses {
			cfg := refresh.Config{
				Seed: o.Seed, Records: 200, Period: 2, K: k, LossRate: p,
				Jitter: 0.05,
			}
			res, err := refresh.Run(cfg, o.dur(4000))
			if err != nil {
				panic(err)
			}
			cfg.Adaptive = true
			resAd, err := refresh.Run(cfg, o.dur(4000))
			if err != nil {
				panic(err)
			}
			ana.X = append(ana.X, p)
			ana.Y = append(ana.Y, res.AnalyticRate)
			sim.X = append(sim.X, p)
			sim.Y = append(sim.Y, res.FalseExpiryRate)
			ad.X = append(ad.X, p)
			ad.Y = append(ad.Y, resAd.FalseExpiryRate)
		}
		series = append(series, ana, sim, ad)
	}
	return Experiment{
		ID:     "ext-timers",
		Title:  "Extension: false-expiry rate of timer-driven announce/listen vs loss, per timeout multiple K",
		XLabel: "loss_rate",
		YLabel: "false expiries per refresh",
		Series: series,
		Notes: "Beyond the paper: the deployed-protocol refresh-timer model\n" +
			"(timeout = K·T), validated against the analytic p^K, plus the\n" +
			"scalable-timers adaptive estimator of Sharma et al. [46].",
	}
}

// ExtCatchup is an extension experiment quantifying a claim the paper
// makes in prose but never plots: "periodic source-based
// retransmissions … benefit late joiners in an ongoing multicast
// session by reducing the delay such receivers experience in catching
// up". A receiver joins a session with a 200-record table already
// live and we measure the time until its replica reaches 95%
// consistency, as a function of loss rate, with and without feedback.
func ExtCatchup(o Opts) Experiment {
	const (
		records = 200
		target  = 0.95
		muTot   = 45_000.0
	)
	catchup := func(mode core.Mode, pc float64) float64 {
		cfg := core.Config{
			Mode: mode, Seed: o.Seed + int64(pc*100),
			Lambda: 0, InitialRecords: records, Lifetime: 1e6, // static table
			MuData: muTot, LossRate: pc,
			MuHot: 0.5, MuCold: 0.5, SampleInterval: 0.25,
		}
		if mode == core.ModeFeedback {
			cfg.MuData = 0.85 * muTot
			cfg.MuFb = 0.15 * muTot
			cfg.NACKBits = 200
		}
		res := run(cfg, o.dur(500))
		for _, p := range res.Series.Points {
			if p.V >= target {
				return p.T
			}
		}
		return res.Duration // never reached: report the horizon
	}
	open := Series{Label: "announce/listen"}
	fb := Series{Label: "with feedback"}
	for _, pc := range []float64{0.05, 0.1, 0.2, 0.3, 0.4, 0.5} {
		open.X = append(open.X, pc)
		open.Y = append(open.Y, catchup(core.ModeTwoQueue, pc))
		fb.X = append(fb.X, pc)
		fb.Y = append(fb.Y, catchup(core.ModeFeedback, pc))
	}
	return Experiment{
		ID:     "ext-catchup",
		Title:  "Extension: late-joiner catch-up time to 95% consistency (200 records, μ_tot=45 kbps)",
		XLabel: "loss_rate",
		YLabel: "seconds",
		Series: []Series{open, fb},
		Notes: "Beyond the paper's figures: the prose claim that cold\n" +
			"retransmissions let late joiners catch up; feedback shortens the tail\n" +
			"because the joiner NACKs exactly what it is missing.",
	}
}

// Run dispatches an experiment by id.
func Run(id string, o Opts) (Experiment, error) {
	switch strings.ToLower(id) {
	case "table1", "1":
		return Table1(o), nil
	case "fig3", "3":
		return Fig3(o), nil
	case "fig4", "4":
		return Fig4(o), nil
	case "fig5", "5":
		return Fig5(o), nil
	case "fig6", "6":
		return Fig6(o), nil
	case "fig8", "8":
		return Fig8(o), nil
	case "fig9", "9":
		return Fig9(o), nil
	case "fig10", "10":
		return Fig10(o), nil
	case "fig11", "11":
		return Fig11(o), nil
	case "summary":
		return Summary(o), nil
	case "ext-timers", "timers":
		return ExtTimers(o), nil
	case "ext-catchup", "catchup":
		return ExtCatchup(o), nil
	default:
		return Experiment{}, fmt.Errorf("experiments: unknown id %q (try table1, fig3-6, fig8-11, summary, ext-timers, ext-catchup)", id)
	}
}

// All returns every experiment id in paper order.
func All() []string {
	return []string{"table1", "fig3", "fig4", "fig5", "fig6", "fig8", "fig9", "fig10", "fig11", "summary", "ext-timers", "ext-catchup"}
}

func seq(from, to, step float64) []float64 {
	var out []float64
	for x := from; x <= to+1e-9; x += step {
		out = append(out, x)
	}
	return out
}
