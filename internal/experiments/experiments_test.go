package experiments

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

var opts = Opts{Quick: true, Seed: 1}

func find(e Experiment, label string) Series {
	for _, s := range e.Series {
		if s.Label == label {
			return s
		}
	}
	return Series{}
}

func TestAllIDsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment sweeps are slow")
	}
	for _, id := range All() {
		exp, err := Run(id, opts)
		if err != nil {
			t.Fatalf("Run(%q): %v", id, err)
		}
		if exp.ID != id {
			t.Errorf("Run(%q) returned id %q", id, exp.ID)
		}
		if len(exp.Series) == 0 {
			t.Errorf("%s has no series", id)
		}
		for _, s := range exp.Series {
			if len(s.X) != len(s.Y) {
				t.Errorf("%s series %q has mismatched X/Y", id, s.Label)
			}
		}
	}
}

func TestUnknownID(t *testing.T) {
	if _, err := Run("fig99", opts); err == nil {
		t.Error("unknown id accepted")
	}
}

func TestTable1MatchesAnalytic(t *testing.T) {
	exp := Table1(opts)
	ana := find(exp, "I-enter analytic")
	sim := find(exp, "I-enter simulated")
	for i := range ana.Y {
		if math.Abs(ana.Y[i]-sim.Y[i]) > 0.03 {
			t.Errorf("I-enter exit %d: analytic %.3f vs simulated %.3f", i, ana.Y[i], sim.Y[i])
		}
	}
	cs := find(exp, "C-enter simulated")
	if cs.Y[0] != 0 {
		t.Errorf("C-enter must never exit inconsistent: %v", cs.Y[0])
	}
}

func TestFig3SimTracksAnalytic(t *testing.T) {
	exp := Fig3(opts)
	for i := 0; i+1 < len(exp.Series); i += 2 {
		ana, sim := exp.Series[i], exp.Series[i+1]
		for j := range ana.Y {
			if math.Abs(ana.Y[j]-sim.Y[j]) > 0.05 {
				t.Errorf("%s vs %s at loss %.1f: %.3f vs %.3f",
					ana.Label, sim.Label, ana.X[j], ana.Y[j], sim.Y[j])
			}
		}
		// Monotone decrease with loss.
		for j := 1; j < len(ana.Y); j++ {
			if ana.Y[j] > ana.Y[j-1] {
				t.Errorf("%s not monotone at %d", ana.Label, j)
			}
		}
	}
}

func TestFig4WasteAnchor(t *testing.T) {
	exp := Fig4(opts)
	ten := find(exp, "analytic pd=0.10")
	if math.Abs(ten.Y[0]-0.9) > 1e-9 {
		t.Errorf("pd=0.10 zero-loss waste = %v, want 0.90", ten.Y[0])
	}
}

func TestFig5Knee(t *testing.T) {
	exp := Fig5(opts)
	s := find(exp, "loss=10%")
	// First point (μ_hot ≈ 4.5 kbps < λ) far below last (≈ 40 kbps).
	if s.Y[0] > 0.6 || s.Y[len(s.Y)-1] < 0.85 {
		t.Errorf("fig5 knee shape wrong: first %.3f last %.3f", s.Y[0], s.Y[len(s.Y)-1])
	}
}

func TestFig6RiseThenFall(t *testing.T) {
	exp := Fig6(opts)
	lat := exp.Series[0]
	first, last := lat.Y[0], lat.Y[len(lat.Y)-1]
	peak := 0.0
	for _, v := range lat.Y {
		peak = math.Max(peak, v)
	}
	if !(peak > first && peak > last) {
		t.Errorf("fig6 latency not rise-then-fall: first %.2f peak %.2f last %.2f", first, peak, last)
	}
}

func TestFig8OpenLoopVsFeedback(t *testing.T) {
	exp := Fig8(opts)
	open := find(exp, "fb/tot=0%")
	good := find(exp, "fb/tot=30%")
	collapsed := find(exp, "fb/tot=70%")
	tail := func(s Series) float64 {
		n := len(s.Y)
		sum := 0.0
		for _, v := range s.Y[n/2:] {
			sum += v
		}
		return sum / float64(n-n/2)
	}
	if tail(open) < 0.7 || tail(open) > 0.9 {
		t.Errorf("open-loop tail = %.3f, want ≈0.8", tail(open))
	}
	if tail(good) < 0.95 {
		t.Errorf("fb=30%% tail = %.3f, want ≥0.95", tail(good))
	}
	if tail(collapsed) > tail(open) {
		t.Errorf("fb=70%% (%.3f) should collapse below open loop (%.3f)", tail(collapsed), tail(open))
	}
}

func TestFig10Knee(t *testing.T) {
	exp := Fig10(opts)
	s := exp.Series[0]
	if s.Y[0] > 0.5 {
		t.Errorf("below-knee consistency %.3f too high", s.Y[0])
	}
	if s.Y[len(s.Y)-1] < 0.95 {
		t.Errorf("above-knee consistency %.3f too low", s.Y[len(s.Y)-1])
	}
}

func TestFig11LossCapsCeiling(t *testing.T) {
	exp := Fig11(opts)
	low := find(exp, "loss=1%")
	high := find(exp, "loss=50%")
	// Compare mid-sweep ceilings (above the knee but before hot
	// bandwidth has absorbed the highest loss rate's repair load).
	mid := 6 // ≈ hot 58%
	if low.Y[mid] <= high.Y[mid] {
		t.Errorf("higher loss should cap consistency: 1%%→%.3f vs 50%%→%.3f", low.Y[mid], high.Y[mid])
	}
}

func TestSummaryOrdering(t *testing.T) {
	exp := Summary(opts)
	open := find(exp, "open-loop (FIFO)")
	aged := find(exp, "two-queue aging")
	fb := find(exp, "aging+feedback")
	for i := range open.Y {
		if !(aged.Y[i] > open.Y[i]) {
			t.Errorf("aging (%.3f) not above open loop (%.3f) at loss %.1f", aged.Y[i], open.Y[i], open.X[i])
		}
		if !(fb.Y[i] > aged.Y[i]) {
			t.Errorf("feedback (%.3f) not above aging (%.3f) at loss %.1f", fb.Y[i], aged.Y[i], open.X[i])
		}
	}
}

func TestWriteTSV(t *testing.T) {
	exp := Experiment{
		ID: "x", Title: "t", XLabel: "x", YLabel: "y",
		Notes:  "line1\nline2",
		Series: []Series{{Label: "a", X: []float64{1, 2}, Y: []float64{3, 4}}},
	}
	var buf bytes.Buffer
	exp.WriteTSV(&buf)
	out := buf.String()
	for _, want := range []string{"# x: t", "# line1", "# line2", "x\ta", "1\t3.0000", "2\t4.0000"} {
		if !strings.Contains(out, want) {
			t.Errorf("TSV missing %q:\n%s", want, out)
		}
	}
}

func TestSeq(t *testing.T) {
	cases := []struct {
		from, to, step float64
		n              int
	}{
		{0, 1, 0.25, 5},
		// The figure grids: accumulation (x += step) drifts at binary
		// fractions like 0.1 and would yield 0.7999999999999999 instead
		// of 0.8; each point must be computed as from + i*step so the
		// endpoints land exactly and derived per-point seeds are stable.
		{0, 0.9, 0.1, 10},
		{0.1, 0.9, 0.1, 9},
		{0.1, 0.9, 0.08, 11},
	}
	for _, c := range cases {
		xs := seq(c.from, c.to, c.step)
		if len(xs) != c.n {
			t.Errorf("seq(%v,%v,%v) has %d points, want %d", c.from, c.to, c.step, len(xs), c.n)
			continue
		}
		if xs[0] != c.from {
			t.Errorf("seq(%v,%v,%v) starts at %v", c.from, c.to, c.step, xs[0])
		}
		for i, x := range xs {
			if want := c.from + float64(i)*c.step; x != want {
				t.Errorf("seq(%v,%v,%v)[%d] = %v, want exactly %v", c.from, c.to, c.step, i, x, want)
			}
		}
	}
	// Exact endpoint inclusion at the drift-prone grid.
	xs := seq(0, 0.9, 0.1)
	if xs[len(xs)-1] != 0.9 {
		t.Errorf("seq(0,0.9,0.1) endpoint = %v, want exactly 0.9", xs[len(xs)-1])
	}
}

func TestExtCatchupShape(t *testing.T) {
	exp := ExtCatchup(opts)
	open := find(exp, "announce/listen")
	fb := find(exp, "with feedback")
	// Catch-up time must grow with loss for the open-loop joiner.
	if !(open.Y[len(open.Y)-1] > open.Y[0]) {
		t.Errorf("open-loop catch-up did not grow with loss: %v", open.Y)
	}
	// At the highest loss, feedback should not be slower.
	last := len(open.Y) - 1
	if fb.Y[last] > open.Y[last]+1e-9 {
		t.Errorf("feedback catch-up %.2f slower than open loop %.2f at 50%% loss",
			fb.Y[last], open.Y[last])
	}
}

func TestExtTimersShape(t *testing.T) {
	exp := ExtTimers(opts)
	ana := find(exp, "K=3 analytic p^K")
	sim := find(exp, "K=3 static")
	for i := range ana.Y {
		// Same order of magnitude across the sweep (Monte-Carlo band).
		if sim.Y[i] > ana.Y[i]*5+0.01 {
			t.Errorf("false-expiry %.5f far above analytic %.5f at loss %.2f",
				sim.Y[i], ana.Y[i], ana.X[i])
		}
	}
	// Rates must grow with loss.
	if !(sim.Y[len(sim.Y)-1] > sim.Y[0]) {
		t.Errorf("static false-expiry not increasing: %v", sim.Y)
	}
}
