package experiments

import (
	"strings"
	"testing"

	"softstate/internal/obs"
)

// TestParallelMatchesSerial is the golden determinism test: for every
// experiment ID, the TSV rendered from a parallel sweep (-procs=8)
// must be byte-identical to the serial reference (-procs=1) at the
// same seed. This pins the contract documented on Opts.Procs — worker
// count trades wall-clock time only, never numbers.
func TestParallelMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("full sweep comparison; skipped in -short")
	}
	for _, id := range All() {
		id := id
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			serial, err := Run(id, Opts{Quick: true, Seed: 7, Procs: 1})
			if err != nil {
				t.Fatal(err)
			}
			parallel, err := Run(id, Opts{Quick: true, Seed: 7, Procs: 8})
			if err != nil {
				t.Fatal(err)
			}
			var a, b strings.Builder
			serial.WriteTSV(&a)
			parallel.WriteTSV(&b)
			if a.String() != b.String() {
				t.Errorf("procs=8 output differs from procs=1 for %s:\n--- serial ---\n%s\n--- parallel ---\n%s",
					id, a.String(), b.String())
			}
		})
	}
}

// TestSweepInstruments checks that a sweep publishes its progress
// through the registry handed in via Opts.Obs.
func TestSweepInstruments(t *testing.T) {
	reg := obs.New("test")
	if _, err := Run("fig4", Opts{Quick: true, Seed: 1, Procs: 2, Obs: reg}); err != nil {
		t.Fatal(err)
	}
	done := reg.Counter("sweep_points_completed_total")
	if done.Value() != 10 { // fig4 sweeps seq(0, 0.9, 0.1) = 10 loss rates
		t.Errorf("sweep_points_completed_total = %d, want 10", done.Value())
	}
	if busy := reg.Gauge("sweep_workers_busy").Value(); busy != 0 {
		t.Errorf("sweep_workers_busy = %v after sweep, want 0", busy)
	}
}

// TestHeadline checks every experiment exposes a finite headline
// metric with a name (the quantity ssbench -json reports).
func TestHeadline(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every experiment; skipped in -short")
	}
	for _, id := range All() {
		id := id
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			e, err := Run(id, Opts{Quick: true, Seed: 1})
			if err != nil {
				t.Fatal(err)
			}
			name, v := e.Headline()
			if name == "" {
				t.Fatalf("no headline metric defined for %s", id)
			}
			if v != v || v < -1e9 || v > 1e9 { // NaN or absurd
				t.Errorf("%s headline %s = %v, want finite", id, name, v)
			}
		})
	}
}
