package gossip

import (
	"fmt"
	"net"
	"testing"
	"time"

	"softstate/internal/namespace"
	"softstate/internal/obs"
	"softstate/internal/staleness"
	"softstate/internal/transport"
)

// meshAddr names node i's endpoint.
func meshAddr(i int) transport.MemAddr {
	return transport.MemAddr(fmt.Sprintf("g/%d", i))
}

// buildMesh constructs (but does not start) an n-node full mesh over
// nw. Every node knows every other node's address up front.
func buildMesh(t *testing.T, nw *transport.MemNetwork, n int, cfg Config) []*Node {
	t.Helper()
	addrs := make([]net.Addr, n)
	for i := range addrs {
		addrs[i] = meshAddr(i)
	}
	nodes := make([]*Node, n)
	for i := range nodes {
		c := cfg
		c.NodeID = uint64(i + 1)
		c.Conn = nw.Endpoint(meshAddr(i))
		c.Peers = addrs
		c.Seed = int64(1000 + i)
		node, err := New(c)
		if err != nil {
			t.Fatalf("New(node %d): %v", i, err)
		}
		nodes[i] = node
	}
	return nodes
}

func startAll(nodes []*Node) {
	for _, n := range nodes {
		n.Start()
	}
}

func closeAll(nodes []*Node) {
	for _, n := range nodes {
		if n != nil {
			n.Close()
		}
	}
}

// waitFor polls cond until it holds or the deadline lapses.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// converged reports whether every node's root digest equals want.
func converged(nodes []*Node, want namespace.Digest) bool {
	for _, n := range nodes {
		if n.RootDigest() != want {
			return false
		}
	}
	return true
}

func TestSpreadRoundsSanity(t *testing.T) {
	if got := SpreadRounds(1, 0.99); got != 0 {
		t.Fatalf("SpreadRounds(1) = %d, want 0", got)
	}
	r16 := SpreadRounds(16, 0.99)
	if r16 < 2 || r16 > 10 {
		t.Fatalf("SpreadRounds(16, .99) = %d, want a handful", r16)
	}
	r256 := SpreadRounds(256, 0.99)
	if r256 < r16 {
		t.Fatalf("SpreadRounds not monotone: n=16 -> %d, n=256 -> %d", r16, r256)
	}
	// Push-pull spread is O(log n): 16x the nodes should cost only a
	// few extra rounds.
	if r256 > r16+8 {
		t.Fatalf("SpreadRounds(256) = %d, way beyond log-growth from %d", r256, r16)
	}
}

// TestMeshConvergence is the core anti-entropy property: records
// published at one node reach every replica of a lossy 8-node mesh,
// byte-identical (same digests, versions, and values).
func TestMeshConvergence(t *testing.T) {
	nw := transport.NewMemNetwork(1)
	nw.SetDefaultLoss(0.02)
	reg := obs.New("gossip-test")
	est := staleness.NewEstimator(time.Minute)
	nodes := buildMesh(t, nw, 8, Config{
		Session:     71,
		Interval:    20 * time.Millisecond,
		Obs:         reg,
		Consistency: est,
	})
	defer closeAll(nodes)
	for i := 0; i < 40; i++ {
		key := fmt.Sprintf("conf/%02d/state", i)
		if err := nodes[0].Publish(key, []byte(fmt.Sprintf("v%d", i)), 0); err != nil {
			t.Fatalf("Publish: %v", err)
		}
	}
	want := nodes[0].RootDigest()
	startAll(nodes)
	waitFor(t, 15*time.Second, "mesh convergence", func() bool {
		return converged(nodes, want)
	})
	// Replicas must carry origin versions and values verbatim.
	v, ver, ok := nodes[5].Get("conf/07/state")
	if !ok || string(v) != "v7" {
		t.Fatalf("node 5 conf/07/state = %q, %v; want v7", v, ok)
	}
	wantV, wantVer, _ := nodes[0].Get("conf/07/state")
	if ver != wantVer || string(v) != string(wantV) {
		t.Fatalf("replica version %d != origin %d", ver, wantVer)
	}
	st := nodes[3].Stats()
	if st.RecordsApplied < 40 {
		t.Fatalf("node 3 applied %d records, want >= 40", st.RecordsApplied)
	}
	if st.Rounds == 0 || st.ExchangesSent == 0 {
		t.Fatalf("node 3 ran no rounds: %+v", st)
	}
}

// TestDeletePropagation drives a deletion epidemic: a key deleted at
// one replica must disappear from every replica, and a stale copy
// pushed afterwards must be refuted, not resurrected.
func TestDeletePropagation(t *testing.T) {
	nw := transport.NewMemNetwork(2)
	nodes := buildMesh(t, nw, 5, Config{
		Session:  72,
		Interval: 15 * time.Millisecond,
	})
	defer closeAll(nodes)
	for i := 0; i < 10; i++ {
		nodes[0].Publish(fmt.Sprintf("k/%d", i), []byte("x"), 0)
	}
	want := nodes[0].RootDigest()
	startAll(nodes)
	waitFor(t, 10*time.Second, "initial convergence", func() bool {
		return converged(nodes, want)
	})
	// Delete at a non-origin replica: the certificate must spread.
	if !nodes[3].Delete("k/4") {
		t.Fatal("node 3 did not hold k/4")
	}
	waitFor(t, 10*time.Second, "deletion to spread", func() bool {
		for _, n := range nodes {
			if _, _, ok := n.Get("k/4"); ok {
				return false
			}
		}
		return true
	})
	// All replicas must also agree digest-wise after the delete.
	after := nodes[3].RootDigest()
	waitFor(t, 10*time.Second, "post-delete convergence", func() bool {
		return converged(nodes, after)
	})
	// Resurrection by republish must win over the tombstone.
	if err := nodes[0].Publish("k/4", []byte("reborn"), 0); err != nil {
		t.Fatalf("republish: %v", err)
	}
	waitFor(t, 10*time.Second, "resurrection to spread", func() bool {
		for _, n := range nodes {
			if v, _, ok := n.Get("k/4"); !ok || string(v) != "reborn" {
				return false
			}
		}
		return true
	})
}

// TestMembershipEvictRejoin exercises failure suspicion: a severed
// peer is suspected, then evicted; once the link heals and it is heard
// again, it rejoins live.
func TestMembershipEvictRejoin(t *testing.T) {
	nw := transport.NewMemNetwork(3)
	nodes := buildMesh(t, nw, 2, Config{
		Session:      73,
		Interval:     10 * time.Millisecond,
		SuspectAfter: 2,
		EvictAfter:   4,
	})
	defer closeAll(nodes)
	nodes[0].Publish("m/seed", []byte("s"), 0)
	startAll(nodes)
	waitFor(t, 10*time.Second, "initial sync", func() bool {
		return converged(nodes, nodes[0].RootDigest())
	})
	nw.SetLinkDown(meshAddr(0), meshAddr(1))
	waitFor(t, 10*time.Second, "eviction", func() bool {
		ps := nodes[0].Peers()
		return len(ps) == 1 && ps[0].State == PeerEvicted
	})
	st := nodes[0].Stats()
	if st.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", st.Evictions)
	}
	nw.HealAll()
	// The probe path (one suspect/evicted peer every probeEvery
	// rounds) must re-establish contact without outside help.
	waitFor(t, 10*time.Second, "rejoin", func() bool {
		ps := nodes[0].Peers()
		return len(ps) == 1 && ps[0].State == PeerLive
	})
	if st := nodes[0].Stats(); st.Rejoins < 1 {
		t.Fatalf("rejoins = %d, want >= 1", st.Rejoins)
	}
}

// TestChurnKillRestart kills a replica mid-run, keeps publishing, then
// restarts it empty on the same address: the restarted node must
// re-converge by pulling the whole replica from the mesh, and the mesh
// must have evicted and then rejoined it.
func TestChurnKillRestart(t *testing.T) {
	nw := transport.NewMemNetwork(4)
	nodes := buildMesh(t, nw, 6, Config{
		Session:      74,
		Interval:     15 * time.Millisecond,
		SuspectAfter: 2,
		EvictAfter:   4,
	})
	defer closeAll(nodes)
	for i := 0; i < 20; i++ {
		nodes[0].Publish(fmt.Sprintf("churn/%02d", i), []byte("a"), 0)
	}
	startAll(nodes)
	waitFor(t, 15*time.Second, "initial convergence", func() bool {
		return converged(nodes, nodes[0].RootDigest())
	})

	// Kill node 5: stop its loops and close its endpoint so the mesh
	// sees pure silence.
	victim := nodes[5]
	victim.Close()
	victimConn := victim.cfg.Conn
	victimConn.Close()
	nodes[5] = nil
	live := nodes[:5]

	// The mesh keeps accepting writes while the node is down.
	for i := 20; i < 35; i++ {
		nodes[0].Publish(fmt.Sprintf("churn/%02d", i), []byte("b"), 0)
	}
	waitFor(t, 15*time.Second, "survivor convergence", func() bool {
		return converged(live, nodes[0].RootDigest())
	})
	// Let the failure detector do its work before the node returns.
	waitFor(t, 15*time.Second, "a survivor to evict the dead node", func() bool {
		for _, n := range live {
			if n.Stats().Evictions > 0 {
				return true
			}
		}
		return false
	})

	// Restart empty on the same address (fresh endpoint, same ID).
	addrs := make([]net.Addr, 6)
	for i := range addrs {
		addrs[i] = meshAddr(i)
	}
	restarted, err := New(Config{
		Session:      74,
		NodeID:       6,
		Conn:         nw.Endpoint(meshAddr(5)),
		Peers:        addrs,
		Interval:     15 * time.Millisecond,
		SuspectAfter: 2,
		EvictAfter:   4,
		Seed:         4242,
	})
	if err != nil {
		t.Fatalf("restart: %v", err)
	}
	nodes[5] = restarted
	restarted.Start()
	waitFor(t, 15*time.Second, "restarted node to catch up", func() bool {
		return converged(nodes, nodes[0].RootDigest())
	})
	if got := restarted.Len(); got != 35 {
		t.Fatalf("restarted replica has %d records, want 35", got)
	}
	// Some survivor must also notice the return: its evicted entry
	// flips back to live the moment the restarted node is heard.
	waitFor(t, 15*time.Second, "a survivor to rejoin the restarted node", func() bool {
		for _, n := range live {
			if n.Stats().Rejoins > 0 {
				return true
			}
		}
		return false
	})
}

// TestPartitionHeal splits the mesh in half, publishes different keys
// into each side, then heals: both sides must learn each other's
// writes and agree on one digest.
func TestPartitionHeal(t *testing.T) {
	nw := transport.NewMemNetwork(5)
	nodes := buildMesh(t, nw, 6, Config{
		Session:      75,
		Interval:     15 * time.Millisecond,
		SuspectAfter: 2,
		EvictAfter:   4,
	})
	defer closeAll(nodes)
	nodes[0].Publish("part/base", []byte("0"), 0)
	startAll(nodes)
	waitFor(t, 10*time.Second, "initial convergence", func() bool {
		return converged(nodes, nodes[0].RootDigest())
	})

	sideA := []transport.MemAddr{meshAddr(0), meshAddr(1), meshAddr(2)}
	sideB := []transport.MemAddr{meshAddr(3), meshAddr(4), meshAddr(5)}
	nw.Partition(sideA, sideB)
	nodes[0].Publish("part/a", []byte("from-a"), 0)
	nodes[3].Publish("part/b", []byte("from-b"), 0)
	waitFor(t, 10*time.Second, "intra-side convergence", func() bool {
		return converged(nodes[:3], nodes[0].RootDigest()) &&
			converged(nodes[3:], nodes[3].RootDigest())
	})
	if _, _, ok := nodes[0].Get("part/b"); ok {
		t.Fatal("partition leaked: side A learned part/b")
	}

	nw.HealAll()
	waitFor(t, 20*time.Second, "post-heal convergence", func() bool {
		if nodes[0].RootDigest() != nodes[3].RootDigest() {
			return false
		}
		return converged(nodes, nodes[0].RootDigest())
	})
	for i, n := range nodes {
		if v, _, ok := n.Get("part/a"); !ok || string(v) != "from-a" {
			t.Fatalf("node %d missing part/a", i)
		}
		if v, _, ok := n.Get("part/b"); !ok || string(v) != "from-b" {
			t.Fatalf("node %d missing part/b", i)
		}
	}
}

// TestRateLimitDrops pins the bandwidth budget: with a tight token
// bucket in place anti-entropy must still converge, because any
// datagram the budget drops is re-derived by a later idempotent round.
func TestRateLimitDrops(t *testing.T) {
	nw := transport.NewMemNetwork(6)
	nodes := buildMesh(t, nw, 3, Config{
		Session:  76,
		Interval: 10 * time.Millisecond,
		RateBps:  512 * 1024, // tight enough to clip bursts
	})
	defer closeAll(nodes)
	for i := 0; i < 64; i++ {
		nodes[0].Publish(fmt.Sprintf("rl/%02d", i), make([]byte, 400), 0)
	}
	want := nodes[0].RootDigest()
	startAll(nodes)
	waitFor(t, 30*time.Second, "rate-limited convergence", func() bool {
		return converged(nodes, want)
	})
}

// TestExpiryPropagates checks that soft-state lifetimes survive
// replication: a record with a short TTL gossiped across the mesh
// expires everywhere, leaving digests equal again.
func TestExpiryPropagates(t *testing.T) {
	nw := transport.NewMemNetwork(7)
	nodes := buildMesh(t, nw, 3, Config{
		Session:  77,
		Interval: 10 * time.Millisecond,
	})
	defer closeAll(nodes)
	nodes[0].Publish("keep", []byte("k"), 0)
	nodes[0].Publish("fade", []byte("f"), 900*time.Millisecond)
	startAll(nodes)
	waitFor(t, 10*time.Second, "both keys to spread", func() bool {
		for _, n := range nodes {
			if _, _, ok := n.Get("fade"); !ok {
				return false
			}
		}
		return true
	})
	waitFor(t, 10*time.Second, "fade to expire everywhere", func() bool {
		for _, n := range nodes {
			if _, _, ok := n.Get("fade"); ok {
				return false
			}
		}
		return true
	})
	waitFor(t, 10*time.Second, "post-expiry digest agreement", func() bool {
		return converged(nodes, nodes[0].RootDigest())
	})
	if _, _, ok := nodes[2].Get("keep"); !ok {
		t.Fatal("immortal record lost")
	}
}
