package gossip

import (
	"strconv"

	"softstate/internal/obs"
)

// nodeMetrics are the sstp_gossip_* series, all labeled node=<id> so a
// single registry can host every member of a mesh. Like the sstp_*
// catalog they are nil-safe: an unconfigured registry costs a nil
// check per event.
type nodeMetrics struct {
	rounds         *obs.Counter // sstp_gossip_rounds_total{node=...}
	exchanges      *obs.Counter // sstp_gossip_exchanges_total{node=...} (openers sent)
	summariesHeard *obs.Counter // sstp_gossip_summaries_heard_total{node=...}
	agreements     *obs.Counter // sstp_gossip_agreements_total{node=...}
	divergences    *obs.Counter // sstp_gossip_divergences_total{node=...}

	queriesSent   *obs.Counter // sstp_gossip_queries_sent_total{node=...}
	queriesServed *obs.Counter // sstp_gossip_queries_served_total{node=...}
	nacksSent     *obs.Counter // sstp_gossip_nacks_sent_total{node=...} (leaves pulled)

	recordsServed     *obs.Counter // sstp_gossip_records_served_total{node=...}
	recordsApplied    *obs.Counter // sstp_gossip_records_applied_total{node=...}
	recordsConfirmed  *obs.Counter // sstp_gossip_records_confirmed_total{node=...}
	recordsRejected   *obs.Counter // sstp_gossip_records_rejected_total{node=...}
	tombstonesApplied *obs.Counter // sstp_gossip_tombstones_applied_total{node=...}
	deletePushbacks   *obs.Counter // sstp_gossip_delete_pushbacks_total{node=...}
	expired           *obs.Counter // sstp_gossip_expired_total{node=...}

	evictions   *obs.Counter // sstp_gossip_evictions_total{node=...}
	rejoins     *obs.Counter // sstp_gossip_rejoins_total{node=...}
	rateDropped *obs.Counter // sstp_gossip_rate_dropped_total{node=...}
	txBytes     *obs.Counter // sstp_gossip_tx_bytes_total{node=...}
	rxBytes     *obs.Counter // sstp_gossip_rx_bytes_total{node=...}

	records      *obs.Gauge // sstp_gossip_records{node=...}
	tombstones   *obs.Gauge // sstp_gossip_tombstones{node=...}
	peersLive    *obs.Gauge // sstp_gossip_peers_live{node=...}
	peersSuspect *obs.Gauge // sstp_gossip_peers_suspect{node=...}
	peersEvicted *obs.Gauge // sstp_gossip_peers_evicted{node=...}
}

func newNodeMetrics(reg *obs.Registry, id uint64) nodeMetrics {
	l := strconv.FormatUint(id, 10)
	return nodeMetrics{
		rounds:         reg.Counter("sstp_gossip_rounds_total", "node", l),
		exchanges:      reg.Counter("sstp_gossip_exchanges_total", "node", l),
		summariesHeard: reg.Counter("sstp_gossip_summaries_heard_total", "node", l),
		agreements:     reg.Counter("sstp_gossip_agreements_total", "node", l),
		divergences:    reg.Counter("sstp_gossip_divergences_total", "node", l),

		queriesSent:   reg.Counter("sstp_gossip_queries_sent_total", "node", l),
		queriesServed: reg.Counter("sstp_gossip_queries_served_total", "node", l),
		nacksSent:     reg.Counter("sstp_gossip_nacks_sent_total", "node", l),

		recordsServed:     reg.Counter("sstp_gossip_records_served_total", "node", l),
		recordsApplied:    reg.Counter("sstp_gossip_records_applied_total", "node", l),
		recordsConfirmed:  reg.Counter("sstp_gossip_records_confirmed_total", "node", l),
		recordsRejected:   reg.Counter("sstp_gossip_records_rejected_total", "node", l),
		tombstonesApplied: reg.Counter("sstp_gossip_tombstones_applied_total", "node", l),
		deletePushbacks:   reg.Counter("sstp_gossip_delete_pushbacks_total", "node", l),
		expired:           reg.Counter("sstp_gossip_expired_total", "node", l),

		evictions:   reg.Counter("sstp_gossip_evictions_total", "node", l),
		rejoins:     reg.Counter("sstp_gossip_rejoins_total", "node", l),
		rateDropped: reg.Counter("sstp_gossip_rate_dropped_total", "node", l),
		txBytes:     reg.Counter("sstp_gossip_tx_bytes_total", "node", l),
		rxBytes:     reg.Counter("sstp_gossip_rx_bytes_total", "node", l),

		records:      reg.Gauge("sstp_gossip_records", "node", l),
		tombstones:   reg.Gauge("sstp_gossip_tombstones", "node", l),
		peersLive:    reg.Gauge("sstp_gossip_peers_live", "node", l),
		peersSuspect: reg.Gauge("sstp_gossip_peers_suspect", "node", l),
		peersEvicted: reg.Gauge("sstp_gossip_peers_evicted", "node", l),
	}
}
