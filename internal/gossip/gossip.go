// Package gossip is the leaderless second overlay of the soft-state
// stack: a peer-to-peer anti-entropy mesh in which every node holds a
// full replica and, on a jittered cadence, picks a random live peer
// and reconciles with it. Where the relay tree (internal/relay) scopes
// recovery hierarchically — each hop repairs its subtree — the mesh
// scopes it symmetrically: any replica repairs any other, so there is
// no root to die and no subtree to orphan.
//
// The anti-entropy primitive is the namespace digest tree the paper
// builds for SSTP (section 6.2): an exchange opens with root-digest
// Summaries, and a mismatch drives the same recursive Query/Digests
// descent a receiver uses against a sender, ending in NACK pulls of
// exactly the differing leaves. Both sides descend each other, so one
// exchange is a push-pull sync: each party pulls what the other has
// that it lacks. Origin versions and BornMs ride every record, applied
// with table.PutVersionBorn, so every replica hashes byte-identical to
// the origin and t-visibility is measured origin→delivery no matter
// how many hops a record gossiped through.
//
// Wire framing is the unchanged SSTP protocol over any
// transport.Conn (udp, tcp, tls, or mem). Gossip datagrams carry
// Scope 1 — reconciliation is strictly pairwise and must never be
// relayed. The header sequence number disambiguates roles: a round
// opener's Summary carries the sender's round counter (Seq ≥ 1) and is
// answered (ack or counter-Summary); every other gossip datagram
// carries Seq 0 and never elicits a Summary, which is what makes the
// exchange loop-free.
//
// Deletion uses death certificates: a deleted key leaves a tombstone
// (version = the deleted record's) for TombstoneTTL, and any attempt
// to push or pull the dead record is answered with a Deleted record
// that tombstones the other replica in turn, so deletions spread
// epidemically exactly like writes. TombstoneTTL should exceed the
// record TTLs in use, or a slow partition can resurrect a deleted key.
//
// Convergence obeys the classic push-pull epidemic model ("A Modeling
// Framework for Gossip-based Information Spread"): with n nodes and a
// fraction u(t) of them stale, one round leaves a node stale only if
// its own exchange hit a stale peer and no fresh node picked it, so
// E[u(t+1)] ≈ u(t)·u(t)·e^(−(1−u(t))) — super-exponential once spread
// takes hold. SpreadRounds evaluates the recurrence; the ssload
// head-to-head experiment validates measured rounds against it.
package gossip

import (
	"errors"
	"fmt"
	"math"
	"net"
	"sync"
	"time"

	"softstate/internal/congestion"
	"softstate/internal/namespace"
	"softstate/internal/obs"
	"softstate/internal/protocol"
	"softstate/internal/staleness"
	"softstate/internal/table"
	"softstate/internal/trace"
	"softstate/internal/transport"
	"softstate/internal/xrand"
)

const (
	// mtu bounds coalesced pull-reply datagrams, matching the sstp
	// sender's coalescing budget.
	mtu = 1400

	// probeEvery is the round period for probing one suspect or
	// evicted peer (in addition to the main exchange), so a healed
	// partition or a restarted node is re-discovered without waiting
	// for it to speak first.
	probeEvery = 4
)

// Config parameterizes a gossip node.
type Config struct {
	// Session scopes the mesh: datagrams from other sessions are
	// ignored, exactly as in point-to-point SSTP.
	Session uint64

	// NodeID is this node's sender identifier; it must be unique in
	// the mesh and non-zero.
	NodeID uint64

	// Conn is the node's wire — any transport.Conn (udp, tcp, tls, or
	// mem), obtained from transport.Bind or a MemNetwork endpoint.
	Conn transport.Conn

	// Peers seeds the membership view with the other nodes'
	// addresses. The view then maintains itself: any node heard on
	// the conn joins it, nodes that miss rounds are suspected and
	// then evicted, and evicted nodes rejoin the moment they are
	// heard again.
	Peers []net.Addr

	// Interval is the anti-entropy round cadence (default 100 ms).
	// Each round sleeps Interval ± 25% (seeded jitter), so mesh
	// rounds desynchronize instead of thundering together.
	Interval time.Duration

	// RateBps, when positive, caps this node's outbound bandwidth
	// with a token bucket; datagrams beyond the budget are dropped
	// (idempotent anti-entropy repairs them next round). This is the
	// equal-bandwidth knob of the tree-vs-gossip experiment.
	RateBps float64

	// SuspectAfter / EvictAfter are the missed-exchange thresholds of
	// failure suspicion: a peer whose last SuspectAfter consecutive
	// openers went unanswered is suspected (avoided by the random
	// pick), and at EvictAfter it is evicted (contacted only by the
	// occasional probe). Defaults 3 and 8.
	SuspectAfter int
	EvictAfter   int

	// TombstoneTTL is how long death certificates are retained
	// (default 60 s). Keep it above the largest record lifetime.
	TombstoneTTL time.Duration

	// MaxPullPerRound bounds the leaves NACK-pulled per round
	// (default 512). A freshly (re)started replica therefore spreads
	// its catch-up pulls across rounds — and, with random peer
	// selection, across serving peers — instead of slamming one peer
	// for the whole dataset.
	MaxPullPerRound int

	// Obs, if non-nil, receives the sstp_gossip_* series, labeled
	// node=<NodeID> so one registry can host a whole mesh.
	Obs *obs.Registry

	// Trace, if non-nil, records per-key lifecycle events stamped
	// with this node's trace name (TraceNode, default "gossip<id>");
	// use trace.NewSafe.
	Trace     *trace.Ring
	TraceNode string

	// Consistency, if non-nil, feeds the online estimators: digest
	// agreement per exchange (E[c(t)]), origin→delivery t-visibility
	// per applied record, and per-key confirmation ages. May be
	// shared by every node of a mesh.
	Consistency *staleness.Estimator

	// Seed drives peer selection and round jitter.
	Seed int64
}

// PeerState is a membership-view entry's liveness classification.
type PeerState int

// Peer liveness states.
const (
	PeerLive    PeerState = iota // answering exchanges
	PeerSuspect                  // missed SuspectAfter consecutive openers
	PeerEvicted                  // missed EvictAfter; probed rarely, rejoins when heard
)

// String names the state.
func (s PeerState) String() string {
	switch s {
	case PeerLive:
		return "live"
	case PeerSuspect:
		return "suspect"
	default:
		return "evicted"
	}
}

// PeerInfo is one row of the membership view.
type PeerInfo struct {
	Addr   string
	State  PeerState
	Missed int // consecutive unanswered openers
}

// Stats are cumulative node counters.
type Stats struct {
	Rounds        int // anti-entropy rounds started
	ExchangesSent int // opener summaries sent (incl. probes)

	Agreements  int // root-digest comparisons that matched
	Divergences int // comparisons that differed (descents started)

	SummariesHeard int
	QueriesSent    int
	QueriesServed  int
	NACKsSent      int // leaves pulled
	RecordsServed  int // records sent answering pulls

	RecordsApplied    int
	RecordsConfirmed  int // duplicate-version refreshes
	RecordsRejected   int // stale or tombstoned versions refused
	TombstonesApplied int
	DeletePushbacks   int // live pushes refused with a death certificate
	Expired           int

	RateDropped int // datagrams dropped by the bandwidth budget
	Evictions   int
	Rejoins     int

	PeersLive    int
	PeersSuspect int
	PeersEvicted int

	BytesSent     int64
	BytesReceived int64
}

// tombstone is a death certificate: pushes and pulls of the key at or
// below ver are refused (and refuted) until the certificate ages out.
type tombstone struct {
	ver uint64
	at  float64
}

// peer is one membership-view entry.
type peer struct {
	addr   net.Addr
	state  PeerState
	missed int // consecutive unanswered openers
}

// Node is one member of the anti-entropy mesh.
type Node struct {
	cfg       Config
	traceNode string

	mu       sync.Mutex
	pub      *table.Publisher // replica + origin store (all access under mu)
	ns       *namespace.Tree
	localVer uint64 // version counter for locally published records
	deleting bool   // suppresses expiry bookkeeping during explicit deletes
	tombs    map[string]tombstone
	peers    map[string]*peer
	order    []*peer // stable iteration order for deterministic picks
	cycle    []int   // remaining indices of the current selection pass
	rnd      *xrand.Rand
	bucket   *congestion.TokenBucket // nil = unlimited
	round    uint64
	budget   int // remaining pull budget this round
	stats    Stats

	// Scratch reused across handler invocations (all under mu).
	kids   []namespace.Child
	frames []byte

	m    nodeMetrics
	done chan struct{}
	wg   sync.WaitGroup
	once sync.Once
}

// wallSeconds is the float-seconds wall clock shared with the tables.
func wallSeconds() float64 { return float64(time.Now().UnixNano()) / 1e9 }

// pktPool recycles encode buffers across sends.
var pktPool = sync.Pool{New: func() any {
	b := make([]byte, 0, 2048)
	return &b
}}

// New constructs a node; call Start to join the mesh.
func New(cfg Config) (*Node, error) {
	if cfg.Conn == nil {
		return nil, errors.New("gossip: needs Conn")
	}
	if cfg.NodeID == 0 {
		return nil, errors.New("gossip: needs a non-zero NodeID")
	}
	if cfg.Interval <= 0 {
		cfg.Interval = 100 * time.Millisecond
	}
	if cfg.SuspectAfter <= 0 {
		cfg.SuspectAfter = 3
	}
	if cfg.EvictAfter <= cfg.SuspectAfter {
		cfg.EvictAfter = cfg.SuspectAfter + 5
	}
	if cfg.TombstoneTTL <= 0 {
		cfg.TombstoneTTL = 60 * time.Second
	}
	if cfg.MaxPullPerRound <= 0 {
		cfg.MaxPullPerRound = 512
	}
	if cfg.TraceNode == "" {
		cfg.TraceNode = fmt.Sprintf("gossip%d", cfg.NodeID)
	}
	n := &Node{
		cfg:       cfg,
		traceNode: cfg.TraceNode,
		pub:       table.NewPublisher(),
		ns:        namespace.New(namespace.HashSHA256),
		tombs:     make(map[string]tombstone),
		peers:     make(map[string]*peer),
		rnd:       xrand.New(cfg.Seed),
		m:         newNodeMetrics(cfg.Obs, cfg.NodeID),
		done:      make(chan struct{}),
	}
	if cfg.RateBps > 0 {
		// Burst admits a healthy batch of full datagrams so one pull
		// reply isn't split across refill cycles.
		n.bucket = congestion.NewTokenBucket(cfg.RateBps, math.Max(cfg.RateBps/4, 32*mtu*8))
	}
	// Expiry write-through: Sweep and Delete run under n.mu, so the
	// hook must not lock — it only maintains the digest tree and the
	// expiry bookkeeping.
	n.pub.OnExpire = func(rec *table.Record) {
		key := string(rec.Key)
		n.ns.Delete(key)
		n.cfg.Consistency.Forget(n.cfg.NodeID, key)
		if !n.deleting {
			n.stats.Expired++
			n.m.expired.Inc()
			n.traceKey(trace.Expire, key)
		}
	}
	self := ""
	if la := cfg.Conn.LocalAddr(); la != nil {
		self = la.String()
	}
	for _, a := range cfg.Peers {
		if a == nil || a.String() == self {
			continue
		}
		n.addPeerLocked(a)
	}
	return n, nil
}

// addPeerLocked inserts an address into the membership view (no-op if
// present). Callers hold n.mu or have exclusive access (New).
func (n *Node) addPeerLocked(a net.Addr) *peer {
	key := a.String()
	if p, ok := n.peers[key]; ok {
		return p
	}
	p := &peer{addr: a}
	n.peers[key] = p
	n.order = append(n.order, p)
	return p
}

// Start launches the receive and round loops.
func (n *Node) Start() {
	n.wg.Add(2)
	go n.recvLoop()
	go n.roundLoop()
}

// Close stops the node. The conn is left open (the caller owns it).
func (n *Node) Close() error {
	n.once.Do(func() {
		close(n.done)
		n.wg.Wait()
	})
	return nil
}

// traceKey records one lifecycle event stamped with this node's name.
func (n *Node) traceKey(k trace.Kind, key string) {
	if n.cfg.Trace != nil {
		n.cfg.Trace.RecordNode(wallSeconds(), k, key, n.traceNode)
	}
}

// --- local API ---

// Publish stores (or updates) a locally originated record and makes it
// visible to the mesh on the next exchanges. lifetime <= 0 means the
// record never expires on its own. The assigned version always exceeds
// any version previously seen for the key — including a tombstone's —
// so republishing a deleted key resurrects it mesh-wide.
func (n *Node) Publish(key string, value []byte, lifetime time.Duration) error {
	now := wallSeconds()
	n.mu.Lock()
	defer n.mu.Unlock()
	n.localVer++
	ver := n.localVer
	if cur := n.pub.Get(table.Key(key)); cur != nil && cur.Version >= ver {
		ver = cur.Version + 1
	}
	if t, ok := n.tombs[key]; ok {
		if t.ver >= ver {
			ver = t.ver + 1
		}
		delete(n.tombs, key)
	}
	if ver > n.localVer {
		n.localVer = ver
	}
	if err := n.ns.Put(key, value, ver); err != nil {
		return err
	}
	n.pub.PutVersionBorn(table.Key(key), value, ver, now, now, lifetime.Seconds())
	n.m.records.Set(float64(n.pub.Len()))
	n.traceKey(trace.Update, key)
	return nil
}

// Delete removes a record and issues its death certificate, which the
// exchanges spread until every replica has dropped the key. It reports
// whether the key was held.
func (n *Node) Delete(key string) bool {
	now := wallSeconds()
	n.mu.Lock()
	defer n.mu.Unlock()
	rec := n.pub.Get(table.Key(key))
	if rec == nil {
		return false
	}
	n.tombs[key] = tombstone{ver: rec.Version, at: now}
	n.deleting = true
	n.pub.Delete(table.Key(key))
	n.deleting = false
	n.m.records.Set(float64(n.pub.Len()))
	n.m.tombstones.Set(float64(len(n.tombs)))
	n.traceKey(trace.Tombstone, key)
	return true
}

// Get returns a copy of the live value and version held for key.
func (n *Node) Get(key string) (value []byte, version uint64, ok bool) {
	now := wallSeconds()
	n.mu.Lock()
	defer n.mu.Unlock()
	rec := n.pub.Get(table.Key(key))
	if rec == nil || !rec.Live(now) {
		return nil, 0, false
	}
	return append([]byte(nil), rec.Value...), rec.Version, true
}

// Len returns the number of records in the replica.
func (n *Node) Len() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.pub.Len()
}

// RootDigest returns the replica's namespace digest; equality across
// nodes (and with the origin) proves convergence.
func (n *Node) RootDigest() namespace.Digest {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.ns.RootDigest()
}

// Stats returns a copy of the node counters.
func (n *Node) Stats() Stats {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.stats
}

// Peers snapshots the membership view.
func (n *Node) Peers() []PeerInfo {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]PeerInfo, 0, len(n.order))
	for _, p := range n.order {
		out = append(out, PeerInfo{Addr: p.addr.String(), State: p.state, Missed: p.missed})
	}
	return out
}

// --- send path ---

// send encodes one message and transmits it under the bandwidth
// budget. seq is the header sequence: the round counter on exchange
// openers, 0 on everything else. Callers must not hold n.mu.
func (n *Node) send(msg protocol.Message, dest net.Addr, seq uint32) {
	hdr := protocol.Header{Session: n.cfg.Session, Sender: n.cfg.NodeID, Seq: seq, Scope: 1}
	bp := pktPool.Get().(*[]byte)
	*bp = protocol.AppendEncode((*bp)[:0], hdr, msg)
	n.sendRaw(*bp, dest)
	pktPool.Put(bp)
}

// sendRaw transmits one pre-encoded datagram under the bandwidth
// budget. Callers must not hold n.mu.
func (n *Node) sendRaw(b []byte, dest net.Addr) {
	n.mu.Lock()
	if n.bucket != nil && !n.bucket.Allow(wallSeconds(), float64(8*len(b))) {
		n.stats.RateDropped++
		n.mu.Unlock()
		n.m.rateDropped.Inc()
		return
	}
	n.stats.BytesSent += int64(len(b))
	n.mu.Unlock()
	n.m.txBytes.Add(uint64(len(b)))
	_, _ = n.cfg.Conn.WriteTo(b, dest)
}

// sendSummary announces the root digest to dest; seq > 0 marks it as
// an exchange opener.
func (n *Node) sendSummary(dest net.Addr, seq uint32) {
	n.mu.Lock()
	dig := n.ns.RootDigest()
	cnt := n.ns.Len()
	n.mu.Unlock()
	n.send(&protocol.Summary{Digest: dig, Count: uint32(cnt)}, dest, seq)
}

// --- receive path ---

func (n *Node) recvLoop() {
	defer n.wg.Done()
	dec := protocol.NewDecoder()
	buf := make([]byte, 65536)
	for {
		select {
		case <-n.done:
			return
		default:
		}
		_ = n.cfg.Conn.SetReadDeadline(time.Now().Add(200 * time.Millisecond))
		sz, from, err := n.cfg.Conn.ReadFrom(buf)
		if err != nil {
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				continue
			}
			return
		}
		hdr, msg, err := dec.Decode(buf[:sz])
		if err != nil || hdr.Session != n.cfg.Session || hdr.Sender == n.cfg.NodeID || from == nil {
			continue
		}
		n.markAlive(from, sz)
		n.dispatch(hdr, msg, from)
	}
}

// markAlive refreshes the sender's membership entry: any datagram
// proves liveness, resets suspicion, and rejoins an evicted peer.
// Unknown senders are added to the view, which is how a restarted node
// (or one behind a healed partition) is re-discovered when it speaks
// first.
func (n *Node) markAlive(from net.Addr, nbytes int) {
	n.mu.Lock()
	n.stats.BytesReceived += int64(nbytes)
	p := n.addPeerLocked(from)
	rejoined := p.state == PeerEvicted
	p.missed = 0
	p.state = PeerLive
	if rejoined {
		n.stats.Rejoins++
	}
	n.mu.Unlock()
	n.m.rxBytes.Add(uint64(nbytes))
	if rejoined {
		n.m.rejoins.Inc()
	}
}

func (n *Node) dispatch(hdr protocol.Header, msg protocol.Message, from net.Addr) {
	switch m := msg.(type) {
	case *protocol.Summary:
		n.onSummary(hdr, m, from)
	case *protocol.Query:
		n.onQuery(m, from)
	case *protocol.Digests:
		n.onDigests(m, from)
	case *protocol.NACK:
		n.onNACK(m, from)
	case *protocol.Data:
		n.onData(m, from)
	case *protocol.DataBatch:
		for i := range m.Records {
			n.onData(&m.Records[i], from)
		}
	case *protocol.Heartbeat:
		// Agreement ack: liveness was already marked.
	}
}

// onSummary handles both exchange openers (Seq > 0) and reply
// summaries (Seq 0). Agreement is acked; divergence starts a pull
// descent of the peer's tree — and, for openers, a reply Summary so
// the opener symmetrically pulls from us. Reply summaries never
// trigger another Summary, so the exchange cannot loop.
func (n *Node) onSummary(hdr protocol.Header, m *protocol.Summary, from net.Addr) {
	if m.Path != "" {
		return // gossip compares root digests only
	}
	now := wallSeconds()
	n.mu.Lock()
	equal := n.ns.RootDigest() == namespace.Digest(m.Digest)
	n.stats.SummariesHeard++
	if equal {
		n.stats.Agreements++
	} else {
		n.stats.Divergences++
	}
	n.mu.Unlock()
	n.m.summariesHeard.Inc()
	n.cfg.Consistency.SampleAgreementAt(now, equal)
	opener := hdr.Seq > 0
	if equal {
		n.m.agreements.Inc()
		if opener {
			n.send(&protocol.Heartbeat{}, from, 0)
		}
		return
	}
	n.m.divergences.Inc()
	if opener {
		n.sendSummary(from, 0)
	}
	n.mu.Lock()
	n.stats.QueriesSent++
	n.mu.Unlock()
	n.m.queriesSent.Inc()
	n.send(&protocol.Query{Path: ""}, from, 0)
}

// onQuery answers a descent query with the node's child digests,
// chunked to the wire's MaxBatch. A path we do not hold answers with
// an empty listing — the peer then knows the whole branch is ours to
// pull from it, or theirs to drop.
func (n *Node) onQuery(m *protocol.Query, from net.Addr) {
	n.mu.Lock()
	kids, err := n.ns.AppendChildren(n.kids[:0], m.Path)
	n.kids = kids[:0]
	resp := &protocol.Digests{Path: m.Path}
	if err == nil && len(kids) > 0 {
		resp.Children = make([]protocol.ChildDigest, len(kids))
		for i, c := range kids {
			resp.Children[i] = protocol.ChildDigest{Name: c.Name, Leaf: c.Leaf, Digest: c.Digest}
		}
	}
	n.stats.QueriesServed++
	n.mu.Unlock()
	n.m.queriesServed.Inc()
	if len(resp.Children) <= protocol.MaxBatch {
		n.send(resp, from, 0)
		return
	}
	for at := 0; at < len(resp.Children); at += protocol.MaxBatch {
		end := at + protocol.MaxBatch
		if end > len(resp.Children) {
			end = len(resp.Children)
		}
		n.send(&protocol.Digests{Path: m.Path, Children: resp.Children[at:end]}, from, 0)
	}
}

// onDigests advances the pull descent: remote leaves we lack (or hold
// differently) are NACK-pulled within the round's budget, remote
// interior children we lack or differ on are queried deeper, and
// remote leaves we hold a death certificate for are refuted with a
// Deleted record. Children only we hold need no action — the peer's
// own symmetric descent pulls them.
func (n *Node) onDigests(m *protocol.Digests, from net.Addr) {
	var pulls []string
	var deeper []string
	var refute []protocol.Data
	n.mu.Lock()
	for i := range m.Children {
		c := &m.Children[i]
		childPath := c.Name
		if m.Path != "" {
			childPath = m.Path + "/" + c.Name
		}
		if c.Leaf {
			if t, ok := n.tombs[childPath]; ok {
				refute = append(refute, protocol.Data{Key: childPath, Ver: t.ver, Deleted: true})
				continue
			}
			local, err := n.ns.Digest(childPath)
			if err == nil && local == namespace.Digest(c.Digest) {
				continue
			}
			if n.budget <= 0 {
				continue // next round's descent picks the rest up
			}
			n.budget--
			pulls = append(pulls, childPath)
			continue
		}
		local, err := n.ns.Digest(childPath)
		if err != nil || local != namespace.Digest(c.Digest) {
			deeper = append(deeper, childPath)
		}
	}
	n.stats.NACKsSent += len(pulls)
	n.stats.QueriesSent += len(deeper)
	n.stats.DeletePushbacks += len(refute)
	n.mu.Unlock()
	for _, key := range pulls {
		n.traceKey(trace.NACK, key)
	}
	n.m.nacksSent.Add(uint64(len(pulls)))
	n.m.queriesSent.Add(uint64(len(deeper)))
	n.m.deletePushbacks.Add(uint64(len(refute)))
	for at := 0; at < len(pulls); at += protocol.MaxBatch {
		end := at + protocol.MaxBatch
		if end > len(pulls) {
			end = len(pulls)
		}
		n.send(&protocol.NACK{Keys: pulls[at:end]}, from, 0)
	}
	for _, p := range deeper {
		n.send(&protocol.Query{Path: p}, from, 0)
	}
	for i := range refute {
		n.send(&refute[i], from, 0)
	}
}

// onNACK serves pulled records, coalescing small ones into DataBatch
// datagrams up to the MTU. Records carry origin version, BornMs, and
// remaining lifetime; tombstoned keys are served as death
// certificates.
func (n *Node) onNACK(m *protocol.NACK, from net.Addr) {
	now := wallSeconds()
	hdr := protocol.Header{Session: n.cfg.Session, Sender: n.cfg.NodeID, Scope: 1}
	var dgrams [][]byte
	frames := n.frames[:0]
	count := 0
	flush := func() {
		if count == 0 {
			return
		}
		bp := pktPool.Get().(*[]byte)
		if count == 1 {
			// Single record: plain Data framing, byte-identical to the
			// point-to-point wire.
			*bp = protocol.AppendDataDatagram((*bp)[:0], hdr, frames[2:])
		} else {
			*bp = protocol.AppendBatchDatagram((*bp)[:0], hdr, count, frames)
		}
		dgrams = append(dgrams, *bp)
		frames = frames[:0]
		count = 0
	}
	n.mu.Lock()
	served := 0
	for _, key := range m.Keys {
		var rec protocol.Data
		if t, ok := n.tombs[key]; ok {
			rec = protocol.Data{Key: key, Ver: t.ver, Deleted: true}
		} else if r := n.pub.Get(table.Key(key)); r != nil && r.Live(now) {
			ttl := uint32(0)
			if !math.IsInf(r.Expires, 1) {
				rem := r.Expires - now
				if rem <= 0 {
					continue
				}
				ttl = uint32(rem*1000) + 1
			}
			rec = protocol.Data{Key: key, Ver: r.Version, TTLms: ttl, BornMs: uint64(r.Born * 1000), Value: r.Value}
		} else {
			continue
		}
		need := protocol.BatchRecordSize(len(rec.Key), len(rec.Value))
		if count > 0 && (protocol.HeaderLen+2+len(frames)+need > mtu || count == protocol.MaxBatch) {
			flush()
		}
		frames = protocol.AppendBatchRecord(frames, &rec)
		count++
		served++
	}
	flush()
	n.frames = frames[:0]
	n.stats.RecordsServed += served
	n.mu.Unlock()
	n.m.recordsServed.Add(uint64(served))
	for _, key := range m.Keys {
		n.traceKey(trace.Repair, key)
	}
	for _, d := range dgrams {
		n.sendRaw(d, from)
		b := d
		pktPool.Put(&b)
	}
}

// onData applies one gossiped record: death certificates tombstone the
// replica, stale pushes are refused (and, when we hold a newer death
// certificate, refuted), newer versions are applied with the origin's
// version, BornMs, and remaining lifetime — so the replica stays
// byte-identical to the origin and visibility lag is origin→delivery.
func (n *Node) onData(m *protocol.Data, from net.Addr) {
	now := wallSeconds()
	key := m.Key
	if m.Deleted {
		n.mu.Lock()
		if r := n.pub.Get(table.Key(key)); r != nil && r.Version > m.Ver {
			// The certificate is stale: the key was republished at a
			// newer version. Refute it with the live record so the
			// sender resurrects the key instead of us burying it.
			reply := protocol.Data{Key: key, Ver: r.Version, BornMs: uint64(r.Born * 1000), Value: append([]byte(nil), r.Value...)}
			if !math.IsInf(r.Expires, 1) {
				if rem := r.Expires - now; rem > 0 {
					reply.TTLms = uint32(rem*1000) + 1
				}
			}
			n.stats.RecordsServed++
			n.mu.Unlock()
			n.m.recordsServed.Inc()
			n.send(&reply, from, 0)
			return
		}
		if t, ok := n.tombs[key]; !ok || m.Ver > t.ver {
			n.tombs[key] = tombstone{ver: m.Ver, at: now}
		} else {
			n.tombs[key] = tombstone{ver: t.ver, at: now} // refresh retention
		}
		n.m.tombstones.Set(float64(len(n.tombs)))
		applied := false
		if r := n.pub.Get(table.Key(key)); r != nil {
			n.deleting = true
			n.pub.Delete(table.Key(key))
			n.deleting = false
			n.stats.TombstonesApplied++
			applied = true
			n.m.records.Set(float64(n.pub.Len()))
		}
		n.mu.Unlock()
		if applied {
			n.m.tombstonesApplied.Inc()
			n.traceKey(trace.Tombstone, key)
		}
		return
	}
	var refute *protocol.Data
	n.mu.Lock()
	if t, ok := n.tombs[key]; ok && m.Ver <= t.ver {
		// The key is dead here at an equal-or-newer version: refute the
		// push with the certificate so the sender drops it too.
		n.stats.RecordsRejected++
		n.stats.DeletePushbacks++
		refute = &protocol.Data{Key: key, Ver: t.ver, Deleted: true}
		n.mu.Unlock()
		n.m.recordsRejected.Inc()
		n.m.deletePushbacks.Inc()
		n.send(refute, from, 0)
		return
	}
	if cur := n.pub.Get(table.Key(key)); cur != nil && cur.Version >= m.Ver {
		if cur.Version == m.Ver {
			n.stats.RecordsConfirmed++
			n.mu.Unlock()
			n.m.recordsConfirmed.Inc()
			n.cfg.Consistency.ConfirmAt(n.cfg.NodeID, key, now)
		} else {
			n.stats.RecordsRejected++
			n.mu.Unlock()
			n.m.recordsRejected.Inc()
		}
		return
	}
	if err := n.ns.Put(key, m.Value, m.Ver); err != nil {
		// Leaf/interior conflict: the key cannot exist in this tree.
		n.stats.RecordsRejected++
		n.mu.Unlock()
		n.m.recordsRejected.Inc()
		return
	}
	// A version above the tombstone's resurrects the key: retire the
	// death certificate so descents pull instead of refuting.
	delete(n.tombs, key)
	lifetime := 0.0
	if m.TTLms > 0 {
		lifetime = float64(m.TTLms) / 1000
	}
	born := 0.0
	if m.BornMs > 0 {
		born = float64(m.BornMs) / 1000
	}
	n.pub.PutVersionBorn(table.Key(key), m.Value, m.Ver, born, now, lifetime)
	n.stats.RecordsApplied++
	n.m.records.Set(float64(n.pub.Len()))
	n.mu.Unlock()
	n.m.recordsApplied.Inc()
	if born > 0 {
		n.cfg.Consistency.ObserveTVisAt(now, math.Max(0, now-born))
	}
	n.cfg.Consistency.ConfirmAt(n.cfg.NodeID, key, now)
	n.traceKey(trace.Deliver, key)
}

// --- round loop ---

func (n *Node) roundLoop() {
	defer n.wg.Done()
	for {
		d := n.nextDelay()
		select {
		case <-n.done:
			return
		case <-time.After(d):
		}
		n.doRound()
	}
}

// pickLiveLocked returns the next live peer of the selection cycle —
// random-permutation gossip: each pass visits every peer exactly once
// in a freshly shuffled order, then reshuffles. Compared with uniform
// random picks this cuts the variance of how often any one peer is
// chosen, so a catching-up replica spreads its pulls near-evenly over
// the serving peers. Callers hold n.mu; returns nil when no peer is
// live.
func (n *Node) pickLiveLocked() *peer {
	total := len(n.order)
	// Two full passes bound the scan: one to drain a cycle of entirely
	// non-live entries, one through a fresh shuffle.
	for tries := 0; tries < 2*total; tries++ {
		if len(n.cycle) == 0 {
			n.cycle = append(n.cycle[:0], n.rnd.Perm(total)...)
		}
		idx := n.cycle[len(n.cycle)-1]
		n.cycle = n.cycle[:len(n.cycle)-1]
		// The view may have grown since the cycle was drawn; stale
		// indices stay valid, new peers join the next pass.
		if idx < len(n.order) && n.order[idx].state == PeerLive {
			return n.order[idx]
		}
	}
	return nil
}

// nextDelay draws the jittered round interval: Interval ± 25%.
func (n *Node) nextDelay() time.Duration {
	n.mu.Lock()
	u := n.rnd.Float64()
	n.mu.Unlock()
	return time.Duration(float64(n.cfg.Interval) * (0.75 + 0.5*u))
}

// doRound runs one anti-entropy round: sweep expiry, age tombstones,
// refresh suspicion, and open an exchange with one random live peer —
// plus, every probeEvery rounds, one suspect/evicted peer, so failures
// heal without waiting for the other side to speak.
func (n *Node) doRound() {
	now := wallSeconds()
	var targets []*peer
	n.mu.Lock()
	n.pub.Sweep(now)
	for key, t := range n.tombs {
		if now-t.at > n.cfg.TombstoneTTL.Seconds() {
			delete(n.tombs, key)
		}
	}
	n.round++
	n.stats.Rounds++
	n.budget = n.cfg.MaxPullPerRound

	var dubious []*peer
	for _, p := range n.order {
		if p.state != PeerLive {
			dubious = append(dubious, p)
		}
	}
	if p := n.pickLiveLocked(); p != nil {
		targets = append(targets, p)
	}
	if len(dubious) > 0 && n.round%probeEvery == 0 {
		targets = append(targets, dubious[n.rnd.Intn(len(dubious))])
	}
	for _, p := range targets {
		p.missed++
		switch {
		case p.missed >= n.cfg.EvictAfter:
			if p.state != PeerEvicted {
				p.state = PeerEvicted
				n.stats.Evictions++
				n.m.evictions.Inc()
			}
		case p.missed >= n.cfg.SuspectAfter:
			if p.state == PeerLive {
				p.state = PeerSuspect
			}
		}
	}
	var nl, ns, ne int
	for _, p := range n.order {
		switch p.state {
		case PeerLive:
			nl++
		case PeerSuspect:
			ns++
		default:
			ne++
		}
	}
	n.stats.PeersLive, n.stats.PeersSuspect, n.stats.PeersEvicted = nl, ns, ne
	n.stats.ExchangesSent += len(targets)
	dig := n.ns.RootDigest()
	cnt := n.ns.Len()
	ntombs := len(n.tombs)
	round := uint32(n.round)
	if round == 0 {
		round = 1 // Seq 0 would demote the opener to a reply
	}
	n.mu.Unlock()

	n.m.rounds.Inc()
	n.m.peersLive.Set(float64(nl))
	n.m.peersSuspect.Set(float64(ns))
	n.m.peersEvicted.Set(float64(ne))
	n.m.tombstones.Set(float64(ntombs))
	sum := &protocol.Summary{Digest: dig, Count: uint32(cnt)}
	for _, p := range targets {
		n.m.exchanges.Inc()
		n.send(sum, p.addr, round)
	}
}

// SpreadRounds evaluates the analytic push-pull epidemic recurrence:
// starting from one informed node out of n, it returns the number of
// rounds until the expected informed fraction reaches target (e.g.
// 0.99). Per round, a stale node stays stale only if its own exchange
// hit a stale peer (probability ≈ (u−1)/(n−1)) and no informed node's
// exchange hit it (probability (1−1/(n−1))^i) — the mean-field model
// of "A Modeling Framework for Gossip-based Information Spread". The
// ssload head-to-head experiment holds the measured mesh to within 2×
// of this curve.
func SpreadRounds(nodes int, target float64) int {
	if nodes <= 1 {
		return 0
	}
	if target <= 0 || target > 1 {
		target = 0.99
	}
	u := float64(nodes - 1) // stale nodes; one origin is informed
	total := float64(nodes)
	rounds := 0
	for u/total > 1-target && rounds < 1<<16 {
		informed := total - u
		noPush := math.Pow(1-1/(total-1), informed)
		pullMiss := (u - 1) / (total - 1)
		if pullMiss < 0 {
			pullMiss = 0
		}
		u *= pullMiss * noPush
		rounds++
	}
	return rounds
}
