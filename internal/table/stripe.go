// Striped tables: the same soft-state model sharded by key hash so
// Put/Apply/Sweep scale across cores instead of serializing on one
// lock.
//
// The stripe of a key is chosen by hashing its FIRST '/'-separated
// path component only. That keeps every top-level namespace subtree
// whole within one stripe, which is what lets a striped namespace
// forest recombine per-stripe digest trees into a root digest
// byte-identical to the unsharded tree (see namespace.Forest): the
// root preimage is a fold over top-level children, and each child
// lives entirely in exactly one stripe.
package table

import (
	"math/bits"
	"sync"
)

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211

	// MaxStripes bounds stripe counts; beyond this the per-stripe
	// fixed costs outweigh any contention win.
	MaxStripes = 1024
)

// StripeIndex maps a key to its stripe in [0, n) by FNV-1a over the
// key's first path component. n must be a power of two (see
// NormalizeStripes). All keys sharing a top-level component land in
// the same stripe.
func StripeIndex(key Key, n int) int {
	if n <= 1 {
		return 0
	}
	s := string(key)
	end := len(s)
	for i := 0; i < len(s); i++ {
		if s[i] == '/' {
			end = i
			break
		}
	}
	h := uint64(fnvOffset64)
	for i := 0; i < end; i++ {
		h ^= uint64(s[i])
		h *= fnvPrime64
	}
	return int(h & uint64(n-1))
}

// NormalizeStripes clamps n to [1, MaxStripes] and rounds it up to a
// power of two, the contract StripeIndex requires.
func NormalizeStripes(n int) int {
	if n <= 1 {
		return 1
	}
	if n > MaxStripes {
		n = MaxStripes
	}
	if n&(n-1) == 0 {
		return n
	}
	return 1 << bits.Len(uint(n))
}

// pubStripe pairs one Publisher shard with its lock. Padding keeps
// hot neighbouring locks off one cache line.
type pubStripe struct {
	mu  sync.Mutex
	pub *Publisher
	_   [40]byte
}

// StripedPublisher shards a Publisher by key hash with one mutex and
// one expiry heap per stripe, so concurrent Put/Sweep from multiple
// goroutines contend only when they touch the same stripe.
//
// Versions are assigned per stripe, so they are monotone per key (all
// versions of a key live in one stripe) but not totally ordered across
// the table — exactly the guarantee the protocol needs.
type StripedPublisher struct {
	stripes []pubStripe

	// OnExpire, if non-nil, is invoked (under the owning stripe's
	// lock) for each record removed by Sweep or Delete. Set before
	// first use.
	OnExpire func(*Record)
}

// NewStripedPublisher returns a publisher table sharded into
// NormalizeStripes(n) stripes.
func NewStripedPublisher(n int) *StripedPublisher {
	n = NormalizeStripes(n)
	sp := &StripedPublisher{stripes: make([]pubStripe, n)}
	for i := range sp.stripes {
		st := &sp.stripes[i]
		st.pub = NewPublisher()
		st.pub.OnExpire = func(r *Record) {
			if sp.OnExpire != nil {
				sp.OnExpire(r)
			}
		}
	}
	return sp
}

// Stripes returns the stripe count (a power of two).
func (sp *StripedPublisher) Stripes() int { return len(sp.stripes) }

func (sp *StripedPublisher) stripe(key Key) *pubStripe {
	return &sp.stripes[StripeIndex(key, len(sp.stripes))]
}

// Put inserts or updates a record and returns the assigned version.
func (sp *StripedPublisher) Put(key Key, value []byte, now, lifetime float64) uint64 {
	st := sp.stripe(key)
	st.mu.Lock()
	rec := st.pub.Put(key, value, now, lifetime)
	v := rec.Version
	st.mu.Unlock()
	return v
}

// PutVersion inserts with a caller-supplied version (relay
// write-through path).
func (sp *StripedPublisher) PutVersion(key Key, value []byte, version uint64, now, lifetime float64) {
	st := sp.stripe(key)
	st.mu.Lock()
	st.pub.PutVersion(key, value, version, now, lifetime)
	st.mu.Unlock()
}

// Delete removes a record immediately, reporting whether it existed.
func (sp *StripedPublisher) Delete(key Key) bool {
	st := sp.stripe(key)
	st.mu.Lock()
	ok := st.pub.Delete(key)
	st.mu.Unlock()
	return ok
}

// Get returns a copy of the record's value and its version.
func (sp *StripedPublisher) Get(key Key) (value []byte, version uint64, ok bool) {
	st := sp.stripe(key)
	st.mu.Lock()
	defer st.mu.Unlock()
	rec := st.pub.Get(key)
	if rec == nil {
		return nil, 0, false
	}
	return append([]byte(nil), rec.Value...), rec.Version, true
}

// Len returns the total record count across stripes.
func (sp *StripedPublisher) Len() int {
	n := 0
	for i := range sp.stripes {
		st := &sp.stripes[i]
		st.mu.Lock()
		n += st.pub.Len()
		st.mu.Unlock()
	}
	return n
}

// Live returns |L(now)| summed across stripes.
func (sp *StripedPublisher) Live(now float64) int {
	n := 0
	for i := range sp.stripes {
		st := &sp.stripes[i]
		st.mu.Lock()
		n += st.pub.Live(now)
		st.mu.Unlock()
	}
	return n
}

// Sweep expires lapsed records in every stripe and returns the total
// removed. Stripes are swept independently; each stripe's OnExpire
// callbacks keep the per-stripe key order.
func (sp *StripedPublisher) Sweep(now float64) int {
	n := 0
	for i := range sp.stripes {
		st := &sp.stripes[i]
		st.mu.Lock()
		n += st.pub.Sweep(now)
		st.mu.Unlock()
	}
	return n
}

// NextExpiry returns the earliest expiry after now across all stripes.
func (sp *StripedPublisher) NextExpiry(now float64) (float64, bool) {
	best, any := 0.0, false
	for i := range sp.stripes {
		st := &sp.stripes[i]
		st.mu.Lock()
		at, ok := st.pub.NextExpiry(now)
		st.mu.Unlock()
		if ok && (!any || at < best) {
			best, any = at, true
		}
	}
	return best, any
}

// ForEachStripe runs f for every stripe under that stripe's lock —
// the composition hook for callers that need multi-operation atomicity
// within a stripe (digest recompute, deterministic iteration in tests).
func (sp *StripedPublisher) ForEachStripe(f func(i int, p *Publisher)) {
	for i := range sp.stripes {
		st := &sp.stripes[i]
		st.mu.Lock()
		f(i, st.pub)
		st.mu.Unlock()
	}
}

// subStripe pairs one Subscriber shard with its lock.
type subStripe struct {
	mu  sync.Mutex
	sub *Subscriber
	_   [40]byte
}

// StripedSubscriber shards a Subscriber by key hash, mirroring
// StripedPublisher on the receive side: concurrent Apply/Sweep contend
// per stripe, not per table.
type StripedSubscriber struct {
	stripes []subStripe

	// OnExpire / OnUpdate, if non-nil, are invoked under the owning
	// stripe's lock. Set before first use.
	OnExpire func(*Entry)
	OnUpdate func(*Entry)
}

// NewStripedSubscriber returns a replica table sharded into
// NormalizeStripes(n) stripes.
func NewStripedSubscriber(n int) *StripedSubscriber {
	n = NormalizeStripes(n)
	ss := &StripedSubscriber{stripes: make([]subStripe, n)}
	for i := range ss.stripes {
		st := &ss.stripes[i]
		st.sub = NewSubscriber()
		st.sub.OnExpire = func(e *Entry) {
			if ss.OnExpire != nil {
				ss.OnExpire(e)
			}
		}
		st.sub.OnUpdate = func(e *Entry) {
			if ss.OnUpdate != nil {
				ss.OnUpdate(e)
			}
		}
	}
	return ss
}

// Stripes returns the stripe count (a power of two).
func (ss *StripedSubscriber) Stripes() int { return len(ss.stripes) }

func (ss *StripedSubscriber) stripe(key Key) *subStripe {
	return &ss.stripes[StripeIndex(key, len(ss.stripes))]
}

// Apply installs an announcement, reporting whether the value changed.
func (ss *StripedSubscriber) Apply(key Key, value []byte, version uint64, now, ttl float64) bool {
	return ss.ApplyBorn(key, value, version, now, ttl, 0)
}

// ApplyBorn is Apply with the version's origin publish time.
func (ss *StripedSubscriber) ApplyBorn(key Key, value []byte, version uint64, now, ttl, born float64) bool {
	st := ss.stripe(key)
	st.mu.Lock()
	changed := st.sub.ApplyBorn(key, value, version, now, ttl, born)
	st.mu.Unlock()
	return changed
}

// Get returns a copy of the entry's value and its version if the entry
// is unexpired at now.
func (ss *StripedSubscriber) Get(key Key, now float64) (value []byte, version uint64, ok bool) {
	st := ss.stripe(key)
	st.mu.Lock()
	defer st.mu.Unlock()
	e, ok := st.sub.Get(key, now)
	if !ok {
		return nil, 0, false
	}
	return append([]byte(nil), e.Value...), e.Version, true
}

// Drop removes an entry immediately (without OnExpire).
func (ss *StripedSubscriber) Drop(key Key) bool {
	st := ss.stripe(key)
	st.mu.Lock()
	ok := st.sub.Drop(key)
	st.mu.Unlock()
	return ok
}

// Len returns the total entry count across stripes.
func (ss *StripedSubscriber) Len() int {
	n := 0
	for i := range ss.stripes {
		st := &ss.stripes[i]
		st.mu.Lock()
		n += st.sub.Len()
		st.mu.Unlock()
	}
	return n
}

// Sweep expires lapsed entries in every stripe, returning the total.
func (ss *StripedSubscriber) Sweep(now float64) int {
	n := 0
	for i := range ss.stripes {
		st := &ss.stripes[i]
		st.mu.Lock()
		n += st.sub.Sweep(now)
		st.mu.Unlock()
	}
	return n
}

// NextDeadline returns the earliest deadline after now across stripes.
func (ss *StripedSubscriber) NextDeadline(now float64) (float64, bool) {
	best, any := 0.0, false
	for i := range ss.stripes {
		st := &ss.stripes[i]
		st.mu.Lock()
		at, ok := st.sub.NextDeadline(now)
		st.mu.Unlock()
		if ok && (!any || at < best) {
			best, any = at, true
		}
	}
	return best, any
}

// ForEachStripe runs f for every stripe under that stripe's lock.
func (ss *StripedSubscriber) ForEachStripe(f func(i int, s *Subscriber)) {
	for i := range ss.stripes {
		st := &ss.stripes[i]
		st.mu.Lock()
		f(i, st.sub)
		st.mu.Unlock()
	}
}
