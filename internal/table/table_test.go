package table

import (
	"fmt"
	"testing"
	"testing/quick"
)

func TestPublisherPutGet(t *testing.T) {
	p := NewPublisher()
	r := p.Put("a", []byte("v1"), 0, 10)
	if r.Version != 1 || string(r.Value) != "v1" {
		t.Fatalf("record = %+v", r)
	}
	if p.Get("a") != r {
		t.Error("Get returned different record")
	}
	r2 := p.Put("a", []byte("v2"), 1, 10)
	if r2 != r {
		t.Error("update should reuse the record")
	}
	if r.Version != 2 || string(r.Value) != "v2" {
		t.Errorf("after update: %+v", r)
	}
	if p.Len() != 1 {
		t.Errorf("Len = %d", p.Len())
	}
}

func TestPublisherVersionsMonotonic(t *testing.T) {
	p := NewPublisher()
	var last uint64
	for i := 0; i < 100; i++ {
		r := p.Put(Key(fmt.Sprintf("k%d", i%10)), nil, 0, 0)
		if r.Version <= last {
			t.Fatalf("version %d not > %d", r.Version, last)
		}
		last = r.Version
	}
}

func TestPublisherPutVersion(t *testing.T) {
	p := NewPublisher()
	r := p.PutVersion(Key("a"), []byte("v"), 42, 0, 0)
	if r.Version != 42 {
		t.Fatalf("PutVersion stored version %d, want 42", r.Version)
	}
	// The local counter advances past the supplied version, so an
	// interleaved Put stays monotone.
	if r := p.Put(Key("b"), nil, 0, 0); r.Version <= 42 {
		t.Fatalf("Put after PutVersion(42) assigned %d, want > 42", r.Version)
	}
	// A lower supplied version is stored as-is (the relay trusts its
	// upstream) without rewinding the counter.
	if r := p.PutVersion(Key("c"), nil, 7, 0, 0); r.Version != 7 {
		t.Fatalf("PutVersion stored %d, want 7", r.Version)
	}
	if r := p.Put(Key("d"), nil, 0, 0); r.Version <= 43 {
		t.Fatalf("counter rewound: Put assigned %d", r.Version)
	}
}

func TestPublisherLifetime(t *testing.T) {
	p := NewPublisher()
	p.Put("a", nil, 0, 5)
	p.Put("b", nil, 0, 0) // immortal
	if p.Live(4) != 2 {
		t.Errorf("Live(4) = %d", p.Live(4))
	}
	if p.Live(5) != 1 {
		t.Errorf("Live(5) = %d, want 1 (a expired)", p.Live(5))
	}
	if p.Live(1e12) != 1 {
		t.Errorf("immortal record expired")
	}
}

func TestPublisherSweep(t *testing.T) {
	p := NewPublisher()
	var expired []Key
	p.OnExpire = func(r *Record) { expired = append(expired, r.Key) }
	p.Put("a", nil, 0, 5)
	p.Put("b", nil, 0, 3)
	p.Put("c", nil, 0, 10)
	if n := p.Sweep(6); n != 2 {
		t.Errorf("Sweep removed %d, want 2", n)
	}
	if len(expired) != 2 || expired[0] != "a" || expired[1] != "b" {
		t.Errorf("expired = %v", expired)
	}
	if p.Len() != 1 {
		t.Errorf("Len after sweep = %d", p.Len())
	}
}

func TestPublisherDelete(t *testing.T) {
	p := NewPublisher()
	fired := false
	p.OnExpire = func(r *Record) { fired = true }
	p.Put("a", nil, 0, 0)
	if !p.Delete("a") {
		t.Error("Delete existing = false")
	}
	if !fired {
		t.Error("OnExpire not fired for Delete")
	}
	if p.Delete("a") {
		t.Error("Delete missing = true")
	}
}

func TestPublisherOnChange(t *testing.T) {
	p := NewPublisher()
	var changes []Key
	p.OnChange = func(r *Record) { changes = append(changes, r.Key) }
	p.Put("x", nil, 0, 0)
	p.Put("y", nil, 0, 0)
	p.Put("x", []byte("2"), 0, 0)
	if len(changes) != 3 {
		t.Errorf("changes = %v", changes)
	}
}

func TestPublisherLiveRecordsSorted(t *testing.T) {
	p := NewPublisher()
	for _, k := range []Key{"c", "a", "b"} {
		p.Put(k, nil, 0, 0)
	}
	recs := p.LiveRecords(0)
	if len(recs) != 3 || recs[0].Key != "a" || recs[1].Key != "b" || recs[2].Key != "c" {
		t.Errorf("LiveRecords order wrong: %v", recs)
	}
}

func TestPublisherNextExpiry(t *testing.T) {
	p := NewPublisher()
	if _, ok := p.NextExpiry(0); ok {
		t.Error("empty table has an expiry")
	}
	p.Put("a", nil, 0, 7)
	p.Put("b", nil, 0, 3)
	p.Put("c", nil, 0, 0)
	at, ok := p.NextExpiry(0)
	if !ok || at != 3 {
		t.Errorf("NextExpiry = (%v, %v), want (3, true)", at, ok)
	}
	at, ok = p.NextExpiry(3)
	if !ok || at != 7 {
		t.Errorf("NextExpiry(3) = (%v, %v), want (7, true)", at, ok)
	}
}

func TestPublisherEmptyKeyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("empty key did not panic")
		}
	}()
	NewPublisher().Put("", nil, 0, 0)
}

func TestPublisherValueCopied(t *testing.T) {
	p := NewPublisher()
	buf := []byte("abc")
	p.Put("a", buf, 0, 0)
	buf[0] = 'X'
	if string(p.Get("a").Value) != "abc" {
		t.Error("publisher aliases caller's buffer")
	}
}

func TestSubscriberApplyAndExpiry(t *testing.T) {
	s := NewSubscriber()
	if !s.Apply("a", []byte("v"), 1, 0, 5) {
		t.Error("first Apply should report change")
	}
	if _, ok := s.Get("a", 4.9); !ok {
		t.Error("entry should be held before deadline")
	}
	if _, ok := s.Get("a", 5); ok {
		t.Error("entry visible at deadline")
	}
	// Refresh resets the timer.
	if s.Apply("a", []byte("v"), 1, 4, 5) {
		t.Error("pure refresh should not report change")
	}
	if _, ok := s.Get("a", 8); !ok {
		t.Error("refresh did not reset the timer")
	}
}

func TestSubscriberStaleVersionIgnoredButRefreshes(t *testing.T) {
	s := NewSubscriber()
	s.Apply("a", []byte("new"), 5, 0, 5)
	if s.Apply("a", []byte("old"), 3, 1, 5) {
		t.Error("stale version should not change value")
	}
	e, ok := s.Get("a", 5.5) // timer refreshed to 1+5=6
	if !ok {
		t.Fatal("stale announcement should still refresh the timer")
	}
	if string(e.Value) != "new" || e.Version != 5 {
		t.Errorf("entry = %+v", e)
	}
}

func TestSubscriberSweep(t *testing.T) {
	s := NewSubscriber()
	var expired []Key
	s.OnExpire = func(e *Entry) { expired = append(expired, e.Key) }
	s.Apply("a", nil, 1, 0, 2)
	s.Apply("b", nil, 2, 0, 9)
	if n := s.Sweep(5); n != 1 {
		t.Errorf("Sweep = %d, want 1", n)
	}
	if len(expired) != 1 || expired[0] != "a" {
		t.Errorf("expired = %v", expired)
	}
	if s.Len() != 1 {
		t.Errorf("Len = %d", s.Len())
	}
}

func TestSubscriberOnUpdate(t *testing.T) {
	s := NewSubscriber()
	updates := 0
	s.OnUpdate = func(e *Entry) { updates++ }
	s.Apply("a", []byte("1"), 1, 0, 5)
	s.Apply("a", []byte("1"), 1, 1, 5) // refresh only
	s.Apply("a", []byte("2"), 2, 2, 5) // change
	if updates != 2 {
		t.Errorf("updates = %d, want 2", updates)
	}
}

func TestSubscriberDrop(t *testing.T) {
	s := NewSubscriber()
	s.Apply("a", nil, 1, 0, 5)
	if !s.Drop("a") || s.Drop("a") {
		t.Error("Drop semantics wrong")
	}
}

func TestSubscriberValidation(t *testing.T) {
	s := NewSubscriber()
	for _, fn := range []func(){
		func() { s.Apply("", nil, 1, 0, 5) },
		func() { s.Apply("a", nil, 1, 0, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid Apply did not panic")
				}
			}()
			fn()
		}()
	}
}

func TestSubscriberNextDeadline(t *testing.T) {
	s := NewSubscriber()
	if _, ok := s.NextDeadline(0); ok {
		t.Error("empty subscriber has a deadline")
	}
	s.Apply("a", nil, 1, 0, 4)
	s.Apply("b", nil, 2, 0, 2)
	at, ok := s.NextDeadline(0)
	if !ok || at != 2 {
		t.Errorf("NextDeadline = (%v, %v)", at, ok)
	}
}

func TestSubscriberKeysSorted(t *testing.T) {
	s := NewSubscriber()
	s.Apply("c", nil, 1, 0, 10)
	s.Apply("a", nil, 2, 0, 10)
	s.Apply("b", nil, 3, 0, 1) // expires at 1
	keys := s.Keys(5)
	if len(keys) != 2 || keys[0] != "a" || keys[1] != "c" {
		t.Errorf("Keys = %v", keys)
	}
}

func TestConsistencyMetric(t *testing.T) {
	p := NewPublisher()
	s := NewSubscriber()
	ra := p.Put("a", []byte("1"), 0, 0)
	p.Put("b", []byte("2"), 0, 0)
	p.Put("c", []byte("3"), 0, 5) // will expire at 5

	s.Apply("a", ra.Value, ra.Version, 0, 100)
	s.Apply("b", []byte("stale"), 1, 0, 100)

	c, l := Consistency(p, s, 1)
	if c != 1 || l != 3 {
		t.Errorf("Consistency = (%d, %d), want (1, 3)", c, l)
	}
	// After c expires at the publisher, the live set shrinks.
	c, l = Consistency(p, s, 6)
	if c != 1 || l != 2 {
		t.Errorf("Consistency after expiry = (%d, %d), want (1, 2)", c, l)
	}
}

func TestConsistencyExpiredSubscriberEntry(t *testing.T) {
	p := NewPublisher()
	s := NewSubscriber()
	r := p.Put("a", []byte("x"), 0, 0)
	s.Apply("a", r.Value, r.Version, 0, 2)
	if c, _ := Consistency(p, s, 1); c != 1 {
		t.Error("fresh entry should count")
	}
	if c, _ := Consistency(p, s, 3); c != 0 {
		t.Error("expired subscriber entry must not count as consistent")
	}
}

// Property: applying the publisher's live records always yields full
// consistency.
func TestPropertyFullSyncIsConsistent(t *testing.T) {
	f := func(keys []uint8, vals []uint8) bool {
		p := NewPublisher()
		s := NewSubscriber()
		for i, k := range keys {
			v := []byte{}
			if i < len(vals) {
				v = []byte{vals[i]}
			}
			p.Put(Key(fmt.Sprintf("k%d", k%16)), v, 0, 0)
		}
		for _, r := range p.LiveRecords(0) {
			s.Apply(r.Key, r.Value, r.Version, 0, 100)
		}
		c, l := Consistency(p, s, 1)
		return c == l && l == p.Live(1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
