package table

import (
	"fmt"
	"math"
	"sync"
	"testing"
)

func TestStripeIndexFirstComponent(t *testing.T) {
	for _, n := range []int{1, 2, 8, 64} {
		for _, pair := range [][2]Key{
			{"a/b", "a/c"},
			{"group07/x/y", "group07/z"},
			{"nosep", "nosep/child"},
		} {
			i, j := StripeIndex(pair[0], n), StripeIndex(pair[1], n)
			if i != j {
				t.Errorf("n=%d: %q -> %d but %q -> %d; same top-level component must share a stripe",
					n, pair[0], i, pair[1], j)
			}
			if i < 0 || i >= n {
				t.Fatalf("n=%d: index %d out of range", n, i)
			}
		}
	}
	if StripeIndex("anything", 1) != 0 {
		t.Error("single stripe must map everything to 0")
	}
}

func TestStripeIndexSpreads(t *testing.T) {
	// 64 distinct top-level components over 8 stripes: every stripe
	// should see at least one (FNV-1a spreads short ASCII keys well).
	const n = 8
	hit := make([]bool, n)
	for i := 0; i < 64; i++ {
		hit[StripeIndex(Key(fmt.Sprintf("g%02d/k", i)), n)] = true
	}
	for i, ok := range hit {
		if !ok {
			t.Errorf("stripe %d never hit by 64 distinct components", i)
		}
	}
}

func TestNormalizeStripes(t *testing.T) {
	cases := map[int]int{-1: 1, 0: 1, 1: 1, 2: 2, 3: 4, 4: 4, 5: 8, 31: 32, 64: 64, 1000: 1024, MaxStripes: MaxStripes, MaxStripes + 1: MaxStripes}
	for in, want := range cases {
		if got := NormalizeStripes(in); got != want {
			t.Errorf("NormalizeStripes(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestStripedPublisherBasics(t *testing.T) {
	sp := NewStripedPublisher(4)
	if sp.Stripes() != 4 {
		t.Fatalf("stripes = %d", sp.Stripes())
	}
	var expired []Key
	sp.OnExpire = func(r *Record) { expired = append(expired, r.Key) }

	sp.Put("a/1", []byte("x"), 0, 10)
	sp.Put("b/1", []byte("y"), 0, 5)
	sp.Put("c/1", []byte("z"), 0, 0) // immortal
	if sp.Len() != 3 || sp.Live(1) != 3 {
		t.Fatalf("len=%d live=%d", sp.Len(), sp.Live(1))
	}
	if v, ver, ok := sp.Get("a/1"); !ok || string(v) != "x" || ver == 0 {
		t.Fatalf("get a/1: %q %d %v", v, ver, ok)
	}
	if at, ok := sp.NextExpiry(0); !ok || at != 5 {
		t.Fatalf("next expiry %v %v", at, ok)
	}
	if n := sp.Sweep(6); n != 1 || len(expired) != 1 || expired[0] != "b/1" {
		t.Fatalf("sweep removed %d (%v)", n, expired)
	}
	if !sp.Delete("c/1") || sp.Delete("c/1") {
		t.Fatal("delete semantics")
	}
	if sp.Len() != 1 {
		t.Fatalf("len after sweep+delete = %d", sp.Len())
	}
	if at, ok := sp.NextExpiry(0); !ok || at != 10 {
		t.Fatalf("next expiry after sweep %v %v", at, ok)
	}
}

func TestStripedSubscriberBasics(t *testing.T) {
	ss := NewStripedSubscriber(4)
	var updates, expiries int
	ss.OnUpdate = func(*Entry) { updates++ }
	ss.OnExpire = func(*Entry) { expiries++ }

	if !ss.Apply("a/1", []byte("v1"), 1, 0, 10) {
		t.Fatal("first apply should change")
	}
	if ss.Apply("a/1", []byte("v1"), 1, 1, 10) {
		t.Fatal("refresh should not change")
	}
	if !ss.ApplyBorn("a/1", []byte("v2"), 2, 2, 10, 1.5) {
		t.Fatal("new version should change")
	}
	if v, ver, ok := ss.Get("a/1", 3); !ok || string(v) != "v2" || ver != 2 {
		t.Fatalf("get: %q %d %v", v, ver, ok)
	}
	ss.Apply("b/1", []byte("w"), 1, 0, 2)
	if at, ok := ss.NextDeadline(0); !ok || at != 2 {
		t.Fatalf("next deadline %v %v", at, ok)
	}
	if n := ss.Sweep(2.5); n != 1 || expiries != 1 {
		t.Fatalf("sweep %d expiries %d", n, expiries)
	}
	if !ss.Drop("a/1") || ss.Len() != 0 {
		t.Fatal("drop")
	}
	if updates != 3 { // a/1 insert, a/1 new version, b/1 insert
		t.Fatalf("updates = %d", updates)
	}
}

// TestStripedPublisherHammer exercises concurrent Put/Refresh/Delete/
// Sweep/Get across stripes under -race: correctness here is "no race,
// no lost records".
func TestStripedPublisherHammer(t *testing.T) {
	const (
		workers = 8
		keys    = 64
		rounds  = 400
	)
	sp := NewStripedPublisher(8)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			val := []byte{byte(w)}
			for r := 0; r < rounds; r++ {
				k := Key(fmt.Sprintf("g%02d/k%d", (w*7+r)%16, r%keys))
				now := float64(r) / 100
				switch r % 5 {
				case 0, 1, 2:
					sp.Put(k, val, now, 10)
				case 3:
					sp.Get(k)
					sp.Put(k, val, now, 0.001) // expires almost at once
				case 4:
					sp.Sweep(now)
					sp.NextExpiry(now)
				}
			}
		}(w)
	}
	wg.Wait()
	// After a final put of every key, all must be present and live.
	for g := 0; g < 16; g++ {
		for k := 0; k < keys; k++ {
			sp.Put(Key(fmt.Sprintf("g%02d/k%d", g, k)), []byte("final"), 100, 10)
		}
	}
	sp.Sweep(100)
	if got := sp.Live(100); got != 16*keys {
		t.Fatalf("live = %d, want %d", got, 16*keys)
	}
}

// TestStripedSubscriberHammer: concurrent Apply/refresh/Drop/Sweep
// under -race.
func TestStripedSubscriberHammer(t *testing.T) {
	const (
		workers = 8
		keys    = 64
		rounds  = 400
	)
	ss := NewStripedSubscriber(8)
	ss.OnUpdate = func(e *Entry) { _ = e.Version }
	ss.OnExpire = func(e *Entry) { _ = e.Key }
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			val := []byte{byte(w)}
			for r := 0; r < rounds; r++ {
				k := Key(fmt.Sprintf("g%02d/k%d", (w*5+r)%16, r%keys))
				now := float64(r) / 100
				switch r % 6 {
				case 0, 1, 2:
					ss.Apply(k, val, uint64(r), now, 5)
				case 3:
					ss.Get(k, now)
					ss.ApplyBorn(k, val, uint64(r), now, 0.001, now)
				case 4:
					ss.Drop(k)
				case 5:
					ss.Sweep(now)
					ss.NextDeadline(now)
				}
			}
		}(w)
	}
	wg.Wait()
	for g := 0; g < 16; g++ {
		for k := 0; k < keys; k++ {
			ss.Apply(Key(fmt.Sprintf("g%02d/k%d", g, k)), []byte("final"), math.MaxUint64, 100, 10)
		}
	}
	ss.Sweep(100)
	if got := ss.Len(); got != 16*keys {
		t.Fatalf("len = %d, want %d", got, 16*keys)
	}
}

// --- stripe/batch micro-benchmarks (wired into benchfast) ---

func benchmarkStripedPut(b *testing.B, stripes int) {
	sp := NewStripedPublisher(stripes)
	val := make([]byte, 64)
	var ctr int64
	var mu sync.Mutex
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		mu.Lock()
		ctr++
		id := ctr
		mu.Unlock()
		keys := make([]Key, 256)
		for i := range keys {
			keys[i] = Key(fmt.Sprintf("w%02d-%d/k%d", id, i%16, i))
		}
		i := 0
		for pb.Next() {
			sp.Put(keys[i&255], val, 1, 30)
			i++
		}
	})
}

func BenchmarkStripedPublisherPut1(b *testing.B)  { benchmarkStripedPut(b, 1) }
func BenchmarkStripedPublisherPut8(b *testing.B)  { benchmarkStripedPut(b, 8) }
func BenchmarkStripedPublisherPut64(b *testing.B) { benchmarkStripedPut(b, 64) }

func benchmarkStripedApply(b *testing.B, stripes int) {
	ss := NewStripedSubscriber(stripes)
	val := make([]byte, 64)
	var ctr int64
	var mu sync.Mutex
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		mu.Lock()
		ctr++
		id := ctr
		mu.Unlock()
		keys := make([]Key, 256)
		for i := range keys {
			keys[i] = Key(fmt.Sprintf("w%02d-%d/k%d", id, i%16, i))
		}
		i := 0
		for pb.Next() {
			ss.Apply(keys[i&255], val, uint64(i), 1, 30)
			i++
		}
	})
}

func BenchmarkStripedSubscriberApply1(b *testing.B) { benchmarkStripedApply(b, 1) }
func BenchmarkStripedSubscriberApply8(b *testing.B) { benchmarkStripedApply(b, 8) }
