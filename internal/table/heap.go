package table

// expiryHeap is an intrusive binary min-heap used to index records and
// replica entries by their expiry time. Items carry their own heap
// index, so membership tests, removals, and deadline adjustments are
// O(1)/O(log n) with zero allocations beyond the backing slice.
//
// Only items with a finite expiry live in the heap: the publisher
// keeps immortal records out entirely, so sweeping never has to look
// at them.
type heapItem interface {
	// expireAt is the heap ordering key (expiry time in seconds).
	expireAt() float64
	// heapIndex returns the item's current slot, or -1 when the item
	// is not in the heap.
	heapIndex() int
	setHeapIndex(int)
}

type expiryHeap[T heapItem] struct {
	items []T
}

func (h *expiryHeap[T]) len() int { return len(h.items) }

// peek returns the earliest-expiring item; call only when len() > 0.
func (h *expiryHeap[T]) peek() T { return h.items[0] }

// push inserts an item that is not currently in the heap.
func (h *expiryHeap[T]) push(it T) {
	it.setHeapIndex(len(h.items))
	h.items = append(h.items, it)
	h.up(len(h.items) - 1)
}

// fix restores heap order after an item's expiry changed in place.
func (h *expiryHeap[T]) fix(it T) {
	i := it.heapIndex()
	if !h.down(i) {
		h.up(i)
	}
}

// remove deletes an item from the heap (it must be a member).
func (h *expiryHeap[T]) remove(it T) {
	i := it.heapIndex()
	n := len(h.items) - 1
	if i != n {
		h.swap(i, n)
	}
	h.items[n] = *new(T) // release the reference
	h.items = h.items[:n]
	it.setHeapIndex(-1)
	if i != n {
		if !h.down(i) {
			h.up(i)
		}
	}
}

// pop removes and returns the earliest-expiring item.
func (h *expiryHeap[T]) pop() T {
	it := h.items[0]
	h.remove(it)
	return it
}

// minAfter returns the smallest expiry strictly greater than now. It
// descends only through subtrees whose root has already lapsed, so the
// cost is O(k) in the number of lapsed-but-unswept items, not O(n).
func (h *expiryHeap[T]) minAfter(now float64) (float64, bool) {
	best := inf
	var walk func(i int)
	walk = func(i int) {
		if i >= len(h.items) {
			return
		}
		at := h.items[i].expireAt()
		if at > now {
			if at < best {
				best = at
			}
			return // children expire no earlier
		}
		walk(2*i + 1)
		walk(2*i + 2)
	}
	walk(0)
	return best, best < inf
}

func (h *expiryHeap[T]) swap(i, j int) {
	h.items[i], h.items[j] = h.items[j], h.items[i]
	h.items[i].setHeapIndex(i)
	h.items[j].setHeapIndex(j)
}

func (h *expiryHeap[T]) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if h.items[parent].expireAt() <= h.items[i].expireAt() {
			return
		}
		h.swap(i, parent)
		i = parent
	}
}

// down sifts item i toward the leaves; it reports whether it moved.
func (h *expiryHeap[T]) down(i int) bool {
	moved := false
	for {
		least := i
		if l := 2*i + 1; l < len(h.items) && h.items[l].expireAt() < h.items[least].expireAt() {
			least = l
		}
		if r := 2*i + 2; r < len(h.items) && h.items[r].expireAt() < h.items[least].expireAt() {
			least = r
		}
		if least == i {
			return moved
		}
		h.swap(i, least)
		i = least
		moved = true
	}
}
