package table

import (
	"fmt"
	"testing"
)

// The sweep benchmarks measure the per-call cost of Sweep when nothing
// (or almost nothing) has expired — the common case on the live SSTP
// hot path, where the sender sweeps before every announcement. With
// the expiry heap this is O(1); a full scan is O(n).

func benchPublisher(n int) *Publisher {
	p := NewPublisher()
	for i := 0; i < n; i++ {
		p.Put(Key(fmt.Sprintf("g%d/k%d", i%64, i)), []byte("0123456789abcdef"), 0, 1e9)
	}
	return p
}

func BenchmarkPublisherSweepIdle(b *testing.B) {
	for _, n := range []int{1024, 16384, 65536} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			p := benchPublisher(n)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if p.Sweep(1) != 0 {
					b.Fatal("unexpected expiry")
				}
			}
		})
	}
}

func BenchmarkPublisherNextExpiry(b *testing.B) {
	p := benchPublisher(16384)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, ok := p.NextExpiry(1); !ok {
			b.Fatal("no expiry")
		}
	}
}

func BenchmarkPublisherPutUpdate(b *testing.B) {
	p := benchPublisher(16384)
	val := []byte("0123456789abcdef")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Put("g0/k0", val, float64(i), 1e9)
	}
}

func BenchmarkSubscriberSweepIdle(b *testing.B) {
	for _, n := range []int{1024, 16384, 65536} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			s := NewSubscriber()
			for i := 0; i < n; i++ {
				s.Apply(Key(fmt.Sprintf("g%d/k%d", i%64, i)), []byte("v"), 1, 0, 1e9)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if s.Sweep(1) != 0 {
					b.Fatal("unexpected expiry")
				}
			}
		})
	}
}

// BenchmarkSubscriberApplyRefresh measures the announcement-refresh
// path: the deadline moves on every Apply, which with the heap means
// one sift per call.
func BenchmarkSubscriberApplyRefresh(b *testing.B) {
	s := NewSubscriber()
	for i := 0; i < 16384; i++ {
		s.Apply(Key(fmt.Sprintf("g%d/k%d", i%64, i)), []byte("v"), 1, 0, 1e9)
	}
	val := []byte("v")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Apply("g0/k0", val, 1, float64(i), 1e9)
	}
}
