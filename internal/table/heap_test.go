package table

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
)

// fullScanExpired is the reference semantics the heap must reproduce:
// the set of keys a full table scan would expire at time now, in key
// order (the pre-heap Sweep behavior).
func fullScanExpired(recs map[Key]float64, now float64) []Key {
	var dead []Key
	for k, expires := range recs {
		if now >= expires {
			dead = append(dead, k)
		}
	}
	sort.Slice(dead, func(i, j int) bool { return dead[i] < dead[j] })
	return dead
}

func keysEqual(a, b []Key) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestPublisherSweepMatchesFullScan drives randomized Put/Delete/Sweep
// sequences against a shadow map and checks that the incremental
// heap-driven Sweep expires exactly the set (and order) the historical
// full scan would, and that NextExpiry agrees with a scan.
func TestPublisherSweepMatchesFullScan(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		p := NewPublisher()
		var got []Key
		p.OnExpire = func(r *Record) { got = append(got, r.Key) }
		shadow := make(map[Key]float64) // key -> expiry
		now := 0.0
		for step := 0; step < 400; step++ {
			now += rng.Float64()
			switch op := rng.Intn(10); {
			case op < 5: // Put with a random (possibly infinite) lifetime
				k := Key(fmt.Sprintf("k%d", rng.Intn(40)))
				lifetime := 0.0 // immortal
				if rng.Intn(4) > 0 {
					lifetime = rng.Float64() * 5
				}
				p.Put(k, []byte{byte(step)}, now, lifetime)
				if lifetime > 0 {
					shadow[k] = now + lifetime
				} else {
					shadow[k] = inf
				}
			case op < 7: // Delete
				k := Key(fmt.Sprintf("k%d", rng.Intn(40)))
				want := false
				if _, ok := shadow[k]; ok {
					want = true
					delete(shadow, k)
				}
				got = got[:0]
				if p.Delete(k) != want {
					t.Fatalf("seed %d step %d: Delete(%q) presence mismatch", seed, step, k)
				}
			default: // Sweep
				want := fullScanExpired(shadow, now)
				got = got[:0]
				n := p.Sweep(now)
				if n != len(want) || !keysEqual(got, want) {
					t.Fatalf("seed %d step %d now=%v: Sweep expired %v, full scan %v", seed, step, now, got, want)
				}
				for _, k := range want {
					delete(shadow, k)
				}
			}
			// NextExpiry must always agree with a scan of the shadow.
			wantAt, wantOK := inf, false
			for _, at := range shadow {
				if at > now && at < wantAt {
					wantAt, wantOK = at, true
				}
			}
			gotAt, gotOK := p.NextExpiry(now)
			if gotOK != wantOK || (wantOK && gotAt != wantAt) {
				t.Fatalf("seed %d step %d: NextExpiry = (%v, %v), scan says (%v, %v)", seed, step, gotAt, gotOK, wantAt, wantOK)
			}
			if p.Len() != len(shadow) {
				t.Fatalf("seed %d step %d: Len = %d, shadow %d", seed, step, p.Len(), len(shadow))
			}
		}
	}
}

// TestSubscriberSweepMatchesFullScan is the replica-side twin:
// randomized Apply/Drop/Sweep sequences with deadline refreshes.
func TestSubscriberSweepMatchesFullScan(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		s := NewSubscriber()
		var got []Key
		s.OnExpire = func(e *Entry) { got = append(got, e.Key) }
		shadow := make(map[Key]float64) // key -> deadline
		now := 0.0
		ver := uint64(0)
		for step := 0; step < 400; step++ {
			now += rng.Float64()
			switch op := rng.Intn(10); {
			case op < 6: // Apply (insert or deadline refresh)
				k := Key(fmt.Sprintf("k%d", rng.Intn(40)))
				ttl := rng.Float64()*5 + 0.01
				ver++
				s.Apply(k, []byte{byte(step)}, ver, now, ttl)
				shadow[k] = now + ttl
			case op < 7: // Drop
				k := Key(fmt.Sprintf("k%d", rng.Intn(40)))
				_, want := shadow[k]
				delete(shadow, k)
				if s.Drop(k) != want {
					t.Fatalf("seed %d step %d: Drop(%q) presence mismatch", seed, step, k)
				}
			default: // Sweep
				want := fullScanExpired(shadow, now)
				got = got[:0]
				n := s.Sweep(now)
				if n != len(want) || !keysEqual(got, want) {
					t.Fatalf("seed %d step %d now=%v: Sweep expired %v, full scan %v", seed, step, now, got, want)
				}
				for _, k := range want {
					delete(shadow, k)
				}
			}
			wantAt, wantOK := inf, false
			for _, at := range shadow {
				if at > now && at < wantAt {
					wantAt, wantOK = at, true
				}
			}
			gotAt, gotOK := s.NextDeadline(now)
			if gotOK != wantOK || (wantOK && gotAt != wantAt) {
				t.Fatalf("seed %d step %d: NextDeadline = (%v, %v), scan says (%v, %v)", seed, step, gotAt, gotOK, wantAt, wantOK)
			}
			if s.Len() != len(shadow) {
				t.Fatalf("seed %d step %d: Len = %d, shadow %d", seed, step, s.Len(), len(shadow))
			}
		}
	}
}

// TestHeapIndexInvariant checks that every heap slot's item knows its
// own index after a long mixed workload (the intrusive-heap contract).
func TestHeapIndexInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	p := NewPublisher()
	for step := 0; step < 2000; step++ {
		k := Key(fmt.Sprintf("k%d", rng.Intn(100)))
		switch rng.Intn(3) {
		case 0:
			p.Put(k, nil, float64(step), rng.Float64()*100)
		case 1:
			p.Put(k, nil, float64(step), 0)
		default:
			p.Delete(k)
		}
		for i, rec := range p.expiry.items {
			if rec.heapIdx != i {
				t.Fatalf("step %d: heap slot %d holds record with idx %d", step, i, rec.heapIdx)
			}
		}
		for i := 1; i < len(p.expiry.items); i++ {
			parent := (i - 1) / 2
			if p.expiry.items[parent].Expires > p.expiry.items[i].Expires {
				t.Fatalf("step %d: heap order violated at %d", step, i)
			}
		}
	}
}
