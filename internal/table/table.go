// Package table implements the paper's soft-state data model
// (section 2): an evolving table of {key, value} records. The
// publisher may insert, update, or delete records at any time; each
// record carries a lifetime after which the publisher stops announcing
// it and it is eliminated everywhere. Subscribers hold replicas in
// which every entry has an expiration timer, reset on each received
// announcement; entries whose timers lapse are deleted.
//
// The package is time-agnostic: all methods take an explicit `now`
// (seconds), so the same tables serve both the discrete-event
// simulations and the real-time SSTP transport (which feeds wall-clock
// seconds).
package table

import (
	"bytes"
	"fmt"
	"math"
	"sort"
)

// Key identifies a record.
type Key string

// Record is a publisher-side entry: an opaque value (an ADU in ALF
// terms), a monotonically increasing version, and a lifetime.
type Record struct {
	Key     Key
	Value   []byte
	Version uint64
	Born    float64 // time the current version was introduced
	Expires float64 // time the record leaves the live set (+Inf = never)

	heapIdx int // slot in the publisher's expiry heap; -1 = not tracked
}

// Live reports whether the record is live at time now.
func (r *Record) Live(now float64) bool { return now < r.Expires }

func (r *Record) expireAt() float64  { return r.Expires }
func (r *Record) heapIndex() int     { return r.heapIdx }
func (r *Record) setHeapIndex(i int) { r.heapIdx = i }

// Publisher is the sender-side table. The set of records live at time
// t is the paper's live data set L(t).
//
// Mortal records (lifetime > 0) are additionally indexed by an expiry
// min-heap, so Sweep and NextExpiry cost O(expired · log n) and O(1)
// respectively instead of scanning the whole table.
type Publisher struct {
	records map[Key]*Record
	expiry  expiryHeap[*Record]
	dead    []*Record // scratch for Sweep (reused between calls)
	version uint64

	// OnChange, if non-nil, is invoked after every Put with the
	// updated record — protocol engines use it to enqueue the record
	// for (re-)announcement.
	OnChange func(*Record)
	// OnExpire, if non-nil, is invoked for each record removed by
	// Sweep or Delete.
	OnExpire func(*Record)
}

// NewPublisher returns an empty publisher table.
func NewPublisher() *Publisher {
	return &Publisher{records: make(map[Key]*Record)}
}

// Put inserts or updates a record, assigning the next version. A
// lifetime <= 0 means the record never expires on its own. Put returns
// the stored record.
func (p *Publisher) Put(key Key, value []byte, now, lifetime float64) *Record {
	p.version++
	return p.putAt(key, value, p.version, now, now, lifetime)
}

// PutVersion is Put with a caller-supplied version: a relay
// republishing upstream records verbatim needs downstream replicas to
// hash to the origin publisher's digest, which covers versions. The
// local counter advances past the supplied version so interleaved Put
// calls stay monotone.
func (p *Publisher) PutVersion(key Key, value []byte, version uint64, now, lifetime float64) *Record {
	return p.PutVersionBorn(key, value, version, now, now, lifetime)
}

// PutVersionBorn is PutVersion with an explicit origin time for the
// version: relays republishing upstream records preserve the origin
// publish time so downstream visibility lag is measured end-to-end,
// not per hop. born <= 0 falls back to now.
func (p *Publisher) PutVersionBorn(key Key, value []byte, version uint64, born, now, lifetime float64) *Record {
	if version > p.version {
		p.version = version
	}
	if born <= 0 {
		born = now
	}
	return p.putAt(key, value, version, born, now, lifetime)
}

func (p *Publisher) putAt(key Key, value []byte, version uint64, born, now, lifetime float64) *Record {
	if key == "" {
		panic("table: empty key")
	}
	expires := inf
	if lifetime > 0 {
		expires = now + lifetime
	}
	rec, ok := p.records[key]
	if !ok {
		rec = &Record{Key: key, heapIdx: -1}
		p.records[key] = rec
	}
	rec.Value = append(rec.Value[:0], value...)
	rec.Version = version
	rec.Born = born
	rec.Expires = expires
	switch {
	case expires < inf && rec.heapIdx < 0:
		p.expiry.push(rec)
	case expires < inf:
		p.expiry.fix(rec)
	case rec.heapIdx >= 0: // became immortal
		p.expiry.remove(rec)
	}
	if p.OnChange != nil {
		p.OnChange(rec)
	}
	return rec
}

// Delete removes a record immediately. It reports whether the key was
// present.
func (p *Publisher) Delete(key Key) bool {
	rec, ok := p.records[key]
	if !ok {
		return false
	}
	delete(p.records, key)
	if rec.heapIdx >= 0 {
		p.expiry.remove(rec)
	}
	if p.OnExpire != nil {
		p.OnExpire(rec)
	}
	return true
}

// Get returns the record for key, or nil.
func (p *Publisher) Get(key Key) *Record { return p.records[key] }

// Len returns the number of records (live or awaiting sweep).
func (p *Publisher) Len() int { return len(p.records) }

// Live returns |L(now)|, the number of live records.
func (p *Publisher) Live(now float64) int {
	n := 0
	for _, r := range p.records {
		if r.Live(now) {
			n++
		}
	}
	return n
}

// LiveRecords returns the live records sorted by key (deterministic
// iteration for announcement schedulers and tests).
func (p *Publisher) LiveRecords(now float64) []*Record {
	out := make([]*Record, 0, len(p.records))
	for _, r := range p.records {
		if r.Live(now) {
			out = append(out, r)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// Sweep removes records whose lifetimes have lapsed, invoking OnExpire
// for each in key order, and returns the number removed. Cost is
// O(expired · log n): when nothing has lapsed it is a single heap
// peek, so protocol hot paths can sweep before every packet.
func (p *Publisher) Sweep(now float64) int {
	if p.expiry.len() == 0 || p.expiry.peek().Live(now) {
		return 0
	}
	dead := p.dead[:0]
	p.dead = nil // reentrant Sweep from a callback gets its own scratch
	for p.expiry.len() > 0 && !p.expiry.peek().Live(now) {
		rec := p.expiry.pop()
		delete(p.records, rec.Key)
		dead = append(dead, rec)
	}
	// Callback order matches the historical full scan: sorted by key.
	sort.Slice(dead, func(i, j int) bool { return dead[i].Key < dead[j].Key })
	n := len(dead)
	if p.OnExpire != nil {
		for _, rec := range dead {
			p.OnExpire(rec)
		}
	}
	for i := range dead {
		dead[i] = nil // do not pin expired values until the next sweep
	}
	p.dead = dead[:0]
	return n
}

// NextExpiry returns the earliest record expiry after now, or ok=false
// if no record expires. Lapsed-but-unswept records are skipped; with
// the heap this costs O(lapsed), not O(n).
func (p *Publisher) NextExpiry(now float64) (float64, bool) {
	return p.expiry.minAfter(now)
}

// Entry is a subscriber-side replica entry with its expiration timer.
type Entry struct {
	Key      Key
	Value    []byte
	Version  uint64
	Born     float64 // origin publish time of this version (0 = unknown)
	Deadline float64 // local expiry; reset by each announcement

	heapIdx int // slot in the subscriber's deadline heap
}

func (e *Entry) expireAt() float64  { return e.Deadline }
func (e *Entry) heapIndex() int     { return e.heapIdx }
func (e *Entry) setHeapIndex(i int) { e.heapIdx = i }

// Subscriber is the receiver-side replica table. Every entry has a
// finite deadline, and all of them are indexed by a deadline min-heap:
// refreshing an announcement is one sift, sweeping is O(expired·log n)
// with an O(1) nothing-due fast path.
type Subscriber struct {
	entries map[Key]*Entry
	expiry  expiryHeap[*Entry]
	dead    []*Entry // scratch for Sweep (reused between calls)

	// OnExpire, if non-nil, is invoked for each entry that Sweep
	// removes — the paper's "external notification event" on state
	// expiry.
	OnExpire func(*Entry)
	// OnUpdate, if non-nil, is invoked when Apply installs a new
	// value (not on pure timer refreshes).
	OnUpdate func(*Entry)
}

// NewSubscriber returns an empty subscriber table.
func NewSubscriber() *Subscriber {
	return &Subscriber{entries: make(map[Key]*Entry)}
}

// Apply installs an announcement received at time now, holding the
// entry until now+ttl. If the announced version is older than the
// stored one the value is ignored but the timer is still refreshed
// (hearing any announcement proves the record is alive). It reports
// whether the stored value changed.
func (s *Subscriber) Apply(key Key, value []byte, version uint64, now, ttl float64) bool {
	return s.ApplyBorn(key, value, version, now, ttl, 0)
}

// ApplyBorn is Apply with the announced version's origin publish time
// (0 = unknown); replicas carry it so peer repairs and relay hops can
// preserve end-to-end visibility lag.
func (s *Subscriber) ApplyBorn(key Key, value []byte, version uint64, now, ttl, born float64) bool {
	if key == "" {
		panic("table: empty key")
	}
	if ttl <= 0 {
		panic(fmt.Sprintf("table: non-positive ttl %v", ttl))
	}
	e, ok := s.entries[key]
	if !ok {
		e = &Entry{Key: key, heapIdx: -1}
		s.entries[key] = e
	}
	e.Deadline = now + ttl
	if e.heapIdx < 0 {
		s.expiry.push(e)
	} else {
		s.expiry.fix(e)
	}
	if ok && version < e.Version {
		return false
	}
	changed := !ok || e.Version != version || !bytes.Equal(e.Value, value)
	if version >= e.Version {
		e.Value = append(e.Value[:0], value...)
		e.Version = version
		e.Born = born
	}
	if changed && s.OnUpdate != nil {
		s.OnUpdate(e)
	}
	return changed
}

// Get returns the entry for key if it is unexpired at now.
func (s *Subscriber) Get(key Key, now float64) (*Entry, bool) {
	e, ok := s.entries[key]
	if !ok || now >= e.Deadline {
		return nil, false
	}
	return e, true
}

// Drop removes an entry immediately (without OnExpire), reporting
// whether it was present. Used when a deletion announcement arrives.
func (s *Subscriber) Drop(key Key) bool {
	e, ok := s.entries[key]
	if !ok {
		return false
	}
	delete(s.entries, key)
	s.expiry.remove(e)
	return true
}

// Len returns the number of entries including expired-but-unswept.
func (s *Subscriber) Len() int { return len(s.entries) }

// Sweep removes entries whose timers have lapsed, invoking OnExpire
// for each in key order, and returns the number removed. When nothing
// is due it is a single heap peek.
func (s *Subscriber) Sweep(now float64) int {
	if s.expiry.len() == 0 || now < s.expiry.peek().Deadline {
		return 0
	}
	dead := s.dead[:0]
	s.dead = nil // reentrant Sweep from a callback gets its own scratch
	for s.expiry.len() > 0 && now >= s.expiry.peek().Deadline {
		e := s.expiry.pop()
		delete(s.entries, e.Key)
		dead = append(dead, e)
	}
	// Callback order matches the historical full scan: sorted by key.
	sort.Slice(dead, func(i, j int) bool { return dead[i].Key < dead[j].Key })
	n := len(dead)
	if s.OnExpire != nil {
		for _, e := range dead {
			s.OnExpire(e)
		}
	}
	for i := range dead {
		dead[i] = nil
	}
	s.dead = dead[:0]
	return n
}

// NextDeadline returns the earliest entry deadline after now, or
// ok=false when empty. Lapsed-but-unswept entries are skipped in
// O(lapsed) time.
func (s *Subscriber) NextDeadline(now float64) (float64, bool) {
	return s.expiry.minAfter(now)
}

// Keys returns all (unexpired at now) keys in sorted order.
func (s *Subscriber) Keys(now float64) []Key {
	out := make([]Key, 0, len(s.entries))
	for k, e := range s.entries {
		if now < e.Deadline {
			out = append(out, k)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Consistency compares a subscriber replica against the publisher's
// live set at time now, implementing the paper's instantaneous metric
// c(t): the fraction of live records for which both sides hold the
// same value. It returns (consistent, live).
func Consistency(p *Publisher, s *Subscriber, now float64) (consistent, live int) {
	for _, r := range p.records {
		if !r.Live(now) {
			continue
		}
		live++
		if e, ok := s.Get(r.Key, now); ok && bytes.Equal(e.Value, r.Value) {
			consistent++
		}
	}
	return consistent, live
}

var inf = math.Inf(1)
