package refresh

import (
	"math"
	"testing"
)

func mustRun(t *testing.T, cfg Config, dur float64) Result {
	t.Helper()
	res, err := Run(cfg, dur)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestNoLossNoFalseExpiry(t *testing.T) {
	res := mustRun(t, Config{
		Seed: 1, Records: 50, Period: 5, K: 3, LossRate: 0,
	}, 2000)
	if res.FalseExpir != 0 {
		t.Errorf("lossless run had %d false expiries", res.FalseExpir)
	}
	if res.Downtime != 0 {
		t.Errorf("lossless downtime = %v", res.Downtime)
	}
	if res.Delivered != res.Refreshes {
		t.Errorf("delivered %d != refreshes %d", res.Delivered, res.Refreshes)
	}
}

// TestFalseExpiryMatchesPK validates the classic result: with timeout
// K·T and i.i.d. loss p, a replica falsely expires when K consecutive
// refreshes are lost, i.e. at rate ≈ p^K per refresh opportunity.
func TestFalseExpiryMatchesPK(t *testing.T) {
	for _, tc := range []struct {
		p float64
		k float64
	}{
		{0.3, 2},
		{0.3, 3},
		{0.5, 3},
	} {
		res := mustRun(t, Config{
			Seed: 2, Records: 200, Period: 2, K: tc.k, LossRate: tc.p,
			Jitter: 0.01,
		}, 4000)
		want := math.Pow(tc.p, tc.k)
		if res.FalseExpiryRate < want/3 || res.FalseExpiryRate > want*3 {
			t.Errorf("p=%v k=%v: false-expiry rate %.5f, analytic %.5f",
				tc.p, tc.k, res.FalseExpiryRate, want)
		}
		if res.AnalyticRate != want {
			t.Errorf("AnalyticRate = %v, want %v", res.AnalyticRate, want)
		}
	}
}

func TestLargerKReducesFalseExpiry(t *testing.T) {
	base := Config{Seed: 3, Records: 200, Period: 2, LossRate: 0.4, Jitter: 0.01}
	k2 := base
	k2.K = 2
	k4 := base
	k4.K = 4
	r2 := mustRun(t, k2, 3000)
	r4 := mustRun(t, k4, 3000)
	if r4.FalseExpiryRate >= r2.FalseExpiryRate {
		t.Errorf("K=4 rate %.5f not below K=2 rate %.5f", r4.FalseExpiryRate, r2.FalseExpiryRate)
	}
	if r2.FalseExpir == 0 {
		t.Error("expected some false expiries at 40% loss, K=2")
	}
}

func TestDowntimeGrowsWithLoss(t *testing.T) {
	base := Config{Seed: 4, Records: 100, Period: 2, K: 2, Jitter: 0.01}
	lo := base
	lo.LossRate = 0.2
	hi := base
	hi.LossRate = 0.6
	rlo := mustRun(t, lo, 3000)
	rhi := mustRun(t, hi, 3000)
	if rhi.Downtime <= rlo.Downtime {
		t.Errorf("downtime at 60%% loss (%.4f) not above 20%% loss (%.4f)", rhi.Downtime, rlo.Downtime)
	}
}

// TestAdaptiveTimersTrackThePeriod checks the receiver-side scalable
// timer: the estimated timeout should track K·T closely once warmed
// up, even though the receiver is never told T.
func TestAdaptiveTimersTrackThePeriod(t *testing.T) {
	res := mustRun(t, Config{
		Seed: 5, Records: 100, Period: 3, K: 3, LossRate: 0.1,
		Adaptive: true,
	}, 3000)
	// The estimator adds a 4·var safety margin, and loss doubles some
	// observed intervals, so the timeout sits conservatively above
	// K·T — but it must stay within ~2.5× of it.
	if res.MeanTimeoutError > 1.5 {
		t.Errorf("adaptive timeout error %.3f too large", res.MeanTimeoutError)
	}
	if res.MeanTimeoutError == 0 {
		t.Error("adaptive run reported zero timeout error (estimator unused?)")
	}
}

// TestAdaptiveNoWorseThanStatic compares false-expiry rates: the
// adaptive timeout (with its variance margin) should not be
// dramatically worse than the static K·T timeout.
func TestAdaptiveNoWorseThanStatic(t *testing.T) {
	base := Config{Seed: 6, Records: 200, Period: 2, K: 2, LossRate: 0.4, Jitter: 0.05}
	static := mustRun(t, base, 3000)
	ad := base
	ad.Adaptive = true
	adaptive := mustRun(t, ad, 3000)
	if adaptive.FalseExpiryRate > 2*static.FalseExpiryRate+0.01 {
		t.Errorf("adaptive rate %.5f much worse than static %.5f",
			adaptive.FalseExpiryRate, static.FalseExpiryRate)
	}
}

// TestBandwidthStretchesPeriod checks the sender half of scalable
// timers: a table too large for the budget stretches T.
func TestBandwidthStretchesPeriod(t *testing.T) {
	res := mustRun(t, Config{
		Seed: 7, Records: 100, Period: 1, K: 3, LossRate: 0,
		Bandwidth: 10_000, PacketBits: 1000, // need 100 kbit/s, have 10
	}, 500)
	if math.Abs(res.EffectivePeriod-10) > 1e-9 {
		t.Errorf("EffectivePeriod = %v, want 10 (stretched)", res.EffectivePeriod)
	}
	// Traffic must respect the budget: refreshes ≈ duration/T per record.
	maxRefreshes := int(500.0/10.0*100.0) + 100
	if res.Refreshes > maxRefreshes {
		t.Errorf("refreshes %d exceed the bandwidth budget (max ≈ %d)", res.Refreshes, maxRefreshes)
	}
}

func TestBandwidthAmpleKeepsPeriod(t *testing.T) {
	res := mustRun(t, Config{
		Seed: 8, Records: 10, Period: 5, K: 3, LossRate: 0,
		Bandwidth: 1e9,
	}, 100)
	if res.EffectivePeriod != 5 {
		t.Errorf("ample bandwidth changed the period: %v", res.EffectivePeriod)
	}
}

func TestDeterminism(t *testing.T) {
	cfg := Config{Seed: 9, Records: 50, Period: 2, K: 2, LossRate: 0.3}
	a := mustRun(t, cfg, 1000)
	b := mustRun(t, cfg, 1000)
	if a != b {
		t.Errorf("same seed diverged: %+v vs %+v", a, b)
	}
}

func TestValidation(t *testing.T) {
	bad := []Config{
		{},
		{Records: 1},
		{Records: 1, Period: 1}, // K < 1
		{Records: 1, Period: 1, K: 2, LossRate: 1},
		{Records: 1, Period: 1, K: 2, Jitter: 1.5},
		{Records: -5, Period: 1, K: 2},
	}
	for i, cfg := range bad {
		if _, err := Run(cfg, 100); err == nil {
			t.Errorf("bad config %d accepted: %+v", i, cfg)
		}
	}
	if _, err := Run(Config{Records: 1, Period: 1, K: 2}, 0); err == nil {
		t.Error("zero duration accepted")
	}
}

func TestIntervalEstimator(t *testing.T) {
	e := &intervalEstimator{}
	if e.timeout(3) != 0 {
		t.Error("uninitialized estimator returned a timeout")
	}
	for i := 0; i < 100; i++ {
		e.observe(2.0)
	}
	// With constant samples, variance → 0 and timeout → k·T.
	if got := e.timeout(3); math.Abs(got-6) > 0.5 {
		t.Errorf("timeout = %v, want ≈6", got)
	}
}
