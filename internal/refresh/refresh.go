// Package refresh models the classic timer-driven announce/listen
// mechanism that most deployed soft-state protocols (RSVP, SAP, PIM)
// actually use — each record is re-announced every refresh period T,
// and the receiver expires its replica if no refresh arrives within a
// timeout, conventionally k·T — together with the *scalable timers*
// refinement of Sharma et al. (INFOCOM '97), which the paper cites as
// the state of the art for choosing T and k adaptively:
//
//   - the sender spaces refreshes to fit its table into its bandwidth
//     budget (T grows with the table, keeping traffic constant), and
//   - the receiver estimates the sender's actual refresh interval from
//     observed inter-arrival times and sets its timeout as a multiple
//     of the estimate, rather than from a configured constant.
//
// The package answers the two questions the queue-driven model in
// internal/core does not: how often does a live record falsely expire
// at the receiver (a refresh run of losses exceeding the timeout), and
// how stale does a dead record linger. The false-expiry probability
// for timeout k·T under i.i.d. loss p is p^k; the simulator validates
// this and the adaptive-timer variant against it.
package refresh

import (
	"fmt"
	"math"

	"softstate/internal/eventsim"
	"softstate/internal/xrand"
)

// Config parameterizes a timer-driven announce/listen run.
type Config struct {
	Seed int64

	// Records is the (static) table size being refreshed.
	Records int

	// Period is the base refresh period T in seconds (each record is
	// announced every T, with up to ±Jitter·T of randomization, as
	// deployed protocols do to avoid synchronization).
	Period float64
	Jitter float64 // fraction of T, default 0.1

	// K is the receiver timeout multiplier: a replica expires if no
	// refresh arrives for K·T (RSVP uses K=3).
	K float64

	// LossRate is the per-refresh loss probability.
	LossRate float64

	// Adaptive enables scalable timers: the receiver estimates the
	// refresh interval from observed arrivals (EWMA + variance
	// margin, RFC 6298-style) instead of trusting the configured T,
	// and times out after K times the estimate.
	Adaptive bool

	// Bandwidth, if positive, caps refresh traffic: the sender spaces
	// announcements so that Records·PacketBits/T ≤ Bandwidth,
	// stretching T as the table grows (the sender-side half of
	// scalable timers).
	Bandwidth  float64
	PacketBits float64 // default 1000
}

func (c Config) withDefaults() (Config, error) {
	if c.Records <= 0 {
		return c, fmt.Errorf("refresh: Records %d must be positive", c.Records)
	}
	if c.Period <= 0 {
		return c, fmt.Errorf("refresh: Period %v must be positive", c.Period)
	}
	if c.K < 1 {
		return c, fmt.Errorf("refresh: K %v must be >= 1", c.K)
	}
	if c.LossRate < 0 || c.LossRate >= 1 {
		return c, fmt.Errorf("refresh: LossRate %v out of [0,1)", c.LossRate)
	}
	if c.Jitter == 0 {
		c.Jitter = 0.1
	}
	if c.Jitter < 0 || c.Jitter >= 1 {
		return c, fmt.Errorf("refresh: Jitter %v out of [0,1)", c.Jitter)
	}
	if c.PacketBits == 0 {
		c.PacketBits = 1000
	}
	return c, nil
}

// Result summarizes a run.
type Result struct {
	EffectivePeriod float64 // the sender's actual T after bandwidth stretch

	Refreshes  int // refresh transmissions
	Delivered  int
	FalseExpir int // replica expired while the record was live

	// FalseExpiryRate is false expiries per record per refresh
	// opportunity — comparable to the analytic p^K.
	FalseExpiryRate float64

	// AnalyticRate is the i.i.d. prediction p^ceil(K) for the
	// configured timeout multiplier.
	AnalyticRate float64

	// MeanTimeoutError is the mean |receiver timeout − K·T| /(K·T)
	// under adaptive estimation (0 for the static variant).
	MeanTimeoutError float64

	// Downtime is the mean fraction of time a live record spent
	// expired at the receiver (unavailability caused by false
	// expiry).
	Downtime float64
}

type recordState struct {
	expireEv   eventsim.Event
	down       bool
	downSince  float64
	downTotal  float64
	est        *intervalEstimator
	lastHeard  float64
	everHeard  bool
	falseDrops int
}

// intervalEstimator is the receiver half of scalable timers: an
// EWMA/variance estimator of the sender's refresh interval.
type intervalEstimator struct {
	srtt, rttvar float64
	init         bool
}

func (e *intervalEstimator) observe(sample float64) {
	if !e.init {
		e.init = true
		e.srtt = sample
		e.rttvar = sample / 2
		return
	}
	const alpha, beta = 0.125, 0.25
	e.rttvar = (1-beta)*e.rttvar + beta*math.Abs(e.srtt-sample)
	e.srtt = (1-alpha)*e.srtt + alpha*sample
}

// timeout returns the estimated safe timeout for multiplier k.
func (e *intervalEstimator) timeout(k float64) float64 {
	if !e.init {
		return 0
	}
	return k * (e.srtt + 4*e.rttvar)
}

// Run simulates the refresh process for the given duration (seconds).
func Run(cfg Config, duration float64) (Result, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return Result{}, err
	}
	if duration <= 0 {
		return Result{}, fmt.Errorf("refresh: duration %v must be positive", duration)
	}
	sim := eventsim.New()
	rnd := xrand.New(cfg.Seed)
	lossRnd := rnd.Split()
	jitRnd := rnd.Split()

	period := cfg.Period
	if cfg.Bandwidth > 0 {
		needed := float64(cfg.Records) * cfg.PacketBits / cfg.Bandwidth
		if needed > period {
			period = needed // sender-side stretch: keep traffic within budget
		}
	}

	res := Result{EffectivePeriod: period}
	states := make([]*recordState, cfg.Records)
	var timeoutErrSum float64
	var timeoutErrN int

	for i := range states {
		st := &recordState{est: &intervalEstimator{}}
		states[i] = st
		i := i
		_ = i

		var arm func()
		arm = func() {
			// (Re)arm the receiver's expiry timer.
			var to float64
			if cfg.Adaptive && st.est.init {
				to = st.est.timeout(cfg.K)
				timeoutErrSum += math.Abs(to-cfg.K*period) / (cfg.K * period)
				timeoutErrN++
			} else {
				to = cfg.K * period
			}
			sim.Cancel(st.expireEv) // zero handle is inert on first arm
			st.expireEv = sim.After(to, func() {
				// Timer lapsed without a refresh: false expiry (the
				// record is live for the whole run).
				if !st.down {
					st.down = true
					st.downSince = float64(sim.Now())
					st.falseDrops++
					res.FalseExpir++
				}
			})
		}

		// Sender: refresh every `period` with jitter.
		var refresh func()
		refresh = func() {
			res.Refreshes++
			if !lossRnd.Bernoulli(cfg.LossRate) {
				res.Delivered++
				now := float64(sim.Now())
				if st.everHeard {
					st.est.observe(now - st.lastHeard)
				}
				st.lastHeard = now
				st.everHeard = true
				if st.down {
					st.down = false
					st.downTotal += now - st.downSince
				}
				arm()
			}
			next := period * (1 + jitRnd.Uniform(-cfg.Jitter, cfg.Jitter))
			sim.After(next, refresh)
		}
		// Stagger initial refreshes uniformly across one period.
		sim.After(jitRnd.Uniform(0, period), refresh)
	}

	sim.RunUntil(eventsim.Time(duration))

	// Close out downtime intervals.
	downSum := 0.0
	for _, st := range states {
		if st.down {
			st.downTotal += duration - st.downSince
		}
		downSum += st.downTotal
	}
	res.Downtime = downSum / (float64(cfg.Records) * duration)
	opportunities := res.Refreshes
	if opportunities > 0 {
		res.FalseExpiryRate = float64(res.FalseExpir) / float64(opportunities)
	}
	res.AnalyticRate = math.Pow(cfg.LossRate, math.Ceil(cfg.K))
	if timeoutErrN > 0 {
		res.MeanTimeoutError = timeoutErrSum / float64(timeoutErrN)
	}
	return res, nil
}
