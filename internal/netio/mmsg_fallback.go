//go:build !(linux && (amd64 || arm64))

package netio

import "net"

// batchPlatform reports whether this build can batch syscalls.
const batchPlatform = false

// mmsgConn is unavailable on this platform; BatchConn falls back to
// one packet per syscall.
type mmsgConn struct{}

func newMMsgConn(net.PacketConn) *mmsgConn { return nil }

func (*mmsgConn) writeBatch(net.Addr, [][]byte) (int, bool, error) { return 0, false, nil }

func (*mmsgConn) writeBatchAddrs([][]byte, []net.Addr) (int, bool, error) { return 0, false, nil }

func (*mmsgConn) readBatch([][]byte, []int, []net.Addr) (int, bool, error) { return 0, false, nil }
