//go:build linux && (amd64 || arm64)

package netio

import (
	"net"
	"os"
	"sync"
	"syscall"
	"unsafe"
)

// batchPlatform reports whether this build can batch syscalls.
const batchPlatform = true

// mmsghdr mirrors struct mmsghdr from <sys/socket.h>: a msghdr plus
// the kernel-filled transfer length.
type mmsghdr struct {
	hdr syscall.Msghdr
	n   uint32
	_   [4]byte
}

// mmsgConn drives sendmmsg/recvmmsg on a UDP socket through its
// SyscallConn, so the runtime poller still owns readiness and
// deadlines.
type mmsgConn struct {
	raw syscall.RawConn

	wmu   sync.Mutex // write-side scratch
	whdrs []mmsghdr
	wiovs []syscall.Iovec
	wsa   syscall.RawSockaddrInet4
	wsas  []syscall.RawSockaddrInet4 // per-message sockaddrs (WriteBatchAddrs)

	rmu    sync.Mutex // read-side scratch
	rhdrs  []mmsghdr
	riovs  []syscall.Iovec
	rnames []syscall.RawSockaddrInet4
	raddrs []net.UDPAddr
	rips   [][4]byte
}

func newMMsgConn(pc net.PacketConn) *mmsgConn {
	uc, ok := pc.(*net.UDPConn)
	if !ok {
		return nil
	}
	raw, err := uc.SyscallConn()
	if err != nil {
		return nil
	}
	return &mmsgConn{
		raw:    raw,
		whdrs:  make([]mmsghdr, MaxBatch),
		wiovs:  make([]syscall.Iovec, MaxBatch),
		wsas:   make([]syscall.RawSockaddrInet4, MaxBatch),
		rhdrs:  make([]mmsghdr, MaxBatch),
		riovs:  make([]syscall.Iovec, MaxBatch),
		rnames: make([]syscall.RawSockaddrInet4, MaxBatch),
		raddrs: make([]net.UDPAddr, MaxBatch),
		rips:   make([][4]byte, MaxBatch),
	}
}

// writeBatch sends packets to dest with sendmmsg. handled=false means
// the caller should fall back (e.g. a non-IPv4 destination).
func (c *mmsgConn) writeBatch(dest net.Addr, packets [][]byte) (sent int, handled bool, err error) {
	ua, ok := dest.(*net.UDPAddr)
	if !ok {
		return 0, false, nil
	}
	ip4 := ua.IP.To4()
	if ip4 == nil {
		return 0, false, nil
	}
	c.wmu.Lock()
	defer c.wmu.Unlock()

	c.wsa = syscall.RawSockaddrInet4{Family: syscall.AF_INET}
	c.wsa.Port = uint16(ua.Port>>8) | uint16(ua.Port&0xff)<<8 // htons
	copy(c.wsa.Addr[:], ip4)

	for sent < len(packets) {
		n := len(packets) - sent
		if n > MaxBatch {
			n = MaxBatch
		}
		for i := 0; i < n; i++ {
			p := packets[sent+i]
			c.wiovs[i].Base = &p[0]
			c.wiovs[i].SetLen(len(p))
			h := &c.whdrs[i].hdr
			h.Name = (*byte)(unsafe.Pointer(&c.wsa))
			h.Namelen = uint32(unsafe.Sizeof(c.wsa))
			h.Iov = &c.wiovs[i]
			h.Iovlen = 1
			c.whdrs[i].n = 0
		}
		done := 0
		var operr error
		waitErr := c.raw.Write(func(fd uintptr) bool {
			for done < n {
				sn, errno := sendmmsg(fd, c.whdrs[done:n], syscall.MSG_DONTWAIT)
				if errno == syscall.EAGAIN {
					return false // wait for writability, then retry
				}
				if errno != 0 {
					operr = os.NewSyscallError("sendmmsg", errno)
					return true
				}
				done += sn
			}
			return true
		})
		sent += done
		if operr != nil {
			return sent, true, operr
		}
		if waitErr != nil {
			return sent, true, waitErr
		}
	}
	return sent, true, nil
}

// writeBatchAddrs sends packets[i] to dests[i] with sendmmsg,
// stamping a per-message sockaddr. handled=false means some
// destination is not UDP/IPv4 and the caller should fall back —
// checked up front for the whole batch, so a fallback never follows a
// partial kernel send.
func (c *mmsgConn) writeBatchAddrs(packets [][]byte, dests []net.Addr) (sent int, handled bool, err error) {
	for _, d := range dests {
		ua, ok := d.(*net.UDPAddr)
		if !ok || ua.IP.To4() == nil {
			return 0, false, nil
		}
	}
	c.wmu.Lock()
	defer c.wmu.Unlock()

	for sent < len(packets) {
		n := len(packets) - sent
		if n > MaxBatch {
			n = MaxBatch
		}
		for i := 0; i < n; i++ {
			ua := dests[sent+i].(*net.UDPAddr)
			sa := &c.wsas[i]
			*sa = syscall.RawSockaddrInet4{Family: syscall.AF_INET}
			sa.Port = uint16(ua.Port>>8) | uint16(ua.Port&0xff)<<8 // htons
			copy(sa.Addr[:], ua.IP.To4())
			p := packets[sent+i]
			c.wiovs[i].Base = &p[0]
			c.wiovs[i].SetLen(len(p))
			h := &c.whdrs[i].hdr
			h.Name = (*byte)(unsafe.Pointer(sa))
			h.Namelen = uint32(unsafe.Sizeof(*sa))
			h.Iov = &c.wiovs[i]
			h.Iovlen = 1
			c.whdrs[i].n = 0
		}
		done := 0
		var operr error
		waitErr := c.raw.Write(func(fd uintptr) bool {
			for done < n {
				sn, errno := sendmmsg(fd, c.whdrs[done:n], syscall.MSG_DONTWAIT)
				if errno == syscall.EAGAIN {
					return false // wait for writability, then retry
				}
				if errno != 0 {
					operr = os.NewSyscallError("sendmmsg", errno)
					return true
				}
				done += sn
			}
			return true
		})
		sent += done
		if operr != nil {
			return sent, true, operr
		}
		if waitErr != nil {
			return sent, true, waitErr
		}
	}
	return sent, true, nil
}

// readBatch receives up to len(bufs) packets with one recvmmsg.
func (c *mmsgConn) readBatch(bufs [][]byte, sizes []int, addrs []net.Addr) (int, bool, error) {
	c.rmu.Lock()
	defer c.rmu.Unlock()

	n := len(bufs)
	if n > MaxBatch {
		n = MaxBatch
	}
	for i := 0; i < n; i++ {
		c.riovs[i].Base = &bufs[i][0]
		c.riovs[i].SetLen(len(bufs[i]))
		h := &c.rhdrs[i].hdr
		h.Name = (*byte)(unsafe.Pointer(&c.rnames[i]))
		h.Namelen = uint32(unsafe.Sizeof(c.rnames[i]))
		h.Iov = &c.riovs[i]
		h.Iovlen = 1
		h.Control = nil
		h.Controllen = 0
		h.Flags = 0
		c.rhdrs[i].n = 0
	}
	got := 0
	var operr error
	waitErr := c.raw.Read(func(fd uintptr) bool {
		rn, errno := recvmmsg(fd, c.rhdrs[:n], syscall.MSG_DONTWAIT)
		if errno == syscall.EAGAIN {
			return false
		}
		if errno != 0 {
			operr = os.NewSyscallError("recvmmsg", errno)
			return true
		}
		got = rn
		return true
	})
	if operr != nil {
		return 0, true, operr
	}
	if waitErr != nil {
		return 0, true, waitErr
	}
	for i := 0; i < got; i++ {
		sizes[i] = int(c.rhdrs[i].n)
		sa := &c.rnames[i]
		c.rips[i] = sa.Addr
		a := &c.raddrs[i]
		a.IP = c.rips[i][:]
		a.Port = int(sa.Port>>8) | int(sa.Port&0xff)<<8 // ntohs
		a.Zone = ""
		addrs[i] = a
	}
	return got, true, nil
}
