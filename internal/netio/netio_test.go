package netio

import (
	"bytes"
	"errors"
	"fmt"
	"net"
	"os"
	"testing"
	"time"
)

// chanConn is a minimal non-UDP PacketConn, standing in for the
// in-memory test network: it must take the fallback path.
type chanConn struct {
	ch chan []byte
}

type fakeAddr struct{}

func (fakeAddr) Network() string { return "chan" }
func (fakeAddr) String() string  { return "chan" }

func (c *chanConn) ReadFrom(p []byte) (int, net.Addr, error) {
	b, ok := <-c.ch
	if !ok {
		return 0, nil, errors.New("closed")
	}
	return copy(p, b), fakeAddr{}, nil
}

func (c *chanConn) WriteTo(p []byte, _ net.Addr) (int, error) {
	c.ch <- append([]byte(nil), p...)
	return len(p), nil
}

func (c *chanConn) Close() error                       { close(c.ch); return nil }
func (c *chanConn) LocalAddr() net.Addr                { return fakeAddr{} }
func (c *chanConn) SetDeadline(t time.Time) error      { return nil }
func (c *chanConn) SetReadDeadline(t time.Time) error  { return nil }
func (c *chanConn) SetWriteDeadline(t time.Time) error { return nil }

func TestFallbackNonUDP(t *testing.T) {
	cc := &chanConn{ch: make(chan []byte, 16)}
	bc := Wrap(cc)
	if bc.Batched() {
		t.Fatal("non-UDP conn must not claim the mmsg path")
	}
	pkts := [][]byte{[]byte("one"), []byte("two"), []byte("three")}
	if n, err := bc.WriteBatch(fakeAddr{}, pkts); err != nil || n != 3 {
		t.Fatalf("WriteBatch = %d, %v", n, err)
	}
	bufs := [][]byte{make([]byte, 64), make([]byte, 64)}
	sizes := make([]int, 2)
	addrs := make([]net.Addr, 2)
	var got [][]byte
	for len(got) < 3 {
		n, err := bc.ReadBatch(bufs, sizes, addrs)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			got = append(got, append([]byte(nil), bufs[i][:sizes[i]]...))
		}
	}
	for i, want := range pkts {
		if !bytes.Equal(got[i], want) {
			t.Errorf("packet %d = %q, want %q", i, got[i], want)
		}
	}
}

// udpPair returns wrapped loopback sockets, skipping when the sandbox
// forbids UDP.
func udpPair(t *testing.T) (tx, rx *BatchConn, rxAddr net.Addr) {
	t.Helper()
	a, err := net.ListenPacket("udp4", "127.0.0.1:0")
	if err != nil {
		t.Skipf("no UDP in this environment: %v", err)
	}
	b, err := net.ListenPacket("udp4", "127.0.0.1:0")
	if err != nil {
		a.Close()
		t.Skipf("no UDP in this environment: %v", err)
	}
	t.Cleanup(func() { a.Close(); b.Close() })
	return Wrap(a), Wrap(b), b.LocalAddr()
}

func TestUDPBatchRoundTrip(t *testing.T) {
	tx, rx, dest := udpPair(t)
	const total = 150 // > MaxBatch: exercises the chunked send
	pkts := make([][]byte, total)
	for i := range pkts {
		pkts[i] = []byte(fmt.Sprintf("pkt-%03d", i))
	}
	if n, err := tx.WriteBatch(dest, pkts); err != nil || n != total {
		t.Fatalf("WriteBatch = %d, %v", n, err)
	}

	rx.Conn().SetReadDeadline(time.Now().Add(2 * time.Second))
	bufs := make([][]byte, 32)
	for i := range bufs {
		bufs[i] = make([]byte, 256)
	}
	sizes := make([]int, 32)
	addrs := make([]net.Addr, 32)
	seen := make(map[string]bool)
	for len(seen) < total {
		n, err := rx.ReadBatch(bufs, sizes, addrs)
		if err != nil {
			t.Fatalf("ReadBatch after %d/%d: %v", len(seen), total, err)
		}
		for i := 0; i < n; i++ {
			seen[string(bufs[i][:sizes[i]])] = true
			if addrs[i] == nil {
				t.Fatal("nil source addr")
			}
		}
	}
	for i := 0; i < total; i++ {
		if !seen[fmt.Sprintf("pkt-%03d", i)] {
			t.Errorf("packet %d lost on loopback", i)
		}
	}
}

func TestUDPReadBatchDeadline(t *testing.T) {
	_, rx, _ := udpPair(t)
	rx.Conn().SetReadDeadline(time.Now().Add(30 * time.Millisecond))
	bufs := [][]byte{make([]byte, 64)}
	start := time.Now()
	_, err := rx.ReadBatch(bufs, make([]int, 1), make([]net.Addr, 1))
	if err == nil {
		t.Fatal("expected deadline error")
	}
	var ne net.Error
	if !errors.As(err, &ne) && !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("err = %v (%T), want timeout", err, err)
	}
	if time.Since(start) > time.Second {
		t.Fatal("deadline not honored promptly")
	}
}

func TestUDPBatchedDetection(t *testing.T) {
	tx, _, _ := udpPair(t)
	want := batchPlatform
	if tx.Batched() != want {
		t.Fatalf("Batched() = %v on this platform, want %v", tx.Batched(), want)
	}
}

func TestUDPWriteBatchAddrs(t *testing.T) {
	// One sender, two receivers: the fabric's shape, where a single
	// batch carries datagrams for different destinations.
	tx, rx1, dest1 := udpPair(t)
	rx2conn, err := net.ListenPacket("udp4", "127.0.0.1:0")
	if err != nil {
		t.Skipf("no UDP in this environment: %v", err)
	}
	t.Cleanup(func() { rx2conn.Close() })
	rx2, dest2 := Wrap(rx2conn), rx2conn.LocalAddr()

	const total = 150 // > MaxBatch: exercises the chunked send
	pkts := make([][]byte, total)
	dests := make([]net.Addr, total)
	for i := range pkts {
		pkts[i] = []byte(fmt.Sprintf("pkt-%03d", i))
		if i%2 == 0 {
			dests[i] = dest1
		} else {
			dests[i] = dest2
		}
	}
	if n, err := tx.WriteBatchAddrs(pkts, dests); err != nil || n != total {
		t.Fatalf("WriteBatchAddrs = %d, %v", n, err)
	}

	drain := func(rx *BatchConn, want int, parity int) {
		rx.Conn().SetReadDeadline(time.Now().Add(2 * time.Second))
		bufs := make([][]byte, 32)
		for i := range bufs {
			bufs[i] = make([]byte, 256)
		}
		sizes := make([]int, 32)
		addrs := make([]net.Addr, 32)
		seen := make(map[string]bool)
		for len(seen) < want {
			n, err := rx.ReadBatch(bufs, sizes, addrs)
			if err != nil {
				t.Fatalf("receiver %d: ReadBatch after %d/%d: %v", parity, len(seen), want, err)
			}
			for i := 0; i < n; i++ {
				seen[string(bufs[i][:sizes[i]])] = true
			}
		}
		for i := parity; i < total; i += 2 {
			if !seen[fmt.Sprintf("pkt-%03d", i)] {
				t.Errorf("receiver %d: packet %d lost or misrouted", parity, i)
			}
		}
	}
	drain(rx1, total/2, 0)
	drain(rx2, total/2, 1)
}

func TestWriteBatchAddrsFallbackNonUDP(t *testing.T) {
	cc := &chanConn{ch: make(chan []byte, 16)}
	bc := Wrap(cc)
	pkts := [][]byte{[]byte("one"), []byte("two")}
	dests := []net.Addr{fakeAddr{}, fakeAddr{}}
	if n, err := bc.WriteBatchAddrs(pkts, dests); err != nil || n != 2 {
		t.Fatalf("WriteBatchAddrs = %d, %v", n, err)
	}
	if _, err := bc.WriteBatchAddrs(pkts, dests[:1]); err == nil {
		t.Fatal("mismatched packet/destination counts accepted")
	}
}
