// Package netio batches datagram I/O: many packets per syscall via
// sendmmsg/recvmmsg on Linux (amd64/arm64), with a portable
// one-at-a-time fallback everywhere else — including non-UDP
// net.PacketConn implementations such as the in-memory test network.
//
// The kernel fast path is reached through net.UDPConn.SyscallConn
// with raw syscalls (the module has no dependencies, so x/net/ipv4's
// ReadBatch/WriteBatch is reimplemented here in miniature). Deadlines
// set on the wrapped conn are honored on both paths: the raw path
// waits for readiness in the runtime poller, which is what enforces
// SetReadDeadline.
package netio

import (
	"fmt"
	"net"
)

// MaxBatch is the most packets moved per syscall; larger batches are
// split transparently.
const MaxBatch = 64

// BatchConn wraps a net.PacketConn with batch send/receive.
// Not safe for concurrent use of the same direction; one reader and
// one writer goroutine may operate concurrently (matching UDP socket
// semantics).
type BatchConn struct {
	pc net.PacketConn
	mm *mmsgConn // nil when the platform or conn can't batch
}

// Wrap returns a BatchConn over pc, enabling the mmsg fast path when
// pc is a *net.UDPConn on a supported platform.
func Wrap(pc net.PacketConn) *BatchConn {
	return &BatchConn{pc: pc, mm: newMMsgConn(pc)}
}

// WrapPortable returns a BatchConn that always uses the portable
// one-packet-per-syscall path — the code every non-Linux build runs.
// Constructible on any platform so the fallback gets direct unit
// coverage in Linux CI instead of only ever executing on machines the
// tests never see.
func WrapPortable(pc net.PacketConn) *BatchConn {
	return &BatchConn{pc: pc}
}

// Batched reports whether the kernel batch path is active.
func (c *BatchConn) Batched() bool { return c.mm != nil }

// Conn returns the wrapped PacketConn (for deadlines and Close).
func (c *BatchConn) Conn() net.PacketConn { return c.pc }

// WriteBatch sends every packet to dest, batching syscalls when it
// can, and returns the number of packets sent. A short count with a
// nil error cannot happen: on error, sent counts the packets that
// made it out first.
func (c *BatchConn) WriteBatch(dest net.Addr, packets [][]byte) (sent int, err error) {
	if c.mm != nil {
		if n, handled, err := c.mm.writeBatch(dest, packets); handled {
			return n, err
		}
	}
	for i, p := range packets {
		if _, err := c.pc.WriteTo(p, dest); err != nil {
			return i, err
		}
	}
	return len(packets), nil
}

// WriteBatchAddrs sends packets[i] to dests[i] — the session fabric's
// shared link, where one batch carries many tenants' datagrams bound
// for different receivers. The kernel path stamps a per-message
// sockaddr on one sendmmsg; it applies only when every destination is
// UDP/IPv4, otherwise the whole batch falls back to one WriteTo per
// packet. On error, sent counts the packets that made it out first.
func (c *BatchConn) WriteBatchAddrs(packets [][]byte, dests []net.Addr) (sent int, err error) {
	if len(packets) != len(dests) {
		return 0, fmt.Errorf("netio: %d packets but %d destinations", len(packets), len(dests))
	}
	if c.mm != nil {
		if n, handled, err := c.mm.writeBatchAddrs(packets, dests); handled {
			return n, err
		}
	}
	for i, p := range packets {
		if _, err := c.pc.WriteTo(p, dests[i]); err != nil {
			return i, err
		}
	}
	return len(packets), nil
}

// ReadBatch fills up to len(bufs) packets, returning how many arrived
// in one batch. sizes[i] receives packet i's length and addrs[i] its
// source. On the fallback path exactly one packet is read per call.
// Returned addrs are only valid until the next ReadBatch.
func (c *BatchConn) ReadBatch(bufs [][]byte, sizes []int, addrs []net.Addr) (int, error) {
	if c.mm != nil {
		if n, handled, err := c.mm.readBatch(bufs, sizes, addrs); handled {
			return n, err
		}
	}
	n, addr, err := c.pc.ReadFrom(bufs[0])
	if err != nil {
		return 0, err
	}
	sizes[0] = n
	addrs[0] = addr
	return 1, nil
}
