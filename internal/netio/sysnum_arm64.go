//go:build linux && arm64

package netio

import (
	"syscall"
	"unsafe"
)

// The stdlib syscall package predates sendmmsg/recvmmsg and never
// grew their numbers; they are stable ABI on each architecture.
const (
	sysRecvmmsg = 243
	sysSendmmsg = 269
)

func sendmmsg(fd uintptr, hdrs []mmsghdr, flags int) (int, syscall.Errno) {
	n, _, errno := syscall.RawSyscall6(sysSendmmsg, fd,
		uintptr(unsafe.Pointer(&hdrs[0])), uintptr(len(hdrs)), uintptr(flags), 0, 0)
	return int(n), errno
}

func recvmmsg(fd uintptr, hdrs []mmsghdr, flags int) (int, syscall.Errno) {
	n, _, errno := syscall.RawSyscall6(sysRecvmmsg, fd,
		uintptr(unsafe.Pointer(&hdrs[0])), uintptr(len(hdrs)), uintptr(flags), 0, 0)
	return int(n), errno
}
