package netio

import (
	"errors"
	"fmt"
	"net"
	"os"
	"testing"
	"time"
)

// These tests drive the portable fallback over real UDP sockets via
// WrapPortable — the exact combination non-Linux builds run but Linux
// CI previously never executed (Wrap flips UDP conns onto the mmsg
// path, and the non-UDP fallback tests use a fake conn).

func TestWrapPortableForcesFallback(t *testing.T) {
	conn, err := net.ListenPacket("udp4", "127.0.0.1:0")
	if err != nil {
		t.Skipf("no UDP in this environment: %v", err)
	}
	defer conn.Close()
	bc := WrapPortable(conn)
	if bc.Batched() {
		t.Fatal("WrapPortable must not enable the kernel batch path")
	}
	if bc.Conn() != conn {
		t.Fatal("Conn() must return the wrapped socket")
	}
}

// portablePair returns WrapPortable-wrapped loopback sockets.
func portablePair(t *testing.T) (tx, rx *BatchConn, rxAddr net.Addr) {
	t.Helper()
	a, err := net.ListenPacket("udp4", "127.0.0.1:0")
	if err != nil {
		t.Skipf("no UDP in this environment: %v", err)
	}
	b, err := net.ListenPacket("udp4", "127.0.0.1:0")
	if err != nil {
		a.Close()
		t.Skipf("no UDP in this environment: %v", err)
	}
	t.Cleanup(func() { a.Close(); b.Close() })
	return WrapPortable(a), WrapPortable(b), b.LocalAddr()
}

func TestPortableUDPBatchRoundTrip(t *testing.T) {
	tx, rx, dest := portablePair(t)
	const total = 100
	pkts := make([][]byte, total)
	for i := range pkts {
		pkts[i] = []byte(fmt.Sprintf("pkt-%03d", i))
	}
	if n, err := tx.WriteBatch(dest, pkts); err != nil || n != total {
		t.Fatalf("WriteBatch = %d, %v", n, err)
	}

	rx.Conn().SetReadDeadline(time.Now().Add(2 * time.Second))
	bufs := [][]byte{make([]byte, 256), make([]byte, 256)}
	sizes := make([]int, 2)
	addrs := make([]net.Addr, 2)
	seen := make(map[string]bool)
	for len(seen) < total {
		n, err := rx.ReadBatch(bufs, sizes, addrs)
		if err != nil {
			t.Fatalf("ReadBatch after %d/%d: %v", len(seen), total, err)
		}
		if n != 1 {
			t.Fatalf("fallback ReadBatch returned %d packets, want exactly 1", n)
		}
		if addrs[0] == nil {
			t.Fatal("nil source addr")
		}
		seen[string(bufs[0][:sizes[0]])] = true
	}
	for i := 0; i < total; i++ {
		if !seen[fmt.Sprintf("pkt-%03d", i)] {
			t.Errorf("packet %d lost on loopback", i)
		}
	}
}

func TestPortableUDPWriteBatchAddrs(t *testing.T) {
	tx, rx1, dest1 := portablePair(t)
	rx2conn, err := net.ListenPacket("udp4", "127.0.0.1:0")
	if err != nil {
		t.Skipf("no UDP in this environment: %v", err)
	}
	t.Cleanup(func() { rx2conn.Close() })
	rx2, dest2 := WrapPortable(rx2conn), rx2conn.LocalAddr()

	const total = 100
	pkts := make([][]byte, total)
	dests := make([]net.Addr, total)
	for i := range pkts {
		pkts[i] = []byte(fmt.Sprintf("pkt-%03d", i))
		if i%2 == 0 {
			dests[i] = dest1
		} else {
			dests[i] = dest2
		}
	}
	if n, err := tx.WriteBatchAddrs(pkts, dests); err != nil || n != total {
		t.Fatalf("WriteBatchAddrs = %d, %v", n, err)
	}

	drain := func(rx *BatchConn, want, parity int) {
		rx.Conn().SetReadDeadline(time.Now().Add(2 * time.Second))
		bufs := [][]byte{make([]byte, 256)}
		sizes := make([]int, 1)
		addrs := make([]net.Addr, 1)
		seen := make(map[string]bool)
		for len(seen) < want {
			n, err := rx.ReadBatch(bufs, sizes, addrs)
			if err != nil {
				t.Fatalf("receiver %d: ReadBatch after %d/%d: %v", parity, len(seen), want, err)
			}
			for i := 0; i < n; i++ {
				seen[string(bufs[i][:sizes[i]])] = true
			}
		}
		for i := parity; i < total; i += 2 {
			if !seen[fmt.Sprintf("pkt-%03d", i)] {
				t.Errorf("receiver %d: packet %d lost or misrouted", parity, i)
			}
		}
	}
	drain(rx1, total/2, 0)
	drain(rx2, total/2, 1)

	if _, err := tx.WriteBatchAddrs(pkts, dests[:1]); err == nil {
		t.Fatal("mismatched packet/destination counts accepted")
	}
}

func TestPortableUDPReadDeadline(t *testing.T) {
	_, rx, _ := portablePair(t)
	rx.Conn().SetReadDeadline(time.Now().Add(30 * time.Millisecond))
	bufs := [][]byte{make([]byte, 64)}
	start := time.Now()
	_, err := rx.ReadBatch(bufs, make([]int, 1), make([]net.Addr, 1))
	if err == nil {
		t.Fatal("expected deadline error")
	}
	var ne net.Error
	if !errors.As(err, &ne) && !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("err = %v (%T), want timeout", err, err)
	}
	if time.Since(start) > time.Second {
		t.Fatal("deadline not honored promptly")
	}
}
