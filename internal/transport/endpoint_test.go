package transport

import (
	"strings"
	"testing"
)

func TestParseEndpoint(t *testing.T) {
	cases := []struct {
		spec    string
		def     string
		want    Endpoint
		wantErr bool
	}{
		// Bare host:port keeps the pre-scheme behaviour: udp.
		{"127.0.0.1:8701", "udp", Endpoint{"udp", "127.0.0.1:8701"}, false},
		{"localhost:99", "udp", Endpoint{"udp", "localhost:99"}, false},
		{"[::1]:8701", "udp", Endpoint{"udp", "[::1]:8701"}, false},
		// IPv6 literals need their brackets through every scheme.
		{"udp://[::1]:8701", "udp", Endpoint{"udp", "[::1]:8701"}, false},
		{"tcp://[::1]:9000", "udp", Endpoint{"tcp", "[::1]:9000"}, false},
		{"tls://[fe80::1%25eth0]:443", "udp", Endpoint{"tls", "[fe80::1%25eth0]:443"}, false},
		{"[2001:db8::42]:19", "tcp", Endpoint{"tcp", "[2001:db8::42]:19"}, false},
		// An unbracketed IPv6 literal is ambiguous host:port and fails.
		{"udp://::1:8701", "udp", Endpoint{}, true},
		// -transport retargets bare specs...
		{"127.0.0.1:8701", "tcp", Endpoint{"tcp", "127.0.0.1:8701"}, false},
		{"127.0.0.1:8701", "tls", Endpoint{"tls", "127.0.0.1:8701"}, false},
		// ...but an explicit scheme always wins.
		{"udp://127.0.0.1:8701", "tls", Endpoint{"udp", "127.0.0.1:8701"}, false},
		{"tcp://10.0.0.1:9000", "udp", Endpoint{"tcp", "10.0.0.1:9000"}, false},
		{"tls://example.com:443", "udp", Endpoint{"tls", "example.com:443"}, false},
		{"mem://group", "udp", Endpoint{"mem", "group"}, false},
		// Errors: unknown schemes, empty or malformed addresses.
		{"quic://h:1", "udp", Endpoint{}, true},
		{"tcp://", "udp", Endpoint{}, true},
		{"tcp://noport", "udp", Endpoint{}, true},
		{"justahost", "udp", Endpoint{}, true},
		{"", "udp", Endpoint{}, true},
	}
	for _, c := range cases {
		got, err := ParseEndpointDefault(c.spec, c.def)
		if c.wantErr {
			if err == nil {
				t.Errorf("ParseEndpointDefault(%q, %q) = %v, want error", c.spec, c.def, got)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseEndpointDefault(%q, %q): %v", c.spec, c.def, err)
			continue
		}
		if got != c.want {
			t.Errorf("ParseEndpointDefault(%q, %q) = %v, want %v", c.spec, c.def, got, c.want)
		}
	}
}

func TestParseEndpointUnknownSchemeNamed(t *testing.T) {
	// The error must name the offending scheme, not just echo the spec:
	// "quic://h:1 is wrong" without saying *what* is wrong sends users
	// grepping the docs.
	_, err := ParseEndpoint("quic://h:1")
	if err == nil {
		t.Fatal("quic scheme accepted")
	}
	if !strings.Contains(err.Error(), `"quic"`) {
		t.Fatalf("error %q does not name the offending scheme", err)
	}
	// Bare specs that fail scheme validation name the defaulted scheme.
	_, err = ParseEndpointDefault("host:1", "carrierpigeon")
	if err == nil {
		t.Fatal("unknown default scheme accepted")
	}
	if !strings.Contains(err.Error(), `"carrierpigeon"`) {
		t.Fatalf("error %q does not name the offending scheme", err)
	}
}

func TestParseEndpointDefaultsUDP(t *testing.T) {
	e, err := ParseEndpoint("127.0.0.1:8701")
	if err != nil {
		t.Fatal(err)
	}
	if e.Scheme != "udp" {
		t.Fatalf("bare spec scheme = %q, want udp", e.Scheme)
	}
	if e.String() != "udp://127.0.0.1:8701" {
		t.Fatalf("String() = %q", e.String())
	}
}

func TestResolveSchemeMismatch(t *testing.T) {
	tr, err := New("tcp", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Resolve(tr, "udp://127.0.0.1:9"); err == nil {
		t.Fatal("udp destination accepted on a tcp transport")
	}
	// Bare specs inherit the transport's scheme.
	if _, err := Resolve(tr, "127.0.0.1:9"); err != nil {
		t.Fatalf("bare destination rejected: %v", err)
	}
}

func TestBindMemScheme(t *testing.T) {
	nw := NewMemNetwork(1)
	tr, conn, err := Bind("mem://a", "udp", Options{Mem: nw})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Scheme() != "mem" {
		t.Fatalf("scheme = %q", tr.Scheme())
	}
	dest, err := Resolve(tr, "mem://b")
	if err != nil {
		t.Fatal(err)
	}
	other := nw.Endpoint("b")
	if _, err := conn.WriteTo([]byte("hi"), dest); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 16)
	n, from, err := other.ReadFrom(buf)
	if err != nil || string(buf[:n]) != "hi" || from.String() != "a" {
		t.Fatalf("ReadFrom = %q from %v, %v", buf[:n], from, err)
	}
}
