package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Stream framing: one protocol datagram per frame, a 4-byte big-endian
// payload length followed by the exact datagram bytes. The length
// prefix is the entire translation between datagram and stream worlds
// — payloads are never split, merged, or rewritten, so digests,
// versions, and session-id demux read identical bytes over tcp/tls as
// over udp.

// frameHeaderLen is the length prefix size.
const frameHeaderLen = 4

// DefaultMaxFrame caps a frame's payload. 64 KiB admits any legal
// protocol datagram (a maximum-value record plus header is ~61 KB,
// and UDP itself cannot carry more than 65507 bytes), while bounding
// what a corrupt or hostile peer can make us buffer.
const DefaultMaxFrame = 64 << 10

// ErrFrameTooBig reports a payload over the frame cap, on either side:
// writers refuse to send it, readers refuse to buffer it.
var ErrFrameTooBig = errors.New("transport: frame exceeds max frame size")

// ErrFrameTruncated reports a stream that ended mid-frame — a clean
// EOF between frames is io.EOF, anything shorter is this.
var ErrFrameTruncated = errors.New("transport: stream truncated mid-frame")

// AppendFrame appends the length-prefixed framing of payload to dst
// and returns the extended slice.
func AppendFrame(dst, payload []byte, maxFrame int) ([]byte, error) {
	if maxFrame <= 0 {
		maxFrame = DefaultMaxFrame
	}
	if len(payload) > maxFrame {
		return dst, fmt.Errorf("%w (%d > %d)", ErrFrameTooBig, len(payload), maxFrame)
	}
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(payload)))
	return append(dst, payload...), nil
}

// ReadFrame reads one frame from r into buf (grown if needed) and
// returns the payload, aliasing buf's storage. io.EOF is returned
// only at a clean frame boundary; a stream that ends inside a header
// or payload yields ErrFrameTruncated, and an announced length over
// maxFrame yields ErrFrameTooBig without consuming the payload.
func ReadFrame(r io.Reader, buf []byte, maxFrame int) ([]byte, []byte, error) {
	if maxFrame <= 0 {
		maxFrame = DefaultMaxFrame
	}
	var hdr [frameHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return nil, buf, io.EOF
		}
		return nil, buf, fmt.Errorf("%w: %v", ErrFrameTruncated, err)
	}
	n := int(binary.BigEndian.Uint32(hdr[:]))
	if n > maxFrame {
		return nil, buf, fmt.Errorf("%w (announced %d > %d)", ErrFrameTooBig, n, maxFrame)
	}
	if cap(buf) < n {
		buf = make([]byte, n)
	}
	buf = buf[:cap(buf)]
	if _, err := io.ReadFull(r, buf[:n]); err != nil {
		return nil, buf, fmt.Errorf("%w: %v", ErrFrameTruncated, err)
	}
	return buf[:n], buf, nil
}
