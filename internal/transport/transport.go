// Package transport abstracts the wire under SSTP. The protocol layer
// is datagram-shaped — announcements, digests, NACKs, and queries are
// self-contained ALF frames — so the only contract a transport must
// honor is datagram boundaries and best-effort delivery. Everything
// else (loss, reordering, even in-order stream delivery) is policy the
// soft-state machinery above already tolerates.
//
// A Transport binds local endpoints and resolves peer addresses for
// one wire scheme:
//
//	udp   real datagrams; the netio sendmmsg/recvmmsg batch path
//	      applies unchanged (Listen returns a *net.UDPConn).
//	tcp   length-prefixed framing over TCP streams: each WriteTo
//	      carries one exact protocol datagram as one frame, with
//	      drop-don't-block semantics via a bounded per-peer queue.
//	tls   the tcp framing over crypto/tls, with optional mTLS.
//	mem   the in-process lossy MemNetwork (tests and benches).
//
// Every Listen returns a Conn — an ordinary net.PacketConn — so the
// sstp sender/receiver, the relay, and the session fabric run over any
// scheme without knowing which one they got. Single-record UDP wire
// bytes are untouched by this layer: the udp transport hands back the
// raw socket, and the stream transports carry the identical datagram
// bytes as frame payloads.
package transport

import (
	"fmt"
	"net"
	"strings"
	"time"
)

// Conn is the framed datagram connection every transport yields.
// It is exactly net.PacketConn: WriteTo sends one protocol datagram,
// ReadFrom receives one, and boundaries are preserved whatever the
// wire underneath looks like.
type Conn = net.PacketConn

// Transport binds local conns and resolves destination addresses for
// one wire scheme.
type Transport interface {
	// Scheme returns the URL scheme this transport serves (udp, tcp,
	// tls, mem).
	Scheme() string

	// Listen binds a local endpoint. The returned Conn's WriteTo may
	// dial peers lazily (stream transports), so a "listener" is also
	// the dialing side.
	Listen(address string) (Conn, error)

	// Resolve turns an address string into the net.Addr WriteTo
	// expects for this scheme.
	Resolve(address string) (net.Addr, error)
}

// Options tunes transport construction. The zero value is ready to
// use.
type Options struct {
	// TLSServer / TLSClient configure the tls scheme's two sides. A
	// tls listener with a nil TLSServer generates an ephemeral
	// self-signed pair; a nil TLSClient skips certificate verification
	// (the lab default — pass a config with RootCAs to verify).
	TLSServer *TLSConfig
	TLSClient *TLSConfig

	// MaxFrame caps a stream frame's payload length both directions
	// (default DefaultMaxFrame, sized to admit any legal protocol
	// datagram).
	MaxFrame int

	// PeerQueue bounds each peer's pending outbound frames on stream
	// transports; a full queue drops the datagram instead of blocking
	// the send loop (default 256).
	PeerQueue int

	// DialTimeout bounds stream dials (default 5s); WriteTimeout
	// bounds one frame write to a stuck peer before the link is torn
	// down (default 10s).
	DialTimeout  time.Duration
	WriteTimeout time.Duration

	// Mem is the backing network for the mem scheme (required for it,
	// ignored elsewhere).
	Mem *MemNetwork
}

// New returns the Transport for scheme under o. Known schemes are
// udp, tcp, tls, and mem.
func New(scheme string, o Options) (Transport, error) {
	switch scheme {
	case "udp":
		return UDP{}, nil
	case "tcp":
		return newStreamTransport("tcp", o)
	case "tls":
		return newStreamTransport("tls", o)
	case "mem":
		if o.Mem == nil {
			return nil, fmt.Errorf("transport: mem scheme needs Options.Mem")
		}
		return o.Mem.Transport(), nil
	default:
		return nil, fmt.Errorf("transport: unknown scheme %q (want udp, tcp, tls, or mem)", scheme)
	}
}

// Endpoint is a parsed link spec: a scheme plus a scheme-specific
// address.
type Endpoint struct {
	Scheme  string
	Address string
}

// String renders the endpoint back to scheme://address form.
func (e Endpoint) String() string { return e.Scheme + "://" + e.Address }

// ParseEndpoint parses a URL-style link spec ("tcp://host:port").
// Bare "host:port" specs — every address the daemons accepted before
// schemes existed — default to udp.
func ParseEndpoint(spec string) (Endpoint, error) {
	return ParseEndpointDefault(spec, "udp")
}

// ParseEndpointDefault parses spec like ParseEndpoint but applies
// defScheme to bare specs, so a daemon's -transport flag can retarget
// plain host:port addresses without rewriting them.
func ParseEndpointDefault(spec, defScheme string) (Endpoint, error) {
	e := Endpoint{Scheme: defScheme, Address: spec}
	if s, rest, ok := strings.Cut(spec, "://"); ok {
		e.Scheme, e.Address = s, rest
	}
	switch e.Scheme {
	case "udp", "tcp", "tls", "mem":
	default:
		return Endpoint{}, fmt.Errorf("transport: unknown scheme %q in %q (want udp, tcp, tls, or mem)", e.Scheme, spec)
	}
	if e.Address == "" {
		return Endpoint{}, fmt.Errorf("transport: empty address in %q", spec)
	}
	if e.Scheme != "mem" {
		if _, _, err := net.SplitHostPort(e.Address); err != nil {
			return Endpoint{}, fmt.Errorf("transport: %q: %v", spec, err)
		}
	}
	return e, nil
}

// Bind parses spec (bare addresses defaulting to defScheme),
// constructs its transport under o, and listens — the one setup path
// every daemon shares.
func Bind(spec, defScheme string, o Options) (Transport, Conn, error) {
	e, err := ParseEndpointDefault(spec, defScheme)
	if err != nil {
		return nil, nil, err
	}
	t, err := New(e.Scheme, o)
	if err != nil {
		return nil, nil, err
	}
	c, err := t.Listen(e.Address)
	if err != nil {
		return nil, nil, fmt.Errorf("transport: listen %s: %w", e, err)
	}
	return t, c, nil
}

// Resolve parses spec against t's scheme — bare addresses inherit it,
// and an explicit mismatching scheme is an error, because a conn can
// only reach peers on its own wire.
func Resolve(t Transport, spec string) (net.Addr, error) {
	e, err := ParseEndpointDefault(spec, t.Scheme())
	if err != nil {
		return nil, err
	}
	if e.Scheme != t.Scheme() {
		return nil, fmt.Errorf("transport: destination %s does not match transport scheme %s", e, t.Scheme())
	}
	return t.Resolve(e.Address)
}

// UDP is the real-datagram transport: Listen returns the raw
// *net.UDPConn, so netio's sendmmsg/recvmmsg batching and the exact
// pre-abstraction wire bytes apply unchanged.
type UDP struct{}

// Scheme implements Transport.
func (UDP) Scheme() string { return "udp" }

// Listen implements Transport.
func (UDP) Listen(address string) (Conn, error) {
	return net.ListenPacket("udp", address)
}

// Resolve implements Transport.
func (UDP) Resolve(address string) (net.Addr, error) {
	return net.ResolveUDPAddr("udp", address)
}
