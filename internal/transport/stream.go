package transport

import (
	"bufio"
	"crypto/tls"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// The stream transports (tcp, tls) present the same datagram contract
// as a UDP socket: StreamConn implements net.PacketConn over a set of
// per-peer stream connections, one frame per datagram. The crucial
// semantic carried over from the datagram world is drop-don't-block:
// a datagram protocol's send path must never stall on a slow peer, so
// each peer gets a bounded outbound queue and a writer goroutine, and
// a full queue (or an unreachable peer) drops the datagram exactly as
// a congested router would. The soft-state protocol above repairs the
// gap by digest comparison, which is the paper's whole argument for
// announce/listen over hard-state channels.

type streamTransport struct {
	scheme string
	o      Options
}

func newStreamTransport(scheme string, o Options) (Transport, error) {
	if o.MaxFrame <= 0 {
		o.MaxFrame = DefaultMaxFrame
	}
	if o.PeerQueue <= 0 {
		o.PeerQueue = 256
	}
	if o.DialTimeout <= 0 {
		o.DialTimeout = 5 * time.Second
	}
	if o.WriteTimeout <= 0 {
		o.WriteTimeout = 10 * time.Second
	}
	return &streamTransport{scheme: scheme, o: o}, nil
}

// Scheme implements Transport.
func (t *streamTransport) Scheme() string { return t.scheme }

// Resolve implements Transport. Stream peers are addressed by TCP
// address; resolving through net keeps "localhost:9000" and
// "127.0.0.1:9000" from looking like two different peers.
func (t *streamTransport) Resolve(address string) (net.Addr, error) {
	return net.ResolveTCPAddr("tcp", address)
}

// Listen implements Transport.
func (t *streamTransport) Listen(address string) (Conn, error) {
	o := t.o
	var ln net.Listener
	var err error
	if t.scheme == "tls" {
		cfg := serverTLSConfig(o.TLSServer)
		if cfg == nil {
			cfg = &tls.Config{}
		}
		if len(cfg.Certificates) == 0 && cfg.GetCertificate == nil {
			cert, _, err := GenerateSelfSigned("softstate")
			if err != nil {
				return nil, err
			}
			cfg.Certificates = []tls.Certificate{cert}
		}
		ln, err = tls.Listen("tcp", address, cfg)
	} else {
		ln, err = net.Listen("tcp", address)
	}
	if err != nil {
		return nil, err
	}
	sc := &StreamConn{
		scheme: t.scheme,
		o:      o,
		ln:     ln,
		peers:  make(map[string]*streamPeer),
		inbox:  make(chan memPacket, 4096),
		done:   make(chan struct{}),
	}
	go sc.acceptLoop()
	return sc, nil
}

func (t *streamTransport) dial(address string) (net.Conn, error) {
	d := &net.Dialer{Timeout: t.o.DialTimeout}
	if t.scheme == "tls" {
		cfg := clientTLSConfig(t.o.TLSClient)
		return tls.DialWithDialer(d, "tcp", address, cfg)
	}
	return d.Dial("tcp", address)
}

// StreamConn is a net.PacketConn over length-prefixed stream framing.
// WriteTo dials (and caches) a stream to the destination lazily;
// inbound connections register their peer under the remote address so
// replies to a ReadFrom source reuse the accepted stream. Reads share
// MemConn's inbox discipline (bounded channel, overflow drops) and
// its deadline semantics, so the sstp polling loops run unmodified.
type StreamConn struct {
	scheme string
	o      Options
	ln     net.Listener

	mu     sync.Mutex
	peers  map[string]*streamPeer
	closed bool

	inbox chan memPacket
	done  chan struct{}

	deadlineMu sync.Mutex
	deadline   time.Time
	rdTimer    *time.Timer

	// Drops counts datagrams shed by the bounded peer queues, failed
	// dials, and dead peers — the stream analogue of router drops.
	drops atomic.Uint64
}

// streamPeer is one cached stream link: a bounded outbound frame queue
// drained by a writer goroutine, plus a reader goroutine feeding the
// shared inbox.
type streamPeer struct {
	sc   *StreamConn
	key  string
	out  chan *[]byte // pooled length-prefixed frames
	done chan struct{}
	once sync.Once

	connMu sync.Mutex
	conn   net.Conn // nil until dialed/accepted
}

// Drops reports datagrams dropped on the send side (full peer queue,
// dial failure, dead peer).
func (c *StreamConn) Drops() uint64 { return c.drops.Load() }

func (c *StreamConn) acceptLoop() {
	for {
		conn, err := c.ln.Accept()
		if err != nil {
			select {
			case <-c.done:
			default:
				// Transient accept errors (EMFILE etc.): back off and
				// keep serving; a closed listener lands in c.done above.
				select {
				case <-c.done:
				case <-time.After(50 * time.Millisecond):
					continue
				}
			}
			return
		}
		c.adoptConn(conn)
	}
}

// adoptConn registers an accepted stream under its remote address and
// starts its reader/writer. A duplicate peer (simultaneous dial in
// both directions can't produce one — the dialer's local port is
// ephemeral — but a reconnecting peer can) replaces the old link.
func (c *StreamConn) adoptConn(conn net.Conn) {
	key := conn.RemoteAddr().String()
	p := &streamPeer{
		sc:   c,
		key:  key,
		out:  make(chan *[]byte, c.o.PeerQueue),
		done: make(chan struct{}),
		conn: conn,
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		conn.Close()
		return
	}
	old := c.peers[key]
	c.peers[key] = p
	c.mu.Unlock()
	if old != nil {
		old.teardown()
	}
	go p.readLoop(conn)
	go p.writeLoop(conn)
}

// WriteTo implements net.PacketConn: one datagram becomes one frame on
// the destination peer's stream. It never blocks on the network — the
// frame is copied into a pooled buffer and queued, and a full queue or
// missing peer drops it.
func (c *StreamConn) WriteTo(b []byte, addr net.Addr) (int, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return 0, net.ErrClosed
	}
	if len(b) > c.o.MaxFrame {
		c.mu.Unlock()
		return 0, ErrFrameTooBig
	}
	key := addr.String()
	p := c.peers[key]
	if p == nil {
		p = &streamPeer{
			sc:   c,
			key:  key,
			out:  make(chan *[]byte, c.o.PeerQueue),
			done: make(chan struct{}),
		}
		c.peers[key] = p
		go p.runDial(key)
	}
	c.mu.Unlock()

	bp := memPktPool.Get().(*[]byte)
	frame, err := AppendFrame((*bp)[:0], b, c.o.MaxFrame)
	if err != nil {
		memPktPool.Put(bp)
		return 0, err
	}
	*bp = frame
	select {
	case <-p.done:
		memPktPool.Put(bp)
		c.drops.Add(1)
	default:
		select {
		case p.out <- bp:
		default: // bounded queue full: drop, as a router would
			memPktPool.Put(bp)
			c.drops.Add(1)
		}
	}
	return len(b), nil
}

// runDial connects an outbound peer and runs its reader/writer. On
// dial failure the peer is torn down after a short hold-off, so the
// next WriteTo re-dials rather than hammering a dead address.
func (p *streamPeer) runDial(address string) {
	t := &streamTransport{scheme: p.sc.scheme, o: p.sc.o}
	conn, err := t.dial(address)
	if err != nil {
		p.sc.drops.Add(uint64(len(p.out)))
		select {
		case <-time.After(250 * time.Millisecond):
		case <-p.sc.done:
		}
		p.teardown()
		return
	}
	p.connMu.Lock()
	p.conn = conn
	p.connMu.Unlock()
	select {
	case <-p.done: // torn down while dialing
		conn.Close()
		return
	default:
	}
	go p.readLoop(conn)
	p.writeLoop(conn)
}

// writeLoop drains the bounded queue onto the stream. A write error or
// timeout kills the link; queued and future datagrams for this peer
// are dropped until a later WriteTo re-dials.
func (p *streamPeer) writeLoop(conn net.Conn) {
	for {
		select {
		case bp := <-p.out:
			conn.SetWriteDeadline(time.Now().Add(p.sc.o.WriteTimeout))
			_, err := conn.Write(*bp)
			memPktPool.Put(bp)
			if err != nil {
				p.teardown()
				return
			}
		case <-p.done:
			return
		case <-p.sc.done:
			p.teardown()
			return
		}
	}
}

// readLoop decodes frames off the stream into the shared inbox,
// presenting each payload as one datagram from this peer.
func (p *streamPeer) readLoop(conn net.Conn) {
	defer p.teardown()
	from := conn.RemoteAddr()
	br := bufio.NewReaderSize(conn, 32<<10)
	var scratch []byte
	for {
		payload, buf, err := ReadFrame(br, scratch, p.sc.o.MaxFrame)
		scratch = buf
		if err != nil {
			return
		}
		bp := memPktPool.Get().(*[]byte)
		*bp = append((*bp)[:0], payload...)
		p.sc.deliver(memPacket{from: from, data: *bp, buf: bp})
	}
}

func (c *StreamConn) deliver(pkt memPacket) {
	select {
	case <-c.done:
		pkt.recycle()
		return
	default:
	}
	select {
	case c.inbox <- pkt:
	default: // inbox overflow models router drop
		pkt.recycle()
	}
}

// teardown closes the peer's stream, detaches it from the conn, and
// recycles whatever was still queued.
func (p *streamPeer) teardown() {
	p.once.Do(func() {
		close(p.done)
		p.connMu.Lock()
		if p.conn != nil {
			p.conn.Close()
		}
		p.connMu.Unlock()
		p.sc.mu.Lock()
		if p.sc.peers[p.key] == p {
			delete(p.sc.peers, p.key)
		}
		p.sc.mu.Unlock()
		for {
			select {
			case bp := <-p.out:
				memPktPool.Put(bp)
			default:
				return
			}
		}
	})
}

// ReadFrom implements net.PacketConn with MemConn's deadline
// semantics: a reused timer, timeoutError on expiry, net.ErrClosed
// after Close.
func (c *StreamConn) ReadFrom(b []byte) (int, net.Addr, error) {
	c.deadlineMu.Lock()
	dl := c.deadline
	c.deadlineMu.Unlock()
	var timeout <-chan time.Time
	if !dl.IsZero() {
		d := time.Until(dl)
		if d <= 0 {
			return 0, nil, timeoutError{}
		}
		if c.rdTimer == nil {
			c.rdTimer = time.NewTimer(d)
		} else {
			if !c.rdTimer.Stop() {
				select {
				case <-c.rdTimer.C:
				default:
				}
			}
			c.rdTimer.Reset(d)
		}
		timeout = c.rdTimer.C
	}
	select {
	case p := <-c.inbox:
		n := copy(b, p.data)
		p.recycle()
		return n, p.from, nil
	case <-c.done:
		return 0, nil, net.ErrClosed
	case <-timeout:
		return 0, nil, timeoutError{}
	}
}

// Close implements net.PacketConn: the listener and every peer stream
// shut down, and blocked readers return net.ErrClosed.
func (c *StreamConn) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	peers := make([]*streamPeer, 0, len(c.peers))
	for _, p := range c.peers {
		peers = append(peers, p)
	}
	c.mu.Unlock()
	close(c.done)
	err := c.ln.Close()
	for _, p := range peers {
		p.teardown()
	}
	return err
}

// LocalAddr implements net.PacketConn.
func (c *StreamConn) LocalAddr() net.Addr { return c.ln.Addr() }

// SetDeadline implements net.PacketConn.
func (c *StreamConn) SetDeadline(t time.Time) error { return c.SetReadDeadline(t) }

// SetReadDeadline implements net.PacketConn.
func (c *StreamConn) SetReadDeadline(t time.Time) error {
	c.deadlineMu.Lock()
	c.deadline = t
	c.deadlineMu.Unlock()
	return nil
}

// SetWriteDeadline implements net.PacketConn (sends queue, never
// block; the per-frame stream write timeout is Options.WriteTimeout).
func (c *StreamConn) SetWriteDeadline(time.Time) error { return nil }

var _ net.PacketConn = (*StreamConn)(nil)
