package transport

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

// halfReader returns at most half the requested bytes per Read
// (minimum 1), exercising split-read reassembly.
type halfReader struct{ r io.Reader }

func (h halfReader) Read(p []byte) (int, error) {
	n := len(p) / 2
	if n == 0 {
		n = 1
	}
	return h.r.Read(p[:n])
}

func TestFrameRoundTrip(t *testing.T) {
	payloads := [][]byte{
		{},
		[]byte("x"),
		[]byte("hello frame"),
		bytes.Repeat([]byte{0xAB}, 1400),
		bytes.Repeat([]byte{0x00}, DefaultMaxFrame), // exactly at the cap
	}
	// Coalesced writes: every frame lands in one contiguous stream
	// buffer, as when a peer's writer goroutine runs ahead of the
	// reader.
	var stream []byte
	for _, p := range payloads {
		var err error
		stream, err = AppendFrame(stream, p, 0)
		if err != nil {
			t.Fatalf("AppendFrame(%d bytes): %v", len(p), err)
		}
	}
	for name, r := range map[string]io.Reader{
		"whole": bytes.NewReader(stream),
		"split": halfReader{bytes.NewReader(stream)},
	} {
		var buf []byte
		for i, want := range payloads {
			got, nbuf, err := ReadFrame(r, buf, 0)
			buf = nbuf
			if err != nil {
				t.Fatalf("%s: frame %d: %v", name, i, err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("%s: frame %d = %d bytes, want %d", name, i, len(got), len(want))
			}
		}
		if _, _, err := ReadFrame(r, buf, 0); err != io.EOF {
			t.Fatalf("%s: after last frame err = %v, want io.EOF", name, err)
		}
	}
}

func TestFrameMaxEnforced(t *testing.T) {
	big := make([]byte, DefaultMaxFrame+1)
	if _, err := AppendFrame(nil, big, 0); !errors.Is(err, ErrFrameTooBig) {
		t.Fatalf("AppendFrame over cap: err = %v, want ErrFrameTooBig", err)
	}
	// A reader must reject an oversize announced length without
	// buffering the payload — this is the hostile-peer guard.
	frame, err := AppendFrame(nil, bytes.Repeat([]byte{1}, 128), 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := ReadFrame(bytes.NewReader(frame), nil, 64); !errors.Is(err, ErrFrameTooBig) {
		t.Fatalf("ReadFrame over cap: err = %v, want ErrFrameTooBig", err)
	}
}

func TestFrameTruncation(t *testing.T) {
	frame, err := AppendFrame(nil, []byte("truncate me please"), 0)
	if err != nil {
		t.Fatal(err)
	}
	// Every cut inside the frame (header or payload) must yield
	// ErrFrameTruncated, never a short payload or a bogus success.
	for cut := 1; cut < len(frame); cut++ {
		_, _, err := ReadFrame(bytes.NewReader(frame[:cut]), nil, 0)
		if !errors.Is(err, ErrFrameTruncated) {
			t.Fatalf("cut at %d: err = %v, want ErrFrameTruncated", cut, err)
		}
	}
	// A cut exactly between frames is a clean EOF.
	if _, _, err := ReadFrame(bytes.NewReader(nil), nil, 0); err != io.EOF {
		t.Fatalf("empty stream: err = %v, want io.EOF", err)
	}
}

// FuzzFrameRoundTrip pins that any payload under the cap survives
// framing byte-identically, through both whole and split reads.
func FuzzFrameRoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("soft state"))
	f.Add(bytes.Repeat([]byte{0xFF}, 4096))
	f.Fuzz(func(t *testing.T, payload []byte) {
		if len(payload) > DefaultMaxFrame {
			payload = payload[:DefaultMaxFrame]
		}
		frame, err := AppendFrame(nil, payload, 0)
		if err != nil {
			t.Fatal(err)
		}
		got, _, err := ReadFrame(bytes.NewReader(frame), nil, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("round trip changed payload: %d bytes -> %d", len(payload), len(got))
		}
		got, _, err = ReadFrame(halfReader{bytes.NewReader(frame)}, nil, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, payload) {
			t.Fatal("split-read round trip changed payload")
		}
		// Any strict prefix must fail cleanly.
		if len(frame) > 1 {
			if _, _, err := ReadFrame(bytes.NewReader(frame[:len(frame)-1]), nil, 0); !errors.Is(err, ErrFrameTruncated) {
				t.Fatalf("truncated tail: err = %v", err)
			}
		}
	})
}
