package transport

import (
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/tls"
	"crypto/x509"
	"crypto/x509/pkix"
	"encoding/pem"
	"fmt"
	"math/big"
	"net"
	"os"
	"time"
)

// TLSConfig is the standard library's tls.Config; aliased so callers
// of Options don't need a second crypto/tls import line for the
// common no-TLS case.
type TLSConfig = tls.Config

func serverTLSConfig(c *TLSConfig) *tls.Config {
	if c == nil {
		return nil
	}
	return c.Clone()
}

func clientTLSConfig(c *TLSConfig) *tls.Config {
	if c == nil {
		// Lab default: encrypted but unauthenticated, like an ad-hoc
		// self-signed deployment. Pass Options.TLSClient with RootCAs
		// (see TLSOptions) to verify peers.
		return &tls.Config{InsecureSkipVerify: true}
	}
	return c.Clone()
}

// GenerateSelfSigned mints an ephemeral ECDSA P-256 certificate,
// self-signed, valid for a year, with loopback and localhost SANs —
// enough for the tls transport's smoke tests and for lab deployments
// that have not provisioned real certificates. It returns the
// certificate ready for a tls.Config plus its PEM encoding so the
// client side can pin it as a root.
func GenerateSelfSigned(commonName string) (tls.Certificate, []byte, error) {
	key, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		return tls.Certificate{}, nil, err
	}
	serial, err := rand.Int(rand.Reader, new(big.Int).Lsh(big.NewInt(1), 128))
	if err != nil {
		return tls.Certificate{}, nil, err
	}
	tmpl := x509.Certificate{
		SerialNumber: serial,
		Subject:      pkix.Name{CommonName: commonName},
		NotBefore:    time.Now().Add(-time.Hour),
		NotAfter:     time.Now().Add(365 * 24 * time.Hour),
		KeyUsage:     x509.KeyUsageDigitalSignature | x509.KeyUsageCertSign,
		ExtKeyUsage: []x509.ExtKeyUsage{
			x509.ExtKeyUsageServerAuth, x509.ExtKeyUsageClientAuth,
		},
		BasicConstraintsValid: true,
		IsCA:                  true,
		DNSNames:              []string{"localhost", commonName},
		IPAddresses:           []net.IP{net.IPv4(127, 0, 0, 1), net.IPv6loopback},
	}
	der, err := x509.CreateCertificate(rand.Reader, &tmpl, &tmpl, &key.PublicKey, key)
	if err != nil {
		return tls.Certificate{}, nil, err
	}
	certPEM := pem.EncodeToMemory(&pem.Block{Type: "CERTIFICATE", Bytes: der})
	keyDER, err := x509.MarshalECPrivateKey(key)
	if err != nil {
		return tls.Certificate{}, nil, err
	}
	keyPEM := pem.EncodeToMemory(&pem.Block{Type: "EC PRIVATE KEY", Bytes: keyDER})
	cert, err := tls.X509KeyPair(certPEM, keyPEM)
	if err != nil {
		return tls.Certificate{}, nil, err
	}
	return cert, certPEM, nil
}

// TLSOptions assembles Options' TLS half from PEM files — the one
// flag-parsing path the daemons share.
//
//   - certFile/keyFile: this node's certificate for tls listeners.
//     Empty generates an ephemeral self-signed pair at Listen time.
//   - caFile: roots for verifying peers. On the dialing side it turns
//     verification on (the default is InsecureSkipVerify); on the
//     listening side it additionally requires and verifies client
//     certificates (mTLS).
//   - serverName overrides the name dialed certificates are checked
//     against (useful when dialing by IP with a CA that issued
//     hostname certs).
func TLSOptions(certFile, keyFile, caFile, serverName string) (Options, error) {
	var o Options
	server := &tls.Config{}
	client := &tls.Config{InsecureSkipVerify: true}
	if certFile != "" || keyFile != "" {
		cert, err := tls.LoadX509KeyPair(certFile, keyFile)
		if err != nil {
			return o, fmt.Errorf("transport: load key pair: %w", err)
		}
		server.Certificates = []tls.Certificate{cert}
		client.Certificates = []tls.Certificate{cert}
		o.TLSServer = server
	}
	if caFile != "" {
		pemBytes, err := os.ReadFile(caFile)
		if err != nil {
			return o, fmt.Errorf("transport: read CA: %w", err)
		}
		pool := x509.NewCertPool()
		if !pool.AppendCertsFromPEM(pemBytes) {
			return o, fmt.Errorf("transport: no certificates in %s", caFile)
		}
		client.RootCAs = pool
		client.InsecureSkipVerify = false
		client.ServerName = serverName
		server.ClientCAs = pool
		server.ClientAuth = tls.RequireAndVerifyClientCert
		if o.TLSServer == nil {
			o.TLSServer = server // mTLS with an ephemeral server cert
		}
	}
	o.TLSClient = client
	return o, nil
}
