package transport_test

// The transport-equivalence gate: the same publish sequence, run over
// the mem, udp, and tcp transports, must converge every receiver to
// the same namespace root digest — and that digest must be identical
// across transports, because the protocol bytes (and therefore the
// record set, versions, and digest tree) are transport-invariant.
// External test package: it drives the real sstp stack over the
// transports, which the transport package itself cannot import.

import (
	"fmt"
	"net"
	"testing"
	"time"

	"softstate/internal/namespace"
	"softstate/internal/sstp"
	"softstate/internal/transport"
)

const (
	eqRecords   = 64
	eqReceivers = 2
)

// fanout emulates multicast over unicast: every WriteTo is duplicated
// to each receiver destination (the same trick ssload -udp uses).
type fanout struct {
	net.PacketConn
	dests []net.Addr
}

func (f *fanout) WriteTo(b []byte, _ net.Addr) (int, error) {
	var n int
	var err error
	for _, d := range f.dests {
		n, err = f.PacketConn.WriteTo(b, d)
	}
	return n, err
}

// runQuickProfile runs the ssload quick profile (64 records, 2
// receivers, 1s churn) over the given conns and returns the sender's
// converged root digest after asserting every receiver reached it.
func runQuickProfile(t *testing.T, name string, senderConn transport.Conn, rcvConns []transport.Conn, dest, feedback net.Addr) namespace.Digest {
	t.Helper()
	s, err := sstp.NewSender(sstp.SenderConfig{
		Session: 42, SenderID: 1,
		Conn: senderConn, Dest: dest,
		TotalRate:       1_000_000,
		SummaryInterval: 100 * time.Millisecond,
		TTL:             10 * time.Second,
		Seed:            1,
	})
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	defer s.Close()
	var rcvs []*sstp.Receiver
	for i, rc := range rcvConns {
		r, err := sstp.NewReceiver(sstp.ReceiverConfig{
			Session: 42, ReceiverID: uint64(100 + i),
			Conn: rc, FeedbackDest: feedback,
			NACKWindow: 50 * time.Millisecond,
			Seed:       int64(1 + i),
		})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		defer r.Close()
		rcvs = append(rcvs, r)
	}
	value := []byte("equivalence-value-0123456789")
	for i := 0; i < eqRecords; i++ {
		if err := s.Publish(fmt.Sprintf("load/%03d/%d", i%32, i), value, 0); err != nil {
			t.Fatalf("%s: publish: %v", name, err)
		}
	}
	s.Start()
	for _, r := range rcvs {
		r.Start()
	}
	deadline := time.Now().Add(20 * time.Second)
	for time.Now().Before(deadline) {
		want := s.RootDigest()
		n := 0
		for _, r := range rcvs {
			if r.Len() == eqRecords && r.RootDigest() == want {
				n++
			}
		}
		if n == len(rcvs) {
			return want
		}
		time.Sleep(20 * time.Millisecond)
	}
	for i, r := range rcvs {
		t.Logf("%s: receiver %d: %d/%d records", name, i, r.Len(), eqRecords)
	}
	t.Fatalf("%s: receivers did not converge", name)
	return namespace.Digest{}
}

func TestTransportEquivalence(t *testing.T) {
	digests := make(map[string]namespace.Digest)

	// mem: the multicast group topology every bench uses.
	{
		nw := transport.NewMemNetwork(1)
		group := transport.MemAddr("group")
		sc := nw.Endpoint("sender")
		nw.Join(group, "sender")
		var rcs []transport.Conn
		for i := 0; i < eqReceivers; i++ {
			addr := transport.MemAddr(fmt.Sprintf("rcv%d", i))
			rcs = append(rcs, nw.Endpoint(addr))
			nw.Join(group, addr)
		}
		digests["mem"] = runQuickProfile(t, "mem", sc, rcs, group, group)
	}

	// udp and tcp: loopback unicast fan-out. The sender conn fans
	// announcements to every receiver; feedback goes to the sender's
	// own listen address.
	for _, scheme := range []string{"udp", "tcp"} {
		tr, err := transport.New(scheme, transport.Options{})
		if err != nil {
			t.Fatal(err)
		}
		sc, err := tr.Listen("127.0.0.1:0")
		if err != nil {
			t.Skipf("no %s in this environment: %v", scheme, err)
		}
		defer sc.Close()
		var rcs []transport.Conn
		var dests []net.Addr
		for i := 0; i < eqReceivers; i++ {
			rc, err := tr.Listen("127.0.0.1:0")
			if err != nil {
				t.Skipf("no %s in this environment: %v", scheme, err)
			}
			defer rc.Close()
			rcs = append(rcs, rc)
			d, err := tr.Resolve(rc.LocalAddr().String())
			if err != nil {
				t.Fatal(err)
			}
			dests = append(dests, d)
		}
		feedback, err := tr.Resolve(sc.LocalAddr().String())
		if err != nil {
			t.Fatal(err)
		}
		fan := &fanout{PacketConn: sc, dests: dests}
		digests[scheme] = runQuickProfile(t, scheme, fan, rcs, dests[0], feedback)
	}

	if digests["mem"] != digests["udp"] || digests["udp"] != digests["tcp"] {
		t.Fatalf("converged digests differ across transports: mem=%x udp=%x tcp=%x",
			digests["mem"], digests["udp"], digests["tcp"])
	}
}
