package transport

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"softstate/internal/xrand"
)

// MemAddr is the address of an in-memory endpoint or group.
type MemAddr string

// Network implements net.Addr.
func (a MemAddr) Network() string { return "mem" }

// String implements net.Addr.
func (a MemAddr) String() string { return string(a) }

// MemNetwork is an in-process datagram network with per-path Bernoulli
// loss, propagation delay, and uniform delay jitter — the loss-prone
// channel of the model, usable wherever a net.PacketConn is expected.
// It supports multicast-style groups: writing to a group address fans
// the datagram out to every member except the writer (receivers
// therefore hear each other's NACKs, which exercises
// slotting-and-damping suppression). Loss draws and jitter draws both
// come from the single seeded RNG, so a topology replayed with the
// same seed sees the same drop/delay sequence.
type MemNetwork struct {
	mu        sync.Mutex
	rnd       *xrand.Rand
	endpoints map[MemAddr]*MemConn
	groups    map[MemAddr]map[MemAddr]bool
	loss      map[[2]MemAddr]float64
	delay     map[[2]MemAddr]time.Duration
	jitter    map[[2]MemAddr]time.Duration
	down      map[[2]MemAddr]bool
	addrbox   map[MemAddr]net.Addr // cached interface boxings of sources
	defLoss   float64
	defDelay  time.Duration
	defJitter time.Duration
}

// NewMemNetwork returns an empty network with the given RNG seed.
func NewMemNetwork(seed int64) *MemNetwork {
	return &MemNetwork{
		rnd:       xrand.New(seed),
		endpoints: make(map[MemAddr]*MemConn),
		groups:    make(map[MemAddr]map[MemAddr]bool),
		loss:      make(map[[2]MemAddr]float64),
		delay:     make(map[[2]MemAddr]time.Duration),
		jitter:    make(map[[2]MemAddr]time.Duration),
		down:      make(map[[2]MemAddr]bool),
		addrbox:   make(map[MemAddr]net.Addr),
	}
}

// Transport returns the network as a Transport with scheme "mem", so
// in-process topologies plug into the same Bind/Resolve path as real
// sockets.
func (n *MemNetwork) Transport() Transport { return memTransport{n} }

type memTransport struct{ n *MemNetwork }

// Scheme implements Transport.
func (memTransport) Scheme() string { return "mem" }

// Listen implements Transport.
func (t memTransport) Listen(address string) (Conn, error) {
	return t.n.Endpoint(MemAddr(address)), nil
}

// Resolve implements Transport.
func (t memTransport) Resolve(address string) (net.Addr, error) {
	return MemAddr(address), nil
}

// SetDefaultLoss sets the loss probability for paths without a
// specific override.
func (n *MemNetwork) SetDefaultLoss(p float64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.defLoss = p
}

// SetLoss sets the loss probability on the directed path from → to.
func (n *MemNetwork) SetLoss(from, to MemAddr, p float64) {
	if p < 0 || p > 1 {
		panic(fmt.Sprintf("transport: loss %v out of [0,1]", p))
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	n.loss[[2]MemAddr{from, to}] = p
}

// SetDelay sets the propagation delay on the directed path from → to.
func (n *MemNetwork) SetDelay(from, to MemAddr, d time.Duration) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.delay[[2]MemAddr{from, to}] = d
}

// SetDefaultDelay sets the propagation delay for paths without a
// specific override.
func (n *MemNetwork) SetDefaultDelay(d time.Duration) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.defDelay = d
}

// SetJitter sets the maximum extra delay on the directed path from →
// to: each datagram is delayed by its path delay plus a uniform draw
// in [0, j) from the network's seeded RNG.
func (n *MemNetwork) SetJitter(from, to MemAddr, j time.Duration) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.jitter[[2]MemAddr{from, to}] = j
}

// SetDefaultJitter sets the jitter bound for paths without a specific
// override.
func (n *MemNetwork) SetDefaultJitter(j time.Duration) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.defJitter = j
}

// SetLinkDown severs the path between a and b in both directions:
// every datagram on the link is dropped, as if the cable were cut.
// Unlike a loss probability of 1 it consumes no RNG draws, so cutting
// a link mid-test leaves the rest of the seeded drop/delay sequence
// untouched — partition and churn tests stay deterministic. Either
// address may also be a group address, which severs the pair for the
// group fan-out as a whole (per-member paths can still be cut
// individually).
func (n *MemNetwork) SetLinkDown(a, b MemAddr) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.down[[2]MemAddr{a, b}] = true
	n.down[[2]MemAddr{b, a}] = true
}

// SetLinkUp heals a link severed by SetLinkDown (both directions).
func (n *MemNetwork) SetLinkUp(a, b MemAddr) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.down, [2]MemAddr{a, b})
	delete(n.down, [2]MemAddr{b, a})
}

// Partition severs every link between the two sides, in both
// directions — the one-call way to split a mesh for a partition-heal
// test. Heal with HealAll (or SetLinkUp per pair).
func (n *MemNetwork) Partition(sideA, sideB []MemAddr) {
	n.mu.Lock()
	defer n.mu.Unlock()
	for _, a := range sideA {
		for _, b := range sideB {
			n.down[[2]MemAddr{a, b}] = true
			n.down[[2]MemAddr{b, a}] = true
		}
	}
}

// HealAll restores every severed link.
func (n *MemNetwork) HealAll() {
	n.mu.Lock()
	defer n.mu.Unlock()
	clear(n.down)
}

// Endpoint creates (or returns) the endpoint with the given address.
func (n *MemNetwork) Endpoint(addr MemAddr) *MemConn {
	n.mu.Lock()
	defer n.mu.Unlock()
	if c, ok := n.endpoints[addr]; ok && !c.closed.Load() {
		return c
	}
	c := &MemConn{
		net:   n,
		addr:  addr,
		inbox: make(chan memPacket, 4096),
	}
	n.endpoints[addr] = c
	return c
}

// Join adds an endpoint to a multicast group address.
func (n *MemNetwork) Join(group MemAddr, member MemAddr) {
	n.mu.Lock()
	defer n.mu.Unlock()
	g := n.groups[group]
	if g == nil {
		g = make(map[MemAddr]bool)
		n.groups[group] = g
	}
	g[member] = true
}

// Leave removes an endpoint from a group.
func (n *MemNetwork) Leave(group MemAddr, member MemAddr) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if g := n.groups[group]; g != nil {
		delete(g, member)
	}
}

func (n *MemNetwork) route(from MemAddr, to MemAddr, b []byte) {
	n.mu.Lock()
	// Stack-backed scratch: fan-outs wider than the arrays fall back to
	// the heap, but the common unicast/small-group case stays
	// allocation-free.
	var tbuf [16]MemAddr
	targets := tbuf[:0]
	if members, isGroup := n.groups[to]; isGroup {
		for m := range members {
			if m != from {
				targets = append(targets, m)
			}
		}
	} else {
		targets = append(targets, to)
	}
	// Box the source address once per datagram, cached across calls, so
	// ReadFrom can hand it back without a per-read allocation.
	src, ok := n.addrbox[from]
	if !ok {
		src = from
		n.addrbox[from] = src
	}
	type hop struct {
		c *MemConn
		d time.Duration
	}
	var hbuf [16]hop
	hops := hbuf[:0]
	cut := n.down[[2]MemAddr{from, to}] // group-level cut when to is a group
	for _, tgt := range targets {
		c, ok := n.endpoints[tgt]
		if !ok || c.closed.Load() {
			continue
		}
		if cut || n.down[[2]MemAddr{from, tgt}] {
			continue
		}
		p, ok := n.loss[[2]MemAddr{from, tgt}]
		if !ok {
			p = n.defLoss
		}
		if n.rnd.Bernoulli(p) {
			continue
		}
		d, ok := n.delay[[2]MemAddr{from, tgt}]
		if !ok {
			d = n.defDelay
		}
		j, ok := n.jitter[[2]MemAddr{from, tgt}]
		if !ok {
			j = n.defJitter
		}
		if j > 0 {
			d += time.Duration(n.rnd.Float64() * float64(j))
		}
		hops = append(hops, hop{c, d})
	}
	n.mu.Unlock()
	for _, h := range hops {
		bp := memPktPool.Get().(*[]byte)
		*bp = append((*bp)[:0], b...)
		pkt := memPacket{from: src, data: *bp, buf: bp}
		if h.d > 0 {
			go func(c *MemConn, pkt memPacket, d time.Duration) {
				time.Sleep(d)
				c.deliver(pkt)
			}(h.c, pkt, h.d)
		} else {
			h.c.deliver(pkt)
		}
	}
}

// memPktPool recycles per-hop datagram copies: a load test pushing
// hundreds of thousands of datagrams through a MemNetwork would
// otherwise allocate one buffer per hop. Buffers return to the pool
// when the packet is read or dropped.
var memPktPool = sync.Pool{New: func() any {
	b := make([]byte, 0, 2048)
	return &b
}}

type memPacket struct {
	from net.Addr // pre-boxed MemAddr so reads don't allocate
	data []byte
	buf  *[]byte // pooled backing store; recycled after read or drop
}

// recycle returns the packet's backing buffer to the pool.
func (p *memPacket) recycle() {
	if p.buf != nil {
		memPktPool.Put(p.buf)
		p.buf = nil
	}
}

// MemConn is one endpoint of a MemNetwork; it implements
// net.PacketConn.
type MemConn struct {
	net   *MemNetwork
	addr  MemAddr
	inbox chan memPacket
	mu    sync.Mutex

	// closed is atomic so the network's routing fast path (which holds
	// only the network lock) can test liveness without racing Close;
	// mu still orders the closed-check against the inbox send/close.
	closed atomic.Bool

	deadlineMu sync.Mutex
	deadline   time.Time
}

// memTimerPool recycles read-deadline timers across ReadFrom calls.
// Pooling (rather than a per-conn timer field) keeps deadline reads
// allocation-free while staying correct when several goroutines read
// one conn concurrently — tests share endpoints to model multicast
// sockets, and a shared timer would let one reader's Reset clobber
// another's pending wait.
var memTimerPool = sync.Pool{New: func() any {
	t := time.NewTimer(time.Hour)
	t.Stop()
	return t
}}

func (c *MemConn) deliver(p memPacket) {
	// Hold the lock across the (non-blocking) send so Close cannot
	// close the inbox between the check and the send.
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed.Load() {
		return
	}
	select {
	case c.inbox <- p:
	default: // queue overflow models router drop
		p.recycle()
	}
}

// ReadFrom implements net.PacketConn.
func (c *MemConn) ReadFrom(b []byte) (int, net.Addr, error) {
	c.deadlineMu.Lock()
	dl := c.deadline
	c.deadlineMu.Unlock()
	var timeout <-chan time.Time
	var tm *time.Timer
	if !dl.IsZero() {
		d := time.Until(dl)
		if d <= 0 {
			return 0, nil, timeoutError{}
		}
		tm = memTimerPool.Get().(*time.Timer)
		if !tm.Stop() {
			select {
			case <-tm.C:
			default:
			}
		}
		tm.Reset(d)
		timeout = tm.C
	}
	defer func() {
		if tm == nil {
			return
		}
		if !tm.Stop() {
			select {
			case <-tm.C:
			default:
			}
		}
		memTimerPool.Put(tm)
	}()
	select {
	case p, ok := <-c.inbox:
		if !ok {
			return 0, nil, net.ErrClosed
		}
		n := copy(b, p.data)
		p.recycle()
		return n, p.from, nil
	case <-timeout:
		return 0, nil, timeoutError{}
	}
}

// WriteTo implements net.PacketConn.
func (c *MemConn) WriteTo(b []byte, addr net.Addr) (int, error) {
	if c.closed.Load() {
		return 0, net.ErrClosed
	}
	to, ok := addr.(MemAddr)
	if !ok {
		return 0, fmt.Errorf("transport: MemConn cannot write to %T", addr)
	}
	c.net.route(c.addr, to, b)
	return len(b), nil
}

// Close implements net.PacketConn.
func (c *MemConn) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed.Load() {
		return nil
	}
	c.closed.Store(true)
	close(c.inbox)
	return nil
}

// LocalAddr implements net.PacketConn.
func (c *MemConn) LocalAddr() net.Addr { return c.addr }

// SetDeadline implements net.PacketConn.
func (c *MemConn) SetDeadline(t time.Time) error { return c.SetReadDeadline(t) }

// SetReadDeadline implements net.PacketConn.
func (c *MemConn) SetReadDeadline(t time.Time) error {
	c.deadlineMu.Lock()
	c.deadline = t
	c.deadlineMu.Unlock()
	return nil
}

// SetWriteDeadline implements net.PacketConn (writes never block).
func (c *MemConn) SetWriteDeadline(time.Time) error { return nil }

type timeoutError struct{}

func (timeoutError) Error() string   { return "transport: i/o timeout" }
func (timeoutError) Timeout() bool   { return true }
func (timeoutError) Temporary() bool { return true }
