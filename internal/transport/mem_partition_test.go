package transport

import (
	"testing"
	"time"
)

// expectRead asserts the next datagram on c is payload.
func expectRead(t *testing.T, c *MemConn, payload string) {
	t.Helper()
	_ = c.SetReadDeadline(time.Now().Add(time.Second))
	buf := make([]byte, 64)
	n, _, err := c.ReadFrom(buf)
	if err != nil {
		t.Fatalf("ReadFrom: %v", err)
	}
	if string(buf[:n]) != payload {
		t.Fatalf("read %q, want %q", buf[:n], payload)
	}
}

// expectSilence asserts no datagram arrives on c within the grace
// window (deliveries on an un-delayed MemNetwork are synchronous, so a
// short window suffices).
func expectSilence(t *testing.T, c *MemConn) {
	t.Helper()
	_ = c.SetReadDeadline(time.Now().Add(20 * time.Millisecond))
	buf := make([]byte, 64)
	if n, from, err := c.ReadFrom(buf); err == nil {
		t.Fatalf("unexpected datagram %q from %v on a severed link", buf[:n], from)
	}
}

func TestMemNetworkSetLinkDown(t *testing.T) {
	nw := NewMemNetwork(7)
	a := nw.Endpoint("a")
	b := nw.Endpoint("b")
	c := nw.Endpoint("c")

	// Baseline: a→b delivers.
	if _, err := a.WriteTo([]byte("one"), MemAddr("b")); err != nil {
		t.Fatal(err)
	}
	expectRead(t, b, "one")

	// Severed: both directions drop, third parties are untouched.
	nw.SetLinkDown("a", "b")
	_, _ = a.WriteTo([]byte("lost"), MemAddr("b"))
	expectSilence(t, b)
	_, _ = b.WriteTo([]byte("lost"), MemAddr("a"))
	expectSilence(t, a)
	if _, err := a.WriteTo([]byte("side"), MemAddr("c")); err != nil {
		t.Fatal(err)
	}
	expectRead(t, c, "side")

	// Healed: traffic resumes with no residue.
	nw.SetLinkUp("a", "b")
	if _, err := a.WriteTo([]byte("two"), MemAddr("b")); err != nil {
		t.Fatal(err)
	}
	expectRead(t, b, "two")
}

func TestMemNetworkLinkDownGroupFanOut(t *testing.T) {
	nw := NewMemNetwork(7)
	a := nw.Endpoint("a")
	b := nw.Endpoint("b")
	c := nw.Endpoint("c")
	_ = a
	nw.Join("grp", "b")
	nw.Join("grp", "c")

	// Cutting a member path prunes only that member from the fan-out.
	nw.SetLinkDown("a", "b")
	if _, err := a.WriteTo([]byte("fan"), MemAddr("grp")); err != nil {
		t.Fatal(err)
	}
	expectRead(t, c, "fan")
	expectSilence(t, b)

	// Cutting the group address itself silences the whole fan-out.
	nw.SetLinkDown("a", "grp")
	_, _ = a.WriteTo([]byte("mute"), MemAddr("grp"))
	expectSilence(t, c)

	// HealAll restores every severed pair at once.
	nw.HealAll()
	if _, err := a.WriteTo([]byte("back"), MemAddr("grp")); err != nil {
		t.Fatal(err)
	}
	expectRead(t, b, "back")
	expectRead(t, c, "back")
}

func TestMemNetworkPartition(t *testing.T) {
	nw := NewMemNetwork(7)
	addrs := []MemAddr{"p0", "p1", "p2", "p3"}
	conns := make([]*MemConn, len(addrs))
	for i, ad := range addrs {
		conns[i] = nw.Endpoint(ad)
	}
	nw.Partition(addrs[:2], addrs[2:])

	// Cross-partition paths are dead both ways; intra-partition lives.
	_, _ = conns[0].WriteTo([]byte("x"), addrs[2])
	expectSilence(t, conns[2])
	_, _ = conns[3].WriteTo([]byte("x"), addrs[1])
	expectSilence(t, conns[1])
	if _, err := conns[0].WriteTo([]byte("in"), addrs[1]); err != nil {
		t.Fatal(err)
	}
	expectRead(t, conns[1], "in")

	nw.HealAll()
	if _, err := conns[0].WriteTo([]byte("healed"), addrs[2]); err != nil {
		t.Fatal(err)
	}
	expectRead(t, conns[2], "healed")
}
