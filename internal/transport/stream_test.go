package transport

import (
	"bytes"
	"fmt"
	"net"
	"os"
	"testing"
	"time"
)

func listenStream(t *testing.T, scheme string, o Options) (Transport, Conn) {
	t.Helper()
	tr, err := New(scheme, o)
	if err != nil {
		t.Fatal(err)
	}
	c, err := tr.Listen("127.0.0.1:0")
	if err != nil {
		t.Skipf("no %s listener in this environment: %v", scheme, err)
	}
	t.Cleanup(func() { c.Close() })
	return tr, c
}

// testStreamRoundTrip drives datagrams both directions over a stream
// scheme: a→b exercises the lazy dial, b→a the reply path over the
// accepted conn's registered peer... or a fresh dial back to a's
// listener, depending on which address b answers to. Both must
// preserve datagram boundaries and bytes.
func testStreamRoundTrip(t *testing.T, scheme string, o Options) {
	ta, a := listenStream(t, scheme, o)
	_, b := listenStream(t, scheme, o)

	dest, err := ta.Resolve(b.LocalAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	var sent [][]byte
	for i := 0; i < 20; i++ {
		sent = append(sent, []byte(fmt.Sprintf("datagram-%02d|%s", i, bytes.Repeat([]byte{byte(i)}, i*7))))
	}
	for _, p := range sent {
		if _, err := a.WriteTo(p, dest); err != nil {
			t.Fatal(err)
		}
	}
	b.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 4096)
	var from net.Addr
	for i, want := range sent {
		n, src, err := b.ReadFrom(buf)
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		if !bytes.Equal(buf[:n], want) {
			t.Fatalf("datagram %d corrupted over %s: got %d bytes, want %d", i, scheme, n, len(want))
		}
		from = src
	}

	// Reply to the source address ReadFrom reported — the sstp
	// receiver's feedback pattern — which must reuse the accepted
	// stream rather than dialing the peer's ephemeral port.
	reply := []byte("nack nack")
	if _, err := b.WriteTo(reply, from); err != nil {
		t.Fatal(err)
	}
	a.SetReadDeadline(time.Now().Add(5 * time.Second))
	n, _, err := a.ReadFrom(buf)
	if err != nil {
		t.Fatalf("reply read: %v", err)
	}
	if !bytes.Equal(buf[:n], reply) {
		t.Fatalf("reply corrupted: %q", buf[:n])
	}
}

func TestTCPStreamRoundTrip(t *testing.T) { testStreamRoundTrip(t, "tcp", Options{}) }

func TestTLSStreamRoundTrip(t *testing.T) {
	// Self-signed everywhere: the server generates its pair at Listen,
	// the client skips verification — the zero-config lab default.
	testStreamRoundTrip(t, "tls", Options{})
}

func TestTLSStreamVerified(t *testing.T) {
	// Verified mTLS through the daemons' flag path: one self-signed
	// identity doubles as the CA file, so both sides verify each other
	// against it.
	cert, certPEM, err := GenerateSelfSigned("softstate-test")
	if err != nil {
		t.Fatal(err)
	}
	certFile := t.TempDir() + "/cert.pem"
	if err := os.WriteFile(certFile, certPEM, 0o600); err != nil {
		t.Fatal(err)
	}
	opts, err := TLSOptions("", "", certFile, "localhost")
	if err != nil {
		t.Fatal(err)
	}
	opts.TLSServer.Certificates = append(opts.TLSServer.Certificates, cert)
	opts.TLSClient.Certificates = append(opts.TLSClient.Certificates, cert)
	opts.TLSClient.ServerName = "localhost"
	testStreamRoundTrip(t, "tls", opts)
}

func TestStreamDropDontBlock(t *testing.T) {
	// A destination nobody listens on: every datagram must be shed
	// without blocking WriteTo, and the drop counter must say so.
	tr, a := listenStream(t, "tcp", Options{PeerQueue: 4, DialTimeout: 200 * time.Millisecond})
	dead, err := tr.Resolve("127.0.0.1:1") // reserved port, nothing there
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 64; i++ {
			if _, err := a.WriteTo([]byte("into the void"), dead); err != nil {
				t.Errorf("WriteTo must not fail on a dead peer: %v", err)
				return
			}
		}
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("WriteTo blocked on a dead peer — drop-don't-block violated")
	}
	deadline := time.Now().Add(2 * time.Second)
	sc := a.(*StreamConn)
	for sc.Drops() == 0 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if sc.Drops() == 0 {
		t.Fatal("no drops recorded for an unreachable peer")
	}
}

func TestStreamOversizeDatagram(t *testing.T) {
	tr, a := listenStream(t, "tcp", Options{MaxFrame: 512})
	dest, err := tr.Resolve(a.LocalAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.WriteTo(make([]byte, 513), dest); err == nil {
		t.Fatal("oversize datagram accepted")
	}
}

func TestStreamCloseUnblocksReader(t *testing.T) {
	_, a := listenStream(t, "tcp", Options{})
	errc := make(chan error, 1)
	go func() {
		buf := make([]byte, 64)
		_, _, err := a.ReadFrom(buf)
		errc <- err
	}()
	time.Sleep(50 * time.Millisecond)
	a.Close()
	select {
	case err := <-errc:
		if err != net.ErrClosed {
			t.Fatalf("blocked reader got %v, want net.ErrClosed", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Close did not unblock ReadFrom")
	}
}
