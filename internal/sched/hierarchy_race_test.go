package sched

import (
	"sync"
	"testing"
	"time"
)

// TestHierarchyConcurrentRetune pins that runtime weight retuning
// (SetWeight / SetNodeWeight) is safe against a concurrent Pick/Charge
// loop — the session fabric adjusts tenant shares while the sender's
// pick loop is live. Run under -race this fails loudly if the internal
// lock ever regresses.
func TestHierarchyConcurrentRetune(t *testing.T) {
	h := NewHierarchy(func() Scheduler { return NewStride() })
	data := h.AddNode(h.Root(), "data", 1)
	hot := h.AddLeaf(data, "hot", 0.9)
	cold := h.AddLeaf(data, "cold", 0.1)

	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(3)
	go func() { // transport pick loop
		defer wg.Done()
		ready := func(int) bool { return true }
		for {
			select {
			case <-done:
				return
			default:
			}
			if id, ok := h.Pick(ready); ok {
				h.Charge(id, 8*1400)
			}
		}
	}()
	go func() { // leaf-weight retuner (profile-driven reallocation path)
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-done:
				return
			default:
			}
			w := 0.1 + float64(i%8)/10
			h.SetWeight(hot.LeafID(), w)
			h.SetWeight(cold.LeafID(), 1-w)
			_ = h.Weight(hot.LeafID())
		}
	}()
	go func() { // node-weight retuner (fabric tenant share path)
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-done:
				return
			default:
			}
			h.SetNodeWeight(data, 0.5+float64(i%10)/10)
		}
	}()

	time.Sleep(100 * time.Millisecond)
	close(done)
	wg.Wait()

	// The tree must still schedule after the storm.
	if _, ok := h.Pick(func(int) bool { return true }); !ok {
		t.Fatal("hierarchy stopped scheduling after concurrent retune")
	}
}
