package sched

import (
	"fmt"
	"sync"

	"softstate/internal/obs"
)

// Hierarchy is a two-or-more-level link-sharing scheduler in the
// spirit of CBQ/H-FSC, used by SSTP's application-controlled
// bandwidth allocation (paper Figure 12): an application builds a
// tree — e.g. {data:{hot, cold}, feedback} — and capacity is shared
// proportionally at each level, work-conserving across siblings.
//
// Leaves carry the Scheduler class ids handed to the transport. The
// tree composes any Scheduler implementation at each interior node.
//
// Hierarchy is safe for concurrent use: an internal mutex serializes
// Pick/Charge against weight retuning (SetWeight/SetNodeWeight) and
// tree growth, so a controller — the session fabric retunes tenant
// weights at runtime — may adjust shares while the transport's pick
// loop runs.
type Hierarchy struct {
	mu     sync.Mutex
	root   *Node
	leaves []*Node
	mk     func() Scheduler

	picks   []*obs.Counter // per-leaf sched_picks_total
	charges []*obs.Counter // per-leaf sched_charge_bits_total

	// curReady holds the caller's readiness predicate for the duration
	// of one Pick (guarded by mu), so each interior node can use a
	// pre-built closure instead of allocating one per descent level
	// per call.
	curReady func(leafID int) bool
}

// Instrument publishes per-leaf scheduling decisions to reg:
// sched_picks_total{leaf=name} counts Pick outcomes and
// sched_charge_bits_total{leaf=name} accumulates charged units. Call
// after the tree is built; leaves added later are not instrumented.
// Safe with a nil registry.
func (h *Hierarchy) Instrument(reg *obs.Registry) {
	if reg == nil {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	h.picks = make([]*obs.Counter, len(h.leaves))
	h.charges = make([]*obs.Counter, len(h.leaves))
	for i, leaf := range h.leaves {
		h.picks[i] = reg.Counter("sched_picks_total", "leaf", leaf.name)
		h.charges[i] = reg.Counter("sched_charge_bits_total", "leaf", leaf.name)
	}
}

// Node is one vertex of the sharing tree.
type Node struct {
	name     string
	weight   float64
	parent   *Node
	children []*Node
	sched    Scheduler // interior nodes: picks among children
	childIdx int       // this node's class id within parent.sched
	leafID   int       // leaves: dense external id

	// pickFn is the persistent readiness closure handed to this
	// interior node's scheduler (reads h.curReady at call time).
	pickFn func(ci int) bool
}

// Name returns the node's label.
func (n *Node) Name() string { return n.name }

// Weight returns the node's share weight among its siblings.
func (n *Node) Weight() float64 { return n.weight }

// IsLeaf reports whether the node has no children.
func (n *Node) IsLeaf() bool { return len(n.children) == 0 }

// LeafID returns the external class id (valid only for leaves).
func (n *Node) LeafID() int { return n.leafID }

// NewHierarchy builds a sharing tree whose interior nodes each use a
// fresh Scheduler from mk (e.g. func() Scheduler { return NewStride() }).
func NewHierarchy(mk func() Scheduler) *Hierarchy {
	if mk == nil {
		panic("sched: nil scheduler factory")
	}
	h := &Hierarchy{mk: mk}
	h.root = &Node{name: "root", weight: 1, sched: mk()}
	h.initPickFn(h.root)
	return h
}

// initPickFn builds the interior node's one persistent readiness
// closure (allocated once at tree-build time, not per Pick).
func (h *Hierarchy) initPickFn(n *Node) {
	n.pickFn = func(ci int) bool {
		return h.subtreeReady(n.children[ci], h.curReady)
	}
}

// Root returns the root node.
func (h *Hierarchy) Root() *Node { return h.root }

// AddNode attaches an interior node under parent with the given share
// weight among its siblings.
func (h *Hierarchy) AddNode(parent *Node, name string, weight float64) *Node {
	checkWeight(weight)
	h.mu.Lock()
	defer h.mu.Unlock()
	h.mustBeInterior(parent)
	n := &Node{name: name, weight: weight, parent: parent, sched: h.mk()}
	h.initPickFn(n)
	n.childIdx = parent.sched.Add(weight)
	parent.children = append(parent.children, n)
	return n
}

// AddLeaf attaches a leaf class under parent, returning the node; its
// LeafID is the id used with Pick/Charge.
func (h *Hierarchy) AddLeaf(parent *Node, name string, weight float64) *Node {
	checkWeight(weight)
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.addLeafLocked(parent, name, weight)
}

func (h *Hierarchy) addLeafLocked(parent *Node, name string, weight float64) *Node {
	h.mustBeInterior(parent)
	n := &Node{name: name, weight: weight, parent: parent, leafID: len(h.leaves)}
	n.childIdx = parent.sched.Add(weight)
	parent.children = append(parent.children, n)
	h.leaves = append(h.leaves, n)
	return n
}

func (h *Hierarchy) mustBeInterior(n *Node) {
	if n == nil {
		panic("sched: nil parent")
	}
	if n.sched == nil {
		panic(fmt.Sprintf("sched: node %q is a leaf and cannot have children", n.name))
	}
}

// Leaves returns the number of leaf classes.
func (h *Hierarchy) Leaves() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.leaves)
}

// SetNodeWeight changes a node's share among its siblings. Safe to
// call while another goroutine is inside Pick or Charge.
func (h *Hierarchy) SetNodeWeight(n *Node, weight float64) {
	checkWeight(weight)
	h.mu.Lock()
	defer h.mu.Unlock()
	n.weight = weight
	if n.parent != nil {
		n.parent.sched.SetWeight(n.childIdx, weight)
	}
}

// Pick descends the tree from the root, at each interior node choosing
// among children that have at least one ready descendant leaf, and
// returns the chosen leaf's id. Pick allocates nothing: pass a
// persistent ready closure and the whole descent is allocation-free.
func (h *Hierarchy) Pick(ready func(leafID int) bool) (int, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.curReady = ready
	defer func() { h.curReady = nil }()
	n := h.root
	for !n.IsLeaf() {
		idx, ok := n.sched.Pick(n.pickFn)
		if !ok {
			return 0, false
		}
		n = n.children[idx]
	}
	if n.leafID < len(h.picks) {
		h.picks[n.leafID].Inc()
	}
	return n.leafID, true
}

func (h *Hierarchy) subtreeReady(n *Node, ready func(int) bool) bool {
	if n.IsLeaf() {
		return ready(n.leafID)
	}
	for _, c := range n.children {
		if h.subtreeReady(c, ready) {
			return true
		}
	}
	return false
}

// Charge accounts service to the leaf and every ancestor's scheduler,
// so sharing is enforced at each level of the tree.
func (h *Hierarchy) Charge(leafID int, units float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if leafID < 0 || leafID >= len(h.leaves) {
		panic(fmt.Sprintf("sched: leaf id %d out of range", leafID))
	}
	if leafID < len(h.charges) {
		h.charges[leafID].Add(uint64(units))
	}
	for n := h.leaves[leafID]; n.parent != nil; n = n.parent {
		n.parent.sched.Charge(n.childIdx, units)
	}
}

// Add implements Scheduler by creating a leaf directly under the
// root, so a flat Hierarchy is a drop-in Scheduler.
func (h *Hierarchy) Add(weight float64) int {
	checkWeight(weight)
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.addLeafLocked(h.root, fmt.Sprintf("leaf%d", len(h.leaves)), weight).leafID
}

// Weight implements Scheduler for root-level leaves.
func (h *Hierarchy) Weight(id int) float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.leaves[id].weight
}

// SetWeight implements Scheduler weight updates by leaf id. Safe to
// call while another goroutine is inside Pick or Charge — the fabric
// retunes tenant weights at runtime against live pick loops.
func (h *Hierarchy) SetWeight(id int, weight float64) {
	checkWeight(weight)
	h.mu.Lock()
	defer h.mu.Unlock()
	n := h.leaves[id]
	n.weight = weight
	if n.parent != nil {
		n.parent.sched.SetWeight(n.childIdx, weight)
	}
}
