// Package sched implements the proportional-share link schedulers the
// paper builds its two-queue ("hot"/"cold") transmission model on:
// randomized lottery scheduling, deterministic stride scheduling,
// start-time weighted fair queueing, deficit round-robin, and a
// two-level hierarchical scheduler in the spirit of CBQ/H-FSC for
// SSTP's application-controlled bandwidth allocation.
//
// All schedulers share one small interface: classes are registered
// with weights; Pick selects the next ready class; Charge accounts the
// actual service consumed. Picking only among ready classes makes
// every policy work-conserving, which realizes the paper's "unused
// excess hot bandwidth is consumed by transmissions from the cold
// queue".
package sched

import (
	"fmt"
	"math"

	"softstate/internal/xrand"
)

// Scheduler selects which of several transmission classes to serve
// next, sharing capacity in proportion to class weights.
type Scheduler interface {
	// Add registers a class with the given positive weight and
	// returns its id (dense, starting at 0).
	Add(weight float64) int
	// SetWeight changes a class's weight. Weight zero starves the
	// class unless it is the only ready one (schedulers may treat a
	// zero weight as an epsilon to avoid total starvation).
	SetWeight(id int, weight float64)
	// Weight returns the class's weight.
	Weight(id int) float64
	// Pick returns the id of the next class to serve among those for
	// which ready(id) is true, or ok=false if none are ready.
	Pick(ready func(id int) bool) (id int, ok bool)
	// Charge accounts units of service (e.g. bits) to the class that
	// was just served. Policies that ignore service amounts (lottery)
	// may treat this as a no-op.
	Charge(id int, units float64)
}

type class struct {
	weight float64
	// stride/WFQ state
	pass float64
	// DRR state
	deficit float64
}

func checkWeight(w float64) {
	if w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
		panic(fmt.Sprintf("sched: invalid weight %v", w))
	}
}

// epsilonWeight substitutes a tiny positive weight for zero so that a
// zero-weight class is only served when nothing else is ready.
const epsilonWeight = 1e-12

// Lottery is Waldspurger & Weihl's randomized lottery scheduler: each
// Pick holds a lottery in which every ready class holds tickets equal
// to its weight.
type Lottery struct {
	classes []class
	rnd     *xrand.Rand
}

// NewLottery returns a lottery scheduler drawing from rnd.
func NewLottery(rnd *xrand.Rand) *Lottery {
	if rnd == nil {
		panic("sched: nil rand")
	}
	return &Lottery{rnd: rnd}
}

// Add implements Scheduler.
func (l *Lottery) Add(weight float64) int {
	checkWeight(weight)
	l.classes = append(l.classes, class{weight: weight})
	return len(l.classes) - 1
}

// SetWeight implements Scheduler.
func (l *Lottery) SetWeight(id int, w float64) {
	checkWeight(w)
	l.classes[id].weight = w
}

// Weight implements Scheduler.
func (l *Lottery) Weight(id int) float64 { return l.classes[id].weight }

// Pick implements Scheduler.
func (l *Lottery) Pick(ready func(int) bool) (int, bool) {
	total := 0.0
	last := -1
	for i := range l.classes {
		if ready(i) {
			w := l.classes[i].weight
			if w == 0 {
				w = epsilonWeight
			}
			total += w
			last = i
		}
	}
	if last < 0 {
		return 0, false
	}
	draw := l.rnd.Float64() * total
	acc := 0.0
	for i := range l.classes {
		if !ready(i) {
			continue
		}
		w := l.classes[i].weight
		if w == 0 {
			w = epsilonWeight
		}
		acc += w
		if draw < acc {
			return i, true
		}
	}
	return last, true // numeric edge: return the final ready class
}

// Charge implements Scheduler; lottery ignores service amounts.
func (l *Lottery) Charge(int, float64) {}

// Stride is Waldspurger & Weihl's deterministic stride scheduler: each
// class advances a "pass" value by served-units/weight; Pick chooses
// the ready class with minimum pass. Over time each class receives
// service proportional to its weight, with far lower variance than
// lottery.
type Stride struct {
	classes []class
}

// NewStride returns a stride scheduler.
func NewStride() *Stride { return &Stride{} }

// Add implements Scheduler.
func (s *Stride) Add(weight float64) int {
	checkWeight(weight)
	// Late joiners start at the current minimum pass so they cannot
	// monopolize the link to "catch up".
	minPass := math.Inf(1)
	for i := range s.classes {
		if s.classes[i].pass < minPass {
			minPass = s.classes[i].pass
		}
	}
	if math.IsInf(minPass, 1) {
		minPass = 0
	}
	s.classes = append(s.classes, class{weight: weight, pass: minPass})
	return len(s.classes) - 1
}

// SetWeight implements Scheduler.
func (s *Stride) SetWeight(id int, w float64) {
	checkWeight(w)
	s.classes[id].weight = w
}

// Weight implements Scheduler.
func (s *Stride) Weight(id int) float64 { return s.classes[id].weight }

// Pick implements Scheduler.
func (s *Stride) Pick(ready func(int) bool) (int, bool) {
	best, bestPass := -1, math.Inf(1)
	for i := range s.classes {
		if ready(i) && s.classes[i].pass < bestPass {
			best, bestPass = i, s.classes[i].pass
		}
	}
	if best < 0 {
		return 0, false
	}
	return best, true
}

// Charge implements Scheduler.
func (s *Stride) Charge(id int, units float64) {
	w := s.classes[id].weight
	if w == 0 {
		w = epsilonWeight
	}
	s.classes[id].pass += units / w
}

// WFQ is start-time fair queueing (a practical weighted-fair-queueing
// variant): each class keeps a virtual finish time; Pick serves the
// ready class with the earliest virtual start, where start = max(V,
// finish) and V is the virtual time of the last service.
type WFQ struct {
	classes []class // pass field holds the class's virtual finish time
	vtime   float64
}

// NewWFQ returns a start-time fair queueing scheduler.
func NewWFQ() *WFQ { return &WFQ{} }

// Add implements Scheduler.
func (w *WFQ) Add(weight float64) int {
	checkWeight(weight)
	w.classes = append(w.classes, class{weight: weight, pass: w.vtime})
	return len(w.classes) - 1
}

// SetWeight implements Scheduler.
func (w *WFQ) SetWeight(id int, wt float64) {
	checkWeight(wt)
	w.classes[id].weight = wt
}

// Weight implements Scheduler.
func (w *WFQ) Weight(id int) float64 { return w.classes[id].weight }

// Pick implements Scheduler.
func (w *WFQ) Pick(ready func(int) bool) (int, bool) {
	best, bestStart := -1, math.Inf(1)
	for i := range w.classes {
		if !ready(i) {
			continue
		}
		start := math.Max(w.vtime, w.classes[i].pass)
		if start < bestStart {
			best, bestStart = i, start
		}
	}
	if best < 0 {
		return 0, false
	}
	w.vtime = bestStart
	return best, true
}

// Charge implements Scheduler.
func (w *WFQ) Charge(id int, units float64) {
	wt := w.classes[id].weight
	if wt == 0 {
		wt = epsilonWeight
	}
	start := math.Max(w.vtime, w.classes[id].pass)
	w.classes[id].pass = start + units/wt
}

// DRR is deficit round-robin: classes are visited cyclically, each
// accumulating quantum×weight of deficit; a class may be picked while
// its deficit is positive. DRR is O(1) per decision and a common
// kernel realization of proportional sharing.
type DRR struct {
	classes []class
	quantum float64
	cursor  int
}

// NewDRR returns a deficit round-robin scheduler with the given
// quantum (service units added per visit per unit weight).
func NewDRR(quantum float64) *DRR {
	if quantum <= 0 {
		panic(fmt.Sprintf("sched: DRR quantum %v must be positive", quantum))
	}
	return &DRR{quantum: quantum}
}

// Add implements Scheduler.
func (d *DRR) Add(weight float64) int {
	checkWeight(weight)
	d.classes = append(d.classes, class{weight: weight})
	return len(d.classes) - 1
}

// SetWeight implements Scheduler.
func (d *DRR) SetWeight(id int, w float64) {
	checkWeight(w)
	d.classes[id].weight = w
}

// Weight implements Scheduler.
func (d *DRR) Weight(id int) float64 { return d.classes[id].weight }

// Pick implements Scheduler.
func (d *DRR) Pick(ready func(int) bool) (int, bool) {
	n := len(d.classes)
	if n == 0 {
		return 0, false
	}
	anyReady := false
	for i := 0; i < n; i++ {
		if ready(i) {
			anyReady = true
			break
		}
	}
	if !anyReady {
		return 0, false
	}
	// Sweep at most 2n positions, refilling deficits as we pass; a
	// ready class with positive deficit is served.
	for sweep := 0; sweep < 2*n+1; sweep++ {
		i := d.cursor % n
		if ready(i) {
			if d.classes[i].deficit > 0 {
				return i, true
			}
			w := d.classes[i].weight
			if w == 0 {
				w = epsilonWeight
			}
			d.classes[i].deficit += d.quantum * w
			if d.classes[i].deficit > 0 {
				return i, true
			}
		} else {
			// Idle classes do not hoard deficit.
			d.classes[i].deficit = 0
		}
		d.cursor++
	}
	// All ready classes have deeply negative deficit (oversized
	// packets); serve the least-indebted one.
	best, bestDef := -1, math.Inf(-1)
	for i := 0; i < n; i++ {
		if ready(i) && d.classes[i].deficit > bestDef {
			best, bestDef = i, d.classes[i].deficit
		}
	}
	return best, best >= 0
}

// Charge implements Scheduler.
func (d *DRR) Charge(id int, units float64) {
	d.classes[id].deficit -= units
	if d.classes[id].deficit <= 0 {
		d.cursor++ // move on once the class exhausts its quantum
	}
}
