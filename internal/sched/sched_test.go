package sched

import (
	"math"
	"testing"

	"softstate/internal/xrand"
)

// runShares drives a scheduler with all classes always ready, serving
// unit-cost packets, and returns the fraction of service each class
// received.
func runShares(s Scheduler, weights []float64, rounds int) []float64 {
	ids := make([]int, len(weights))
	for i, w := range weights {
		ids[i] = s.Add(w)
	}
	counts := make([]float64, len(weights))
	for r := 0; r < rounds; r++ {
		id, ok := s.Pick(func(int) bool { return true })
		if !ok {
			panic("no pick with all ready")
		}
		s.Charge(id, 1)
		counts[id]++
	}
	for i := range counts {
		counts[i] /= float64(rounds)
	}
	_ = ids
	return counts
}

func checkShares(t *testing.T, name string, got, want []float64, tol float64) {
	t.Helper()
	for i := range want {
		if math.Abs(got[i]-want[i]) > tol {
			t.Errorf("%s: class %d share = %v, want %v±%v", name, i, got[i], want[i], tol)
		}
	}
}

func TestProportionalShares(t *testing.T) {
	weights := []float64{3, 1}
	want := []float64{0.75, 0.25}
	cases := []struct {
		name string
		mk   func() Scheduler
		tol  float64
	}{
		{"lottery", func() Scheduler { return NewLottery(xrand.New(1)) }, 0.02},
		{"stride", func() Scheduler { return NewStride() }, 0.001},
		{"wfq", func() Scheduler { return NewWFQ() }, 0.001},
		{"drr", func() Scheduler { return NewDRR(1) }, 0.01},
		{"hierarchy-flat", func() Scheduler {
			return NewHierarchy(func() Scheduler { return NewStride() })
		}, 0.001},
	}
	for _, tc := range cases {
		got := runShares(tc.mk(), weights, 20000)
		checkShares(t, tc.name, got, want, tc.tol)
	}
}

func TestThreeWayShares(t *testing.T) {
	weights := []float64{5, 3, 2}
	want := []float64{0.5, 0.3, 0.2}
	for _, tc := range []struct {
		name string
		s    Scheduler
		tol  float64
	}{
		{"stride", NewStride(), 0.001},
		{"wfq", NewWFQ(), 0.001},
		{"lottery", NewLottery(xrand.New(7)), 0.02},
		{"drr", NewDRR(1), 0.01},
	} {
		got := runShares(tc.s, weights, 30000)
		checkShares(t, tc.name, got, want, tc.tol)
	}
}

func TestWorkConserving(t *testing.T) {
	// With only class 1 ready, every pick must select class 1, for
	// every policy — this is the paper's "excess hot bandwidth flows
	// to the cold queue" property.
	for _, tc := range []struct {
		name string
		s    Scheduler
	}{
		{"lottery", NewLottery(xrand.New(2))},
		{"stride", NewStride()},
		{"wfq", NewWFQ()},
		{"drr", NewDRR(1)},
	} {
		tc.s.Add(100)
		tc.s.Add(1)
		for i := 0; i < 50; i++ {
			id, ok := tc.s.Pick(func(id int) bool { return id == 1 })
			if !ok || id != 1 {
				t.Errorf("%s: pick = (%d, %v), want (1, true)", tc.name, id, ok)
				break
			}
			tc.s.Charge(id, 1)
		}
	}
}

func TestNoneReady(t *testing.T) {
	for _, tc := range []struct {
		name string
		s    Scheduler
	}{
		{"lottery", NewLottery(xrand.New(3))},
		{"stride", NewStride()},
		{"wfq", NewWFQ()},
		{"drr", NewDRR(1)},
	} {
		tc.s.Add(1)
		if _, ok := tc.s.Pick(func(int) bool { return false }); ok {
			t.Errorf("%s: Pick with none ready returned ok", tc.name)
		}
	}
	// Empty scheduler.
	if _, ok := NewDRR(1).Pick(func(int) bool { return true }); ok {
		t.Error("drr: Pick with no classes returned ok")
	}
}

func TestZeroWeightStarvesButNotFully(t *testing.T) {
	s := NewStride()
	s.Add(1)
	s.Add(0)
	counts := [2]int{}
	for i := 0; i < 1000; i++ {
		id, _ := s.Pick(func(int) bool { return true })
		s.Charge(id, 1)
		counts[id]++
	}
	if counts[1] > 1 {
		t.Errorf("zero-weight class served %d times alongside ready siblings", counts[1])
	}
	// Alone, the zero-weight class must still be served.
	id, ok := s.Pick(func(id int) bool { return id == 1 })
	if !ok || id != 1 {
		t.Error("zero-weight class starved when alone")
	}
}

func TestSetWeightTakesEffect(t *testing.T) {
	s := NewStride()
	s.Add(1)
	s.Add(1)
	// Re-weight class 0 to 4x and measure shares afterwards.
	s.SetWeight(0, 4)
	counts := [2]float64{}
	for i := 0; i < 10000; i++ {
		id, _ := s.Pick(func(int) bool { return true })
		s.Charge(id, 1)
		counts[id]++
	}
	share := counts[0] / (counts[0] + counts[1])
	if math.Abs(share-0.8) > 0.01 {
		t.Errorf("after SetWeight, class 0 share = %v, want 0.8", share)
	}
	if s.Weight(0) != 4 {
		t.Errorf("Weight(0) = %v", s.Weight(0))
	}
}

func TestStrideLateJoinerNoMonopoly(t *testing.T) {
	s := NewStride()
	s.Add(1)
	for i := 0; i < 1000; i++ {
		id, _ := s.Pick(func(int) bool { return true })
		s.Charge(id, 1)
	}
	s.Add(1) // joins late; must not monopolize to catch up
	first := 0
	for i := 0; i < 100; i++ {
		id, _ := s.Pick(func(int) bool { return true })
		s.Charge(id, 1)
		if id == 1 {
			first++
		}
	}
	if first > 60 {
		t.Errorf("late joiner took %d/100 slots", first)
	}
}

func TestVariableCostCharges(t *testing.T) {
	// Class 0 sends packets 4x the size of class 1's; with equal
	// weights, class 1 must be picked ~4x as often so that *bits* are
	// split evenly.
	s := NewWFQ()
	s.Add(1)
	s.Add(1)
	bits := [2]float64{}
	for i := 0; i < 10000; i++ {
		id, _ := s.Pick(func(int) bool { return true })
		cost := 1.0
		if id == 0 {
			cost = 4
		}
		s.Charge(id, cost)
		bits[id] += cost
	}
	share := bits[0] / (bits[0] + bits[1])
	if math.Abs(share-0.5) > 0.01 {
		t.Errorf("bit share = %v, want 0.5", share)
	}
}

func TestInvalidWeightsPanic(t *testing.T) {
	for _, fn := range []func(){
		func() { NewStride().Add(-1) },
		func() { NewStride().Add(math.NaN()) },
		func() { NewStride().Add(math.Inf(1)) },
		func() { NewDRR(0) },
		func() { NewLottery(nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid construction did not panic")
				}
			}()
			fn()
		}()
	}
}

func TestHierarchyTwoLevel(t *testing.T) {
	// Paper Figure 12 shape: root → {data (0.8) → {hot 0.7, cold 0.3},
	// feedback (0.2)}. Expected leaf shares: hot 0.56, cold 0.24, fb 0.2.
	h := NewHierarchy(func() Scheduler { return NewStride() })
	data := h.AddNode(h.Root(), "data", 0.8)
	hot := h.AddLeaf(data, "hot", 0.7)
	cold := h.AddLeaf(data, "cold", 0.3)
	fb := h.AddLeaf(h.Root(), "feedback", 0.2)

	counts := make([]float64, 3)
	const rounds = 30000
	for i := 0; i < rounds; i++ {
		id, ok := h.Pick(func(int) bool { return true })
		if !ok {
			t.Fatal("no pick")
		}
		h.Charge(id, 1)
		counts[id]++
	}
	want := map[int]float64{hot.LeafID(): 0.56, cold.LeafID(): 0.24, fb.LeafID(): 0.2}
	for id, w := range want {
		got := counts[id] / rounds
		if math.Abs(got-w) > 0.005 {
			t.Errorf("leaf %d share = %v, want %v", id, got, w)
		}
	}
}

func TestHierarchyWorkConservation(t *testing.T) {
	// With the entire data subtree idle, feedback gets everything.
	h := NewHierarchy(func() Scheduler { return NewStride() })
	data := h.AddNode(h.Root(), "data", 0.9)
	h.AddLeaf(data, "hot", 1)
	fb := h.AddLeaf(h.Root(), "feedback", 0.1)
	for i := 0; i < 100; i++ {
		id, ok := h.Pick(func(id int) bool { return id == fb.LeafID() })
		if !ok || id != fb.LeafID() {
			t.Fatalf("pick = (%d, %v)", id, ok)
		}
		h.Charge(id, 1)
	}
}

func TestHierarchyReweight(t *testing.T) {
	h := NewHierarchy(func() Scheduler { return NewStride() })
	a := h.AddLeaf(h.Root(), "a", 1)
	b := h.AddLeaf(h.Root(), "b", 1)
	h.SetNodeWeight(a, 3)
	counts := map[int]float64{}
	for i := 0; i < 10000; i++ {
		id, _ := h.Pick(func(int) bool { return true })
		h.Charge(id, 1)
		counts[id]++
	}
	share := counts[a.LeafID()] / (counts[a.LeafID()] + counts[b.LeafID()])
	if math.Abs(share-0.75) > 0.01 {
		t.Errorf("a share after reweight = %v, want 0.75", share)
	}
}

func TestHierarchyLeafCannotParent(t *testing.T) {
	h := NewHierarchy(func() Scheduler { return NewStride() })
	leaf := h.AddLeaf(h.Root(), "leaf", 1)
	defer func() {
		if recover() == nil {
			t.Fatal("adding child to leaf did not panic")
		}
	}()
	h.AddLeaf(leaf, "child", 1)
}

func TestHierarchyChargeBounds(t *testing.T) {
	h := NewHierarchy(func() Scheduler { return NewStride() })
	h.AddLeaf(h.Root(), "a", 1)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range charge did not panic")
		}
	}()
	h.Charge(5, 1)
}

func TestHierarchyEmptyPick(t *testing.T) {
	h := NewHierarchy(func() Scheduler { return NewStride() })
	h.AddLeaf(h.Root(), "a", 1)
	if _, ok := h.Pick(func(int) bool { return false }); ok {
		t.Error("Pick with nothing ready returned ok")
	}
}

func TestLotteryDeterministicWithSeed(t *testing.T) {
	mk := func() []int {
		s := NewLottery(xrand.New(99))
		s.Add(1)
		s.Add(2)
		var picks []int
		for i := 0; i < 100; i++ {
			id, _ := s.Pick(func(int) bool { return true })
			picks = append(picks, id)
		}
		return picks
	}
	a, b := mk(), mk()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("lottery not reproducible from seed")
		}
	}
}
