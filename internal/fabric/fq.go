// Package fabric multiplexes many independent SSTP sessions
// (tenants) over one shared datagram link. The paper's analysis
// (§4–§6) divides one session's bandwidth between new data and
// repair; the fabric adds the layer above it — dividing one *link*
// between sessions — with a weighted virtual-time fair-queueing
// scheduler in the lineage of the k8s API server's APF `fq`
// dispatcher, a shared batched send loop replacing per-sender
// goroutine+socket ownership, and wire demuxing on the session id
// every SSTP header already carries (so one UDP port serves all
// tenants with no wire-format change).
package fabric

import (
	"fmt"
	"net"
	"sync"
	"time"
)

// Packet is one wire-ready datagram queued for transmission on the
// shared link. The payload is an owned copy, recycled via Release.
type Packet struct {
	Session uint64
	Dest    net.Addr
	buf     []byte
}

// Bytes returns the datagram payload.
func (p *Packet) Bytes() []byte { return p.buf }

var fqPktPool = sync.Pool{New: func() any {
	return &Packet{buf: make([]byte, 0, 2048)}
}}

// TenantStat is one tenant's scheduler-side snapshot.
type TenantStat struct {
	Session  uint64
	Weight   float64
	Depth    int     // packets waiting in the fabric queue
	Bytes    uint64  // payload bytes served over the link
	Packets  uint64  // datagrams served
	VirStart float64 // the queue's virtual start time
	VTLag    float64 // VirStart − global virtual time (0 when idle)
	Starved  bool    // head packet has waited past the starvation window
}

// FQ is a weighted virtual-time fair-queueing scheduler over
// per-tenant packet queues. Each queue carries a virtual start time;
// the virtual finish of its head packet is *estimated* as
// virstart + G/weight, with G the estimated per-datagram service cost
// in bytes (the APF G-based finish estimation — the true size is only
// certain once the packet is picked). Dequeue serves the queue with
// the minimum estimated virtual finish — an O(log n) pick via a
// min-heap keyed on virtual finish — then advances the queue's
// virtual start by actualBytes/weight, so tenants are charged the
// bytes they really sent and backlogged tenants share the link in
// proportion to their weights regardless of datagram sizes.
//
// A queue going idle keeps its virtual start, but re-activation
// clamps it up to the global virtual time (the max-of rule), so idle
// tenants bank no credit and a waking tenant is served promptly
// without starving the backlogged ones.
//
// The FIFO policy (NewFIFO) is the no-isolation baseline: one shared
// queue in arrival order, the behavior of a naive shared socket. It
// exists to *measure* the starvation fair queueing removes.
type FQ struct {
	mu     sync.Mutex
	g      float64 // estimated datagram service cost, bytes
	fifo   bool
	perCap int     // per-tenant queue bound (fq); scaled shared bound (fifo)
	vtime  float64 // global virtual time: start of the last served queue
	queues map[uint64]*fqQueue
	heap   []*fqQueue // active queues, min estimated virtual finish at [0]
	fifoQ  []*Packet  // fifo policy: shared arrival-order queue
	fhead  int        // fifoQ head index (popped packets compact lazily)
	depth  int        // total packets queued
}

type fqQueue struct {
	session  uint64
	weight   float64
	virStart float64
	pkts     []*Packet // FIFO; head at pkts[phead]
	phead    int
	idx      int // heap position; -1 when inactive
	bytes    uint64
	packets  uint64
	waiting  time.Time // when the current head reached the head slot
}

func (q *fqQueue) depth() int { return len(q.pkts) - q.phead }

// NewFQ returns a fair-queueing scheduler. g is the estimated datagram
// cost in bytes (the MTU is the natural choice); perTenantCap bounds
// each tenant's fabric-side queue — the backpressure that keeps a
// tenant's backlog in its own sender, where its hot/cold scheduler
// can still reorder it.
func NewFQ(g float64, perTenantCap int) *FQ {
	if g <= 0 {
		panic(fmt.Sprintf("fabric: non-positive estimated cost %v", g))
	}
	if perTenantCap <= 0 {
		panic(fmt.Sprintf("fabric: non-positive queue cap %d", perTenantCap))
	}
	return &FQ{g: g, perCap: perTenantCap, queues: make(map[uint64]*fqQueue)}
}

// NewFIFO returns the arrival-order baseline scheduler: one shared
// queue bounded at perTenantCap packets *per registered tenant*, so a
// bursty tenant can fill it — which is exactly the failure mode the
// fair queueing variant exists to prevent.
func NewFIFO(g float64, perTenantCap int) *FQ {
	f := NewFQ(g, perTenantCap)
	f.fifo = true
	return f
}

// AddTenant registers a tenant queue with the given weight.
func (f *FQ) AddTenant(session uint64, weight float64) error {
	if weight <= 0 {
		return fmt.Errorf("fabric: tenant %d weight %v must be positive", session, weight)
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, ok := f.queues[session]; ok {
		return fmt.Errorf("fabric: duplicate tenant %d", session)
	}
	f.queues[session] = &fqQueue{session: session, weight: weight, idx: -1}
	return nil
}

// SetWeight retunes a tenant's share at runtime. Future service —
// including packets already queued — is divided at the new weight.
func (f *FQ) SetWeight(session uint64, weight float64) error {
	if weight <= 0 {
		return fmt.Errorf("fabric: tenant %d weight %v must be positive", session, weight)
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	q, ok := f.queues[session]
	if !ok {
		return fmt.Errorf("fabric: unknown tenant %d", session)
	}
	q.weight = weight
	if q.idx >= 0 {
		f.fix(q.idx) // its estimated finish just changed
	}
	return nil
}

// Weight returns a tenant's current weight (0 if unknown).
func (f *FQ) Weight(session uint64) float64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	if q, ok := f.queues[session]; ok {
		return q.weight
	}
	return 0
}

// Room reports whether the tenant's queue can take another packet.
// The fabric's fill loop polls a tenant's sender only while its queue
// has room, so backpressure needs no blocking.
func (f *FQ) Room(session uint64) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.fifo {
		return f.depth < f.perCap*len(f.queues)
	}
	q, ok := f.queues[session]
	return ok && q.depth() < f.perCap
}

// Enqueue copies b into a pooled packet on the tenant's queue. It
// reports false — dropping nothing, the caller still owns b — when
// the queue is full or the tenant unknown.
func (f *FQ) Enqueue(session uint64, b []byte, dest net.Addr) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	q, ok := f.queues[session]
	if !ok {
		return false
	}
	if f.fifo {
		if f.depth >= f.perCap*len(f.queues) {
			return false
		}
	} else if q.depth() >= f.perCap {
		return false
	}
	p := fqPktPool.Get().(*Packet)
	p.Session = session
	p.Dest = dest
	p.buf = append(p.buf[:0], b...)
	if f.fifo {
		f.fifoQ = append(f.fifoQ, p)
	} else {
		if q.depth() == 0 {
			q.waiting = time.Now()
			// The max-of rule: an idle queue rejoins at the global
			// virtual time, banking no credit for its idle period.
			if q.virStart < f.vtime {
				q.virStart = f.vtime
			}
			q.pkts = append(q.pkts[:0], p)
			q.phead = 0
			f.push(q)
		} else {
			q.pkts = append(q.pkts, p)
		}
	}
	f.depth++
	return true
}

// Dequeue serves the next packet: the head of the queue with minimum
// estimated virtual finish (or, under the FIFO policy, the oldest
// packet on the link). The caller transmits it, then recycles it with
// Release.
func (f *FQ) Dequeue() (*Packet, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.fifo {
		if f.fhead >= len(f.fifoQ) {
			return nil, false
		}
		p := f.fifoQ[f.fhead]
		f.fifoQ[f.fhead] = nil
		f.fhead++
		if f.fhead == len(f.fifoQ) {
			f.fifoQ = f.fifoQ[:0]
			f.fhead = 0
		}
		f.depth--
		q := f.queues[p.Session]
		q.bytes += uint64(len(p.buf))
		q.packets++
		return p, true
	}
	if len(f.heap) == 0 {
		return nil, false
	}
	q := f.heap[0]
	p := q.pkts[q.phead]
	q.pkts[q.phead] = nil
	q.phead++
	f.depth--
	// Virtual time advances to the served queue's start (start-time
	// fair queueing's v(t)); the queue is then charged actual bytes.
	if q.virStart > f.vtime {
		f.vtime = q.virStart
	}
	q.virStart += float64(len(p.buf)) / q.weight
	q.bytes += uint64(len(p.buf))
	q.packets++
	if q.depth() == 0 {
		f.pop(q)
		q.pkts = q.pkts[:0]
		q.phead = 0
	} else {
		q.waiting = time.Now()
		f.fix(0)
	}
	return p, true
}

// Release recycles a served packet's buffer.
func (f *FQ) Release(p *Packet) {
	p.Dest = nil
	fqPktPool.Put(p)
}

// Depth returns the total number of queued packets.
func (f *FQ) Depth() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.depth
}

// VTime returns the global virtual time (for observability).
func (f *FQ) VTime() float64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.vtime
}

// Stats appends a snapshot for every tenant to dst. A tenant is
// starved when its head packet has waited longer than starveAfter —
// under fair queueing that gauge staying at zero is the isolation
// guarantee, under FIFO it is the measurement of the problem.
func (f *FQ) Stats(dst []TenantStat, starveAfter time.Duration) []TenantStat {
	now := time.Now()
	f.mu.Lock()
	defer f.mu.Unlock()
	fifoDepths := map[uint64]int(nil)
	if f.fifo {
		fifoDepths = make(map[uint64]int, len(f.queues))
		for i := f.fhead; i < len(f.fifoQ); i++ {
			fifoDepths[f.fifoQ[i].Session]++
		}
	}
	for _, q := range f.queues {
		st := TenantStat{
			Session:  q.session,
			Weight:   q.weight,
			Bytes:    q.bytes,
			Packets:  q.packets,
			VirStart: q.virStart,
		}
		if f.fifo {
			st.Depth = fifoDepths[q.session]
		} else {
			st.Depth = q.depth()
			if st.Depth > 0 {
				st.VTLag = q.virStart - f.vtime
				st.Starved = now.Sub(q.waiting) > starveAfter
			}
		}
		dst = append(dst, st)
	}
	return dst
}

// --- min-heap on estimated virtual finish ---

// finish is the APF-style estimate for the queue's head packet:
// virtual start plus G scaled by the tenant's weight.
func (q *fqQueue) finish(g float64) float64 {
	return q.virStart + g/q.weight
}

func (f *FQ) push(q *fqQueue) {
	q.idx = len(f.heap)
	f.heap = append(f.heap, q)
	f.up(q.idx)
}

func (f *FQ) pop(q *fqQueue) {
	i := q.idx
	last := len(f.heap) - 1
	f.heap[i] = f.heap[last]
	f.heap[i].idx = i
	f.heap = f.heap[:last]
	q.idx = -1
	if i < last {
		f.fix(i)
	}
}

func (f *FQ) fix(i int) {
	f.up(i)
	f.down(i)
}

func (f *FQ) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if f.heap[parent].finish(f.g) <= f.heap[i].finish(f.g) {
			break
		}
		f.swap(parent, i)
		i = parent
	}
}

func (f *FQ) down(i int) {
	n := len(f.heap)
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < n && f.heap[l].finish(f.g) < f.heap[min].finish(f.g) {
			min = l
		}
		if r < n && f.heap[r].finish(f.g) < f.heap[min].finish(f.g) {
			min = r
		}
		if min == i {
			return
		}
		f.swap(min, i)
		i = min
	}
}

func (f *FQ) swap(i, j int) {
	f.heap[i], f.heap[j] = f.heap[j], f.heap[i]
	f.heap[i].idx = i
	f.heap[j].idx = j
}
