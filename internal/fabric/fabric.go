package fabric

import (
	"fmt"
	"net"
	"strconv"
	"strings"
	"sync"
	"time"

	"softstate/internal/congestion"
	"softstate/internal/netio"
	"softstate/internal/obs"
	"softstate/internal/sstp"
	"softstate/internal/transport"
)

// Config parameterizes a session fabric.
type Config struct {
	// Conn is the shared link — any transport.Conn (UDP keeps the
	// sendmmsg batch path; framed TCP/TLS streams and MemConns fall
	// back to one write per datagram). The fabric owns its read side
	// (feedback demuxed to tenants' driven senders) and drains the
	// fair-queueing scheduler into it via one batched writer. The
	// fabric never closes it; the opener does.
	Conn transport.Conn

	// LinkRate caps the aggregate transmit rate in bits/second across
	// all tenants (0 = unpaced). Tenants' own TotalRate buckets meter
	// their demand; LinkRate models the shared link's capacity — the
	// resource the fair queueing divides.
	LinkRate float64

	// BatchDatagrams is how many datagrams are drained per write (one
	// sendmmsg on Linux). Default 16.
	BatchDatagrams int

	// EstimatedCost is the FQ scheduler's G: the estimated service
	// cost of one datagram in bytes, used for virtual-finish
	// estimation before a packet is picked (actual sizes are charged
	// on dequeue). Default 1400, the coalescing MTU.
	EstimatedCost float64

	// TenantQueue bounds each tenant's fabric-side queue in datagrams
	// (default 4). Small on purpose: a tenant's backlog belongs in its
	// own sender, where the hot/cold scheduler can keep reordering it;
	// the fabric queue is just enough runway to keep the link busy.
	TenantQueue int

	// FIFO selects the arrival-order baseline scheduler instead of
	// fair queueing — the no-isolation behavior of a naive shared
	// socket, kept measurable so benchmarks can show the starvation
	// FQ removes. Under FIFO the shared queue is TenantQueue packets
	// per registered tenant, claimable by anyone.
	FIFO bool

	// StarveAfter is the starvation gauge's threshold: a tenant whose
	// head-of-queue packet has waited longer counts as starved
	// (default 1s).
	StarveAfter time.Duration

	// Obs receives sstp_fabric_* metrics (nil-safe).
	Obs *obs.Registry
}

func (c Config) withDefaults() (Config, error) {
	if c.Conn == nil {
		return c, fmt.Errorf("fabric: Conn is required")
	}
	if c.LinkRate < 0 {
		return c, fmt.Errorf("fabric: negative LinkRate %v", c.LinkRate)
	}
	if c.BatchDatagrams <= 0 {
		c.BatchDatagrams = 16
	}
	if c.BatchDatagrams > 256 {
		c.BatchDatagrams = 256
	}
	if c.EstimatedCost <= 0 {
		c.EstimatedCost = 1400
	}
	if c.TenantQueue <= 0 {
		c.TenantQueue = 4
	}
	if c.StarveAfter <= 0 {
		c.StarveAfter = time.Second
	}
	return c, nil
}

// ParseWeights expands a comma-separated weight list cyclically over
// n tenants: "1,1,4" over 5 tenants gives 1, 1, 4, 1, 1 — the CLI
// syntax shared by ssload and sstpd.
func ParseWeights(spec string, n int) ([]float64, error) {
	parts := strings.Split(spec, ",")
	base := make([]float64, 0, len(parts))
	for _, p := range parts {
		w, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil || w <= 0 {
			return nil, fmt.Errorf("fabric: bad tenant weight %q", p)
		}
		base = append(base, w)
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = base[i%len(base)]
	}
	return out, nil
}

// tenant is one session's registration: its driven sender, its
// destination on the shared link, and its per-tenant instruments.
type tenant struct {
	session uint64
	sender  *sstp.Sender
	dest    net.Addr

	mBytes  *obs.Counter
	mDgrams *obs.Counter
	mDepth  *obs.Gauge
	mVTLag  *obs.Gauge
	mWeight *obs.Gauge
	mStarve *obs.Gauge
}

// fabricMetrics is the aggregate sstp_fabric_* catalog.
type fabricMetrics struct {
	tenants  *obs.Gauge
	dgrams   *obs.Counter
	bytes    *obs.Counter
	depth    *obs.Gauge
	starved  *obs.Gauge
	vtime    *obs.Gauge
	picks    *obs.Counter
	fullSkip *obs.Counter
}

// Fabric multiplexes many driven SSTP senders over one shared link:
// a single batched send loop pulls each tenant's next wire-ready
// datagram into the fair-queueing scheduler and drains it under the
// link-rate bucket, charging each tenant the actual bytes it sent.
// Feedback arriving on the shared socket is demuxed per session back
// to each tenant's sender.
//
// Register every tenant with AddSender before Start; weights may be
// retuned at any time with SetWeight.
type Fabric struct {
	cfg    Config
	bconn  *netio.BatchConn
	demux  *Demux
	fq     *FQ
	bucket *congestion.TokenBucket

	mu        sync.Mutex
	tenants   []*tenant
	bySession map[uint64]*tenant
	started   bool

	m         fabricMetrics
	statBuf   []TenantStat
	waitTimer *time.Timer

	done chan struct{}
	wg   sync.WaitGroup
	once sync.Once
}

// New builds a fabric over the shared conn. Call AddSender for each
// tenant, then Start.
func New(cfg Config) (*Fabric, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	f := &Fabric{
		cfg:       cfg,
		bconn:     netio.Wrap(cfg.Conn),
		demux:     NewDemux(cfg.Conn, cfg.Obs),
		bySession: make(map[uint64]*tenant),
		done:      make(chan struct{}),
	}
	if cfg.FIFO {
		f.fq = NewFIFO(cfg.EstimatedCost, cfg.TenantQueue)
	} else {
		f.fq = NewFQ(cfg.EstimatedCost, cfg.TenantQueue)
	}
	if cfg.LinkRate > 0 {
		burst := float64(4 * cfg.BatchDatagrams * 8 * 1500)
		f.bucket = congestion.NewTokenBucket(cfg.LinkRate, burst)
	}
	reg := cfg.Obs
	f.m = fabricMetrics{
		tenants:  reg.Gauge("sstp_fabric_tenants"),
		dgrams:   reg.Counter("sstp_fabric_datagrams_total"),
		bytes:    reg.Counter("sstp_fabric_tx_bytes_total"),
		depth:    reg.Gauge("sstp_fabric_queue_depth"),
		starved:  reg.Gauge("sstp_fabric_starved_tenants"),
		vtime:    reg.Gauge("sstp_fabric_vtime"),
		picks:    reg.Counter("sstp_fabric_picks_total"),
		fullSkip: reg.Counter("sstp_fabric_queue_full_total"),
	}
	return f, nil
}

// Port exposes the shared socket's per-session virtual conn — the
// receiver side of a fabric link uses a second Demux the same way.
func (f *Fabric) Port(session uint64) *Port { return f.demux.Port(session) }

// AddSender creates a driven SSTP sender for one tenant session and
// registers it with the scheduler at the given weight. cfg.Conn is
// replaced with the fabric's per-session feedback port (the tenant's
// recvLoop hears only its own session's NACKs/queries/reports);
// cfg.Dest addresses the tenant's receivers over the shared link.
// All AddSender calls must precede Start.
func (f *Fabric) AddSender(cfg sstp.SenderConfig, weight float64) (*sstp.Sender, error) {
	f.mu.Lock()
	started := f.started
	f.mu.Unlock()
	if started {
		return nil, fmt.Errorf("fabric: AddSender after Start")
	}
	if cfg.Dest == nil {
		return nil, fmt.Errorf("fabric: tenant %d needs a Dest", cfg.Session)
	}
	if err := f.fq.AddTenant(cfg.Session, weight); err != nil {
		return nil, err
	}
	cfg.Conn = f.demux.Port(cfg.Session)
	s, err := sstp.NewSender(cfg)
	if err != nil {
		return nil, err
	}
	s.StartDriven()
	label := strconv.FormatUint(cfg.Session, 10)
	reg := f.cfg.Obs
	t := &tenant{
		session: cfg.Session,
		sender:  s,
		dest:    cfg.Dest,
		mBytes:  reg.Counter("sstp_fabric_tenant_tx_bytes_total", "tenant", label),
		mDgrams: reg.Counter("sstp_fabric_tenant_datagrams_total", "tenant", label),
		mDepth:  reg.Gauge("sstp_fabric_tenant_queue_depth", "tenant", label),
		mVTLag:  reg.Gauge("sstp_fabric_tenant_vt_lag", "tenant", label),
		mWeight: reg.Gauge("sstp_fabric_tenant_weight", "tenant", label),
		mStarve: reg.Gauge("sstp_fabric_tenant_starved", "tenant", label),
	}
	t.mWeight.Set(weight)
	f.mu.Lock()
	f.tenants = append(f.tenants, t)
	f.bySession[cfg.Session] = t
	f.m.tenants.Set(float64(len(f.tenants)))
	f.mu.Unlock()
	return s, nil
}

// SetWeight retunes a tenant's link share at runtime.
func (f *Fabric) SetWeight(session uint64, weight float64) error {
	if err := f.fq.SetWeight(session, weight); err != nil {
		return err
	}
	f.mu.Lock()
	if t := f.bySession[session]; t != nil {
		t.mWeight.Set(weight)
	}
	f.mu.Unlock()
	return nil
}

// Tenants returns the number of registered tenants.
func (f *Fabric) Tenants() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.tenants)
}

// TenantStats returns a scheduler-side snapshot per tenant.
func (f *Fabric) TenantStats() []TenantStat {
	return f.fq.Stats(nil, f.cfg.StarveAfter)
}

// Drops returns the demux drop counters (unknown-session, port
// overflow, non-SSTP).
func (f *Fabric) Drops() (unknown, overflow, foreign uint64) {
	return f.demux.Drops()
}

// Start launches the shared send loop.
func (f *Fabric) Start() {
	f.mu.Lock()
	f.started = true
	f.mu.Unlock()
	f.wg.Add(1)
	go f.sendLoop()
}

// Close stops the shared loop, then closes every tenant sender (each
// emits its final Goodbye directly on the shared socket — the loop
// must already be stopped so no announcement can follow a Goodbye),
// then the demux. The shared conn itself stays open for its owner.
func (f *Fabric) Close() error {
	f.once.Do(func() {
		close(f.done)
		f.wg.Wait()
		f.mu.Lock()
		tenants := append([]*tenant(nil), f.tenants...)
		f.mu.Unlock()
		// Tenant closes run concurrently: each blocks for its recv
		// loop's read-deadline tick, and a thousand sequential 200ms
		// waits would dominate shutdown.
		var wg sync.WaitGroup
		for _, t := range tenants {
			wg.Add(1)
			go func(t *tenant) {
				defer wg.Done()
				_ = t.sender.Close()
			}(t)
		}
		wg.Wait()
		_ = f.demux.Close()
	})
	return nil
}

// sendLoop is the fabric's single writer: fill the scheduler from
// every tenant's driven sender, drain one batch by virtual-finish
// order, pace it under the link bucket, write it with one batched
// syscall, and charge each tenant its actual bytes.
func (f *Fabric) sendLoop() {
	defer f.wg.Done()
	nb := f.cfg.BatchDatagrams
	bufs := make([][]byte, 0, nb)
	dests := make([]net.Addr, 0, nb)
	picked := make([]*Packet, 0, nb)
	nextGauges := time.Now()
	for {
		select {
		case <-f.done:
			return
		default:
		}
		if now := time.Now(); now.After(nextGauges) {
			f.refreshGauges()
			nextGauges = now.Add(250 * time.Millisecond)
		}

		// Fill: pull each tenant's next datagrams while its queue has
		// room. Backpressure is Room, not blocking — a tenant whose
		// queue is full keeps its backlog in its own sender.
		filled := false
		f.mu.Lock()
		tenants := f.tenants
		f.mu.Unlock()
		for _, t := range tenants {
			for f.fq.Room(t.session) {
				buf, ok := t.sender.NextWire()
				if !ok {
					break
				}
				if !f.fq.Enqueue(t.session, buf, t.dest) {
					f.m.fullSkip.Inc()
					break
				}
				filled = true
			}
		}

		// Drain one batch in virtual-finish order.
		bufs, dests, picked = bufs[:0], dests[:0], picked[:0]
		bits := 0.0
		for len(picked) < nb {
			p, ok := f.fq.Dequeue()
			if !ok {
				break
			}
			picked = append(picked, p)
			bufs = append(bufs, p.Bytes())
			dests = append(dests, p.Dest)
			bits += float64(8 * len(p.Bytes()))
			f.m.picks.Inc()
		}
		if len(picked) == 0 {
			if !filled {
				// Nothing anywhere: nap briefly (tenant buckets refill,
				// summaries come due on their own clocks).
				if !f.sleep(2 * time.Millisecond) {
					return
				}
			}
			continue
		}
		if f.bucket != nil && !f.throttle(bits) {
			for _, p := range picked {
				f.fq.Release(p)
			}
			return // closed while waiting
		}
		sent, _ := f.bconn.WriteBatchAddrs(bufs, dests)
		f.mu.Lock()
		for i, p := range picked {
			if i < sent {
				t := f.bySession[p.Session]
				n := uint64(len(p.Bytes()))
				t.mBytes.Add(n)
				t.mDgrams.Inc()
				f.m.bytes.Add(n)
				f.m.dgrams.Inc()
			}
		}
		f.mu.Unlock()
		for _, p := range picked {
			f.fq.Release(p)
		}
	}
}

// refreshGauges publishes the scheduler snapshot to the registry.
func (f *Fabric) refreshGauges() {
	f.statBuf = f.fq.Stats(f.statBuf[:0], f.cfg.StarveAfter)
	starved := 0
	depth := 0
	f.mu.Lock()
	for _, st := range f.statBuf {
		depth += st.Depth
		if st.Starved {
			starved++
		}
		t := f.bySession[st.Session]
		if t == nil {
			continue
		}
		t.mDepth.Set(float64(st.Depth))
		t.mVTLag.Set(st.VTLag)
		if st.Starved {
			t.mStarve.Set(1)
		} else {
			t.mStarve.Set(0)
		}
	}
	f.mu.Unlock()
	f.m.depth.Set(float64(depth))
	f.m.starved.Set(float64(starved))
	f.m.vtime.Set(f.fq.VTime())
}

// sleep waits for d or Close, reusing one timer. Returns false when
// the fabric closed while waiting.
func (f *Fabric) sleep(d time.Duration) bool {
	if f.waitTimer == nil {
		f.waitTimer = time.NewTimer(d)
	} else {
		f.waitTimer.Reset(d)
	}
	select {
	case <-f.done:
		if !f.waitTimer.Stop() {
			<-f.waitTimer.C
		}
		return false
	case <-f.waitTimer.C:
		return true
	}
}

// throttle blocks until the link bucket admits bits; false means the
// fabric closed while waiting.
func (f *Fabric) throttle(bits float64) bool {
	for {
		now := float64(time.Now().UnixNano()) / 1e9
		if f.bucket.Allow(now, bits) {
			return true
		}
		wait := f.bucket.TimeUntil(now, bits)
		if !f.sleep(time.Duration(wait * float64(time.Second))) {
			return false
		}
	}
}
