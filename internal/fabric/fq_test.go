package fabric

import (
	"testing"
	"time"
)

func mustAdd(t *testing.T, f *FQ, session uint64, weight float64) {
	t.Helper()
	if err := f.AddTenant(session, weight); err != nil {
		t.Fatal(err)
	}
}

// fill enqueues n equal-size packets for a session, stopping early if
// the queue fills.
func fill(f *FQ, session uint64, n, size int) int {
	b := make([]byte, size)
	got := 0
	for i := 0; i < n; i++ {
		if !f.Enqueue(session, b, nil) {
			break
		}
		got++
	}
	return got
}

func TestFQTenantValidation(t *testing.T) {
	f := NewFQ(1400, 8)
	mustAdd(t, f, 1, 1)
	if err := f.AddTenant(1, 2); err == nil {
		t.Fatal("duplicate tenant accepted")
	}
	if err := f.AddTenant(2, 0); err == nil {
		t.Fatal("zero weight accepted")
	}
	if err := f.SetWeight(99, 1); err == nil {
		t.Fatal("SetWeight on unknown tenant accepted")
	}
	if err := f.SetWeight(1, -1); err == nil {
		t.Fatal("negative weight accepted")
	}
	if f.Enqueue(99, []byte("x"), nil) {
		t.Fatal("enqueue for unknown tenant accepted")
	}
	if w := f.Weight(1); w != 1 {
		t.Fatalf("Weight = %v, want 1", w)
	}
}

func TestFQWeightedShares(t *testing.T) {
	// Two saturated tenants at weights 1 and 3: keep both queues
	// topped up, serve 400 packets, expect a ~1:3 split.
	f := NewFQ(100, 4)
	mustAdd(t, f, 1, 1)
	mustAdd(t, f, 2, 3)
	served := map[uint64]int{}
	for i := 0; i < 400; i++ {
		fill(f, 1, 4, 100)
		fill(f, 2, 4, 100)
		p, ok := f.Dequeue()
		if !ok {
			t.Fatal("dequeue failed with backlogged queues")
		}
		served[p.Session]++
		f.Release(p)
	}
	// weight-3 tenant should get ~300 of 400.
	if served[2] < 280 || served[2] > 320 {
		t.Fatalf("weight-3 tenant served %d/400, want ~300 (weight-1 got %d)", served[2], served[1])
	}
}

func TestFQChargesActualBytes(t *testing.T) {
	// Equal weights but tenant 1 sends datagrams 4x larger: byte
	// shares should equalize, so tenant 2 gets ~4x the packets.
	f := NewFQ(1400, 4)
	mustAdd(t, f, 1, 1)
	mustAdd(t, f, 2, 1)
	served := map[uint64]int{}
	for i := 0; i < 500; i++ {
		fill(f, 1, 4, 1200)
		fill(f, 2, 4, 300)
		p, ok := f.Dequeue()
		if !ok {
			t.Fatal("dequeue failed")
		}
		served[p.Session]++
		f.Release(p)
	}
	ratio := float64(served[2]) / float64(served[1])
	if ratio < 3.0 || ratio > 5.0 {
		t.Fatalf("packet ratio small/large = %v (%d vs %d), want ~4", ratio, served[2], served[1])
	}
}

func TestFQIdleTenantBanksNoCredit(t *testing.T) {
	// Tenant 2 stays idle while tenant 1 is served for a long run.
	// When 2 wakes, the max-of rule clamps its virtual start to the
	// global virtual time: it gets served promptly, but it must NOT
	// monopolize the link to "catch up" its idle period.
	f := NewFQ(100, 8)
	mustAdd(t, f, 1, 1)
	mustAdd(t, f, 2, 1)
	for i := 0; i < 200; i++ {
		fill(f, 1, 1, 100)
		p, _ := f.Dequeue()
		f.Release(p)
	}
	// Wake tenant 2 and keep both saturated: the split from here on
	// must be even, not biased toward the waker.
	served := map[uint64]int{}
	for i := 0; i < 200; i++ {
		fill(f, 1, 8, 100)
		fill(f, 2, 8, 100)
		p, ok := f.Dequeue()
		if !ok {
			t.Fatal("dequeue failed")
		}
		served[p.Session]++
		f.Release(p)
	}
	if served[2] < 80 || served[2] > 120 {
		t.Fatalf("woken tenant served %d/200, want ~100", served[2])
	}
}

func TestFQSetWeightRetunes(t *testing.T) {
	f := NewFQ(100, 4)
	mustAdd(t, f, 1, 1)
	mustAdd(t, f, 2, 1)
	serve := func(n int) map[uint64]int {
		served := map[uint64]int{}
		for i := 0; i < n; i++ {
			fill(f, 1, 4, 100)
			fill(f, 2, 4, 100)
			p, ok := f.Dequeue()
			if !ok {
				t.Fatal("dequeue failed")
			}
			served[p.Session]++
			f.Release(p)
		}
		return served
	}
	before := serve(200)
	if before[1] < 80 || before[1] > 120 {
		t.Fatalf("equal weights served %d/200 for tenant 1, want ~100", before[1])
	}
	if err := f.SetWeight(1, 9); err != nil {
		t.Fatal(err)
	}
	after := serve(400)
	if after[1] < 330 || after[1] > 390 {
		t.Fatalf("after retune to 9:1, tenant 1 served %d/400, want ~360", after[1])
	}
}

func TestFQRoomAndBackpressure(t *testing.T) {
	f := NewFQ(1400, 2)
	mustAdd(t, f, 1, 1)
	if !f.Room(1) {
		t.Fatal("empty queue reports no room")
	}
	if n := fill(f, 1, 5, 10); n != 2 {
		t.Fatalf("cap-2 queue accepted %d packets", n)
	}
	if f.Room(1) {
		t.Fatal("full queue reports room")
	}
	if f.Depth() != 2 {
		t.Fatalf("Depth = %d, want 2", f.Depth())
	}
	p, _ := f.Dequeue()
	f.Release(p)
	if !f.Room(1) {
		t.Fatal("queue with one free slot reports no room")
	}
}

func TestFIFOArrivalOrder(t *testing.T) {
	f := NewFIFO(1400, 4)
	mustAdd(t, f, 1, 1)
	mustAdd(t, f, 2, 1)
	// Interleave arrivals; FIFO must return them in exactly that
	// order regardless of weights.
	order := []uint64{1, 1, 2, 1, 2, 2, 1}
	for _, s := range order {
		if !f.Enqueue(s, []byte{byte(s)}, nil) {
			t.Fatal("enqueue failed")
		}
	}
	for i, want := range order {
		p, ok := f.Dequeue()
		if !ok {
			t.Fatalf("dequeue %d failed", i)
		}
		if p.Session != want {
			t.Fatalf("dequeue %d = session %d, want %d", i, p.Session, want)
		}
		f.Release(p)
	}
}

func TestFIFOSharedQueueCapturable(t *testing.T) {
	// The FIFO baseline's queue is shared: one tenant can fill the
	// whole bound (perCap x tenants) and lock the other out — the
	// starvation FQ prevents.
	f := NewFIFO(1400, 2)
	mustAdd(t, f, 1, 1)
	mustAdd(t, f, 2, 1)
	if n := fill(f, 1, 10, 10); n != 4 {
		t.Fatalf("bursty tenant claimed %d slots, want all 4", n)
	}
	if f.Enqueue(2, []byte("x"), nil) {
		t.Fatal("victim found room in a captured FIFO queue")
	}
	if f.Room(2) {
		t.Fatal("Room says yes on a captured FIFO queue")
	}
}

func TestFQStatsSnapshot(t *testing.T) {
	f := NewFQ(100, 8)
	mustAdd(t, f, 1, 2)
	mustAdd(t, f, 2, 1)
	fill(f, 1, 3, 50)
	for i := 0; i < 2; i++ {
		p, _ := f.Dequeue()
		f.Release(p)
	}
	stats := f.Stats(nil, time.Hour)
	byS := map[uint64]TenantStat{}
	for _, st := range stats {
		byS[st.Session] = st
	}
	if st := byS[1]; st.Depth != 1 || st.Packets != 2 || st.Bytes != 100 || st.Weight != 2 {
		t.Fatalf("tenant 1 stat = %+v", st)
	}
	if st := byS[1]; st.VTLag <= 0 {
		t.Fatalf("backlogged tenant VTLag = %v, want > 0", st.VTLag)
	}
	if st := byS[2]; st.Depth != 0 || st.Packets != 0 || st.Starved {
		t.Fatalf("idle tenant stat = %+v", st)
	}
	if byS[1].Starved {
		t.Fatal("fresh head marked starved under 1h window")
	}
	// With a zero-length starvation window any waiting head counts.
	time.Sleep(time.Millisecond)
	stats = f.Stats(stats[:0], time.Nanosecond)
	for _, st := range stats {
		if st.Session == 1 && !st.Starved {
			t.Fatal("waiting head not marked starved under 1ns window")
		}
	}
}

func TestFQDequeueEmpty(t *testing.T) {
	f := NewFQ(1400, 4)
	mustAdd(t, f, 1, 1)
	if _, ok := f.Dequeue(); ok {
		t.Fatal("dequeue on empty scheduler returned a packet")
	}
	ff := NewFIFO(1400, 4)
	mustAdd(t, ff, 1, 1)
	if _, ok := ff.Dequeue(); ok {
		t.Fatal("fifo dequeue on empty scheduler returned a packet")
	}
}
