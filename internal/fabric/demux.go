package fabric

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"softstate/internal/netio"
	"softstate/internal/obs"
	"softstate/internal/protocol"
)

// demuxPktPool recycles per-datagram copies handed to ports.
var demuxPktPool = sync.Pool{New: func() any {
	b := make([]byte, 0, 2048)
	return &b
}}

type demuxPacket struct {
	from net.Addr
	data []byte
	buf  *[]byte
}

func (p *demuxPacket) recycle() {
	if p.buf != nil {
		demuxPktPool.Put(p.buf)
		p.buf = nil
	}
}

// Demux fans one shared datagram socket out to per-session virtual
// conns, routing on the session id every SSTP header already carries
// (protocol.PeekSession). One UDP port serves all tenants — sender
// side it delivers each session's feedback (NACKs, queries, reports)
// to that tenant's driven sender, receiver side it delivers each
// session's announcements to that session's Receiver — with no
// wire-format change at all.
//
// The demux owns the socket's read side; writes go through it
// untouched (ports' WriteTo delegates to the shared conn). It does
// not close the underlying conn: the caller that opened the socket
// still owns its lifetime.
type Demux struct {
	conn  net.PacketConn
	bconn *netio.BatchConn

	mu     sync.Mutex
	ports  map[uint64]*Port
	closed bool

	unknownDrops  atomic.Uint64 // datagrams for sessions with no port
	overflowDrops atomic.Uint64 // datagrams dropped on a full port inbox
	foreignDrops  atomic.Uint64 // datagrams that are not SSTP at all

	mUnknown  *obs.Counter
	mOverflow *obs.Counter
	mForeign  *obs.Counter

	done chan struct{}
	wg   sync.WaitGroup
}

// NewDemux wraps conn and starts the shared read loop. reg may be nil.
func NewDemux(conn net.PacketConn, reg *obs.Registry) *Demux {
	d := &Demux{
		conn:      conn,
		bconn:     netio.Wrap(conn),
		ports:     make(map[uint64]*Port),
		done:      make(chan struct{}),
		mUnknown:  reg.Counter("sstp_fabric_demux_drops_total", "reason", "unknown_session"),
		mOverflow: reg.Counter("sstp_fabric_demux_drops_total", "reason", "overflow"),
		mForeign:  reg.Counter("sstp_fabric_demux_drops_total", "reason", "not_sstp"),
	}
	d.wg.Add(1)
	go d.readLoop()
	return d
}

// Port returns (creating if needed) the virtual conn for one session.
func (d *Demux) Port(session uint64) *Port {
	d.mu.Lock()
	defer d.mu.Unlock()
	if p, ok := d.ports[session]; ok {
		return p
	}
	p := &Port{
		d:       d,
		session: session,
		inbox:   make(chan demuxPacket, 512),
	}
	d.ports[session] = p
	return p
}

// Drops returns the cumulative drop counters (unknown-session,
// port-overflow, non-SSTP).
func (d *Demux) Drops() (unknown, overflow, foreign uint64) {
	return d.unknownDrops.Load(), d.overflowDrops.Load(), d.foreignDrops.Load()
}

// Close stops the read loop and closes every port. The underlying
// conn is left open — its opener owns it.
func (d *Demux) Close() error {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return nil
	}
	d.closed = true
	ports := make([]*Port, 0, len(d.ports))
	for _, p := range d.ports {
		ports = append(ports, p)
	}
	d.mu.Unlock()
	close(d.done)
	_ = d.conn.SetReadDeadline(time.Now()) // unblock the read loop
	d.wg.Wait()
	for _, p := range ports {
		_ = p.Close()
	}
	return nil
}

// readLoop drains the shared socket in batches and routes each
// datagram to its session's port.
func (d *Demux) readLoop() {
	defer d.wg.Done()
	const batch = 16
	bufs := make([][]byte, batch)
	for i := range bufs {
		bufs[i] = make([]byte, 2048)
	}
	sizes := make([]int, batch)
	addrs := make([]net.Addr, batch)
	for {
		select {
		case <-d.done:
			return
		default:
		}
		_ = d.conn.SetReadDeadline(time.Now().Add(200 * time.Millisecond))
		n, err := d.bconn.ReadBatch(bufs, sizes, addrs)
		if err != nil {
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				continue
			}
			return
		}
		for i := 0; i < n; i++ {
			d.route(bufs[i][:sizes[i]], addrs[i])
		}
	}
}

func (d *Demux) route(b []byte, from net.Addr) {
	session, ok := protocol.PeekSession(b)
	if !ok {
		d.foreignDrops.Add(1)
		d.mForeign.Inc()
		return
	}
	d.mu.Lock()
	p := d.ports[session]
	d.mu.Unlock()
	if p == nil {
		d.unknownDrops.Add(1)
		d.mUnknown.Inc()
		return
	}
	bp := demuxPktPool.Get().(*[]byte)
	*bp = append((*bp)[:0], b...)
	pkt := demuxPacket{from: from, data: *bp, buf: bp}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		pkt.recycle()
		return
	}
	select {
	case p.inbox <- pkt:
		p.mu.Unlock()
	default:
		p.mu.Unlock()
		pkt.recycle()
		d.overflowDrops.Add(1)
		d.mOverflow.Inc()
	}
}

// Port is one session's view of the shared socket: reads see only
// that session's datagrams, writes pass straight through to the
// shared conn. It implements net.PacketConn, so an sstp.Sender or
// sstp.Receiver runs over it unmodified.
type Port struct {
	d       *Demux
	session uint64
	inbox   chan demuxPacket

	mu     sync.Mutex
	closed bool

	deadlineMu sync.Mutex
	deadline   time.Time

	// rdTimer is reused across ReadFrom calls; ports are single-reader
	// like the sockets they stand in for.
	rdTimer *time.Timer
}

// Session returns the session id this port filters for.
func (p *Port) Session() uint64 { return p.session }

// ReadFrom implements net.PacketConn: the next datagram of this
// port's session.
func (p *Port) ReadFrom(b []byte) (int, net.Addr, error) {
	p.deadlineMu.Lock()
	dl := p.deadline
	p.deadlineMu.Unlock()
	var timeout <-chan time.Time
	if !dl.IsZero() {
		d := time.Until(dl)
		if d <= 0 {
			return 0, nil, timeoutError{}
		}
		if p.rdTimer == nil {
			p.rdTimer = time.NewTimer(d)
		} else {
			if !p.rdTimer.Stop() {
				select {
				case <-p.rdTimer.C:
				default:
				}
			}
			p.rdTimer.Reset(d)
		}
		timeout = p.rdTimer.C
	}
	select {
	case pkt, ok := <-p.inbox:
		if !ok {
			return 0, nil, net.ErrClosed
		}
		n := copy(b, pkt.data)
		pkt.recycle()
		return n, pkt.from, nil
	case <-timeout:
		return 0, nil, timeoutError{}
	}
}

// WriteTo implements net.PacketConn, passing through to the shared
// socket (datagram writes are concurrency-safe across ports).
func (p *Port) WriteTo(b []byte, addr net.Addr) (int, error) {
	p.mu.Lock()
	closed := p.closed
	p.mu.Unlock()
	if closed {
		return 0, net.ErrClosed
	}
	return p.d.conn.WriteTo(b, addr)
}

// Close implements net.PacketConn. It detaches this session from the
// demux; the shared socket stays open.
func (p *Port) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	close(p.inbox)
	p.mu.Unlock()
	p.d.mu.Lock()
	delete(p.d.ports, p.session)
	p.d.mu.Unlock()
	return nil
}

// LocalAddr implements net.PacketConn.
func (p *Port) LocalAddr() net.Addr { return p.d.conn.LocalAddr() }

// SetDeadline implements net.PacketConn.
func (p *Port) SetDeadline(t time.Time) error { return p.SetReadDeadline(t) }

// SetReadDeadline implements net.PacketConn.
func (p *Port) SetReadDeadline(t time.Time) error {
	p.deadlineMu.Lock()
	p.deadline = t
	p.deadlineMu.Unlock()
	return nil
}

// SetWriteDeadline implements net.PacketConn (writes never block on
// the port itself).
func (p *Port) SetWriteDeadline(time.Time) error { return nil }

type timeoutError struct{}

func (timeoutError) Error() string   { return "fabric: i/o timeout" }
func (timeoutError) Timeout() bool   { return true }
func (timeoutError) Temporary() bool { return true }

var _ net.PacketConn = (*Port)(nil)

// String aids debugging.
func (p *Port) String() string {
	return fmt.Sprintf("fabric-port(session=%d, %v)", p.session, p.d.conn.LocalAddr())
}
