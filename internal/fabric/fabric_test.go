package fabric

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"softstate/internal/obs"
	"softstate/internal/protocol"
	"softstate/internal/sstp"
	"softstate/internal/transport"
)

// captureDatagrams drains raw datagrams from a MemConn until n have
// arrived or the line stays quiet for the grace period.
func captureDatagrams(t *testing.T, c *sstp.MemConn, n int, grace time.Duration) [][]byte {
	t.Helper()
	var got [][]byte
	buf := make([]byte, 4096)
	for len(got) < n {
		_ = c.SetReadDeadline(time.Now().Add(grace))
		sz, _, err := c.ReadFrom(buf)
		if err != nil {
			break
		}
		got = append(got, append([]byte(nil), buf[:sz]...))
	}
	return got
}

func pinSenderConfig(session uint64, dest sstp.MemAddr, coalesce int) sstp.SenderConfig {
	return sstp.SenderConfig{
		Session: session, SenderID: 1,
		Dest:            dest,
		TotalRate:       10_000_000,
		SummaryInterval: time.Hour, // data datagrams only
		NoRetransmit:    true,      // each record exactly once
		TTL:             time.Hour,
		CoalesceRecords: coalesce,
		Seed:            42,
	}
}

func pinPublish(t *testing.T, s *sstp.Sender, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("pin/k%02d", i)
		val := []byte(fmt.Sprintf("value-%02d", i))
		if err := s.Republish(key, val, 1, 1000, time.Hour); err != nil {
			t.Fatal(err)
		}
	}
}

// TestSingleTenantWireIdentical pins the fabric's core compatibility
// claim: a session sent through the fabric puts byte-identical
// datagrams on the wire, in the same order, as the same session run
// standalone. Receivers cannot tell the difference.
func TestSingleTenantWireIdentical(t *testing.T) {
	const records = 12
	for _, coalesce := range []int{1, 4} {
		run := func(viaFabric bool) [][]byte {
			nw := sstp.NewMemNetwork(7)
			src := nw.Endpoint("src")
			dst := nw.Endpoint("dst")
			cfg := pinSenderConfig(9, "dst", coalesce)
			want := records
			if coalesce > 1 {
				want = (records + coalesce - 1) / coalesce
			}
			if viaFabric {
				f, err := New(Config{Conn: src})
				if err != nil {
					t.Fatal(err)
				}
				s, err := f.AddSender(cfg, 1)
				if err != nil {
					t.Fatal(err)
				}
				pinPublish(t, s, records)
				f.Start()
				defer f.Close()
				return captureDatagrams(t, dst, want, 2*time.Second)
			}
			cfg.Conn = src
			s, err := sstp.NewSender(cfg)
			if err != nil {
				t.Fatal(err)
			}
			pinPublish(t, s, records)
			s.Start()
			defer s.Close()
			return captureDatagrams(t, dst, want, 2*time.Second)
		}
		alone := run(false)
		fabric := run(true)
		if len(alone) == 0 {
			t.Fatalf("coalesce=%d: standalone run produced no datagrams", coalesce)
		}
		if len(alone) != len(fabric) {
			t.Fatalf("coalesce=%d: datagram count %d standalone vs %d via fabric",
				coalesce, len(alone), len(fabric))
		}
		for i := range alone {
			if !bytes.Equal(alone[i], fabric[i]) {
				t.Fatalf("coalesce=%d: datagram %d differs:\nstandalone: %x\nfabric:     %x",
					coalesce, i, alone[i], fabric[i])
			}
		}
	}
}

// TestDemuxRoutesBySession checks the session-id wire demux: one
// shared socket, per-session ports, drop accounting for foreign and
// unknown traffic.
func TestDemuxRoutesBySession(t *testing.T) {
	nw := sstp.NewMemNetwork(3)
	shared := nw.Endpoint("shared")
	peer := nw.Endpoint("peer")
	d := NewDemux(shared, nil)
	defer d.Close()
	p1 := d.Port(1)
	p2 := d.Port(2)

	mk := func(session uint64, seq uint32) []byte {
		hdr := protocol.Header{Session: session, Sender: 77, Seq: seq, Scope: 1}
		return protocol.Encode(hdr, &protocol.Heartbeat{})
	}
	for seq := uint32(0); seq < 3; seq++ {
		if _, err := peer.WriteTo(mk(1, seq), sstp.MemAddr("shared")); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := peer.WriteTo(mk(2, 0), sstp.MemAddr("shared")); err != nil {
		t.Fatal(err)
	}
	if _, err := peer.WriteTo(mk(99, 0), sstp.MemAddr("shared")); err != nil {
		t.Fatal(err) // no port for session 99
	}
	if _, err := peer.WriteTo([]byte("not sstp at all"), sstp.MemAddr("shared")); err != nil {
		t.Fatal(err)
	}

	readOne := func(p *Port) protocol.Header {
		t.Helper()
		buf := make([]byte, 2048)
		_ = p.SetReadDeadline(time.Now().Add(2 * time.Second))
		n, _, err := p.ReadFrom(buf)
		if err != nil {
			t.Fatal(err)
		}
		hdr, _, err := protocol.Decode(buf[:n])
		if err != nil {
			t.Fatal(err)
		}
		return hdr
	}
	for seq := uint32(0); seq < 3; seq++ {
		hdr := readOne(p1)
		if hdr.Session != 1 || hdr.Seq != seq {
			t.Fatalf("port 1 got session %d seq %d, want 1/%d", hdr.Session, hdr.Seq, seq)
		}
	}
	if hdr := readOne(p2); hdr.Session != 2 {
		t.Fatalf("port 2 got session %d", hdr.Session)
	}
	// Drop counters need the read loop to have consumed the strays.
	deadline := time.Now().Add(2 * time.Second)
	for {
		unknown, _, foreign := d.Drops()
		if unknown == 1 && foreign == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("drops = unknown %d foreign %d, want 1/1", unknown, foreign)
		}
		time.Sleep(5 * time.Millisecond)
	}
	// A port read past its deadline times out rather than stealing
	// another session's traffic.
	buf := make([]byte, 16)
	_ = p1.SetReadDeadline(time.Now().Add(10 * time.Millisecond))
	if _, _, err := p1.ReadFrom(buf); err == nil {
		t.Fatal("expected timeout on drained port")
	}
}

// TestFabricMultiTenantConvergence runs three tenants over one shared
// socket with loss on every path and requires each receiver to
// converge on its own session's records — announcements fan out from
// the shared send loop, feedback demuxes back per session, repair
// still works.
func TestFabricMultiTenantConvergence(t *testing.T) {
	nw := sstp.NewMemNetwork(11)
	shared := nw.Endpoint("fab")
	reg := obs.New("fabric-test")
	f, err := New(Config{Conn: shared, LinkRate: 4_000_000, Obs: reg})
	if err != nil {
		t.Fatal(err)
	}
	const tenants = 3
	senders := make([]*sstp.Sender, tenants)
	receivers := make([]*sstp.Receiver, tenants)
	for i := 0; i < tenants; i++ {
		session := uint64(100 + i)
		rname := sstp.MemAddr(fmt.Sprintf("r%d", i))
		rconn := nw.Endpoint(rname)
		nw.SetLoss("fab", rname, 0.05)
		s, err := f.AddSender(sstp.SenderConfig{
			Session: session, SenderID: 1,
			Dest:            rname,
			TotalRate:       512_000,
			SummaryInterval: 60 * time.Millisecond,
			TTL:             time.Hour,
			Seed:            int64(i + 1),
		}, float64(i+1))
		if err != nil {
			t.Fatal(err)
		}
		senders[i] = s
		r, err := sstp.NewReceiver(sstp.ReceiverConfig{
			Session: session, ReceiverID: 2,
			Conn: rconn, FeedbackDest: sstp.MemAddr("fab"),
			ReportInterval: 100 * time.Millisecond,
			NACKWindow:     20 * time.Millisecond,
			Seed:           int64(i + 100),
		})
		if err != nil {
			t.Fatal(err)
		}
		r.Start()
		receivers[i] = r
		for k := 0; k < 30; k++ {
			if err := s.Publish(fmt.Sprintf("t%d/key%02d", i, k),
				[]byte(fmt.Sprintf("tenant %d record %d", i, k)), time.Hour); err != nil {
				t.Fatal(err)
			}
		}
	}
	f.Start()
	defer func() {
		f.Close()
		for _, r := range receivers {
			r.Close()
		}
	}()

	deadline := time.Now().Add(15 * time.Second)
	for {
		done := 0
		for i := range senders {
			if senders[i].RootDigest() == receivers[i].RootDigest() && receivers[i].Len() == 30 {
				done++
			}
		}
		if done == tenants {
			break
		}
		if time.Now().After(deadline) {
			for i := range receivers {
				t.Logf("tenant %d: receiver has %d/30 records", i, receivers[i].Len())
			}
			t.Fatal("tenants failed to converge through the fabric")
		}
		time.Sleep(20 * time.Millisecond)
	}

	// Per-tenant metrics must be live in the shared registry.
	for i := 0; i < tenants; i++ {
		label := fmt.Sprintf("%d", 100+i)
		if v := reg.Get("sstp_fabric_tenant_tx_bytes_total", "tenant", label); v <= 0 {
			t.Fatalf("tenant %s tx bytes metric = %v", label, v)
		}
		if v := reg.Get("sstp_fabric_tenant_weight", "tenant", label); v != float64(i+1) {
			t.Fatalf("tenant %s weight metric = %v, want %d", label, v, i+1)
		}
	}
	if v := reg.Get("sstp_fabric_tenants"); v != tenants {
		t.Fatalf("sstp_fabric_tenants = %v, want %d", v, tenants)
	}
	if v := reg.Get("sstp_fabric_datagrams_total"); v <= 0 {
		t.Fatalf("sstp_fabric_datagrams_total = %v", v)
	}
	// Runtime retune reaches both the scheduler and the gauge.
	if err := f.SetWeight(100, 8); err != nil {
		t.Fatal(err)
	}
	if v := reg.Get("sstp_fabric_tenant_weight", "tenant", "100"); v != 8 {
		t.Fatalf("retuned weight gauge = %v, want 8", v)
	}
	if err := f.SetWeight(9999, 1); err == nil {
		t.Fatal("SetWeight on unknown tenant accepted")
	}
}

// TestFabricOverTCPStream runs the fabric's shared socket over a
// framed TCP stream conn: session-id demux is transport-independent
// (the id lives in the SSTP header, not the wire), so two tenants
// multiplexed onto one stream listener must both converge, and
// feedback arriving on the shared conn must route back to the right
// tenant's sender.
func TestFabricOverTCPStream(t *testing.T) {
	tcp, err := transport.New("tcp", transport.Options{})
	if err != nil {
		t.Fatal(err)
	}
	shared, err := tcp.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer shared.Close()
	feedback, err := tcp.Resolve(shared.LocalAddr().String())
	if err != nil {
		t.Fatal(err)
	}

	f, err := New(Config{Conn: shared, LinkRate: 4_000_000})
	if err != nil {
		t.Fatal(err)
	}
	const tenants = 2
	senders := make([]*sstp.Sender, tenants)
	receivers := make([]*sstp.Receiver, tenants)
	for i := 0; i < tenants; i++ {
		rconn, err := tcp.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer rconn.Close()
		dest, err := tcp.Resolve(rconn.LocalAddr().String())
		if err != nil {
			t.Fatal(err)
		}
		s, err := f.AddSender(sstp.SenderConfig{
			Session: uint64(300 + i), SenderID: 1,
			Dest:            dest,
			TotalRate:       512_000,
			SummaryInterval: 60 * time.Millisecond,
			TTL:             time.Hour,
			Seed:            int64(i + 1),
		}, 1)
		if err != nil {
			t.Fatal(err)
		}
		senders[i] = s
		r, err := sstp.NewReceiver(sstp.ReceiverConfig{
			Session: uint64(300 + i), ReceiverID: 2,
			Conn: rconn, FeedbackDest: feedback,
			NACKWindow: 20 * time.Millisecond,
			Seed:       int64(i + 100),
		})
		if err != nil {
			t.Fatal(err)
		}
		r.Start()
		receivers[i] = r
		for k := 0; k < 20; k++ {
			if err := s.Publish(fmt.Sprintf("t%d/key%02d", i, k),
				[]byte(fmt.Sprintf("tenant %d record %d", i, k)), time.Hour); err != nil {
				t.Fatal(err)
			}
		}
	}
	f.Start()
	defer func() {
		f.Close()
		for _, r := range receivers {
			r.Close()
		}
	}()

	deadline := time.Now().Add(15 * time.Second)
	for {
		done := 0
		for i := range senders {
			if senders[i].RootDigest() == receivers[i].RootDigest() && receivers[i].Len() == 20 {
				done++
			}
		}
		if done == tenants {
			return
		}
		if time.Now().After(deadline) {
			for i := range receivers {
				t.Logf("tenant %d: receiver has %d/20 records", i, receivers[i].Len())
			}
			t.Fatal("tenants failed to converge through the fabric over tcp")
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestFabricAddSenderValidation covers registration edge cases.
func TestFabricAddSenderValidation(t *testing.T) {
	nw := sstp.NewMemNetwork(1)
	f, err := New(Config{Conn: nw.Endpoint("fab")})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := New(Config{}); err == nil {
		t.Fatal("fabric without conn accepted")
	}
	if _, err := f.AddSender(sstp.SenderConfig{Session: 1, SenderID: 1, TotalRate: 1000}, 1); err == nil {
		t.Fatal("tenant without Dest accepted")
	}
	if _, err := f.AddSender(sstp.SenderConfig{
		Session: 1, SenderID: 1, Dest: sstp.MemAddr("r"), TotalRate: 1000,
	}, 0); err == nil {
		t.Fatal("tenant with zero weight accepted")
	}
	if _, err := f.AddSender(sstp.SenderConfig{
		Session: 1, SenderID: 1, Dest: sstp.MemAddr("r"), TotalRate: 1000,
	}, 1); err != nil {
		t.Fatal(err)
	}
	if f.Tenants() != 1 {
		t.Fatalf("Tenants = %d, want 1", f.Tenants())
	}
	f.Start()
	if _, err := f.AddSender(sstp.SenderConfig{
		Session: 2, SenderID: 1, Dest: sstp.MemAddr("r"), TotalRate: 1000,
	}, 1); err == nil {
		t.Fatal("AddSender after Start accepted")
	}
}
