package sdir

import (
	"strings"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"softstate/internal/sstp"
)

func sampleSession() Session {
	return Session{
		Name:        "sigcomm-keynote",
		Description: "Opening keynote",
		Owner:       "chair@conf.example",
		Tool:        "vic",
		Address:     "224.2.1.1/51482",
		Starts:      time.Unix(1_000_000, 0),
		Ends:        time.Unix(1_003_600, 0),
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	in := sampleSession()
	out, err := Unmarshal(in.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if out.Name != in.Name || out.Description != in.Description ||
		out.Owner != in.Owner || out.Tool != in.Tool || out.Address != in.Address {
		t.Errorf("round trip changed fields: %+v", out)
	}
	if !out.Starts.Equal(in.Starts) || !out.Ends.Equal(in.Ends) {
		t.Errorf("times changed: %v %v", out.Starts, out.Ends)
	}
}

func TestMarshalOpenEnded(t *testing.T) {
	in := Session{Name: "forever"}
	out, err := Unmarshal(in.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if !out.Starts.IsZero() || !out.Ends.IsZero() {
		t.Errorf("zero times not preserved: %+v", out)
	}
}

func TestUnmarshalErrors(t *testing.T) {
	cases := []string{
		"",
		"s=x\n",           // missing v=
		"v=1\ns=x\n",      // bad version
		"v=0\n",           // missing name
		"v=0\ns=x\nbad\n", // malformed line
		"v=0\ns=x\nt=1\n", // malformed t=
		"v=0\ns=x\nt=a b\n",
	}
	for i, c := range cases {
		if _, err := Unmarshal([]byte(c)); err == nil {
			t.Errorf("case %d accepted: %q", i, c)
		}
	}
}

func TestUnmarshalIgnoresUnknownAttributes(t *testing.T) {
	s, err := Unmarshal([]byte("v=0\ns=x\nz=future-field\n"))
	if err != nil || s.Name != "x" {
		t.Errorf("forward compatibility broken: %v %v", s, err)
	}
}

func TestValidate(t *testing.T) {
	good := sampleSession()
	if err := good.Validate(); err != nil {
		t.Errorf("valid session rejected: %v", err)
	}
	bad := []Session{
		{},
		{Name: "a/b"},
		{Name: "x\ny"},
		{Name: "x", Description: "a\nb"},
		{Name: "x", Starts: time.Unix(100, 0), Ends: time.Unix(50, 0)},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("bad session %d accepted: %+v", i, s)
		}
	}
}

func TestActive(t *testing.T) {
	s := sampleSession()
	if s.Active(s.Starts.Add(-time.Second)) {
		t.Error("active before start")
	}
	if !s.Active(s.Starts.Add(time.Minute)) {
		t.Error("inactive mid-session")
	}
	if s.Active(s.Ends) {
		t.Error("active at end")
	}
	open := Session{Name: "open"}
	if !open.Active(time.Now()) {
		t.Error("open-ended session inactive")
	}
}

// Property: any session with printable single-line fields round-trips.
func TestPropertyRoundTrip(t *testing.T) {
	clean := func(s string) string {
		return strings.Map(func(r rune) rune {
			if r == '\n' || r == '\r' {
				return ' '
			}
			return r
		}, s)
	}
	f := func(name, desc, tool string) bool {
		in := Session{
			Name:        "n" + strings.ReplaceAll(clean(name), "/", "_"),
			Description: clean(desc),
			Tool:        clean(tool),
		}
		if err := in.Validate(); err != nil {
			return true
		}
		out, err := Unmarshal(in.Marshal())
		if err != nil {
			return false
		}
		return out.Name == in.Name && out.Description == in.Description && out.Tool == in.Tool
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestDirectoryBrowserEndToEnd runs the full application over a lossy
// in-memory network: announce, update, withdraw, and soft-state
// expiry all flow through to the browser.
func TestDirectoryBrowserEndToEnd(t *testing.T) {
	nw := sstp.NewMemNetwork(21)
	nw.SetLoss("dir", "ui", 0.1)
	sender, err := sstp.NewSender(sstp.SenderConfig{
		Session: 9875, SenderID: 1,
		Conn: nw.Endpoint("dir"), Dest: sstp.MemAddr("ui"),
		TotalRate: 256_000, SummaryInterval: 60 * time.Millisecond,
		TTL: 2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sender.Close()
	dir := NewDirectory(sender)

	var newNames, goneNames []string
	var mu sync.Mutex
	browser, rcv, err := NewBrowser(sstp.ReceiverConfig{
		Session: 9875, ReceiverID: 2,
		Conn: nw.Endpoint("ui"), FeedbackDest: sstp.MemAddr("dir"),
		NACKWindow: 30 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	browser.OnNew = func(s Session) { mu.Lock(); newNames = append(newNames, s.Name); mu.Unlock() }
	browser.OnGone = func(n string) { mu.Lock(); goneNames = append(goneNames, n); mu.Unlock() }
	defer rcv.Close()
	sender.Start()
	rcv.Start()

	ends := time.Now().Add(time.Hour)
	for _, name := range []string{"keynote", "wg-meeting", "hallway"} {
		if err := dir.Announce(Session{Name: name, Tool: "vat", Ends: ends}); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, 10*time.Second, "catalogue sync", func() bool { return browser.Len() == 3 })
	if got := browser.List(); got[0].Name != "hallway" || got[2].Name != "wg-meeting" {
		t.Errorf("List order: %v", got)
	}
	if _, ok := browser.Get("keynote"); !ok {
		t.Error("keynote missing")
	}

	// Update propagates as OnChange, not OnNew.
	changed := make(chan Session, 1)
	browser.OnChange = func(s Session) {
		select {
		case changed <- s:
		default:
		}
	}
	dir.Announce(Session{Name: "keynote", Tool: "vic", Description: "now with video", Ends: ends})
	select {
	case s := <-changed:
		if s.Tool != "vic" {
			t.Errorf("changed session: %+v", s)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("no OnChange")
	}

	// Withdrawal tombstones through to OnGone.
	if !dir.Withdraw("hallway") {
		t.Fatal("withdraw failed")
	}
	waitFor(t, 10*time.Second, "withdrawal", func() bool { return browser.Len() == 2 })

	// Killing the directory expires the rest via soft state.
	sender.Close()
	waitFor(t, 10*time.Second, "expiry", func() bool { return browser.Len() == 0 })
	mu.Lock()
	defer mu.Unlock()
	if len(newNames) != 3 {
		t.Errorf("OnNew fired %d times: %v", len(newNames), newNames)
	}
	if len(goneNames) != 3 {
		t.Errorf("OnGone fired %d times: %v", len(goneNames), goneNames)
	}
}

func TestAnnounceValidation(t *testing.T) {
	nw := sstp.NewMemNetwork(22)
	sender, err := sstp.NewSender(sstp.SenderConfig{
		Session: 1, SenderID: 1, Conn: nw.Endpoint("d"), Dest: sstp.MemAddr("u"), TotalRate: 1000,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sender.Close()
	dir := NewDirectory(sender)
	if err := dir.Announce(Session{}); err == nil {
		t.Error("nameless session accepted")
	}
	if err := dir.Announce(Session{Name: "x", Ends: time.Now().Add(-time.Hour)}); err == nil {
		t.Error("ended session accepted")
	}
	if dir.Withdraw("missing") {
		t.Error("withdraw of unknown session returned true")
	}
}

func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}
