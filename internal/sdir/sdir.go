// Package sdir is a session-directory application built on SSTP — the
// sdr/SAP use case the paper repeatedly motivates ("it has been
// successfully used in the multicast-based session directory tools to
// disseminate MBone conference information to large groups").
//
// A Directory announces conference Sessions as soft state: each
// session is one {key, value} record whose lifetime matches the
// conference's end time, described in an SDP-like text form. Browsers
// subscribe and maintain a live catalogue that tracks announcements,
// updates, withdrawals, and — crucially — expires sessions by itself
// when announcements stop.
package sdir

import (
	"fmt"
	"net"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"softstate/internal/sstp"
)

// Session describes one announced conference.
type Session struct {
	Name        string    // unique within the directory
	Description string    // one-line human description
	Owner       string    // announcer identity
	Tool        string    // media tool, e.g. "vat", "vic", "wb"
	Address     string    // where the conference itself happens
	Starts      time.Time // zero = already started
	Ends        time.Time // zero = open-ended
}

// Validate checks announceability.
func (s Session) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("sdir: session needs a name")
	}
	if strings.ContainsAny(s.Name, "/\n") {
		return fmt.Errorf("sdir: name %q may not contain '/' or newlines", s.Name)
	}
	for _, f := range []struct{ label, v string }{
		{"description", s.Description}, {"owner", s.Owner},
		{"tool", s.Tool}, {"address", s.Address},
	} {
		if strings.ContainsRune(f.v, '\n') {
			return fmt.Errorf("sdir: %s may not contain newlines", f.label)
		}
	}
	if !s.Ends.IsZero() && !s.Starts.IsZero() && s.Ends.Before(s.Starts) {
		return fmt.Errorf("sdir: session ends before it starts")
	}
	return nil
}

// Active reports whether the session is in progress at time t.
func (s Session) Active(t time.Time) bool {
	if !s.Starts.IsZero() && t.Before(s.Starts) {
		return false
	}
	if !s.Ends.IsZero() && !t.Before(s.Ends) {
		return false
	}
	return true
}

// Marshal encodes the session in an SDP-like line format.
func (s Session) Marshal() []byte {
	var b strings.Builder
	b.WriteString("v=0\n")
	fmt.Fprintf(&b, "s=%s\n", s.Name)
	if s.Description != "" {
		fmt.Fprintf(&b, "i=%s\n", s.Description)
	}
	if s.Owner != "" {
		fmt.Fprintf(&b, "o=%s\n", s.Owner)
	}
	if s.Tool != "" {
		fmt.Fprintf(&b, "m=%s\n", s.Tool)
	}
	if s.Address != "" {
		fmt.Fprintf(&b, "c=%s\n", s.Address)
	}
	start, end := int64(0), int64(0)
	if !s.Starts.IsZero() {
		start = s.Starts.Unix()
	}
	if !s.Ends.IsZero() {
		end = s.Ends.Unix()
	}
	fmt.Fprintf(&b, "t=%d %d\n", start, end)
	return []byte(b.String())
}

// Unmarshal parses the SDP-like format.
func Unmarshal(data []byte) (Session, error) {
	var s Session
	sawVersion := false
	for _, line := range strings.Split(strings.TrimRight(string(data), "\n"), "\n") {
		if line == "" {
			continue
		}
		if len(line) < 2 || line[1] != '=' {
			return s, fmt.Errorf("sdir: malformed line %q", line)
		}
		val := line[2:]
		switch line[0] {
		case 'v':
			if val != "0" {
				return s, fmt.Errorf("sdir: unsupported version %q", val)
			}
			sawVersion = true
		case 's':
			s.Name = val
		case 'i':
			s.Description = val
		case 'o':
			s.Owner = val
		case 'm':
			s.Tool = val
		case 'c':
			s.Address = val
		case 't':
			parts := strings.Fields(val)
			if len(parts) != 2 {
				return s, fmt.Errorf("sdir: malformed t= line %q", line)
			}
			start, err1 := strconv.ParseInt(parts[0], 10, 64)
			end, err2 := strconv.ParseInt(parts[1], 10, 64)
			if err1 != nil || err2 != nil {
				return s, fmt.Errorf("sdir: malformed t= line %q", line)
			}
			if start != 0 {
				s.Starts = time.Unix(start, 0)
			}
			if end != 0 {
				s.Ends = time.Unix(end, 0)
			}
		default:
			// Unknown attributes are ignored for forward compatibility.
		}
	}
	if !sawVersion {
		return s, fmt.Errorf("sdir: missing v= line")
	}
	if s.Name == "" {
		return s, fmt.Errorf("sdir: missing s= line")
	}
	return s, nil
}

const keyPrefix = "sessions/"

// Directory is the announcing side: a thin application layer over an
// SSTP sender.
type Directory struct {
	sender *sstp.Sender
}

// NewDirectory announces sessions through the given SSTP sender (which
// the caller configures, starts, and closes).
func NewDirectory(sender *sstp.Sender) *Directory {
	if sender == nil {
		panic("sdir: nil sender")
	}
	return &Directory{sender: sender}
}

// Announce publishes or updates a session. Its record lifetime is
// derived from Ends (open-ended sessions live until Withdraw).
func (d *Directory) Announce(s Session) error {
	if err := s.Validate(); err != nil {
		return err
	}
	var lifetime time.Duration
	if !s.Ends.IsZero() {
		lifetime = time.Until(s.Ends)
		if lifetime <= 0 {
			return fmt.Errorf("sdir: session %q already ended", s.Name)
		}
	}
	return d.sender.Publish(keyPrefix+s.Name, s.Marshal(), lifetime)
}

// Withdraw removes a session announcement (tombstoned to listeners).
func (d *Directory) Withdraw(name string) bool {
	return d.sender.Delete(keyPrefix + name)
}

// Len returns the number of live announcements.
func (d *Directory) Len() int { return d.sender.Len() }

// Browser is the listening side: it maintains the replica catalogue.
type Browser struct {
	mu       sync.Mutex
	sessions map[string]Session
	receiver *sstp.Receiver

	// OnNew, OnChange, and OnGone fire as the catalogue evolves
	// (OnGone covers both withdrawal and soft-state expiry).
	OnNew    func(Session)
	OnChange func(Session)
	OnGone   func(name string)
}

// NewBrowser builds a catalogue fed by an SSTP receiver created from
// cfg; the browser installs its own OnUpdate/OnExpire hooks (chaining
// to any the caller provided) and returns the receiver so the caller
// can Start/Close it.
func NewBrowser(cfg sstp.ReceiverConfig) (*Browser, *sstp.Receiver, error) {
	b := &Browser{sessions: make(map[string]Session)}
	userUpdate, userExpire := cfg.OnUpdate, cfg.OnExpire
	cfg.OnUpdate = func(key string, value []byte, version uint64, born float64) {
		b.update(key, value)
		if userUpdate != nil {
			userUpdate(key, value, version, born)
		}
	}
	cfg.OnExpire = func(key string) {
		b.gone(key)
		if userExpire != nil {
			userExpire(key)
		}
	}
	r, err := sstp.NewReceiver(cfg)
	if err != nil {
		return nil, nil, err
	}
	b.receiver = r
	return b, r, nil
}

func (b *Browser) update(key string, value []byte) {
	if !strings.HasPrefix(key, keyPrefix) {
		return
	}
	s, err := Unmarshal(value)
	if err != nil {
		return // malformed announcements are ignored, not fatal
	}
	b.mu.Lock()
	_, existed := b.sessions[s.Name]
	b.sessions[s.Name] = s
	b.mu.Unlock()
	if existed {
		if b.OnChange != nil {
			b.OnChange(s)
		}
	} else if b.OnNew != nil {
		b.OnNew(s)
	}
}

func (b *Browser) gone(key string) {
	if !strings.HasPrefix(key, keyPrefix) {
		return
	}
	name := strings.TrimPrefix(key, keyPrefix)
	b.mu.Lock()
	_, existed := b.sessions[name]
	delete(b.sessions, name)
	b.mu.Unlock()
	if existed && b.OnGone != nil {
		b.OnGone(name)
	}
}

// Get returns a session by name.
func (b *Browser) Get(name string) (Session, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	s, ok := b.sessions[name]
	return s, ok
}

// List returns all known sessions sorted by name.
func (b *Browser) List() []Session {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]Session, 0, len(b.sessions))
	for _, s := range b.sessions {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Active returns the sessions in progress at time t, sorted by name.
func (b *Browser) Active(t time.Time) []Session {
	var out []Session
	for _, s := range b.List() {
		if s.Active(t) {
			out = append(out, s)
		}
	}
	return out
}

// Len returns the catalogue size.
func (b *Browser) Len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.sessions)
}

// Dial is a convenience constructor wiring a Directory and Browser
// over UDP for the common unicast case; see the examples and tests
// for multicast and in-memory setups built directly from the sstp
// configs.
func Dial(session uint64, laddr, raddr string, rate float64) (*Directory, *sstp.Sender, error) {
	conn, err := net.ListenPacket("udp", laddr)
	if err != nil {
		return nil, nil, err
	}
	dst, err := net.ResolveUDPAddr("udp", raddr)
	if err != nil {
		conn.Close()
		return nil, nil, err
	}
	s, err := sstp.NewSender(sstp.SenderConfig{
		Session: session, SenderID: uint64(time.Now().UnixNano()),
		Conn: conn, Dest: dst, TotalRate: rate,
	})
	if err != nil {
		conn.Close()
		return nil, nil, err
	}
	return NewDirectory(s), s, nil
}
