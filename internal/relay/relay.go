// Package relay builds application-level multicast trees out of SSTP
// sessions: a Relay joins a session as a receiver on its upstream link
// and re-publishes the replica as a full SSTP sender on each of its
// downstream links. Announcements fan out hop by hop, so a single
// publisher can feed arbitrarily many subscribers through an N-ary
// overlay; Summary/Query/NACK repair is answered locally by the
// nearest relay's replica, so recovery traffic never travels past one
// hop — the paper's scoped-recovery goal at overlay scale.
//
// Soft-state semantics are preserved at every hop: each downstream
// link is an ordinary SSTP session whose records are refreshed while
// the relay holds them, tombstoned when the upstream copy dies, and
// flushed when the upstream publisher says Goodbye. The hop budget in
// every datagram header (protocol.Header.Scope) is decremented at each
// level, so a mis-wired forwarding loop dies out instead of
// circulating forever.
package relay

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"softstate/internal/namespace"
	"softstate/internal/obs"
	"softstate/internal/protocol"
	"softstate/internal/sstp"
	"softstate/internal/trace"
	"softstate/internal/transport"
)

// Downstream describes one downstream link of a relay: a transport
// conn and the destination (usually a multicast group holding this
// subtree's children) plus that link's independent bandwidth budget.
// Each link picks its own transport — a relay with a UDP upstream and
// TCP/TLS downstreams is a bridge between the datacenter's datagram
// fabric and framed WAN streams, and vice versa; the soft-state
// records it re-publishes are transport-agnostic.
type Downstream struct {
	Conn transport.Conn
	Dest net.Addr

	// Rate is the link's session bandwidth in bits/s. When MinRate and
	// MaxRate are also set, the link runs its own AIMD controller
	// driven by its own children's receiver reports — congestion on
	// one subtree never slows a sibling subtree down.
	Rate    float64
	MinRate float64
	MaxRate float64
}

// Config parameterizes a Relay.
type Config struct {
	Session uint64

	// RelayID seeds the identifiers used on every link: the upstream
	// receiver runs as RelayID and downstream sender i as RelayID+1+i,
	// so a relay can never mistake its own traffic for its publisher's.
	RelayID uint64

	// UpstreamConn is the conn on the link toward the publisher (or
	// parent relay); UpstreamFeedback is where this relay's own repair
	// requests go — the parent's group, so the parent answers them.
	// Like Downstream.Conn it may be any transport.Conn.
	UpstreamConn     transport.Conn
	UpstreamFeedback net.Addr

	// Downstreams are the links this relay re-publishes on. At least
	// one is required.
	Downstreams []Downstream

	// TTL is the receiver-side lifetime announced downstream (default
	// 30 s); records are re-announced well within it while the relay
	// holds them.
	TTL time.Duration

	// SummaryInterval is the digest announcement period on every
	// downstream link (default 1 s).
	SummaryInterval time.Duration

	// NACKWindow is the upstream receiver's repair slotting window
	// (default 100 ms).
	NACKWindow time.Duration

	// Scope forces the hop budget stamped on downstream datagrams.
	// 0 (the default) derives it from the upstream scope minus one,
	// which is what bounds loops and forwarding depth; set it only to
	// pin a tree's depth explicitly.
	Scope uint8

	// Stripes shards the upstream replica and every downstream
	// sender's table by key hash; CoalesceRecords and BatchDatagrams
	// set the downstream links' MTU coalescing and sendmmsg batching.
	// All default to 1 (the pre-sharding behavior); see
	// sstp.SenderConfig for semantics. A relay tree mixing different
	// stripe counts per hop still hashes to the origin digest, because
	// the combined root is independent of the stripe count.
	Stripes         int
	CoalesceRecords int
	BatchDatagrams  int

	// FallbackFeedback, when set, arms the orphan watchdog: if the
	// upstream publisher goes silent for OrphanTimeout, the relay
	// re-parents — its repair and report traffic re-targets
	// FallbackFeedback, the learned publisher resets so the fallback
	// parent (usually the grandparent, or the origin) is adopted
	// fresh, and OnReparent fires so the embedding daemon or harness
	// can redial links/groups toward the new parent. The replica
	// survives the switch: the fallback republishes with origin
	// versions, so held records refresh instead of conflicting, and
	// anything the dead parent never delivered is repaired by the
	// normal digest descent against the new upstream.
	FallbackFeedback net.Addr

	// OrphanTimeout is the upstream silence that triggers
	// re-parenting (default 5 s; meaningful only with
	// FallbackFeedback). It should comfortably exceed the parent's
	// SummaryInterval, which bounds the healthy inter-datagram gap.
	OrphanTimeout time.Duration

	// OnReparent, if non-nil, is called from the watchdog goroutine
	// each time the relay re-parents (at most once per silence
	// episode — the watchdog re-arms only after the new parent has
	// been heard).
	OnReparent func()

	// Obs, if non-nil, receives both the relay_* counters and the
	// sstp_* series of the upstream receiver and downstream senders.
	Obs *obs.Registry

	// Trace, if non-nil, records protocol events on every link; use
	// trace.NewSafe.
	Trace *trace.Ring

	Seed int64
}

// Stats are cumulative relay counters.
type Stats struct {
	Forwarded  int // upstream updates re-published downstream
	Tombstoned int // upstream expirations propagated as deletions
	Goodbyes   int // upstream Goodbyes propagated downstream
	ScopeDrops int // updates dropped because the hop budget ran out

	// QueriesServed / NACKsHeard aggregate the repair traffic this
	// relay answered locally across all downstream links — requests
	// that never reached its upstream.
	QueriesServed int
	NACKsHeard    int

	// Reparents counts orphan-watchdog firings: upstream silences that
	// made this relay adopt its fallback parent.
	Reparents int
}

// Relay is one interior node of the overlay tree.
type Relay struct {
	cfg   Config
	up    *sstp.Receiver
	downs []*sstp.Sender
	m     metrics
	links []*linkMetrics // per-downstream-link series (nil without Obs)

	// obsLoop lifecycle (started only when a registry is attached).
	done chan struct{}
	wg   sync.WaitGroup

	// scopeState caches the forwarding decision derived from the
	// upstream hop budget: 0 unknown, 1 forwarding, -1 exhausted.
	// Written on the upstream dispatcher goroutine, read by Stats.
	scopeState atomic.Int32

	mu    sync.Mutex
	stats Stats

	closeOnce sync.Once
}

// New wires a relay; call Start to begin relaying.
func New(cfg Config) (*Relay, error) {
	if cfg.UpstreamConn == nil {
		return nil, fmt.Errorf("relay: needs UpstreamConn")
	}
	if len(cfg.Downstreams) == 0 {
		return nil, fmt.Errorf("relay: needs at least one downstream link")
	}
	if cfg.TTL <= 0 {
		cfg.TTL = 30 * time.Second
	}
	if cfg.OrphanTimeout <= 0 {
		cfg.OrphanTimeout = 5 * time.Second
	}
	r := &Relay{cfg: cfg, m: newMetrics(cfg.Obs), done: make(chan struct{})}
	if cfg.Obs != nil {
		for i := range cfg.Downstreams {
			r.links = append(r.links, newLinkMetrics(cfg.Obs, i))
		}
	}

	for i, d := range cfg.Downstreams {
		if d.Conn == nil || d.Dest == nil {
			return nil, fmt.Errorf("relay: downstream %d needs Conn and Dest", i)
		}
		rate := d.Rate
		if rate <= 0 {
			rate = 1_000_000
		}
		s, err := sstp.NewSender(sstp.SenderConfig{
			Session:         cfg.Session,
			SenderID:        cfg.RelayID + 1 + uint64(i),
			Conn:            d.Conn,
			Dest:            d.Dest,
			TotalRate:       rate,
			MinRate:         d.MinRate,
			MaxRate:         d.MaxRate,
			TTL:             cfg.TTL,
			SummaryInterval: cfg.SummaryInterval,
			Scope:           1, // placeholder until the upstream scope is learned
			Stripes:         cfg.Stripes,
			CoalesceRecords: cfg.CoalesceRecords,
			BatchDatagrams:  cfg.BatchDatagrams,
			Obs:             cfg.Obs,
			Trace:           cfg.Trace,
			TraceNode:       fmt.Sprintf("relay%d/dn%d", cfg.RelayID, i),
			Seed:            cfg.Seed + int64(i),
		})
		if err != nil {
			return nil, fmt.Errorf("relay: downstream %d: %w", i, err)
		}
		r.downs = append(r.downs, s)
	}

	up, err := sstp.NewReceiver(sstp.ReceiverConfig{
		Session:        cfg.Session,
		ReceiverID:     cfg.RelayID,
		Conn:           cfg.UpstreamConn,
		FeedbackDest:   cfg.UpstreamFeedback,
		NACKWindow:     cfg.NACKWindow,
		FlushOnGoodbye: true, // a root Goodbye tears the tree down hop by hop
		Stripes:        cfg.Stripes,
		OnUpdate:       r.onUpstreamUpdate,
		OnExpire:       r.onUpstreamExpire,
		OnGoodbye:      r.onUpstreamGoodbye,
		Obs:            cfg.Obs,
		Trace:          cfg.Trace,
		TraceNode:      fmt.Sprintf("relay%d/up", cfg.RelayID),
		Seed:           cfg.Seed,
	})
	if err != nil {
		return nil, fmt.Errorf("relay: upstream: %w", err)
	}
	r.up = up
	r.m.downstreams.Set(float64(len(r.downs)))
	return r, nil
}

// Start launches the upstream receiver and every downstream sender.
func (r *Relay) Start() {
	for _, d := range r.downs {
		d.Start()
	}
	r.up.Start()
	if len(r.links) > 0 {
		r.wg.Add(1)
		go r.obsLoop()
	}
	if r.cfg.FallbackFeedback != nil {
		r.wg.Add(1)
		go r.watchLoop()
	}
}

// wallSeconds is the wall clock in the float-seconds time base the
// sstp receiver reports LastHeard in.
func wallSeconds() float64 { return float64(time.Now().UnixNano()) / 1e9 }

// watchLoop is the orphan watchdog: when the upstream publisher has
// been silent past OrphanTimeout, re-parent onto FallbackFeedback.
// One firing per silence episode — the watchdog re-arms only once the
// new parent has actually been heard, so a dead fallback doesn't make
// it spin.
func (r *Relay) watchLoop() {
	defer r.wg.Done()
	timeout := r.cfg.OrphanTimeout.Seconds()
	tick := time.NewTicker(r.cfg.OrphanTimeout / 4)
	defer tick.Stop()
	armed := wallSeconds() // silence reference before any publisher is heard
	fired := false
	for {
		select {
		case <-r.done:
			return
		case <-tick.C:
			last, heard := r.up.LastHeard()
			if heard {
				fired = false
			} else {
				last = armed
			}
			if fired || wallSeconds()-last < timeout {
				continue
			}
			r.reparent()
			armed = wallSeconds()
			fired = true
		}
	}
}

// reparent adopts the fallback parent: repair/report traffic
// re-targets it, the learned publisher resets so the fallback is
// adopted fresh, and the scope cache re-derives the hop budget from
// the new upstream's datagrams.
func (r *Relay) reparent() {
	r.up.SetFeedbackDest(r.cfg.FallbackFeedback)
	r.scopeState.Store(0)
	r.m.reparents.Inc()
	r.mu.Lock()
	r.stats.Reparents++
	r.mu.Unlock()
	if r.cfg.OnReparent != nil {
		r.cfg.OnReparent()
	}
}

// obsLoop mirrors each downstream sender's congestion state and repair
// counters into the per-link relay_link_* series once a second.
func (r *Relay) obsLoop() {
	defer r.wg.Done()
	tick := time.NewTicker(time.Second)
	defer tick.Stop()
	for {
		select {
		case <-r.done:
			// Final sync so short-lived relays still report their
			// repair activity.
			for i, lm := range r.links {
				lm.sync(r.downs[i])
			}
			return
		case <-tick.C:
			for i, lm := range r.links {
				lm.sync(r.downs[i])
			}
		}
	}
}

// Close stops the relay: the upstream receiver first (no further
// write-throughs; its dispatcher drains before Close returns), then
// each downstream sender, whose final Goodbye flushes tracking
// children — a relay leaving the tree takes its subtree's soft state
// with it, exactly like a dying publisher.
func (r *Relay) Close() error {
	r.closeOnce.Do(func() {
		r.up.Close()
		for _, d := range r.downs {
			d.Close()
		}
		close(r.done)
		r.wg.Wait()
	})
	return nil
}

// onUpstreamUpdate write-through: every upstream value change is
// re-published on every downstream link. Runs on the upstream
// receiver's dispatcher goroutine, so downstream versions advance in
// upstream order.
func (r *Relay) onUpstreamUpdate(key string, value []byte, version uint64, born float64) {
	if !r.forwardable() {
		return
	}
	for _, d := range r.downs {
		// The upstream version is forwarded verbatim so every replica
		// in the tree hashes to the origin publisher's digest, and the
		// origin publish time rides along so leaf visibility lag is
		// measured end-to-end.
		// Lifetime 0: the record lives in the downstream session until
		// the upstream copy expires or the publisher leaves; the
		// sender's cold cycle keeps children refreshed meanwhile.
		if err := d.Republish(key, value, version, born, 0); err != nil {
			continue
		}
	}
	r.m.forwarded.Inc()
	r.m.records.Set(float64(r.up.Len()))
	r.mu.Lock()
	r.stats.Forwarded++
	r.mu.Unlock()
}

// onUpstreamExpire propagates a lifetime expiry (or tombstone) as a
// downstream deletion, so the subtree flushes the key well before its
// own TTL would fire.
func (r *Relay) onUpstreamExpire(key string) {
	for i, d := range r.downs {
		d.Delete(key)
		if i < len(r.links) {
			r.links[i].tombs.Inc()
		}
	}
	r.m.tombstones.Inc()
	r.m.records.Set(float64(r.up.Len()))
	r.mu.Lock()
	r.stats.Tombstoned++
	r.mu.Unlock()
}

// onUpstreamGoodbye propagates the publisher's departure: each
// downstream sender flushes and says Goodbye itself (without
// stopping), so the teardown cascades to the leaves. The scope cache
// resets so a successor publisher re-derives it.
func (r *Relay) onUpstreamGoodbye() {
	for i, d := range r.downs {
		d.Goodbye()
		if i < len(r.links) {
			r.links[i].goodbyes.Inc()
		}
	}
	r.scopeState.Store(0)
	r.m.goodbyes.Inc()
	r.m.records.Set(0)
	r.mu.Lock()
	r.stats.Goodbyes++
	r.mu.Unlock()
}

// forwardable reports whether the hop budget allows re-publishing,
// deriving the downstream scope from the upstream one on first use.
// Runs only on the dispatcher goroutine.
func (r *Relay) forwardable() bool {
	switch r.scopeState.Load() {
	case 1:
		return true
	case -1:
		r.m.scopeDrops.Inc()
		r.mu.Lock()
		r.stats.ScopeDrops++
		r.mu.Unlock()
		return false
	}
	up, ok := r.up.PublisherScope()
	if !ok || up == 0 {
		up = protocol.DefaultScope
	}
	down := r.cfg.Scope
	if down == 0 {
		if up <= 1 {
			// The upstream datagram's budget is spent: this relay is
			// one hop too deep (or part of a loop) and must not
			// forward.
			r.scopeState.Store(-1)
			r.m.scopeDrops.Inc()
			r.mu.Lock()
			r.stats.ScopeDrops++
			r.mu.Unlock()
			return false
		}
		down = up - 1
	}
	for _, d := range r.downs {
		d.SetScope(down)
	}
	r.scopeState.Store(1)
	return true
}

// Stats returns a copy of the relay counters, including the repair
// traffic answered locally by the downstream senders.
func (r *Relay) Stats() Stats {
	r.mu.Lock()
	st := r.stats
	r.mu.Unlock()
	for _, d := range r.downs {
		ds := d.Stats()
		st.QueriesServed += ds.QueriesServed
		st.NACKsHeard += ds.NACKsReceived
	}
	return st
}

// Len returns the number of records in the relay's replica.
func (r *Relay) Len() int { return r.up.Len() }

// RootDigest returns the replica's namespace digest; equality with the
// publisher's digest proves this hop has converged.
func (r *Relay) RootDigest() namespace.Digest { return r.up.RootDigest() }

// Upstream exposes the upstream receiver (read-mostly: stats, digest,
// snapshot).
func (r *Relay) Upstream() *sstp.Receiver { return r.up }

// NumDownstreams returns the number of downstream links.
func (r *Relay) NumDownstreams() int { return len(r.downs) }

// DownstreamSender exposes downstream link i's sender (stats, digest).
func (r *Relay) DownstreamSender(i int) *sstp.Sender { return r.downs[i] }
