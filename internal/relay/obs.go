package relay

import (
	"strconv"

	"softstate/internal/obs"
	"softstate/internal/sstp"
)

// metrics are the relay_* series. Like the sstp_* catalog they are
// nil-safe: an unconfigured registry costs a nil check per event.
type metrics struct {
	forwarded   *obs.Counter // relay_forwarded_total
	tombstones  *obs.Counter // relay_tombstones_total
	goodbyes    *obs.Counter // relay_goodbyes_total
	scopeDrops  *obs.Counter // relay_scope_drops_total
	reparents   *obs.Counter // relay_reparents_total
	records     *obs.Gauge   // relay_records
	downstreams *obs.Gauge   // relay_downstreams
}

func newMetrics(reg *obs.Registry) metrics {
	return metrics{
		forwarded:   reg.Counter("relay_forwarded_total"),
		tombstones:  reg.Counter("relay_tombstones_total"),
		goodbyes:    reg.Counter("relay_goodbyes_total"),
		scopeDrops:  reg.Counter("relay_scope_drops_total"),
		reparents:   reg.Counter("relay_reparents_total"),
		records:     reg.Gauge("relay_records"),
		downstreams: reg.Gauge("relay_downstreams"),
	}
}

// linkMetrics are the per-downstream-link relay_link_* series, labeled
// by link index. Rate and loss gauges mirror the link sender's AIMD
// congestion state; the repair counters split the relay-wide totals by
// which link the repair traffic arrived on.
type linkMetrics struct {
	rate     *obs.Gauge   // relay_link_rate_bps{link=...} (AIMD-controlled cwnd analog)
	loss     *obs.Gauge   // relay_link_loss_estimate{link=...}
	requests *obs.Counter // relay_link_repair_requests_total{link=...} (NACKs heard)
	served   *obs.Counter // relay_link_repairs_served_total{link=...} (queries answered)
	tombs    *obs.Counter // relay_link_tombstones_total{link=...}
	goodbyes *obs.Counter // relay_link_goodbyes_total{link=...}

	// Cumulative sender-stat values already mirrored into the
	// counters, so sync adds deltas (counters must never be rewound).
	lastNACKs   int
	lastQueries int
}

func newLinkMetrics(reg *obs.Registry, link int) *linkMetrics {
	l := strconv.Itoa(link)
	return &linkMetrics{
		rate:     reg.Gauge("relay_link_rate_bps", "link", l),
		loss:     reg.Gauge("relay_link_loss_estimate", "link", l),
		requests: reg.Counter("relay_link_repair_requests_total", "link", l),
		served:   reg.Counter("relay_link_repairs_served_total", "link", l),
		tombs:    reg.Counter("relay_link_tombstones_total", "link", l),
		goodbyes: reg.Counter("relay_link_goodbyes_total", "link", l),
	}
}

// sync refreshes the link gauges and folds new repair activity into
// the counters from the sender's cumulative stats.
func (lm *linkMetrics) sync(d *sstp.Sender) {
	st := d.Stats()
	lm.rate.Set(st.Rate)
	lm.loss.Set(st.LossEstimate)
	if n := st.NACKsReceived - lm.lastNACKs; n > 0 {
		lm.requests.Add(uint64(n))
		lm.lastNACKs = st.NACKsReceived
	}
	if n := st.QueriesServed - lm.lastQueries; n > 0 {
		lm.served.Add(uint64(n))
		lm.lastQueries = st.QueriesServed
	}
}
