package relay

import "softstate/internal/obs"

// metrics are the relay_* series. Like the sstp_* catalog they are
// nil-safe: an unconfigured registry costs a nil check per event.
type metrics struct {
	forwarded   *obs.Counter // relay_forwarded_total
	tombstones  *obs.Counter // relay_tombstones_total
	goodbyes    *obs.Counter // relay_goodbyes_total
	scopeDrops  *obs.Counter // relay_scope_drops_total
	records     *obs.Gauge   // relay_records
	downstreams *obs.Gauge   // relay_downstreams
}

func newMetrics(reg *obs.Registry) metrics {
	return metrics{
		forwarded:   reg.Counter("relay_forwarded_total"),
		tombstones:  reg.Counter("relay_tombstones_total"),
		goodbyes:    reg.Counter("relay_goodbyes_total"),
		scopeDrops:  reg.Counter("relay_scope_drops_total"),
		records:     reg.Gauge("relay_records"),
		downstreams: reg.Gauge("relay_downstreams"),
	}
}
