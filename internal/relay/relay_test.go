package relay

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"softstate/internal/sstp"
)

func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// testTree is a publisher feeding a complete fanout^depth overlay over
// one MemNetwork: relays fill levels 1..depth-1 (breadth-first in
// relays) and the leaves sit at level depth.
type testTree struct {
	pub    *sstp.Sender
	relays []*Relay
	leaves []*sstp.Receiver
	// group[i] is the downstream group address of relay i; group of the
	// publisher is "grp/root".
}

// buildTree wires the topology but does not start anything. Endpoint
// names: the publisher sends from "pub" to group "grp/root"; relay k
// listens upstream on "up/k" (joined to its parent's group) and
// re-publishes from "dn/k" to group "grp/k"; leaf j listens on
// "leaf/j". pubScope, if non-zero, bounds the tree's hop budget; rate
// is every link's bandwidth (slow rates stretch the cold re-announce
// cycle, forcing repair through the Query/NACK path).
func buildTree(t *testing.T, nw *sstp.MemNetwork, depth, fanout int, pubScope uint8, rate float64, leafExpired *atomic.Int32) *testTree {
	t.Helper()
	tt := &testTree{}

	pc := nw.Endpoint("pub")
	nw.Join("grp/root", "pub")
	pub, err := sstp.NewSender(sstp.SenderConfig{
		Session: 9, SenderID: 1, Conn: pc, Dest: sstp.MemAddr("grp/root"),
		TotalRate: rate, SummaryInterval: 50 * time.Millisecond,
		TTL: 60 * time.Second, Scope: pubScope, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	tt.pub = pub

	// parentGroup[l][j] is the group feeding node j of level l+1.
	parentGroups := []string{"grp/root"}
	k := 0
	for level := 1; level < depth; level++ {
		var next []string
		for j := 0; j < pow(fanout, level); j++ {
			parent := parentGroups[j/fanout]
			upName := sstp.MemAddr(fmt.Sprintf("up/%d", k))
			dnName := sstp.MemAddr(fmt.Sprintf("dn/%d", k))
			group := fmt.Sprintf("grp/%d", k)
			up := nw.Endpoint(upName)
			nw.Join(sstp.MemAddr(parent), upName)
			dn := nw.Endpoint(dnName)
			nw.Join(sstp.MemAddr(group), dnName)
			r, err := New(Config{
				Session:          9,
				RelayID:          uint64(100 * (k + 1)),
				UpstreamConn:     up,
				UpstreamFeedback: sstp.MemAddr(parent),
				Downstreams: []Downstream{{
					Conn: dn, Dest: sstp.MemAddr(group), Rate: rate,
				}},
				TTL:             60 * time.Second,
				SummaryInterval: 50 * time.Millisecond,
				NACKWindow:      30 * time.Millisecond,
				Seed:            int64(1000 + k),
			})
			if err != nil {
				t.Fatal(err)
			}
			tt.relays = append(tt.relays, r)
			next = append(next, group)
			k++
		}
		parentGroups = next
	}

	for j := 0; j < pow(fanout, depth); j++ {
		parent := parentGroups[j/fanout]
		name := sstp.MemAddr(fmt.Sprintf("leaf/%d", j))
		lc := nw.Endpoint(name)
		nw.Join(sstp.MemAddr(parent), name)
		cfg := sstp.ReceiverConfig{
			Session: 9, ReceiverID: uint64(10_000 + j), Conn: lc,
			FeedbackDest:   sstp.MemAddr(parent),
			NACKWindow:     30 * time.Millisecond,
			FlushOnGoodbye: true,
			Seed:           int64(2000 + j),
		}
		if leafExpired != nil {
			cfg.OnExpire = func(string) { leafExpired.Add(1) }
		}
		leaf, err := sstp.NewReceiver(cfg)
		if err != nil {
			t.Fatal(err)
		}
		tt.leaves = append(tt.leaves, leaf)
	}
	return tt
}

func pow(b, e int) int {
	n := 1
	for i := 0; i < e; i++ {
		n *= b
	}
	return n
}

func (tt *testTree) start() {
	tt.pub.Start()
	for _, r := range tt.relays {
		r.Start()
	}
	for _, l := range tt.leaves {
		l.Start()
	}
}

func (tt *testTree) stop() {
	for _, l := range tt.leaves {
		l.Close()
	}
	for _, r := range tt.relays {
		r.Close()
	}
	tt.pub.Close()
}

func (tt *testTree) converged(n int) bool {
	want := tt.pub.RootDigest()
	for _, r := range tt.relays {
		if r.Len() != n || r.RootDigest() != want {
			return false
		}
	}
	for _, l := range tt.leaves {
		if l.Len() != n || l.RootDigest() != want {
			return false
		}
	}
	return true
}

// TestRelayTreeConvergesUnderLoss is the acceptance topology: a
// depth-2 fanout-4 tree (4 relays, 16 leaves) over a memconn network
// dropping 5% of datagrams on every link. Every leaf's root digest
// must reach the publisher's.
func TestRelayTreeConvergesUnderLoss(t *testing.T) {
	nw := sstp.NewMemNetwork(1009)
	nw.SetDefaultLoss(0.05)
	tt := buildTree(t, nw, 2, 4, 0, 1_000_000, nil)
	defer tt.stop()
	tt.start()

	const n = 40
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("topic/%d/val", i)
		if err := tt.pub.Publish(key, []byte(fmt.Sprintf("payload-%d", i)), 0); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, 30*time.Second, "all 20 replicas to match the publisher digest", func() bool {
		return tt.converged(n)
	})
	st := tt.relays[0].Stats()
	if st.Forwarded == 0 {
		t.Error("relay 0 forwarded nothing despite converged leaves")
	}
}

// TestRelayLocalRepair pins scoped recovery: with loss confined to one
// leaf's last-hop link, that leaf's Query/NACK repair is answered
// entirely by its parent relay — the publisher sees zero repair
// traffic on the upstream link.
func TestRelayLocalRepair(t *testing.T) {
	nw := sstp.NewMemNetwork(1013)
	// 128 kbit/s stretches one cold re-announce cycle of 40 records to
	// ~0.25 s, so the lossy leaf detects digest mismatches (summaries
	// every 50 ms) and repairs through Query/NACK well before the next
	// blind retransmission — the repair path is what's under test.
	tt := buildTree(t, nw, 2, 4, 0, 128_000, nil)
	defer tt.stop()

	// Relay 0's downstream endpoint is "dn/0" and its first child leaf
	// is "leaf/0": drop half the datagrams on that last hop only. The
	// reverse (feedback) direction stays clean so repair requests
	// always reach the relay.
	nw.SetLoss("dn/0", "leaf/0", 0.50)
	tt.start()

	const n = 40
	for i := 0; i < n; i++ {
		if err := tt.pub.Publish(fmt.Sprintf("topic/%d/val", i), []byte("x"), 0); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, 30*time.Second, "lossy leaf to converge", func() bool {
		return tt.converged(n)
	})

	if st := tt.pub.Stats(); st.QueriesServed != 0 || st.NACKsReceived != 0 {
		t.Errorf("repair traffic leaked upstream: publisher served %d queries, heard %d NACKs",
			st.QueriesServed, st.NACKsReceived)
	}
	repaired := 0
	for _, r := range tt.relays {
		st := r.Stats()
		repaired += st.QueriesServed + st.NACKsHeard
	}
	if repaired == 0 {
		t.Error("no relay answered any repair request despite a 50% lossy leaf link")
	}
}

// TestRelayGoodbyeFlushChain pins teardown through a 2-level relay
// chain: publisher → relay → relay → leaf. The publisher's Goodbye
// must flush the replica at every hop, each hop re-announcing the
// departure downstream.
func TestRelayGoodbyeFlushChain(t *testing.T) {
	nw := sstp.NewMemNetwork(1019)
	var leafExpired atomic.Int32
	tt := buildTree(t, nw, 3, 1, 0, 1_000_000, &leafExpired)
	tt.start()
	closed := false
	defer func() {
		if !closed {
			tt.stop()
		}
	}()

	const n = 5
	for i := 0; i < n; i++ {
		if err := tt.pub.Publish(fmt.Sprintf("cfg/%d", i), []byte("v"), 0); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, 15*time.Second, "chain to converge", func() bool {
		return tt.converged(n)
	})

	tt.pub.Close() // final Goodbye starts the cascade
	waitFor(t, 15*time.Second, "every hop to flush", func() bool {
		for _, r := range tt.relays {
			if r.Len() != 0 {
				return false
			}
		}
		return tt.leaves[0].Len() == 0
	})
	waitFor(t, 5*time.Second, "leaf expiry callbacks", func() bool {
		return leafExpired.Load() == n
	})
	for i, r := range tt.relays {
		if st := r.Stats(); st.Goodbyes != 1 {
			t.Errorf("relay %d propagated %d goodbyes, want 1", i, st.Goodbyes)
		}
	}
	if st := tt.leaves[0].Stats(); st.GoodbyesHeard != 1 {
		t.Errorf("leaf heard %d goodbyes, want 1", st.GoodbyesHeard)
	}
	for _, l := range tt.leaves {
		l.Close()
	}
	for _, r := range tt.relays {
		r.Close()
	}
	closed = true
}

// TestRelayReparentOnOrphan pins churn survival for the tree overlay:
// in the chain publisher → R1 → R2 → leaf, R1 crashes silently (its
// downstream link is severed — no Goodbye, exactly what a dead process
// looks like). R2's orphan watchdog must fire, re-target its feedback
// at the configured fallback (the origin), and — after the test's
// OnReparent hook re-joins R2's upstream conn to the origin's group —
// adopt the origin as its new publisher so fresh records keep flowing
// to the leaf.
func TestRelayReparentOnOrphan(t *testing.T) {
	nw := sstp.NewMemNetwork(1031)
	tt := buildTree(t, nw, 3, 1, 0, 1_000_000, nil)
	// buildTree cannot arm the watchdog, so rebuild R2 (relay index 1,
	// upstream "up/1" fed by "grp/0", downstream "dn/1" → "grp/1") with
	// a fallback pointing at the origin.
	tt.relays[1].Close()
	up := nw.Endpoint("up/1")
	dn := nw.Endpoint("dn/1")
	r2, err := New(Config{
		Session:          9,
		RelayID:          200,
		UpstreamConn:     up,
		UpstreamFeedback: sstp.MemAddr("grp/0"),
		Downstreams:      []Downstream{{Conn: dn, Dest: sstp.MemAddr("grp/1"), Rate: 1_000_000}},
		TTL:              60 * time.Second,
		SummaryInterval:  50 * time.Millisecond,
		NACKWindow:       30 * time.Millisecond,
		FallbackFeedback: sstp.MemAddr("pub"),
		OrphanTimeout:    400 * time.Millisecond,
		OnReparent: func() {
			// The redial: leave the dead parent's group, join the
			// fallback parent's so its announcements are heard.
			nw.Leave("grp/0", "up/1")
			nw.Join("grp/root", "up/1")
		},
		Seed: 1031,
	})
	if err != nil {
		t.Fatal(err)
	}
	tt.relays[1] = r2
	defer tt.stop()
	tt.start()

	const n = 10
	for i := 0; i < n; i++ {
		if err := tt.pub.Publish(fmt.Sprintf("topic/%d", i), []byte("v1"), 0); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, 15*time.Second, "chain to converge before the crash", func() bool {
		return tt.converged(n)
	})

	// R1 "crashes": everything it sends downstream vanishes. Its
	// process keeps running, which is the hard case — no Goodbye, no
	// connection reset, just silence.
	nw.SetLinkDown("dn/0", "grp/0")

	waitFor(t, 10*time.Second, "orphan watchdog to fire", func() bool {
		return tt.relays[1].Stats().Reparents == 1
	})

	// New records published after the crash must reach the leaf through
	// the re-parented route origin → R2 → leaf.
	for i := 0; i < 5; i++ {
		if err := tt.pub.Publish(fmt.Sprintf("after/%d", i), []byte("v2"), 0); err != nil {
			t.Fatal(err)
		}
	}
	want := n + 5
	waitFor(t, 20*time.Second, "leaf to converge via the fallback parent", func() bool {
		return tt.relays[1].Len() == want &&
			tt.relays[1].RootDigest() == tt.pub.RootDigest() &&
			tt.leaves[0].Len() == want &&
			tt.leaves[0].RootDigest() == tt.pub.RootDigest()
	})

	// The watchdog must not refire while the new parent is healthy.
	time.Sleep(600 * time.Millisecond)
	if got := tt.relays[1].Stats().Reparents; got != 1 {
		t.Errorf("reparents = %d after recovery, want 1", got)
	}
}

// TestRelayScopeExhaustion pins the hop budget: a publisher stamping
// Scope 2 reaches one relay level (which forwards at scope 1), but the
// second-level relay must refuse to forward, so the leaf never learns
// anything and the drop is counted.
func TestRelayScopeExhaustion(t *testing.T) {
	nw := sstp.NewMemNetwork(1021)
	tt := buildTree(t, nw, 3, 1, 2, 1_000_000, nil)
	defer tt.stop()
	tt.start()

	if err := tt.pub.Publish("deep/key", []byte("v"), 0); err != nil {
		t.Fatal(err)
	}
	// Level-1 relay forwards (scope 2 → 1); level-2 relay's replica
	// converges but its hop budget is spent.
	waitFor(t, 15*time.Second, "second relay to receive the record", func() bool {
		return tt.relays[1].Len() == 1
	})
	waitFor(t, 5*time.Second, "scope drop to be counted", func() bool {
		return tt.relays[1].Stats().ScopeDrops > 0
	})
	// Give the exhausted hop ample time to (wrongly) forward, then pin
	// that the leaf never heard of the record.
	time.Sleep(500 * time.Millisecond)
	if n := tt.leaves[0].Len(); n != 0 {
		t.Errorf("leaf beyond the hop budget holds %d records, want 0", n)
	}
	if st := tt.relays[0].Stats(); st.ScopeDrops != 0 {
		t.Errorf("first relay dropped %d updates despite scope 2, want 0", st.ScopeDrops)
	}
}
