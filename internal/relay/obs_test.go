package relay

import (
	"fmt"
	"testing"
	"time"

	"softstate/internal/obs"
	"softstate/internal/sstp"
)

// TestRelayLinkMetrics runs a lossy publisher→relay→leaf chain with an
// observed relay and checks the per-downstream-link series populate:
// the AIMD rate gauge mirrors the link sender, repair requests are
// counted when the lossy leaf NACKs, and tombstone/goodbye counters
// tick when the publisher deletes a record and leaves the session.
func TestRelayLinkMetrics(t *testing.T) {
	nw := sstp.NewMemNetwork(1021)
	reg := obs.New("relaylink")

	pc := nw.Endpoint("pub")
	nw.Join("grp/root", "pub")
	pub, err := sstp.NewSender(sstp.SenderConfig{
		Session: 11, SenderID: 1, Conn: pc, Dest: sstp.MemAddr("grp/root"),
		TotalRate: 128_000, SummaryInterval: 50 * time.Millisecond,
		TTL: 60 * time.Second, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}

	up := nw.Endpoint("up/0")
	nw.Join("grp/root", "up/0")
	dn := nw.Endpoint("dn/0")
	nw.Join("grp/0", "dn/0")
	r, err := New(Config{
		Session: 11, RelayID: 100,
		UpstreamConn: up, UpstreamFeedback: sstp.MemAddr("grp/root"),
		Downstreams: []Downstream{{
			Conn: dn, Dest: sstp.MemAddr("grp/0"), Rate: 128_000,
		}},
		TTL: 60 * time.Second, SummaryInterval: 50 * time.Millisecond,
		NACKWindow: 30 * time.Millisecond,
		Obs:        reg,
		Seed:       7,
	})
	if err != nil {
		t.Fatal(err)
	}

	lc := nw.Endpoint("leaf/0")
	nw.Join("grp/0", "leaf/0")
	leaf, err := sstp.NewReceiver(sstp.ReceiverConfig{
		Session: 11, ReceiverID: 10_000, Conn: lc,
		FeedbackDest: sstp.MemAddr("grp/0"),
		NACKWindow:   30 * time.Millisecond,
		Seed:         9,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Loss confined to the leaf's last hop makes the leaf repair
	// through the relay's downstream sender, driving the link's repair
	// counters.
	nw.SetLoss("dn/0", "leaf/0", 0.30)

	pub.Start()
	r.Start()
	leaf.Start()
	defer func() {
		leaf.Close()
		r.Close()
		pub.Close()
	}()

	const n = 30
	for i := 0; i < n; i++ {
		if err := pub.Publish(fmt.Sprintf("topic/%d", i), []byte("v"), 0); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, 30*time.Second, "leaf to converge through the relay", func() bool {
		return leaf.Len() == n && leaf.RootDigest() == pub.RootDigest()
	})

	pub.Delete("topic/0")
	pub.Goodbye()
	waitFor(t, 10*time.Second, "per-link tombstone and goodbye counters", func() bool {
		return reg.Get("relay_link_tombstones_total", "link", "0") >= 1 &&
			reg.Get("relay_link_goodbyes_total", "link", "0") >= 1
	})
	// The 1 s obsLoop must have synced the link gauges from the link
	// sender at least once by now. Under last-hop loss the leaf repairs
	// through digest mismatch → Query, so repairs-served is the counter
	// that must tick (NACKs only fire on observed sequence gaps).
	waitFor(t, 10*time.Second, "link rate gauge and repair counter sync", func() bool {
		return reg.Get("relay_link_rate_bps", "link", "0") > 0 &&
			reg.Get("relay_link_repairs_served_total", "link", "0") >= 1
	})
}
