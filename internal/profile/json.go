package profile

import (
	"encoding/json"
	"fmt"
	"io"
)

// fileFormat is the on-disk envelope for profiles, versioned so stored
// profiles survive format evolution.
type fileFormat struct {
	Version     int    `json:"version"`
	Kind        string `json:"kind"` // "consistency-grid" or "latency-curve"
	Description string `json:"description,omitempty"`

	LossRates []float64   `json:"loss_rates,omitempty"`
	FbFracs   []float64   `json:"fb_fracs,omitempty"`
	C         [][]float64 `json:"consistency,omitempty"`

	X []float64 `json:"x,omitempty"`
	Y []float64 `json:"y,omitempty"`
}

const formatVersion = 1

// WriteJSON serializes the grid (with an optional description) for
// later use by the allocator — the stored "consistency profiles" of
// the paper's Figure 12.
func (g *Grid) WriteJSON(w io.Writer, description string) error {
	if err := g.Validate(); err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(fileFormat{
		Version:     formatVersion,
		Kind:        "consistency-grid",
		Description: description,
		LossRates:   g.LossRates,
		FbFracs:     g.FbFracs,
		C:           g.C,
	})
}

// ReadGridJSON parses a stored consistency grid.
func ReadGridJSON(r io.Reader) (*Grid, error) {
	var f fileFormat
	if err := json.NewDecoder(r).Decode(&f); err != nil {
		return nil, fmt.Errorf("profile: %w", err)
	}
	if f.Version != formatVersion {
		return nil, fmt.Errorf("profile: unsupported version %d", f.Version)
	}
	if f.Kind != "consistency-grid" {
		return nil, fmt.Errorf("profile: kind %q is not a consistency grid", f.Kind)
	}
	g := &Grid{LossRates: f.LossRates, FbFracs: f.FbFracs, C: f.C}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

// WriteJSON serializes the latency curve.
func (c *Curve) WriteJSON(w io.Writer, description string) error {
	if err := c.Validate(); err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(fileFormat{
		Version:     formatVersion,
		Kind:        "latency-curve",
		Description: description,
		X:           c.X,
		Y:           c.Y,
	})
}

// ReadCurveJSON parses a stored latency curve.
func ReadCurveJSON(r io.Reader) (*Curve, error) {
	var f fileFormat
	if err := json.NewDecoder(r).Decode(&f); err != nil {
		return nil, fmt.Errorf("profile: %w", err)
	}
	if f.Version != formatVersion {
		return nil, fmt.Errorf("profile: unsupported version %d", f.Version)
	}
	if f.Kind != "latency-curve" {
		return nil, fmt.Errorf("profile: kind %q is not a latency curve", f.Kind)
	}
	c := &Curve{X: f.X, Y: f.Y}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return c, nil
}
