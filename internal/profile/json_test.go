package profile

import (
	"bytes"
	"strings"
	"testing"
)

func TestGridJSONRoundTrip(t *testing.T) {
	g := testGrid(t)
	var buf bytes.Buffer
	if err := g.WriteJSON(&buf, "test profile"); err != nil {
		t.Fatal(err)
	}
	got, err := ReadGridJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.LossRates) != len(g.LossRates) || len(got.FbFracs) != len(g.FbFracs) {
		t.Fatalf("axes changed: %+v", got)
	}
	for i := range g.C {
		for j := range g.C[i] {
			if got.C[i][j] != g.C[i][j] {
				t.Fatalf("C[%d][%d] changed: %v != %v", i, j, got.C[i][j], g.C[i][j])
			}
		}
	}
}

func TestCurveJSONRoundTrip(t *testing.T) {
	c := &Curve{X: []float64{0, 1, 2}, Y: []float64{5, 1, 3}}
	var buf bytes.Buffer
	if err := c.WriteJSON(&buf, ""); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCurveJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.At(1) != 1 || got.At(0) != 5 {
		t.Errorf("curve changed: %+v", got)
	}
}

func TestReadJSONErrors(t *testing.T) {
	cases := []string{
		``,
		`{`,
		`{"version": 99, "kind": "consistency-grid"}`,
		`{"version": 1, "kind": "latency-curve"}`, // wrong kind for grid
		`{"version": 1, "kind": "consistency-grid", "loss_rates": [0], "fb_fracs": [0], "consistency": [[2]]}`,
	}
	for i, c := range cases {
		if _, err := ReadGridJSON(strings.NewReader(c)); err == nil {
			t.Errorf("grid case %d accepted", i)
		}
	}
	if _, err := ReadCurveJSON(strings.NewReader(`{"version":1,"kind":"consistency-grid"}`)); err == nil {
		t.Error("curve reader accepted a grid")
	}
	if _, err := ReadCurveJSON(strings.NewReader(`{"version":1,"kind":"latency-curve","x":[1,0],"y":[1,2]}`)); err == nil {
		t.Error("descending curve accepted")
	}
}

func TestWriteJSONValidates(t *testing.T) {
	bad := &Grid{LossRates: []float64{0}, FbFracs: []float64{0}, C: [][]float64{{5}}}
	if err := bad.WriteJSON(&bytes.Buffer{}, ""); err == nil {
		t.Error("invalid grid serialized")
	}
	badCurve := &Curve{X: []float64{1}, Y: []float64{}}
	if err := badCurve.WriteJSON(&bytes.Buffer{}, ""); err == nil {
		t.Error("invalid curve serialized")
	}
}
