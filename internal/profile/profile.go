// Package profile implements SSTP's profile-driven bandwidth
// allocation (paper section 6.1, Figure 12). A consistency profile
// predicts system consistency as a function of network loss rate and
// the fraction of session bandwidth devoted to feedback; a latency
// profile predicts receive latency as a function of the cold/hot
// split. The allocator combines a measured loss rate (from receiver
// reports), the application's consistency target, and the total
// session bandwidth (from a congestion manager) into a concrete
// {μ_data, μ_fb, μ_hot, μ_cold} allocation, and tells the application
// the maximum rate at which it may inject new data without violating
// the target (the paper's rate notification).
//
// Profiles are plain data: they can be derived empirically by sweeping
// the simulator (internal/experiments does this), from the section-3
// closed forms, or loaded from a prior run.
package profile

import (
	"fmt"
	"sort"
)

// Grid is a 2-D consistency profile: consistency as a function of
// (loss rate, feedback fraction), bilinearly interpolated and clamped
// at the grid edges.
type Grid struct {
	LossRates []float64   // strictly ascending
	FbFracs   []float64   // strictly ascending
	C         [][]float64 // C[i][j] = consistency at (LossRates[i], FbFracs[j])
}

// Validate checks the grid's shape and axis ordering.
func (g *Grid) Validate() error {
	if len(g.LossRates) == 0 || len(g.FbFracs) == 0 {
		return fmt.Errorf("profile: empty axes")
	}
	if !strictlyAscending(g.LossRates) || !strictlyAscending(g.FbFracs) {
		return fmt.Errorf("profile: axes must be strictly ascending")
	}
	if len(g.C) != len(g.LossRates) {
		return fmt.Errorf("profile: %d rows for %d loss rates", len(g.C), len(g.LossRates))
	}
	for i, row := range g.C {
		if len(row) != len(g.FbFracs) {
			return fmt.Errorf("profile: row %d has %d cols, want %d", i, len(row), len(g.FbFracs))
		}
		for j, v := range row {
			if v < 0 || v > 1 {
				return fmt.Errorf("profile: C[%d][%d]=%v out of [0,1]", i, j, v)
			}
		}
	}
	return nil
}

func strictlyAscending(xs []float64) bool {
	for i := 1; i < len(xs); i++ {
		if xs[i] <= xs[i-1] {
			return false
		}
	}
	return true
}

// locate returns the bracketing index and interpolation weight for x
// on axis xs, clamping outside the range.
func locate(xs []float64, x float64) (int, float64) {
	n := len(xs)
	if x <= xs[0] {
		return 0, 0
	}
	if x >= xs[n-1] {
		return n - 2, 1
	}
	i := sort.SearchFloat64s(xs, x)
	if i > 0 && xs[i] != x {
		i--
	}
	if i >= n-1 {
		i = n - 2
	}
	w := (x - xs[i]) / (xs[i+1] - xs[i])
	return i, w
}

// At returns the interpolated consistency at (loss, fbFrac).
func (g *Grid) At(loss, fbFrac float64) float64 {
	if len(g.LossRates) == 1 && len(g.FbFracs) == 1 {
		return g.C[0][0]
	}
	if len(g.LossRates) == 1 {
		j, wj := locate(g.FbFracs, fbFrac)
		return g.C[0][j]*(1-wj) + g.C[0][j+1]*wj
	}
	if len(g.FbFracs) == 1 {
		i, wi := locate(g.LossRates, loss)
		return g.C[i][0]*(1-wi) + g.C[i+1][0]*wi
	}
	i, wi := locate(g.LossRates, loss)
	j, wj := locate(g.FbFracs, fbFrac)
	c00 := g.C[i][j]
	c01 := g.C[i][j+1]
	c10 := g.C[i+1][j]
	c11 := g.C[i+1][j+1]
	return c00*(1-wi)*(1-wj) + c01*(1-wi)*wj + c10*wi*(1-wj) + c11*wi*wj
}

// BestFb returns the feedback fraction (on a fine scan of the profile
// range) that maximizes predicted consistency at the given loss rate.
func (g *Grid) BestFb(loss float64) (fbFrac, predicted float64) {
	lo := g.FbFracs[0]
	hi := g.FbFracs[len(g.FbFracs)-1]
	best, bestC := lo, -1.0
	const steps = 200
	for s := 0; s <= steps; s++ {
		f := lo + (hi-lo)*float64(s)/steps
		if c := g.At(loss, f); c > bestC {
			best, bestC = f, c
		}
	}
	return best, bestC
}

// MinFbForTarget returns the smallest feedback fraction predicted to
// meet the consistency target at the given loss rate. If the target is
// unreachable it returns the BestFb allocation with ok=false.
func (g *Grid) MinFbForTarget(loss, target float64) (fbFrac, predicted float64, ok bool) {
	lo := g.FbFracs[0]
	hi := g.FbFracs[len(g.FbFracs)-1]
	const steps = 200
	for s := 0; s <= steps; s++ {
		f := lo + (hi-lo)*float64(s)/steps
		if c := g.At(loss, f); c >= target {
			return f, c, true
		}
	}
	f, c := g.BestFb(loss)
	return f, c, false
}

// BuildGrid evaluates eval over the cross product of the axes to
// produce a profile. Experiments pass a simulator-backed eval; tests
// pass closed forms.
func BuildGrid(lossRates, fbFracs []float64, eval func(loss, fbFrac float64) float64) (*Grid, error) {
	g := &Grid{LossRates: lossRates, FbFracs: fbFracs}
	for _, l := range lossRates {
		row := make([]float64, 0, len(fbFracs))
		for _, f := range fbFracs {
			v := eval(l, f)
			if v < 0 {
				v = 0
			}
			if v > 1 {
				v = 1
			}
			row = append(row, v)
		}
		g.C = append(g.C, row)
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

// Curve is a 1-D profile (e.g. T_rec as a function of μ_cold/μ_hot),
// linearly interpolated and clamped.
type Curve struct {
	X []float64 // strictly ascending
	Y []float64
}

// Validate checks the curve's shape.
func (c *Curve) Validate() error {
	if len(c.X) == 0 || len(c.X) != len(c.Y) {
		return fmt.Errorf("profile: curve has %d xs, %d ys", len(c.X), len(c.Y))
	}
	if !strictlyAscending(c.X) {
		return fmt.Errorf("profile: curve X must be strictly ascending")
	}
	return nil
}

// At returns the interpolated value at x.
func (c *Curve) At(x float64) float64 {
	if len(c.X) == 1 {
		return c.Y[0]
	}
	i, w := locate(c.X, x)
	return c.Y[i]*(1-w) + c.Y[i+1]*w
}

// ArgMin returns the x (on a fine scan) minimizing the curve.
func (c *Curve) ArgMin() (x, y float64) {
	lo, hi := c.X[0], c.X[len(c.X)-1]
	best, bestY := lo, c.At(lo)
	const steps = 400
	for s := 0; s <= steps; s++ {
		xx := lo + (hi-lo)*float64(s)/steps
		if yy := c.At(xx); yy < bestY {
			best, bestY = xx, yy
		}
	}
	return best, bestY
}

// Allocation is the allocator's output: concrete bandwidths plus the
// application rate advisory.
type Allocation struct {
	MuData float64 // data bandwidth (bps)
	MuFb   float64 // feedback bandwidth (bps)
	MuHot  float64 // hot share of MuData (bps)
	MuCold float64 // cold share of MuData (bps)

	Predicted   float64 // predicted consistency at the measured loss
	TargetMet   bool    // predicted ≥ target
	MaxAppRate  float64 // max sustainable new-data rate (bps): μ_hot
	RateLimited bool    // appRate exceeded MaxAppRate
}

// Allocator converts profiles plus live measurements into allocations.
type Allocator struct {
	Consistency *Grid  // required
	Latency     *Curve // optional: T_rec vs μ_cold/μ_hot ratio

	// Target is the application's consistency goal (e.g. 0.9).
	Target float64
	// HotFraction is the hot share of data bandwidth when no latency
	// profile is supplied (default 0.9).
	HotFraction float64
}

// Allocate computes an allocation for the given total session
// bandwidth (bps), measured loss rate, and the application's current
// new-data rate (bps).
func (a *Allocator) Allocate(totalBw, measuredLoss, appRate float64) (Allocation, error) {
	if a.Consistency == nil {
		return Allocation{}, fmt.Errorf("profile: allocator needs a consistency profile")
	}
	if totalBw <= 0 {
		return Allocation{}, fmt.Errorf("profile: total bandwidth %v must be positive", totalBw)
	}
	if measuredLoss < 0 || measuredLoss >= 1 {
		return Allocation{}, fmt.Errorf("profile: loss %v out of [0,1)", measuredLoss)
	}
	var fb, pred float64
	var met bool
	if a.Target > 0 {
		fb, pred, met = a.Consistency.MinFbForTarget(measuredLoss, a.Target)
	} else {
		fb, pred = a.Consistency.BestFb(measuredLoss)
		met = true
	}
	alloc := Allocation{
		MuFb:      totalBw * fb,
		MuData:    totalBw * (1 - fb),
		Predicted: pred,
		TargetMet: met,
	}
	hotFrac := a.HotFraction
	if hotFrac <= 0 || hotFrac >= 1 {
		hotFrac = 0.9
	}
	if a.Latency != nil {
		// Choose the cold/hot ratio minimizing predicted T_rec.
		ratio, _ := a.Latency.ArgMin()
		hotFrac = 1 / (1 + ratio)
	}
	alloc.MuHot = alloc.MuData * hotFrac
	alloc.MuCold = alloc.MuData - alloc.MuHot
	alloc.MaxAppRate = alloc.MuHot
	alloc.RateLimited = appRate > alloc.MaxAppRate
	return alloc, nil
}
