package profile

import (
	"math"
	"testing"
	"testing/quick"
)

func testGrid(t *testing.T) *Grid {
	t.Helper()
	// A synthetic but realistically shaped profile: consistency falls
	// with loss; feedback helps up to ~0.3 then hurts.
	g, err := BuildGrid(
		[]float64{0, 0.2, 0.4, 0.6},
		[]float64{0, 0.1, 0.3, 0.5, 0.7},
		func(loss, fb float64) float64 {
			peak := 1 - loss
			penalty := math.Abs(fb-0.3) * loss * 1.5
			bonus := fb * (1 - loss) * 0.05
			v := peak - penalty + bonus
			if fb > 0.6 {
				v -= (fb - 0.6) * 2 * (0.5 + loss)
			}
			return v
		})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestGridValidate(t *testing.T) {
	bad := []*Grid{
		{},
		{LossRates: []float64{0, 0}, FbFracs: []float64{0}, C: [][]float64{{1}, {1}}},
		{LossRates: []float64{0}, FbFracs: []float64{0}, C: [][]float64{}},
		{LossRates: []float64{0}, FbFracs: []float64{0, 1}, C: [][]float64{{1}}},
		{LossRates: []float64{0}, FbFracs: []float64{0}, C: [][]float64{{2}}},
	}
	for i, g := range bad {
		if err := g.Validate(); err == nil {
			t.Errorf("bad grid %d accepted", i)
		}
	}
	if err := testGrid(t).Validate(); err != nil {
		t.Errorf("good grid rejected: %v", err)
	}
}

func TestGridAtExactPoints(t *testing.T) {
	g := testGrid(t)
	for i, l := range g.LossRates {
		for j, f := range g.FbFracs {
			if got := g.At(l, f); math.Abs(got-g.C[i][j]) > 1e-12 {
				t.Errorf("At(%v,%v) = %v, want %v", l, f, got, g.C[i][j])
			}
		}
	}
}

func TestGridInterpolation(t *testing.T) {
	g := &Grid{
		LossRates: []float64{0, 1},
		FbFracs:   []float64{0, 1},
		C:         [][]float64{{0, 1}, {1, 0}},
	}
	if got := g.At(0.5, 0.5); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("center = %v, want 0.5", got)
	}
	if got := g.At(0, 0.25); math.Abs(got-0.25) > 1e-12 {
		t.Errorf("edge = %v, want 0.25", got)
	}
}

func TestGridClamping(t *testing.T) {
	g := testGrid(t)
	if g.At(-1, 0) != g.At(0, 0) {
		t.Error("loss below range not clamped")
	}
	if g.At(5, 0.3) != g.At(0.6, 0.3) {
		t.Error("loss above range not clamped")
	}
	if g.At(0.2, -1) != g.At(0.2, 0) {
		t.Error("fb below range not clamped")
	}
}

// Property: interpolated values never leave the hull of the grid
// values.
func TestPropertyInterpolationBounds(t *testing.T) {
	g := testGrid(t)
	lo, hi := 1.0, 0.0
	for _, row := range g.C {
		for _, v := range row {
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
	}
	f := func(l8, f8 uint8) bool {
		l := float64(l8) / 255 * 0.8
		fb := float64(f8) / 255
		v := g.At(l, fb)
		return v >= lo-1e-9 && v <= hi+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestBestFb(t *testing.T) {
	g := testGrid(t)
	fb, pred := g.BestFb(0.4)
	// By construction the optimum sits near fb=0.3 at loss 0.4.
	if math.Abs(fb-0.3) > 0.1 {
		t.Errorf("BestFb(0.4) = %v, want ≈0.3", fb)
	}
	if pred < g.At(0.4, 0) {
		t.Errorf("best predicted %v below open-loop %v", pred, g.At(0.4, 0))
	}
}

func TestMinFbForTarget(t *testing.T) {
	g := testGrid(t)
	fb, pred, ok := g.MinFbForTarget(0.4, 0.55)
	if !ok {
		t.Fatalf("reachable target reported unreachable (pred %v)", pred)
	}
	if pred < 0.55 {
		t.Errorf("predicted %v below target", pred)
	}
	// Minimality: a noticeably smaller fb should miss the target.
	if fb > 0 {
		smaller := g.At(0.4, fb*0.5)
		if smaller >= 0.55 && fb*0.5 < fb-0.01 {
			t.Errorf("fb %v not minimal: %v also meets target at %v", fb, fb*0.5, smaller)
		}
	}
	// Unreachable target falls back to best.
	_, pred2, ok2 := g.MinFbForTarget(0.6, 0.999)
	if ok2 {
		t.Error("impossible target reported reachable")
	}
	bestFb, bestPred := g.BestFb(0.6)
	_ = bestFb
	if math.Abs(pred2-bestPred) > 1e-9 {
		t.Errorf("fallback pred %v != best %v", pred2, bestPred)
	}
}

func TestBuildGridClampsEval(t *testing.T) {
	g, err := BuildGrid([]float64{0, 1}, []float64{0, 1}, func(l, f float64) float64 {
		return 2*l - 0.5 // goes below 0 and above 1
	})
	if err != nil {
		t.Fatal(err)
	}
	if g.C[0][0] != 0 || g.C[1][0] != 1 {
		t.Errorf("eval not clamped: %v", g.C)
	}
}

func TestCurve(t *testing.T) {
	c := &Curve{X: []float64{0, 1, 2}, Y: []float64{5, 1, 3}}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := c.At(0.5); math.Abs(got-3) > 1e-12 {
		t.Errorf("At(0.5) = %v", got)
	}
	if got := c.At(-5); got != 5 {
		t.Errorf("clamp low = %v", got)
	}
	if got := c.At(9); got != 3 {
		t.Errorf("clamp high = %v", got)
	}
	x, y := c.ArgMin()
	if math.Abs(x-1) > 0.01 || math.Abs(y-1) > 0.01 {
		t.Errorf("ArgMin = (%v, %v), want (1, 1)", x, y)
	}
}

func TestCurveValidate(t *testing.T) {
	bad := []*Curve{
		{},
		{X: []float64{0, 1}, Y: []float64{1}},
		{X: []float64{1, 0}, Y: []float64{1, 2}},
	}
	for i, c := range bad {
		if c.Validate() == nil {
			t.Errorf("bad curve %d accepted", i)
		}
	}
}

func TestAllocator(t *testing.T) {
	a := &Allocator{Consistency: testGrid(t), Target: 0.55, HotFraction: 0.8}
	alloc, err := a.Allocate(45000, 0.4, 10000)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(alloc.MuData+alloc.MuFb-45000) > 1e-6 {
		t.Errorf("allocation does not sum to total: %+v", alloc)
	}
	if math.Abs(alloc.MuHot+alloc.MuCold-alloc.MuData) > 1e-6 {
		t.Errorf("hot+cold != data: %+v", alloc)
	}
	if math.Abs(alloc.MuHot-0.8*alloc.MuData) > 1e-6 {
		t.Errorf("hot fraction not honoured: %+v", alloc)
	}
	if !alloc.TargetMet || alloc.Predicted < 0.55 {
		t.Errorf("target not met: %+v", alloc)
	}
	if alloc.RateLimited {
		t.Errorf("modest app rate flagged: %+v", alloc)
	}
}

func TestAllocatorRateNotification(t *testing.T) {
	a := &Allocator{Consistency: testGrid(t), HotFraction: 0.5}
	alloc, err := a.Allocate(20000, 0.2, 19000)
	if err != nil {
		t.Fatal(err)
	}
	if !alloc.RateLimited {
		t.Error("app rate above μ_hot not flagged")
	}
	if alloc.MaxAppRate != alloc.MuHot {
		t.Errorf("MaxAppRate %v != MuHot %v", alloc.MaxAppRate, alloc.MuHot)
	}
}

func TestAllocatorWithLatencyProfile(t *testing.T) {
	// T_rec minimized at cold/hot ratio 0.5 → hotFrac = 1/1.5.
	lat := &Curve{X: []float64{0.01, 0.5, 3}, Y: []float64{5, 1, 4}}
	a := &Allocator{Consistency: testGrid(t), Latency: lat}
	alloc, err := a.Allocate(30000, 0.2, 1000)
	if err != nil {
		t.Fatal(err)
	}
	wantHot := alloc.MuData / 1.5
	if math.Abs(alloc.MuHot-wantHot)/wantHot > 0.05 {
		t.Errorf("MuHot %v, want ≈%v from latency profile", alloc.MuHot, wantHot)
	}
}

func TestAllocatorErrors(t *testing.T) {
	a := &Allocator{}
	if _, err := a.Allocate(1000, 0.1, 10); err == nil {
		t.Error("nil profile accepted")
	}
	a.Consistency = testGrid(t)
	if _, err := a.Allocate(0, 0.1, 10); err == nil {
		t.Error("zero bandwidth accepted")
	}
	if _, err := a.Allocate(1000, 1.0, 10); err == nil {
		t.Error("loss=1 accepted")
	}
}
