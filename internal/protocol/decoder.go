// Decoder: an allocation-free view of the decode path for receivers.
//
// The package-level Decode allocates a fresh message, a fresh key
// string, and a fresh value copy per datagram — fine for control
// traffic, ruinous at announcement rates. A Decoder amortizes all
// three: message structs are reused across calls, key and path strings
// are interned in a bounded map (the map lookup on a []byte key
// compiles to zero allocations), and Data values are copied into an
// arena that is re-sliced per call. The returned Message and any
// values inside it are valid only until the next Decode call.
package protocol

import "encoding/binary"

// internCap bounds the interning map: once this many distinct keys
// have been seen the map is dropped and rebuilt, so a hostile or
// churning sender cannot grow it without bound. At typical key sizes
// this caps interning memory around tens of MB.
const internCap = 1 << 20

// Decoder decodes datagrams without per-call allocations. It is not
// safe for concurrent use; each receive loop owns one.
type Decoder struct {
	data      Data
	batch     DataBatch
	summary   Summary
	nack      NACK
	query     Query
	digests   Digests
	report    Report
	goodbye   Goodbye
	heartbeat Heartbeat

	names map[string]string // interned keys and paths
	val   []byte            // value arena, re-sliced per Decode
}

// NewDecoder returns a ready Decoder.
func NewDecoder() *Decoder {
	return &Decoder{names: make(map[string]string, 1024)}
}

// intern returns the canonical string for b, allocating only the first
// time a distinct key is seen.
func (d *Decoder) intern(b []byte) string {
	if s, ok := d.names[string(b)]; ok {
		return s
	}
	if len(d.names) >= internCap {
		d.names = make(map[string]string, 1024)
	}
	s := string(b)
	d.names[s] = s
	return s
}

// Decode parses a datagram like the package-level Decode but reuses
// the Decoder's internal structs and buffers. The returned Message
// (including key strings and value slices reachable from it) is only
// valid until the next call.
func (d *Decoder) Decode(b []byte) (Header, Message, error) {
	var hdr Header
	if len(b) < headerLen {
		return hdr, nil, ErrShort
	}
	if binary.BigEndian.Uint32(b) != Magic {
		return hdr, nil, ErrMagic
	}
	if b[4] != Version {
		return hdr, nil, ErrVersion
	}
	t := MsgType(b[5])
	hdr.Scope = b[6]
	hdr.Session = binary.BigEndian.Uint64(b[7:])
	hdr.Sender = binary.BigEndian.Uint64(b[15:])
	hdr.Seq = binary.BigEndian.Uint32(b[23:])
	body := b[headerLen:]

	// The arena is sized up-front to the whole datagram — an upper
	// bound on the sum of value lengths inside it — so appends during
	// a batch never reallocate and earlier records' subslices stay
	// valid.
	if cap(d.val) < len(b) {
		d.val = make([]byte, 0, len(b))
	}
	d.val = d.val[:0]

	switch t {
	case TypeData:
		if err := d.decodeData(&d.data, body); err != nil {
			return hdr, nil, err
		}
		return hdr, &d.data, nil
	case TypeDataBatch:
		if err := d.decodeBatch(body); err != nil {
			return hdr, nil, err
		}
		return hdr, &d.batch, nil
	case TypeSummary:
		if err := d.decodeSummary(body); err != nil {
			return hdr, nil, err
		}
		return hdr, &d.summary, nil
	case TypeQuery:
		if err := d.decodeQuery(body); err != nil {
			return hdr, nil, err
		}
		return hdr, &d.query, nil
	case TypeNACK:
		if err := d.decodeNACK(body); err != nil {
			return hdr, nil, err
		}
		return hdr, &d.nack, nil
	case TypeDigests:
		if err := d.decodeDigests(body); err != nil {
			return hdr, nil, err
		}
		return hdr, &d.digests, nil
	case TypeReport:
		if err := d.report.decodeBody(body); err != nil {
			return hdr, nil, err
		}
		return hdr, &d.report, nil
	case TypeGoodbye:
		if err := d.goodbye.decodeBody(body); err != nil {
			return hdr, nil, err
		}
		return hdr, &d.goodbye, nil
	case TypeHeartbit:
		if err := d.heartbeat.decodeBody(body); err != nil {
			return hdr, nil, err
		}
		return hdr, &d.heartbeat, nil
	default:
		return hdr, nil, ErrType
	}
}

// decodeData parses a Data body into rec with the key interned and the
// value placed in the arena. Semantically identical to Data.decodeBody
// (pinned by test).
func (d *Decoder) decodeData(rec *Data, b []byte) error {
	if len(b) < 1 {
		return ErrShort
	}
	if b[0] > 1 {
		return ErrBadPayload
	}
	rec.Deleted = b[0] == 1
	b = b[1:]
	if len(b) < 2 {
		return ErrShort
	}
	klen := int(binary.BigEndian.Uint16(b))
	b = b[2:]
	if klen > MaxKeyLen {
		return ErrOversize
	}
	if len(b) < klen {
		return ErrShort
	}
	if klen == 0 {
		return ErrBadPayload
	}
	rec.Key = d.intern(b[:klen])
	b = b[klen:]
	if len(b) < 24 {
		return ErrShort
	}
	rec.Ver = binary.BigEndian.Uint64(b)
	rec.TTLms = binary.BigEndian.Uint32(b[8:])
	rec.BornMs = binary.BigEndian.Uint64(b[12:])
	vlen := int(binary.BigEndian.Uint32(b[20:]))
	b = b[24:]
	if vlen > MaxValueLen {
		return ErrOversize
	}
	if len(b) < vlen {
		return ErrShort
	}
	if len(b) != vlen {
		return ErrTrailing
	}
	at := len(d.val)
	d.val = append(d.val, b[:vlen]...)
	rec.Value = d.val[at : at+vlen : at+vlen]
	return nil
}

// decodeBatch parses a DataBatch body reusing d.batch.Records and
// routing each record through decodeData.
func (d *Decoder) decodeBatch(b []byte) error {
	if len(b) < batchCountLen {
		return ErrShort
	}
	cnt := int(binary.BigEndian.Uint16(b))
	b = b[batchCountLen:]
	if cnt > MaxBatch {
		return ErrOversize
	}
	if cnt == 0 {
		return ErrBadPayload
	}
	if cap(d.batch.Records) >= cnt {
		d.batch.Records = d.batch.Records[:0]
	} else {
		d.batch.Records = make([]Data, 0, cnt)
	}
	for i := 0; i < cnt; i++ {
		if len(b) < 2 {
			return ErrShort
		}
		n := int(binary.BigEndian.Uint16(b))
		b = b[2:]
		if len(b) < n {
			return ErrShort
		}
		var rec Data
		if err := d.decodeData(&rec, b[:n]); err != nil {
			return err
		}
		d.batch.Records = append(d.batch.Records, rec)
		b = b[n:]
	}
	if len(b) != 0 {
		return ErrTrailing
	}
	return nil
}

// readStringView is readString without the string materialization: it
// returns a view into b for the caller to intern or copy.
func readStringView(b []byte, limit int) ([]byte, []byte, error) {
	if len(b) < 2 {
		return nil, nil, ErrShort
	}
	n := int(binary.BigEndian.Uint16(b))
	b = b[2:]
	if n > limit {
		return nil, nil, ErrOversize
	}
	if len(b) < n {
		return nil, nil, ErrShort
	}
	return b[:n], b[n:], nil
}

// decodeNACK parses a NACK body reusing d.nack.Keys with every key
// interned. Semantically identical to NACK.decodeBody (pinned by
// test): lost keys repeat across NACK rounds, so the sender's receive
// loop pays one string allocation per distinct key, not per datagram.
func (d *Decoder) decodeNACK(b []byte) error {
	if len(b) < 2 {
		return ErrShort
	}
	cnt := int(binary.BigEndian.Uint16(b))
	b = b[2:]
	if cnt > MaxBatch {
		return ErrOversize
	}
	if cap(d.nack.Keys) >= cnt {
		d.nack.Keys = d.nack.Keys[:0]
	} else {
		d.nack.Keys = make([]string, 0, cnt)
	}
	for i := 0; i < cnt; i++ {
		k, rest, err := readStringView(b, MaxKeyLen)
		if err != nil {
			return err
		}
		if len(k) == 0 {
			return ErrBadPayload
		}
		d.nack.Keys = append(d.nack.Keys, d.intern(k))
		b = rest
	}
	if len(b) != 0 {
		return ErrTrailing
	}
	return nil
}

// decodeDigests parses a Digests body reusing d.digests.Children with
// the path and child names interned. Semantically identical to
// Digests.decodeBody (pinned by test).
func (d *Decoder) decodeDigests(b []byte) error {
	p, rest, err := readStringView(b, MaxKeyLen)
	if err != nil {
		return err
	}
	d.digests.Path = d.intern(p)
	b = rest
	if len(b) < 2 {
		return ErrShort
	}
	cnt := int(binary.BigEndian.Uint16(b))
	b = b[2:]
	if cnt > MaxBatch {
		return ErrOversize
	}
	if cap(d.digests.Children) >= cnt {
		d.digests.Children = d.digests.Children[:0]
	} else {
		d.digests.Children = make([]ChildDigest, 0, cnt)
	}
	for i := 0; i < cnt; i++ {
		if len(b) < 1 {
			return ErrShort
		}
		var c ChildDigest
		if b[0] > 1 {
			return ErrBadPayload
		}
		c.Leaf = b[0] == 1
		name, rest, err := readStringView(b[1:], MaxKeyLen)
		if err != nil {
			return err
		}
		c.Name = d.intern(name)
		b = rest
		if len(b) < DigestLen {
			return ErrShort
		}
		copy(c.Digest[:], b[:DigestLen])
		b = b[DigestLen:]
		d.digests.Children = append(d.digests.Children, c)
	}
	if len(b) != 0 {
		return ErrTrailing
	}
	return nil
}

// decodeSummary parses a Summary body with the path interned.
func (d *Decoder) decodeSummary(b []byte) error {
	if len(b) < 2 {
		return ErrShort
	}
	plen := int(binary.BigEndian.Uint16(b))
	b = b[2:]
	if plen > MaxKeyLen {
		return ErrOversize
	}
	if len(b) < plen {
		return ErrShort
	}
	d.summary.Path = d.intern(b[:plen])
	b = b[plen:]
	if len(b) != DigestLen+4 {
		if len(b) < DigestLen+4 {
			return ErrShort
		}
		return ErrTrailing
	}
	copy(d.summary.Digest[:], b[:DigestLen])
	d.summary.Count = binary.BigEndian.Uint32(b[DigestLen:])
	return nil
}

// decodeQuery parses a Query body with the path interned.
func (d *Decoder) decodeQuery(b []byte) error {
	if len(b) < 2 {
		return ErrShort
	}
	plen := int(binary.BigEndian.Uint16(b))
	b = b[2:]
	if plen > MaxKeyLen {
		return ErrOversize
	}
	if len(b) != plen {
		if len(b) < plen {
			return ErrShort
		}
		return ErrTrailing
	}
	d.query.Path = d.intern(b)
	return nil
}
