package protocol

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func roundTrip(t *testing.T, hdr Header, msg Message) Message {
	t.Helper()
	buf := Encode(hdr, msg)
	gotHdr, gotMsg, err := Decode(buf)
	if err != nil {
		t.Fatalf("Decode(%v): %v", msg.Type(), err)
	}
	if gotHdr != hdr {
		t.Fatalf("header round-trip: %+v != %+v", gotHdr, hdr)
	}
	if gotMsg.Type() != msg.Type() {
		t.Fatalf("type round-trip: %v != %v", gotMsg.Type(), msg.Type())
	}
	return gotMsg
}

var testHdr = Header{Session: 0xDEADBEEF, Sender: 42, Seq: 7, Scope: 9}

func TestDataRoundTrip(t *testing.T) {
	in := &Data{Key: "sessions/audio/42", Ver: 9, TTLms: 30000, BornMs: 1700000000123, Value: []byte("payload")}
	out := roundTrip(t, testHdr, in).(*Data)
	if out.Key != in.Key || out.Ver != in.Ver || out.TTLms != in.TTLms ||
		out.BornMs != in.BornMs || !bytes.Equal(out.Value, in.Value) || out.Deleted {
		t.Errorf("got %+v", out)
	}
}

func TestDataTombstone(t *testing.T) {
	in := &Data{Key: "k", Ver: 3, Deleted: true}
	out := roundTrip(t, testHdr, in).(*Data)
	if !out.Deleted {
		t.Error("tombstone flag lost")
	}
}

func TestDataEmptyValue(t *testing.T) {
	out := roundTrip(t, testHdr, &Data{Key: "k", Ver: 1}).(*Data)
	if len(out.Value) != 0 {
		t.Errorf("value = %v", out.Value)
	}
}

func TestSummaryRoundTrip(t *testing.T) {
	in := &Summary{Path: "a/b", Count: 17}
	copy(in.Digest[:], []byte("0123456789abcdef"))
	out := roundTrip(t, testHdr, in).(*Summary)
	if out.Path != in.Path || out.Digest != in.Digest || out.Count != 17 {
		t.Errorf("got %+v", out)
	}
}

func TestSummaryRootPath(t *testing.T) {
	out := roundTrip(t, testHdr, &Summary{Path: ""}).(*Summary)
	if out.Path != "" {
		t.Errorf("root path = %q", out.Path)
	}
}

func TestNACKRoundTrip(t *testing.T) {
	in := &NACK{Keys: []string{"a", "b/c", "long/key/name"}}
	out := roundTrip(t, testHdr, in).(*NACK)
	if len(out.Keys) != 3 || out.Keys[0] != "a" || out.Keys[2] != "long/key/name" {
		t.Errorf("got %+v", out.Keys)
	}
}

func TestNACKEmpty(t *testing.T) {
	out := roundTrip(t, testHdr, &NACK{}).(*NACK)
	if len(out.Keys) != 0 {
		t.Errorf("got %+v", out.Keys)
	}
}

func TestQueryDigestsRoundTrip(t *testing.T) {
	q := roundTrip(t, testHdr, &Query{Path: "x/y"}).(*Query)
	if q.Path != "x/y" {
		t.Errorf("query path = %q", q.Path)
	}
	in := &Digests{Path: "x", Children: []ChildDigest{
		{Name: "y", Leaf: false, Digest: [DigestLen]byte{1}},
		{Name: "z", Leaf: true, Digest: [DigestLen]byte{2}},
	}}
	out := roundTrip(t, testHdr, in).(*Digests)
	if out.Path != "x" || len(out.Children) != 2 ||
		out.Children[0].Name != "y" || out.Children[0].Leaf ||
		!out.Children[1].Leaf || out.Children[1].Digest[0] != 2 {
		t.Errorf("got %+v", out)
	}
}

func TestReportRoundTrip(t *testing.T) {
	in := &Report{Received: 90, Expected: 100, DelayMs: 12, Timestamp: 5555}
	in.SetLoss(0.1)
	out := roundTrip(t, testHdr, in).(*Report)
	if out.Received != 90 || out.Expected != 100 || out.DelayMs != 12 || out.Timestamp != 5555 {
		t.Errorf("got %+v", out)
	}
	if math.Abs(out.Loss()-0.1) > 1e-4 {
		t.Errorf("loss = %v", out.Loss())
	}
}

func TestReportLossClamping(t *testing.T) {
	var r Report
	r.SetLoss(-0.5)
	if r.Loss() != 0 {
		t.Errorf("negative loss = %v", r.Loss())
	}
	r.SetLoss(1.5)
	if math.Abs(r.Loss()-1) > 1e-9 {
		t.Errorf("overflow loss = %v", r.Loss())
	}
}

func TestGoodbyeHeartbeat(t *testing.T) {
	roundTrip(t, testHdr, &Goodbye{})
	roundTrip(t, testHdr, &Heartbeat{})
}

func TestDecodeErrors(t *testing.T) {
	valid := Encode(testHdr, &Data{Key: "k", Ver: 1, Value: []byte("v")})

	cases := []struct {
		name string
		buf  []byte
		want error
	}{
		{"empty", nil, ErrShort},
		{"truncated header", valid[:10], ErrShort},
		{"bad magic", append([]byte{0, 0, 0, 0}, valid[4:]...), ErrMagic},
		{"bad version", mutate(valid, 4, 99), ErrVersion},
		{"bad type", mutate(valid, 5, 200), ErrType},
		{"trailing", append(append([]byte{}, valid...), 0xFF), ErrTrailing},
		{"truncated body", valid[:len(valid)-2], ErrShort},
	}
	for _, tc := range cases {
		_, _, err := Decode(tc.buf)
		if err != tc.want {
			t.Errorf("%s: err = %v, want %v", tc.name, err, tc.want)
		}
	}
}

func mutate(b []byte, idx int, v byte) []byte {
	out := append([]byte{}, b...)
	out[idx] = v
	return out
}

func TestDecodeRejectsOversizeKey(t *testing.T) {
	// Hand-craft a Data with a key length beyond MaxKeyLen.
	big := strings.Repeat("x", MaxKeyLen+1)
	buf := Encode(testHdr, &Data{Key: big, Ver: 1})
	if _, _, err := Decode(buf); err != ErrOversize {
		t.Errorf("oversize key err = %v", err)
	}
}

func TestDecodeRejectsEmptyKey(t *testing.T) {
	buf := Encode(testHdr, &Data{Key: "", Ver: 1})
	if _, _, err := Decode(buf); err != ErrBadPayload {
		t.Errorf("empty key err = %v", err)
	}
}

func TestDecodeRejectsHugeBatch(t *testing.T) {
	keys := make([]string, MaxBatch+1)
	for i := range keys {
		keys[i] = "k"
	}
	buf := Encode(testHdr, &NACK{Keys: keys})
	if _, _, err := Decode(buf); err != ErrOversize {
		t.Errorf("huge batch err = %v", err)
	}
}

// TestDecodeNeverPanics feeds arbitrary bytes into Decode; any return
// is acceptable, panicking is not.
func TestDecodeNeverPanics(t *testing.T) {
	f := func(b []byte) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("Decode panicked on %x: %v", b, r)
			}
		}()
		Decode(b)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestDecodeNeverPanicsOnMutations flips bytes of valid messages.
func TestDecodeNeverPanicsOnMutations(t *testing.T) {
	msgs := []Message{
		&Data{Key: "k/v", Ver: 2, TTLms: 100, Value: []byte("abc")},
		&Summary{Path: "p"},
		&NACK{Keys: []string{"a", "b"}},
		&Digests{Path: "p", Children: []ChildDigest{{Name: "c", Leaf: true}}},
		&Report{Received: 1, Expected: 2},
		&DataBatch{Records: []Data{{Key: "k/v", Ver: 2, Value: []byte("abc")}, {Key: "k/w", Ver: 3}}},
	}
	for _, m := range msgs {
		base := Encode(testHdr, m)
		for i := 0; i < len(base); i++ {
			for _, v := range []byte{0x00, 0xFF, base[i] ^ 0x80} {
				func() {
					defer func() {
						if r := recover(); r != nil {
							t.Fatalf("panic mutating %v byte %d to %x: %v", m.Type(), i, v, r)
						}
					}()
					Decode(mutate(base, i, v))
				}()
			}
		}
	}
}

// Property: round-trip preserves Data for arbitrary content.
func TestPropertyDataRoundTrip(t *testing.T) {
	f := func(key string, ver uint64, ttl uint32, val []byte) bool {
		if len(key) == 0 || len(key) > MaxKeyLen || len(val) > MaxValueLen {
			return true // out of contract
		}
		in := &Data{Key: key, Ver: ver, TTLms: ttl, Value: val}
		buf := Encode(Header{Session: 1, Sender: 2, Seq: 3}, in)
		_, m, err := Decode(buf)
		if err != nil {
			return false
		}
		out := m.(*Data)
		return out.Key == key && out.Ver == ver && out.TTLms == ttl && bytes.Equal(out.Value, val)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestScopeRoundTrip pins the hop-budget byte: every value survives
// encode/decode, and the zero value stays zero (unscoped).
func TestScopeRoundTrip(t *testing.T) {
	for _, scope := range []uint8{0, 1, 2, DefaultScope, 255} {
		hdr := Header{Session: 5, Sender: 6, Seq: 7, Scope: scope}
		got, _, err := Decode(Encode(hdr, &Query{Path: "a"}))
		if err != nil {
			t.Fatalf("scope %d: %v", scope, err)
		}
		if got.Scope != scope {
			t.Errorf("scope %d decoded as %d", scope, got.Scope)
		}
	}
}

func TestMsgTypeStrings(t *testing.T) {
	for _, tt := range []MsgType{TypeData, TypeSummary, TypeNACK, TypeQuery, TypeDigests, TypeReport, TypeGoodbye, TypeHeartbit, TypeDataBatch} {
		if tt.String() == "" || strings.HasPrefix(tt.String(), "MsgType(") {
			t.Errorf("type %d has no name", tt)
		}
	}
	if MsgType(222).String() != "MsgType(222)" {
		t.Error("unknown type should stringify numerically")
	}
}

// oneMessagePerType is a sample of every wire message kind, used by
// the AppendEncode tests and to seed the fuzz corpus.
func oneMessagePerType() []Message {
	return []Message{
		&Data{Key: "a/b", Ver: 7, TTLms: 1000, Value: []byte("value")},
		&Summary{Path: "x", Digest: [DigestLen]byte{1, 2, 3}, Count: 3},
		&NACK{Keys: []string{"a", "b/c"}},
		&Query{Path: "a/b/c"},
		&Digests{Path: "p", Children: []ChildDigest{{Name: "c", Leaf: true, Digest: [DigestLen]byte{9}}}},
		&Report{Received: 9, Expected: 10, LossQ16: 6553, DelayMs: 12, Timestamp: 99},
		&Goodbye{},
		&Heartbeat{},
		&DataBatch{Records: []Data{
			{Key: "a/b", Ver: 7, TTLms: 1000, Value: []byte("value")},
			{Key: "a/c", Ver: 8, TTLms: 2000, BornMs: 1700000000123, Value: []byte("w")},
			{Key: "gone", Ver: 9, Deleted: true},
		}},
	}
}

// TestAppendEncodeMatchesEncode pins AppendEncode's contract: for
// every message type the appended bytes equal Encode's output, and an
// existing prefix in dst is preserved untouched.
func TestAppendEncodeMatchesEncode(t *testing.T) {
	for _, msg := range oneMessagePerType() {
		want := Encode(testHdr, msg)
		if got := AppendEncode(nil, testHdr, msg); !bytes.Equal(got, want) {
			t.Errorf("%v: AppendEncode(nil) = %x, Encode = %x", msg.Type(), got, want)
		}
		prefix := []byte("prefix")
		got := AppendEncode(append([]byte(nil), prefix...), testHdr, msg)
		if !bytes.HasPrefix(got, prefix) {
			t.Fatalf("%v: prefix clobbered", msg.Type())
		}
		if !bytes.Equal(got[len(prefix):], want) {
			t.Errorf("%v: appended bytes differ from Encode", msg.Type())
		}
		// Reusing the buffer must reproduce the same bytes with no
		// growth (steady-state zero-alloc encoding).
		buf := make([]byte, 0, len(want))
		buf = AppendEncode(buf[:0], testHdr, msg)
		buf2 := AppendEncode(buf[:0], testHdr, msg)
		if !bytes.Equal(buf2, want) || &buf2[0] != &buf[0] {
			t.Errorf("%v: reused-buffer encode changed bytes or reallocated", msg.Type())
		}
	}
}

// TestAppendEncodeZeroAlloc pins the hot-path allocation contract.
func TestAppendEncodeZeroAlloc(t *testing.T) {
	msg := &Data{Key: "sessions/audio/42", Ver: 9, TTLms: 30000, Value: make([]byte, 512)}
	buf := make([]byte, 0, 1024)
	allocs := testing.AllocsPerRun(100, func() {
		buf = AppendEncode(buf[:0], testHdr, msg)
	})
	if allocs != 0 {
		t.Errorf("AppendEncode into sized buffer: %v allocs/op, want 0", allocs)
	}
}

func TestPeekSession(t *testing.T) {
	for _, msg := range []Message{
		&Data{Key: "a/b", Ver: 7, Value: []byte("v")},
		&Summary{Count: 3},
		&NACK{Keys: []string{"a/b"}},
		&Heartbeat{},
		&Goodbye{},
	} {
		b := Encode(Header{Session: 0xdeadbeefcafe, Sender: 9, Seq: 42, Scope: 5}, msg)
		got, ok := PeekSession(b)
		if !ok || got != 0xdeadbeefcafe {
			t.Errorf("%s: PeekSession = (%#x, %v), want (0xdeadbeefcafe, true)", msg.Type(), got, ok)
		}
		// Peek must agree with the full decode.
		hdr, _, err := Decode(b)
		if err != nil || hdr.Session != got {
			t.Errorf("%s: Decode session %#x vs peek %#x (err %v)", msg.Type(), hdr.Session, got, err)
		}
	}
}

func TestPeekSessionRejects(t *testing.T) {
	good := Encode(Header{Session: 1}, &Heartbeat{})
	if _, ok := PeekSession(good[:HeaderLen-1]); ok {
		t.Error("short datagram accepted")
	}
	if _, ok := PeekSession(nil); ok {
		t.Error("nil datagram accepted")
	}
	bad := append([]byte(nil), good...)
	bad[0] ^= 0xff
	if _, ok := PeekSession(bad); ok {
		t.Error("bad magic accepted")
	}
	bad = append(bad[:0], good...)
	bad[4] = Version + 1
	if _, ok := PeekSession(bad); ok {
		t.Error("bad version accepted")
	}
}
