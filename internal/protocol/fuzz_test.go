package protocol

import (
	"bytes"
	"testing"
)

// fuzzSeeds is one datagram per message type (plus a tombstone), the
// shared corpus for both fuzz targets.
func fuzzSeeds() [][]byte {
	hdr := Header{Session: 1, Sender: 2, Seq: 3, Scope: 4}
	var out [][]byte
	for _, m := range oneMessagePerType() {
		out = append(out, Encode(hdr, m))
	}
	// Scope edge values: unscoped (0), last-hop (1), and saturated.
	for _, scope := range []uint8{0, 1, 255} {
		h := hdr
		h.Scope = scope
		out = append(out, Encode(h, &Data{Key: "s", Ver: 1, Value: []byte("v")}))
	}
	return append(out, Encode(hdr, &Data{Key: "k", Deleted: true}))
}

// FuzzDecode drives the decoder with arbitrary datagrams. The decoder
// must never panic, and any datagram it accepts must re-encode and
// re-decode to an identical message (round-trip stability).
func FuzzDecode(f *testing.F) {
	for _, b := range fuzzSeeds() {
		f.Add(b)
	}
	f.Add([]byte{})
	f.Add([]byte{0x53, 0x53, 0x54, 0x50})

	f.Fuzz(func(t *testing.T, data []byte) {
		h, msg, err := Decode(data)
		if err != nil {
			return
		}
		// Accepted datagrams must round-trip exactly.
		re := Encode(h, msg)
		h2, msg2, err2 := Decode(re)
		if err2 != nil {
			t.Fatalf("re-decode failed: %v", err2)
		}
		if h2 != h {
			t.Fatalf("header changed: %+v -> %+v", h, h2)
		}
		if msg2.Type() != msg.Type() {
			t.Fatalf("type changed: %v -> %v", msg.Type(), msg2.Type())
		}
		re2 := Encode(h2, msg2)
		if !bytes.Equal(re, re2) {
			t.Fatalf("encoding not stable:\n%x\n%x", re, re2)
		}
	})
}

// FuzzAppendEncode pins the AppendEncode/Encode equivalence: for every
// datagram the decoder accepts, AppendEncode of the decoded message —
// into an empty, a prefixed, and a reused buffer — must be
// byte-identical to Encode, and the re-encoded datagram must decode
// back to the same bytes (AppendEncode → Decode → re-encode is a
// fixed point).
func FuzzAppendEncode(f *testing.F) {
	for _, b := range fuzzSeeds() {
		f.Add(b)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		h, msg, err := Decode(data)
		if err != nil {
			return
		}
		want := Encode(h, msg)
		if got := AppendEncode(nil, h, msg); !bytes.Equal(got, want) {
			t.Fatalf("AppendEncode(nil) differs from Encode:\n%x\n%x", got, want)
		}
		prefixed := AppendEncode([]byte{0xAA, 0xBB}, h, msg)
		if !bytes.Equal(prefixed[2:], want) || prefixed[0] != 0xAA || prefixed[1] != 0xBB {
			t.Fatalf("prefixed AppendEncode corrupt: %x", prefixed)
		}
		buf := make([]byte, 0, len(want))
		buf = AppendEncode(buf, h, msg)
		if !bytes.Equal(buf, want) {
			t.Fatalf("sized-buffer AppendEncode differs:\n%x\n%x", buf, want)
		}
		// Decode of the re-encoding must yield the same bytes again.
		h2, msg2, err := Decode(buf)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if again := AppendEncode(buf[:0], h2, msg2); !bytes.Equal(again, want) {
			t.Fatalf("re-encode not a fixed point:\n%x\n%x", again, want)
		}
	})
}
