package protocol

import (
	"bytes"
	"testing"
)

// FuzzDecode drives the decoder with arbitrary datagrams. The decoder
// must never panic, and any datagram it accepts must re-encode and
// re-decode to an identical message (round-trip stability).
func FuzzDecode(f *testing.F) {
	hdr := Header{Session: 1, Sender: 2, Seq: 3}
	seeds := []Message{
		&Data{Key: "a/b", Ver: 7, TTLms: 1000, Value: []byte("v")},
		&Data{Key: "k", Deleted: true},
		&Summary{Path: "x", Count: 3},
		&NACK{Keys: []string{"a", "b"}},
		&Query{Path: "a/b/c"},
		&Digests{Path: "p", Children: []ChildDigest{{Name: "c", Leaf: true}}},
		&Report{Received: 9, Expected: 10, LossQ16: 6553},
		&Goodbye{},
		&Heartbeat{},
	}
	for _, m := range seeds {
		f.Add(Encode(hdr, m))
	}
	f.Add([]byte{})
	f.Add([]byte{0x53, 0x53, 0x54, 0x50})

	f.Fuzz(func(t *testing.T, data []byte) {
		h, msg, err := Decode(data)
		if err != nil {
			return
		}
		// Accepted datagrams must round-trip exactly.
		re := Encode(h, msg)
		h2, msg2, err2 := Decode(re)
		if err2 != nil {
			t.Fatalf("re-decode failed: %v", err2)
		}
		if h2 != h {
			t.Fatalf("header changed: %+v -> %+v", h, h2)
		}
		if msg2.Type() != msg.Type() {
			t.Fatalf("type changed: %v -> %v", msg.Type(), msg2.Type())
		}
		re2 := Encode(h2, msg2)
		if !bytes.Equal(re, re2) {
			t.Fatalf("encoding not stable:\n%x\n%x", re, re2)
		}
	})
}
