// DataBatch: several record announcements coalesced into one datagram.
//
// The body is a uint16 record count followed by count frames, each a
// uint16 body length and then a Data body encoded exactly as a
// standalone TypeData datagram would encode it. Because every frame is
// a complete ADU, a receiver unpacks a batch into the same delivery
// sequence it would have seen from count single-record datagrams
// (pinned by test in the sstp package).
//
// Senders on the hot path never build a DataBatch struct: they append
// frames incrementally with AppendBatchRecord while walking the
// announcement queue, then close the datagram with AppendBatchDatagram.
// The result is byte-identical to AppendEncode(hdr, &DataBatch{...})
// (pinned by unit test).
package protocol

import "encoding/binary"

// MaxDataFrame is the largest possible encoded Data body plus its
// uint16 frame-length prefix: flag(1) + key(2+MaxKeyLen) + ver(8) +
// ttl(4) + born(8) + value(4+MaxValueLen). It fits a uint16 length
// with room to spare, which the frame format relies on.
const MaxDataFrame = 2 + 1 + 2 + MaxKeyLen + 8 + 4 + 8 + 4 + MaxValueLen

// batchCountLen is the uint16 record count that opens a batch body.
const batchCountLen = 2

// DataBatch coalesces up to MaxBatch record announcements into one
// datagram, amortizing the header and the send syscall across records
// that are small relative to the path MTU.
type DataBatch struct {
	Records []Data
}

// Type implements Message.
func (*DataBatch) Type() MsgType { return TypeDataBatch }

func (d *DataBatch) encodeBody(dst []byte) []byte {
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(d.Records)))
	for i := range d.Records {
		dst = AppendBatchRecord(dst, &d.Records[i])
	}
	return dst
}

func (d *DataBatch) decodeBody(b []byte) error {
	if len(b) < batchCountLen {
		return ErrShort
	}
	cnt := int(binary.BigEndian.Uint16(b))
	b = b[batchCountLen:]
	if cnt > MaxBatch {
		return ErrOversize
	}
	if cnt == 0 {
		return ErrBadPayload
	}
	if cap(d.Records) >= cnt {
		d.Records = d.Records[:0]
	} else {
		d.Records = make([]Data, 0, cnt)
	}
	for i := 0; i < cnt; i++ {
		if len(b) < 2 {
			return ErrShort
		}
		n := int(binary.BigEndian.Uint16(b))
		b = b[2:]
		if len(b) < n {
			return ErrShort
		}
		var rec Data
		if err := rec.decodeBody(b[:n]); err != nil {
			return err
		}
		d.Records = append(d.Records, rec)
		b = b[n:]
	}
	if len(b) != 0 {
		return ErrTrailing
	}
	return nil
}

// BatchRecordSize returns the wire size one record contributes to a
// batch body (its frame-length prefix plus the Data body), so senders
// can budget a coalesced datagram against the MTU before encoding.
func BatchRecordSize(keyLen, valueLen int) int {
	return 2 + 1 + 2 + keyLen + 8 + 4 + 8 + 4 + valueLen
}

// AppendBatchRecord appends one framed record to an in-progress batch
// body: the uint16 body length followed by the Data body. It allocates
// nothing when dst has capacity.
func AppendBatchRecord(dst []byte, rec *Data) []byte {
	at := len(dst)
	dst = append(dst, 0, 0) // frame length back-patched below
	dst = rec.encodeBody(dst)
	binary.BigEndian.PutUint16(dst[at:], uint16(len(dst)-at-2))
	return dst
}

// AppendBatchDatagram frames a complete DataBatch datagram from
// records previously packed with AppendBatchRecord: the common header,
// the uint16 count, then the record frames verbatim. The output is
// byte-identical to AppendEncode(hdr, &DataBatch{...}) for the same
// records (pinned by unit test). It allocates nothing when dst has
// capacity.
func AppendBatchDatagram(dst []byte, hdr Header, count int, records []byte) []byte {
	dst = appendHeader(dst, hdr, TypeDataBatch)
	dst = binary.BigEndian.AppendUint16(dst, uint16(count))
	return append(dst, records...)
}

// AppendDataDatagram frames a plain TypeData datagram from an
// already-encoded Data body (for example a batch frame minus its
// length prefix). A coalescing sender that ends up with a single
// record uses it to stay byte-identical to the pre-batching format.
func AppendDataDatagram(dst []byte, hdr Header, body []byte) []byte {
	dst = appendHeader(dst, hdr, TypeData)
	return append(dst, body...)
}
