// Package protocol defines SSTP's wire formats: data announcements,
// namespace summary announcements, NACKs, namespace queries and
// responses, and RTCP-style receiver reports. Messages are encoded in
// a compact binary form (network byte order, length-prefixed strings)
// with strict bounds checking on decode — a malformed datagram must
// never panic or over-allocate.
//
// Framing is per-datagram (one message per UDP packet), following the
// ALF principle that each transmission is an independent application
// data unit. A DataBatch datagram coalesces several small records into
// one packet up to the path MTU; each record inside it is still a
// complete, independently-framed ADU (see batch.go).
package protocol

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sync"
)

// Protocol constants.
const (
	Magic   = 0x53535450 // "SSTP"
	Version = 1

	// MaxKeyLen bounds key and namespace path lengths on the wire.
	MaxKeyLen = 1024
	// MaxValueLen bounds announcement payloads (one ADU per datagram).
	MaxValueLen = 60000
	// MaxBatch bounds the number of items in NACKs, summaries, and
	// digest lists.
	MaxBatch = 256
	// DigestLen is the length of namespace digests on the wire
	// (SHA-256 truncated to 16 bytes; see internal/namespace).
	DigestLen = 16

	// DefaultScope is the hop budget stamped on datagrams when the
	// sender does not choose one. Each relay hop re-publishes with the
	// budget decremented, so a forwarding loop dies out after at most
	// DefaultScope hops instead of circulating forever.
	DefaultScope = 32
)

// MsgType discriminates the message kinds.
type MsgType uint8

// Message kinds.
const (
	TypeData      MsgType = 1 // announcement of one {key, value} record
	TypeSummary   MsgType = 2 // digest of a namespace subtree
	TypeNACK      MsgType = 3 // receiver repair request
	TypeQuery     MsgType = 4 // namespace descent query
	TypeDigests   MsgType = 5 // response: child digests of a node
	TypeReport    MsgType = 6 // RTCP-style receiver report
	TypeGoodbye   MsgType = 7 // publisher is leaving; flush state
	TypeHeartbit  MsgType = 8 // keepalive when the table is empty
	TypeDataBatch MsgType = 9 // several coalesced record announcements
)

// String names the message type.
func (t MsgType) String() string {
	switch t {
	case TypeData:
		return "DATA"
	case TypeSummary:
		return "SUMMARY"
	case TypeNACK:
		return "NACK"
	case TypeQuery:
		return "QUERY"
	case TypeDigests:
		return "DIGESTS"
	case TypeReport:
		return "REPORT"
	case TypeGoodbye:
		return "GOODBYE"
	case TypeHeartbit:
		return "HEARTBEAT"
	case TypeDataBatch:
		return "DATABATCH"
	default:
		return fmt.Sprintf("MsgType(%d)", uint8(t))
	}
}

// Decode errors.
var (
	ErrShort      = errors.New("protocol: datagram too short")
	ErrMagic      = errors.New("protocol: bad magic")
	ErrVersion    = errors.New("protocol: unsupported version")
	ErrType       = errors.New("protocol: unknown message type")
	ErrOversize   = errors.New("protocol: field exceeds limit")
	ErrTrailing   = errors.New("protocol: trailing bytes")
	ErrBadPayload = errors.New("protocol: malformed payload")
)

// Message is any SSTP wire message.
type Message interface {
	Type() MsgType
	// encodeBody appends the body (everything after the common
	// header) to dst.
	encodeBody(dst []byte) []byte
	// decodeBody parses the body; it must consume all of b.
	decodeBody(b []byte) error
}

// Header is the common prefix of every message.
type Header struct {
	Session uint64 // session identifier
	Sender  uint64 // sender identifier (SSRC-like)
	Seq     uint32 // per-sender sequence number (gap detection)

	// Scope is the remaining relay hop budget (an IP-TTL analogue for
	// the application-level overlay): a relay only re-publishes what it
	// hears when Scope > 1, stamping Scope-1 downstream. Receivers set
	// Scope 1 on repair traffic (NACKs, queries, reports) so recovery
	// never travels past the nearest replica. 0 means unscoped and is
	// treated as DefaultScope by relays.
	Scope uint8
}

const headerLen = 4 + 1 + 1 + 1 + 8 + 8 + 4 // magic, version, type, scope, session, sender, seq

// HeaderLen is the wire size of the common datagram header; senders
// budgeting coalesced datagrams against an MTU start from it.
const HeaderLen = headerLen

// encScratch recycles Encode's working buffers so the convenience
// entry point costs exactly one allocation (the returned datagram)
// instead of paying AppendEncode's growth reallocations each call.
var encScratch = sync.Pool{New: func() any {
	b := make([]byte, 0, 2048)
	return &b
}}

// Encode serializes hdr+msg into a fresh buffer. It routes through
// AppendEncode with a pooled scratch buffer, so the output bytes are
// identical to AppendEncode's (pinned by unit test and fuzz target)
// and the only allocation is the returned slice.
func Encode(hdr Header, msg Message) []byte {
	bp := encScratch.Get().(*[]byte)
	b := AppendEncode((*bp)[:0], hdr, msg)
	out := make([]byte, len(b))
	copy(out, b)
	*bp = b[:0]
	encScratch.Put(bp)
	return out
}

// appendHeader writes the common datagram prefix for a message of
// type t.
func appendHeader(dst []byte, hdr Header, t MsgType) []byte {
	dst = binary.BigEndian.AppendUint32(dst, Magic)
	dst = append(dst, Version, byte(t), hdr.Scope)
	dst = binary.BigEndian.AppendUint64(dst, hdr.Session)
	dst = binary.BigEndian.AppendUint64(dst, hdr.Sender)
	return binary.BigEndian.AppendUint32(dst, hdr.Seq)
}

// AppendEncode serializes hdr+msg, appending the datagram to dst and
// returning the extended slice. The appended bytes are byte-identical
// to Encode's output (pinned by unit test and fuzz target); callers on
// hot paths pass a reused buffer and allocate nothing.
func AppendEncode(dst []byte, hdr Header, msg Message) []byte {
	return msg.encodeBody(appendHeader(dst, hdr, msg.Type()))
}

// PeekSession extracts the session id from an encoded datagram
// without decoding the rest — the hot path of a session-fabric demux
// routing one shared port's traffic to per-session endpoints. It
// reports false when b is too short to hold a header or does not
// carry SSTP magic and version; routing decisions need no more
// validation than that, because the per-session endpoint fully
// decodes (and rejects) the datagram anyway.
func PeekSession(b []byte) (uint64, bool) {
	if len(b) < headerLen || binary.BigEndian.Uint32(b) != Magic || b[4] != Version {
		return 0, false
	}
	return binary.BigEndian.Uint64(b[7:]), true
}

// Decode parses a datagram into its header and message.
func Decode(b []byte) (Header, Message, error) {
	var hdr Header
	if len(b) < headerLen {
		return hdr, nil, ErrShort
	}
	if binary.BigEndian.Uint32(b) != Magic {
		return hdr, nil, ErrMagic
	}
	if b[4] != Version {
		return hdr, nil, ErrVersion
	}
	t := MsgType(b[5])
	hdr.Scope = b[6]
	hdr.Session = binary.BigEndian.Uint64(b[7:])
	hdr.Sender = binary.BigEndian.Uint64(b[15:])
	hdr.Seq = binary.BigEndian.Uint32(b[23:])
	body := b[headerLen:]
	var msg Message
	switch t {
	case TypeData:
		msg = &Data{}
	case TypeSummary:
		msg = &Summary{}
	case TypeNACK:
		msg = &NACK{}
	case TypeQuery:
		msg = &Query{}
	case TypeDigests:
		msg = &Digests{}
	case TypeReport:
		msg = &Report{}
	case TypeGoodbye:
		msg = &Goodbye{}
	case TypeHeartbit:
		msg = &Heartbeat{}
	case TypeDataBatch:
		msg = &DataBatch{}
	default:
		return hdr, nil, ErrType
	}
	if err := msg.decodeBody(body); err != nil {
		return hdr, nil, err
	}
	return hdr, msg, nil
}

// --- primitive helpers ---

func appendString(dst []byte, s string) []byte {
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(s)))
	return append(dst, s...)
}

func readString(b []byte, limit int) (string, []byte, error) {
	if len(b) < 2 {
		return "", nil, ErrShort
	}
	n := int(binary.BigEndian.Uint16(b))
	b = b[2:]
	if n > limit {
		return "", nil, ErrOversize
	}
	if len(b) < n {
		return "", nil, ErrShort
	}
	return string(b[:n]), b[n:], nil
}

func appendBytes32(dst []byte, p []byte) []byte {
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(p)))
	return append(dst, p...)
}

func readBytes32(b []byte, limit int) ([]byte, []byte, error) {
	if len(b) < 4 {
		return nil, nil, ErrShort
	}
	n := int(binary.BigEndian.Uint32(b))
	b = b[4:]
	if n > limit {
		return nil, nil, ErrOversize
	}
	if len(b) < n {
		return nil, nil, ErrShort
	}
	out := make([]byte, n)
	copy(out, b[:n])
	return out, b[n:], nil
}

// --- Data ---

// Data announces one {key, value} record: the current version, its
// remaining lifetime (the receiver-side expiry timer is set to TTL),
// the origin publish time, and the opaque value.
type Data struct {
	Key     string
	Ver     uint64
	TTLms   uint32 // receiver-side soft-state timer in milliseconds
	BornMs  uint64 // origin publish time of this version, Unix ms (0 = unknown)
	Value   []byte
	Deleted bool // tombstone: receiver should drop the key
}

// Type implements Message.
func (*Data) Type() MsgType { return TypeData }

func (d *Data) encodeBody(dst []byte) []byte {
	flag := byte(0)
	if d.Deleted {
		flag = 1
	}
	dst = append(dst, flag)
	dst = appendString(dst, d.Key)
	dst = binary.BigEndian.AppendUint64(dst, d.Ver)
	dst = binary.BigEndian.AppendUint32(dst, d.TTLms)
	dst = binary.BigEndian.AppendUint64(dst, d.BornMs)
	return appendBytes32(dst, d.Value)
}

func (d *Data) decodeBody(b []byte) error {
	if len(b) < 1 {
		return ErrShort
	}
	d.Deleted = b[0] == 1
	if b[0] > 1 {
		return ErrBadPayload
	}
	b = b[1:]
	var err error
	d.Key, b, err = readString(b, MaxKeyLen)
	if err != nil {
		return err
	}
	if d.Key == "" {
		return ErrBadPayload
	}
	if len(b) < 20 {
		return ErrShort
	}
	d.Ver = binary.BigEndian.Uint64(b)
	d.TTLms = binary.BigEndian.Uint32(b[8:])
	d.BornMs = binary.BigEndian.Uint64(b[12:])
	d.Value, b, err = readBytes32(b[20:], MaxValueLen)
	if err != nil {
		return err
	}
	if len(b) != 0 {
		return ErrTrailing
	}
	return nil
}

// --- Summary ---

// Summary is a "cold" announcement carrying the digest of a namespace
// subtree (usually the root). Receivers compare it against their local
// digest; a mismatch triggers a Query for that path.
type Summary struct {
	Path   string // namespace path ("" = root)
	Digest [DigestLen]byte
	Count  uint32 // number of leaves under the node (descent hint)
}

// Type implements Message.
func (*Summary) Type() MsgType { return TypeSummary }

func (s *Summary) encodeBody(dst []byte) []byte {
	dst = appendString(dst, s.Path)
	dst = append(dst, s.Digest[:]...)
	return binary.BigEndian.AppendUint32(dst, s.Count)
}

func (s *Summary) decodeBody(b []byte) error {
	var err error
	s.Path, b, err = readString(b, MaxKeyLen)
	if err != nil {
		return err
	}
	if len(b) != DigestLen+4 {
		if len(b) < DigestLen+4 {
			return ErrShort
		}
		return ErrTrailing
	}
	copy(s.Digest[:], b[:DigestLen])
	s.Count = binary.BigEndian.Uint32(b[DigestLen:])
	return nil
}

// --- NACK ---

// NACK requests retransmission of specific keys.
type NACK struct {
	Keys []string
}

// Type implements Message.
func (*NACK) Type() MsgType { return TypeNACK }

func (n *NACK) encodeBody(dst []byte) []byte {
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(n.Keys)))
	for _, k := range n.Keys {
		dst = appendString(dst, k)
	}
	return dst
}

func (n *NACK) decodeBody(b []byte) error {
	if len(b) < 2 {
		return ErrShort
	}
	cnt := int(binary.BigEndian.Uint16(b))
	b = b[2:]
	if cnt > MaxBatch {
		return ErrOversize
	}
	n.Keys = make([]string, 0, cnt)
	var err error
	for i := 0; i < cnt; i++ {
		var k string
		k, b, err = readString(b, MaxKeyLen)
		if err != nil {
			return err
		}
		if k == "" {
			return ErrBadPayload
		}
		n.Keys = append(n.Keys, k)
	}
	if len(b) != 0 {
		return ErrTrailing
	}
	return nil
}

// --- Query ---

// Query asks the sender (or any session participant) for the child
// digests of a namespace node, driving the recursive-descent repair.
type Query struct {
	Path string
}

// Type implements Message.
func (*Query) Type() MsgType { return TypeQuery }

func (q *Query) encodeBody(dst []byte) []byte { return appendString(dst, q.Path) }

func (q *Query) decodeBody(b []byte) error {
	var err error
	q.Path, b, err = readString(b, MaxKeyLen)
	if err != nil {
		return err
	}
	if len(b) != 0 {
		return ErrTrailing
	}
	return nil
}

// --- Digests ---

// ChildDigest is one entry of a Digests response.
type ChildDigest struct {
	Name   string // path component relative to the queried node
	Leaf   bool   // true if the child is a leaf ADU
	Digest [DigestLen]byte
}

// Digests answers a Query with the queried node's children and their
// digests, letting the receiver recurse into mismatching branches.
type Digests struct {
	Path     string
	Children []ChildDigest
}

// Type implements Message.
func (*Digests) Type() MsgType { return TypeDigests }

func (d *Digests) encodeBody(dst []byte) []byte {
	dst = appendString(dst, d.Path)
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(d.Children)))
	for _, c := range d.Children {
		flag := byte(0)
		if c.Leaf {
			flag = 1
		}
		dst = append(dst, flag)
		dst = appendString(dst, c.Name)
		dst = append(dst, c.Digest[:]...)
	}
	return dst
}

func (d *Digests) decodeBody(b []byte) error {
	var err error
	d.Path, b, err = readString(b, MaxKeyLen)
	if err != nil {
		return err
	}
	if len(b) < 2 {
		return ErrShort
	}
	cnt := int(binary.BigEndian.Uint16(b))
	b = b[2:]
	if cnt > MaxBatch {
		return ErrOversize
	}
	d.Children = make([]ChildDigest, 0, cnt)
	for i := 0; i < cnt; i++ {
		if len(b) < 1 {
			return ErrShort
		}
		var c ChildDigest
		if b[0] > 1 {
			return ErrBadPayload
		}
		c.Leaf = b[0] == 1
		c.Name, b, err = readString(b[1:], MaxKeyLen)
		if err != nil {
			return err
		}
		if len(b) < DigestLen {
			return ErrShort
		}
		copy(c.Digest[:], b[:DigestLen])
		b = b[DigestLen:]
		d.Children = append(d.Children, c)
	}
	if len(b) != 0 {
		return ErrTrailing
	}
	return nil
}

// --- Report ---

// Report is an RTCP-style receiver report: the sender uses the loss
// estimate to drive the profile-based bandwidth allocator.
type Report struct {
	Received  uint32
	Expected  uint32
	LossQ16   uint16 // loss fraction in Q0.16 fixed point
	DelayMs   uint32 // smoothed one-way delay estimate, milliseconds
	Timestamp uint64 // sender-echoed timestamp (units are app-defined)
}

// Type implements Message.
func (*Report) Type() MsgType { return TypeReport }

// Loss returns the loss fraction as a float in [0, 1].
func (r *Report) Loss() float64 { return float64(r.LossQ16) / 65535 }

// SetLoss stores a loss fraction, clamping to [0, 1].
func (r *Report) SetLoss(p float64) {
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	r.LossQ16 = uint16(math.Round(p * 65535))
}

func (r *Report) encodeBody(dst []byte) []byte {
	dst = binary.BigEndian.AppendUint32(dst, r.Received)
	dst = binary.BigEndian.AppendUint32(dst, r.Expected)
	dst = binary.BigEndian.AppendUint16(dst, r.LossQ16)
	dst = binary.BigEndian.AppendUint32(dst, r.DelayMs)
	return binary.BigEndian.AppendUint64(dst, r.Timestamp)
}

func (r *Report) decodeBody(b []byte) error {
	if len(b) < 22 {
		return ErrShort
	}
	if len(b) > 22 {
		return ErrTrailing
	}
	r.Received = binary.BigEndian.Uint32(b)
	r.Expected = binary.BigEndian.Uint32(b[4:])
	r.LossQ16 = binary.BigEndian.Uint16(b[8:])
	r.DelayMs = binary.BigEndian.Uint32(b[10:])
	r.Timestamp = binary.BigEndian.Uint64(b[14:])
	return nil
}

// --- Goodbye / Heartbeat ---

// Goodbye announces that the publisher is leaving the session.
type Goodbye struct{}

// Type implements Message.
func (*Goodbye) Type() MsgType { return TypeGoodbye }

func (*Goodbye) encodeBody(dst []byte) []byte { return dst }

func (*Goodbye) decodeBody(b []byte) error {
	if len(b) != 0 {
		return ErrTrailing
	}
	return nil
}

// Heartbeat keeps the session's sequence space warm when there is no
// data to announce, so receivers can still estimate loss.
type Heartbeat struct{}

// Type implements Message.
func (*Heartbeat) Type() MsgType { return TypeHeartbit }

func (*Heartbeat) encodeBody(dst []byte) []byte { return dst }

func (*Heartbeat) decodeBody(b []byte) error {
	if len(b) != 0 {
		return ErrTrailing
	}
	return nil
}
