package protocol

import (
	"bytes"
	"encoding/binary"
	"testing"
)

func sampleBatch() *DataBatch {
	return &DataBatch{Records: []Data{
		{Key: "g/a", Ver: 1, TTLms: 5000, BornMs: 1700000000001, Value: []byte("alpha")},
		{Key: "g/b", Ver: 2, TTLms: 5000, Value: nil},
		{Key: "h/c", Ver: 3, Deleted: true},
	}}
}

func TestDataBatchRoundTrip(t *testing.T) {
	in := sampleBatch()
	out := roundTrip(t, testHdr, in).(*DataBatch)
	if len(out.Records) != len(in.Records) {
		t.Fatalf("record count = %d, want %d", len(out.Records), len(in.Records))
	}
	for i := range in.Records {
		a, b := &in.Records[i], &out.Records[i]
		if a.Key != b.Key || a.Ver != b.Ver || a.TTLms != b.TTLms ||
			a.BornMs != b.BornMs || !bytes.Equal(a.Value, b.Value) || a.Deleted != b.Deleted {
			t.Errorf("record %d: got %+v, want %+v", i, b, a)
		}
	}
}

// TestAppendBatchDatagramMatchesEncode pins the incremental packing
// path byte-identical to encoding a DataBatch struct: senders build
// datagrams with AppendBatchRecord/AppendBatchDatagram and must be
// indistinguishable on the wire.
func TestAppendBatchDatagramMatchesEncode(t *testing.T) {
	in := sampleBatch()
	want := Encode(testHdr, in)

	var frames []byte
	for i := range in.Records {
		frames = AppendBatchRecord(frames, &in.Records[i])
	}
	got := AppendBatchDatagram(nil, testHdr, len(in.Records), frames)
	if !bytes.Equal(got, want) {
		t.Fatalf("AppendBatchDatagram = %x\nEncode           = %x", got, want)
	}
}

// TestBatchRecordSize pins the MTU-budget arithmetic to the actual
// encoded size of a frame.
func TestBatchRecordSize(t *testing.T) {
	for _, rec := range sampleBatch().Records {
		frame := AppendBatchRecord(nil, &rec)
		if want := BatchRecordSize(len(rec.Key), len(rec.Value)); len(frame) != want {
			t.Errorf("key %q: frame %d bytes, BatchRecordSize says %d", rec.Key, len(frame), want)
		}
	}
}

func TestDataBatchDecodeErrors(t *testing.T) {
	valid := Encode(testHdr, sampleBatch())

	// Empty batch is malformed: a sender with one record uses TypeData.
	empty := AppendBatchDatagram(nil, testHdr, 0, nil)
	if _, _, err := Decode(empty); err != ErrBadPayload {
		t.Errorf("empty batch err = %v, want %v", err, ErrBadPayload)
	}

	// Count beyond MaxBatch.
	over := append([]byte(nil), valid...)
	binary.BigEndian.PutUint16(over[headerLen:], MaxBatch+1)
	if _, _, err := Decode(over); err != ErrOversize {
		t.Errorf("oversize count err = %v, want %v", err, ErrOversize)
	}

	// Truncated mid-frame.
	if _, _, err := Decode(valid[:len(valid)-3]); err != ErrShort {
		t.Errorf("truncated err = %v, want %v", err, ErrShort)
	}

	// Trailing bytes after the last frame.
	if _, _, err := Decode(append(append([]byte(nil), valid...), 0)); err != ErrTrailing {
		t.Errorf("trailing err = %v, want %v", err, ErrTrailing)
	}

	// Count larger than the frames present.
	short := append([]byte(nil), valid...)
	binary.BigEndian.PutUint16(short[headerLen:], uint16(len(sampleBatch().Records)+1))
	if _, _, err := Decode(short); err != ErrShort {
		t.Errorf("undercounted err = %v, want %v", err, ErrShort)
	}
}

// TestBatchRecordsAreIndependentADUs: each frame inside a batch decodes
// to exactly what the same record would decode to as a standalone Data
// datagram (the ALF framing property coalescing must preserve).
func TestBatchRecordsAreIndependentADUs(t *testing.T) {
	in := sampleBatch()
	_, m, err := Decode(Encode(testHdr, in))
	if err != nil {
		t.Fatal(err)
	}
	batch := m.(*DataBatch)
	for i := range in.Records {
		_, sm, err := Decode(Encode(testHdr, &in.Records[i]))
		if err != nil {
			t.Fatalf("record %d standalone: %v", i, err)
		}
		single := sm.(*Data)
		got := &batch.Records[i]
		if single.Key != got.Key || single.Ver != got.Ver || single.TTLms != got.TTLms ||
			single.BornMs != got.BornMs || !bytes.Equal(single.Value, got.Value) || single.Deleted != got.Deleted {
			t.Errorf("record %d: batched %+v != standalone %+v", i, got, single)
		}
	}
}

// TestEncodeSingleAlloc pins the satellite fix: Encode routes through
// AppendEncode with a pooled scratch buffer, so its only allocation is
// the returned datagram.
func TestEncodeSingleAlloc(t *testing.T) {
	msg := &Data{Key: "sessions/audio/42", Ver: 9, TTLms: 30000, Value: make([]byte, 512)}
	allocs := testing.AllocsPerRun(200, func() {
		Encode(testHdr, msg)
	})
	if allocs != 1 {
		t.Errorf("Encode: %v allocs/op, want 1", allocs)
	}
}

// TestAppendBatchZeroAlloc pins the packing loop's hot-path contract.
func TestAppendBatchZeroAlloc(t *testing.T) {
	recs := sampleBatch().Records
	frames := make([]byte, 0, 4096)
	out := make([]byte, 0, 4096)
	allocs := testing.AllocsPerRun(100, func() {
		frames = frames[:0]
		for i := range recs {
			frames = AppendBatchRecord(frames, &recs[i])
		}
		out = AppendBatchDatagram(out[:0], testHdr, len(recs), frames)
	})
	if allocs != 0 {
		t.Errorf("batch packing into sized buffers: %v allocs/op, want 0", allocs)
	}
}

func BenchmarkProtocolBatchPack(b *testing.B) {
	recs := make([]Data, 32)
	for i := range recs {
		recs[i] = Data{Key: "load/000/12345", Ver: uint64(i), TTLms: 30000, Value: make([]byte, 64)}
	}
	frames := make([]byte, 0, 8192)
	out := make([]byte, 0, 8192)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		frames = frames[:0]
		for j := range recs {
			frames = AppendBatchRecord(frames, &recs[j])
		}
		out = AppendBatchDatagram(out[:0], testHdr, len(recs), frames)
	}
	_ = out
}

func BenchmarkProtocolBatchDecode(b *testing.B) {
	recs := make([]Data, 32)
	for i := range recs {
		recs[i] = Data{Key: "load/000/12345", Ver: uint64(i), TTLms: 30000, Value: make([]byte, 64)}
	}
	buf := Encode(testHdr, &DataBatch{Records: recs})
	dec := NewDecoder()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := dec.Decode(buf); err != nil {
			b.Fatal(err)
		}
	}
}
