package protocol

import (
	"bytes"
	"fmt"
	"testing"
)

// TestDecoderMatchesDecode pins the Decoder semantically identical to
// the package-level Decode for every message kind.
func TestDecoderMatchesDecode(t *testing.T) {
	dec := NewDecoder()
	for _, msg := range oneMessagePerType() {
		buf := Encode(testHdr, msg)
		wantHdr, want, err := Decode(buf)
		if err != nil {
			t.Fatalf("%v: Decode: %v", msg.Type(), err)
		}
		gotHdr, got, err := dec.Decode(buf)
		if err != nil {
			t.Fatalf("%v: Decoder.Decode: %v", msg.Type(), err)
		}
		if gotHdr != wantHdr {
			t.Errorf("%v: header %+v != %+v", msg.Type(), gotHdr, wantHdr)
		}
		if fmt.Sprintf("%+v", got) != fmt.Sprintf("%+v", want) {
			t.Errorf("%v:\ndecoder: %+v\ndecode:  %+v", msg.Type(), got, want)
		}
	}
}

// TestDecoderMatchesDecodeErrors: malformed inputs fail identically.
func TestDecoderMatchesDecodeErrors(t *testing.T) {
	dec := NewDecoder()
	for _, msg := range oneMessagePerType() {
		base := Encode(testHdr, msg)
		for cut := 0; cut < len(base); cut++ {
			_, _, want := Decode(base[:cut])
			_, _, got := dec.Decode(base[:cut])
			if got != want {
				t.Fatalf("%v cut at %d: decoder err %v, decode err %v", msg.Type(), cut, got, want)
			}
		}
		for i := 0; i < len(base); i++ {
			for _, v := range []byte{0x00, 0xFF, base[i] ^ 0x80} {
				b := mutate(base, i, v)
				_, _, want := Decode(b)
				_, _, got := dec.Decode(b)
				if got != want {
					t.Fatalf("%v byte %d -> %x: decoder err %v, decode err %v", msg.Type(), i, v, got, want)
				}
			}
		}
	}
}

// TestDecoderBatchValueStability: every record's value inside a batch
// must stay intact after later records are parsed (the arena must not
// reallocate mid-batch).
func TestDecoderBatchValueStability(t *testing.T) {
	recs := make([]Data, 64)
	for i := range recs {
		recs[i] = Data{
			Key:   fmt.Sprintf("g%02d/k", i),
			Ver:   uint64(i + 1),
			Value: bytes.Repeat([]byte{byte(i)}, 100+i),
		}
	}
	buf := Encode(testHdr, &DataBatch{Records: recs})
	dec := NewDecoder()
	_, m, err := dec.Decode(buf)
	if err != nil {
		t.Fatal(err)
	}
	batch := m.(*DataBatch)
	for i := range recs {
		if !bytes.Equal(batch.Records[i].Value, recs[i].Value) {
			t.Fatalf("record %d value corrupted after batch parse", i)
		}
	}
}

// TestDecoderSteadyStateZeroAlloc pins the receive-path contract: once
// keys are interned and buffers warmed, decoding Data and DataBatch
// datagrams allocates nothing.
func TestDecoderSteadyStateZeroAlloc(t *testing.T) {
	single := Encode(testHdr, &Data{Key: "load/000/1", Ver: 3, TTLms: 30000, Value: make([]byte, 64)})
	recs := make([]Data, 16)
	for i := range recs {
		recs[i] = Data{Key: fmt.Sprintf("load/%03d/%d", i, i), Ver: uint64(i + 1), TTLms: 30000, Value: make([]byte, 64)}
	}
	batch := Encode(testHdr, &DataBatch{Records: recs})
	summary := Encode(testHdr, &Summary{Path: "load", Count: 16})

	dec := NewDecoder()
	for _, buf := range [][]byte{single, batch, summary} {
		if _, _, err := dec.Decode(buf); err != nil { // warm interning + buffers
			t.Fatal(err)
		}
	}
	for name, buf := range map[string][]byte{"data": single, "batch": batch, "summary": summary} {
		allocs := testing.AllocsPerRun(200, func() {
			if _, _, err := dec.Decode(buf); err != nil {
				t.Fatal(err)
			}
		})
		if allocs != 0 {
			t.Errorf("%s: %v allocs/op in steady state, want 0", name, allocs)
		}
	}
}

// TestDecoderInternBound: the interning map resets rather than growing
// without bound under key churn.
func TestDecoderInternBound(t *testing.T) {
	dec := NewDecoder()
	dec.names = make(map[string]string, 4)
	for i := 0; i < internCap+8; i++ {
		dec.intern([]byte(fmt.Sprintf("k%d", i)))
	}
	if len(dec.names) > internCap {
		t.Fatalf("intern map grew to %d entries, cap %d", len(dec.names), internCap)
	}
}

// TestDecoderReuseAcrossCalls: a second Decode may clobber the first
// result (documented), but must produce correct fresh output.
func TestDecoderReuseAcrossCalls(t *testing.T) {
	dec := NewDecoder()
	a := Encode(testHdr, &Data{Key: "a", Ver: 1, Value: []byte("first")})
	b := Encode(testHdr, &Data{Key: "b", Ver: 2, Value: []byte("second-longer")})
	_, m1, err := dec.Decode(a)
	if err != nil {
		t.Fatal(err)
	}
	if got := m1.(*Data); got.Key != "a" || string(got.Value) != "first" {
		t.Fatalf("first decode: %+v", got)
	}
	_, m2, err := dec.Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	if got := m2.(*Data); got.Key != "b" || string(got.Value) != "second-longer" || got.Ver != 2 {
		t.Fatalf("second decode: %+v", got)
	}
}

func BenchmarkProtocolDecoderData(b *testing.B) {
	buf := Encode(testHdr, &Data{Key: "load/000/12345", Ver: 9, TTLms: 30000, Value: make([]byte, 64)})
	dec := NewDecoder()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := dec.Decode(buf); err != nil {
			b.Fatal(err)
		}
	}
}
