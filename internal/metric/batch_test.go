package metric

import (
	"math"
	"testing"

	"softstate/internal/xrand"
)

func TestBatchMeansConstantSignal(t *testing.T) {
	b := NewBatchMeans(0, 10)
	b.Observe(0, 3, 4) // constant 0.75
	b.Finish(100)
	if b.Batches() != 10 {
		t.Fatalf("Batches = %d, want 10", b.Batches())
	}
	if math.Abs(b.Mean()-0.75) > 1e-9 {
		t.Errorf("Mean = %v, want 0.75", b.Mean())
	}
	if b.CI95() > 1e-9 {
		t.Errorf("constant signal CI = %v, want 0", b.CI95())
	}
}

func TestBatchMeansPartialBatchDiscarded(t *testing.T) {
	b := NewBatchMeans(0, 10)
	b.Observe(0, 1, 1)
	b.Finish(25) // two full batches + half
	if b.Batches() != 2 {
		t.Errorf("Batches = %d, want 2", b.Batches())
	}
}

func TestBatchMeansAlternatingSignal(t *testing.T) {
	// c(t) alternates between 1 and 0 every 5 s; with 10 s batches
	// each batch sees exactly half of each → all batch means 0.5.
	b := NewBatchMeans(0, 10)
	for ts := 0; ts < 100; ts += 5 {
		c := 0
		if (ts/5)%2 == 0 {
			c = 1
		}
		b.Observe(float64(ts), c, 1)
	}
	b.Finish(100)
	if math.Abs(b.Mean()-0.5) > 1e-9 {
		t.Errorf("Mean = %v, want 0.5", b.Mean())
	}
	if b.CI95() > 1e-9 {
		t.Errorf("CI = %v, want 0", b.CI95())
	}
}

func TestBatchMeansCIShrinksWithDuration(t *testing.T) {
	noisy := func(dur float64, seed int64) float64 {
		rnd := xrand.New(seed)
		b := NewBatchMeans(0, 20)
		for ts := 0.0; ts < dur; ts += 1 {
			live := 10
			cons := rnd.Intn(live + 1)
			b.Observe(ts, cons, live)
		}
		b.Finish(dur)
		return b.CI95()
	}
	short := noisy(200, 1)
	long := noisy(5000, 1)
	if !(long < short) {
		t.Errorf("CI did not shrink with duration: short=%v long=%v", short, long)
	}
	if short <= 0 {
		t.Error("noisy signal should have a positive CI")
	}
}

func TestBatchMeansObservationGapSpansBatches(t *testing.T) {
	// A long gap between observations must still close intermediate
	// batches using the held state.
	b := NewBatchMeans(0, 10)
	b.Observe(0, 1, 1)
	b.Observe(55, 0, 1) // crosses 5 batch boundaries holding c=1
	b.Finish(60)
	if b.Batches() != 6 {
		t.Fatalf("Batches = %d, want 6", b.Batches())
	}
	// First five batches ≈ 1, sixth holds c=0 from t=55: mean = 5·1 +
	// (5s of 1 + 5s of 0)/10 = 5.5/6.
	want := (5.0 + 0.5) / 6
	if math.Abs(b.Mean()-want) > 1e-9 {
		t.Errorf("Mean = %v, want %v", b.Mean(), want)
	}
}

func TestBatchMeansValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero batch length accepted")
		}
	}()
	NewBatchMeans(0, 0)
}
