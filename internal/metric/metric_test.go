package metric

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestConsistencyConstant(t *testing.T) {
	m := NewConsistencyMeter(0)
	m.Observe(0, 3, 4) // c = 0.75 held for all 10s
	m.Finish(10)
	if !almost(m.Average(), 0.75, 1e-12) {
		t.Errorf("Average = %v, want 0.75", m.Average())
	}
	if !almost(m.BusyAverage(), 0.75, 1e-12) {
		t.Errorf("BusyAverage = %v", m.BusyAverage())
	}
	if !almost(m.BusyFraction(), 1, 1e-12) {
		t.Errorf("BusyFraction = %v", m.BusyFraction())
	}
}

func TestConsistencyTimeWeighting(t *testing.T) {
	m := NewConsistencyMeter(0)
	m.Observe(0, 1, 1) // c=1 for 1s
	m.Observe(1, 0, 1) // c=0 for 3s
	m.Finish(4)
	if !almost(m.Average(), 0.25, 1e-12) {
		t.Errorf("Average = %v, want 0.25", m.Average())
	}
}

func TestConsistencyEmptyIntervals(t *testing.T) {
	m := NewConsistencyMeter(0)
	m.Observe(0, 0, 0) // empty for 5s
	m.Observe(5, 1, 1) // c=1 for 5s
	m.Finish(10)
	if !almost(m.Average(), 0.5, 1e-12) {
		t.Errorf("Average with empty=0: %v, want 0.5", m.Average())
	}
	if !almost(m.BusyAverage(), 1, 1e-12) {
		t.Errorf("BusyAverage = %v, want 1", m.BusyAverage())
	}
	if !almost(m.BusyFraction(), 0.5, 1e-12) {
		t.Errorf("BusyFraction = %v, want 0.5", m.BusyFraction())
	}
}

func TestConsistencyEmptyValueOne(t *testing.T) {
	m := NewConsistencyMeter(0)
	m.SetEmptyValue(1)
	m.Observe(0, 0, 0)
	m.Observe(5, 0, 2) // c=0 for 5s
	m.Finish(10)
	if !almost(m.Average(), 0.5, 1e-12) {
		t.Errorf("Average with empty=1: %v, want 0.5", m.Average())
	}
}

func TestConsistencyRejectsInvalid(t *testing.T) {
	cases := []struct{ c, l int }{{-1, 0}, {2, 1}, {0, -1}}
	for _, tc := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Observe(%d,%d) did not panic", tc.c, tc.l)
				}
			}()
			NewConsistencyMeter(0).Observe(1, tc.c, tc.l)
		}()
	}
}

func TestConsistencyRejectsTimeReversal(t *testing.T) {
	m := NewConsistencyMeter(0)
	m.Observe(5, 1, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("backwards time did not panic")
		}
	}()
	m.Observe(4, 1, 1)
}

func TestConsistencyRange(t *testing.T) {
	m := NewConsistencyMeter(0)
	m.Observe(0, 1, 2)
	m.Observe(1, 3, 4)
	m.Observe(2, 0, 4)
	m.Finish(3)
	min, max := m.Range()
	if min != 0 || max != 0.75 {
		t.Errorf("Range = (%v, %v), want (0, 0.75)", min, max)
	}
}

func TestConsistencyRangeEmpty(t *testing.T) {
	m := NewConsistencyMeter(0)
	min, max := m.Range()
	if min != 0 || max != 0 {
		t.Errorf("empty Range = (%v, %v)", min, max)
	}
}

// Property: Average is always within [0, 1] and BusyAverage >= Average
// when the empty value is 0.
func TestPropertyMeterBounds(t *testing.T) {
	f := func(obs []struct {
		Dt   uint8
		C, L uint8
	}) bool {
		m := NewConsistencyMeter(0)
		now := 0.0
		for _, o := range obs {
			l := int(o.L % 8)
			c := 0
			if l > 0 {
				c = int(o.C) % (l + 1)
			}
			now += float64(o.Dt%100) / 10
			m.Observe(now, c, l)
		}
		m.Finish(now + 1)
		a, b := m.Average(), m.BusyAverage()
		return a >= 0 && a <= 1 && b >= 0 && b <= 1 && b >= a-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestLatencyTracker(t *testing.T) {
	lt := NewLatencyTracker()
	for _, d := range []float64{1, 2, 3, 4} {
		lt.ObserveDelivery(d)
	}
	lt.ObserveDeath()
	if lt.Count() != 4 || lt.Undelivered() != 1 {
		t.Fatalf("count=%d undeliv=%d", lt.Count(), lt.Undelivered())
	}
	if !almost(lt.Mean(), 2.5, 1e-12) {
		t.Errorf("Mean = %v", lt.Mean())
	}
	if !almost(lt.DeliveryRatio(), 0.8, 1e-12) {
		t.Errorf("DeliveryRatio = %v", lt.DeliveryRatio())
	}
	if lt.Quantile(0) != 1 || lt.Quantile(1) != 4 {
		t.Errorf("quantiles: %v %v", lt.Quantile(0), lt.Quantile(1))
	}
	if lt.Quantile(0.5) != 2 {
		t.Errorf("median = %v", lt.Quantile(0.5))
	}
}

func TestLatencyEmpty(t *testing.T) {
	lt := NewLatencyTracker()
	if lt.Mean() != 0 || lt.Quantile(0.5) != 0 || lt.DeliveryRatio() != 0 {
		t.Error("empty tracker should report zeros")
	}
}

func TestLatencyNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative latency did not panic")
		}
	}()
	NewLatencyTracker().ObserveDelivery(-1)
}

func TestBandwidthAccounting(t *testing.T) {
	var b BandwidthAccountant
	b.Useful(100)
	b.Redundant(300)
	b.Lost(100)
	b.Feedback(50)
	if b.DataBits() != 500 {
		t.Errorf("DataBits = %v", b.DataBits())
	}
	if !almost(b.RedundantFraction(), 0.75, 1e-12) {
		t.Errorf("RedundantFraction = %v", b.RedundantFraction())
	}
	if !almost(b.WastedFraction(), 0.8, 1e-12) {
		t.Errorf("WastedFraction = %v", b.WastedFraction())
	}
}

func TestBandwidthEmpty(t *testing.T) {
	var b BandwidthAccountant
	if b.RedundantFraction() != 0 || b.WastedFraction() != 0 {
		t.Error("empty accountant should report zeros")
	}
}

func TestSeries(t *testing.T) {
	var s Series
	if s.Last() != 0 || s.Mean() != 0 || s.TailMean(0.5) != 0 {
		t.Error("empty series should report zeros")
	}
	for i := 0; i < 10; i++ {
		s.Add(float64(i), float64(i))
	}
	if s.Len() != 10 || s.Last() != 9 {
		t.Errorf("Len=%d Last=%v", s.Len(), s.Last())
	}
	if !almost(s.Mean(), 4.5, 1e-12) {
		t.Errorf("Mean = %v", s.Mean())
	}
	if !almost(s.TailMean(0.5), 7, 1e-12) { // mean of 5..9
		t.Errorf("TailMean(0.5) = %v", s.TailMean(0.5))
	}
	if !almost(s.TailMean(2), s.Mean(), 1e-12) { // invalid frac -> all
		t.Errorf("TailMean(2) = %v", s.TailMean(2))
	}
}

func TestWelford(t *testing.T) {
	var w Welford
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		w.Add(x)
	}
	if w.N() != 8 {
		t.Fatalf("N = %d", w.N())
	}
	if !almost(w.Mean(), 5, 1e-12) {
		t.Errorf("Mean = %v", w.Mean())
	}
	// Population variance is 4; unbiased sample variance = 32/7.
	if !almost(w.Variance(), 32.0/7.0, 1e-9) {
		t.Errorf("Variance = %v", w.Variance())
	}
	if w.CI95() <= 0 {
		t.Errorf("CI95 = %v", w.CI95())
	}
}

func TestWelfordSmall(t *testing.T) {
	var w Welford
	w.Add(3)
	if w.Variance() != 0 || w.StdErr() != 0 {
		t.Error("single-sample variance should be 0")
	}
}
