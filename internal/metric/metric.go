// Package metric implements the measurement machinery for the
// soft-state model of Raman & McCanne (SIGCOMM '99), section 2.1.
//
// The central quantity is the consistency metric: for each live
// {key, value} pair, c(k, t) is the probability that publisher and
// subscriber hold the same value for key k. The instantaneous system
// consistency c(t) averages c(k, t) over the live set L(t), and the
// average system consistency E[c(t)] is the long-run time average of
// c(t). Empirically — as the paper prescribes — E[c(t)] is computed as
// the time average of the measured fraction of live items that are
// consistent.
//
// The package also provides the receive-latency tracker (T_rec: time
// from introduction of a new value to its first correct reception),
// bandwidth and redundancy accounting, and a generic time-series
// sampler used to regenerate the paper's time-series figures (Fig 8).
package metric

import (
	"fmt"
	"math"
	"sort"
)

// ConsistencyMeter computes the time-averaged system consistency
// E[c(t)] from a stream of (time, consistent, live) observations.
//
// The meter integrates c(t) = consistent/live over time. Following
// the paper's queueing analysis — where the empty-system state
// contributes zero to the sum over occupied states — intervals with
// an empty live set contribute 0 by default; SetEmptyValue(1)
// switches to the convention that an empty system is vacuously
// consistent. Both are reported so experiments can compare against
// either reading of the closed form.
type ConsistencyMeter struct {
	lastTime    float64
	lastC       float64
	lastLive    int
	started     bool
	integral    float64 // ∫ c(t) dt, empty intervals contribute emptyVal
	busyTime    float64 // total time with live > 0
	busyIntgrl  float64 // ∫ c(t) dt over busy time only
	totalTime   float64
	emptyVal    float64
	minC        float64
	maxC        float64
	everObserve bool
}

// NewConsistencyMeter returns a meter starting at time start.
func NewConsistencyMeter(start float64) *ConsistencyMeter {
	return &ConsistencyMeter{lastTime: start, minC: math.Inf(1), maxC: math.Inf(-1)}
}

// SetEmptyValue sets the value c(t) takes while the live set is empty
// (0 by default, matching the paper's occupied-state sum; 1 treats an
// empty system as vacuously consistent).
func (m *ConsistencyMeter) SetEmptyValue(v float64) { m.emptyVal = v }

// Observe records that at time now, `consistent` of `live` live
// records are consistent. Observations must be non-decreasing in
// time. consistent must not exceed live.
func (m *ConsistencyMeter) Observe(now float64, consistent, live int) {
	if consistent < 0 || live < 0 || consistent > live {
		panic(fmt.Sprintf("metric: invalid observation consistent=%d live=%d", consistent, live))
	}
	if now < m.lastTime {
		panic(fmt.Sprintf("metric: time went backwards: %v < %v", now, m.lastTime))
	}
	m.accumulate(now)
	if live > 0 {
		m.lastC = float64(consistent) / float64(live)
		m.everObserve = true
		if m.lastC < m.minC {
			m.minC = m.lastC
		}
		if m.lastC > m.maxC {
			m.maxC = m.lastC
		}
	} else {
		m.lastC = 0
	}
	m.lastLive = live
	m.started = true
}

// accumulate integrates the held value of c(t) up to now.
func (m *ConsistencyMeter) accumulate(now float64) {
	dt := now - m.lastTime
	if dt <= 0 {
		m.lastTime = now
		return
	}
	m.totalTime += dt
	if m.started {
		if m.lastLive > 0 {
			m.integral += m.lastC * dt
			m.busyIntgrl += m.lastC * dt
			m.busyTime += dt
		} else {
			m.integral += m.emptyVal * dt
		}
	} else {
		m.integral += m.emptyVal * dt
	}
	m.lastTime = now
}

// Finish closes the integration interval at time end.
func (m *ConsistencyMeter) Finish(end float64) { m.accumulate(end) }

// Average returns E[c(t)]: the time average of c(t) including empty
// intervals (valued at the configured empty value).
func (m *ConsistencyMeter) Average() float64 {
	if m.totalTime == 0 {
		return 0
	}
	return m.integral / m.totalTime
}

// BusyAverage returns the time average of c(t) over intervals with a
// non-empty live set — the fraction of live items that are consistent,
// which is how the paper's simulations report consistency.
func (m *ConsistencyMeter) BusyAverage() float64 {
	if m.busyTime == 0 {
		return 0
	}
	return m.busyIntgrl / m.busyTime
}

// BusyFraction returns the fraction of time the live set was
// non-empty (the empirical analogue of the utilization ρ).
func (m *ConsistencyMeter) BusyFraction() float64 {
	if m.totalTime == 0 {
		return 0
	}
	return m.busyTime / m.totalTime
}

// Range returns the minimum and maximum observed instantaneous
// consistency. If nothing was observed, both are zero.
func (m *ConsistencyMeter) Range() (min, max float64) {
	if !m.everObserve {
		return 0, 0
	}
	return m.minC, m.maxC
}

// LatencyTracker measures receive latency T_rec: the time from the
// instant a new or updated {key, value} pair is introduced until it is
// first received correctly. As in the paper, the average is taken only
// over successful deliveries; items that die before delivery are
// counted separately.
type LatencyTracker struct {
	samples []float64
	sum     float64
	undeliv int
	sorted  bool
}

// NewLatencyTracker returns an empty tracker.
func NewLatencyTracker() *LatencyTracker { return &LatencyTracker{} }

// ObserveDelivery records a successful first reception with latency d.
func (t *LatencyTracker) ObserveDelivery(d float64) {
	if d < 0 {
		panic(fmt.Sprintf("metric: negative latency %v", d))
	}
	t.samples = append(t.samples, d)
	t.sum += d
	t.sorted = false
}

// ObserveDeath records an item that expired before ever being
// delivered. Such items are excluded from the latency average, exactly
// as the paper's T_rec measurement excludes them.
func (t *LatencyTracker) ObserveDeath() { t.undeliv++ }

// Count returns the number of successful deliveries observed.
func (t *LatencyTracker) Count() int { return len(t.samples) }

// Undelivered returns the number of items that died undelivered.
func (t *LatencyTracker) Undelivered() int { return t.undeliv }

// DeliveryRatio returns delivered / (delivered + died-undelivered).
func (t *LatencyTracker) DeliveryRatio() float64 {
	total := len(t.samples) + t.undeliv
	if total == 0 {
		return 0
	}
	return float64(len(t.samples)) / float64(total)
}

// Mean returns the mean latency over successful deliveries.
func (t *LatencyTracker) Mean() float64 {
	if len(t.samples) == 0 {
		return 0
	}
	return t.sum / float64(len(t.samples))
}

// Quantile returns the q-quantile (0 <= q <= 1) of delivery latency.
func (t *LatencyTracker) Quantile(q float64) float64 {
	if len(t.samples) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	if !t.sorted {
		sort.Float64s(t.samples)
		t.sorted = true
	}
	idx := int(q * float64(len(t.samples)-1))
	return t.samples[idx]
}

// BandwidthAccountant tracks how the channel's transmissions divide
// into useful (made an inconsistent item consistent), redundant
// (retransmission of an already-consistent item), lost, and feedback
// messages. The redundant fraction reproduces the paper's Figure 4.
type BandwidthAccountant struct {
	UsefulBits    float64
	RedundantBits float64
	LostBits      float64
	FeedbackBits  float64
}

// Useful records a transmission that delivered new information.
func (b *BandwidthAccountant) Useful(bits float64) { b.UsefulBits += bits }

// Redundant records a transmission of data the receiver already had.
func (b *BandwidthAccountant) Redundant(bits float64) { b.RedundantBits += bits }

// Lost records a transmission dropped by the channel.
func (b *BandwidthAccountant) Lost(bits float64) { b.LostBits += bits }

// Feedback records feedback-channel usage (NACKs, receiver reports).
func (b *BandwidthAccountant) Feedback(bits float64) { b.FeedbackBits += bits }

// DataBits returns the total data-channel bits sent.
func (b *BandwidthAccountant) DataBits() float64 {
	return b.UsefulBits + b.RedundantBits + b.LostBits
}

// RedundantFraction returns the fraction of *delivered* data
// transmissions that were redundant — λ̂_C / (λ̂_C + λ̂_I·(1-p_c))
// empirically; this is the quantity plotted in Figure 4.
func (b *BandwidthAccountant) RedundantFraction() float64 {
	delivered := b.UsefulBits + b.RedundantBits
	if delivered == 0 {
		return 0
	}
	return b.RedundantBits / delivered
}

// WastedFraction returns the fraction of all data bits that did not
// increase consistency (redundant or lost).
func (b *BandwidthAccountant) WastedFraction() float64 {
	total := b.DataBits()
	if total == 0 {
		return 0
	}
	return (b.RedundantBits + b.LostBits) / total
}

// Point is one sample of a time series.
type Point struct {
	T float64
	V float64
}

// Series collects (t, v) samples, used for the paper's time-series
// plots (e.g. Figure 8's consistency-vs-time traces).
type Series struct {
	Name   string
	Points []Point
}

// Add appends a sample. Samples should be added in time order.
func (s *Series) Add(t, v float64) { s.Points = append(s.Points, Point{t, v}) }

// Len returns the number of samples.
func (s *Series) Len() int { return len(s.Points) }

// Last returns the most recent sample value, or 0 if empty.
func (s *Series) Last() float64 {
	if len(s.Points) == 0 {
		return 0
	}
	return s.Points[len(s.Points)-1].V
}

// Mean returns the unweighted mean of the sampled values.
func (s *Series) Mean() float64 {
	if len(s.Points) == 0 {
		return 0
	}
	sum := 0.0
	for _, p := range s.Points {
		sum += p.V
	}
	return sum / float64(len(s.Points))
}

// TailMean returns the mean of the final frac (0..1] of samples — a
// steady-state estimate that discards the warm-up transient.
func (s *Series) TailMean(frac float64) float64 {
	n := len(s.Points)
	if n == 0 {
		return 0
	}
	if frac <= 0 || frac > 1 {
		frac = 1
	}
	start := n - int(float64(n)*frac)
	if start >= n {
		start = n - 1
	}
	sum := 0.0
	for _, p := range s.Points[start:] {
		sum += p.V
	}
	return sum / float64(n-start)
}

// Welford accumulates a running mean and variance (Welford's
// algorithm), used for confidence reporting across replicated runs.
type Welford struct {
	n    int
	mean float64
	m2   float64
}

// Add incorporates one sample.
func (w *Welford) Add(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// N returns the sample count.
func (w *Welford) N() int { return w.n }

// Mean returns the sample mean.
func (w *Welford) Mean() float64 { return w.mean }

// Variance returns the unbiased sample variance.
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// StdErr returns the standard error of the mean.
func (w *Welford) StdErr() float64 {
	if w.n < 2 {
		return 0
	}
	return math.Sqrt(w.Variance() / float64(w.n))
}

// CI95 returns an approximate 95% confidence half-width (1.96·SE).
func (w *Welford) CI95() float64 { return 1.96 * w.StdErr() }
