package metric

import "fmt"

// BatchMeans estimates a confidence interval for a time-averaged
// quantity from a single long run using the method of batch means: the
// run is split into fixed-length batches, each batch's time average is
// one (approximately independent) sample, and the CI follows from the
// sample variance of the batch means.
type BatchMeans struct {
	batchLen float64
	cur      *ConsistencyMeter
	curEnd   float64
	started  bool
	w        Welford

	lastCons int
	lastLive int
}

// NewBatchMeans returns an estimator with the given batch length in
// simulated seconds, starting at time start.
func NewBatchMeans(start, batchLen float64) *BatchMeans {
	if batchLen <= 0 {
		panic(fmt.Sprintf("metric: batch length %v must be positive", batchLen))
	}
	return &BatchMeans{
		batchLen: batchLen,
		cur:      NewConsistencyMeter(start),
		curEnd:   start + batchLen,
	}
}

// Observe records an observation, rolling batches as time passes.
func (b *BatchMeans) Observe(now float64, consistent, live int) {
	for now >= b.curEnd {
		// Close the current batch at its boundary and open the next,
		// carrying the held state across.
		b.cur.Observe(b.curEnd, b.lastCons, b.lastLive)
		b.cur.Finish(b.curEnd)
		b.w.Add(b.cur.BusyAverage())
		b.cur = NewConsistencyMeter(b.curEnd)
		b.cur.Observe(b.curEnd, b.lastCons, b.lastLive)
		b.curEnd += b.batchLen
	}
	b.cur.Observe(now, consistent, live)
	b.lastCons, b.lastLive = consistent, live
	b.started = true
}

// Finish closes the estimator at time end (partial final batches are
// discarded, as is standard for batch means).
func (b *BatchMeans) Finish(end float64) {
	for end >= b.curEnd {
		b.cur.Observe(b.curEnd, b.lastCons, b.lastLive)
		b.cur.Finish(b.curEnd)
		b.w.Add(b.cur.BusyAverage())
		b.cur = NewConsistencyMeter(b.curEnd)
		b.cur.Observe(b.curEnd, b.lastCons, b.lastLive)
		b.curEnd += b.batchLen
	}
}

// Batches returns the number of completed batches.
func (b *BatchMeans) Batches() int { return b.w.N() }

// Mean returns the mean of the batch means.
func (b *BatchMeans) Mean() float64 { return b.w.Mean() }

// CI95 returns the 95% confidence half-width over the batch means
// (0 until at least two batches complete).
func (b *BatchMeans) CI95() float64 { return b.w.CI95() }
