package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"softstate/internal/trace"
)

func TestAdminEndpoints(t *testing.T) {
	reg := New("testd")
	reg.Counter("sstp_announcements_total", "queue", "hot").Add(5)
	reg.Gauge("sstp_records_live").Set(2)
	ring := trace.NewSafe(16)
	ring.Record(1, trace.Arrive, "a/b", -1)
	ring.Record(2, trace.Deliver, "a/b", 0)
	ring.Record(3, trace.Arrive, "c", -1)

	srv := httptest.NewServer(AdminHandler(reg, ring))
	defer srv.Close()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	code, body := get("/metrics")
	if code != 200 || !strings.Contains(body, `sstp_announcements_total{queue="hot"} 5`) {
		t.Errorf("/metrics = %d %q", code, body)
	}

	code, body = get("/stats.json")
	if code != 200 {
		t.Fatalf("/stats.json = %d", code)
	}
	var stats struct {
		Registry string   `json:"registry"`
		Metrics  []Sample `json:"metrics"`
	}
	if err := json.Unmarshal([]byte(body), &stats); err != nil {
		t.Fatalf("/stats.json parse: %v", err)
	}
	if stats.Registry != "testd" || len(stats.Metrics) != 2 {
		t.Errorf("/stats.json = %+v", stats)
	}

	code, body = get("/trace")
	if code != 200 || strings.Count(body, "\n") != 3 {
		t.Errorf("/trace = %d %q", code, body)
	}
	code, body = get("/trace?key=a/b&n=1")
	if code != 200 || strings.Count(body, "\n") != 1 || !strings.Contains(body, "DELIVER") {
		t.Errorf("/trace filtered = %d %q", code, body)
	}
	if code, _ := get("/trace?n=bogus"); code != 400 {
		t.Errorf("bad n = %d", code)
	}

	if code, body := get("/debug/pprof/"); code != 200 || !strings.Contains(body, "profile") {
		t.Errorf("/debug/pprof/ = %d", code)
	}
	if code, _ := get("/debug/pprof/cmdline"); code != 200 {
		t.Errorf("/debug/pprof/cmdline = %d", code)
	}

	if code, body := get("/"); code != 200 || !strings.Contains(body, "/metrics") {
		t.Errorf("index = %d %q", code, body)
	}
	if code, _ := get("/nope"); code != 404 {
		t.Errorf("unknown path = %d", code)
	}
}

func TestAdminNilRing(t *testing.T) {
	srv := httptest.NewServer(AdminHandler(New("x"), nil))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 404 {
		t.Errorf("/trace with nil ring = %d", resp.StatusCode)
	}
}

func TestServeAdmin(t *testing.T) {
	srv, addr, err := ServeAdmin("127.0.0.1:0", New("d"), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	resp, err := http.Get("http://" + addr.String() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Errorf("/metrics = %d", resp.StatusCode)
	}
}
