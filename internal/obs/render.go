package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// formatValue renders a float without trailing noise: integers print
// as integers, everything else with minimal digits.
func formatValue(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', 6, 64)
}

// promKind maps an instrument kind to its Prometheus type keyword.
func promKind(k kind) string {
	switch k {
	case kindCounter:
		return "counter"
	case kindHistogram:
		return "histogram"
	default:
		return "gauge" // gauges and EWMA rates both render as gauges
	}
}

// WritePrometheus renders every instrument in the Prometheus text
// exposition format (version 0.0.4): one # TYPE comment per metric
// name, histograms expanded into cumulative _bucket/_sum/_count
// series.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	ins := make([]*instrument, 0, len(r.byID))
	for _, in := range r.byID {
		ins = append(ins, in)
	}
	r.mu.RUnlock()
	sort.Slice(ins, func(i, j int) bool {
		if ins[i].name != ins[j].name {
			return ins[i].name < ins[j].name
		}
		return ins[i].labels < ins[j].labels
	})
	lastName := ""
	for _, in := range ins {
		if in.name != lastName {
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", in.name, promKind(in.kind)); err != nil {
				return err
			}
			lastName = in.name
		}
		switch in.kind {
		case kindCounter:
			if err := writeSeries(w, in.name, in.labels, float64(in.c.Value())); err != nil {
				return err
			}
		case kindGauge:
			if err := writeSeries(w, in.name, in.labels, in.g.Value()); err != nil {
				return err
			}
		case kindEWMA:
			if err := writeSeries(w, in.name, in.labels, in.e.Rate()); err != nil {
				return err
			}
		case kindHistogram:
			bounds, counts := in.h.cumulative()
			for i, b := range bounds {
				le := "+Inf"
				if !math.IsInf(b, 1) {
					le = formatValue(b)
				}
				ls := in.labels
				if ls != "" {
					ls += ","
				}
				ls += `le="` + le + `"`
				if err := writeSeries(w, in.name+"_bucket", ls, float64(counts[i])); err != nil {
					return err
				}
			}
			if err := writeSeries(w, in.name+"_sum", in.labels, in.h.Sum()); err != nil {
				return err
			}
			if err := writeSeries(w, in.name+"_count", in.labels, float64(in.h.Count())); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeSeries(w io.Writer, name, labels string, v float64) error {
	if labels == "" {
		_, err := fmt.Fprintf(w, "%s %s\n", name, formatValue(v))
		return err
	}
	_, err := fmt.Fprintf(w, "%s{%s} %s\n", name, labels, formatValue(v))
	return err
}

// RenderText returns the snapshot as aligned key/value lines — the
// human view used by sstpd's STATS command. Histograms render as
// count/mean/p50/p95.
func (r *Registry) RenderText() string {
	samples := r.Snapshot()
	if len(samples) == 0 {
		return "(no metrics)\n"
	}
	width := 0
	ids := make([]string, len(samples))
	for i, s := range samples {
		ids[i] = s.ID()
		if len(ids[i]) > width {
			width = len(ids[i])
		}
	}
	var b strings.Builder
	for i, s := range samples {
		if s.Kind == "histogram" {
			fmt.Fprintf(&b, "%-*s  count=%d mean=%.4g p50=%.4g p95=%.4g\n",
				width, ids[i], s.Count, s.Value, s.P50, s.P95)
			continue
		}
		fmt.Fprintf(&b, "%-*s  %s\n", width, ids[i], formatValue(s.Value))
	}
	return b.String()
}

// OneLine summarizes the named series (all series sharing a name are
// summed) as "name=value" pairs — the periodic log line behind
// sstpd's -statsevery flag. Unknown names render as 0.
func (r *Registry) OneLine(names ...string) string {
	totals := make(map[string]float64, len(names))
	for _, s := range r.Snapshot() {
		if s.Kind == "histogram" {
			totals[s.Name] += float64(s.Count)
		} else {
			totals[s.Name] += s.Value
		}
	}
	parts := make([]string, 0, len(names))
	for _, n := range names {
		short := strings.TrimPrefix(strings.TrimSuffix(n, "_total"), "sstp_")
		parts = append(parts, short+"="+formatValue(totals[n]))
	}
	return strings.Join(parts, " ")
}
