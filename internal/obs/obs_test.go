package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGauge(t *testing.T) {
	r := New("test")
	c := r.Counter("requests_total")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Errorf("counter = %d", c.Value())
	}
	if r.Counter("requests_total") != c {
		t.Error("same name returned a different counter")
	}
	g := r.Gauge("temp")
	g.Set(3.5)
	g.Add(-1)
	if g.Value() != 2.5 {
		t.Errorf("gauge = %v", g.Value())
	}
}

func TestLabelsCanonical(t *testing.T) {
	r := New("test")
	a := r.Counter("x_total", "b", "2", "a", "1")
	b := r.Counter("x_total", "a", "1", "b", "2")
	if a != b {
		t.Error("label order changed series identity")
	}
	a.Inc()
	if got := r.Get("x_total", "a", "1", "b", "2"); got != 1 {
		t.Errorf("Get = %v", got)
	}
	samples := r.Snapshot()
	if len(samples) != 1 || samples[0].ID() != `x_total{a="1",b="2"}` {
		t.Errorf("snapshot = %+v", samples)
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := New("test")
	r.Counter("thing")
	defer func() {
		if recover() == nil {
			t.Fatal("kind mismatch did not panic")
		}
	}()
	r.Gauge("thing")
}

func TestOddLabelsPanics(t *testing.T) {
	r := New("test")
	defer func() {
		if recover() == nil {
			t.Fatal("odd label list did not panic")
		}
	}()
	r.Counter("x_total", "keyonly")
}

func TestNilRegistryAndInstruments(t *testing.T) {
	var r *Registry
	// Every accessor must hand out a usable nil instrument.
	r.Counter("a").Inc()
	r.Gauge("b").Set(1)
	r.Rate("c").Add(1)
	r.Histogram("d").Observe(1)
	if r.Snapshot() != nil || r.Get("a") != 0 || r.Name() != "" {
		t.Error("nil registry leaked state")
	}
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil || sb.Len() != 0 {
		t.Error("nil registry rendered output")
	}
	var c *Counter
	var g *Gauge
	var e *EWMA
	var h *Histogram
	c.Inc()
	g.Add(1)
	e.Add(1)
	h.Observe(1)
	if c.Value() != 0 || g.Value() != 0 || e.Rate() != 0 || h.Count() != 0 || h.Quantile(0.5) != 0 {
		t.Error("nil instruments leaked state")
	}
}

func TestEWMA(t *testing.T) {
	e := NewEWMA(10)
	// 100 units/s for 5 seconds of simulated time.
	for i := 0; i <= 50; i++ {
		e.AddAt(float64(i)*0.1, 10)
	}
	r := e.RateAt(5)
	if r < 50 || r > 150 {
		t.Errorf("rate after steady 100/s = %v", r)
	}
	// Silence decays the estimate when the next fold happens.
	r2 := e.RateAt(60)
	if r2 >= r {
		t.Errorf("rate did not decay: %v -> %v", r, r2)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4, 8})
	for _, v := range []float64{0.5, 1.5, 3, 3, 5, 100} {
		h.Observe(v)
	}
	if h.Count() != 6 {
		t.Errorf("count = %d", h.Count())
	}
	if got := h.Sum(); math.Abs(got-113) > 1e-9 {
		t.Errorf("sum = %v", got)
	}
	if q := h.Quantile(0.5); q != 4 { // 3rd of 6 lands in the (2,4] bucket
		t.Errorf("p50 = %v", q)
	}
	if q := h.Quantile(1); q != 8 { // +Inf bucket reports the top finite bound
		t.Errorf("p100 = %v", q)
	}
	bounds, counts := h.cumulative()
	if !math.IsInf(bounds[len(bounds)-1], 1) {
		t.Errorf("last bound = %v", bounds)
	}
	if counts[len(counts)-1] != 6 {
		t.Errorf("cumulative = %v", counts)
	}
}

func TestHistogramBadBoundsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("non-ascending bounds accepted")
		}
	}()
	NewHistogram([]float64{1, 1})
}

// TestPrometheusGolden pins the exact text exposition format.
func TestPrometheusGolden(t *testing.T) {
	r := New("golden")
	r.Counter("sstp_announcements_total", "queue", "hot").Add(7)
	r.Counter("sstp_announcements_total", "queue", "cold").Add(3)
	r.Gauge("sstp_records_live").Set(12)
	h := r.lookup("sstp_t_rec_seconds", nil, kindHistogram, func() *instrument {
		return &instrument{h: NewHistogram([]float64{0.5, 1})}
	}).h
	h.Observe(0.25)
	h.Observe(0.75)
	h.Observe(4)

	const want = `# TYPE sstp_announcements_total counter
sstp_announcements_total{queue="cold"} 3
sstp_announcements_total{queue="hot"} 7
# TYPE sstp_records_live gauge
sstp_records_live 12
# TYPE sstp_t_rec_seconds histogram
sstp_t_rec_seconds_bucket{le="0.5"} 1
sstp_t_rec_seconds_bucket{le="1"} 2
sstp_t_rec_seconds_bucket{le="+Inf"} 3
sstp_t_rec_seconds_sum 5
sstp_t_rec_seconds_count 3
`
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if sb.String() != want {
		t.Errorf("prometheus text mismatch:\n--- got ---\n%s--- want ---\n%s", sb.String(), want)
	}
}

func TestRenderTextAndOneLine(t *testing.T) {
	r := New("t")
	r.Counter("sstp_deliveries_total").Add(9)
	r.Counter("sstp_announcements_total", "queue", "hot").Add(2)
	r.Counter("sstp_announcements_total", "queue", "cold").Add(1)
	r.Histogram("lat_seconds").Observe(0.5)
	text := r.RenderText()
	for _, want := range []string{`sstp_announcements_total{queue="hot"}`, "sstp_deliveries_total", "count=1"} {
		if !strings.Contains(text, want) {
			t.Errorf("RenderText missing %q:\n%s", want, text)
		}
	}
	line := r.OneLine("sstp_deliveries_total", "sstp_announcements_total", "missing_total")
	if line != "deliveries=9 announcements=3 missing=0" {
		t.Errorf("OneLine = %q", line)
	}
}

// TestConcurrentRegistry exercises parallel writers against snapshot
// and render readers — the -race acceptance test for the registry.
func TestConcurrentRegistry(t *testing.T) {
	r := New("race")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			q := "hot"
			if w%2 == 1 {
				q = "cold"
			}
			for i := 0; i < 1000; i++ {
				r.Counter("sstp_announcements_total", "queue", q).Inc()
				r.Gauge("sstp_records_live").Set(float64(i))
				r.Histogram("sstp_t_rec_seconds").Observe(float64(i%7) * 0.01)
				r.Rate("sstp_publish_bps").Add(100)
			}
		}(w)
	}
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var sb strings.Builder
			for i := 0; i < 200; i++ {
				_ = r.Snapshot()
				sb.Reset()
				_ = r.WritePrometheus(&sb)
				_ = r.RenderText()
			}
		}()
	}
	wg.Wait()
	hot := r.Get("sstp_announcements_total", "queue", "hot")
	cold := r.Get("sstp_announcements_total", "queue", "cold")
	if hot+cold != 8000 {
		t.Errorf("announcements hot=%v cold=%v, want 8000 total", hot, cold)
	}
	if r.Get("sstp_t_rec_seconds") != 8000 {
		t.Errorf("histogram count = %v", r.Get("sstp_t_rec_seconds"))
	}
}
