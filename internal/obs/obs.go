// Package obs is the runtime observability layer shared by the live
// SSTP stack and the offline simulators: atomic counters, gauges,
// EWMA rates, and log-bucketed histograms behind a named registry
// that supports point-in-time snapshots and Prometheus text
// rendering.
//
// The package is dependency-free (stdlib only) and designed so that
// instrumentation costs nothing when disabled: a nil *Registry hands
// out nil instruments, and every instrument method is a no-op on its
// nil receiver. Code therefore wires metrics unconditionally —
//
//	m.deliveries.Inc()
//
// — and the caller decides whether anything is recorded by passing a
// registry or not.
//
// Sim and live runs share one metric namespace (the sstp_* catalog in
// the README), which makes a simulator prediction and a production
// run directly comparable series-for-series.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing counter. All methods are safe
// for concurrent use and are no-ops on a nil receiver.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a float64 value that can go up and down. Safe for
// concurrent use; no-op on a nil receiver.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add adds delta to the gauge.
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// EWMA estimates an exponentially weighted moving rate (units per
// second) from a stream of Add calls. Updates are accumulated and
// folded into the rate at most once per second, so irregular bursts do
// not destabilize the estimate. Timestamps are wall-clock by default
// (Add); explicit-time callers (simulators) use AddAt/RateAt.
type EWMA struct {
	mu     sync.Mutex
	tau    float64 // time constant, seconds
	rate   float64
	acc    float64
	last   float64
	primed bool // saw the first observation
	seeded bool // rate holds at least one folded interval
}

// NewEWMA returns a rate estimator with the given time constant in
// seconds (larger = smoother). Non-positive tau defaults to 10 s.
func NewEWMA(tau float64) *EWMA {
	if tau <= 0 {
		tau = 10
	}
	return &EWMA{tau: tau}
}

func wallSeconds() float64 { return float64(time.Now().UnixNano()) / 1e9 }

// Add records n units now.
func (e *EWMA) Add(n float64) { e.AddAt(wallSeconds(), n) }

// AddAt records n units at the given time in seconds.
func (e *EWMA) AddAt(now, n float64) {
	if e == nil {
		return
	}
	e.mu.Lock()
	e.tick(now)
	e.acc += n
	e.mu.Unlock()
}

// tick folds the accumulated units into the rate if at least one
// second elapsed since the last fold. Caller holds e.mu.
func (e *EWMA) tick(now float64) {
	if !e.primed {
		e.primed = true
		e.last = now
		return
	}
	elapsed := now - e.last
	if elapsed < 1 {
		return
	}
	inst := e.acc / elapsed
	if !e.seeded {
		e.rate = inst
		e.seeded = true
	} else {
		w := math.Exp(-elapsed / e.tau)
		e.rate = e.rate*w + inst*(1-w)
	}
	e.acc = 0
	e.last = now
}

// Rate returns the smoothed rate in units per second as of now.
func (e *EWMA) Rate() float64 { return e.RateAt(wallSeconds()) }

// RateAt returns the smoothed rate as of the given time.
func (e *EWMA) RateAt(now float64) float64 {
	if e == nil {
		return 0
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	e.tick(now)
	return e.rate
}

// Histogram is a log-bucketed histogram: bucket upper bounds grow
// geometrically (×2) from a configurable start. Observations are
// lock-free atomic increments; Observe is a no-op on a nil receiver.
type Histogram struct {
	bounds  []float64 // ascending upper bounds; implicit +Inf last
	buckets []atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Uint64 // float64 bits, CAS-accumulated
}

// DefaultLatencyBounds are the default histogram buckets: ×2 from
// 1 ms to ~1000 s — wide enough for both repair latencies and
// soft-state lifetimes.
func DefaultLatencyBounds() []float64 {
	bounds := make([]float64, 0, 21)
	for b := 0.001; b < 2000; b *= 2 {
		bounds = append(bounds, b)
	}
	return bounds
}

// NewHistogram returns a histogram with the given ascending bucket
// upper bounds (a final +Inf bucket is implicit). Nil bounds use
// DefaultLatencyBounds.
func NewHistogram(bounds []float64) *Histogram {
	if bounds == nil {
		bounds = DefaultLatencyBounds()
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram bounds not ascending at %d: %v", i, bounds))
		}
	}
	return &Histogram{bounds: bounds, buckets: make([]atomic.Uint64, len(bounds)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// Mean returns the mean observed value (0 when empty).
func (h *Histogram) Mean() float64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return h.Sum() / float64(n)
}

// Quantile estimates the q-quantile (0 < q < 1) from the bucket
// counts, attributing each bucket its upper bound (the +Inf bucket
// reports the largest finite bound). Returns 0 when empty.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	target := uint64(math.Ceil(q * float64(total)))
	if target < 1 {
		target = 1
	}
	var cum uint64
	for i := range h.buckets {
		cum += h.buckets[i].Load()
		if cum >= target {
			if i < len(h.bounds) {
				return h.bounds[i]
			}
			return h.bounds[len(h.bounds)-1]
		}
	}
	return h.bounds[len(h.bounds)-1]
}

// cumulative returns (upper bounds with +Inf, cumulative counts).
func (h *Histogram) cumulative() ([]float64, []uint64) {
	bounds := make([]float64, len(h.buckets))
	copy(bounds, h.bounds)
	bounds[len(bounds)-1] = math.Inf(1)
	counts := make([]uint64, len(h.buckets))
	var cum uint64
	for i := range h.buckets {
		cum += h.buckets[i].Load()
		counts[i] = cum
	}
	return bounds, counts
}

// kind discriminates instrument types within a registry.
type kind int

const (
	kindCounter kind = iota
	kindGauge
	kindEWMA
	kindHistogram
)

func (k kind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	case kindEWMA:
		return "rate"
	case kindHistogram:
		return "histogram"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// instrument is one named metric in a registry.
type instrument struct {
	name   string
	labels string // canonical rendered label pairs, "" when unlabeled
	kind   kind

	c *Counter
	g *Gauge
	e *EWMA
	h *Histogram
}

// Registry is a named collection of instruments. Instruments are
// created (or found) by name + label set; asking twice for the same
// name and labels returns the same instrument, so independent
// components can share a series. All methods are safe for concurrent
// use and return nil instruments on a nil receiver.
type Registry struct {
	name string

	mu   sync.RWMutex
	byID map[string]*instrument
}

// New returns an empty registry. The name is informational (it
// appears in snapshots, not in metric names).
func New(name string) *Registry {
	return &Registry{name: name, byID: make(map[string]*instrument)}
}

// Name returns the registry's name.
func (r *Registry) Name() string {
	if r == nil {
		return ""
	}
	return r.name
}

// labelString canonicalizes alternating key, value label pairs into a
// deterministic Prometheus-style rendering: k1="v1",k2="v2" sorted by
// key.
func labelString(labels []string) string {
	if len(labels) == 0 {
		return ""
	}
	if len(labels)%2 != 0 {
		panic(fmt.Sprintf("obs: odd label list %q (want key, value pairs)", labels))
	}
	type kv struct{ k, v string }
	pairs := make([]kv, 0, len(labels)/2)
	for i := 0; i < len(labels); i += 2 {
		pairs = append(pairs, kv{labels[i], labels[i+1]})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].k < pairs[j].k })
	var b strings.Builder
	for i, p := range pairs {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", p.k, p.v)
	}
	return b.String()
}

// lookup finds or creates the instrument for (name, labels), using
// mk to build a fresh one. It panics when the same series was already
// registered with a different kind — that is always a wiring bug.
func (r *Registry) lookup(name string, labels []string, k kind, mk func() *instrument) *instrument {
	ls := labelString(labels)
	id := name + "{" + ls + "}"
	r.mu.RLock()
	in, ok := r.byID[id]
	r.mu.RUnlock()
	if !ok {
		r.mu.Lock()
		in, ok = r.byID[id]
		if !ok {
			in = mk()
			in.name, in.labels, in.kind = name, ls, k
			r.byID[id] = in
		}
		r.mu.Unlock()
	}
	if in.kind != k {
		panic(fmt.Sprintf("obs: %s already registered as %v, requested as %v", id, in.kind, k))
	}
	return in
}

// Counter finds or creates a counter. Labels are alternating key,
// value pairs: Counter("sstp_announcements_total", "queue", "hot").
func (r *Registry) Counter(name string, labels ...string) *Counter {
	if r == nil {
		return nil
	}
	return r.lookup(name, labels, kindCounter, func() *instrument {
		return &instrument{c: &Counter{}}
	}).c
}

// Gauge finds or creates a gauge.
func (r *Registry) Gauge(name string, labels ...string) *Gauge {
	if r == nil {
		return nil
	}
	return r.lookup(name, labels, kindGauge, func() *instrument {
		return &instrument{g: &Gauge{}}
	}).g
}

// Rate finds or creates an EWMA rate with a 10 s time constant.
func (r *Registry) Rate(name string, labels ...string) *EWMA {
	if r == nil {
		return nil
	}
	return r.lookup(name, labels, kindEWMA, func() *instrument {
		return &instrument{e: NewEWMA(10)}
	}).e
}

// Histogram finds or creates a log-bucketed histogram with the
// default latency bounds.
func (r *Registry) Histogram(name string, labels ...string) *Histogram {
	if r == nil {
		return nil
	}
	return r.lookup(name, labels, kindHistogram, func() *instrument {
		return &instrument{h: NewHistogram(nil)}
	}).h
}

// Sample is one series in a point-in-time snapshot.
type Sample struct {
	Name   string            `json:"name"`
	Labels map[string]string `json:"labels,omitempty"`
	Kind   string            `json:"kind"`

	// Value carries the counter count, gauge value, or EWMA rate.
	Value float64 `json:"value"`

	// Histogram-only fields.
	Count uint64  `json:"count,omitempty"`
	Sum   float64 `json:"sum,omitempty"`
	P50   float64 `json:"p50,omitempty"`
	P95   float64 `json:"p95,omitempty"`
	P99   float64 `json:"p99,omitempty"`
}

// ID renders the sample's Prometheus-style identity, e.g.
// sstp_announcements_total{queue="hot"}.
func (s Sample) ID() string {
	if len(s.Labels) == 0 {
		return s.Name
	}
	keys := make([]string, 0, len(s.Labels))
	for k := range s.Labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString(s.Name)
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", k, s.Labels[k])
	}
	b.WriteByte('}')
	return b.String()
}

// parseLabels inverts labelString's canonical rendering.
func parseLabels(ls string) map[string]string {
	if ls == "" {
		return nil
	}
	out := make(map[string]string)
	for _, pair := range strings.Split(ls, ",") {
		eq := strings.IndexByte(pair, '=')
		if eq < 0 {
			continue
		}
		v := pair[eq+1:]
		v = strings.TrimPrefix(v, `"`)
		v = strings.TrimSuffix(v, `"`)
		out[pair[:eq]] = v
	}
	return out
}

// Snapshot returns the current value of every instrument, sorted by
// name then labels for deterministic rendering.
func (r *Registry) Snapshot() []Sample {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	ins := make([]*instrument, 0, len(r.byID))
	for _, in := range r.byID {
		ins = append(ins, in)
	}
	r.mu.RUnlock()
	sort.Slice(ins, func(i, j int) bool {
		if ins[i].name != ins[j].name {
			return ins[i].name < ins[j].name
		}
		return ins[i].labels < ins[j].labels
	})
	out := make([]Sample, 0, len(ins))
	for _, in := range ins {
		s := Sample{Name: in.name, Labels: parseLabels(in.labels), Kind: in.kind.String()}
		switch in.kind {
		case kindCounter:
			s.Value = float64(in.c.Value())
		case kindGauge:
			s.Value = in.g.Value()
		case kindEWMA:
			s.Value = in.e.Rate()
		case kindHistogram:
			s.Count = in.h.Count()
			s.Sum = in.h.Sum()
			s.Value = in.h.Mean()
			s.P50 = in.h.Quantile(0.50)
			s.P95 = in.h.Quantile(0.95)
			s.P99 = in.h.Quantile(0.99)
		}
		out = append(out, s)
	}
	return out
}

// Get returns the snapshot value of the series with the given name
// and labels (0 when absent) — a convenience for tests and one-line
// summaries.
func (r *Registry) Get(name string, labels ...string) float64 {
	if r == nil {
		return 0
	}
	id := name + "{" + labelString(labels) + "}"
	r.mu.RLock()
	in, ok := r.byID[id]
	r.mu.RUnlock()
	if !ok {
		return 0
	}
	switch in.kind {
	case kindCounter:
		return float64(in.c.Value())
	case kindGauge:
		return in.g.Value()
	case kindEWMA:
		return in.e.Rate()
	case kindHistogram:
		return float64(in.h.Count())
	}
	return 0
}
