package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"

	"softstate/internal/trace"
)

// Section is one named extra block in the /stats.json document — a
// daemon attaches e.g. a "consistency" section whose Get returns the
// receiver's staleness/t-visibility snapshot. Get is called per
// request and must be safe for concurrent use; its result is rendered
// with encoding/json.
type Section struct {
	Name string
	Get  func() any
}

// statsJSON renders the /stats.json document with a stable top-level
// field order — registry, now, metrics, then the sections in the
// order given — by building the object by hand (a map would sort, an
// anonymous struct cannot hold dynamic sections).
func statsJSON(reg *Registry, now time.Time, sections []Section) ([]byte, error) {
	var buf bytes.Buffer
	buf.WriteString("{\n  \"registry\": ")
	name, _ := json.Marshal(reg.Name())
	buf.Write(name)
	buf.WriteString(",\n  \"now\": ")
	ts, _ := json.Marshal(now)
	buf.Write(ts)
	buf.WriteString(",\n  \"metrics\": ")
	metrics, err := json.MarshalIndent(reg.Snapshot(), "  ", "  ")
	if err != nil {
		return nil, err
	}
	buf.Write(metrics)
	for _, s := range sections {
		buf.WriteString(",\n  ")
		name, _ := json.Marshal(s.Name)
		buf.Write(name)
		buf.WriteString(": ")
		var val []byte
		if s.Get != nil {
			val, err = json.MarshalIndent(s.Get(), "  ", "  ")
			if err != nil {
				return nil, err
			}
		} else {
			val = []byte("null")
		}
		buf.Write(val)
	}
	buf.WriteString("\n}\n")
	return buf.Bytes(), nil
}

// AdminHandler serves the runtime debug surface for a live daemon:
//
//	/metrics        Prometheus text exposition of reg
//	/stats.json     JSON registry snapshot plus any extra sections
//	/trace          recent protocol events as JSONL (?n=limit, ?key=k)
//	/debug/pprof/*  the standard Go profiler endpoints
//
// ring may be nil (the /trace endpoint then reports 404); reg may be
// nil (endpoints render empty documents). Each extra section appears
// in /stats.json after the metrics, in the order given.
func AdminHandler(reg *Registry, ring *trace.Ring, sections ...Section) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.WritePrometheus(w)
	})
	mux.HandleFunc("/stats.json", func(w http.ResponseWriter, _ *http.Request) {
		doc, err := statsJSON(reg, time.Now().UTC(), sections)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write(doc)
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, req *http.Request) {
		if ring == nil {
			http.Error(w, "tracing disabled", http.StatusNotFound)
			return
		}
		events := ring.Events()
		if key := req.URL.Query().Get("key"); key != "" {
			kept := events[:0]
			for _, e := range events {
				if e.Key == key {
					kept = append(kept, e)
				}
			}
			events = kept
		}
		if ns := req.URL.Query().Get("n"); ns != "" {
			n, err := strconv.Atoi(ns)
			if err != nil || n < 0 {
				http.Error(w, "bad n", http.StatusBadRequest)
				return
			}
			if n < len(events) {
				events = events[len(events)-n:]
			}
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		enc := json.NewEncoder(w)
		for _, e := range events {
			_ = enc.Encode(e)
		}
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path != "/" {
			http.NotFound(w, req)
			return
		}
		fmt.Fprintf(w, "softstate admin (%s)\n\n/metrics\n/stats.json\n/trace\n/debug/pprof/\n", reg.Name())
	})
	return mux
}

// ServeAdmin binds addr and serves AdminHandler in the background,
// returning the server (Close to stop) and the bound address — which
// matters when addr uses port 0.
func ServeAdmin(addr string, reg *Registry, ring *trace.Ring, sections ...Section) (*http.Server, net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, nil, fmt.Errorf("obs: admin listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: AdminHandler(reg, ring, sections...)}
	go func() { _ = srv.Serve(ln) }()
	return srv, ln.Addr(), nil
}
