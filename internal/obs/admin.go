package obs

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"

	"softstate/internal/trace"
)

// AdminHandler serves the runtime debug surface for a live daemon:
//
//	/metrics        Prometheus text exposition of reg
//	/stats.json     JSON registry snapshot
//	/trace          recent protocol events as JSONL (?n=limit, ?key=k)
//	/debug/pprof/*  the standard Go profiler endpoints
//
// ring may be nil (the /trace endpoint then reports 404); reg may be
// nil (endpoints render empty documents).
func AdminHandler(reg *Registry, ring *trace.Ring) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.WritePrometheus(w)
	})
	mux.HandleFunc("/stats.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(struct {
			Registry string    `json:"registry"`
			Now      time.Time `json:"now"`
			Metrics  []Sample  `json:"metrics"`
		}{reg.Name(), time.Now().UTC(), reg.Snapshot()})
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, req *http.Request) {
		if ring == nil {
			http.Error(w, "tracing disabled", http.StatusNotFound)
			return
		}
		events := ring.Events()
		if key := req.URL.Query().Get("key"); key != "" {
			kept := events[:0]
			for _, e := range events {
				if e.Key == key {
					kept = append(kept, e)
				}
			}
			events = kept
		}
		if ns := req.URL.Query().Get("n"); ns != "" {
			n, err := strconv.Atoi(ns)
			if err != nil || n < 0 {
				http.Error(w, "bad n", http.StatusBadRequest)
				return
			}
			if n < len(events) {
				events = events[len(events)-n:]
			}
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		enc := json.NewEncoder(w)
		for _, e := range events {
			_ = enc.Encode(e)
		}
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path != "/" {
			http.NotFound(w, req)
			return
		}
		fmt.Fprintf(w, "softstate admin (%s)\n\n/metrics\n/stats.json\n/trace\n/debug/pprof/\n", reg.Name())
	})
	return mux
}

// ServeAdmin binds addr and serves AdminHandler in the background,
// returning the server (Close to stop) and the bound address — which
// matters when addr uses port 0.
func ServeAdmin(addr string, reg *Registry, ring *trace.Ring) (*http.Server, net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, nil, fmt.Errorf("obs: admin listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: AdminHandler(reg, ring)}
	go func() { _ = srv.Serve(ln) }()
	return srv, ln.Addr(), nil
}
