package obs

import (
	"sync"
	"testing"
	"time"
)

// TestStatsJSONGolden pins the /stats.json rendering byte-for-byte:
// stable top-level field order (registry, now, metrics, sections in
// attachment order), deterministic metric order (Snapshot sorts by
// name then labels), and stable section payload rendering.
func TestStatsJSONGolden(t *testing.T) {
	reg := New("goldend")
	reg.Counter("b_total", "queue", "hot").Add(3)
	reg.Counter("b_total", "queue", "cold").Add(1)
	reg.Gauge("a_gauge").Set(2.5)

	type consistency struct {
		Estimate float64 `json:"consistency_estimate"`
		Samples  int     `json:"agreement_samples"`
	}
	sections := []Section{
		{Name: "consistency", Get: func() any { return consistency{Estimate: 0.97, Samples: 12} }},
		{Name: "empty", Get: nil},
	}
	now := time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC)
	doc, err := statsJSON(reg, now, sections)
	if err != nil {
		t.Fatal(err)
	}
	want := `{
  "registry": "goldend",
  "now": "2026-01-02T03:04:05Z",
  "metrics": [
    {
      "name": "a_gauge",
      "kind": "gauge",
      "value": 2.5
    },
    {
      "name": "b_total",
      "labels": {
        "queue": "cold"
      },
      "kind": "counter",
      "value": 1
    },
    {
      "name": "b_total",
      "labels": {
        "queue": "hot"
      },
      "kind": "counter",
      "value": 3
    }
  ],
  "consistency": {
    "consistency_estimate": 0.97,
    "agreement_samples": 12
  },
  "empty": null
}
`
	if string(doc) != want {
		t.Errorf("stats.json rendering drifted:\ngot:\n%s\nwant:\n%s", doc, want)
	}
}

// TestStatsJSONNilRegistry checks the document stays well-formed with
// no registry and no sections (a daemon started before wiring obs).
func TestStatsJSONNilRegistry(t *testing.T) {
	doc, err := statsJSON(nil, time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC), nil)
	if err != nil {
		t.Fatal(err)
	}
	want := `{
  "registry": "",
  "now": "2026-01-01T00:00:00Z",
  "metrics": null
}
`
	if string(doc) != want {
		t.Errorf("nil-registry stats.json = %s", doc)
	}
}

// TestHistogramConcurrentObserveQuantile hammers one histogram with
// concurrent writers while readers pull quantiles and snapshots — the
// admin endpoint's exact access pattern. Run under -race.
func TestHistogramConcurrentObserveQuantile(t *testing.T) {
	reg := New("race")
	h := reg.Histogram("lat_seconds")
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 5000; i++ {
				h.Observe(float64(i%100) * 0.001)
			}
		}(g)
	}
	readers := make(chan struct{})
	go func() {
		defer close(readers)
		for i := 0; i < 200; i++ {
			if q := h.Quantile(0.5); q < 0 {
				t.Error("negative quantile")
				return
			}
			_ = h.Quantile(0.99)
			_ = reg.Snapshot()
		}
	}()
	wg.Wait()
	<-readers
	if got := h.Count(); got != 20000 {
		t.Errorf("count = %d, want 20000", got)
	}
	if q := h.Quantile(0.5); q <= 0 {
		t.Errorf("p50 = %v, want > 0", q)
	}
}
