package queueing_test

import (
	"fmt"

	"softstate/internal/queueing"
)

// Example reproduces the paper's closed forms at one operating point:
// λ=20 kbps, μ_ch=128 kbps, 10% loss, 20% death probability.
func Example() {
	m := queueing.OpenLoop{Lambda: 20_000, MuCh: 128_000, Pc: 0.10, Pd: 0.20}
	fmt.Printf("stable      %v (ρ=%.4f)\n", m.Stable(), m.Rho())
	fmt.Printf("q           %.4f\n", m.BusyConsistency())
	fmt.Printf("E[c(t)]     %.4f\n", m.Consistency())
	fmt.Printf("redundant   %.4f\n", m.RedundantFraction())
	fmt.Printf("delivery    %.4f\n", m.DeliveryProbability())
	// Output:
	// stable      true (ρ=0.7812)
	// q           0.7826
	// E[c(t)]     0.6114
	// redundant   0.7826
	// delivery    0.9783
}

// ExampleOpenLoop_Table1 prints the analytic Table 1.
func ExampleOpenLoop_Table1() {
	m := queueing.OpenLoop{Lambda: 1, MuCh: 10, Pc: 0.25, Pd: 0.20}
	t := m.Table1()
	fmt.Printf("I-enter: %.2f %.2f %.2f\n", t.IEnter[0], t.IEnter[1], t.IEnter[2])
	fmt.Printf("C-enter: %.2f %.2f %.2f\n", t.CEnter[0], t.CEnter[1], t.CEnter[2])
	// Output:
	// I-enter: 0.20 0.60 0.20
	// C-enter: 0.00 0.80 0.20
}
