package queueing

import "math"

// MG1 is an M/G/1 queue: Poisson arrivals at rate Lambda, general
// service with mean ES and second moment ES2. The Pollaczek–Khinchine
// formula gives its delay moments — used to quantify how far the
// deterministic-packet (M/D/1) simulator variant departs from the
// exponential-service (M/M/1) analysis, one of DESIGN.md's ablations.
type MG1 struct {
	Lambda float64 // arrival rate (jobs/s)
	ES     float64 // mean service time (s)
	ES2    float64 // second moment of service time (s²)
}

// MD1 returns the M/G/1 instance for deterministic service of
// duration d.
func MD1(lambda, d float64) MG1 {
	return MG1{Lambda: lambda, ES: d, ES2: d * d}
}

// MM1AsMG1 returns the M/G/1 instance for exponential service with
// mean 1/mu (E[S²] = 2/μ²); its formulas collapse to the M/M/1 ones.
func MM1AsMG1(lambda, mu float64) MG1 {
	return MG1{Lambda: lambda, ES: 1 / mu, ES2: 2 / (mu * mu)}
}

// Utilization returns ρ = λ·E[S].
func (q MG1) Utilization() float64 { return q.Lambda * q.ES }

// Stable reports ρ < 1.
func (q MG1) Stable() bool { return q.Utilization() < 1 }

// MeanWait returns the Pollaczek–Khinchine mean queueing delay
// E[Wq] = λ·E[S²] / (2(1-ρ)). Returns +Inf when unstable.
func (q MG1) MeanWait() float64 {
	rho := q.Utilization()
	if rho >= 1 {
		return math.Inf(1)
	}
	return q.Lambda * q.ES2 / (2 * (1 - rho))
}

// MeanSojourn returns E[W] = E[Wq] + E[S].
func (q MG1) MeanSojourn() float64 {
	w := q.MeanWait()
	if math.IsInf(w, 1) {
		return w
	}
	return w + q.ES
}

// MeanJobs returns E[N] = λ·E[W] (Little's law).
func (q MG1) MeanJobs() float64 {
	w := q.MeanSojourn()
	if math.IsInf(w, 1) {
		return w
	}
	return q.Lambda * w
}
