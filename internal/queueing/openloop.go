package queueing

import (
	"fmt"
	"math"
)

// OpenLoop is the paper's section-3 model of the open-loop
// announce/listen protocol: a single FIFO server (the channel, service
// rate MuCh) with two job classes — "inconsistent" records the
// receiver does not yet hold, and "consistent" records it does. New
// records arrive at rate Lambda in the inconsistent class. After each
// service (transmission) the record dies with probability Pd;
// otherwise it re-enters the queue, having become consistent with
// probability 1-Pc (the transmission was delivered) or remained in its
// prior class.
//
// Rates are in bits per second with constant-size packets, or directly
// in packets per second — every derived quantity depends only on
// ratios, so units cancel.
type OpenLoop struct {
	Lambda float64 // new-record arrival rate (λ)
	MuCh   float64 // channel service rate (μ_ch)
	Pc     float64 // per-transmission channel loss probability (p_c)
	Pd     float64 // per-service death probability (p_d)
}

// Validate reports an error for out-of-range parameters.
func (m OpenLoop) Validate() error {
	if m.Lambda < 0 || m.MuCh <= 0 {
		return fmt.Errorf("queueing: need λ >= 0 and μ_ch > 0, got λ=%v μ_ch=%v", m.Lambda, m.MuCh)
	}
	if m.Pc < 0 || m.Pc > 1 {
		return fmt.Errorf("queueing: p_c=%v out of [0,1]", m.Pc)
	}
	if m.Pd <= 0 || m.Pd > 1 {
		return fmt.Errorf("queueing: p_d=%v out of (0,1]", m.Pd)
	}
	return nil
}

// LambdaI returns λ̂_I = λ / (1 - p_c(1-p_d)), the total service rate
// of inconsistent-class jobs (paper's first flow equation).
func (m OpenLoop) LambdaI() float64 {
	return m.Lambda / (1 - m.Pc*(1-m.Pd))
}

// LambdaC returns λ̂_C = (1-p_c)(1-p_d)·λ / (p_d·(1 - p_c(1-p_d))),
// the total service rate of consistent-class jobs.
func (m OpenLoop) LambdaC() float64 {
	return (1 - m.Pc) * (1 - m.Pd) * m.Lambda / (m.Pd * (1 - m.Pc*(1-m.Pd)))
}

// Throughput returns λ̂ = λ̂_I + λ̂_C = λ/p_d, the total transmission
// rate: each record is served Geometric(p_d) times before it dies.
func (m OpenLoop) Throughput() float64 { return m.Lambda / m.Pd }

// Rho returns the server utilization ρ = λ̂/μ_ch = λ/(p_d·μ_ch).
func (m OpenLoop) Rho() float64 { return m.Lambda / (m.Pd * m.MuCh) }

// Stable reports the paper's stability condition p_d > λ/μ_ch
// (equivalently ρ < 1).
func (m OpenLoop) Stable() bool { return m.Rho() < 1 }

// BusyConsistency returns q = λ̂_C/λ̂ =
// (1-p_c)(1-p_d)/(1 - p_c(1-p_d)): by the product-form solution, the
// expected fraction of in-system records that are consistent, given
// the system is non-empty. This is the quantity the paper's
// simulations measure as "system consistency" over the live set.
func (m OpenLoop) BusyConsistency() float64 {
	return (1 - m.Pc) * (1 - m.Pd) / (1 - m.Pc*(1-m.Pd))
}

// Consistency returns the paper's closed form for E[c(t)] =
// ρ·(1-p_c)(1-p_d)/(1-p_c(1-p_d)): the sum over occupied states of
// the expected consistent fraction, with the empty state contributing
// zero. Valid only for stable systems; returns NaN when ρ >= 1
// (Jackson's theorem does not apply).
func (m OpenLoop) Consistency() float64 {
	rho := m.Rho()
	if rho >= 1 {
		return math.NaN()
	}
	return rho * m.BusyConsistency()
}

// RedundantFraction returns λ̂_C/λ̂: the fraction of the sender's
// transmissions that carry records the receiver already holds —
// Figure 4's "bandwidth for redundant transmissions". Note this equals
// BusyConsistency: every service of a consistent-class job is a
// redundant transmission.
func (m OpenLoop) RedundantFraction() float64 { return m.BusyConsistency() }

// MeanRecords returns E[n_I + n_C] = ρ/(1-ρ), the expected number of
// live records in the system, from the product-form distribution.
// Returns +Inf when unstable.
func (m OpenLoop) MeanRecords() float64 {
	return MM1{Lambda: m.Throughput(), Mu: m.MuCh}.MeanJobs()
}

// PJoint returns the product-form joint probability
// P(n_I = ni, n_C = nc) =
// (ni+nc choose ni) · (ρ_Iⁿⁱ·ρ_Cⁿᶜ/ρⁿ) · (1-ρ)ρⁿ
// from Jackson's theorem for a multi-class M/M/1 server.
func (m OpenLoop) PJoint(ni, nc int) float64 {
	if ni < 0 || nc < 0 {
		return 0
	}
	rho := m.Rho()
	if rho >= 1 {
		return 0
	}
	n := ni + nc
	q := m.BusyConsistency() // per-job probability of being consistent
	// Binomial split of n jobs between classes with parameter q.
	logBinom := lgamma(float64(n+1)) - lgamma(float64(ni+1)) - lgamma(float64(nc+1))
	logP := logBinom + float64(nc)*math.Log(q) + float64(ni)*math.Log(1-q)
	if q == 0 {
		if nc == 0 {
			logP = 0
		} else {
			return 0
		}
	}
	if q == 1 {
		if ni == 0 {
			logP = 0
		} else {
			return 0
		}
	}
	return (1 - rho) * math.Pow(rho, float64(n)) * math.Exp(logP)
}

func lgamma(x float64) float64 {
	v, _ := math.Lgamma(x)
	return v
}

// ExpectedFirstDeliveryTries returns the mean number of transmissions
// until a record is first delivered, conditioned on delivery before
// death: a Geometric((1-p_c)·… ) race between delivery and death.
func (m OpenLoop) ExpectedFirstDeliveryTries() float64 {
	// Per transmission: delivered with prob (1-p_c); dies after
	// service with prob p_d (independent). A record is eventually
	// delivered iff delivery happens before death. Conditional mean of
	// the geometric race with success prob s = 1-(1-(1-p_c))·(1-p_d)…
	// Simpler: per round, P(deliver) = 1-p_c. P(survive round
	// undelivered) = p_c(1-p_d). Conditioned on delivery, number of
	// rounds is Geometric with parameter (1-p_c)/(1-p_c(1-p_d))
	// shifted to start at 1.
	p := (1 - m.Pc) / (1 - m.Pc*(1-m.Pd))
	return 1 / p
}

// DeliveryProbability returns the probability a new record is ever
// delivered before it dies: (1-p_c)/(1-p_c(1-p_d)).
func (m OpenLoop) DeliveryProbability() float64 {
	return (1 - m.Pc) / (1 - m.Pc*(1-m.Pd))
}

// StateChangeProbabilities returns the paper's Table 1: given the
// class on entering service (consistent or not), the probabilities of
// leaving the server inconsistent, consistent, or dead.
//
//	row "I/Enter": {p_c(1-p_d), (1-p_c)(1-p_d), p_d}
//	row "C/Enter": {0,          (1-p_d),        p_d}
type StateChangeTable struct {
	IEnter [3]float64 // exit {inconsistent, consistent, dead}
	CEnter [3]float64
}

// Table1 returns the analytic state-change probabilities for the
// model's loss and death parameters.
func (m OpenLoop) Table1() StateChangeTable {
	return StateChangeTable{
		IEnter: [3]float64{m.Pc * (1 - m.Pd), (1 - m.Pc) * (1 - m.Pd), m.Pd},
		CEnter: [3]float64{0, 1 - m.Pd, m.Pd},
	}
}
