package queueing

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMG1CollapsesToMM1(t *testing.T) {
	lambda, mu := 3.0, 5.0
	mm1 := MM1{Lambda: lambda, Mu: mu}
	mg1 := MM1AsMG1(lambda, mu)
	if !almost(mg1.MeanWait(), mm1.MeanWait(), 1e-12) {
		t.Errorf("E[Wq]: P-K %v vs M/M/1 %v", mg1.MeanWait(), mm1.MeanWait())
	}
	if !almost(mg1.MeanSojourn(), mm1.MeanSojourn(), 1e-12) {
		t.Errorf("E[W]: P-K %v vs M/M/1 %v", mg1.MeanSojourn(), mm1.MeanSojourn())
	}
	if !almost(mg1.MeanJobs(), mm1.MeanJobs(), 1e-12) {
		t.Errorf("E[N]: P-K %v vs M/M/1 %v", mg1.MeanJobs(), mm1.MeanJobs())
	}
}

func TestMD1HalvesQueueingDelay(t *testing.T) {
	// Classic result: at equal ρ, M/D/1 queueing delay is exactly half
	// the M/M/1 delay.
	lambda, mu := 4.0, 5.0
	md1 := MD1(lambda, 1/mu)
	mm1 := MM1AsMG1(lambda, mu)
	if !almost(md1.MeanWait(), mm1.MeanWait()/2, 1e-12) {
		t.Errorf("M/D/1 wait %v, want half of %v", md1.MeanWait(), mm1.MeanWait())
	}
}

func TestMG1Unstable(t *testing.T) {
	q := MD1(10, 0.2) // ρ = 2
	if q.Stable() {
		t.Fatal("ρ=2 reported stable")
	}
	if !math.IsInf(q.MeanWait(), 1) || !math.IsInf(q.MeanSojourn(), 1) || !math.IsInf(q.MeanJobs(), 1) {
		t.Error("unstable moments should be +Inf")
	}
}

// Property: for any stable load, deterministic service never waits
// longer than exponential service at the same mean.
func TestPropertyMD1BelowMM1(t *testing.T) {
	f := func(l8, m8 uint8) bool {
		lambda := 0.1 + float64(l8%50)/10
		mu := lambda*1.05 + float64(m8%50)/10 + 0.1
		md1 := MD1(lambda, 1/mu)
		mm1 := MM1AsMG1(lambda, mu)
		return md1.MeanWait() <= mm1.MeanWait()+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestMG1LittlesLaw(t *testing.T) {
	q := MG1{Lambda: 2, ES: 0.3, ES2: 0.2}
	if !q.Stable() {
		t.Fatal("test case unstable")
	}
	if !almost(q.MeanJobs(), q.Lambda*q.MeanSojourn(), 1e-12) {
		t.Error("Little's law violated")
	}
}
